#pragma once
// Deterministic data parallelism for the engines. A ThreadPool owns a fixed
// set of worker threads (no work stealing, no dynamic scheduling):
// parallel_for_chunks splits an index range [0, n) into exactly threads()
// contiguous chunks whose boundaries depend only on n and the thread count,
// and chunk c always executes as logical worker c. Callers that write
// per-index results into chunk-local slots and merge them in index order
// therefore produce bit-identical output for *any* thread count — the
// property the fault simulator and session emulators build their
// "parallelism never changes results" contract on.
//
// Thread-count resolution: every engine takes an explicit count via
// set_threads(n); n == 0 means "use the BIBS_THREADS environment variable,
// default 1". The default is deliberately serial so existing callers and
// golden tests see byte-for-byte the old behaviour unless parallelism is
// asked for.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bibs::par {

/// max(1, std::thread::hardware_concurrency()).
int hardware_threads();

/// BIBS_THREADS parsed as a positive integer; 0 when unset or malformed.
/// The value "0" (and negative / garbage values) count as unset.
int env_threads();

/// Resolves an engine's requested thread count: requested > 0 wins,
/// otherwise BIBS_THREADS, otherwise 1. The result is clamped to
/// [1, 4 * hardware_threads()] — oversubscription beyond that is always a
/// configuration accident.
int resolve_threads(int requested);

/// Fixed-size fork/join pool. threads() == 1 degenerates to inline execution
/// on the caller's thread: no workers are spawned and parallel_for_chunks is
/// a plain loop, so a serial pool adds zero scheduling overhead.
class ThreadPool {
 public:
  /// `threads` is resolved via resolve_threads (so 0 honours BIBS_THREADS).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return n_; }

  /// fn(chunk, begin, end) over threads() contiguous chunks of [0, n).
  /// Chunk sizes differ by at most one (the first n % threads() chunks get
  /// the extra element); chunks beyond n are called with begin == end so a
  /// chunk index always maps to the same per-worker scratch slot. Chunk 0
  /// runs on the calling thread. Blocks until every chunk returned; if
  /// chunks threw, the exception of the lowest-indexed chunk is rethrown
  /// (deterministic regardless of completion order).
  using ChunkFn = std::function<void(int chunk, std::size_t begin,
                                     std::size_t end)>;
  void parallel_for_chunks(std::size_t n, const ChunkFn& fn);

  /// The half-open index range chunk c covers in [0, n) under k chunks.
  static std::pair<std::size_t, std::size_t> chunk_range(std::size_t n, int k,
                                                         int c);

 private:
  void worker_loop(int worker);
  void run_chunk(int chunk);

  int n_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const ChunkFn* job_ = nullptr;  // guarded by mu_
  std::size_t job_n_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;  // one slot per chunk
};

}  // namespace bibs::par
