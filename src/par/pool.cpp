#include "par/pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace bibs::par {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int env_threads() {
  const char* s = std::getenv("BIBS_THREADS");
  if (!s || !*s) return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0 || v > 1 << 16) return 0;
  return static_cast<int>(v);
}

int resolve_threads(int requested) {
  int t = requested > 0 ? requested : env_threads();
  if (t <= 0) t = 1;
  return std::min(t, 4 * hardware_threads());
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(std::size_t n,
                                                            int k, int c) {
  BIBS_ASSERT(k >= 1 && c >= 0 && c < k);
  const std::size_t q = n / static_cast<std::size_t>(k);
  const std::size_t r = n % static_cast<std::size_t>(k);
  const std::size_t uc = static_cast<std::size_t>(c);
  const std::size_t begin = uc * q + std::min(uc, r);
  return {begin, begin + q + (uc < r ? 1 : 0)};
}

ThreadPool::ThreadPool(int threads) : n_(resolve_threads(threads)) {
  errors_.assign(static_cast<std::size_t>(n_), nullptr);
  workers_.reserve(static_cast<std::size_t>(n_ - 1));
  for (int w = 1; w < n_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunk(int chunk) {
  const auto [begin, end] = chunk_range(job_n_, n_, chunk);
  try {
    (*job_)(chunk, begin, end);
  } catch (...) {
    errors_[static_cast<std::size_t>(chunk)] = std::current_exception();
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    run_chunk(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for_chunks(std::size_t n, const ChunkFn& fn) {
  BIBS_COUNTER(c_jobs, "par.jobs");
  BIBS_COUNTER_ADD(c_jobs, 1);

  if (n_ == 1) {  // serial pool: a plain loop on the caller's thread
    fn(0, 0, n);
    return;
  }
  std::fill(errors_.begin(), errors_.end(), nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    pending_ = n_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the caller is worker 0
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }
  for (const std::exception_ptr& e : errors_)  // lowest chunk index wins
    if (e) std::rethrow_exception(e);
}

}  // namespace bibs::par
