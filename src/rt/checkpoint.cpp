#include "rt/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace bibs::rt {

namespace {

constexpr int kVersion = 1;

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

std::uint64_t parse_hex(const obs::Json& j, const char* what) {
  if (!j.is_string())
    throw ParseError(std::string("checkpoint: ") + what +
                     " must be a hex string");
  const std::string& s = j.str();
  if (s.size() < 3 || s.compare(0, 2, "0x") != 0)
    throw ParseError(std::string("checkpoint: bad hex word '") + s + "' in " +
                     what);
  std::uint64_t v = 0;
  std::size_t pos = 0;
  try {
    v = std::stoull(s.substr(2), &pos, 16);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size() - 2)
    throw ParseError(std::string("checkpoint: bad hex word '") + s + "' in " +
                     what);
  return v;
}

const obs::Json& require(const obs::Json& j, const char* key) {
  const obs::Json* v = j.find(key);
  if (!v)
    throw ParseError(std::string("checkpoint: missing field '") + key + "'");
  return *v;
}

std::int64_t require_int(const obs::Json& j, const char* key) {
  const obs::Json& v = require(j, key);
  if (!v.is_number())
    throw ParseError(std::string("checkpoint: field '") + key +
                     "' must be a number");
  return static_cast<std::int64_t>(v.number());
}

void check_kind(const obs::Json& j, const char* kind) {
  if (!j.is_object())
    throw ParseError("checkpoint: document must be a JSON object");
  const obs::Json& k = require(j, "kind");
  if (!k.is_string() || k.str() != kind)
    throw ParseError(std::string("checkpoint: expected kind '") + kind + "'");
  if (require_int(j, "version") != kVersion)
    throw ParseError("checkpoint: unsupported version");
}

void save_text(const std::string& path, const std::string& text,
               const char* what) {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw ParseError(std::string(what) + ": cannot open '" + path +
                     "' for writing");
  out << text << "\n";
  if (!out.flush())
    throw ParseError(std::string(what) + ": write to '" + path + "' failed");
}

obs::Json load_json(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in)
    throw ParseError(std::string(what) + ": cannot open '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return obs::Json::parse(ss.str());
}

}  // namespace

void SimCheckpoint::capture_rng(const Xoshiro256& rng) {
  has_rng = true;
  rng_state = rng.state();
}

void SimCheckpoint::restore_rng(Xoshiro256& rng) const {
  if (!has_rng)
    throw DesignError("checkpoint carries no PRNG state to restore");
  rng.set_state(rng_state);
}

obs::Json SimCheckpoint::to_json() const {
  obs::Json j = obs::Json::object();
  j["kind"] = obs::Json("bibs.sim_checkpoint");
  j["version"] = obs::Json(kVersion);
  j["patterns_run"] = obs::Json(patterns_run);
  obs::Json det = obs::Json::array();
  for (std::int64_t d : detected_at) det.push_back(obs::Json(d));
  j["detected_at"] = std::move(det);
  if (has_rng) {
    obs::Json r = obs::Json::array();
    for (std::uint64_t w : rng_state) r.push_back(obs::Json(hex(w)));
    j["rng"] = std::move(r);
  }
  // Emitted only off the default so pre-transition-model files round-trip.
  if (fault_model != "stuck_at") j["fault_model"] = obs::Json(fault_model);
  if (!site_prev.empty()) {
    obs::Json sp = obs::Json::array();
    for (std::uint8_t b : site_prev) sp.push_back(obs::Json(b != 0));
    j["site_prev"] = std::move(sp);
  }
  return j;
}

SimCheckpoint SimCheckpoint::from_json(const obs::Json& j) {
  check_kind(j, "bibs.sim_checkpoint");
  SimCheckpoint ck;
  ck.patterns_run = require_int(j, "patterns_run");
  if (ck.patterns_run < 0)
    throw ParseError("checkpoint: negative patterns_run");
  const obs::Json& det = require(j, "detected_at");
  if (!det.is_array())
    throw ParseError("checkpoint: field 'detected_at' must be an array");
  for (const obs::Json& d : det.items()) {
    if (!d.is_number())
      throw ParseError("checkpoint: detected_at entries must be numbers");
    ck.detected_at.push_back(static_cast<std::int64_t>(d.number()));
  }
  if (const obs::Json* r = j.find("rng")) {
    if (!r->is_array() || r->size() != 4)
      throw ParseError("checkpoint: field 'rng' must be an array of 4 words");
    for (std::size_t i = 0; i < 4; ++i)
      ck.rng_state[i] = parse_hex(r->items()[i], "rng");
    ck.has_rng = true;
  }
  if (const obs::Json* m = j.find("fault_model")) {
    if (!m->is_string())
      throw ParseError("checkpoint: field 'fault_model' must be a string");
    ck.fault_model = m->str();
  }
  if (const obs::Json* sp = j.find("site_prev")) {
    if (!sp->is_array())
      throw ParseError("checkpoint: field 'site_prev' must be an array");
    for (const obs::Json& b : sp->items()) {
      if (b.type() != obs::Json::Type::kBool)
        throw ParseError("checkpoint: 'site_prev' entries must be booleans");
      ck.site_prev.push_back(b.boolean() ? 1 : 0);
    }
    if (ck.site_prev.size() != ck.detected_at.size())
      throw ParseError(
          "checkpoint: site_prev size does not match detected_at");
  }
  return ck;
}

void SimCheckpoint::save(const std::string& path) const {
  save_text(path, to_json().dump(), "sim checkpoint");
}

SimCheckpoint SimCheckpoint::load(const std::string& path) {
  return from_json(load_json(path, "sim checkpoint"));
}

obs::Json SessionCheckpoint::to_json() const {
  obs::Json j = obs::Json::object();
  j["kind"] = obs::Json("bibs.session_checkpoint");
  j["version"] = obs::Json(kVersion);
  j["cycles"] = obs::Json(cycles);
  j["total_faults"] = obs::Json(static_cast<std::uint64_t>(total_faults));
  j["batches_done"] = obs::Json(static_cast<std::uint64_t>(batches_done));
  j["batch_faults"] = obs::Json(static_cast<std::uint64_t>(batch_faults));
  if (fault_model != "stuck_at") j["fault_model"] = obs::Json(fault_model);
  const auto flags = [](const std::vector<std::uint8_t>& v) {
    obs::Json a = obs::Json::array();
    for (std::uint8_t f : v) a.push_back(obs::Json(f != 0));
    return a;
  };
  j["detected_at_outputs"] = flags(detected_at_outputs);
  j["detected_by_signature"] = flags(detected_by_signature);
  obs::Json sigs = obs::Json::array();
  for (std::uint64_t s : golden_signatures) sigs.push_back(obs::Json(hex(s)));
  j["golden_signatures"] = std::move(sigs);
  return j;
}

SessionCheckpoint SessionCheckpoint::from_json(const obs::Json& j) {
  check_kind(j, "bibs.session_checkpoint");
  SessionCheckpoint ck;
  ck.cycles = require_int(j, "cycles");
  ck.total_faults = static_cast<std::size_t>(require_int(j, "total_faults"));
  ck.batches_done = static_cast<std::size_t>(require_int(j, "batches_done"));
  // Absent in files written before lane-width-parameterized sessions, which
  // always ran 63-fault (scalar64) batches.
  ck.batch_faults = j.find("batch_faults")
                        ? static_cast<std::size_t>(require_int(j, "batch_faults"))
                        : 63;
  if (const obs::Json* m = j.find("fault_model")) {
    if (!m->is_string())
      throw ParseError("checkpoint: field 'fault_model' must be a string");
    ck.fault_model = m->str();
  }
  const auto flags = [&](const char* key) {
    const obs::Json& a = require(j, key);
    if (!a.is_array())
      throw ParseError(std::string("checkpoint: field '") + key +
                       "' must be an array");
    std::vector<std::uint8_t> v;
    for (const obs::Json& f : a.items()) {
      if (f.type() != obs::Json::Type::kBool)
        throw ParseError(std::string("checkpoint: '") + key +
                         "' entries must be booleans");
      v.push_back(f.boolean() ? 1 : 0);
    }
    return v;
  };
  ck.detected_at_outputs = flags("detected_at_outputs");
  ck.detected_by_signature = flags("detected_by_signature");
  const obs::Json& sigs = require(j, "golden_signatures");
  if (!sigs.is_array())
    throw ParseError("checkpoint: field 'golden_signatures' must be an array");
  for (const obs::Json& s : sigs.items())
    ck.golden_signatures.push_back(parse_hex(s, "golden_signatures"));
  if (ck.detected_at_outputs.size() != ck.total_faults ||
      ck.detected_by_signature.size() != ck.total_faults)
    throw ParseError("checkpoint: detection flag arrays do not match "
                     "total_faults");
  return ck;
}

void SessionCheckpoint::save(const std::string& path) const {
  save_text(path, to_json().dump(), "session checkpoint");
}

SessionCheckpoint SessionCheckpoint::load(const std::string& path) {
  return from_json(load_json(path, "session checkpoint"));
}

}  // namespace bibs::rt
