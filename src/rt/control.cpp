#include "rt/control.hpp"

namespace bibs::rt {

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kFinished: return "finished";
    case RunStatus::kCancelled: return "cancelled";
    case RunStatus::kDeadlineExceeded: return "deadline_exceeded";
    case RunStatus::kBudgetExhausted: return "budget_exhausted";
  }
  return "unknown";
}

std::chrono::nanoseconds Deadline::remaining() const {
  if (unbounded()) return std::chrono::nanoseconds::max();
  const auto now = Clock::now();
  if (now >= at_) return std::chrono::nanoseconds::zero();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(at_ - now);
}

}  // namespace bibs::rt
