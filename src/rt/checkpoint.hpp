#pragma once
// Checkpoint/resume state for the two long-running engines. Both snapshots
// are plain data serialized to JSON (via obs::Json) so an interrupted run —
// cancelled, past its deadline, or out of budget — can be persisted and
// later resumed to a result bit-exactly identical to an uninterrupted run.
//
// Granularity:
//   * SimCheckpoint (fault::FaultSimulator): 64-pattern block boundary —
//     first-detection indices, pattern position and (for run_random /
//     run_weighted) the PRNG state.
//   * SessionCheckpoint (sim::BistSession): fault-batch boundary — per-fault
//     detection flags, golden signatures and the number of completed fault
//     batches (batch_faults faults each; 63 on scalar64). An interrupted
//     batch is re-run from its start on resume, which is bit-exact because
//     batches are independent.
//
// 64-bit words (signatures, PRNG state) are serialized as "0x..." hex
// strings: obs::Json numbers are doubles and would silently round above
// 2^53.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "obs/json.hpp"

namespace bibs::rt {

/// Snapshot of a (possibly partial) fault::FaultSimulator run.
struct SimCheckpoint {
  /// Patterns simulated when the snapshot was taken.
  std::int64_t patterns_run = 0;
  /// First-detection pattern index per fault; -1 if undetected so far.
  std::vector<std::int64_t> detected_at;
  /// Captured Xoshiro256 state (run_random / run_weighted resume).
  bool has_rng = false;
  std::array<std::uint64_t, 4> rng_state{};
  /// Fault model of the run ("stuck_at" / "transition"); resume validates it
  /// matches. Files written before the field default to "stuck_at" on load.
  std::string fault_model = "stuck_at";
  /// Transition model only: per fault, the site's fault-free value on the
  /// last simulated pattern — the launch side of the next pattern pair.
  std::vector<std::uint8_t> site_prev;

  void capture_rng(const Xoshiro256& rng);
  /// Restores the captured generator state; throws DesignError if the
  /// checkpoint carries none.
  void restore_rng(Xoshiro256& rng) const;

  obs::Json to_json() const;
  /// Throws ParseError on missing/mistyped fields or wrong kind/version.
  static SimCheckpoint from_json(const obs::Json& j);
  void save(const std::string& path) const;
  static SimCheckpoint load(const std::string& path);
};

/// Snapshot of a (possibly partial) sim::BistSession run.
struct SessionCheckpoint {
  /// The run's cycle count per batch; resume validates it matches.
  std::int64_t cycles = 0;
  /// Fault-list size; resume validates it matches.
  std::size_t total_faults = 0;
  /// Fully completed fault batches of `batch_faults` faults each.
  std::size_t batches_done = 0;
  /// Faults per batch (lane count of the engine minus the fault-free lane;
  /// 63 on scalar64). Batch boundaries move with the lane width, so resume
  /// validates the width matches; files written before the field default
  /// to 63 on load.
  std::size_t batch_faults = 63;
  /// Fault model of the run ("stuck_at" / "transition"); resume validates it
  /// matches. Files written before the field default to "stuck_at" on load.
  std::string fault_model = "stuck_at";
  std::vector<std::uint8_t> detected_at_outputs;
  std::vector<std::uint8_t> detected_by_signature;
  std::vector<std::uint64_t> golden_signatures;

  obs::Json to_json() const;
  /// Throws ParseError on missing/mistyped fields or wrong kind/version.
  static SessionCheckpoint from_json(const obs::Json& j);
  void save(const std::string& path) const;
  static SessionCheckpoint load(const std::string& path);
};

}  // namespace bibs::rt
