#pragma once
// Run control for the long-running engine phases (PPSFP fault simulation,
// BIST session emulation, TPG synthesis, design-space exploration). A
// RunControl bundles three independent stop conditions — a cooperative
// CancelToken, a wall-clock Deadline and a work-unit budget — and is polled
// at block granularity (64-pattern blocks / 64-cycle slices), never from the
// innermost loops. Interrupted runs return a well-formed partial result
// carrying a RunStatus instead of throwing or dying.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace bibs::rt {

/// How a run ended. kFinished doubles as "no interruption requested" while
/// the run is still in flight (see RunControl::interruption).
enum class RunStatus {
  kFinished,          ///< Ran to natural completion.
  kCancelled,         ///< CancelToken::request_cancel observed.
  kDeadlineExceeded,  ///< Wall-clock deadline passed.
  kBudgetExhausted,   ///< Work-unit budget (patterns / cycles) spent.
};

const char* to_string(RunStatus s);

/// Thread-safe cooperative cancellation flag. Copies share state: any copy
/// may request cancellation, every copy observes it. Tokens compose via
/// child(): a child is cancelled when either it or any ancestor is, so a
/// service can hand per-request tokens linked to one shutdown token.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation. Idempotent; safe from any thread.
  void request_cancel() noexcept {
    state_->flag.store(true, std::memory_order_relaxed);
  }

  /// True once this token or any ancestor was cancelled.
  bool cancelled() const noexcept {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
      if (s->flag.load(std::memory_order_relaxed)) return true;
    return false;
  }

  /// A token that is cancelled when either it or this token is.
  CancelToken child() const {
    CancelToken t;
    t.state_->parent = state_;
    return t;
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::shared_ptr<const State> parent;
  };
  std::shared_ptr<State> state_;
};

/// Wall-clock deadline on the steady clock. Default-constructed: never
/// expires. Cheap to copy; expired() costs one clock read.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline never() { return Deadline(); }
  static Deadline at(Clock::time_point t) {
    Deadline d;
    d.at_ = t;
    return d;
  }
  static Deadline in(std::chrono::nanoseconds delta) {
    return at(Clock::now() + delta);
  }

  bool unbounded() const { return at_ == Clock::time_point::max(); }
  bool expired() const { return !unbounded() && Clock::now() >= at_; }

  /// Time left; zero once expired, nanoseconds::max() when unbounded.
  std::chrono::nanoseconds remaining() const;

 private:
  Clock::time_point at_;
};

/// Aggregated stop conditions threaded through the engines. Default
/// constructed it never interrupts, so `const RunControl& ctl = {}`
/// parameters leave existing call sites untouched.
struct RunControl {
  CancelToken token{};
  Deadline deadline{};
  /// Total work units (patterns for fault sim, cycles for sessions,
  /// evaluations for exploration) the run may spend.
  std::int64_t budget = std::numeric_limits<std::int64_t>::max();

  /// Polled at block granularity with the work spent so far. Returns
  /// kFinished while the run may continue; the first matching stop
  /// condition otherwise (cancel > deadline > budget).
  RunStatus interruption(std::int64_t work_done) const {
    if (token.cancelled()) return RunStatus::kCancelled;
    if (deadline.expired()) return RunStatus::kDeadlineExceeded;
    if (work_done >= budget) return RunStatus::kBudgetExhausted;
    return RunStatus::kFinished;
  }
};

}  // namespace bibs::rt
