#pragma once
// Minimal ASCII table printer used by the benchmark harnesses so that every
// bench binary reproduces a paper table in the same visual layout.

#include <concepts>
#include <iosfwd>
#include <string>
#include <vector>

namespace bibs {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; column count is fixed from this call on.
  void header(std::vector<std::string> cells);
  /// Appends a data row; must match the header width.
  void row(std::vector<std::string> cells);
  /// Renders the table with box-drawing rules.
  void print(std::ostream& os) const;

  static std::string num(long long v);
  template <std::integral T>
  static std::string num(T v) {
    return num(static_cast<long long>(v));
  }
  static std::string num(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bibs
