#pragma once
// Error types shared by all bibs subsystems.
//
// Policy: user-facing errors (bad netlist text, infeasible design request)
// throw an exception derived from bibs::Error; internal invariant violations
// use BIBS_ASSERT, which throws bibs::InternalError so that tests can observe
// them and release builds fail loudly instead of corrupting results.

#include <stdexcept>
#include <string>

namespace bibs {

/// Base class for all errors raised by the bibs library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed netlist text or inconsistent circuit description.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A structural precondition of an algorithm does not hold
/// (e.g. asking for a balanced-kernel TPG on an unbalanced kernel).
class DesignError : public Error {
 public:
  explicit DesignError(const std::string& what) : Error("design error: " + what) {}
};

/// Violated internal invariant; indicates a bug in the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  throw InternalError(std::string(expr) + " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace bibs

#define BIBS_ASSERT(expr) \
  ((expr) ? (void)0 : ::bibs::detail::assert_fail(#expr, __FILE__, __LINE__))
