#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace bibs {

void Table::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void Table::row(std::vector<std::string> cells) {
  BIBS_ASSERT(header_.empty() || cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(long long v) {
  // Thousands separators, as in the paper's tables (e.g. "2,542").
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
}

}  // namespace bibs
