#include "common/bitvec.hpp"

#include <bit>

namespace bibs {

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1')
      v.set(i, true);
    else if (bits[i] != '0')
      throw ParseError("BitVec::from_string: invalid character '" +
                       std::string(1, bits[i]) + "'");
  }
  return v;
}

std::size_t BitVec::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::any() const {
  for (std::uint64_t w : words_)
    if (w) return true;
  return false;
}

std::uint64_t BitVec::extract(std::size_t lo, std::size_t width) const {
  BIBS_ASSERT(width <= 64 && lo + width <= nbits_);
  if (width == 0) return 0;
  const std::size_t wi = lo >> 6;
  const std::size_t sh = lo & 63;
  std::uint64_t value = words_[wi] >> sh;
  if (sh + width > 64) value |= words_[wi + 1] << (64 - sh);
  if (width < 64) value &= (~0ull >> (64 - width));
  return value;
}

void BitVec::deposit(std::size_t lo, std::size_t width, std::uint64_t value) {
  BIBS_ASSERT(width <= 64 && lo + width <= nbits_);
  for (std::size_t i = 0; i < width; ++i) set(lo + i, (value >> i) & 1u);
}

std::string BitVec::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

}  // namespace bibs
