#pragma once
// Deterministic PRNG used for random-pattern testing (the paper's Table 2
// experiments used true random patterns rather than LFSR streams; we use a
// seeded xoshiro256** so every bench run prints identical rows).

#include <array>
#include <cstdint>

namespace bibs {

/// xoshiro256** 1.0 (Blackman/Vigna), seeded via splitmix64.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Full generator state, for checkpoint/resume (rt::SimCheckpoint).
  std::array<std::uint64_t, 4> state() const;
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  std::uint64_t s_[4];
};

}  // namespace bibs
