#pragma once
// A compact dynamic bit vector used for LFSR states, pattern buffers and
// coverage sets. std::vector<bool> is avoided on purpose: BitVec exposes
// word-level access which the pattern-parallel fault simulator relies on.

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bibs {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false)
      : nbits_(nbits), words_((nbits + 63) / 64, value ? ~0ull : 0ull) {
    trim();
  }

  /// Builds a BitVec from a string of '0'/'1', most significant (index 0) first.
  static BitVec from_string(const std::string& bits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const {
    BIBS_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    BIBS_ASSERT(i < nbits_);
    const std::uint64_t mask = 1ull << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  bool operator[](std::size_t i) const { return get(i); }

  void clear() { std::fill(words_.begin(), words_.end(), 0ull); }
  void resize(std::size_t nbits) {
    nbits_ = nbits;
    words_.resize((nbits + 63) / 64, 0ull);
    trim();
  }

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// Interprets bits [lo, lo+width) as an unsigned integer, bit lo = LSB.
  std::uint64_t extract(std::size_t lo, std::size_t width) const;
  /// Stores the low `width` bits of `value` at [lo, lo+width).
  void deposit(std::size_t lo, std::size_t width, std::uint64_t value);

  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> words() { return words_; }

  bool operator==(const BitVec& o) const = default;

  /// "0"/"1" string, index 0 first.
  std::string to_string() const;

 private:
  void trim() {
    if (nbits_ & 63) words_.back() &= (~0ull >> (64 - (nbits_ & 63)));
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bibs
