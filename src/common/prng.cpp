#include "common/prng.hpp"

namespace bibs {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::array<std::uint64_t, 4> Xoshiro256::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Xoshiro256::set_state(const std::array<std::uint64_t, 4>& s) {
  for (int i = 0; i < 4; ++i) s_[i] = s[i];
}

}  // namespace bibs
