#include "obs/metrics.hpp"

#include "common/error.hpp"
#include "obs/report.hpp"

namespace bibs::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  BIBS_ASSERT(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    BIBS_ASSERT(bounds_[i - 1] < bounds_[i]);
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  std::size_t lo = 0, hi = bounds_.size();  // first bucket with v <= bound
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (v <= bounds_[mid])
      hi = mid;
    else
      lo = mid + 1;
  }
  counts_[lo].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int count) {
  BIBS_ASSERT(start > 0 && factor > 1 && count >= 1);
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i, v *= factor) b.push_back(v);
  return b;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  s.total = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry::Registry()
    : start_steady_(std::chrono::steady_clock::now()),
      start_system_(std::chrono::system_clock::now()) {
  detail::ensure_shutdown_hook();
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: see header
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

PhaseStat& Registry::phase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = phases_[name];
  if (!slot) slot = std::make_unique<PhaseStat>();
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace_back(name, h->snapshot());
  for (const auto& [name, p] : phases_)
    s.phases.push_back({name, p->calls(),
                        static_cast<double>(p->total_ns()) / 1e6});
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, p] : phases_) p->reset();
}

}  // namespace bibs::obs
