#pragma once
// Progress events emitted by the long-running engine phases (PPSFP fault
// simulation, BIST session emulation, TPG synthesis) so CLIs can show live
// status on multi-million-pattern runs. The callback is invoked from the
// emitting thread at a coarse cadence (never from the innermost loop); an
// empty std::function disables it with a single branch per block.

#include <cstdint>
#include <functional>

namespace bibs::obs {

struct Progress {
  /// Emitting phase, e.g. "fault_sim", "session", "tpg_synth".
  const char* phase = "";
  /// Work units processed so far (patterns / cycles / slots).
  std::int64_t done = 0;
  /// Total work units, -1 when open-ended.
  std::int64_t total = -1;
  /// Undetected faults still being simulated; -1 when not applicable.
  std::int64_t faults_live = -1;
  /// Faults detected so far; -1 when not applicable.
  std::int64_t faults_detected = -1;
  /// Fault coverage so far in [0, 1]; -1 when not applicable.
  double coverage = -1.0;
};

using ProgressFn = std::function<void(const Progress&)>;

/// A ProgressFn rendering single-line "\r"-refreshed updates to stderr.
ProgressFn stderr_progress();

/// stderr_progress() when the BIBS_PROGRESS environment variable is set to
/// anything but "" or "0"; an empty (disabled) function otherwise.
ProgressFn progress_from_env();

}  // namespace bibs::obs
