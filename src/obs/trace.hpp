#pragma once
// RAII scoped timers (spans) that feed the per-phase wall-time metrics and,
// when tracing is armed, emit Chrome trace-event JSON loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is armed by the BIBS_TRACE=<path> environment variable (read on
// first use) or programmatically via TraceWriter::instance().enable(path).
// When tracing is off a Span costs two steady_clock reads and two relaxed
// atomic adds; with BIBS_OBS=OFF builds the BIBS_SPAN macro compiles to
// nothing at all (see obs/obs.hpp).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bibs::obs {

class TraceWriter {
 public:
  /// The process-wide writer (leaked, like Registry). First touch arms the
  /// exit hook that flushes buffered events.
  static TraceWriter& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Starts buffering events; they are written to `path` by flush().
  void enable(std::string path);
  /// Stops buffering; already-buffered events are kept until flush().
  void disable();

  /// Complete event ("ph":"X"); timestamps are microseconds since process
  /// start. No-op while disabled.
  void complete_event(const char* name, const char* cat, double ts_us,
                      double dur_us);
  /// Instant event ("ph":"i") stamped now. No-op while disabled.
  void instant_event(const char* name, const char* cat);

  /// Writes all buffered events as {"traceEvents":[...]} to the enable()d
  /// path. Returns false when never enabled. Safe to call repeatedly; runs
  /// automatically at process exit.
  bool flush();

  const std::string path() const;
  std::size_t event_count() const;

 private:
  TraceWriter();

  struct Event {
    std::string name;
    std::string cat;
    char ph;
    double ts;
    double dur;
    std::uint64_t tid;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::string path_;
  std::atomic<bool> enabled_{false};
};

/// RAII scoped timer: accumulates into Registry::phase(name) and, when the
/// TraceWriter is enabled, emits one complete trace event on destruction.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "bibs");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace bibs::obs
