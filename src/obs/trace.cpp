#include "obs/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace bibs::obs {

namespace {

std::uint64_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffffu;
}

double us_since_start() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             now - Registry::global().start_steady())
      .count();
}

}  // namespace

TraceWriter::TraceWriter() {
  detail::ensure_shutdown_hook();
  if (const char* path = std::getenv("BIBS_TRACE"); path && *path)
    enable(path);
}

TraceWriter& TraceWriter::instance() {
  static TraceWriter* w = new TraceWriter();  // leaked: see header
  return *w;
}

void TraceWriter::enable(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceWriter::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceWriter::complete_event(const char* name, const char* cat,
                                 double ts_us, double dur_us) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({name, cat, 'X', ts_us, dur_us, this_thread_id()});
}

void TraceWriter::instant_event(const char* name, const char* cat) {
  if (!enabled()) return;
  const double ts = us_since_start();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({name, cat, 'i', ts, 0.0, this_thread_id()});
}

bool TraceWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return false;
  Json root = Json::object();
  Json arr = Json::array();
  for (const Event& e : events_) {
    Json ev = Json::object();
    ev["name"] = Json(e.name);
    ev["cat"] = Json(e.cat);
    ev["ph"] = Json(std::string(1, e.ph));
    ev["ts"] = Json(e.ts);
    if (e.ph == 'X') ev["dur"] = Json(e.dur);
    ev["pid"] = Json(1);
    ev["tid"] = Json(e.tid);
    arr.push_back(std::move(ev));
  }
  root["traceEvents"] = std::move(arr);
  root["displayTimeUnit"] = Json("ms");
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return false;
  out << root.dump() << "\n";
  return out.good();
}

const std::string TraceWriter::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

std::size_t TraceWriter::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Span::Span(const char* name, const char* cat)
    : name_(name), cat_(cat), t0_(std::chrono::steady_clock::now()) {}

Span::~Span() {
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0_).count());
  Registry::global().phase(name_).add_ns(ns);
  TraceWriter& w = TraceWriter::instance();
  if (w.enabled()) {
    const double ts = std::chrono::duration<double, std::micro>(
                          t0_ - Registry::global().start_steady())
                          .count();
    w.complete_event(name_, cat_, ts, static_cast<double>(ns) / 1e3);
  }
}

}  // namespace bibs::obs
