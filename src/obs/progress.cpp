#include "obs/progress.hpp"

#include <cstdio>
#include <cstdlib>

namespace bibs::obs {

ProgressFn stderr_progress() {
  return [](const Progress& p) {
    std::fprintf(stderr, "\r[%s] %lld", p.phase,
                 static_cast<long long>(p.done));
    if (p.total >= 0)
      std::fprintf(stderr, "/%lld", static_cast<long long>(p.total));
    if (p.faults_detected >= 0)
      std::fprintf(stderr, "  detected %lld",
                   static_cast<long long>(p.faults_detected));
    if (p.faults_live >= 0)
      std::fprintf(stderr, "  live %lld", static_cast<long long>(p.faults_live));
    if (p.coverage >= 0.0)
      std::fprintf(stderr, "  coverage %.2f%%", 100.0 * p.coverage);
    std::fprintf(stderr, "    ");
    std::fflush(stderr);
  };
}

ProgressFn progress_from_env() {
  const char* v = std::getenv("BIBS_PROGRESS");
  if (!v || !*v || (v[0] == '0' && v[1] == '\0')) return {};
  return stderr_progress();
}

}  // namespace bibs::obs
