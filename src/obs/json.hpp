#pragma once
// Minimal JSON value with a serializer and a parser, used by the obs layer:
// run reports and Chrome trace events are emitted through it, and tests parse
// the emitted files back to check well-formedness. Deliberately not a
// general-purpose JSON library: numbers are doubles (integral values are
// printed without a fraction), object keys keep insertion order, and parse
// errors throw bibs::ParseError.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace bibs::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int n) : Json(static_cast<double>(n)) {}
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const Array& items() const;
  const Object& members() const;

  /// Object access: inserts a null member on a missing key (non-const).
  Json& operator[](std::string_view key);
  /// Object lookup; nullptr when missing or not an object.
  const Json* find(std::string_view key) const;
  /// Array append.
  void push_back(Json v);
  /// Array / object element count; string length; 0 otherwise.
  std::size_t size() const;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Parses one JSON document; trailing non-whitespace is an error.
  static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace bibs::obs
