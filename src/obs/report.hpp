#pragma once
// Machine-readable end-of-run report: a JSON snapshot of every metric plus
// build identity and wall time, giving bench/example outputs a stable,
// diffable producer. Schema (version 1):
//
//   {
//     "bibs_report_version": 1,
//     "git_describe": "<git describe --always --dirty at configure time>",
//     "obs_compiled": true,            // BIBS_OBS build option
//     "started_unix_ms": 1712345678901,
//     "wall_time_ms": 1234.5,
//     "labels":     { "<key>": "<value>", ... },   // set_report_label()
//     "phases":     { "<span name>": {"calls": n, "wall_ms": x}, ... },
//     "counters":   { "<name>": n, ... },
//     "gauges":     { "<name>": x, ... },
//     "histograms": { "<name>": {"bounds": [...], "counts": [...],
//                                "total": n, "sum": x}, ... }
//   }
//
// Reports are written explicitly with write_report(), or automatically at
// process exit to the path in BIBS_METRICS (any instrumented binary — the
// bench_* drivers and examples — becomes a producer with no code changes).

#include <map>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace bibs::obs {

/// Attaches a free-form string label to every subsequent report — run-wide
/// configuration facts that are not metrics (e.g. the resolved SIMD lane
/// backend, "lanes" = "avx512"). Last write per key wins.
void set_report_label(const std::string& key, const std::string& value);

struct Report {
  std::string git_describe;
  bool obs_compiled = false;
  std::int64_t started_unix_ms = 0;
  double wall_time_ms = 0.0;
  std::map<std::string, std::string> labels;
  Registry::Snapshot metrics;

  /// Snapshot of the global registry, stamped with build identity and the
  /// wall time since the registry was first touched.
  static Report collect();

  Json to_json() const;
  std::string to_json_string() const;
};

/// Writes Report::collect() to `path` ("-" writes to stderr). Returns false
/// on I/O failure.
bool write_report(const std::string& path);

/// Writes to the path in BIBS_METRICS when set; returns whether a report was
/// written. Called automatically at process exit.
bool write_report_from_env();

namespace detail {
/// Arms the process-exit hook (trace flush + BIBS_METRICS report) once.
void ensure_shutdown_hook();
}  // namespace detail

}  // namespace bibs::obs
