#include "obs/report.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>

#include "obs/trace.hpp"

#ifndef BIBS_GIT_DESCRIBE
#define BIBS_GIT_DESCRIBE "unknown"
#endif

namespace bibs::obs {

namespace {

// Intentionally leaked: the first set_report_label() call can happen after
// detail::ensure_shutdown_hook() has armed the atexit report writer, so a
// plain function-local static would be destroyed before the hook runs
// Report::collect() and the copy would read a dead map.
std::mutex& label_mutex() {
  static auto* m = new std::mutex;
  return *m;
}

std::map<std::string, std::string>& label_map() {
  static auto* labels = new std::map<std::string, std::string>;
  return *labels;
}

}  // namespace

void set_report_label(const std::string& key, const std::string& value) {
  const std::lock_guard<std::mutex> lock(label_mutex());
  label_map()[key] = value;
}

Report Report::collect() {
  Registry& reg = Registry::global();
  Report r;
  r.git_describe = BIBS_GIT_DESCRIBE;
#if defined(BIBS_OBS_ENABLED) && BIBS_OBS_ENABLED
  r.obs_compiled = true;
#endif
  r.started_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          reg.start_system().time_since_epoch())
          .count();
  r.wall_time_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - reg.start_steady())
                       .count();
  r.metrics = reg.snapshot();
  {
    const std::lock_guard<std::mutex> lock(label_mutex());
    r.labels = label_map();
  }
  return r;
}

Json Report::to_json() const {
  Json root = Json::object();
  root["bibs_report_version"] = Json(1);
  root["git_describe"] = Json(git_describe);
  root["obs_compiled"] = Json(obs_compiled);
  root["started_unix_ms"] = Json(started_unix_ms);
  root["wall_time_ms"] = Json(wall_time_ms);

  Json jlabels = Json::object();
  for (const auto& [key, value] : labels) jlabels[key] = Json(value);
  root["labels"] = std::move(jlabels);

  Json phases = Json::object();
  for (const auto& p : metrics.phases) {
    Json entry = Json::object();
    entry["calls"] = Json(p.calls);
    entry["wall_ms"] = Json(p.wall_ms);
    phases[p.name] = std::move(entry);
  }
  root["phases"] = std::move(phases);

  Json counters = Json::object();
  for (const auto& [name, v] : metrics.counters) counters[name] = Json(v);
  root["counters"] = std::move(counters);

  Json gauges = Json::object();
  for (const auto& [name, v] : metrics.gauges) gauges[name] = Json(v);
  root["gauges"] = std::move(gauges);

  Json histograms = Json::object();
  for (const auto& [name, h] : metrics.histograms) {
    Json entry = Json::object();
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push_back(Json(b));
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) counts.push_back(Json(c));
    entry["bounds"] = std::move(bounds);
    entry["counts"] = std::move(counts);
    entry["total"] = Json(h.total);
    entry["sum"] = Json(h.sum);
    histograms[name] = std::move(entry);
  }
  root["histograms"] = std::move(histograms);
  return root;
}

std::string Report::to_json_string() const { return to_json().dump(); }

bool write_report(const std::string& path) {
  const std::string text = Report::collect().to_json_string();
  if (path == "-") {
    std::cerr << text << "\n";
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text << "\n";
  return out.good();
}

bool write_report_from_env() {
  const char* path = std::getenv("BIBS_METRICS");
  if (!path || !*path) return false;
  return write_report(path);
}

namespace detail {

namespace {
void shutdown_hook() {
  TraceWriter::instance().flush();
  write_report_from_env();
}
}  // namespace

void ensure_shutdown_hook() {
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(shutdown_hook); });
}

}  // namespace detail

}  // namespace bibs::obs
