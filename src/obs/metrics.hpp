#pragma once
// Process-wide metrics registry: named counters, gauges, fixed-bucket
// histograms and per-phase wall-time accumulators.
//
// Design for hot paths: a handle returned by Registry is a stable reference
// for the lifetime of the process, so instrumented code resolves it once
// (function-local static, see the BIBS_COUNTER macro in obs/obs.hpp) and then
// pays exactly one relaxed atomic op per event — cheap enough for the PPSFP
// block loop. Registration takes a mutex; updates never do.
//
// The first touch of Registry::global() arms a process-exit hook that flushes
// the trace writer (BIBS_TRACE) and writes the run report (BIBS_METRICS); see
// obs/report.hpp.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bibs::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written point-in-time value (e.g. current coverage fraction).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. A sample v lands in the first bucket with
/// v <= bounds[i]; samples above the last bound land in an implicit
/// overflow bucket, so counts has bounds.size() + 1 entries.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  /// {start, start*factor, ..., start*factor^(count-1)} — the usual latency
  /// / size bucketing helper.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
    std::uint64_t total = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Accumulated wall time of one named phase; fed by obs::Span.
class PhaseStat {
 public:
  void add_ns(std::uint64_t ns) {
    calls_.fetch_add(1, std::memory_order_relaxed);
    ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  std::uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const { return ns_.load(std::memory_order_relaxed); }
  void reset() {
    calls_.store(0, std::memory_order_relaxed);
    ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> ns_{0};
};

class Registry {
 public:
  /// The process-wide registry. Intentionally leaked (never destroyed) so
  /// exit hooks and static destructors can always use it safely.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bucket bounds are fixed by the first registration of `name`; later
  /// calls return the existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  PhaseStat& phase(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    struct Phase {
      std::string name;
      std::uint64_t calls = 0;
      double wall_ms = 0.0;
    };
    std::vector<Phase> phases;
  };
  Snapshot snapshot() const;

  /// Zeroes every metric (registration survives). For tests.
  void reset();

  /// Process-start reference points (taken at first registry touch).
  std::chrono::steady_clock::time_point start_steady() const {
    return start_steady_;
  }
  std::chrono::system_clock::time_point start_system() const {
    return start_system_;
  }

 private:
  Registry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<PhaseStat>> phases_;
  std::chrono::steady_clock::time_point start_steady_;
  std::chrono::system_clock::time_point start_system_;
};

}  // namespace bibs::obs
