#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bibs::obs {

bool Json::boolean() const {
  BIBS_ASSERT(type_ == Type::kBool);
  return bool_;
}

double Json::number() const {
  BIBS_ASSERT(type_ == Type::kNumber);
  return num_;
}

const std::string& Json::str() const {
  BIBS_ASSERT(type_ == Type::kString);
  return str_;
}

const Json::Array& Json::items() const {
  BIBS_ASSERT(type_ == Type::kArray);
  return arr_;
}

const Json::Object& Json::members() const {
  BIBS_ASSERT(type_ == Type::kObject);
  return obj_;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  BIBS_ASSERT(type_ == Type::kObject);
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(std::string(key), Json());
  return obj_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  BIBS_ASSERT(type_ == Type::kArray);
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray: return arr_.size();
    case Type::kObject: return obj_.size();
    case Type::kString: return str_.size();
    default: return 0;
  }
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  out += buf;
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull: out = "null"; break;
    case Type::kBool: out = bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(num_, out); break;
    case Type::kString: dump_string(str_, out); break;
    case Type::kArray: {
      out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out = "{";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        dump_string(obj_[i].first, out);
        out += ':';
        out += obj_[i].second.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; good enough for trace files).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) fail("bad number");
    return Json(d);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace bibs::obs
