#pragma once
// Umbrella header and the zero-overhead instrumentation macros used in hot
// paths. When the CMake option BIBS_OBS is ON (the default) the build defines
// BIBS_OBS_ENABLED=1 and the macros expand to one-time handle registration
// plus a relaxed atomic op per event; when OFF they compile to nothing, so
// instrumented hot loops carry zero extra code.
//
// Usage:
//   BIBS_COUNTER(c_patterns, "fault_sim.patterns");  // once per scope
//   BIBS_COUNTER_ADD(c_patterns, lanes);             // per event
//   BIBS_SPAN("fault_sim.run");                      // RAII scope timer
//
// Note: with BIBS_OBS=OFF the argument expressions of *_ADD/*_SET/*_OBSERVE
// are not evaluated — keep them side-effect free.

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

#if defined(BIBS_OBS_ENABLED) && BIBS_OBS_ENABLED

#define BIBS_OBS_CAT2(a, b) a##b
#define BIBS_OBS_CAT(a, b) BIBS_OBS_CAT2(a, b)

/// RAII span: per-phase wall-time metric + Chrome trace event when enabled.
#define BIBS_SPAN(name) \
  ::bibs::obs::Span BIBS_OBS_CAT(bibs_span_, __LINE__)(name)

/// Resolves a stable Counter handle once (thread-safe static init).
#define BIBS_COUNTER(var, name) \
  static ::bibs::obs::Counter& var = \
      ::bibs::obs::Registry::global().counter(name)
#define BIBS_COUNTER_ADD(var, n) (var).add(static_cast<std::uint64_t>(n))

#define BIBS_GAUGE(var, name) \
  static ::bibs::obs::Gauge& var = ::bibs::obs::Registry::global().gauge(name)
#define BIBS_GAUGE_SET(var, v) (var).set(static_cast<double>(v))

#define BIBS_HISTOGRAM(var, name, bounds) \
  static ::bibs::obs::Histogram& var = \
      ::bibs::obs::Registry::global().histogram(name, bounds)
#define BIBS_HISTOGRAM_OBSERVE(var, v) (var).observe(static_cast<double>(v))

#else  // BIBS_OBS disabled: everything compiles away.

#define BIBS_SPAN(name) ((void)0)
#define BIBS_COUNTER(var, name) ((void)0)
#define BIBS_COUNTER_ADD(var, n) ((void)0)
#define BIBS_GAUGE(var, name) ((void)0)
#define BIBS_GAUGE_SET(var, v) ((void)0)
#define BIBS_HISTOGRAM(var, name, bounds) ((void)0)
#define BIBS_HISTOGRAM_OBSERVE(var, v) ((void)0)

#endif
