#pragma once
// Circular self-test path (Krasniewski & Pilarski [4]) — the low-hardware
// BIST baseline the paper contrasts BIBS against. Every flip-flop is spliced
// into one circular path with an XOR: FF_i's next state is its functional D
// XORed with FF_{i-1}'s present state. The circuit tests itself: the ring is
// simultaneously pattern generator and compactor. The cost is test time —
// kernels are neither balanced nor functionally exhaustively covered, and
// the paper cites an estimated T * 2^M cycles with T in [4, 8].

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "gate/netlist.hpp"
#include "rt/control.hpp"

namespace bibs::sim {

struct CstpReport {
  std::int64_t cycles = 0;
  std::size_t total_faults = 0;
  /// Faults whose machine diverged in any flip-flop at any cycle.
  std::size_t detected_ideal = 0;
  /// Faults whose final ring contents (the signature) differ.
  std::size_t detected_by_signature = 0;
  /// How the run ended; anything but kFinished marks a partial report
  /// (only fully completed fault batches are counted).
  rt::RunStatus status = rt::RunStatus::kFinished;
};

class CstpSession {
 public:
  /// The ring is every DFF of the netlist in id order, seeded with a single
  /// 1 in the first flip-flop (an all-zero ring with quiet inputs would
  /// never self-start).
  explicit CstpSession(const gate::Netlist& nl);

  /// `ctl` is polled every 64 emulated cycles (work units are cycles summed
  /// across the fault batches); an interrupted run drops the in-flight
  /// batch and returns a partial report whose `status` says why.
  CstpReport run(const fault::FaultList& faults, std::int64_t cycles,
                 const rt::RunControl& ctl = {}) const;

  /// Worker threads for the independent fault batches (same deterministic
  /// chunking as sim::BistSession). 0 (the default) resolves BIBS_THREADS
  /// and falls back to serial; reports are bit-identical for every value.
  void set_threads(int threads);

  /// Pattern-lane count of the per-batch LaneEngine (batches carry
  /// lanes - 1 faults). 0 (the default) resolves
  /// gate::active_lane_backend(); other values must match a compiled-in,
  /// CPU-supported backend (DesignError otherwise). Reports are
  /// width-invariant: every fault's ring evolves in its own lane.
  void set_batch_lanes(int lanes);

  /// Fault model the next run() injects (stuck-at by default). kTransition
  /// requires a stem-only fault list (fault::FaultList::transition) and
  /// emulates gross one-cycle delays against the ring's own at-speed
  /// pattern sequence.
  void set_fault_model(fault::FaultModel model) { model_ = model; }
  fault::FaultModel fault_model() const { return model_; }

  /// Fault-free run measuring *pattern* coverage: the number of cycles until
  /// the watched flip-flops (<= 24 of them) have taken `target` distinct
  /// joint values, or -1 if max_cycles pass first (or the run was
  /// interrupted via `ctl`, polled every 64 cycles). This is the quantity
  /// the paper's "T * 2^M" estimate is about: how long the unstructured
  /// ring takes to exhaust a kernel's input space, versus exactly 2^M - 1
  /// for the maximal-length BIBS TPG.
  std::int64_t cycles_to_cover(const std::vector<gate::NetId>& watch,
                               std::uint64_t target, std::int64_t max_cycles,
                               const rt::RunControl& ctl = {}) const;

 private:
  const gate::Netlist* nl_;
  std::vector<gate::NetId> ring_;
  /// Functional D net of ring_[i], precomputed once. Only the ring's
  /// *structure* is cacheable: unlike the BIBS TPG (whose LFSR stream is
  /// fault-independent and shared across batches), the ring's bit stream
  /// feeds back through the faulted logic, so it differs per fault lane and
  /// must be recomputed every cycle.
  std::vector<gate::NetId> ring_d_;
  int threads_ = 0;  // 0 = BIBS_THREADS, else serial
  int batch_lanes_ = 0;  // 0 = active_lane_backend()
  fault::FaultModel model_ = fault::FaultModel::kStuckAt;
};

}  // namespace bibs::sim
