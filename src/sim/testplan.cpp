#include "sim/testplan.hpp"

#include <algorithm>
#include <sstream>

#include "sim/session.hpp"

namespace bibs::sim {

std::uint64_t TestPlan::total_test_time() const {
  std::vector<std::uint64_t> longest(static_cast<std::size_t>(sessions), 0);
  for (const KernelPlan& k : kernels)
    longest[static_cast<std::size_t>(k.session)] =
        std::max(longest[static_cast<std::size_t>(k.session)], k.cycles);
  std::uint64_t total = 0;
  for (std::uint64_t t : longest) total += t;
  return total;
}

std::string TestPlan::to_string(const rtl::Netlist& n) const {
  std::ostringstream os;
  os << "test plan for '" << n.name() << "': " << kernels.size()
     << " kernel(s), " << sessions << " session(s), total "
     << total_test_time() << " clocks\n";
  for (int sess = 0; sess < sessions; ++sess) {
    os << "session " << sess + 1 << ":\n";
    for (const KernelPlan& k : kernels) {
      if (k.session != sess) continue;
      os << "  kernel: TPG = [";
      for (std::size_t i = 0; i < k.tpg_registers.size(); ++i)
        os << (i ? " " : "") << k.tpg_registers[i];
      os << "] as " << k.tpg.lfsr_stages << "-stage LFSR, p(x) = "
         << k.tpg.poly.to_string() << "\n          SA  = [";
      for (std::size_t i = 0; i < k.sa_registers.size(); ++i)
        os << (i ? " " : "") << k.sa_registers[i];
      os << "], " << k.cycles << " clocks, signatures:";
      for (std::uint64_t sig : k.golden_signatures) {
        os << " 0x" << std::hex << sig << std::dec;
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string TestPlan::controller_rtl() const {
  std::ostringstream os;
  os << "// one-hot BIST controller (" << sessions + 1 << " states)\n";
  os << "states: IDLE";
  for (int s = 0; s < sessions; ++s) os << ", S" << s + 1;
  os << ", DONE\n";
  for (int s = 0; s < sessions; ++s) {
    std::uint64_t longest = 0;
    for (const KernelPlan& k : kernels)
      if (k.session == s) longest = std::max(longest, k.cycles);
    os << "S" << s + 1 << ": configure session-" << s + 1
       << " BILBO modes; count " << longest << " clocks; then "
       << (s + 1 < sessions ? ("goto S" + std::to_string(s + 2))
                            : std::string("compare signatures, goto DONE"))
       << "\n";
  }
  return os.str();
}

TestPlan make_test_plan(const rtl::Netlist& n, const gate::Elaboration& elab,
                        const core::DesignResult& design,
                        std::uint64_t cycle_cap) {
  if (!design.report.ok)
    throw DesignError("make_test_plan: design is not balanced BISTable");

  TestPlan plan;
  plan.bilbo = design.bilbo;

  std::vector<core::Kernel> kernels;
  for (const core::Kernel& k : design.report.kernels)
    if (!k.trivial) kernels.push_back(k);
  const core::Schedule sched = core::schedule_sessions(n, kernels);
  plan.sessions = sched.sessions;

  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const core::Kernel& k = kernels[i];
    KernelPlan kp;
    kp.session = sched.session_of[i];
    for (rtl::ConnId e : k.input_regs)
      kp.tpg_registers.push_back(n.connection(e).reg->name);
    for (rtl::ConnId e : k.output_regs)
      kp.sa_registers.push_back(n.connection(e).reg->name);

    BistSession session(n, elab, design.bilbo, k);
    kp.tpg = session.tpg();
    kp.depth = core::kernel_depth(n, design.bilbo, k);
    kp.cycles = std::min<std::uint64_t>(kp.tpg.test_time(kp.depth), cycle_cap);
    const SessionReport rep =
        session.run(fault::FaultList::from_faults({}),
                    static_cast<std::int64_t>(kp.cycles));
    kp.golden_signatures = rep.golden_signatures;
    plan.kernels.push_back(std::move(kp));
  }
  return plan;
}

}  // namespace bibs::sim
