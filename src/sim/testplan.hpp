#pragma once
// Test-plan synthesis: the tail of the BITS flow the paper describes —
// given a BISTable design, produce the complete executable test program:
// per session, which registers run as TPGs (with which LFSR) and which as
// SAs, how many clocks to apply, and the fault-free signatures a tester
// compares against. A simple one-hot controller description is emitted for
// documentation/synthesis handoff.

#include <cstdint>
#include <string>
#include <vector>

#include "core/designer.hpp"
#include "core/schedule.hpp"
#include "gate/synth.hpp"
#include "tpg/design.hpp"

namespace bibs::sim {

struct KernelPlan {
  int session = 0;
  std::vector<std::string> tpg_registers;  ///< in TPG concatenation order
  std::vector<std::string> sa_registers;
  tpg::TpgDesign tpg;
  int depth = 0;
  /// Clocks for this kernel: min(2^M - 1 + depth, cycle cap).
  std::uint64_t cycles = 0;
  /// Fault-free MISR signature per SA register.
  std::vector<std::uint64_t> golden_signatures;
};

struct TestPlan {
  core::BilboSet bilbo;
  std::vector<KernelPlan> kernels;
  int sessions = 0;

  /// Total clocks: kernels in one session run concurrently.
  std::uint64_t total_test_time() const;
  /// Human-readable plan (the "test program" listing).
  std::string to_string(const rtl::Netlist& n) const;
  /// A one-hot controller FSM sketch: one state per session plus done.
  std::string controller_rtl() const;
};

/// Builds the plan for a valid BIBS (or KA85) design. Kernels whose full
/// functionally exhaustive run exceeds `cycle_cap` are truncated to the cap
/// (pseudo-random BIST), which is the paper's Table 2 operating mode.
TestPlan make_test_plan(const rtl::Netlist& n, const gate::Elaboration& elab,
                        const core::DesignResult& design,
                        std::uint64_t cycle_cap = 65536);

}  // namespace bibs::sim
