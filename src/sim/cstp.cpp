#include "sim/cstp.hpp"

#include <algorithm>
#include <atomic>

#include "common/bitvec.hpp"
#include "gate/lanes.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"
#include "sim/lane_engine.hpp"

namespace bibs::sim {

using gate::NetId;

CstpSession::CstpSession(const gate::Netlist& nl) : nl_(&nl) {
  ring_ = nl.dffs();
  BIBS_ASSERT(!ring_.empty());
  ring_d_.reserve(ring_.size());
  for (NetId ff : ring_) {
    const gate::Gate& g = nl.gate(ff);
    BIBS_ASSERT(g.fanin.size() == 1);
    ring_d_.push_back(g.fanin[0]);
  }
}

void CstpSession::set_threads(int threads) {
  BIBS_ASSERT(threads >= 0);
  threads_ = threads;
}

void CstpSession::set_batch_lanes(int lanes) {
  BIBS_ASSERT(lanes >= 0);
  if (lanes != 0 && gate::lane_backend_for_lanes(lanes) == nullptr)
    throw DesignError("no compiled-in, CPU-supported lane backend runs " +
                      std::to_string(lanes) + " pattern lanes per block");
  batch_lanes_ = lanes;
}

CstpReport CstpSession::run(const fault::FaultList& faults,
                            std::int64_t cycles,
                            const rt::RunControl& ctl) const {
  CstpReport rep;
  rep.cycles = cycles;
  rep.total_faults = faults.size();

  std::vector<char> det_ideal(faults.size(), 0);
  std::vector<char> det_sig(faults.size(), 0);

  const gate::LaneBackend* lb =
      batch_lanes_ == 0 ? &gate::active_lane_backend()
                        : gate::lane_backend_for_lanes(batch_lanes_);
  BIBS_ASSERT(lb != nullptr);  // set_batch_lanes validated non-zero values
  const std::size_t kBatchFaults = static_cast<std::size_t>(lb->lanes) - 1;
  const std::size_t wstride = static_cast<std::size_t>(lb->words);

  const std::size_t n_batches = std::max<std::size_t>(
      1, (faults.size() + kBatchFaults - 1) / kBatchFaults);
  std::atomic<std::int64_t> work_done{0};

  struct BatchResult {
    bool completed = false;
    rt::RunStatus status = rt::RunStatus::kFinished;
    std::vector<char> det_ideal;  // per fault of this batch
    std::vector<char> det_sig;
  };
  std::vector<BatchResult> results(n_batches);

  const auto run_batch = [&](std::size_t bi, BatchResult& out) {
    const std::size_t base = bi * kBatchFaults;
    const std::size_t batch = std::min<std::size_t>(
        kBatchFaults, faults.size() > base ? faults.size() - base : 0);
    LaneEngine eng(*nl_,
                   std::span<const fault::Fault>(faults.faults())
                       .subspan(base, batch),
                   lb, model_);
    // Seed the ring.
    eng.set_dff_state(ring_.front(), ~0ull);

    // All per-lane state is W-strided (lane l at word l/64 bit l%64);
    // the fault-free machine is lane 0, i.e. bit 0 of word 0.
    std::vector<std::uint64_t> diverged(wstride, 0);
    std::vector<std::uint64_t> prev(ring_.size() * wstride);
    std::vector<std::uint64_t> next(wstride);
    for (std::int64_t t = 0; t < cycles; ++t) {
      if ((t & 63) == 0) {
        if (const rt::RunStatus st = ctl.interruption(
                work_done.load(std::memory_order_relaxed));
            st != rt::RunStatus::kFinished) {
          out.status = st;
          return;  // drop the in-flight batch whole
        }
      }
      work_done.fetch_add(1, std::memory_order_relaxed);
      eng.eval();
      // Splice: next(FF_i) = D_i XOR Q(FF_{i-1}), circularly. Capture the
      // present ring states first (all updates are simultaneous).
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::uint64_t* s = eng.state_words(ring_[i]);
        std::copy(s, s + wstride, prev.begin() + i * wstride);
      }
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::uint64_t* d = eng.value_words(ring_d_[i]);
        const std::uint64_t* from_ring =
            prev.data() + ((i + ring_.size() - 1) % ring_.size()) * wstride;
        for (std::size_t w = 0; w < wstride; ++w)
          next[w] = d[w] ^ from_ring[w];
        eng.clock_override_words(ring_[i], next.data());
      }
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::uint64_t* v = eng.state_words(ring_[i]);
        const std::uint64_t good = (v[0] & 1u) ? ~0ull : 0ull;
        for (std::size_t w = 0; w < wstride; ++w) diverged[w] |= v[w] ^ good;
      }
    }
    out.det_ideal.assign(batch, 0);
    out.det_sig.assign(batch, 0);
    for (std::size_t k = 0; k < batch; ++k) {
      if ((diverged[(k + 1) >> 6] >> ((k + 1) & 63)) & 1u)
        out.det_ideal[k] = 1;
      for (NetId ff : ring_) {
        const std::uint64_t* v = eng.state_words(ff);
        const std::uint64_t good = (v[0] & 1u) ? ~0ull : 0ull;
        if ((v[(k + 1) >> 6] ^ good) >> ((k + 1) & 63) & 1u) {
          out.det_sig[k] = 1;
          break;
        }
      }
    }
    out.completed = true;
  };

  // Same deterministic batch dispatch + prefix merge as sim::BistSession:
  // contiguous chunks, a worker abandons its chunk on interruption, and only
  // the completed batch prefix reaches the report.
  par::ThreadPool pool(threads_);
  BIBS_GAUGE(g_threads, "par.threads");
  BIBS_GAUGE_SET(g_threads, pool.threads());
  pool.parallel_for_chunks(n_batches,
                           [&](int, std::size_t b, std::size_t e) {
                             for (std::size_t i = b; i < e; ++i) {
                               run_batch(i, results[i]);
                               if (!results[i].completed) return;
                             }
                           });

  std::size_t completed = 0;
  while (completed < n_batches && results[completed].completed) {
    const std::size_t base = completed * kBatchFaults;
    const BatchResult& r = results[completed];
    for (std::size_t k = 0; k < r.det_ideal.size(); ++k) {
      if (r.det_ideal[k]) det_ideal[base + k] = 1;
      if (r.det_sig[k]) det_sig[base + k] = 1;
    }
    ++completed;
  }
  if (completed < n_batches) rep.status = results[completed].status;

  rep.detected_ideal = static_cast<std::size_t>(
      std::count(det_ideal.begin(), det_ideal.end(), 1));
  rep.detected_by_signature = static_cast<std::size_t>(
      std::count(det_sig.begin(), det_sig.end(), 1));
  return rep;
}

std::int64_t CstpSession::cycles_to_cover(
    const std::vector<gate::NetId>& watch, std::uint64_t target,
    std::int64_t max_cycles, const rt::RunControl& ctl) const {
  BIBS_ASSERT(!watch.empty() && watch.size() <= 24);
  LaneEngine eng(*nl_, {});
  eng.set_dff_state(ring_.front(), ~0ull);

  BitVec seen(std::size_t{1} << watch.size());
  std::uint64_t covered = 0;
  std::vector<std::uint64_t> prev(ring_.size());
  for (std::int64_t t = 0; t < max_cycles; ++t) {
    if ((t & 63) == 0 &&
        ctl.interruption(t) != rt::RunStatus::kFinished)
      return -1;
    std::uint64_t pattern = 0;
    for (std::size_t i = 0; i < watch.size(); ++i)
      if (eng.state(watch[i]) & 1u) pattern |= 1ull << i;
    if (!seen.get(static_cast<std::size_t>(pattern))) {
      seen.set(static_cast<std::size_t>(pattern), true);
      if (++covered >= target) return t;
    }
    eng.eval();
    for (std::size_t i = 0; i < ring_.size(); ++i)
      prev[i] = eng.state(ring_[i]);
    for (std::size_t i = 0; i < ring_.size(); ++i)
      eng.clock_override(ring_[i],
                         eng.value(ring_d_[i]) ^
                             prev[(i + ring_.size() - 1) % ring_.size()]);
  }
  return -1;
}

}  // namespace bibs::sim
