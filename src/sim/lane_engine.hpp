#pragma once
// Parallel-fault gate-level machine shared by the BIST session emulator and
// the CSTP baseline: lane 0 carries the fault-free machine, lanes 1..L-1
// carry machines with one injected stuck-at fault each, where L is the
// pattern-lane count of the gate::LaneBackend the engine runs on (64 on
// scalar64, 256 on avx2, 512 on avx512). Values are W-strided arrays of
// 64-bit words — net n owns words [n*W, n*W + W), lane l lives in word
// l/64 bit l%64 — so lane 0..63 stay bit-identical to the scalar engine.
//
// Evaluation runs on the compiled gate::EvalProgram instruction stream via
// the backend's kernels. The batch's fault sites are compiled into per-gate
// tags at construction: the instructions carrying a stem or pin fault
// become "special" entries, and eval() executes the straight-line fused
// program between them — fault-free gates never test for faults, never
// touch a hash map, and never re-apply identity stem masks.

#include <span>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "gate/lanes.hpp"
#include "gate/netlist.hpp"
#include "gate/program.hpp"
#include "gate/sim.hpp"

namespace bibs::sim {

class LaneEngine {
 public:
  /// Throws DesignError if a fault in `batch` does not fit the netlist
  /// (net out of range, pin index beyond the gate's fan-in): fault lists
  /// can come from checkpoints or external tools and are validated before
  /// they reach the unchecked hot loops. `batch` must carry fewer than
  /// lanes() faults (asserted). `backend` == nullptr runs on
  /// gate::active_lane_backend().
  ///
  /// Under fault::FaultModel::kTransition every batch fault must be a stem
  /// (pin faults throw) and is injected as a gross one-cycle delay: before
  /// each eval() the site's lane is forced to its *previous* applied value
  /// when that value matches the transition's initial state (0 for
  /// slow-to-rise, 1 for slow-to-fall); the first eval() after construction
  /// injects nothing, because no launch value exists yet.
  LaneEngine(const gate::Netlist& nl, std::span<const fault::Fault> batch,
             const gate::LaneBackend* backend = nullptr,
             fault::FaultModel model = fault::FaultModel::kStuckAt);

  /// 64-bit words per value (W); lanes() == words() * 64 pattern lanes,
  /// so the engine fits lanes() - 1 faults next to the fault-free lane 0.
  int words() const { return lane_->words; }
  int lanes() const { return lane_->lanes; }
  const gate::LaneBackend& backend() const { return *lane_; }

  /// Broadcasts `word` across all W state words of `dff` — every 64-lane
  /// word gets the same bits, which keeps stimulus width-invariant (lane l
  /// and lane l % 64 always see the same drive).
  void set_dff_state(gate::NetId dff, std::uint64_t word);
  /// Word 0 (lanes 0..63) of the DFF state / net value — the scalar view.
  std::uint64_t state(gate::NetId dff) const {
    return state_[static_cast<std::size_t>(dff) * wstride_];
  }
  std::uint64_t value(gate::NetId net) const {
    return val_[static_cast<std::size_t>(net) * wstride_];
  }
  /// All W words of a net's value / DFF state (lane l at word l/64).
  const std::uint64_t* value_words(gate::NetId net) const {
    return val_.data() + static_cast<std::size_t>(net) * wstride_;
  }
  const std::uint64_t* state_words(gate::NetId dff) const {
    return state_.data() + static_cast<std::size_t>(dff) * wstride_;
  }

  /// Evaluates all combinational logic with lane-wise fault injection.
  void eval();
  /// Clocks every DFF (stem faults on Q are re-applied at the next eval).
  void clock();
  /// Clocks one DFF with an explicit next value (for reconfigured
  /// registers, e.g. the XOR splice of a circular self-test path),
  /// broadcast across all W words. Pin faults on the DFF still apply.
  void clock_override(gate::NetId dff, std::uint64_t next);
  /// Same with all W words given explicitly (next[0..W)) — the per-lane
  /// splice of a faulty wide machine.
  void clock_override_words(gate::NetId dff, const std::uint64_t* next);

 private:
  struct PinFault {
    int pin;
    std::uint32_t word;  // which 64-lane word the fault's lane lives in
    std::uint64_t mask;  // lane bit within that word
    bool stuck;
  };
  /// One transition-fault site: its stem mask bit is raised/cleared before
  /// every eval() from the lane's previous applied value.
  struct TransSite {
    gate::NetId net;
    std::uint32_t word;
    std::uint64_t mask;
    bool stf;            // slow-to-fall: inject s-a-1 while prev was 1
    bool source;         // kInput/kConst net: value re-fixed every eval()
    std::uint64_t base;  // source nets: the fault-free driven word
  };
  /// One instruction carrying at least one fault: its pin faults live in
  /// pin_faults_[pf_begin, pf_end); stem masks are read from stem0_/stem1_.
  struct Special {
    std::uint32_t instr;
    std::uint32_t pf_begin;
    std::uint32_t pf_end;
  };

  void apply_stem_words(gate::NetId id, std::uint64_t* v) const {
    const std::size_t n = static_cast<std::size_t>(id) * wstride_;
    for (std::size_t j = 0; j < wstride_; ++j)
      v[j] = (v[j] | stem1_[n + j]) & ~stem0_[n + j];
  }
  void next_with_pin_faults(gate::NetId dff, std::uint64_t* next) const;

  const gate::Netlist* nl_;
  const gate::LaneBackend* lane_;
  std::size_t wstride_;  // == words()
  gate::EvalProgram prog_;
  std::vector<std::uint64_t> val_;
  std::vector<std::uint64_t> state_;
  std::vector<std::uint64_t> stem0_;
  std::vector<std::uint64_t> stem1_;
  std::vector<Special> special_;        // faulted instructions, ascending
  std::vector<PinFault> pin_faults_;    // grouped per special_ entry
  std::vector<TransSite> trans_;        // transition model only
  std::vector<std::uint8_t> trans_prev_;  // per site: last applied value
  bool trans_armed_ = false;  // false until the first eval() completes
  /// Pin faults on DFF D inputs (applied at clock time, not by eval).
  std::unordered_map<gate::NetId, std::vector<PinFault>> dff_pin_faults_;
  /// (dff net, D net) pairs — clock() without per-cycle Gate indirection.
  std::vector<std::pair<gate::NetId, gate::NetId>> dff_d_;
};

}  // namespace bibs::sim
