#pragma once
// Parallel-fault gate-level machine shared by the BIST session emulator and
// the CSTP baseline: lane 0 of every 64-bit word carries the fault-free
// machine, lanes 1..63 carry machines with one injected stuck-at fault each.
//
// Evaluation runs on the compiled gate::EvalProgram instruction stream. The
// batch's fault sites are compiled into per-gate tags at construction: the
// (at most 63) instructions carrying a stem or pin fault become "special"
// entries, and eval() executes the straight-line fused program between them
// — fault-free gates never test for faults, never touch a hash map, and
// never re-apply identity stem masks.

#include <span>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "gate/netlist.hpp"
#include "gate/program.hpp"
#include "gate/sim.hpp"

namespace bibs::sim {

class LaneEngine {
 public:
  /// Throws DesignError if a fault in `batch` does not fit the netlist
  /// (net out of range, pin index beyond the gate's fan-in): fault lists
  /// can come from checkpoints or external tools and are validated before
  /// they reach the unchecked hot loops.
  LaneEngine(const gate::Netlist& nl, std::span<const fault::Fault> batch);

  void set_dff_state(gate::NetId dff, std::uint64_t word);
  std::uint64_t state(gate::NetId dff) const {
    return state_[static_cast<std::size_t>(dff)];
  }
  std::uint64_t value(gate::NetId net) const {
    return val_[static_cast<std::size_t>(net)];
  }

  /// Evaluates all combinational logic with lane-wise fault injection.
  void eval();
  /// Clocks every DFF (stem faults on Q are re-applied at the next eval).
  void clock();
  /// Clocks one DFF with an explicit next value (for reconfigured registers,
  /// e.g. the XOR splice of a circular self-test path). Pin faults on the
  /// DFF still apply.
  void clock_override(gate::NetId dff, std::uint64_t next);

 private:
  struct PinFault {
    int pin;
    std::uint64_t mask;
    bool stuck;
  };
  /// One instruction carrying at least one fault: its pin faults live in
  /// pin_faults_[pf_begin, pf_end); stem masks are read from stem0_/stem1_.
  struct Special {
    std::uint32_t instr;
    std::uint32_t pf_begin;
    std::uint32_t pf_end;
  };

  std::uint64_t apply_stem(gate::NetId id, std::uint64_t v) const {
    return (v | stem1_[static_cast<std::size_t>(id)]) &
           ~stem0_[static_cast<std::size_t>(id)];
  }
  std::uint64_t next_with_pin_faults(gate::NetId dff,
                                     std::uint64_t next) const;

  const gate::Netlist* nl_;
  gate::EvalProgram prog_;
  std::vector<std::uint64_t> val_;
  std::vector<std::uint64_t> state_;
  std::vector<std::uint64_t> stem0_;
  std::vector<std::uint64_t> stem1_;
  std::vector<Special> special_;        // faulted instructions, ascending
  std::vector<PinFault> pin_faults_;    // grouped per special_ entry
  /// Pin faults on DFF D inputs (applied at clock time, not by eval).
  std::unordered_map<gate::NetId, std::vector<PinFault>> dff_pin_faults_;
  /// (dff net, D net) pairs — clock() without per-cycle Gate indirection.
  std::vector<std::pair<gate::NetId, gate::NetId>> dff_d_;
};

}  // namespace bibs::sim
