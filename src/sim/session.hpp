#pragma once
// End-to-end BIST session emulation: the TPG of Section 4 drives a kernel of
// the elaborated circuit cycle by cycle while MISRs compact the kernel's
// output-register D values, exactly as a silicon BIST session would run.
//
// Fault handling uses classic *parallel-fault* simulation on a
// sim::LaneEngine: lane 0 carries the fault-free machine, lanes 1..L-1
// carry machines with one injected stuck-at fault each, where L is the
// pattern-lane count of the gate::LaneBackend the batches run on (64 on
// scalar64, 512 on avx512; see set_batch_lanes). Detection is judged on
// final MISR signatures, so signature aliasing is modelled (and measured)
// rather than assumed away. Reports are identical at every width — each
// fault's lane evolves independently of its batch neighbours — but
// checkpoints record the batch size and only resume at the same width.
//
// Multi-threading (set_threads / BIBS_THREADS): the (L-1)-fault batches are
// independent whole-session reruns, so they dispatch to pool workers as
// deterministic contiguous chunks, each with its own LaneEngine / TPG / MISR
// state. Results merge in batch order and an interrupted run keeps only the
// completed batch *prefix*, so reports, checkpoints and resume are
// bit-identical for any thread count.

#include <cstdint>
#include <vector>

#include "core/kernels.hpp"
#include "fault/fault.hpp"
#include "gate/synth.hpp"
#include "obs/progress.hpp"
#include "rt/checkpoint.hpp"
#include "rt/control.hpp"
#include "tpg/design.hpp"

namespace bibs::sim {

struct SessionReport {
  std::int64_t cycles = 0;
  std::size_t total_faults = 0;
  /// Faults whose faulty machine produced a different value at some output
  /// register D pin at some cycle (detectable by an ideal observer).
  std::size_t detected_at_outputs = 0;
  /// Faults whose final MISR signature differs from the fault-free one.
  std::size_t detected_by_signature = 0;
  /// detected_at_outputs - detected_by_signature: losses to MISR aliasing.
  std::size_t aliased = 0;
  /// Fault-free signature per output register (kernel output order).
  std::vector<std::uint64_t> golden_signatures;
  /// How the run ended; anything but kFinished marks a partial report
  /// (only fully completed 63-fault batches are counted).
  rt::RunStatus status = rt::RunStatus::kFinished;

  /// Bit-identity comparison over every deterministic field — the session
  /// analogue of fault::CoverageCurve comparison, used by the bibs::check
  /// thread-identity sweep (serial report == N-thread report).
  bool operator==(const SessionReport&) const = default;
};

class BistSession {
 public:
  /// The kernel must be balanced BISTable under `bilbo`; the TPG is built
  /// with MC_TPG from the kernel's generalized structure.
  BistSession(const rtl::Netlist& n, const gate::Elaboration& elab,
              const core::BilboSet& bilbo, const core::Kernel& kernel);

  const tpg::TpgDesign& tpg() const { return tpg_; }

  /// Stuck-at faults on the gates inside the kernel's logic cone, collapsed.
  fault::FaultList kernel_faults() const;

  /// Transition (slow-to-rise/slow-to-fall) faults on the stems inside the
  /// kernel's logic cone — the at-speed companion universe to
  /// kernel_faults(). Run them with set_fault_model(kTransition).
  fault::FaultList kernel_transition_faults() const;

  /// Fault model the next run() injects. Stuck-at (the default) treats the
  /// fault list classically; kTransition requires a stem-only list (e.g.
  /// kernel_transition_faults()) and emulates gross one-cycle delays:
  /// consecutive TPG patterns form the launch/capture pairs, so a session
  /// must run at least two cycles to detect anything. Checkpoints record
  /// the model and resume refuses a mismatch.
  void set_fault_model(fault::FaultModel model) { model_ = model; }
  fault::FaultModel fault_model() const { return model_; }

  /// Runs the session for `cycles` clocks (default: the TPG's full pattern
  /// count plus the kernel depth) against the given faults. `ctl` is polled
  /// every 64 emulated cycles (work units are cycles summed across the
  /// fault batches): an interrupted run stops within one 64-cycle slice
  /// and returns a partial report whose `status` says why. `resume` (when
  /// non-null) skips the batches a previous run completed; `checkpoint`
  /// (when non-null) is filled with the state of every batch this run
  /// completed, whatever the final status. A checkpointed-then-resumed run
  /// reproduces the uninterrupted run's signatures and detection flags
  /// bit-exactly, because fault batches are independent.
  SessionReport run(const fault::FaultList& faults, std::int64_t cycles = -1,
                    const rt::RunControl& ctl = {},
                    const rt::SessionCheckpoint* resume = nullptr,
                    rt::SessionCheckpoint* checkpoint = nullptr) const;

  /// Installs a progress callback invoked from run() roughly every
  /// `every_cycles` emulated clock cycles (across all fault batches) and
  /// once more when the run ends. Pass an empty function to disable. With
  /// more than one thread the cadence degrades to batch-merge boundaries
  /// (callbacks still fire on the thread that called run()).
  void set_progress(obs::ProgressFn fn, std::int64_t every_cycles = 4096);

  /// Worker threads for the independent fault batches. 0 (the default)
  /// resolves BIBS_THREADS and falls back to serial; reports, checkpoints
  /// and resume are bit-identical for every value.
  void set_threads(int threads);

  /// Pattern-lane count of the per-batch LaneEngine: each batch carries
  /// lanes - 1 faults next to the fault-free lane 0. 0 (the default)
  /// resolves gate::active_lane_backend(); any other value must be the
  /// lane count of a compiled-in, CPU-supported backend (64, 256, 512 —
  /// DesignError otherwise). Reports are width-invariant; checkpoints are
  /// not (they record the batch size, and resume validates it).
  void set_batch_lanes(int lanes);

 private:
  const rtl::Netlist* n_;
  const gate::Elaboration* elab_;
  const core::Kernel* kernel_;
  tpg::TpgDesign tpg_;
  int depth_ = 0;
  obs::ProgressFn progress_;
  std::int64_t progress_every_ = 4096;
  int threads_ = 0;  // 0 = BIBS_THREADS, else serial
  int batch_lanes_ = 0;  // 0 = active_lane_backend()
  fault::FaultModel model_ = fault::FaultModel::kStuckAt;

  /// Gate nets belonging to the kernel's cone (fault sites).
  std::vector<gate::NetId> cone_;
  /// Input-register Q nets in TPG register order.
  std::vector<gate::Bus> input_q_;
  /// Output-register D nets in kernel output order.
  std::vector<gate::Bus> output_d_;
};

}  // namespace bibs::sim
