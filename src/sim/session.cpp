#include "sim/session.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "gate/sim.hpp"
#include "obs/obs.hpp"
#include "sim/lane_engine.hpp"
#include "lfsr/lfsr.hpp"
#include "lfsr/misr.hpp"

namespace bibs::sim {

using gate::Gate;
using gate::GateType;
using gate::NetId;

BistSession::BistSession(const rtl::Netlist& n, const gate::Elaboration& elab,
                         const core::BilboSet& bilbo,
                         const core::Kernel& kernel)
    : n_(&n), elab_(&elab), kernel_(&kernel) {
  BIBS_SPAN("session.build");
  const tpg::GeneralizedStructure s = core::kernel_structure(n, bilbo, kernel);
  tpg_ = tpg::mc_tpg(s);
  depth_ = s.max_depth();

  for (rtl::ConnId e : kernel.input_regs)
    input_q_.push_back(elab.reg_q.at(e));
  for (rtl::ConnId e : kernel.output_regs)
    output_d_.push_back(elab.reg_d.at(e));

  // Kernel cone: backwards from the output D pins through gates and internal
  // registers; input-register Q nets are included as fault sites but not
  // traversed beyond.
  std::unordered_set<NetId> stop;
  for (const gate::Bus& b : input_q_) stop.insert(b.begin(), b.end());
  std::unordered_set<NetId> seen;
  std::deque<NetId> q;
  for (const gate::Bus& b : output_d_)
    for (NetId net : b)
      if (seen.insert(net).second) q.push_back(net);
  while (!q.empty()) {
    const NetId v = q.front();
    q.pop_front();
    cone_.push_back(v);
    if (stop.count(v)) continue;
    for (NetId f : elab.netlist.gate(v).fanin)
      if (seen.insert(f).second) q.push_back(f);
  }
  std::sort(cone_.begin(), cone_.end());
}

fault::FaultList BistSession::kernel_faults() const {
  const fault::FaultList all = fault::FaultList::collapsed(elab_->netlist);
  std::unordered_set<NetId> cone(cone_.begin(), cone_.end());
  // D-pin faults of the kernel's *input* registers are unobservable in this
  // session: the TPG drives those registers, so their mission D path is
  // disconnected. They belong to the session in which the register acts as
  // a signature analyzer for the upstream kernel.
  std::unordered_set<NetId> input_q;
  for (const gate::Bus& b : input_q_) input_q.insert(b.begin(), b.end());
  std::vector<fault::Fault> kept;
  for (const fault::Fault& f : all.faults()) {
    if (!cone.count(f.net)) continue;
    if (f.pin >= 0 && input_q.count(f.net)) continue;
    kept.push_back(f);
  }
  return fault::FaultList::from_faults(std::move(kept));
}

void BistSession::set_progress(obs::ProgressFn fn, std::int64_t every_cycles) {
  BIBS_ASSERT(every_cycles > 0);
  progress_ = std::move(fn);
  progress_every_ = every_cycles;
}

SessionReport BistSession::run(const fault::FaultList& faults,
                               std::int64_t cycles) const {
  BIBS_SPAN("session.run");
  BIBS_COUNTER(c_cycles, "session.cycles");
  BIBS_COUNTER(c_batches, "session.batches");
  BIBS_GAUGE(g_coverage, "session.coverage");
  BIBS_GAUGE(g_aliased, "session.aliased");

  if (cycles < 0)
    cycles = static_cast<std::int64_t>(tpg_.pattern_count()) + depth_;

  SessionReport rep;
  rep.cycles = cycles;
  rep.total_faults = faults.size();
  rep.golden_signatures.assign(output_d_.size(), 0);

  // Progress is reported across all fault batches: each batch of up to 63
  // faults re-runs the full `cycles` clocks.
  const std::int64_t total_work =
      cycles * std::max<std::int64_t>(
                   1, static_cast<std::int64_t>((faults.size() + 62) / 63));
  std::int64_t work_done = 0;
  std::int64_t next_progress = progress_every_;

  int max_shift = 0;
  for (const auto& labels : tpg_.cell_label)
    for (int l : labels) max_shift = std::max(max_shift, l - tpg_.min_label);

  std::vector<char> det_out(faults.size(), 0);
  std::vector<char> det_sig(faults.size(), 0);

  std::size_t base = 0;
  do {
    const std::size_t batch = std::min<std::size_t>(
        63, faults.size() > base ? faults.size() - base : 0);
    LaneEngine eng(elab_->netlist,
                   std::span<const fault::Fault>(faults.faults())
                       .subspan(base, batch));

    std::vector<std::vector<lfsr::Misr>> misr;
    for (const gate::Bus& b : output_d_)
      misr.emplace_back(batch + 1, lfsr::Misr(lfsr::primitive_polynomial(
                                       static_cast<int>(b.size()))));

    // TPG bit history: hist[k] = a(t - k).
    lfsr::Type1Lfsr gen(tpg_.poly);
    std::deque<bool> hist;
    for (int i = 0; i <= max_shift; ++i) {
      gen.step();
      hist.push_front(gen.stage(1));
    }

    std::uint64_t out_diff_seen = 0;
    for (std::int64_t t = 0; t < cycles; ++t) {
      for (std::size_t ri = 0; ri < input_q_.size(); ++ri) {
        const auto& labels = tpg_.cell_label[ri];
        for (std::size_t j = 0; j < input_q_[ri].size(); ++j) {
          const int shift = labels[j] - tpg_.min_label;
          eng.set_dff_state(input_q_[ri][j],
                            hist[static_cast<std::size_t>(shift)] ? ~0ull
                                                                  : 0ull);
        }
      }
      eng.eval();

      for (std::size_t oi = 0; oi < output_d_.size(); ++oi) {
        const gate::Bus& b = output_d_[oi];
        for (std::size_t lane = 0; lane <= batch; ++lane) {
          BitVec word(b.size());
          for (std::size_t j = 0; j < b.size(); ++j)
            word.set(j, (eng.value(b[j]) >> lane) & 1u);
          misr[oi][lane].step(word);
        }
        for (std::size_t j = 0; j < b.size(); ++j) {
          const std::uint64_t v = eng.value(b[j]);
          out_diff_seen |= v ^ ((v & 1u) ? ~0ull : 0ull);
        }
      }

      eng.clock();
      gen.step();
      hist.push_front(gen.stage(1));
      hist.pop_back();

      ++work_done;
      if (progress_ && work_done >= next_progress) {
        obs::Progress p;
        p.phase = "session";
        p.done = work_done;
        p.total = total_work;
        p.faults_detected = static_cast<std::int64_t>(
            std::count(det_sig.begin(), det_sig.end(), 1));
        p.faults_live =
            static_cast<std::int64_t>(faults.size()) - p.faults_detected;
        p.coverage = faults.size() == 0
                         ? 1.0
                         : static_cast<double>(p.faults_detected) /
                               static_cast<double>(faults.size());
        progress_(p);
        next_progress = work_done + progress_every_;
      }
    }
    BIBS_COUNTER_ADD(c_cycles, cycles);
    BIBS_COUNTER_ADD(c_batches, 1);

    for (std::size_t k = 0; k < batch; ++k) {
      if ((out_diff_seen >> (k + 1)) & 1u) det_out[base + k] = 1;
      for (std::size_t oi = 0; oi < output_d_.size(); ++oi)
        if (misr[oi][k + 1].signature() != misr[oi][0].signature()) {
          det_sig[base + k] = 1;
          break;
        }
    }
    if (base == 0)
      for (std::size_t oi = 0; oi < output_d_.size(); ++oi)
        rep.golden_signatures[oi] = misr[oi][0].signature();
    base += 63;
  } while (base < faults.size());

  rep.detected_at_outputs =
      static_cast<std::size_t>(std::count(det_out.begin(), det_out.end(), 1));
  rep.detected_by_signature =
      static_cast<std::size_t>(std::count(det_sig.begin(), det_sig.end(), 1));
  rep.aliased = rep.detected_at_outputs - rep.detected_by_signature;

  BIBS_GAUGE_SET(g_coverage,
                 rep.total_faults == 0
                     ? 1.0
                     : static_cast<double>(rep.detected_by_signature) /
                           static_cast<double>(rep.total_faults));
  BIBS_GAUGE_SET(g_aliased, rep.aliased);
  if (progress_) {
    obs::Progress p;
    p.phase = "session";
    p.done = work_done;
    p.total = total_work;
    p.faults_detected = static_cast<std::int64_t>(rep.detected_by_signature);
    p.faults_live = static_cast<std::int64_t>(rep.total_faults) -
                    p.faults_detected;
    p.coverage = rep.total_faults == 0
                     ? 1.0
                     : static_cast<double>(rep.detected_by_signature) /
                           static_cast<double>(rep.total_faults);
    progress_(p);
  }
  return rep;
}

}  // namespace bibs::sim
