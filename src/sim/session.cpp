#include "sim/session.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "gate/lanes.hpp"
#include "gate/sim.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"
#include "sim/lane_engine.hpp"
#include "lfsr/lfsr.hpp"
#include "lfsr/misr.hpp"

namespace bibs::sim {

using gate::Gate;
using gate::GateType;
using gate::NetId;

BistSession::BistSession(const rtl::Netlist& n, const gate::Elaboration& elab,
                         const core::BilboSet& bilbo,
                         const core::Kernel& kernel)
    : n_(&n), elab_(&elab), kernel_(&kernel) {
  BIBS_SPAN("session.build");
  const tpg::GeneralizedStructure s = core::kernel_structure(n, bilbo, kernel);
  tpg_ = tpg::mc_tpg(s);
  depth_ = s.max_depth();

  for (rtl::ConnId e : kernel.input_regs)
    input_q_.push_back(elab.reg_q.at(e));
  for (rtl::ConnId e : kernel.output_regs)
    output_d_.push_back(elab.reg_d.at(e));

  // Kernel cone: backwards from the output D pins through gates and internal
  // registers; input-register Q nets are included as fault sites but not
  // traversed beyond.
  std::unordered_set<NetId> stop;
  for (const gate::Bus& b : input_q_) stop.insert(b.begin(), b.end());
  std::unordered_set<NetId> seen;
  std::deque<NetId> q;
  for (const gate::Bus& b : output_d_)
    for (NetId net : b)
      if (seen.insert(net).second) q.push_back(net);
  while (!q.empty()) {
    const NetId v = q.front();
    q.pop_front();
    cone_.push_back(v);
    if (stop.count(v)) continue;
    for (NetId f : elab.netlist.gate(v).fanin)
      if (seen.insert(f).second) q.push_back(f);
  }
  std::sort(cone_.begin(), cone_.end());
}

fault::FaultList BistSession::kernel_faults() const {
  const fault::FaultList all = fault::FaultList::collapsed(elab_->netlist);
  std::unordered_set<NetId> cone(cone_.begin(), cone_.end());
  // D-pin faults of the kernel's *input* registers are unobservable in this
  // session: the TPG drives those registers, so their mission D path is
  // disconnected. They belong to the session in which the register acts as
  // a signature analyzer for the upstream kernel.
  std::unordered_set<NetId> input_q;
  for (const gate::Bus& b : input_q_) input_q.insert(b.begin(), b.end());
  std::vector<fault::Fault> kept;
  for (const fault::Fault& f : all.faults()) {
    if (!cone.count(f.net)) continue;
    if (f.pin >= 0 && input_q.count(f.net)) continue;
    kept.push_back(f);
  }
  return fault::FaultList::from_faults(std::move(kept));
}

fault::FaultList BistSession::kernel_transition_faults() const {
  const fault::FaultList all = fault::FaultList::transition(elab_->netlist);
  std::unordered_set<NetId> cone(cone_.begin(), cone_.end());
  std::vector<fault::Fault> kept;
  for (const fault::Fault& f : all.faults())
    if (cone.count(f.net)) kept.push_back(f);
  const std::size_t n = kept.size();
  return fault::FaultList::from_faults(std::move(kept), n);
}

void BistSession::set_progress(obs::ProgressFn fn, std::int64_t every_cycles) {
  BIBS_ASSERT(every_cycles > 0);
  progress_ = std::move(fn);
  progress_every_ = every_cycles;
}

void BistSession::set_threads(int threads) {
  BIBS_ASSERT(threads >= 0);
  threads_ = threads;
}

void BistSession::set_batch_lanes(int lanes) {
  BIBS_ASSERT(lanes >= 0);
  if (lanes != 0 && gate::lane_backend_for_lanes(lanes) == nullptr)
    throw DesignError("no compiled-in, CPU-supported lane backend runs " +
                      std::to_string(lanes) + " pattern lanes per block");
  batch_lanes_ = lanes;
}

SessionReport BistSession::run(const fault::FaultList& faults,
                               std::int64_t cycles,
                               const rt::RunControl& ctl,
                               const rt::SessionCheckpoint* resume,
                               rt::SessionCheckpoint* checkpoint) const {
  BIBS_SPAN("session.run");
  BIBS_COUNTER(c_cycles, "session.cycles");
  BIBS_COUNTER(c_batches, "session.batches");
  BIBS_GAUGE(g_coverage, "session.coverage");
  BIBS_GAUGE(g_aliased, "session.aliased");

  if (cycles < 0)
    cycles = static_cast<std::int64_t>(tpg_.pattern_count()) + depth_;

  SessionReport rep;
  rep.cycles = cycles;
  rep.total_faults = faults.size();
  rep.golden_signatures.assign(output_d_.size(), 0);

  const gate::LaneBackend* lb =
      batch_lanes_ == 0 ? &gate::active_lane_backend()
                        : gate::lane_backend_for_lanes(batch_lanes_);
  BIBS_ASSERT(lb != nullptr);  // set_batch_lanes validated non-zero values
  // Faults per batch: every lane but the fault-free lane 0 carries one.
  const std::size_t kBatchFaults = static_cast<std::size_t>(lb->lanes) - 1;
  const std::size_t wstride = static_cast<std::size_t>(lb->words);

  // Each batch of up to kBatchFaults faults re-runs the full `cycles`
  // clocks; the 0-fault session still runs one batch for the golden
  // signatures.
  const std::size_t n_batches = std::max<std::size_t>(
      1, (faults.size() + kBatchFaults - 1) / kBatchFaults);

  std::vector<char> det_out(faults.size(), 0);
  std::vector<char> det_sig(faults.size(), 0);
  std::size_t completed = 0;
  if (resume) {
    if (resume->total_faults != faults.size() || resume->cycles != cycles)
      throw DesignError(
          "session checkpoint does not match this run (faults " +
          std::to_string(resume->total_faults) + " vs " +
          std::to_string(faults.size()) + ", cycles " +
          std::to_string(resume->cycles) + " vs " + std::to_string(cycles) +
          ")");
    if (resume->batch_faults != kBatchFaults)
      throw DesignError(
          "session checkpoint was written with " +
          std::to_string(resume->batch_faults) +
          "-fault batches but this run uses " +
          std::to_string(kBatchFaults) +
          " (batch boundaries move with the lane width; resume with "
          "set_batch_lanes(" +
          std::to_string(resume->batch_faults + 1) + "))");
    if (resume->fault_model != fault::to_string(model_))
      throw DesignError("session checkpoint fault model '" +
                        resume->fault_model +
                        "' does not match this run's model '" +
                        fault::to_string(model_) + "'");
    if (resume->batches_done > n_batches ||
        resume->detected_at_outputs.size() != faults.size() ||
        resume->detected_by_signature.size() != faults.size() ||
        (resume->batches_done > 0 &&
         resume->golden_signatures.size() != output_d_.size()))
      throw DesignError("session checkpoint is internally inconsistent");
    completed = resume->batches_done;
    std::copy(resume->detected_at_outputs.begin(),
              resume->detected_at_outputs.end(), det_out.begin());
    std::copy(resume->detected_by_signature.begin(),
              resume->detected_by_signature.end(), det_sig.begin());
    if (completed > 0) rep.golden_signatures = resume->golden_signatures;
  }

  // Progress / budget work units are cycles, cumulative across the whole
  // session including batches a resumed run skips.
  const std::int64_t total_work =
      cycles * static_cast<std::int64_t>(n_batches);
  std::atomic<std::int64_t> work_done{cycles *
                                      static_cast<std::int64_t>(completed)};
  std::int64_t next_progress =
      work_done.load(std::memory_order_relaxed) + progress_every_;

  int max_shift = 0;
  for (const auto& labels : tpg_.cell_label)
    for (int l : labels) max_shift = std::max(max_shift, l - tpg_.min_label);

  // The TPG stimulus is fault-independent, so the whole stage-1 bit stream
  // is generated once and shared read-only by every fault batch (they
  // used to regenerate it with a private LFSR + sliding deque each).
  // bits[j] is the generator's stage-1 value after j+1 steps; the cell with
  // shift s reads bits[max_shift + t - s] at cycle t.
  std::vector<char> stim_bits(static_cast<std::size_t>(cycles) +
                              static_cast<std::size_t>(max_shift));
  {
    lfsr::Type1Lfsr gen(tpg_.poly);
    for (char& b : stim_bits) {
      gen.step();
      b = gen.stage(1) ? 1 : 0;
    }
  }
  struct Stim {
    NetId dff;
    int shift;
  };
  std::vector<Stim> stim;
  for (std::size_t ri = 0; ri < input_q_.size(); ++ri) {
    const auto& labels = tpg_.cell_label[ri];
    for (std::size_t j = 0; j < input_q_[ri].size(); ++j)
      stim.push_back({input_q_[ri][j], labels[j] - tpg_.min_label});
  }

  par::ThreadPool pool(threads_);
  BIBS_GAUGE(g_threads, "par.threads");
  BIBS_GAUGE_SET(g_threads, pool.threads());
  const bool serial = pool.threads() == 1;

  struct BatchResult {
    bool completed = false;
    rt::RunStatus status = rt::RunStatus::kFinished;
    std::vector<char> det_out;          // per fault of this batch
    std::vector<char> det_sig;
    std::vector<std::uint64_t> golden;  // per output register
  };
  std::vector<BatchResult> results(n_batches);

  // Idempotent, so the serial path may merge eagerly (for progress counts)
  // and the prefix scan below may merge again.
  const auto merge_batch = [&](std::size_t bi) {
    const BatchResult& r = results[bi];
    const std::size_t base = bi * kBatchFaults;
    for (std::size_t k = 0; k < r.det_out.size(); ++k) {
      if (r.det_out[k]) det_out[base + k] = 1;
      if (r.det_sig[k]) det_sig[base + k] = 1;
    }
    if (bi == 0) rep.golden_signatures = r.golden;
  };

  const auto run_batch = [&](std::size_t bi, BatchResult& out) {
    const std::size_t base = bi * kBatchFaults;
    const std::size_t batch = std::min<std::size_t>(
        kBatchFaults, faults.size() > base ? faults.size() - base : 0);
    LaneEngine eng(elab_->netlist,
                   std::span<const fault::Fault>(faults.faults())
                       .subspan(base, batch),
                   lb, model_);

    std::vector<std::vector<lfsr::Misr>> misr;
    for (const gate::Bus& b : output_d_)
      misr.emplace_back(batch + 1, lfsr::Misr(lfsr::primitive_polynomial(
                                       static_cast<int>(b.size()))));

    std::vector<std::uint64_t> out_diff_seen(wstride, 0);
    for (std::int64_t t = 0; t < cycles; ++t) {
      // Poll run control at 64-cycle granularity; an interrupted batch is
      // discarded whole (resume re-runs it from its start, bit-exactly).
      if ((t & 63) == 0) {
        if (const rt::RunStatus st = ctl.interruption(
                work_done.load(std::memory_order_relaxed));
            st != rt::RunStatus::kFinished) {
          out.status = st;
          return;
        }
      }
      for (const Stim& st : stim)
        eng.set_dff_state(
            st.dff, stim_bits[static_cast<std::size_t>(max_shift + t -
                                                       st.shift)]
                        ? ~0ull
                        : 0ull);
      eng.eval();

      for (std::size_t oi = 0; oi < output_d_.size(); ++oi) {
        const gate::Bus& b = output_d_[oi];
        // Lane l lives in word l/64 bit l%64 of the engine's W-strided
        // values; lane 0 is the fault-free machine.
        for (std::size_t lane = 0; lane <= batch; ++lane) {
          BitVec word(b.size());
          for (std::size_t j = 0; j < b.size(); ++j)
            word.set(j, (eng.value_words(b[j])[lane >> 6] >> (lane & 63)) &
                            1u);
          misr[oi][lane].step(word);
        }
        for (std::size_t j = 0; j < b.size(); ++j) {
          const std::uint64_t* vw = eng.value_words(b[j]);
          const std::uint64_t gold = (vw[0] & 1u) ? ~0ull : 0ull;
          for (std::size_t w = 0; w < wstride; ++w)
            out_diff_seen[w] |= vw[w] ^ gold;
        }
      }

      eng.clock();

      const std::int64_t done =
          work_done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (serial && progress_ && done >= next_progress) {
        obs::Progress p;
        p.phase = "session";
        p.done = done;
        p.total = total_work;
        p.faults_detected = static_cast<std::int64_t>(
            std::count(det_sig.begin(), det_sig.end(), 1));
        p.faults_live =
            static_cast<std::int64_t>(faults.size()) - p.faults_detected;
        p.coverage = faults.size() == 0
                         ? 1.0
                         : static_cast<double>(p.faults_detected) /
                               static_cast<double>(faults.size());
        progress_(p);
        next_progress = done + progress_every_;
      }
    }

    out.det_out.assign(batch, 0);
    out.det_sig.assign(batch, 0);
    for (std::size_t k = 0; k < batch; ++k) {
      if ((out_diff_seen[(k + 1) >> 6] >> ((k + 1) & 63)) & 1u)
        out.det_out[k] = 1;
      for (std::size_t oi = 0; oi < output_d_.size(); ++oi)
        if (misr[oi][k + 1].signature() != misr[oi][0].signature()) {
          out.det_sig[k] = 1;
          break;
        }
    }
    out.golden.resize(output_d_.size());
    for (std::size_t oi = 0; oi < output_d_.size(); ++oi)
      out.golden[oi] = misr[oi][0].signature();
    out.completed = true;
  };

  // Dispatch the remaining batches as deterministic contiguous chunks; a
  // worker whose batch is interrupted abandons the rest of its chunk (the
  // other workers observe the same stop condition at their next poll).
  if (completed < n_batches) {
    const std::size_t first = completed;
    pool.parallel_for_chunks(
        n_batches - completed, [&](int, std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            const std::size_t bi = first + i;
            run_batch(bi, results[bi]);
            if (!results[bi].completed) return;
            if (serial) merge_batch(bi);
          }
        });
  }

  // Keep exactly the completed batch *prefix*: checkpoints record a prefix
  // count, so a batch that finished beyond an interrupted one is discarded
  // and deterministically re-run on resume.
  while (completed < n_batches && results[completed].completed) {
    merge_batch(completed);
    BIBS_COUNTER_ADD(c_cycles, cycles);
    BIBS_COUNTER_ADD(c_batches, 1);
    ++completed;
  }
  if (completed < n_batches) {
    // The first incomplete batch was necessarily the one that observed the
    // stop condition (chunks are contiguous and abandon in order).
    rep.status = results[completed].status;
  }

  rep.detected_at_outputs =
      static_cast<std::size_t>(std::count(det_out.begin(), det_out.end(), 1));
  rep.detected_by_signature =
      static_cast<std::size_t>(std::count(det_sig.begin(), det_sig.end(), 1));
  rep.aliased = rep.detected_at_outputs - rep.detected_by_signature;

  if (checkpoint) {
    checkpoint->cycles = cycles;
    checkpoint->total_faults = faults.size();
    checkpoint->batches_done = completed;
    checkpoint->batch_faults = kBatchFaults;
    checkpoint->fault_model = fault::to_string(model_);
    checkpoint->detected_at_outputs.assign(det_out.begin(), det_out.end());
    checkpoint->detected_by_signature.assign(det_sig.begin(), det_sig.end());
    checkpoint->golden_signatures = rep.golden_signatures;
  }

  BIBS_GAUGE_SET(g_coverage,
                 rep.total_faults == 0
                     ? 1.0
                     : static_cast<double>(rep.detected_by_signature) /
                           static_cast<double>(rep.total_faults));
  BIBS_GAUGE_SET(g_aliased, rep.aliased);
  if (progress_) {
    obs::Progress p;
    p.phase = "session";
    p.done = work_done.load(std::memory_order_relaxed);
    p.total = total_work;
    p.faults_detected = static_cast<std::int64_t>(rep.detected_by_signature);
    p.faults_live = static_cast<std::int64_t>(rep.total_faults) -
                    p.faults_detected;
    p.coverage = rep.total_faults == 0
                     ? 1.0
                     : static_cast<double>(rep.detected_by_signature) /
                           static_cast<double>(rep.total_faults);
    progress_(p);
  }
  return rep;
}

}  // namespace bibs::sim
