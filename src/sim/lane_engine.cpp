#include "sim/lane_engine.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"

namespace bibs::sim {

using gate::Gate;
using gate::GateType;
using gate::NetId;

LaneEngine::LaneEngine(const gate::Netlist& nl,
                       std::span<const fault::Fault> batch)
    : nl_(&nl),
      prog_(nl),
      val_(nl.net_count(), 0),
      state_(nl.net_count(), 0),
      stem0_(nl.net_count(), 0),
      stem1_(nl.net_count(), 0) {
  BIBS_ASSERT(batch.size() <= 63);
  std::map<std::uint32_t, std::vector<PinFault>> by_instr;
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const fault::Fault& f = batch[k];
    if (f.net < 0 || static_cast<std::size_t>(f.net) >= nl.net_count())
      throw DesignError("fault net " + std::to_string(f.net) +
                        " is out of range for this netlist");
    if (f.pin >= 0 &&
        static_cast<std::size_t>(f.pin) >= nl.gate(f.net).fanin.size())
      throw DesignError("fault pin " + std::to_string(f.pin) +
                        " is out of range on net " + std::to_string(f.net));
    const std::uint64_t mask = 1ull << (k + 1);
    if (f.pin < 0) {
      (f.stuck ? stem1_ : stem0_)[static_cast<std::size_t>(f.net)] |= mask;
    } else if (nl.gate(f.net).type == GateType::kDff) {
      dff_pin_faults_[f.net].push_back({f.pin, mask, f.stuck});
    } else {
      by_instr[prog_.instr_of(f.net)].push_back({f.pin, mask, f.stuck});
    }
  }

  // Compile the fault sites into the ascending special-instruction list:
  // every instruction with a stem or pin fault leaves the straight-line
  // path; everything else runs through EvalProgram::run_range untouched.
  for (std::size_t i = 0; i < prog_.size(); ++i) {
    const NetId out = prog_.out(i);
    const bool has_stem = (stem0_[static_cast<std::size_t>(out)] |
                           stem1_[static_cast<std::size_t>(out)]) != 0;
    const auto it = by_instr.find(static_cast<std::uint32_t>(i));
    if (!has_stem && it == by_instr.end()) continue;
    Special sp;
    sp.instr = static_cast<std::uint32_t>(i);
    sp.pf_begin = static_cast<std::uint32_t>(pin_faults_.size());
    if (it != by_instr.end())
      pin_faults_.insert(pin_faults_.end(), it->second.begin(),
                         it->second.end());
    sp.pf_end = static_cast<std::uint32_t>(pin_faults_.size());
    special_.push_back(sp);
  }

  // Source nets are written by nobody during eval(), so their (possibly
  // stem-faulted) values are fixed once here. DFF outputs are refreshed
  // every eval() from state_.
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kConst1)
      val_[static_cast<std::size_t>(id)] = apply_stem(id, ~0ull);
    else if (g.type == GateType::kConst0 || g.type == GateType::kInput)
      val_[static_cast<std::size_t>(id)] = apply_stem(id, 0ull);
    else if (g.type == GateType::kDff)
      dff_d_.emplace_back(id, g.fanin.empty() ? gate::kNoNet : g.fanin[0]);
  }
}

void LaneEngine::set_dff_state(NetId dff, std::uint64_t word) {
  state_[static_cast<std::size_t>(dff)] = word;
}

void LaneEngine::eval() {
  BIBS_COUNTER(c_evals, "lane_engine.evals");
  BIBS_COUNTER_ADD(c_evals, 1);
  for (const auto& [d, dnet] : dff_d_)
    val_[static_cast<std::size_t>(d)] =
        apply_stem(d, state_[static_cast<std::size_t>(d)]);

  std::uint64_t* v = val_.data();
  std::size_t pos = 0;
  for (const Special& sp : special_) {
    prog_.run_range(pos, sp.instr, v);
    std::uint64_t out = prog_.eval_one(sp.instr, v);
    for (std::uint32_t p = sp.pf_begin; p < sp.pf_end; ++p) {
      const PinFault& pf = pin_faults_[p];
      const std::uint64_t forced = prog_.eval_one_forced(
          sp.instr, v, pf.pin, pf.stuck ? ~0ull : 0ull);
      out = (out & ~pf.mask) | (forced & pf.mask);
    }
    const NetId id = prog_.out(sp.instr);
    v[static_cast<std::size_t>(id)] = apply_stem(id, out);
    pos = sp.instr + 1;
  }
  prog_.run_range(pos, prog_.size(), v);
}

std::uint64_t LaneEngine::next_with_pin_faults(NetId dff,
                                               std::uint64_t next) const {
  if (auto it = dff_pin_faults_.find(dff); it != dff_pin_faults_.end())
    for (const PinFault& pf : it->second)
      next = pf.stuck ? (next | pf.mask) : (next & ~pf.mask);
  return next;
}

void LaneEngine::clock() {
  BIBS_COUNTER(c_clocks, "lane_engine.clocks");
  BIBS_COUNTER_ADD(c_clocks, 1);
  if (dff_pin_faults_.empty()) {
    for (const auto& [d, dnet] : dff_d_) {
      BIBS_ASSERT(dnet != gate::kNoNet);
      state_[static_cast<std::size_t>(d)] =
          val_[static_cast<std::size_t>(dnet)];
    }
    return;
  }
  for (const auto& [d, dnet] : dff_d_) {
    BIBS_ASSERT(dnet != gate::kNoNet);
    state_[static_cast<std::size_t>(d)] =
        next_with_pin_faults(d, val_[static_cast<std::size_t>(dnet)]);
  }
}

void LaneEngine::clock_override(NetId dff, std::uint64_t next) {
  state_[static_cast<std::size_t>(dff)] = next_with_pin_faults(dff, next);
}

}  // namespace bibs::sim
