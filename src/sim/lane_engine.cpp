#include "sim/lane_engine.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"

namespace bibs::sim {

using gate::Gate;
using gate::GateType;
using gate::NetId;

namespace {
// Largest backend width; per-instruction scratch for the special blends.
constexpr std::size_t kMaxWords = 8;
}  // namespace

LaneEngine::LaneEngine(const gate::Netlist& nl,
                       std::span<const fault::Fault> batch,
                       const gate::LaneBackend* backend,
                       fault::FaultModel model)
    : nl_(&nl),
      lane_(backend ? backend : &gate::active_lane_backend()),
      wstride_(static_cast<std::size_t>(lane_->words)),
      prog_(nl),
      val_(nl.net_count() * wstride_, 0),
      state_(nl.net_count() * wstride_, 0),
      stem0_(nl.net_count() * wstride_, 0),
      stem1_(nl.net_count() * wstride_, 0) {
  BIBS_ASSERT(wstride_ <= kMaxWords);
  BIBS_ASSERT(batch.size() < static_cast<std::size_t>(lane_->lanes));
  const bool transition = model == fault::FaultModel::kTransition;
  std::map<std::uint32_t, std::vector<PinFault>> by_instr;
  std::vector<char> has_trans(nl.net_count(), 0);
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const fault::Fault& f = batch[k];
    if (f.net < 0 || static_cast<std::size_t>(f.net) >= nl.net_count())
      throw DesignError("fault net " + std::to_string(f.net) +
                        " is out of range for this netlist");
    if (f.pin >= 0 &&
        static_cast<std::size_t>(f.pin) >= nl.gate(f.net).fanin.size())
      throw DesignError("fault pin " + std::to_string(f.pin) +
                        " is out of range on net " + std::to_string(f.net));
    // Fault k owns lane k + 1: word (k+1)/64, bit (k+1)%64.
    const std::uint32_t word =
        static_cast<std::uint32_t>((k + 1) / gate::kLanesPerWord);
    const std::uint64_t mask = 1ull << ((k + 1) % gate::kLanesPerWord);
    if (transition) {
      if (f.pin >= 0)
        throw DesignError("transition faults are stem-only; fault on net " +
                          std::to_string(f.net) + " names pin " +
                          std::to_string(f.pin));
      const GateType t = nl.gate(f.net).type;
      TransSite ts;
      ts.net = f.net;
      ts.word = word;
      ts.mask = mask;
      ts.stf = f.stuck;
      ts.source = t == GateType::kInput || t == GateType::kConst0 ||
                  t == GateType::kConst1;
      ts.base = t == GateType::kConst1 ? ~0ull : 0ull;
      // Non-source, non-DFF sites start with all-zero stem masks, so the
      // special-instruction scan below must be forced to include them.
      if (!ts.source && t != GateType::kDff)
        has_trans[static_cast<std::size_t>(f.net)] = 1;
      trans_.push_back(ts);
    } else if (f.pin < 0) {
      (f.stuck ? stem1_ : stem0_)[static_cast<std::size_t>(f.net) * wstride_ +
                                  word] |= mask;
    } else if (nl.gate(f.net).type == GateType::kDff) {
      dff_pin_faults_[f.net].push_back({f.pin, word, mask, f.stuck});
    } else {
      by_instr[prog_.instr_of(f.net)].push_back({f.pin, word, mask, f.stuck});
    }
  }
  trans_prev_.assign(trans_.size(), 0);

  // Compile the fault sites into the ascending special-instruction list:
  // every instruction with a stem or pin fault leaves the straight-line
  // path; everything else runs through the backend's run_range untouched.
  for (std::size_t i = 0; i < prog_.size(); ++i) {
    const NetId out = prog_.out(i);
    bool has_stem = has_trans[static_cast<std::size_t>(out)] != 0;
    for (std::size_t j = 0; j < wstride_; ++j)
      has_stem |= (stem0_[static_cast<std::size_t>(out) * wstride_ + j] |
                   stem1_[static_cast<std::size_t>(out) * wstride_ + j]) != 0;
    const auto it = by_instr.find(static_cast<std::uint32_t>(i));
    if (!has_stem && it == by_instr.end()) continue;
    Special sp;
    sp.instr = static_cast<std::uint32_t>(i);
    sp.pf_begin = static_cast<std::uint32_t>(pin_faults_.size());
    if (it != by_instr.end())
      pin_faults_.insert(pin_faults_.end(), it->second.begin(),
                         it->second.end());
    sp.pf_end = static_cast<std::uint32_t>(pin_faults_.size());
    special_.push_back(sp);
  }

  // Source nets are written by nobody during eval(), so their (possibly
  // stem-faulted) values are fixed once here. DFF outputs are refreshed
  // every eval() from state_.
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kConst1) {
      std::uint64_t* v = val_.data() + static_cast<std::size_t>(id) * wstride_;
      for (std::size_t j = 0; j < wstride_; ++j) v[j] = ~0ull;
      apply_stem_words(id, v);
    } else if (g.type == GateType::kConst0 || g.type == GateType::kInput) {
      std::uint64_t* v = val_.data() + static_cast<std::size_t>(id) * wstride_;
      for (std::size_t j = 0; j < wstride_; ++j) v[j] = 0;
      apply_stem_words(id, v);
    } else if (g.type == GateType::kDff) {
      dff_d_.emplace_back(id, g.fanin.empty() ? gate::kNoNet : g.fanin[0]);
    }
  }
}

void LaneEngine::set_dff_state(NetId dff, std::uint64_t word) {
  std::uint64_t* s = state_.data() + static_cast<std::size_t>(dff) * wstride_;
  for (std::size_t j = 0; j < wstride_; ++j) s[j] = word;
}

void LaneEngine::eval() {
  BIBS_COUNTER(c_evals, "lane_engine.evals");
  BIBS_COUNTER_ADD(c_evals, 1);
  // Transition model: decide each site's injection for this cycle from the
  // lane's previous applied value — a slow-to-rise site whose lane sat at 0
  // stays at 0 this cycle (s-a-0 mask); a slow-to-fall site that sat at 1
  // stays at 1. The first eval() has no previous value and injects nothing.
  for (std::size_t i = 0; i < trans_.size(); ++i) {
    const TransSite& ts = trans_[i];
    const std::size_t idx =
        static_cast<std::size_t>(ts.net) * wstride_ + ts.word;
    std::uint64_t& m = ts.stf ? stem1_[idx] : stem0_[idx];
    const bool inject =
        trans_armed_ && (trans_prev_[i] != 0) == ts.stf;
    if (inject)
      m |= ts.mask;
    else
      m &= ~ts.mask;
    if (ts.source) {
      // Source-net values are fixed at construction; re-drive and re-mask
      // them so this cycle's stem masks take effect.
      std::uint64_t* v =
          val_.data() + static_cast<std::size_t>(ts.net) * wstride_;
      for (std::size_t j = 0; j < wstride_; ++j) v[j] = ts.base;
      apply_stem_words(ts.net, v);
    }
  }
  for (const auto& [d, dnet] : dff_d_) {
    std::uint64_t* v = val_.data() + static_cast<std::size_t>(d) * wstride_;
    const std::uint64_t* s =
        state_.data() + static_cast<std::size_t>(d) * wstride_;
    for (std::size_t j = 0; j < wstride_; ++j) v[j] = s[j];
    apply_stem_words(d, v);
  }

  const gate::ProgramView pv = prog_.view();
  std::uint64_t* v = val_.data();
  std::size_t pos = 0;
  for (const Special& sp : special_) {
    lane_->run_range(pv, pos, sp.instr, v);
    std::uint64_t out[kMaxWords];
    lane_->eval_one(pv, sp.instr, v, out);
    std::uint64_t forced[kMaxWords], fout[kMaxWords];
    for (std::uint32_t p = sp.pf_begin; p < sp.pf_end; ++p) {
      const PinFault& pf = pin_faults_[p];
      for (std::size_t j = 0; j < wstride_; ++j)
        forced[j] = pf.stuck ? ~0ull : 0ull;
      lane_->eval_one_forced(pv, sp.instr, v, pf.pin, forced, fout);
      out[pf.word] = (out[pf.word] & ~pf.mask) | (fout[pf.word] & pf.mask);
    }
    const NetId id = prog_.out(sp.instr);
    std::uint64_t* ov = v + static_cast<std::size_t>(id) * wstride_;
    for (std::size_t j = 0; j < wstride_; ++j) ov[j] = out[j];
    apply_stem_words(id, ov);
    pos = sp.instr + 1;
  }
  lane_->run_range(pv, pos, prog_.size(), v);
  // Record every transition site's applied value: the launch side of the
  // next cycle's injection decision.
  for (std::size_t i = 0; i < trans_.size(); ++i) {
    const TransSite& ts = trans_[i];
    trans_prev_[i] = (val_[static_cast<std::size_t>(ts.net) * wstride_ +
                           ts.word] &
                      ts.mask) != 0
                         ? 1
                         : 0;
  }
  if (!trans_.empty()) trans_armed_ = true;
}

void LaneEngine::next_with_pin_faults(NetId dff, std::uint64_t* next) const {
  if (auto it = dff_pin_faults_.find(dff); it != dff_pin_faults_.end())
    for (const PinFault& pf : it->second)
      next[pf.word] =
          pf.stuck ? (next[pf.word] | pf.mask) : (next[pf.word] & ~pf.mask);
}

void LaneEngine::clock() {
  BIBS_COUNTER(c_clocks, "lane_engine.clocks");
  BIBS_COUNTER_ADD(c_clocks, 1);
  for (const auto& [d, dnet] : dff_d_) {
    BIBS_ASSERT(dnet != gate::kNoNet);
    std::uint64_t* s = state_.data() + static_cast<std::size_t>(d) * wstride_;
    const std::uint64_t* v =
        val_.data() + static_cast<std::size_t>(dnet) * wstride_;
    for (std::size_t j = 0; j < wstride_; ++j) s[j] = v[j];
    if (!dff_pin_faults_.empty()) next_with_pin_faults(d, s);
  }
}

void LaneEngine::clock_override(NetId dff, std::uint64_t next) {
  std::uint64_t* s = state_.data() + static_cast<std::size_t>(dff) * wstride_;
  for (std::size_t j = 0; j < wstride_; ++j) s[j] = next;
  next_with_pin_faults(dff, s);
}

void LaneEngine::clock_override_words(NetId dff, const std::uint64_t* next) {
  std::uint64_t* s = state_.data() + static_cast<std::size_t>(dff) * wstride_;
  for (std::size_t j = 0; j < wstride_; ++j) s[j] = next[j];
  next_with_pin_faults(dff, s);
}

}  // namespace bibs::sim
