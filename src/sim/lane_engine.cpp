#include "sim/lane_engine.hpp"

#include "obs/obs.hpp"

namespace bibs::sim {

using gate::Gate;
using gate::GateType;
using gate::NetId;

LaneEngine::LaneEngine(const gate::Netlist& nl,
                       std::span<const fault::Fault> batch)
    : nl_(&nl),
      topo_(nl.comb_topo_order()),
      val_(nl.net_count(), 0),
      state_(nl.net_count(), 0),
      stem0_(nl.net_count(), 0),
      stem1_(nl.net_count(), 0) {
  BIBS_ASSERT(batch.size() <= 63);
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const fault::Fault& f = batch[k];
    if (f.net < 0 || static_cast<std::size_t>(f.net) >= nl.net_count())
      throw DesignError("fault net " + std::to_string(f.net) +
                        " is out of range for this netlist");
    if (f.pin >= 0 &&
        static_cast<std::size_t>(f.pin) >= nl.gate(f.net).fanin.size())
      throw DesignError("fault pin " + std::to_string(f.pin) +
                        " is out of range on net " + std::to_string(f.net));
    const std::uint64_t mask = 1ull << (k + 1);
    if (f.pin < 0)
      (f.stuck ? stem1_ : stem0_)[static_cast<std::size_t>(f.net)] |= mask;
    else
      pin_faults_[f.net].push_back({f.pin, mask, f.stuck});
  }
}

void LaneEngine::set_dff_state(NetId dff, std::uint64_t word) {
  state_[static_cast<std::size_t>(dff)] = word;
}

void LaneEngine::eval() {
  BIBS_COUNTER(c_evals, "lane_engine.evals");
  BIBS_COUNTER_ADD(c_evals, 1);
  for (NetId id = 0; static_cast<std::size_t>(id) < nl_->net_count(); ++id) {
    const Gate& g = nl_->gate(id);
    if (g.type == GateType::kDff)
      val_[static_cast<std::size_t>(id)] =
          apply_stem(id, state_[static_cast<std::size_t>(id)]);
    else if (g.type == GateType::kConst1)
      val_[static_cast<std::size_t>(id)] = apply_stem(id, ~0ull);
    else if (g.type == GateType::kConst0 || g.type == GateType::kInput)
      val_[static_cast<std::size_t>(id)] =
          apply_stem(id, g.type == GateType::kInput
                             ? val_[static_cast<std::size_t>(id)]
                             : 0ull);
  }
  std::uint64_t in[64];
  for (NetId id : topo_) {
    const Gate& g = nl_->gate(id);
    for (std::size_t i = 0; i < g.fanin.size(); ++i)
      in[i] = val_[static_cast<std::size_t>(g.fanin[i])];
    std::uint64_t out = gate::Simulator::eval_gate(g.type, in, g.fanin.size());
    if (auto it = pin_faults_.find(id); it != pin_faults_.end()) {
      for (const PinFault& pf : it->second) {
        const std::uint64_t save = in[static_cast<std::size_t>(pf.pin)];
        in[static_cast<std::size_t>(pf.pin)] = pf.stuck ? ~0ull : 0ull;
        const std::uint64_t forced =
            gate::Simulator::eval_gate(g.type, in, g.fanin.size());
        in[static_cast<std::size_t>(pf.pin)] = save;
        out = (out & ~pf.mask) | (forced & pf.mask);
      }
    }
    val_[static_cast<std::size_t>(id)] = apply_stem(id, out);
  }
}

std::uint64_t LaneEngine::next_with_pin_faults(NetId dff,
                                               std::uint64_t next) const {
  if (auto it = pin_faults_.find(dff); it != pin_faults_.end())
    for (const PinFault& pf : it->second)
      next = pf.stuck ? (next | pf.mask) : (next & ~pf.mask);
  return next;
}

void LaneEngine::clock() {
  BIBS_COUNTER(c_clocks, "lane_engine.clocks");
  BIBS_COUNTER_ADD(c_clocks, 1);
  for (NetId d : nl_->dffs()) {
    const Gate& g = nl_->gate(d);
    BIBS_ASSERT(g.fanin.size() == 1);
    state_[static_cast<std::size_t>(d)] = next_with_pin_faults(
        d, val_[static_cast<std::size_t>(g.fanin[0])]);
  }
}

void LaneEngine::clock_override(NetId dff, std::uint64_t next) {
  state_[static_cast<std::size_t>(dff)] = next_with_pin_faults(dff, next);
}

}  // namespace bibs::sim
