#pragma once
// Gate-level synthesis of a BILBO register [1]: the mode-multiplexed
// flip-flop slice the original BILBO paper draws, emitted as a gate::Netlist
// and verified cycle-accurately against the behavioural lfsr::Bilbo model.
//
// Interface of the synthesized block:
//   inputs : d[0..w-1] (parallel data), scan_in, m0, m1 (mode select)
//   state  : w DFFs
//   outputs: q[0..w-1]
//
// Mode encoding (m1 m0):
//   00 kNormal  q <= d
//   01 kScan    q <= {scan_in, q[0..w-2]}
//   10 kTpg     q <= LFSR next state (d ignored)
//   11 kSa      q <= MISR next state (compacts d)
//
// The TPG/SA sharing trick of the original BILBO (one XOR per stage serves
// both modes) is reproduced: stage i's D is mux(d_i or 0) XOR (previous
// stage or feedback), exactly the classic cell.

#include "gate/netlist.hpp"
#include "lfsr/polynomial.hpp"

namespace bibs::lfsr {

struct SynthesizedBilbo {
  gate::Netlist netlist;
  std::vector<gate::NetId> d;   ///< parallel data inputs
  gate::NetId scan_in = gate::kNoNet;
  gate::NetId m0 = gate::kNoNet;
  gate::NetId m1 = gate::kNoNet;
  std::vector<gate::NetId> q;   ///< DFF outputs (also marked as POs)
};

/// Synthesizes a width-bit BILBO with the table polynomial for that width.
SynthesizedBilbo synthesize_bilbo(int width);

}  // namespace bibs::lfsr
