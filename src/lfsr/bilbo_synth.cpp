#include "lfsr/bilbo_synth.hpp"

#include "common/error.hpp"

namespace bibs::lfsr {

using gate::GateType;
using gate::NetId;
using gate::Netlist;

SynthesizedBilbo synthesize_bilbo(int width) {
  BIBS_ASSERT(width >= 2);
  const Gf2Poly poly = primitive_polynomial(width);

  SynthesizedBilbo out;
  Netlist& nl = out.netlist;

  for (int i = 0; i < width; ++i)
    out.d.push_back(nl.add_input("d" + std::to_string(i)));
  out.scan_in = nl.add_input("scan_in");
  out.m0 = nl.add_input("m0");
  out.m1 = nl.add_input("m1");

  for (int i = 0; i < width; ++i)
    out.q.push_back(nl.add_dff(gate::kNoNet, "q" + std::to_string(i)));

  // Mode decode.
  const NetId nm0 = nl.add_gate(GateType::kNot, {out.m0}, "nm0");
  const NetId nm1 = nl.add_gate(GateType::kNot, {out.m1}, "nm1");
  const NetId normal = nl.add_gate(GateType::kAnd, {nm1, nm0}, "mode_normal");
  const NetId scan = nl.add_gate(GateType::kAnd, {nm1, out.m0}, "mode_scan");
  const NetId tpg = nl.add_gate(GateType::kAnd, {out.m1, nm0}, "mode_tpg");
  const NetId sa = nl.add_gate(GateType::kAnd, {out.m1, out.m0}, "mode_sa");

  // Feedback network: XOR of tap stages (stage k tapped iff coeff x^(w-k)).
  NetId fb = gate::kNoNet;
  for (int k = 1; k <= width; ++k) {
    if (!poly.coeff(width - k)) continue;
    const NetId stage = out.q[static_cast<std::size_t>(k - 1)];
    fb = (fb == gate::kNoNet)
             ? stage
             : nl.add_gate(GateType::kXor, {fb, stage}, "fb");
  }
  BIBS_ASSERT(fb != gate::kNoNet);

  for (int i = 0; i < width; ++i) {
    // Shift source: feedback / scan_in into stage 1, q[i-1] elsewhere.
    const NetId prev =
        i == 0 ? fb : out.q[static_cast<std::size_t>(i - 1)];
    const NetId shift_src = i == 0
                                ? nl.add_gate(GateType::kOr,
                                              {nl.add_gate(GateType::kAnd,
                                                           {scan, out.scan_in}),
                                               nl.add_gate(GateType::kAnd,
                                                           {tpg, fb}),
                                               nl.add_gate(GateType::kAnd,
                                                           {sa, fb})},
                                              "src0")
                                : nl.add_gate(
                                      GateType::kAnd,
                                      {nl.add_gate(GateType::kOr,
                                                   {scan, tpg, sa}),
                                       prev},
                                      "src" + std::to_string(i));
    const NetId di = out.d[static_cast<std::size_t>(i)];
    // Data term: d in normal mode, d XORed in in SA mode.
    const NetId data_normal = nl.add_gate(GateType::kAnd, {normal, di});
    const NetId data_sa = nl.add_gate(GateType::kAnd, {sa, di});
    // next = shift_src XOR data_sa, OR data_normal (modes are exclusive).
    const NetId shifted = nl.add_gate(GateType::kXor, {shift_src, data_sa});
    const NetId next = nl.add_gate(GateType::kOr, {shifted, data_normal},
                                   "next" + std::to_string(i));
    nl.set_dff_d(out.q[static_cast<std::size_t>(i)], next);
  }

  for (int i = 0; i < width; ++i)
    nl.mark_output(out.q[static_cast<std::size_t>(i)],
                   "q" + std::to_string(i));
  nl.validate();
  return out;
}

}  // namespace bibs::lfsr
