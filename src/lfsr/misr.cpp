#include "lfsr/misr.hpp"

#include "common/error.hpp"

namespace bibs::lfsr {

Misr::Misr(Gf2Poly poly) : poly_(poly), n_(poly.degree()) {
  BIBS_ASSERT(n_ >= 1);
  state_.resize(static_cast<std::size_t>(n_));
}

void Misr::set_state(const BitVec& s) {
  BIBS_ASSERT(s.size() == static_cast<std::size_t>(n_));
  state_ = s;
}

void Misr::step(const BitVec& inputs) {
  BIBS_ASSERT(inputs.size() == static_cast<std::size_t>(n_));
  bool fb = false;
  for (int k = 1; k <= n_; ++k)
    if (poly_.coeff(n_ - k) && state_.get(static_cast<std::size_t>(k - 1)))
      fb = !fb;
  BitVec next(static_cast<std::size_t>(n_));
  next.set(0, fb ^ inputs.get(0));
  for (int i = 2; i <= n_; ++i)
    next.set(static_cast<std::size_t>(i - 1),
             state_.get(static_cast<std::size_t>(i - 2)) ^
                 inputs.get(static_cast<std::size_t>(i - 1)));
  state_ = next;
}

std::uint64_t Misr::signature() const {
  BIBS_ASSERT(n_ <= 64);
  return state_.extract(0, static_cast<std::size_t>(n_));
}

}  // namespace bibs::lfsr
