#pragma once
// Behavioural models of BILBO [1] and CBILBO [7] registers.
//
// A BILBO register is an n-bit register with four operating modes. In a test
// session it acts either as a TPG (autonomous type-1 LFSR) or as a SA (MISR)
// but never both at once — the restriction that motivates condition 3 of the
// balanced-BISTable definition. A CBILBO has two flip-flop ranks and can do
// both simultaneously, at roughly twice the area cost.

#include <cstdint>

#include "common/bitvec.hpp"
#include "lfsr/lfsr.hpp"
#include "lfsr/misr.hpp"
#include "lfsr/polynomial.hpp"

namespace bibs::lfsr {

enum class BilboMode {
  kNormal,  ///< parallel load: register behaves as a plain D register
  kScan,    ///< serial shift through the stages
  kTpg,     ///< autonomous LFSR pattern generation
  kSa,      ///< MISR response compaction
};

class Bilbo {
 public:
  /// n-bit BILBO; the characteristic polynomial is taken from the library
  /// table for the given width.
  explicit Bilbo(int width);
  Bilbo(int width, Gf2Poly poly);

  int width() const { return width_; }
  BilboMode mode() const { return mode_; }
  void set_mode(BilboMode m) { mode_ = m; }

  const BitVec& state() const { return state_; }
  void set_state(const BitVec& s);

  /// One clock edge. `inputs` is the parallel data at the register's D pins
  /// (used in kNormal and kSa); `scan_in` feeds kScan. Returns the serial
  /// output (last stage before the clock).
  bool step(const BitVec& inputs, bool scan_in = false);

  /// Extra flip-flop-equivalent area relative to a plain register, used by
  /// the cost reports (mux + XOR per stage, modelled as gate equivalents).
  static double area_overhead_gate_equivalents(int width);

 private:
  int width_;
  Gf2Poly poly_;
  BilboMode mode_ = BilboMode::kNormal;
  BitVec state_;
};

/// Concurrent BILBO: generates patterns and compacts responses in the same
/// clock cycle using two flip-flop ranks.
class Cbilbo {
 public:
  explicit Cbilbo(int width);

  int width() const { return width_; }

  const BitVec& tpg_state() const { return tpg_.state(); }
  const BitVec& sa_state() const { return sa_.state(); }

  /// Generates the next pattern and compacts `responses` simultaneously.
  void step(const BitVec& responses);

  static double area_overhead_gate_equivalents(int width);

 private:
  int width_;
  Type1Lfsr tpg_;
  Misr sa_;
};

}  // namespace bibs::lfsr
