#include "lfsr/bilbo.hpp"

#include "common/error.hpp"

namespace bibs::lfsr {

Bilbo::Bilbo(int width) : Bilbo(width, primitive_polynomial(width)) {}

Bilbo::Bilbo(int width, Gf2Poly poly) : width_(width), poly_(poly) {
  BIBS_ASSERT(width >= 1 && poly.degree() == width);
  state_.resize(static_cast<std::size_t>(width));
}

void Bilbo::set_state(const BitVec& s) {
  BIBS_ASSERT(s.size() == static_cast<std::size_t>(width_));
  state_ = s;
}

bool Bilbo::step(const BitVec& inputs, bool scan_in) {
  const bool serial_out = state_.get(static_cast<std::size_t>(width_ - 1));
  switch (mode_) {
    case BilboMode::kNormal: {
      BIBS_ASSERT(inputs.size() == static_cast<std::size_t>(width_));
      state_ = inputs;
      break;
    }
    case BilboMode::kScan: {
      for (int i = width_ - 1; i >= 1; --i)
        state_.set(static_cast<std::size_t>(i),
                   state_.get(static_cast<std::size_t>(i - 1)));
      state_.set(0, scan_in);
      break;
    }
    case BilboMode::kTpg: {
      Type1Lfsr l(poly_);
      l.set_state(state_);
      l.step();
      state_ = l.state();
      break;
    }
    case BilboMode::kSa: {
      BIBS_ASSERT(inputs.size() == static_cast<std::size_t>(width_));
      Misr m(poly_);
      m.set_state(state_);
      m.step(inputs);
      state_ = m.state();
      break;
    }
  }
  return serial_out;
}

double Bilbo::area_overhead_gate_equivalents(int width) {
  // Per stage: one 2-bit mode mux (~3 gates) and one XOR (~3 gates), plus a
  // small shared feedback network (~4 gates). Matches the flip-flop-count
  // driven accounting the paper uses (its "7.2%" example is FF-dominated).
  return 6.0 * width + 4.0;
}

Cbilbo::Cbilbo(int width)
    : width_(width),
      tpg_(primitive_polynomial(width)),
      sa_(primitive_polynomial(width)) {}

void Cbilbo::step(const BitVec& responses) {
  tpg_.step();
  sa_.step(responses);
}

double Cbilbo::area_overhead_gate_equivalents(int width) {
  // A second rank of flip-flops (~8 gate equivalents each) on top of the
  // BILBO overhead: the reason the paper uses CBILBOs "only when necessary".
  return Bilbo::area_overhead_gate_equivalents(width) + 8.0 * width;
}

}  // namespace bibs::lfsr
