#include "lfsr/lfsr.hpp"

#include "common/error.hpp"

namespace bibs::lfsr {

Type1Lfsr::Type1Lfsr(Gf2Poly poly) : poly_(poly), n_(poly.degree()) {
  BIBS_ASSERT(n_ >= 1);
  state_.resize(static_cast<std::size_t>(n_));
  state_.set(static_cast<std::size_t>(n_ - 1), true);
}

void Type1Lfsr::set_state(const BitVec& s) {
  BIBS_ASSERT(s.size() == static_cast<std::size_t>(n_));
  state_ = s;
}

bool Type1Lfsr::feedback() const {
  // With the recurrence a(t) = sum_k g_k a(t-k), g_k is the coefficient of
  // x^(n-k) in the characteristic polynomial; stage k holds a(t-k+1), so the
  // feedback XORs stage k whenever coeff(x^(n-k)) = 1.
  bool fb = false;
  for (int k = 1; k <= n_; ++k)
    if (poly_.coeff(n_ - k) && stage(k)) fb = !fb;
  return fb;
}

bool Type1Lfsr::step() {
  const bool out = stage(n_);
  const bool fb = feedback();
  for (int i = n_ - 1; i >= 1; --i)
    state_.set(static_cast<std::size_t>(i), stage(i));
  state_.set(0, fb);
  return out;
}

std::uint64_t Type1Lfsr::measure_period(std::uint64_t limit) const {
  Type1Lfsr copy = *this;
  const BitVec start = copy.state();
  for (std::uint64_t i = 1; i <= limit; ++i) {
    copy.step();
    if (copy.state() == start) return i;
  }
  return 0;  // not periodic within limit
}

Type2Lfsr::Type2Lfsr(Gf2Poly poly) : poly_(poly), n_(poly.degree()) {
  BIBS_ASSERT(n_ >= 1);
  state_.resize(static_cast<std::size_t>(n_));
  state_.set(static_cast<std::size_t>(n_ - 1), true);
}

void Type2Lfsr::set_state(const BitVec& s) {
  BIBS_ASSERT(s.size() == static_cast<std::size_t>(n_));
  state_ = s;
}

bool Type2Lfsr::step() {
  // Galois form, standard orientation: the bit leaving stage 1 is folded
  // into stage k for every term x^k of the polynomial (the implicit x^n term
  // reinserts it at the top). Period 2^n - 1 for a primitive polynomial.
  const bool out = stage(1);
  BitVec next(static_cast<std::size_t>(n_));
  for (int i = 1; i <= n_ - 1; ++i)
    next.set(static_cast<std::size_t>(i - 1), stage(i + 1));
  if (out) {
    for (int k = 1; k <= n_; ++k)
      if (poly_.coeff(k))
        next.set(static_cast<std::size_t>(k - 1),
                 !next.get(static_cast<std::size_t>(k - 1)));
  }
  state_ = next;
  return out;
}

std::uint64_t Type2Lfsr::measure_period(std::uint64_t limit) const {
  Type2Lfsr copy = *this;
  const BitVec start = copy.state();
  for (std::uint64_t i = 1; i <= limit; ++i) {
    copy.step();
    if (copy.state() == start) return i;
  }
  return 0;
}

CompleteLfsr::CompleteLfsr(Gf2Poly poly) : lfsr_(poly) {}

bool CompleteLfsr::step() {
  // De Bruijn modification: the feedback is inverted exactly when stages
  // 1..n-1 are all 0, splicing the all-0 state into the orbit between the
  // states 0...01 and 10...0.
  const int n = lfsr_.stages();
  bool zeros = true;
  for (int i = 1; i <= n - 1; ++i)
    if (lfsr_.stage(i)) {
      zeros = false;
      break;
    }
  const bool out = lfsr_.stage(n);
  BitVec s = lfsr_.state();
  lfsr_.step();
  if (zeros) {
    BitVec t = lfsr_.state();
    t.set(0, !t.get(0));
    lfsr_.set_state(t);
  }
  (void)s;
  return out;
}

std::uint64_t CompleteLfsr::measure_period(std::uint64_t limit) const {
  CompleteLfsr copy = *this;
  const BitVec start = copy.state();
  for (std::uint64_t i = 1; i <= limit; ++i) {
    copy.step();
    if (copy.state() == start) return i;
  }
  return 0;
}

ShiftRegister::ShiftRegister(int n) : n_(n) {
  BIBS_ASSERT(n >= 1);
  state_.resize(static_cast<std::size_t>(n));
}

void ShiftRegister::set_state(const BitVec& s) {
  BIBS_ASSERT(s.size() == static_cast<std::size_t>(n_));
  state_ = s;
}

bool ShiftRegister::step(bool in) {
  const bool out = stage(n_);
  for (int i = n_ - 1; i >= 1; --i)
    state_.set(static_cast<std::size_t>(i), stage(i));
  state_.set(0, in);
  return out;
}

}  // namespace bibs::lfsr
