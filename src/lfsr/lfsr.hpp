#pragma once
// Type-1 (external-XOR / Fibonacci) linear feedback shift registers, complete
// (de Bruijn) LFSRs and plain shift registers.
//
// Stage numbering follows the paper: stage 1 is the first (most significant)
// stage and receives the feedback; stage i (i > 1) is fed by stage i-1. The
// defining type-1 property — stage i at time t equals stage i-1 at time t-1 —
// is what makes the SC_TPG/MC_TPG constructions work and is property-tested.

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "lfsr/polynomial.hpp"

namespace bibs::lfsr {

class Type1Lfsr {
 public:
  /// Builds an n-stage LFSR with characteristic polynomial `poly`
  /// (degree n). Initial state is 00...01 (only the last stage set),
  /// which is nonzero and therefore on the maximal-length orbit.
  explicit Type1Lfsr(Gf2Poly poly);

  int stages() const { return n_; }
  const Gf2Poly& polynomial() const { return poly_; }

  /// Current stage values; index 0 is stage 1.
  const BitVec& state() const { return state_; }
  void set_state(const BitVec& s);

  bool stage(int i) const { return state_.get(static_cast<std::size_t>(i - 1)); }

  /// Advances one clock. Returns the bit shifted out of the last stage.
  bool step();

  /// Period of the state orbit starting from the current state
  /// (2^n - 1 for a primitive polynomial and nonzero state).
  std::uint64_t measure_period(std::uint64_t limit) const;

 private:
  bool feedback() const;

  Gf2Poly poly_;
  int n_;
  BitVec state_;
};

/// Type-2 (internal-XOR / Galois) LFSR: the dual construction, with XORs
/// between stages instead of one external feedback network. Same maximal
/// period for the same primitive polynomial; included because BILBO
/// implementations and MISRs are usually drawn in this form. Note it does
/// NOT satisfy the type-1 shift property the TPG constructions need.
class Type2Lfsr {
 public:
  explicit Type2Lfsr(Gf2Poly poly);

  int stages() const { return n_; }
  const Gf2Poly& polynomial() const { return poly_; }
  const BitVec& state() const { return state_; }
  void set_state(const BitVec& s);
  bool stage(int i) const { return state_.get(static_cast<std::size_t>(i - 1)); }

  /// Advances one clock. Returns the bit shifted out of the last stage.
  bool step();

  std::uint64_t measure_period(std::uint64_t limit) const;

 private:
  Gf2Poly poly_;
  int n_;
  BitVec state_;
};

/// Complete feedback shift register (Wang & McCluskey [15]): a type-1 LFSR
/// modified with one NOR gate so the all-0 state is inserted into the orbit,
/// giving period exactly 2^n. Used when the all-0 test pattern is required.
class CompleteLfsr {
 public:
  explicit CompleteLfsr(Gf2Poly poly);

  int stages() const { return lfsr_.stages(); }
  const BitVec& state() const { return lfsr_.state(); }
  void set_state(const BitVec& s) { lfsr_.set_state(s); }
  bool stage(int i) const { return lfsr_.stage(i); }

  bool step();

  std::uint64_t measure_period(std::uint64_t limit) const;

 private:
  Type1Lfsr lfsr_;
};

/// Plain serial shift register of n stages; step() shifts `in` into stage 1
/// and returns the bit leaving the last stage. The extra D flip-flops the TPG
/// procedures add in front of registers behave exactly like this.
class ShiftRegister {
 public:
  explicit ShiftRegister(int n);

  int stages() const { return n_; }
  const BitVec& state() const { return state_; }
  void set_state(const BitVec& s);
  bool stage(int i) const { return state_.get(static_cast<std::size_t>(i - 1)); }

  bool step(bool in);

 private:
  int n_;
  BitVec state_;
};

}  // namespace bibs::lfsr
