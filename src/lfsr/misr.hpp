#pragma once
// Multiple-input signature register: the signature-analysis half of a BILBO.

#include <cstdint>

#include "common/bitvec.hpp"
#include "lfsr/polynomial.hpp"

namespace bibs::lfsr {

/// An n-stage MISR built on the same type-1 feedback structure as Type1Lfsr;
/// every clock the response vector is XORed stage-wise into the shifting
/// state. After the test the state is the signature.
class Misr {
 public:
  explicit Misr(Gf2Poly poly);

  int stages() const { return n_; }
  const BitVec& state() const { return state_; }
  void set_state(const BitVec& s);
  void reset() { state_.clear(); }

  /// Compresses one parallel response word (`inputs.size() == stages()`).
  void step(const BitVec& inputs);

  /// Signature as an integer (stage 1 = LSB); only valid for n <= 64.
  std::uint64_t signature() const;

 private:
  Gf2Poly poly_;
  int n_;
  BitVec state_;
};

}  // namespace bibs::lfsr
