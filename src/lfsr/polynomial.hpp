#pragma once
// GF(2) polynomial arithmetic and the primitive-polynomial table that backs
// every TPG in the library.
//
// Representation: (degree, low mask). low bit e holds the coefficient of x^e
// for e < degree; the leading coefficient is implicit. This supports moduli
// up to degree 64 — needed because a BIBS kernel concatenating eight 8-bit
// registers uses a 64-stage LFSR — while residues (degree <= 63) still fit a
// plain 64-bit mask.

#include <cstdint>
#include <string>
#include <vector>

namespace bibs::lfsr {

class Gf2Poly {
 public:
  Gf2Poly() = default;
  /// Constructs from a full coefficient mask (degree <= 63),
  /// e.g. (1<<12)|(1<<7)|(1<<4)|(1<<3)|1.
  explicit Gf2Poly(std::uint64_t mask);
  /// Constructs from a list of exponents, e.g. {12, 7, 4, 3, 0}. The largest
  /// exponent may be 64; all others must be below 64.
  static Gf2Poly from_exponents(const std::vector<int>& exps);

  int degree() const { return degree_; }
  bool coeff(int e) const {
    if (e == degree_) return degree_ >= 0;
    return e >= 0 && e < 64 && ((low_ >> e) & 1u);
  }
  bool is_zero() const { return degree_ < 0; }

  /// Full coefficient mask; only valid for degree <= 63.
  std::uint64_t mask() const;
  /// Coefficients below the leading term (valid for any degree <= 64).
  std::uint64_t low_mask() const { return low_; }

  bool operator==(const Gf2Poly& o) const = default;

  /// Human-readable form, e.g. "x^12 + x^7 + x^4 + x^3 + 1".
  std::string to_string() const;

 private:
  int degree_ = -1;
  std::uint64_t low_ = 0;
};

/// (a * b) mod p over GF(2). deg(p) in [1, 64]; operands must be reduced
/// (degree < deg(p)).
Gf2Poly mulmod(Gf2Poly a, Gf2Poly b, Gf2Poly p);

/// (a ^ e) mod p over GF(2).
Gf2Poly powmod(Gf2Poly a, std::uint64_t e, Gf2Poly p);

/// Exhaustive order-of-x test; practical for degree <= 24 or so.
/// Returns true iff x generates the full multiplicative group mod p,
/// i.e. p is primitive.
bool is_primitive_bruteforce(Gf2Poly p);

/// Returns the library's chosen primitive polynomial of the given degree
/// (1 <= degree <= 64). Degree 12 is the paper's x^12 + x^7 + x^4 + x^3 + 1;
/// degrees 33-64 follow the standard maximal-LFSR tap tables, each verified
/// primitive against the factorization of 2^n - 1.
/// Throws bibs::DesignError for unsupported degrees.
Gf2Poly primitive_polynomial(int degree);

/// Largest degree primitive_polynomial() supports.
int max_supported_degree();

}  // namespace bibs::lfsr
