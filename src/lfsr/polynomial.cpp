#include "lfsr/polynomial.hpp"

#include <array>
#include <bit>

#include "common/error.hpp"

namespace bibs::lfsr {

Gf2Poly::Gf2Poly(std::uint64_t mask) {
  if (mask == 0) return;
  degree_ = 63 - std::countl_zero(mask);
  low_ = mask & ~(1ull << degree_);
}

Gf2Poly Gf2Poly::from_exponents(const std::vector<int>& exps) {
  BIBS_ASSERT(!exps.empty());
  Gf2Poly p;
  for (int e : exps) {
    BIBS_ASSERT(e >= 0 && e <= 64);
    p.degree_ = std::max(p.degree_, e);
  }
  for (int e : exps) {
    if (e == p.degree_) continue;
    BIBS_ASSERT(e < 64);
    p.low_ |= 1ull << e;
  }
  return p;
}

std::uint64_t Gf2Poly::mask() const {
  if (degree_ < 0) return 0;
  BIBS_ASSERT(degree_ <= 63);
  return low_ | (1ull << degree_);
}

std::string Gf2Poly::to_string() const {
  if (degree_ < 0) return "0";
  std::string s;
  for (int e = degree_; e >= 0; --e) {
    if (!coeff(e)) continue;
    if (!s.empty()) s += " + ";
    if (e == 0)
      s += "1";
    else if (e == 1)
      s += "x";
    else
      s += "x^" + std::to_string(e);
  }
  return s;
}

Gf2Poly mulmod(Gf2Poly a, Gf2Poly b, Gf2Poly p) {
  const int deg = p.degree();
  BIBS_ASSERT(deg >= 1 && deg <= 64);
  const std::uint64_t modmask = (deg >= 64) ? ~0ull : (1ull << deg) - 1;
  std::uint64_t am = a.mask();
  std::uint64_t bm = b.mask();
  BIBS_ASSERT((am & ~modmask) == 0 && (bm & ~modmask) == 0);
  std::uint64_t r = 0;
  while (bm) {
    if (bm & 1u) r ^= am;
    bm >>= 1;
    // Multiply am by x, reducing via x^deg == p.low_mask() (mod p).
    const bool top = (am >> (deg - 1)) & 1u;
    am = (am << 1) & modmask;
    if (top) am ^= p.low_mask();
  }
  return Gf2Poly(r);
}

namespace {

/// Reduces a (degree <= 63) modulo p.
Gf2Poly reduce(Gf2Poly a, Gf2Poly p) {
  while (a.degree() >= p.degree()) {
    std::uint64_t am = a.mask();
    const int shift = a.degree() - p.degree();
    am ^= p.low_mask() << shift;
    if (p.degree() + shift <= 63) am ^= 1ull << (p.degree() + shift);
    a = Gf2Poly(am);
  }
  return a;
}

}  // namespace

Gf2Poly powmod(Gf2Poly a, std::uint64_t e, Gf2Poly p) {
  a = reduce(a, p);
  Gf2Poly r = reduce(Gf2Poly(1), p);
  while (e) {
    if (e & 1u) r = mulmod(r, a, p);
    a = mulmod(a, a, p);
    e >>= 1;
  }
  return r;
}

bool is_primitive_bruteforce(Gf2Poly p) {
  const int deg = p.degree();
  if (deg < 1 || deg > 62) return false;
  if (deg == 1) return p.low_mask() == 1;  // x + 1
  const std::uint64_t full = (1ull << deg) - 1;
  Gf2Poly cur(1);
  const Gf2Poly x(2);
  for (std::uint64_t i = 1; i <= full; ++i) {
    cur = mulmod(cur, x, p);
    if (cur.mask() == 1) return i == full;
  }
  return false;
}

namespace {
// Exponent lists for one primitive polynomial per degree. Degree 12 is the
// paper's choice (Figures 13 and 15); degrees up to 32 follow standard
// textbook tables, degrees 33-64 the standard maximal-LFSR tap tables.
// Every entry is verified primitive (exhaustively for small degrees and via
// the prime factorization of 2^n - 1 for the rest) in tests/lfsr_test.cpp.
constexpr int kMaxDegree = 64;
const std::array<std::vector<int>, kMaxDegree + 1> kTable = {{
    {},                  // degree 0: unused
    {1, 0},              // x + 1
    {2, 1, 0},           // x^2 + x + 1
    {3, 1, 0},           // x^3 + x + 1
    {4, 1, 0},           // x^4 + x + 1
    {5, 2, 0},           // x^5 + x^2 + 1
    {6, 1, 0},           // x^6 + x + 1
    {7, 1, 0},           // x^7 + x + 1
    {8, 4, 3, 2, 0},     // x^8 + x^4 + x^3 + x^2 + 1
    {9, 4, 0},           // x^9 + x^4 + 1
    {10, 3, 0},          // x^10 + x^3 + 1
    {11, 2, 0},          // x^11 + x^2 + 1
    {12, 7, 4, 3, 0},    // the paper's x^12 + x^7 + x^4 + x^3 + 1
    {13, 4, 3, 1, 0},    // x^13 + x^4 + x^3 + x + 1
    {14, 10, 6, 1, 0},   // x^14 + x^10 + x^6 + x + 1
    {15, 1, 0},          // x^15 + x + 1
    {16, 12, 3, 1, 0},   // x^16 + x^12 + x^3 + x + 1
    {17, 3, 0},          // x^17 + x^3 + 1
    {18, 7, 0},          // x^18 + x^7 + 1
    {19, 5, 2, 1, 0},    // x^19 + x^5 + x^2 + x + 1
    {20, 3, 0},          // x^20 + x^3 + 1
    {21, 2, 0},          // x^21 + x^2 + 1
    {22, 1, 0},          // x^22 + x + 1
    {23, 5, 0},          // x^23 + x^5 + 1
    {24, 7, 2, 1, 0},    // x^24 + x^7 + x^2 + x + 1
    {25, 3, 0},          // x^25 + x^3 + 1
    {26, 6, 2, 1, 0},    // x^26 + x^6 + x^2 + x + 1
    {27, 5, 2, 1, 0},    // x^27 + x^5 + x^2 + x + 1
    {28, 3, 0},          // x^28 + x^3 + 1
    {29, 2, 0},          // x^29 + x^2 + 1
    {30, 23, 2, 1, 0},   // x^30 + x^23 + x^2 + x + 1
    {31, 3, 0},          // x^31 + x^3 + 1
    {32, 22, 2, 1, 0},   // x^32 + x^22 + x^2 + x + 1
    {33, 20, 0},         // x^33 + x^20 + 1
    {34, 27, 2, 1, 0},
    {35, 33, 0},
    {36, 25, 0},
    {37, 36, 33, 31, 0},
    {38, 6, 5, 1, 0},
    {39, 35, 0},
    {40, 38, 21, 19, 0},
    {41, 38, 0},
    {42, 41, 20, 19, 0},
    {43, 42, 38, 37, 0},
    {44, 43, 18, 17, 0},
    {45, 44, 42, 41, 0},
    {46, 45, 26, 25, 0},
    {47, 42, 0},
    {48, 47, 21, 20, 0},
    {49, 40, 0},
    {50, 49, 24, 23, 0},
    {51, 50, 36, 35, 0},
    {52, 49, 0},
    {53, 52, 38, 37, 0},
    {54, 53, 18, 17, 0},
    {55, 31, 0},
    {56, 55, 35, 34, 0},
    {57, 50, 0},
    {58, 39, 0},
    {59, 58, 38, 37, 0},
    {60, 59, 0},
    {61, 60, 46, 45, 0},
    {62, 61, 6, 5, 0},
    {63, 62, 0},
    {64, 63, 61, 60, 0},
}};
}  // namespace

Gf2Poly primitive_polynomial(int degree) {
  if (degree < 1 || degree > kMaxDegree)
    throw DesignError("no primitive polynomial of degree " +
                      std::to_string(degree) + " in table (supported: 1..." +
                      std::to_string(kMaxDegree) + ")");
  return Gf2Poly::from_exponents(kTable[static_cast<std::size_t>(degree)]);
}

int max_supported_degree() { return kMaxDegree; }

}  // namespace bibs::lfsr
