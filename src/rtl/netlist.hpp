#pragma once
// Register-transfer-level circuit model: the direct encoding of the paper's
// circuit graph G = (V, E, w) from Section 3.1.
//
// Vertices (blocks) are combinational logic blocks, primary inputs/outputs,
// fanout blocks and vacuous blocks. Edges (connections) either pass through a
// register ("register edge", weight = register width) or are plain wires
// ("wire edge", weight = infinity in the paper; we simply tag the kind).
//
// Port convention: the fan-in connection order of a block defines its input
// port order (operand order for elaboration), and the fan-out connection
// order defines its output port order.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bibs::rtl {

using BlockId = std::int32_t;
using ConnId = std::int32_t;
inline constexpr BlockId kNoBlock = -1;

enum class BlockKind {
  kComb,     ///< combinational logic block
  kFanout,   ///< transfers its single input to all outputs unaltered
  kVacuous,  ///< wire-only block between two registers
  kInput,    ///< primary input
  kOutput,   ///< primary output
};

const char* to_string(BlockKind k);

struct Block {
  BlockId id = kNoBlock;
  BlockKind kind = BlockKind::kComb;
  std::string name;
  /// Operation tag used by gate-level elaboration for kComb blocks
  /// ("add", "mul", "and", "or", "xor", "not", "passthrough", ...).
  std::string op;
  /// Output bus width in bits.
  int width = 0;
};

struct Register {
  std::string name;
  int width = 0;
};

struct Connection {
  ConnId id = -1;
  BlockId from = kNoBlock;
  BlockId to = kNoBlock;
  /// Bus width carried by this connection.
  int width = 0;
  /// Present iff this is a register edge.
  std::optional<Register> reg;

  bool is_register() const { return reg.has_value(); }
};

/// A mutable RTL netlist. Construction is incremental (add blocks, then
/// connect them); validate() checks the global structural rules once the
/// circuit is complete.
class Netlist {
 public:
  explicit Netlist(std::string name = "circuit") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  BlockId add_input(const std::string& name, int width);
  BlockId add_output(const std::string& name, int width);
  BlockId add_comb(const std::string& name, const std::string& op, int width);
  BlockId add_fanout(const std::string& name, int width);
  BlockId add_vacuous(const std::string& name, int width);

  ConnId connect_wire(BlockId from, BlockId to, int width);
  ConnId connect_reg(BlockId from, BlockId to, const std::string& reg_name,
                     int width);

  std::size_t block_count() const { return blocks_.size(); }
  std::size_t connection_count() const { return conns_.size(); }

  const Block& block(BlockId id) const;
  const Connection& connection(ConnId id) const;
  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Connection>& connections() const { return conns_; }

  /// Fan-in connections of a block in input-port order.
  const std::vector<ConnId>& fanin(BlockId id) const;
  /// Fan-out connections of a block in output-port order.
  const std::vector<ConnId>& fanout(BlockId id) const;

  /// Block lookup by name; returns kNoBlock when absent.
  BlockId find_block(const std::string& name) const;
  /// Register-edge lookup by register name; returns -1 when absent.
  ConnId find_register(const std::string& name) const;

  std::vector<BlockId> inputs() const;
  std::vector<BlockId> outputs() const;

  /// All register edges.
  std::vector<ConnId> register_edges() const;
  /// Total flip-flop count over all registers.
  int total_register_bits() const;

  /// Replaces the wire edge `id` with a register edge (register insertion,
  /// used when a PI drives logic directly and a BIST register must be added).
  void insert_register_on_wire(ConnId id, const std::string& reg_name);

  /// Structural checks: kind-specific port arities, width consistency,
  /// unique names, and absence of combinational cycles (a cycle of wire
  /// edges only, which the paper forbids). Throws bibs::ParseError.
  void validate() const;

 private:
  BlockId add_block(BlockKind kind, const std::string& name,
                    const std::string& op, int width);

  std::string name_;
  std::vector<Block> blocks_;
  std::vector<Connection> conns_;
  std::vector<std::vector<ConnId>> fanin_;
  std::vector<std::vector<ConnId>> fanout_;
};

/// Parses the bibs RTL text format (see docs/netlist_format.md and
/// parser.cpp for the grammar). Throws bibs::ParseError on malformed input.
Netlist parse_netlist(const std::string& text);

/// Serializes a netlist to the text format; parse_netlist(to_text(n)) is an
/// exact structural round-trip.
std::string to_text(const Netlist& n);

}  // namespace bibs::rtl
