#include "rtl/sexpr.hpp"

#include <cctype>
#include <sstream>

namespace bibs::rtl {

std::string Sexpr::pos_prefix() const {
  if (line <= 0) return "";
  return std::to_string(line) + ":" + std::to_string(col) + ": ";
}

const std::string& Sexpr::head() const {
  static const std::string kEmpty;
  if (is_atom || children.empty() || !children[0].is_atom) return kEmpty;
  return children[0].atom;
}

const Sexpr& Sexpr::at(std::size_t i) const {
  if (is_atom || i >= children.size())
    throw ParseError("sexpr " + pos_prefix() + "index " + std::to_string(i) +
                     " out of range in " + to_string());
  return children[i];
}

const std::string& Sexpr::atom_at(std::size_t i) const {
  const Sexpr& c = at(i);
  if (!c.is_atom)
    throw ParseError("sexpr " + pos_prefix() + "expected an atom at position " +
                     std::to_string(i) + " in " + to_string());
  return c.atom;
}

int Sexpr::int_at(std::size_t i) const {
  const Sexpr& c = at(i);
  if (!c.is_atom)
    throw ParseError("sexpr " + pos_prefix() + "expected an atom at position " +
                     std::to_string(i) + " in " + to_string());
  const std::string& a = c.atom;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(a, &pos);
    if (pos != a.size()) throw std::invalid_argument(a);
    return v;
  } catch (const std::exception&) {
    throw ParseError("sexpr " + c.pos_prefix() + "expected an integer, got '" +
                     a + "'");
  }
}

std::string Sexpr::to_string() const {
  if (is_atom) return atom;
  std::string s = "(";
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i) s += ' ';
    s += children[i].to_string();
  }
  return s + ")";
}

namespace {

struct Lexer {
  const std::string& text;
  const ParseLimits& limits;
  std::size_t pos = 0;
  int line = 1;
  std::size_t line_start = 0;  // offset of the current line's first byte
  std::size_t tokens = 0;

  int col() const { return static_cast<int>(pos - line_start) + 1; }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ';') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') {
          ++line;
          line_start = pos + 1;
        }
        ++pos;
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("sexpr " + std::to_string(line) + ":" +
                     std::to_string(col()) + ": " + why);
  }

  void count_token() {
    if (++tokens > limits.max_tokens)
      fail("token limit of " + std::to_string(limits.max_tokens) +
           " exceeded");
  }

  Sexpr parse(std::size_t depth) {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    const int at_line = line;
    const int at_col = col();
    if (text[pos] == '(') {
      if (depth >= limits.max_depth)
        fail("nesting depth limit of " + std::to_string(limits.max_depth) +
             " exceeded");
      count_token();
      ++pos;
      Sexpr list = Sexpr::make_list();
      list.line = at_line;
      list.col = at_col;
      for (;;) {
        skip_ws();
        if (pos >= text.size())
          fail("unterminated list opened at " + std::to_string(at_line) + ":" +
               std::to_string(at_col));
        if (text[pos] == ')') {
          ++pos;
          return list;
        }
        list.children.push_back(parse(depth + 1));
      }
    }
    if (text[pos] == ')') fail("unexpected ')'");
    count_token();
    std::string atom;
    while (pos < text.size() && text[pos] != '(' && text[pos] != ')' &&
           text[pos] != ';' &&
           !std::isspace(static_cast<unsigned char>(text[pos])))
      atom.push_back(text[pos++]);
    Sexpr s = Sexpr::make_atom(std::move(atom));
    s.line = at_line;
    s.col = at_col;
    return s;
  }
};

}  // namespace

Sexpr parse_sexpr(const std::string& text, const ParseLimits& limits) {
  Lexer lex{text, limits};
  Sexpr s = lex.parse(0);
  lex.skip_ws();
  if (lex.pos < text.size()) lex.fail("trailing content after expression");
  return s;
}

}  // namespace bibs::rtl
