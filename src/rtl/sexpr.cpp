#include "rtl/sexpr.hpp"

#include <cctype>
#include <sstream>

namespace bibs::rtl {

const std::string& Sexpr::head() const {
  static const std::string kEmpty;
  if (is_atom || children.empty() || !children[0].is_atom) return kEmpty;
  return children[0].atom;
}

const Sexpr& Sexpr::at(std::size_t i) const {
  if (is_atom || i >= children.size())
    throw ParseError("sexpr: index " + std::to_string(i) + " out of range in " +
                     to_string());
  return children[i];
}

const std::string& Sexpr::atom_at(std::size_t i) const {
  const Sexpr& c = at(i);
  if (!c.is_atom)
    throw ParseError("sexpr: expected an atom at position " +
                     std::to_string(i) + " in " + to_string());
  return c.atom;
}

int Sexpr::int_at(std::size_t i) const {
  const std::string& a = atom_at(i);
  try {
    std::size_t pos = 0;
    const int v = std::stoi(a, &pos);
    if (pos != a.size()) throw std::invalid_argument(a);
    return v;
  } catch (const std::exception&) {
    throw ParseError("sexpr: expected an integer, got '" + a + "'");
  }
}

std::string Sexpr::to_string() const {
  if (is_atom) return atom;
  std::string s = "(";
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i) s += ' ';
    s += children[i].to_string();
  }
  return s + ")";
}

namespace {

struct Lexer {
  const std::string& text;
  std::size_t pos = 0;
  int line = 1;

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ';') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line;
        ++pos;
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("sexpr line " + std::to_string(line) + ": " + why);
  }

  Sexpr parse() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    if (text[pos] == '(') {
      ++pos;
      Sexpr list = Sexpr::make_list();
      for (;;) {
        skip_ws();
        if (pos >= text.size()) fail("unterminated list");
        if (text[pos] == ')') {
          ++pos;
          return list;
        }
        list.children.push_back(parse());
      }
    }
    if (text[pos] == ')') fail("unexpected ')'");
    std::string atom;
    while (pos < text.size() && text[pos] != '(' && text[pos] != ')' &&
           text[pos] != ';' &&
           !std::isspace(static_cast<unsigned char>(text[pos])))
      atom.push_back(text[pos++]);
    return Sexpr::make_atom(std::move(atom));
  }
};

}  // namespace

Sexpr parse_sexpr(const std::string& text) {
  Lexer lex{text};
  Sexpr s = lex.parse();
  lex.skip_ws();
  if (lex.pos < text.size()) lex.fail("trailing content after expression");
  return s;
}

}  // namespace bibs::rtl
