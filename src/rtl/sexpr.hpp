#pragma once
// Minimal S-expression reader/printer: the substrate for the EDIF-style
// circuit format (the BITS system the paper integrates with exchanged
// circuits as EDIF, which is S-expression based).

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bibs::rtl {

struct Sexpr {
  /// An atom iff children is unused; a list otherwise.
  bool is_atom = false;
  std::string atom;
  std::vector<Sexpr> children;

  static Sexpr make_atom(std::string a) {
    Sexpr s;
    s.is_atom = true;
    s.atom = std::move(a);
    return s;
  }
  static Sexpr make_list(std::vector<Sexpr> kids = {}) {
    Sexpr s;
    s.children = std::move(kids);
    return s;
  }

  /// List head atom ("" for empty lists / atoms-as-heads).
  const std::string& head() const;
  std::size_t size() const { return children.size(); }
  const Sexpr& at(std::size_t i) const;
  /// The i-th child as an atom; throws ParseError otherwise.
  const std::string& atom_at(std::size_t i) const;
  /// The i-th child as an integer; throws ParseError otherwise.
  int int_at(std::size_t i) const;

  std::string to_string() const;
};

/// Parses one S-expression (';' starts a line comment). Trailing content
/// after the first complete expression is an error.
Sexpr parse_sexpr(const std::string& text);

}  // namespace bibs::rtl
