#pragma once
// Minimal S-expression reader/printer: the substrate for the EDIF-style
// circuit format (the BITS system the paper integrates with exchanged
// circuits as EDIF, which is S-expression based).
//
// The reader is hardened against hostile input: nesting depth and token
// count are bounded (ParseLimits), and every ParseError carries a 1-based
// line:column position. Parsed nodes remember where they started so later
// semantic passes (e.g. the EDIF reader) can point at the offending form.

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bibs::rtl {

/// Bounds enforced while reading untrusted S-expression text. Exceeding
/// either limit raises ParseError; a limit of 0 means "reject everything"
/// (there is deliberately no unlimited setting).
struct ParseLimits {
  /// Maximum list nesting depth. 256 is far beyond any real EDIF file but
  /// small enough that the recursive reader cannot overflow the stack.
  std::size_t max_depth = 256;
  /// Maximum number of tokens (atoms plus list openers).
  std::size_t max_tokens = 1'000'000;
};

struct Sexpr {
  /// An atom iff children is unused; a list otherwise.
  bool is_atom = false;
  std::string atom;
  std::vector<Sexpr> children;
  /// 1-based source position of the token that started this node;
  /// 0 for nodes built programmatically.
  int line = 0;
  int col = 0;

  static Sexpr make_atom(std::string a) {
    Sexpr s;
    s.is_atom = true;
    s.atom = std::move(a);
    return s;
  }
  static Sexpr make_list(std::vector<Sexpr> kids = {}) {
    Sexpr s;
    s.children = std::move(kids);
    return s;
  }

  /// "L:C: " when the node has a source position, "" otherwise. Prepend to
  /// messages about this node so parse diagnostics stay locatable.
  std::string pos_prefix() const;

  /// List head atom ("" for empty lists / atoms-as-heads).
  const std::string& head() const;
  std::size_t size() const { return children.size(); }
  const Sexpr& at(std::size_t i) const;
  /// The i-th child as an atom; throws ParseError otherwise.
  const std::string& atom_at(std::size_t i) const;
  /// The i-th child as an integer; throws ParseError otherwise.
  int int_at(std::size_t i) const;

  std::string to_string() const;
};

/// Parses one S-expression (';' starts a line comment). Trailing content
/// after the first complete expression is an error, as is input exceeding
/// `limits`. All errors are ParseError with a 1-based line:column position.
Sexpr parse_sexpr(const std::string& text, const ParseLimits& limits = {});

}  // namespace bibs::rtl
