// Text format for RTL netlists. Grammar (one statement per line, '#' starts
// a comment):
//
//   circuit <name>
//   input   <name> <width>
//   output  <name> <width>
//   comb    <name> <op> <width>
//   fanout  <name> <width>
//   vacuous <name> <width>
//   wire    <from> <to> <width>
//   reg     <from> <to> <regname> <width>
//
// Blocks must be declared before they are referenced by wire/reg statements.
// Fan-in order of wire/reg statements defines a block's input-port order.

#include <sstream>

#include "rtl/netlist.hpp"

namespace bibs::rtl {

namespace {

int parse_width(const std::string& tok, int lineno) {
  try {
    std::size_t pos = 0;
    const int w = std::stoi(tok, &pos);
    if (pos != tok.size() || w <= 0) throw std::invalid_argument(tok);
    return w;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(lineno) + ": bad width '" + tok +
                     "'");
  }
}

BlockId require_block(const Netlist& n, const std::string& name, int lineno) {
  const BlockId id = n.find_block(name);
  if (id == kNoBlock)
    throw ParseError("line " + std::to_string(lineno) + ": unknown block '" +
                     name + "'");
  return id;
}

}  // namespace

Netlist parse_netlist(const std::string& text) {
  Netlist n;
  bool named = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> tok;
    for (std::string t; ls >> t;) tok.push_back(t);
    if (tok.empty()) continue;

    auto arity = [&](std::size_t want) {
      if (tok.size() != want + 1)
        throw ParseError("line " + std::to_string(lineno) + ": '" + tok[0] +
                         "' expects " + std::to_string(want) + " operands");
    };

    const std::string& kw = tok[0];
    if (kw == "circuit") {
      arity(1);
      if (named)
        throw ParseError("line " + std::to_string(lineno) +
                         ": duplicate 'circuit' statement");
      n.set_name(tok[1]);
      named = true;
    } else if (kw == "input") {
      arity(2);
      n.add_input(tok[1], parse_width(tok[2], lineno));
    } else if (kw == "output") {
      arity(2);
      n.add_output(tok[1], parse_width(tok[2], lineno));
    } else if (kw == "comb") {
      arity(3);
      n.add_comb(tok[1], tok[2], parse_width(tok[3], lineno));
    } else if (kw == "fanout") {
      arity(2);
      n.add_fanout(tok[1], parse_width(tok[2], lineno));
    } else if (kw == "vacuous") {
      arity(2);
      n.add_vacuous(tok[1], parse_width(tok[2], lineno));
    } else if (kw == "wire") {
      arity(3);
      n.connect_wire(require_block(n, tok[1], lineno),
                     require_block(n, tok[2], lineno),
                     parse_width(tok[3], lineno));
    } else if (kw == "reg") {
      arity(4);
      n.connect_reg(require_block(n, tok[1], lineno),
                    require_block(n, tok[2], lineno), tok[3],
                    parse_width(tok[4], lineno));
    } else {
      throw ParseError("line " + std::to_string(lineno) +
                       ": unknown keyword '" + kw + "'");
    }
  }
  n.validate();
  return n;
}

std::string to_text(const Netlist& n) {
  std::ostringstream os;
  os << "circuit " << n.name() << "\n";
  for (const Block& b : n.blocks()) {
    switch (b.kind) {
      case BlockKind::kInput:
        os << "input " << b.name << ' ' << b.width << "\n";
        break;
      case BlockKind::kOutput:
        os << "output " << b.name << ' ' << b.width << "\n";
        break;
      case BlockKind::kComb:
        os << "comb " << b.name << ' ' << b.op << ' ' << b.width << "\n";
        break;
      case BlockKind::kFanout:
        os << "fanout " << b.name << ' ' << b.width << "\n";
        break;
      case BlockKind::kVacuous:
        os << "vacuous " << b.name << ' ' << b.width << "\n";
        break;
    }
  }
  for (const Connection& c : n.connections()) {
    if (c.is_register())
      os << "reg " << n.block(c.from).name << ' ' << n.block(c.to).name << ' '
         << c.reg->name << ' ' << c.width << "\n";
    else
      os << "wire " << n.block(c.from).name << ' ' << n.block(c.to).name << ' '
         << c.width << "\n";
  }
  return os.str();
}

}  // namespace bibs::rtl
