#pragma once
// EDIF-style S-expression circuit format. The paper's BITS system imported
// and exported circuits as EDIF; this is the equivalent structured format
// for this library's RTL model (documented in docs/netlist_format.md):
//
//   (circuit c5a2m
//     (input a 8)
//     (output o 8)
//     (comb A1 add 8)
//     (fanout F1 8)
//     (vacuous V1 8)
//     (reg a A1 a_r 8)      ; register edge: from to name width
//     (wire F1 A1 8))       ; wire edge: from to width
//
// Connection order defines the input-port order, exactly as in the line
// format (rtl::parse_netlist).

#include "rtl/netlist.hpp"

namespace bibs::rtl {

/// Parses the EDIF-style form. Throws bibs::ParseError on malformed input.
Netlist parse_edif(const std::string& text);

/// Pretty-printed EDIF-style form; parse_edif(to_edif(n)) round-trips.
std::string to_edif(const Netlist& n);

}  // namespace bibs::rtl
