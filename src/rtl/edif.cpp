#include "rtl/edif.hpp"

#include <sstream>

#include "rtl/sexpr.hpp"

namespace bibs::rtl {

Netlist parse_edif(const std::string& text) {
  const Sexpr root = parse_sexpr(text);
  if (root.head() != "circuit")
    throw ParseError("edif " + root.pos_prefix() +
                     "top-level form must be (circuit ...)");
  if (root.size() < 2)
    throw ParseError("edif " + root.pos_prefix() + "(circuit ...) needs a name");
  Netlist n(root.atom_at(1));

  auto require_block = [&](const Sexpr& f, std::size_t arg) {
    const std::string& name = f.atom_at(arg);
    const BlockId id = n.find_block(name);
    if (id == kNoBlock)
      throw ParseError("edif " + f.at(arg).pos_prefix() + "unknown block '" +
                       name + "'");
    return id;
  };

  for (std::size_t i = 2; i < root.size(); ++i) {
    const Sexpr& f = root.at(i);
    const std::string& kw = f.head();
    if (kw == "input") {
      n.add_input(f.atom_at(1), f.int_at(2));
    } else if (kw == "output") {
      n.add_output(f.atom_at(1), f.int_at(2));
    } else if (kw == "comb") {
      n.add_comb(f.atom_at(1), f.atom_at(2), f.int_at(3));
    } else if (kw == "fanout") {
      n.add_fanout(f.atom_at(1), f.int_at(2));
    } else if (kw == "vacuous") {
      n.add_vacuous(f.atom_at(1), f.int_at(2));
    } else if (kw == "reg") {
      n.connect_reg(require_block(f, 1), require_block(f, 2), f.atom_at(3),
                    f.int_at(4));
    } else if (kw == "wire") {
      n.connect_wire(require_block(f, 1), require_block(f, 2), f.int_at(3));
    } else {
      throw ParseError("edif " + f.pos_prefix() + "unknown form '" + kw + "'");
    }
  }
  n.validate();
  return n;
}

std::string to_edif(const Netlist& n) {
  std::ostringstream os;
  os << "(circuit " << n.name() << "\n";
  for (const Block& b : n.blocks()) {
    switch (b.kind) {
      case BlockKind::kInput:
        os << "  (input " << b.name << ' ' << b.width << ")\n";
        break;
      case BlockKind::kOutput:
        os << "  (output " << b.name << ' ' << b.width << ")\n";
        break;
      case BlockKind::kComb:
        os << "  (comb " << b.name << ' ' << b.op << ' ' << b.width << ")\n";
        break;
      case BlockKind::kFanout:
        os << "  (fanout " << b.name << ' ' << b.width << ")\n";
        break;
      case BlockKind::kVacuous:
        os << "  (vacuous " << b.name << ' ' << b.width << ")\n";
        break;
    }
  }
  for (const Connection& c : n.connections()) {
    if (c.is_register())
      os << "  (reg " << n.block(c.from).name << ' ' << n.block(c.to).name
         << ' ' << c.reg->name << ' ' << c.width << ")\n";
    else
      os << "  (wire " << n.block(c.from).name << ' ' << n.block(c.to).name
         << ' ' << c.width << ")\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace bibs::rtl
