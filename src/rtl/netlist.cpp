#include "rtl/netlist.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace bibs::rtl {

const char* to_string(BlockKind k) {
  switch (k) {
    case BlockKind::kComb: return "comb";
    case BlockKind::kFanout: return "fanout";
    case BlockKind::kVacuous: return "vacuous";
    case BlockKind::kInput: return "input";
    case BlockKind::kOutput: return "output";
  }
  return "?";
}

BlockId Netlist::add_block(BlockKind kind, const std::string& name,
                           const std::string& op, int width) {
  if (width <= 0) throw ParseError("block '" + name + "' has width <= 0");
  if (find_block(name) != kNoBlock)
    throw ParseError("duplicate block name '" + name + "'");
  const BlockId id = static_cast<BlockId>(blocks_.size());
  blocks_.push_back(Block{id, kind, name, op, width});
  fanin_.emplace_back();
  fanout_.emplace_back();
  return id;
}

BlockId Netlist::add_input(const std::string& name, int width) {
  return add_block(BlockKind::kInput, name, {}, width);
}
BlockId Netlist::add_output(const std::string& name, int width) {
  return add_block(BlockKind::kOutput, name, {}, width);
}
BlockId Netlist::add_comb(const std::string& name, const std::string& op,
                          int width) {
  return add_block(BlockKind::kComb, name, op, width);
}
BlockId Netlist::add_fanout(const std::string& name, int width) {
  return add_block(BlockKind::kFanout, name, {}, width);
}
BlockId Netlist::add_vacuous(const std::string& name, int width) {
  return add_block(BlockKind::kVacuous, name, {}, width);
}

ConnId Netlist::connect_wire(BlockId from, BlockId to, int width) {
  BIBS_ASSERT(from >= 0 && from < static_cast<BlockId>(blocks_.size()));
  BIBS_ASSERT(to >= 0 && to < static_cast<BlockId>(blocks_.size()));
  const ConnId id = static_cast<ConnId>(conns_.size());
  conns_.push_back(Connection{id, from, to, width, std::nullopt});
  fanout_[static_cast<std::size_t>(from)].push_back(id);
  fanin_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

ConnId Netlist::connect_reg(BlockId from, BlockId to,
                            const std::string& reg_name, int width) {
  if (find_register(reg_name) != -1)
    throw ParseError("duplicate register name '" + reg_name + "'");
  const ConnId id = connect_wire(from, to, width);
  conns_[static_cast<std::size_t>(id)].reg = Register{reg_name, width};
  return id;
}

const Block& Netlist::block(BlockId id) const {
  BIBS_ASSERT(id >= 0 && id < static_cast<BlockId>(blocks_.size()));
  return blocks_[static_cast<std::size_t>(id)];
}

const Connection& Netlist::connection(ConnId id) const {
  BIBS_ASSERT(id >= 0 && id < static_cast<ConnId>(conns_.size()));
  return conns_[static_cast<std::size_t>(id)];
}

const std::vector<ConnId>& Netlist::fanin(BlockId id) const {
  BIBS_ASSERT(id >= 0 && id < static_cast<BlockId>(blocks_.size()));
  return fanin_[static_cast<std::size_t>(id)];
}

const std::vector<ConnId>& Netlist::fanout(BlockId id) const {
  BIBS_ASSERT(id >= 0 && id < static_cast<BlockId>(blocks_.size()));
  return fanout_[static_cast<std::size_t>(id)];
}

BlockId Netlist::find_block(const std::string& name) const {
  for (const Block& b : blocks_)
    if (b.name == name) return b.id;
  return kNoBlock;
}

ConnId Netlist::find_register(const std::string& name) const {
  for (const Connection& c : conns_)
    if (c.reg && c.reg->name == name) return c.id;
  return -1;
}

std::vector<BlockId> Netlist::inputs() const {
  std::vector<BlockId> out;
  for (const Block& b : blocks_)
    if (b.kind == BlockKind::kInput) out.push_back(b.id);
  return out;
}

std::vector<BlockId> Netlist::outputs() const {
  std::vector<BlockId> out;
  for (const Block& b : blocks_)
    if (b.kind == BlockKind::kOutput) out.push_back(b.id);
  return out;
}

std::vector<ConnId> Netlist::register_edges() const {
  std::vector<ConnId> out;
  for (const Connection& c : conns_)
    if (c.is_register()) out.push_back(c.id);
  return out;
}

int Netlist::total_register_bits() const {
  int bits = 0;
  for (const Connection& c : conns_)
    if (c.is_register()) bits += c.reg->width;
  return bits;
}

void Netlist::insert_register_on_wire(ConnId id, const std::string& reg_name) {
  Connection& c = conns_[static_cast<std::size_t>(id)];
  BIBS_ASSERT(!c.is_register());
  if (find_register(reg_name) != -1)
    throw ParseError("duplicate register name '" + reg_name + "'");
  c.reg = Register{reg_name, c.width};
}

void Netlist::validate() const {
  for (const Block& b : blocks_) {
    const auto& in = fanin_[static_cast<std::size_t>(b.id)];
    const auto& out = fanout_[static_cast<std::size_t>(b.id)];
    auto fail = [&](const std::string& why) {
      throw ParseError("block '" + b.name + "': " + why);
    };
    switch (b.kind) {
      case BlockKind::kInput:
        if (!in.empty()) fail("primary input has fan-in");
        if (out.empty()) fail("primary input drives nothing");
        break;
      case BlockKind::kOutput:
        if (in.size() != 1) fail("primary output must have exactly one fan-in");
        if (!out.empty()) fail("primary output has fan-out");
        break;
      case BlockKind::kFanout:
        if (in.size() != 1) fail("fanout block must have exactly one fan-in");
        if (out.size() < 2) fail("fanout block must have at least two fan-outs");
        for (ConnId c : out)
          if (connection(c).width != b.width)
            fail("fanout width mismatch on an out-edge");
        if (connection(in[0]).width != b.width) fail("fanout width mismatch");
        break;
      case BlockKind::kVacuous:
        if (in.size() != 1 || out.size() != 1)
          fail("vacuous block must have exactly one fan-in and one fan-out");
        if (connection(in[0]).width != b.width ||
            connection(out[0]).width != b.width)
          fail("vacuous width mismatch");
        break;
      case BlockKind::kComb:
        if (in.empty()) fail("combinational block has no fan-in");
        if (out.empty()) fail("combinational block drives nothing");
        for (ConnId c : out)
          if (connection(c).width != b.width)
            fail("output width mismatch on an out-edge");
        break;
    }
  }

  // Combinational-cycle check: a cycle using wire edges only would make the
  // circuit asynchronous; the paper disallows it outright.
  const std::size_t n = blocks_.size();
  std::vector<int> color(n, 0);  // 0 = white, 1 = on stack, 2 = done
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (vertex, next edge)
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty()) {
      const std::size_t v = stack.back().first;
      const std::size_t idx = stack.back().second;
      const auto& outs = fanout_[v];
      if (idx >= outs.size()) {
        color[v] = 2;
        stack.pop_back();
        continue;
      }
      stack.back().second = idx + 1;
      const Connection& c = connection(outs[idx]);
      if (c.is_register()) continue;  // register edges break comb paths
      const std::size_t t = static_cast<std::size_t>(c.to);
      if (color[t] == 1)
        throw ParseError("combinational cycle through block '" +
                         block(c.to).name + "'");
      if (color[t] == 0) {
        color[t] = 1;
        stack.emplace_back(t, 0);
      }
    }
  }
}

}  // namespace bibs::rtl
