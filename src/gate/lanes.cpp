#include "gate/lanes.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/error.hpp"
#include "gate/lanes_impl.hpp"
#include "obs/report.hpp"

namespace bibs::gate {

// The wide backends live in their own TUs so their kernels compile under
// the matching ISA flags; a TU is only built (and its factory only linked)
// when the compiler accepts the flags — see src/gate/CMakeLists.txt.
namespace detail {
#ifdef BIBS_LANES_AVX2
const LaneBackend* avx2_backend();
#endif
#ifdef BIBS_LANES_AVX512
const LaneBackend* avx512_backend();
#endif
}  // namespace detail

namespace {

bool always_supported() { return true; }

std::string compiled_in_names() {
  std::string names;
  for (const LaneBackend* b : all_lane_backends()) {
    if (!names.empty()) names += ", ";
    names += b->name;
  }
  return names;
}

const LaneBackend* resolve_active() {
  if (const char* env = std::getenv("BIBS_LANES"); env && *env) {
    const LaneBackend* b = find_lane_backend(env);
    if (!b)
      throw DesignError("BIBS_LANES=" + std::string(env) +
                        " is not a compiled-in lane backend (have: " +
                        compiled_in_names() + ")");
    if (!b->supported())
      throw DesignError("BIBS_LANES=" + std::string(env) +
                        " is not supported by this CPU");
    return b;
  }
  const LaneBackend* widest = &scalar_lane_backend();
  for (const LaneBackend* b : all_lane_backends())
    if (b->supported() && b->words > widest->words) widest = b;
  return widest;
}

std::mutex g_active_mutex;
std::atomic<const LaneBackend*> g_active{nullptr};

}  // namespace

const LaneBackend& scalar_lane_backend() {
  static const LaneBackend backend =
      lanes_detail::make_lane_backend<1>("scalar64", &always_supported);
  return backend;
}

const std::vector<const LaneBackend*>& all_lane_backends() {
  static const std::vector<const LaneBackend*> backends = [] {
    std::vector<const LaneBackend*> v{&scalar_lane_backend()};
#ifdef BIBS_LANES_AVX2
    v.push_back(detail::avx2_backend());
#endif
#ifdef BIBS_LANES_AVX512
    v.push_back(detail::avx512_backend());
#endif
    return v;
  }();
  return backends;
}

const LaneBackend* find_lane_backend(const std::string& name) {
  for (const LaneBackend* b : all_lane_backends())
    if (name == b->name) return b;
  return nullptr;
}

const LaneBackend* lane_backend_for_lanes(int lanes) {
  for (const LaneBackend* b : all_lane_backends())
    if (b->lanes == lanes && b->supported()) return b;
  return nullptr;
}

const LaneBackend& active_lane_backend() {
  if (const LaneBackend* b = g_active.load(std::memory_order_acquire))
    return *b;
  const std::lock_guard<std::mutex> lock(g_active_mutex);
  if (const LaneBackend* b = g_active.load(std::memory_order_acquire))
    return *b;
  const LaneBackend* resolved = resolve_active();
  obs::set_report_label("lanes", resolved->name);
  g_active.store(resolved, std::memory_order_release);
  return *resolved;
}

void set_lane_backend(const LaneBackend* backend) {
  if (backend && !backend->supported())
    throw DesignError("lane backend " + std::string(backend->name) +
                      " is not supported by this CPU");
  const std::lock_guard<std::mutex> lock(g_active_mutex);
  if (backend) obs::set_report_label("lanes", backend->name);
  g_active.store(backend, std::memory_order_release);
}

}  // namespace bibs::gate
