#pragma once
// Gate-level netlist: the substrate under the RTL model. The fault simulator
// and the BIST session emulator both run on this representation.
//
// Every gate's output is a net, and the gate is identified by its output
// NetId. Primary inputs and constants are source "gates" with no fan-in;
// D flip-flops are sequential gates whose single fan-in is the D net.

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bibs::gate {

using NetId = std::int32_t;
inline constexpr NetId kNoNet = -1;

enum class GateType : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kDff,
};

const char* to_string(GateType t);
bool is_source(GateType t);

struct Gate {
  GateType type = GateType::kBuf;
  std::vector<NetId> fanin;
  std::string name;  ///< optional label for debugging / reports
};

class Netlist {
 public:
  NetId add_input(const std::string& name = {});
  NetId add_const(bool value);
  /// Adds a combinational gate. Arity checks: kBuf/kNot take one fan-in,
  /// all others at least two.
  NetId add_gate(GateType type, std::vector<NetId> fanin,
                 const std::string& name = {});
  /// Adds a D flip-flop whose D input may be connected later via set_dff_d.
  NetId add_dff(NetId d = kNoNet, const std::string& name = {});
  void set_dff_d(NetId dff, NetId d);

  void mark_output(NetId net, const std::string& name = {});

  std::size_t net_count() const { return gates_.size(); }
  const Gate& gate(NetId id) const {
    BIBS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < gates_.size());
    return gates_[static_cast<std::size_t>(id)];
  }

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }
  const std::vector<std::string>& output_names() const { return output_names_; }
  const std::vector<NetId>& dffs() const { return dffs_; }

  /// Number of combinational gates (excludes inputs, constants and DFFs) —
  /// the "# of gates" metric of the paper's Table 1.
  std::size_t gate_count() const;
  /// Gate count per type.
  std::vector<std::size_t> gate_histogram() const;

  /// Checks that every gate's fan-ins are defined, every DFF has a D net,
  /// and the combinational part is acyclic. Throws bibs::DesignError.
  void validate() const;

  /// Returns a copy with dead logic removed: gates that reach no primary
  /// output (through any mix of combinational gates and DFFs) are dropped.
  /// Used after synthesizing truncated multipliers so that undetectable
  /// faults in discarded high-order logic do not pollute coverage numbers.
  Netlist pruned() const;

  /// Topological order of combinational gates (sources and DFF outputs are
  /// treated as level-0 sources and are not included).
  std::vector<NetId> comb_topo_order() const;

 private:
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<std::string> output_names_;
  std::vector<NetId> dffs_;
};

}  // namespace bibs::gate
