#include "gate/netlist.hpp"

#include <algorithm>
#include <deque>

namespace bibs::gate {

const char* to_string(GateType t) {
  switch (t) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kDff: return "dff";
  }
  return "?";
}

bool is_source(GateType t) {
  return t == GateType::kInput || t == GateType::kConst0 ||
         t == GateType::kConst1;
}

NetId Netlist::add_input(const std::string& name) {
  const NetId id = static_cast<NetId>(gates_.size());
  gates_.push_back(Gate{GateType::kInput, {}, name});
  inputs_.push_back(id);
  return id;
}

NetId Netlist::add_const(bool value) {
  const NetId id = static_cast<NetId>(gates_.size());
  gates_.push_back(
      Gate{value ? GateType::kConst1 : GateType::kConst0, {}, {}});
  return id;
}

NetId Netlist::add_gate(GateType type, std::vector<NetId> fanin,
                        const std::string& name) {
  BIBS_ASSERT(!is_source(type) && type != GateType::kDff);
  const bool unary = type == GateType::kBuf || type == GateType::kNot;
  BIBS_ASSERT(unary ? fanin.size() == 1 : fanin.size() >= 2);
  for (NetId f : fanin)
    BIBS_ASSERT(f >= 0 && static_cast<std::size_t>(f) < gates_.size());
  const NetId id = static_cast<NetId>(gates_.size());
  gates_.push_back(Gate{type, std::move(fanin), name});
  return id;
}

NetId Netlist::add_dff(NetId d, const std::string& name) {
  const NetId id = static_cast<NetId>(gates_.size());
  gates_.push_back(Gate{GateType::kDff, {}, name});
  if (d != kNoNet) gates_.back().fanin.push_back(d);
  dffs_.push_back(id);
  return id;
}

void Netlist::set_dff_d(NetId dff, NetId d) {
  BIBS_ASSERT(dff >= 0 && static_cast<std::size_t>(dff) < gates_.size());
  BIBS_ASSERT(d >= 0 && static_cast<std::size_t>(d) < gates_.size());
  Gate& g = gates_[static_cast<std::size_t>(dff)];
  BIBS_ASSERT(g.type == GateType::kDff);
  g.fanin.assign(1, d);
}

void Netlist::mark_output(NetId net, const std::string& name) {
  BIBS_ASSERT(net >= 0 && static_cast<std::size_t>(net) < gates_.size());
  outputs_.push_back(net);
  output_names_.push_back(name);
}

std::size_t Netlist::gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_)
    if (!is_source(g.type) && g.type != GateType::kDff) ++n;
  return n;
}

std::vector<std::size_t> Netlist::gate_histogram() const {
  std::vector<std::size_t> h(static_cast<std::size_t>(GateType::kDff) + 1, 0);
  for (const Gate& g : gates_) ++h[static_cast<std::size_t>(g.type)];
  return h;
}

std::vector<NetId> Netlist::comb_topo_order() const {
  const std::size_t n = gates_.size();
  std::vector<int> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = gates_[i];
    if (is_source(g.type) || g.type == GateType::kDff) continue;
    pending[i] = static_cast<int>(g.fanin.size());
    // Fan-ins that are sources or DFF outputs are already available.
    for (NetId f : g.fanin) {
      const GateType ft = gates_[static_cast<std::size_t>(f)].type;
      if (is_source(ft) || ft == GateType::kDff) --pending[i];
    }
  }
  // Seed: combinational gates whose fan-ins are all sources/DFFs.
  std::deque<NetId> q;
  std::vector<std::vector<NetId>> comb_fanout(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = gates_[i];
    if (is_source(g.type) || g.type == GateType::kDff) continue;
    for (NetId f : g.fanin) {
      const GateType ft = gates_[static_cast<std::size_t>(f)].type;
      if (!is_source(ft) && ft != GateType::kDff)
        comb_fanout[static_cast<std::size_t>(f)].push_back(
            static_cast<NetId>(i));
    }
    if (pending[i] == 0) q.push_back(static_cast<NetId>(i));
  }
  std::vector<NetId> order;
  while (!q.empty()) {
    const NetId v = q.front();
    q.pop_front();
    order.push_back(v);
    for (NetId t : comb_fanout[static_cast<std::size_t>(v)])
      if (--pending[static_cast<std::size_t>(t)] == 0) q.push_back(t);
  }
  std::size_t comb_total = 0;
  for (const Gate& g : gates_)
    if (!is_source(g.type) && g.type != GateType::kDff) ++comb_total;
  if (order.size() != comb_total)
    throw DesignError("gate netlist has a combinational cycle");
  return order;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.type == GateType::kDff && g.fanin.size() != 1)
      throw DesignError("dff " + std::to_string(i) + " has unconnected D");
    for (NetId f : g.fanin)
      if (f < 0 || static_cast<std::size_t>(f) >= gates_.size())
        throw DesignError("gate " + std::to_string(i) + " has a bad fan-in");
  }
  (void)comb_topo_order();  // throws on combinational cycles
}

Netlist Netlist::pruned() const {
  // Mark everything reaching a primary output, traversing backwards through
  // both combinational gates and DFFs.
  const std::size_t n = gates_.size();
  std::vector<char> keep(n, 0);
  std::deque<NetId> q;
  for (NetId o : outputs_)
    if (!keep[static_cast<std::size_t>(o)]) {
      keep[static_cast<std::size_t>(o)] = 1;
      q.push_back(o);
    }
  while (!q.empty()) {
    const NetId v = q.front();
    q.pop_front();
    for (NetId f : gates_[static_cast<std::size_t>(v)].fanin)
      if (!keep[static_cast<std::size_t>(f)]) {
        keep[static_cast<std::size_t>(f)] = 1;
        q.push_back(f);
      }
  }
  // Inputs are always kept so the PI interface is stable.
  for (NetId i : inputs_) keep[static_cast<std::size_t>(i)] = 1;

  // Combinational fan-ins always reference earlier gates, but a DFF's D net
  // may be a forward reference (set_dff_d), so DFF inputs are wired in a
  // second pass.
  Netlist out;
  std::vector<NetId> remap(n, kNoNet);
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    const Gate& g = gates_[i];
    NetId id;
    switch (g.type) {
      case GateType::kInput: id = out.add_input(g.name); break;
      case GateType::kConst0: id = out.add_const(false); break;
      case GateType::kConst1: id = out.add_const(true); break;
      case GateType::kDff: id = out.add_dff(kNoNet, g.name); break;
      default: {
        std::vector<NetId> fanin;
        fanin.reserve(g.fanin.size());
        for (NetId f : g.fanin) {
          BIBS_ASSERT(remap[static_cast<std::size_t>(f)] != kNoNet);
          fanin.push_back(remap[static_cast<std::size_t>(f)]);
        }
        id = out.add_gate(g.type, std::move(fanin), g.name);
        break;
      }
    }
    remap[i] = id;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i] || gates_[i].type != GateType::kDff) continue;
    if (!gates_[i].fanin.empty()) {
      const NetId d = remap[static_cast<std::size_t>(gates_[i].fanin[0])];
      BIBS_ASSERT(d != kNoNet);
      out.set_dff_d(remap[i], d);
    }
  }
  for (std::size_t k = 0; k < outputs_.size(); ++k)
    out.mark_output(remap[static_cast<std::size_t>(outputs_[k])],
                    output_names_[k]);
  return out;
}

}  // namespace bibs::gate
