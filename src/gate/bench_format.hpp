#pragma once
// ISCAS-89 ".bench" format I/O for gate netlists — the lingua franca of the
// test-generation literature this paper belongs to. Lets users import
// standard benchmarks into the fault simulator / ATPG, and export the
// kernels and synthesized TPGs this library produces.
//
// Supported grammar (case-insensitive keywords, '#' comments):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(op1, op2, ...)     GATE in {AND OR NAND NOR XOR XNOR NOT
//                                           BUF BUFF DFF}
// Signals may be used before their defining line (two-pass resolution).

#include <string>

#include "gate/netlist.hpp"

namespace bibs::gate {

/// Parses .bench text. Throws bibs::ParseError with a line number on
/// malformed input.
Netlist parse_bench(const std::string& text);

/// Serializes to .bench. Unnamed nets get synthetic names (n<i>);
/// parse_bench(to_bench(nl)) is a structural round-trip.
std::string to_bench(const Netlist& nl);

}  // namespace bibs::gate
