#pragma once
// Compiled gate-evaluation kernel: a one-time compilation of a Netlist into a
// flat, levelized struct-of-arrays instruction stream.
//
// The interpreted simulators walk the topo order indirecting through each
// gate's std::vector<NetId> fan-ins — one pointer chase and one heap object
// per gate per sweep. EvalProgram flattens that into three contiguous
// arrays (opcodes, fan-in offsets, one packed fan-in index buffer) built in
// topological order, with fused opcodes for the dominant gate shapes
// (NOT/BUF, 2-input AND/OR/XOR and their inversions) so the generic
// reduce-then-invert loop survives only as the wide-gate fallback.
//
// The program also precomputes the structural facts its consumers used to
// recompute per instance or per call: per-net levels, a fanout CSR mapping
// every net to its consumer *instructions*, the list of kConst1 nets (the
// fault simulator used to rescan every net per block to find them), and a
// net -> instruction index map for fault injection.
//
// Bit-identity contract: run()/eval_one() compute exactly the boolean
// functions of gate::Simulator::eval_gate, so every consumer produces
// bit-identical words to the interpreted path. reference_eval() below *is*
// that interpreted path, retained as the golden baseline for tests and for
// the interpreted side of bench_kernel.

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"

namespace bibs::gate {

/// Fused opcode of one instruction. The 2-input forms and BUF/NOT are
/// straight-line (no inner loop); the *N forms reduce over the fan-in span.
enum class Op : std::uint8_t {
  kBuf,
  kNot,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kAndN,
  kNandN,
  kOrN,
  kNorN,
  kXorN,
  kXnorN,
};

/// Borrowed raw-pointer view of an EvalProgram's arrays (valid while the
/// program lives). The event-driven fault propagation writes through
/// char-typed scratch (the queued flags), which legally aliases everything —
/// so any pointer fetched through the program object must be re-loaded on
/// every event. Copying the array pointers into a by-value View once per
/// sweep keeps them in registers for the whole level walk.
struct ProgramView {
  const Op* op;
  const NetId* out;
  const std::uint32_t* off;  // size+1 offsets into fanin
  const NetId* fanin;
  const int* ilevel;            // level of instruction i's output net
  const std::uint32_t* fo_off;  // per net + 1, offsets into fo
  const std::uint32_t* fo;      // consumer instruction indices

  std::uint64_t eval_one(std::size_t i, const std::uint64_t* v) const;
  std::uint64_t eval_one_forced(std::size_t i, const std::uint64_t* v,
                                int pin, std::uint64_t forced) const;
};

class EvalProgram {
 public:
  static constexpr std::uint32_t kNoInstr = 0xffffffffu;

  /// Compiles the combinational part of `nl`. The netlist must outlive the
  /// program (it is referenced, not copied).
  explicit EvalProgram(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Number of instructions == number of combinational gates.
  std::size_t size() const { return op_.size(); }
  Op op(std::size_t i) const { return op_[i]; }
  /// Output net of instruction i (instructions are in topo order).
  NetId out(std::size_t i) const { return out_[i]; }
  std::uint32_t fanin_count(std::size_t i) const {
    return off_[i + 1] - off_[i];
  }
  const NetId* fanin(std::size_t i) const { return fanin_.data() + off_[i]; }

  /// Evaluates every instruction into `values` (indexed by NetId). Source
  /// nets (inputs, constants, DFF outputs) must already be set.
  void run(std::uint64_t* values) const { run_range(0, op_.size(), values); }
  /// Evaluates instructions [begin, end) only — the straight-line segments
  /// between faulty gates in sim::LaneEngine.
  void run_range(std::size_t begin, std::size_t end,
                 std::uint64_t* values) const;

  /// Evaluates one instruction without writing its output net. Defined
  /// inline below: the event-driven fault propagation calls this once per
  /// event, so it must inline into the caller's loop.
  std::uint64_t eval_one(std::size_t i, const std::uint64_t* values) const;
  /// Same, with fan-in pin `pin` forced to `forced` (stuck-at injection).
  std::uint64_t eval_one_forced(std::size_t i, const std::uint64_t* values,
                                int pin, std::uint64_t forced) const;

  /// Topological level per net: sources are 0, a gate is
  /// max(fanin levels) + 1. Identical to what FaultSimulator levelized.
  int level(NetId net) const { return level_[static_cast<std::size_t>(net)]; }
  /// Level of instruction i's output net, one load (no out() indirection).
  int instr_level(std::size_t i) const { return ilevel_[i]; }
  int max_level() const { return max_level_; }

  /// Instruction index computing `net`, or kNoInstr for source nets.
  std::uint32_t instr_of(NetId net) const {
    return instr_of_[static_cast<std::size_t>(net)];
  }

  /// Fanout CSR: consumer instruction indices of `net` (combinational
  /// consumers only — DFF D pins are not instructions).
  const std::uint32_t* fanout_begin(NetId net) const {
    return fo_.data() + fo_off_[static_cast<std::size_t>(net)];
  }
  const std::uint32_t* fanout_end(NetId net) const {
    return fo_.data() + fo_off_[static_cast<std::size_t>(net) + 1];
  }

  /// All kConst1 nets — set them to ~0 once instead of rescanning the
  /// whole netlist per pattern block.
  const std::vector<NetId>& const1_nets() const { return const1_; }

  /// Raw-pointer view for hot loops; see ProgramView.
  ProgramView view() const {
    return ProgramView{op_.data(),     out_.data(),    off_.data(),
                       fanin_.data(),  ilevel_.data(), fo_off_.data(),
                       fo_.data()};
  }

 private:
  const Netlist* nl_;
  std::vector<Op> op_;
  std::vector<NetId> out_;
  std::vector<std::uint32_t> off_;  // size()+1 offsets into fanin_
  std::vector<NetId> fanin_;        // packed fan-in index buffer
  std::vector<std::uint32_t> instr_of_;  // per net
  std::vector<int> level_;               // per net
  std::vector<int> ilevel_;              // per instruction
  int max_level_ = 0;
  std::vector<std::uint32_t> fo_off_;  // per net + 1, offsets into fo_
  std::vector<std::uint32_t> fo_;      // consumer instruction indices
  std::vector<NetId> const1_;
};

inline std::uint64_t ProgramView::eval_one(std::size_t i,
                                           const std::uint64_t* v) const {
  const NetId* fi = fanin + off[i];
  switch (op[i]) {
    case Op::kBuf: return v[fi[0]];
    case Op::kNot: return ~v[fi[0]];
    case Op::kAnd2: return v[fi[0]] & v[fi[1]];
    case Op::kNand2: return ~(v[fi[0]] & v[fi[1]]);
    case Op::kOr2: return v[fi[0]] | v[fi[1]];
    case Op::kNor2: return ~(v[fi[0]] | v[fi[1]]);
    case Op::kXor2: return v[fi[0]] ^ v[fi[1]];
    case Op::kXnor2: return ~(v[fi[0]] ^ v[fi[1]]);
    default: break;
  }
  const std::uint32_t n = off[i + 1] - off[i];
  std::uint64_t r = v[fi[0]];
  switch (op[i]) {
    case Op::kAndN:
    case Op::kNandN:
      for (std::uint32_t k = 1; k < n; ++k) r &= v[fi[k]];
      return op[i] == Op::kNandN ? ~r : r;
    case Op::kOrN:
    case Op::kNorN:
      for (std::uint32_t k = 1; k < n; ++k) r |= v[fi[k]];
      return op[i] == Op::kNorN ? ~r : r;
    default:
      for (std::uint32_t k = 1; k < n; ++k) r ^= v[fi[k]];
      return op[i] == Op::kXnorN ? ~r : r;
  }
}

inline std::uint64_t ProgramView::eval_one_forced(std::size_t i,
                                                  const std::uint64_t* v,
                                                  int pin,
                                                  std::uint64_t forced) const {
  const NetId* fi = fanin + off[i];
  const std::uint32_t n = off[i + 1] - off[i];
  const std::uint32_t p = static_cast<std::uint32_t>(pin);
  const auto in = [&](std::uint32_t k) {
    return k == p ? forced : v[fi[k]];
  };
  std::uint64_t r = in(0);
  switch (op[i]) {
    case Op::kBuf: return r;
    case Op::kNot: return ~r;
    case Op::kAnd2:
    case Op::kNand2:
    case Op::kAndN:
    case Op::kNandN:
      for (std::uint32_t k = 1; k < n; ++k) r &= in(k);
      return op[i] == Op::kNand2 || op[i] == Op::kNandN ? ~r : r;
    case Op::kOr2:
    case Op::kNor2:
    case Op::kOrN:
    case Op::kNorN:
      for (std::uint32_t k = 1; k < n; ++k) r |= in(k);
      return op[i] == Op::kNor2 || op[i] == Op::kNorN ? ~r : r;
    default:
      for (std::uint32_t k = 1; k < n; ++k) r ^= in(k);
      return op[i] == Op::kXnor2 || op[i] == Op::kXnorN ? ~r : r;
  }
}

inline std::uint64_t EvalProgram::eval_one(std::size_t i,
                                           const std::uint64_t* v) const {
  return view().eval_one(i, v);
}

inline std::uint64_t EvalProgram::eval_one_forced(std::size_t i,
                                                  const std::uint64_t* v,
                                                  int pin,
                                                  std::uint64_t forced) const {
  return view().eval_one_forced(i, v, pin, forced);
}

/// The retained interpreted reference: one levelized sweep via the generic
/// gate::Simulator::eval_gate switch, reading fan-ins through the Netlist's
/// per-gate vectors (the pre-EvalProgram hot loop, verbatim). `topo` must be
/// nl.comb_topo_order(). Tests assert EvalProgram::run matches this
/// bit-for-bit; bench_kernel measures the speedup against it.
void reference_eval(const Netlist& nl, const std::vector<NetId>& topo,
                    std::uint64_t* values);

}  // namespace bibs::gate
