#pragma once
// Width-templated kernel bodies behind the LaneBackend tables.
//
// Included ONLY by the per-backend TUs (lanes.cpp at W=1, lanes_avx2.cpp at
// W=4, lanes_avx512.cpp at W=8), each built with its ISA flags. Every width
// must be instantiated in exactly one TU: these are ordinary function
// templates, and a second instantiation in a TU without the ISA flags would
// be ODR-merged with the vectorized one arbitrarily.
//
// Each kernel is the scalar path of program.cpp / fault/simulator.cpp with
// std::uint64_t replaced by LaneWord<W> and net indices scaled by W. At
// W=1 the generated code is bit-identical to the legacy loops, which is the
// identity the scalar64 backend (and every test gate) stands on.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "gate/lanes.hpp"

namespace bibs::gate::lanes_detail {

template <int W>
inline LaneWord<W> lw(const std::uint64_t* v, NetId n) {
  return LaneWord<W>::load(v + static_cast<std::size_t>(n) * W);
}

// always_inline: gcc otherwise leaves the opcode switch out of line, and the
// per-instruction call (plus a vzeroupper per iteration in the AVX TUs)
// costs more than the gate evaluation itself.
template <int W>
[[gnu::always_inline]] inline LaneWord<W> eval_one_w(const ProgramView& pv,
                                                     std::size_t i,
                                                     const std::uint64_t* v) {
  const NetId* fi = pv.fanin + pv.off[i];
  switch (pv.op[i]) {
    case Op::kBuf: return lw<W>(v, fi[0]);
    case Op::kNot: return ~lw<W>(v, fi[0]);
    case Op::kAnd2: return lw<W>(v, fi[0]) & lw<W>(v, fi[1]);
    case Op::kNand2: return ~(lw<W>(v, fi[0]) & lw<W>(v, fi[1]));
    case Op::kOr2: return lw<W>(v, fi[0]) | lw<W>(v, fi[1]);
    case Op::kNor2: return ~(lw<W>(v, fi[0]) | lw<W>(v, fi[1]));
    case Op::kXor2: return lw<W>(v, fi[0]) ^ lw<W>(v, fi[1]);
    case Op::kXnor2: return ~(lw<W>(v, fi[0]) ^ lw<W>(v, fi[1]));
    default: break;
  }
  const std::uint32_t n = pv.off[i + 1] - pv.off[i];
  LaneWord<W> r = lw<W>(v, fi[0]);
  switch (pv.op[i]) {
    case Op::kAndN:
    case Op::kNandN:
      for (std::uint32_t k = 1; k < n; ++k) r = r & lw<W>(v, fi[k]);
      return pv.op[i] == Op::kNandN ? ~r : r;
    case Op::kOrN:
    case Op::kNorN:
      for (std::uint32_t k = 1; k < n; ++k) r = r | lw<W>(v, fi[k]);
      return pv.op[i] == Op::kNorN ? ~r : r;
    default:
      for (std::uint32_t k = 1; k < n; ++k) r = r ^ lw<W>(v, fi[k]);
      return pv.op[i] == Op::kXnorN ? ~r : r;
  }
}

template <int W>
[[gnu::always_inline]] inline LaneWord<W> eval_one_forced_w(
    const ProgramView& pv, std::size_t i, const std::uint64_t* v, int pin,
    LaneWord<W> forced) {
  const NetId* fi = pv.fanin + pv.off[i];
  const std::uint32_t n = pv.off[i + 1] - pv.off[i];
  const std::uint32_t p = static_cast<std::uint32_t>(pin);
  const auto in = [&](std::uint32_t k) {
    return k == p ? forced : lw<W>(v, fi[k]);
  };
  LaneWord<W> r = in(0);
  switch (pv.op[i]) {
    case Op::kBuf: return r;
    case Op::kNot: return ~r;
    case Op::kAnd2:
    case Op::kNand2:
    case Op::kAndN:
    case Op::kNandN:
      for (std::uint32_t k = 1; k < n; ++k) r = r & in(k);
      return pv.op[i] == Op::kNand2 || pv.op[i] == Op::kNandN ? ~r : r;
    case Op::kOr2:
    case Op::kNor2:
    case Op::kOrN:
    case Op::kNorN:
      for (std::uint32_t k = 1; k < n; ++k) r = r | in(k);
      return pv.op[i] == Op::kNor2 || pv.op[i] == Op::kNorN ? ~r : r;
    default:
      for (std::uint32_t k = 1; k < n; ++k) r = r ^ in(k);
      return pv.op[i] == Op::kXnor2 || pv.op[i] == Op::kXnorN ? ~r : r;
  }
}

template <int W>
void run_range_w(const ProgramView& pv, std::size_t begin, std::size_t end,
                 std::uint64_t* v) {
  for (std::size_t i = begin; i < end; ++i) {
    const LaneWord<W> r = eval_one_w<W>(pv, i, v);
    r.store(v + static_cast<std::size_t>(pv.out[i]) * W);
  }
}

/// The dirty-bitmask event loop of the compiled fault propagation: a
/// LaneWord per net, one dirty bit per instruction (an event fires when ANY
/// of the W words changed). Instruction indices are a topological order
/// (consumers follow producers in the stream), so scheduling is one
/// idempotent OR and popping is countr_zero on an ascending bit scan.
/// Three facts keep the per-event work minimal:
///  - every net is written at most once per sweep (ascending topological
///    order), so a changed net can be recorded without comparing against
///    good first, and detection falls out of the changed list at the end;
///  - the injection instruction can never be re-marked (its fan-ins are
///    strictly upstream of the cone), so no per-event skip is needed;
///  - the current bitmask word is kept in a register and only spilled marks
///    go through memory, so there is no load/store chain on dirty[wi].
template <int W>
void propagate_w(const LanePropagateCtx& c, const LaneFaultSite& f,
                 NetId* chg, std::uint64_t* detect) {
  const ProgramView& pv = c.pv;
  std::uint64_t* cur = c.cur;
  const std::uint64_t* good = c.good;
  const LaneWord<W> mask = LaneWord<W>::load(c.lane_mask);
  LaneWord<W> det = LaneWord<W>::zero();

  const LaneWord<W> stuck_word =
      f.stuck ? LaneWord<W>::ones() : LaneWord<W>::zero();
  const LaneWord<W> injected =
      f.pin < 0 ? stuck_word
                : eval_one_forced_w<W>(pv, f.instr, cur, f.pin, stuck_word);
  if (injected == lw<W>(cur, f.net)) {
    det.store(detect);
    return;
  }
  injected.store(cur + static_cast<std::size_t>(f.net) * W);

  std::size_t nchg = 0;
  chg[nchg++] = f.net;

  std::uint64_t* dirty = c.dirty;
  const std::size_t nwords = (c.n_instr + 63) / 64;
  std::size_t wlo = nwords;
  for (const std::uint32_t* p = pv.fo + pv.fo_off[f.net],
                          * pe = pv.fo + pv.fo_off[f.net + 1];
       p != pe; ++p) {
    const std::size_t w = *p >> 6;
    dirty[w] |= 1ull << (*p & 63);
    if (w < wlo) wlo = w;
  }

  for (std::size_t wi = wlo; wi < nwords; ++wi) {
    std::uint64_t w = dirty[wi];
    dirty[wi] = 0;
    while (w != 0) {
      const std::uint32_t ii = static_cast<std::uint32_t>(
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w)));
      w &= w - 1;
      const LaneWord<W> v = eval_one_w<W>(pv, ii, cur);
      const NetId id = pv.out[ii];
      if (v == lw<W>(cur, id)) continue;
      v.store(cur + static_cast<std::size_t>(id) * W);
      chg[nchg++] = id;
      for (const std::uint32_t* p = pv.fo + pv.fo_off[id],
                              * pe = pv.fo + pv.fo_off[id + 1];
           p != pe; ++p) {
        const std::uint32_t cc = *p;
        if ((cc >> 6) == wi)
          w |= 1ull << (cc & 63);
        else
          dirty[cc >> 6] |= 1ull << (cc & 63);
      }
    }
  }

  for (std::size_t k = 0; k < nchg; ++k) {
    const std::size_t n = static_cast<std::size_t>(chg[k]) * W;
    if (c.observed[static_cast<std::size_t>(chg[k])])
      det = det | ((LaneWord<W>::load(cur + n) ^ LaneWord<W>::load(good + n)) &
                   mask);
    LaneWord<W>::load(good + n).store(cur + n);
  }
  det.store(detect);
}

template <int W>
void eval_one_entry(const ProgramView& pv, std::size_t i,
                    const std::uint64_t* values, std::uint64_t* out) {
  eval_one_w<W>(pv, i, values).store(out);
}

template <int W>
void eval_one_forced_entry(const ProgramView& pv, std::size_t i,
                           const std::uint64_t* values, int pin,
                           const std::uint64_t* forced, std::uint64_t* out) {
  eval_one_forced_w<W>(pv, i, values, pin, LaneWord<W>::load(forced))
      .store(out);
}

template <int W>
LaneBackend make_lane_backend(const char* name, bool (*supported)()) {
  return LaneBackend{name,
                     W,
                     W * kLanesPerWord,
                     supported,
                     &run_range_w<W>,
                     &eval_one_entry<W>,
                     &eval_one_forced_entry<W>,
                     &propagate_w<W>};
}

}  // namespace bibs::gate::lanes_detail
