#pragma once
// Structural synthesis: bit-level generators for the RTL operations the data
// path circuits use (ripple-carry adders, truncated array multipliers,
// bitwise blocks) and the elaborator that lowers an rtl::Netlist to gates.

#include <map>
#include <vector>

#include "gate/netlist.hpp"
#include "rtl/netlist.hpp"

namespace bibs::gate {

/// A bus is an LSB-first list of nets.
using Bus = std::vector<NetId>;

/// sum = a + b (+ carry_in). Output has a.size() bits plus a carry bit when
/// keep_carry is true. a and b must have equal width.
Bus ripple_adder(Netlist& nl, const Bus& a, const Bus& b,
                 bool keep_carry = false, NetId carry_in = kNoNet);

/// diff = a - b (two's complement), modulo 2^width.
Bus ripple_subtractor(Netlist& nl, const Bus& a, const Bus& b);

/// product = low `out_width` bits of a * b, built as a shift-and-add array
/// multiplier with all logic above out_width truncated away at synthesis
/// time (the paper's data paths keep only the 8 least significant product
/// lines). out_width <= a.size() + b.size().
Bus array_multiplier(Netlist& nl, const Bus& a, const Bus& b,
                     std::size_t out_width);

/// Bitwise two-input blocks (and/or/xor/...).
Bus bitwise(Netlist& nl, GateType type, const Bus& a, const Bus& b);
/// Bitwise inverter.
Bus bitwise_not(Netlist& nl, const Bus& a);

/// Result of lowering an RTL netlist to gates.
struct Elaboration {
  Netlist netlist;
  /// Q (output) nets of each register edge, LSB first.
  std::map<rtl::ConnId, Bus> reg_q;
  /// D (input) nets of each register edge.
  std::map<rtl::ConnId, Bus> reg_d;
  /// Output bus of every block.
  std::map<rtl::BlockId, Bus> block_out;
};

/// Lowers an RTL netlist to a gate netlist. Registers become DFF banks; comb
/// blocks dispatch on Block::op: "add", "sub", "mul", "and", "or", "xor",
/// "nand", "nor", "xnor", "not", "buf". Throws bibs::DesignError on an
/// unknown op or an arity/width mismatch.
Elaboration elaborate(const rtl::Netlist& n);

/// Extracts the combinational equivalent of a kernel from an elaboration:
/// the cone of logic driving the D pins of `output_regs`, with the Q nets of
/// `input_regs` becoming primary inputs and every *internal* register
/// replaced by a wire. Valid for balanced kernels by the BALLAST result [8]:
/// single-pattern stuck-at detection on this netlist equals detection on the
/// sequential kernel with flushing.
///
/// PI order: registers in the given order, cells LSB first. PO order:
/// likewise for output register D pins.
Netlist combinational_kernel(const Elaboration& e, const rtl::Netlist& n,
                             const std::vector<rtl::ConnId>& input_regs,
                             const std::vector<rtl::ConnId>& output_regs);

}  // namespace bibs::gate
