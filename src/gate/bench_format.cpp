#include "gate/bench_format.hpp"

#include <algorithm>
#include <functional>
#include <cctype>
#include <map>
#include <sstream>

namespace bibs::gate {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& why) {
  throw ParseError("bench line " + std::to_string(line) + ": " + why);
}

struct PendingGate {
  int line;
  std::string name;
  std::string type;
  std::vector<std::string> operands;
};

}  // namespace

Netlist parse_bench(const std::string& text) {
  // Pass 1: collect declarations.
  std::vector<std::string> inputs, outputs;
  std::vector<PendingGate> gates;
  {
    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
      ++lineno;
      if (const auto hash = raw.find('#'); hash != std::string::npos)
        raw.erase(hash);
      const std::string line = trim(raw);
      if (line.empty()) continue;

      auto parse_call = [&](const std::string& s)
          -> std::pair<std::string, std::vector<std::string>> {
        const auto open = s.find('(');
        const auto close = s.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
          fail(lineno, "expected NAME(...)");
        const std::string head = upper(trim(s.substr(0, open)));
        std::vector<std::string> args;
        std::string cur;
        for (std::size_t i = open + 1; i < close; ++i) {
          if (s[i] == ',') {
            args.push_back(trim(cur));
            cur.clear();
          } else {
            cur.push_back(s[i]);
          }
        }
        if (!trim(cur).empty()) args.push_back(trim(cur));
        return {head, args};
      };

      const auto eq = line.find('=');
      if (eq == std::string::npos) {
        auto [head, args] = parse_call(line);
        if (args.size() != 1) fail(lineno, head + " expects one signal");
        if (head == "INPUT") inputs.push_back(args[0]);
        else if (head == "OUTPUT") outputs.push_back(args[0]);
        else fail(lineno, "unknown declaration '" + head + "'");
      } else {
        PendingGate g;
        g.line = lineno;
        g.name = trim(line.substr(0, eq));
        if (g.name.empty()) fail(lineno, "missing signal name");
        auto [head, args] = parse_call(line.substr(eq + 1));
        g.type = head;
        g.operands = std::move(args);
        gates.push_back(std::move(g));
      }
    }
  }

  // Pass 2: create nets, then wire (signals may be referenced before
  // definition; gate fan-ins must already exist, so we emit in dependency
  // order via memoized recursion; DFF D pins are patched afterwards).
  Netlist nl;
  std::map<std::string, NetId> nets;
  std::map<std::string, const PendingGate*> by_name;
  for (const PendingGate& g : gates) {
    if (by_name.count(g.name))
      fail(g.line, "signal '" + g.name + "' defined twice");
    by_name[g.name] = &g;
  }
  for (const std::string& i : inputs) {
    if (by_name.count(i))
      throw ParseError("bench: input '" + i + "' also has a gate definition");
    nets[i] = nl.add_input(i);
  }
  // DFF outputs exist before their D cones.
  std::vector<std::pair<NetId, const PendingGate*>> dff_fixups;
  for (const PendingGate& g : gates)
    if (g.type == "DFF") {
      if (g.operands.size() != 1) fail(g.line, "DFF expects one operand");
      nets[g.name] = nl.add_dff(kNoNet, g.name);
      dff_fixups.emplace_back(nets[g.name], &g);
    }

  std::vector<std::string> stack;
  std::function<NetId(const std::string&, int)> resolve =
      [&](const std::string& name, int from_line) -> NetId {
    if (auto it = nets.find(name); it != nets.end()) return it->second;
    auto def = by_name.find(name);
    if (def == by_name.end())
      fail(from_line, "undefined signal '" + name + "'");
    const PendingGate& g = *def->second;
    if (std::find(stack.begin(), stack.end(), name) != stack.end())
      fail(g.line, "combinational cycle through '" + name + "'");
    stack.push_back(name);
    std::vector<NetId> fanin;
    for (const std::string& op : g.operands)
      fanin.push_back(resolve(op, g.line));
    stack.pop_back();
    GateType t;
    if (g.type == "AND") t = GateType::kAnd;
    else if (g.type == "OR") t = GateType::kOr;
    else if (g.type == "NAND") t = GateType::kNand;
    else if (g.type == "NOR") t = GateType::kNor;
    else if (g.type == "XOR") t = GateType::kXor;
    else if (g.type == "XNOR") t = GateType::kXnor;
    else if (g.type == "NOT") t = GateType::kNot;
    else if (g.type == "BUF" || g.type == "BUFF") t = GateType::kBuf;
    else fail(g.line, "unknown gate type '" + g.type + "'");
    const NetId id = nl.add_gate(t, std::move(fanin), g.name);
    nets[name] = id;
    return id;
  };

  for (const PendingGate& g : gates)
    if (g.type != "DFF") (void)resolve(g.name, g.line);
  for (auto& [dff, g] : dff_fixups)
    nl.set_dff_d(dff, resolve(g->operands[0], g->line));
  for (const std::string& o : outputs) {
    auto it = nets.find(o);
    if (it == nets.end())
      throw ParseError("bench: output '" + o + "' is undefined");
    nl.mark_output(it->second, o);
  }
  nl.validate();
  return nl;
}

std::string to_bench(const Netlist& nl) {
  std::ostringstream os;
  std::vector<std::string> name(nl.net_count());
  std::map<std::string, int> used;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    std::string base = g.name.empty() ? "n" + std::to_string(id) : g.name;
    // .bench identifiers cannot contain parentheses/commas/spaces.
    for (char& c : base)
      if (c == '(' || c == ')' || c == ',' || std::isspace(
              static_cast<unsigned char>(c)))
        c = '_';
    if (int& count = used[base]; count++ > 0)
      base += "_" + std::to_string(id);
    name[static_cast<std::size_t>(id)] = base;
  }
  for (NetId i : nl.inputs())
    os << "INPUT(" << name[static_cast<std::size_t>(i)] << ")\n";
  for (NetId o : nl.outputs())
    os << "OUTPUT(" << name[static_cast<std::size_t>(o)] << ")\n";
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    const char* t = nullptr;
    switch (g.type) {
      case GateType::kInput: continue;
      case GateType::kConst0:
      case GateType::kConst1:
        throw DesignError(
            "to_bench: constant nets are not representable in .bench");
      case GateType::kAnd: t = "AND"; break;
      case GateType::kOr: t = "OR"; break;
      case GateType::kNand: t = "NAND"; break;
      case GateType::kNor: t = "NOR"; break;
      case GateType::kXor: t = "XOR"; break;
      case GateType::kXnor: t = "XNOR"; break;
      case GateType::kNot: t = "NOT"; break;
      case GateType::kBuf: t = "BUFF"; break;
      case GateType::kDff: t = "DFF"; break;
    }
    os << name[static_cast<std::size_t>(id)] << " = " << t << "(";
    for (std::size_t i = 0; i < g.fanin.size(); ++i)
      os << (i ? ", " : "")
         << name[static_cast<std::size_t>(g.fanin[i])];
    os << ")\n";
  }
  return os.str();
}

}  // namespace bibs::gate
