#include "gate/bench_format.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <unordered_set>

namespace bibs::gate {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

// All bench diagnostics carry a 1-based line:column position.
[[noreturn]] void fail(int line, int col, const std::string& why) {
  throw ParseError("bench " + std::to_string(line) + ":" + std::to_string(col) +
                   ": " + why);
}

// Signal resolution recurses along fan-in chains; bound the depth so a
// pathological (or hostile) netlist cannot overflow the stack.
constexpr int kMaxResolveDepth = 4096;

struct Decl {
  std::string name;
  int line = 0;
  int col = 1;
};

struct PendingGate {
  int line;
  int col = 1;
  std::string name;
  std::string type;
  std::vector<std::string> operands;
};

}  // namespace

Netlist parse_bench(const std::string& text) {
  // Pass 1: collect declarations.
  std::vector<Decl> inputs, outputs;
  std::vector<PendingGate> gates;
  {
    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
      ++lineno;
      if (const auto hash = raw.find('#'); hash != std::string::npos)
        raw.erase(hash);
      std::size_t lead = 0;
      while (lead < raw.size() &&
             std::isspace(static_cast<unsigned char>(raw[lead])))
        ++lead;
      const std::string line = trim(raw);
      if (line.empty()) continue;
      // `line` is `raw` with `lead` leading whitespace chars stripped, so an
      // index into it maps back to a 1-based source column like this:
      auto col_of = [&](std::size_t i) {
        return static_cast<int>(lead + i) + 1;
      };

      auto parse_call = [&](const std::string& s, std::size_t off)
          -> std::pair<std::string, std::vector<std::string>> {
        const auto open = s.find('(');
        const auto close = s.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
          fail(lineno, col_of(off), "expected NAME(...)");
        const std::string head = upper(trim(s.substr(0, open)));
        std::vector<std::string> args;
        std::string cur;
        for (std::size_t i = open + 1; i < close; ++i) {
          if (s[i] == ',') {
            args.push_back(trim(cur));
            cur.clear();
          } else {
            cur.push_back(s[i]);
          }
        }
        if (!trim(cur).empty()) args.push_back(trim(cur));
        return {head, args};
      };

      const auto eq = line.find('=');
      if (eq == std::string::npos) {
        auto [head, args] = parse_call(line, 0);
        if (args.size() != 1)
          fail(lineno, col_of(0), head + " expects one signal");
        if (head == "INPUT")
          inputs.push_back({args[0], lineno, col_of(0)});
        else if (head == "OUTPUT")
          outputs.push_back({args[0], lineno, col_of(0)});
        else
          fail(lineno, col_of(0), "unknown declaration '" + head + "'");
      } else {
        PendingGate g;
        g.line = lineno;
        g.col = col_of(0);
        g.name = trim(line.substr(0, eq));
        if (g.name.empty()) fail(lineno, col_of(0), "missing signal name");
        auto [head, args] = parse_call(line.substr(eq + 1), eq + 1);
        g.type = head;
        g.operands = std::move(args);
        gates.push_back(std::move(g));
      }
    }
  }

  // Pass 2: create nets, then wire (signals may be referenced before
  // definition; gate fan-ins must already exist, so we emit in dependency
  // order via memoized recursion; DFF D pins are patched afterwards).
  Netlist nl;
  std::map<std::string, NetId> nets;
  std::map<std::string, const PendingGate*> by_name;
  for (const PendingGate& g : gates) {
    if (by_name.count(g.name))
      fail(g.line, g.col, "signal '" + g.name + "' defined twice");
    by_name[g.name] = &g;
  }
  for (const Decl& i : inputs) {
    if (by_name.count(i.name))
      fail(i.line, i.col,
           "input '" + i.name + "' also has a gate definition");
    nets[i.name] = nl.add_input(i.name);
  }
  // DFF outputs exist before their D cones.
  std::vector<std::pair<NetId, const PendingGate*>> dff_fixups;
  for (const PendingGate& g : gates)
    if (g.type == "DFF") {
      if (g.operands.size() != 1)
        fail(g.line, g.col, "DFF expects one operand");
      nets[g.name] = nl.add_dff(kNoNet, g.name);
      dff_fixups.emplace_back(nets[g.name], &g);
    }

  // Iterative depth-first resolution with an explicit worklist: forward
  // references recurse logically, never on the native stack, so the depth
  // limit is the only bound that can fire (not stack exhaustion).
  struct Frame {
    const PendingGate* g;
    std::size_t next_operand = 0;
  };
  std::unordered_set<std::string> in_progress;
  std::vector<Frame> work;
  // Pushes `name` if it still needs building; false when already resolved.
  const auto push = [&](const std::string& name, int from_line,
                        int from_col) -> bool {
    if (nets.count(name)) return false;
    if (static_cast<int>(work.size()) >= kMaxResolveDepth)
      fail(from_line, from_col,
           "gate nesting deeper than " + std::to_string(kMaxResolveDepth) +
               " while resolving '" + name + "'");
    auto def = by_name.find(name);
    if (def == by_name.end())
      fail(from_line, from_col, "undefined signal '" + name + "'");
    const PendingGate* g = def->second;
    if (!in_progress.insert(name).second)
      fail(g->line, g->col, "combinational cycle through '" + name + "'");
    work.push_back({g});
    return true;
  };
  const auto resolve = [&](const std::string& name, int from_line,
                           int from_col) -> NetId {
    if (!push(name, from_line, from_col)) return nets.at(name);
    while (!work.empty()) {
      Frame& f = work.back();
      const PendingGate& g = *f.g;
      if (f.next_operand < g.operands.size()) {
        const std::string& op = g.operands[f.next_operand++];
        push(op, g.line, g.col);
        continue;
      }
      GateType t;
      if (g.type == "AND") t = GateType::kAnd;
      else if (g.type == "OR") t = GateType::kOr;
      else if (g.type == "NAND") t = GateType::kNand;
      else if (g.type == "NOR") t = GateType::kNor;
      else if (g.type == "XOR") t = GateType::kXor;
      else if (g.type == "XNOR") t = GateType::kXnor;
      else if (g.type == "NOT") t = GateType::kNot;
      else if (g.type == "BUF" || g.type == "BUFF") t = GateType::kBuf;
      else fail(g.line, g.col, "unknown gate type '" + g.type + "'");
      std::vector<NetId> fanin;
      for (const std::string& op : g.operands) fanin.push_back(nets.at(op));
      nets[g.name] = nl.add_gate(t, std::move(fanin), g.name);
      in_progress.erase(g.name);
      work.pop_back();
    }
    return nets.at(name);
  };

  for (const PendingGate& g : gates)
    if (g.type != "DFF") (void)resolve(g.name, g.line, g.col);
  for (auto& [dff, g] : dff_fixups)
    nl.set_dff_d(dff, resolve(g->operands[0], g->line, g->col));
  for (const Decl& o : outputs) {
    auto it = nets.find(o.name);
    if (it == nets.end())
      fail(o.line, o.col, "output '" + o.name + "' is undefined");
    nl.mark_output(it->second, o.name);
  }
  nl.validate();
  return nl;
}

std::string to_bench(const Netlist& nl) {
  std::ostringstream os;
  std::vector<std::string> name(nl.net_count());
  std::map<std::string, int> used;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    std::string base = g.name.empty() ? "n" + std::to_string(id) : g.name;
    // .bench identifiers cannot contain parentheses/commas/spaces.
    for (char& c : base)
      if (c == '(' || c == ')' || c == ',' || std::isspace(
              static_cast<unsigned char>(c)))
        c = '_';
    if (int& count = used[base]; count++ > 0)
      base += "_" + std::to_string(id);
    name[static_cast<std::size_t>(id)] = base;
  }
  for (NetId i : nl.inputs())
    os << "INPUT(" << name[static_cast<std::size_t>(i)] << ")\n";
  for (NetId o : nl.outputs())
    os << "OUTPUT(" << name[static_cast<std::size_t>(o)] << ")\n";
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    const char* t = nullptr;
    switch (g.type) {
      case GateType::kInput: continue;
      case GateType::kConst0:
      case GateType::kConst1:
        throw DesignError(
            "to_bench: constant nets are not representable in .bench");
      case GateType::kAnd: t = "AND"; break;
      case GateType::kOr: t = "OR"; break;
      case GateType::kNand: t = "NAND"; break;
      case GateType::kNor: t = "NOR"; break;
      case GateType::kXor: t = "XOR"; break;
      case GateType::kXnor: t = "XNOR"; break;
      case GateType::kNot: t = "NOT"; break;
      case GateType::kBuf: t = "BUFF"; break;
      case GateType::kDff: t = "DFF"; break;
    }
    os << name[static_cast<std::size_t>(id)] << " = " << t << "(";
    for (std::size_t i = 0; i < g.fanin.size(); ++i)
      os << (i ? ", " : "")
         << name[static_cast<std::size_t>(g.fanin[i])];
    os << ")\n";
  }
  return os.str();
}

}  // namespace bibs::gate
