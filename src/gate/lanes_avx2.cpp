// The 256-bit (4x64-lane) backend. This TU is compiled with -mavx2 (see
// src/gate/CMakeLists.txt), so the LaneWord<4> loops in lanes_impl.hpp
// vectorize to 256-bit ops; no other TU may instantiate the W=4 kernels.
// Whether the *running* CPU has AVX2 is a separate, runtime question
// answered by supported().

#include "gate/lanes_impl.hpp"

namespace bibs::gate::detail {

namespace {
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") > 0; }
}  // namespace

const LaneBackend* avx2_backend() {
  static const LaneBackend backend =
      lanes_detail::make_lane_backend<4>("avx2", &cpu_has_avx2);
  return &backend;
}

}  // namespace bibs::gate::detail
