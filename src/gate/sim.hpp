#pragma once
// 64-way pattern-parallel logic simulator over gate::Netlist.
//
// Each net holds a 64-bit word: bit b is the net's value under pattern b of
// the current pattern block. This is the engine both the fault simulator and
// the BIST session emulator are built on.

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/program.hpp"

namespace bibs::gate {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }
  const EvalProgram& program() const { return prog_; }

  /// Sets the pattern word on a primary input net.
  void set_input(NetId net, std::uint64_t word);
  /// Overwrites a DFF's current state word (e.g. for BIST reset).
  void set_state(NetId dff, std::uint64_t word);

  /// Evaluates all combinational logic from the current inputs and states.
  void eval();
  /// Clocks every DFF: state <= value(D). Call after eval().
  void clock();
  /// Clears all DFF states to 0.
  void reset();

  std::uint64_t value(NetId net) const {
    return values_[static_cast<std::size_t>(net)];
  }

  /// Convenience: drive a bus (LSB-first net list) with an integer replicated
  /// across all 64 pattern lanes or with per-lane values.
  void set_bus(const std::vector<NetId>& bus, std::uint64_t value_per_lane);
  void set_bus_lane(const std::vector<NetId>& bus, int lane,
                    std::uint64_t value);
  /// Reads the bus value in one lane.
  std::uint64_t bus_value(const std::vector<NetId>& bus, int lane) const;

  /// Single gate evaluation given fan-in words. The generic interpreted
  /// switch: the retained reference the compiled EvalProgram is checked
  /// against (see gate::reference_eval), and the naive-resimulation
  /// primitive of the fault simulator's cross-checks.
  static std::uint64_t eval_gate(GateType t, const std::uint64_t* in,
                                 std::size_t n);

 private:
  const Netlist* nl_;
  EvalProgram prog_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> state_;  // per net; meaningful for DFFs only
};

}  // namespace bibs::gate
