#include "gate/synth.hpp"

#include <algorithm>
#include <functional>

#include "graph/analysis.hpp"
#include "obs/obs.hpp"

namespace bibs::gate {

namespace {

// Full adder: 5 gates (2 XOR, 2 AND, 1 OR).
struct FaOut {
  NetId sum;
  NetId carry;
};

FaOut full_adder(Netlist& nl, NetId a, NetId b, NetId c) {
  const NetId axb = nl.add_gate(GateType::kXor, {a, b});
  const NetId sum = nl.add_gate(GateType::kXor, {axb, c});
  const NetId ab = nl.add_gate(GateType::kAnd, {a, b});
  const NetId cx = nl.add_gate(GateType::kAnd, {c, axb});
  const NetId carry = nl.add_gate(GateType::kOr, {ab, cx});
  return {sum, carry};
}

FaOut half_adder(Netlist& nl, NetId a, NetId b) {
  return {nl.add_gate(GateType::kXor, {a, b}),
          nl.add_gate(GateType::kAnd, {a, b})};
}

}  // namespace

Bus ripple_adder(Netlist& nl, const Bus& a, const Bus& b, bool keep_carry,
                 NetId carry_in) {
  BIBS_ASSERT(!a.empty() && a.size() == b.size());
  Bus sum;
  sum.reserve(a.size() + (keep_carry ? 1 : 0));
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (carry == kNoNet) {
      const bool last = (i + 1 == a.size()) && !keep_carry;
      if (last) {
        sum.push_back(nl.add_gate(GateType::kXor, {a[i], b[i]}));
      } else {
        const FaOut r = half_adder(nl, a[i], b[i]);
        sum.push_back(r.sum);
        carry = r.carry;
      }
    } else {
      const bool last = (i + 1 == a.size()) && !keep_carry;
      if (last) {
        const NetId axb = nl.add_gate(GateType::kXor, {a[i], b[i]});
        sum.push_back(nl.add_gate(GateType::kXor, {axb, carry}));
      } else {
        const FaOut r = full_adder(nl, a[i], b[i], carry);
        sum.push_back(r.sum);
        carry = r.carry;
      }
    }
  }
  if (keep_carry) {
    BIBS_ASSERT(carry != kNoNet);
    sum.push_back(carry);
  }
  return sum;
}

Bus ripple_subtractor(Netlist& nl, const Bus& a, const Bus& b) {
  BIBS_ASSERT(!a.empty() && a.size() == b.size());
  const Bus nb = bitwise_not(nl, b);
  return ripple_adder(nl, a, nb, /*keep_carry=*/false, nl.add_const(true));
}

Bus array_multiplier(Netlist& nl, const Bus& a, const Bus& b,
                     std::size_t out_width) {
  BIBS_ASSERT(!a.empty() && !b.empty());
  BIBS_ASSERT(out_width >= 1 && out_width <= a.size() + b.size());
  // Shift-and-add array. Positions >= out_width are never synthesized (so a
  // truncated product contains no structurally dead logic), and known-zero
  // accumulator cells are tracked as kNoNet instead of constant nets (so no
  // gate has a constant input, which would create untestable pins).
  Bus acc(out_width, kNoNet);
  for (std::size_t r = 0; r < b.size() && r < out_width; ++r) {
    NetId carry = kNoNet;
    for (std::size_t pos = r; pos < out_width; ++pos) {
      const std::size_t i = pos - r;  // index into a
      const NetId pp = (i < a.size())
                           ? nl.add_gate(GateType::kAnd, {a[i], b[r]})
                           : kNoNet;
      if (pp == kNoNet && carry == kNoNet) break;  // row exhausted
      const bool last = (pos + 1 == out_width);    // drop the final carry
      NetId terms[3];
      std::size_t nterms = 0;
      if (acc[pos] != kNoNet) terms[nterms++] = acc[pos];
      if (pp != kNoNet) terms[nterms++] = pp;
      if (carry != kNoNet) terms[nterms++] = carry;
      carry = kNoNet;
      switch (nterms) {
        case 1:
          acc[pos] = terms[0];
          break;
        case 2:
          if (last) {
            acc[pos] = nl.add_gate(GateType::kXor, {terms[0], terms[1]});
          } else {
            const FaOut ha = half_adder(nl, terms[0], terms[1]);
            acc[pos] = ha.sum;
            carry = ha.carry;
          }
          break;
        case 3:
          if (last) {
            acc[pos] = nl.add_gate(GateType::kXor,
                                   {terms[0], terms[1], terms[2]});
          } else {
            const FaOut fa = full_adder(nl, terms[0], terms[1], terms[2]);
            acc[pos] = fa.sum;
            carry = fa.carry;
          }
          break;
        default:
          BIBS_ASSERT(false && "unreachable");
      }
    }
  }
  // Any cell never touched by a partial product is constant 0.
  for (NetId& cell : acc)
    if (cell == kNoNet) cell = nl.add_const(false);
  return acc;
}

Bus bitwise(Netlist& nl, GateType type, const Bus& a, const Bus& b) {
  BIBS_ASSERT(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(nl.add_gate(type, {a[i], b[i]}));
  return out;
}

Bus bitwise_not(Netlist& nl, const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (NetId n : a) out.push_back(nl.add_gate(GateType::kNot, {n}));
  return out;
}

namespace {

Bus comb_block(Netlist& nl, const rtl::Block& b, const std::vector<Bus>& in) {
  auto want_arity = [&](std::size_t k) {
    if (in.size() != k)
      throw DesignError("block '" + b.name + "' (" + b.op + ") expects " +
                        std::to_string(k) + " input ports, has " +
                        std::to_string(in.size()));
  };
  auto want_width = [&](const Bus& bus) {
    if (bus.size() != static_cast<std::size_t>(b.width))
      throw DesignError("block '" + b.name + "': input width " +
                        std::to_string(bus.size()) + " != block width " +
                        std::to_string(b.width));
  };
  const std::string& op = b.op;
  if (op == "add") {
    // n-ary adders fold left: (((p0 + p1) + p2) + ...), each mod 2^width.
    if (in.size() < 2)
      throw DesignError("block '" + b.name +
                        "' (add) needs at least two input ports");
    for (const Bus& bus : in) want_width(bus);
    Bus acc = ripple_adder(nl, in[0], in[1]);
    for (std::size_t k = 2; k < in.size(); ++k)
      acc = ripple_adder(nl, acc, in[k]);
    return acc;
  }
  if (op == "sub" || op == "mul") {
    want_arity(2);
    want_width(in[0]);
    want_width(in[1]);
    if (op == "sub") return ripple_subtractor(nl, in[0], in[1]);
    return array_multiplier(nl, in[0], in[1],
                            static_cast<std::size_t>(b.width));
  }
  if (op == "and" || op == "or" || op == "xor" || op == "nand" ||
      op == "nor" || op == "xnor") {
    // Bitwise blocks are n-ary: one n-input gate per bit position.
    if (in.size() < 2)
      throw DesignError("block '" + b.name + "' (" + op +
                        ") needs at least two input ports");
    for (const Bus& bus : in) want_width(bus);
    GateType t;
    if (op == "and") t = GateType::kAnd;
    else if (op == "or") t = GateType::kOr;
    else if (op == "xor") t = GateType::kXor;
    else if (op == "nand") t = GateType::kNand;
    else if (op == "nor") t = GateType::kNor;
    else t = GateType::kXnor;
    Bus out;
    out.reserve(static_cast<std::size_t>(b.width));
    for (int bit = 0; bit < b.width; ++bit) {
      std::vector<NetId> fanin;
      fanin.reserve(in.size());
      for (const Bus& bus : in)
        fanin.push_back(bus[static_cast<std::size_t>(bit)]);
      out.push_back(nl.add_gate(t, std::move(fanin)));
    }
    return out;
  }
  if (op == "not") {
    want_arity(1);
    want_width(in[0]);
    return bitwise_not(nl, in[0]);
  }
  if (op == "buf" || op == "pass") {
    want_arity(1);
    want_width(in[0]);
    return in[0];
  }
  throw DesignError("block '" + b.name + "': unknown op '" + op + "'");
}

}  // namespace

Elaboration elaborate(const rtl::Netlist& n) {
  BIBS_SPAN("gate.elaborate");
  BIBS_COUNTER(c_elabs, "gate.elaborations");
  BIBS_COUNTER(c_gates, "gate.elaborated_gates");
  BIBS_COUNTER_ADD(c_elabs, 1);
  n.validate();
  Elaboration e;
  Netlist& nl = e.netlist;

  // 1. DFF banks for every register edge; Q nets exist before any logic.
  for (rtl::ConnId cid : n.register_edges()) {
    const rtl::Connection& c = n.connection(cid);
    Bus q;
    for (int i = 0; i < c.reg->width; ++i)
      q.push_back(nl.add_dff(kNoNet, c.reg->name + "[" + std::to_string(i) +
                                         "]"));
    e.reg_q[cid] = std::move(q);
  }

  // 2. Blocks in combinational topological order (register edges broken).
  graph::EdgeSet reg_edges;
  for (rtl::ConnId cid : n.register_edges()) reg_edges.insert(cid);
  const auto order = graph::topological_order(n, reg_edges);

  for (rtl::BlockId bid : order) {
    const rtl::Block& b = n.block(bid);
    std::vector<Bus> in;
    for (rtl::ConnId cid : n.fanin(bid)) {
      const rtl::Connection& c = n.connection(cid);
      in.push_back(c.is_register() ? e.reg_q.at(cid) : e.block_out.at(c.from));
    }
    switch (b.kind) {
      case rtl::BlockKind::kInput: {
        Bus bus;
        for (int i = 0; i < b.width; ++i)
          bus.push_back(nl.add_input(b.name + "[" + std::to_string(i) + "]"));
        e.block_out[bid] = std::move(bus);
        break;
      }
      case rtl::BlockKind::kOutput:
        BIBS_ASSERT(in.size() == 1);
        for (std::size_t i = 0; i < in[0].size(); ++i)
          nl.mark_output(in[0][i], b.name + "[" + std::to_string(i) + "]");
        e.block_out[bid] = in[0];
        break;
      case rtl::BlockKind::kFanout:
      case rtl::BlockKind::kVacuous:
        BIBS_ASSERT(in.size() == 1);
        e.block_out[bid] = in[0];
        break;
      case rtl::BlockKind::kComb:
        e.block_out[bid] = comb_block(nl, b, in);
        break;
    }
  }

  // 3. Connect D pins.
  for (rtl::ConnId cid : n.register_edges()) {
    const rtl::Connection& c = n.connection(cid);
    const Bus& src = e.block_out.at(c.from);
    BIBS_ASSERT(src.size() == e.reg_q.at(cid).size());
    e.reg_d[cid] = src;
    for (std::size_t i = 0; i < src.size(); ++i)
      nl.set_dff_d(e.reg_q.at(cid)[i], src[i]);
  }
  nl.validate();
  BIBS_COUNTER_ADD(c_gates, nl.gate_count());
  return e;
}

Netlist combinational_kernel(const Elaboration& e, const rtl::Netlist& n,
                             const std::vector<rtl::ConnId>& input_regs,
                             const std::vector<rtl::ConnId>& output_regs) {
  Netlist out;
  std::vector<NetId> remap(e.netlist.net_count(), kNoNet);

  // Kernel PIs: input register Q cells, in the given register order.
  for (rtl::ConnId cid : input_regs) {
    const Bus& q = e.reg_q.at(cid);
    const std::string rname = n.connection(cid).reg->name;
    for (std::size_t i = 0; i < q.size(); ++i)
      remap[static_cast<std::size_t>(q[i])] =
          out.add_input(rname + "[" + std::to_string(i) + "]");
  }

  // Depth-first copy of the cone behind each output D pin. Internal DFFs
  // collapse to their D cone (combinational equivalent of a balanced kernel).
  std::function<NetId(NetId)> copy = [&](NetId src) -> NetId {
    NetId& slot = remap[static_cast<std::size_t>(src)];
    if (slot != kNoNet) return slot;
    const Gate& g = e.netlist.gate(src);
    switch (g.type) {
      case GateType::kInput:
        // A PI reached without passing a kernel input register: expose it.
        slot = out.add_input(g.name);
        return slot;
      case GateType::kConst0: slot = out.add_const(false); return slot;
      case GateType::kConst1: slot = out.add_const(true); return slot;
      case GateType::kDff: {
        BIBS_ASSERT(g.fanin.size() == 1);
        const NetId d = copy(g.fanin[0]);
        slot = remap[static_cast<std::size_t>(src)];
        if (slot != kNoNet) return slot;  // resolved during recursion
        slot = d;  // register becomes a wire
        return slot;
      }
      default: {
        std::vector<NetId> fanin;
        fanin.reserve(g.fanin.size());
        for (NetId f : g.fanin) fanin.push_back(copy(f));
        slot = remap[static_cast<std::size_t>(src)];
        if (slot != kNoNet) return slot;
        slot = out.add_gate(g.type, std::move(fanin), g.name);
        return slot;
      }
    }
  };

  for (rtl::ConnId cid : output_regs) {
    const Bus& d = e.reg_d.at(cid);
    const std::string rname = n.connection(cid).reg->name;
    for (std::size_t i = 0; i < d.size(); ++i)
      out.mark_output(copy(d[i]), rname + ".D[" + std::to_string(i) + "]");
  }
  out.validate();
  return out;
}

}  // namespace bibs::gate
