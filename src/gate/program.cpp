#include "gate/program.hpp"

#include <algorithm>

#include "gate/sim.hpp"

namespace bibs::gate {

namespace {

Op fuse(GateType t, std::size_t n) {
  switch (t) {
    case GateType::kBuf: return Op::kBuf;
    case GateType::kNot: return Op::kNot;
    case GateType::kAnd: return n == 2 ? Op::kAnd2 : Op::kAndN;
    case GateType::kNand: return n == 2 ? Op::kNand2 : Op::kNandN;
    case GateType::kOr: return n == 2 ? Op::kOr2 : Op::kOrN;
    case GateType::kNor: return n == 2 ? Op::kNor2 : Op::kNorN;
    case GateType::kXor: return n == 2 ? Op::kXor2 : Op::kXorN;
    case GateType::kXnor: return n == 2 ? Op::kXnor2 : Op::kXnorN;
    default:
      BIBS_ASSERT(false && "non-combinational gate in the instruction stream");
      return Op::kBuf;
  }
}

}  // namespace

EvalProgram::EvalProgram(const Netlist& nl) : nl_(&nl) {
  const std::size_t nets = nl.net_count();
  const std::vector<NetId> topo = nl.comb_topo_order();

  op_.reserve(topo.size());
  out_.reserve(topo.size());
  off_.reserve(topo.size() + 1);
  off_.push_back(0);
  instr_of_.assign(nets, kNoInstr);
  level_.assign(nets, 0);

  for (NetId id : topo) {
    const Gate& g = nl.gate(id);
    instr_of_[static_cast<std::size_t>(id)] =
        static_cast<std::uint32_t>(op_.size());
    op_.push_back(fuse(g.type, g.fanin.size()));
    out_.push_back(id);
    int lvl = 0;
    for (NetId f : g.fanin) {
      fanin_.push_back(f);
      lvl = std::max(lvl, level_[static_cast<std::size_t>(f)] + 1);
    }
    off_.push_back(static_cast<std::uint32_t>(fanin_.size()));
    level_[static_cast<std::size_t>(id)] = lvl;
    ilevel_.push_back(lvl);
    max_level_ = std::max(max_level_, lvl);
  }

  // Fanout CSR (counting sort over the packed fan-in buffer).
  fo_off_.assign(nets + 1, 0);
  for (NetId f : fanin_) ++fo_off_[static_cast<std::size_t>(f) + 1];
  for (std::size_t i = 1; i <= nets; ++i) fo_off_[i] += fo_off_[i - 1];
  fo_.resize(fanin_.size());
  std::vector<std::uint32_t> cursor(fo_off_.begin(), fo_off_.end() - 1);
  for (std::size_t i = 0; i < op_.size(); ++i)
    for (std::uint32_t k = off_[i]; k < off_[i + 1]; ++k)
      fo_[cursor[static_cast<std::size_t>(fanin_[k])]++] =
          static_cast<std::uint32_t>(i);

  for (NetId id = 0; static_cast<std::size_t>(id) < nets; ++id)
    if (nl.gate(id).type == GateType::kConst1) const1_.push_back(id);
}

void EvalProgram::run_range(std::size_t begin, std::size_t end,
                            std::uint64_t* v) const {
  const Op* ops = op_.data();
  const NetId* outs = out_.data();
  const std::uint32_t* off = off_.data();
  const NetId* fan = fanin_.data();
  for (std::size_t i = begin; i < end; ++i) {
    const NetId* fi = fan + off[i];
    std::uint64_t r;
    switch (ops[i]) {
      case Op::kBuf: r = v[fi[0]]; break;
      case Op::kNot: r = ~v[fi[0]]; break;
      case Op::kAnd2: r = v[fi[0]] & v[fi[1]]; break;
      case Op::kNand2: r = ~(v[fi[0]] & v[fi[1]]); break;
      case Op::kOr2: r = v[fi[0]] | v[fi[1]]; break;
      case Op::kNor2: r = ~(v[fi[0]] | v[fi[1]]); break;
      case Op::kXor2: r = v[fi[0]] ^ v[fi[1]]; break;
      case Op::kXnor2: r = ~(v[fi[0]] ^ v[fi[1]]); break;
      default: {
        const std::uint32_t n = off[i + 1] - off[i];
        r = v[fi[0]];
        switch (ops[i]) {
          case Op::kAndN:
          case Op::kNandN:
            for (std::uint32_t k = 1; k < n; ++k) r &= v[fi[k]];
            if (ops[i] == Op::kNandN) r = ~r;
            break;
          case Op::kOrN:
          case Op::kNorN:
            for (std::uint32_t k = 1; k < n; ++k) r |= v[fi[k]];
            if (ops[i] == Op::kNorN) r = ~r;
            break;
          default:  // kXorN / kXnorN
            for (std::uint32_t k = 1; k < n; ++k) r ^= v[fi[k]];
            if (ops[i] == Op::kXnorN) r = ~r;
            break;
        }
        break;
      }
    }
    v[outs[i]] = r;
  }
}

void reference_eval(const Netlist& nl, const std::vector<NetId>& topo,
                    std::uint64_t* values) {
  std::uint64_t in[64];
  for (NetId id : topo) {
    const Gate& g = nl.gate(id);
    const std::size_t n = g.fanin.size();
    BIBS_ASSERT(n <= 64);
    for (std::size_t i = 0; i < n; ++i)
      in[i] = values[static_cast<std::size_t>(g.fanin[i])];
    values[static_cast<std::size_t>(id)] = Simulator::eval_gate(g.type, in, n);
  }
}

}  // namespace bibs::gate
