#include "gate/sim.hpp"

#include "obs/obs.hpp"

namespace bibs::gate {

Simulator::Simulator(const Netlist& nl)
    : nl_(&nl),
      prog_(nl),
      values_(nl.net_count(), 0),
      state_(nl.net_count(), 0) {
  for (NetId c : prog_.const1_nets())
    values_[static_cast<std::size_t>(c)] = ~0ull;
}

void Simulator::set_input(NetId net, std::uint64_t word) {
  BIBS_ASSERT(nl_->gate(net).type == GateType::kInput);
  values_[static_cast<std::size_t>(net)] = word;
}

void Simulator::set_state(NetId dff, std::uint64_t word) {
  BIBS_ASSERT(nl_->gate(dff).type == GateType::kDff);
  state_[static_cast<std::size_t>(dff)] = word;
  values_[static_cast<std::size_t>(dff)] = word;
}

std::uint64_t Simulator::eval_gate(GateType t, const std::uint64_t* in,
                                   std::size_t n) {
  std::uint64_t v;
  switch (t) {
    case GateType::kBuf: return in[0];
    case GateType::kNot: return ~in[0];
    case GateType::kAnd:
    case GateType::kNand:
      v = in[0];
      for (std::size_t i = 1; i < n; ++i) v &= in[i];
      return t == GateType::kAnd ? v : ~v;
    case GateType::kOr:
    case GateType::kNor:
      v = in[0];
      for (std::size_t i = 1; i < n; ++i) v |= in[i];
      return t == GateType::kOr ? v : ~v;
    case GateType::kXor:
    case GateType::kXnor:
      v = in[0];
      for (std::size_t i = 1; i < n; ++i) v ^= in[i];
      return t == GateType::kXor ? v : ~v;
    default: BIBS_ASSERT(false && "eval_gate on a non-combinational gate");
  }
  return 0;
}

void Simulator::eval() {
  BIBS_COUNTER(c_evals, "gate_sim.evals");
  BIBS_COUNTER_ADD(c_evals, 1);
  // DFF outputs present their state.
  for (NetId d : nl_->dffs())
    values_[static_cast<std::size_t>(d)] = state_[static_cast<std::size_t>(d)];
  prog_.run(values_.data());
}

void Simulator::clock() {
  BIBS_COUNTER(c_clocks, "gate_sim.clocks");
  BIBS_COUNTER_ADD(c_clocks, 1);
  for (NetId d : nl_->dffs()) {
    const Gate& g = nl_->gate(d);
    BIBS_ASSERT(g.fanin.size() == 1);
    state_[static_cast<std::size_t>(d)] =
        values_[static_cast<std::size_t>(g.fanin[0])];
  }
}

void Simulator::reset() {
  for (NetId d : nl_->dffs()) {
    state_[static_cast<std::size_t>(d)] = 0;
    values_[static_cast<std::size_t>(d)] = 0;
  }
}

void Simulator::set_bus(const std::vector<NetId>& bus,
                        std::uint64_t value_per_lane) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input(bus[i], ((value_per_lane >> i) & 1u) ? ~0ull : 0ull);
}

void Simulator::set_bus_lane(const std::vector<NetId>& bus, int lane,
                             std::uint64_t value) {
  BIBS_ASSERT(lane >= 0 && lane < 64);
  for (std::size_t i = 0; i < bus.size(); ++i) {
    auto& w = values_[static_cast<std::size_t>(bus[i])];
    const std::uint64_t mask = 1ull << lane;
    if ((value >> i) & 1u)
      w |= mask;
    else
      w &= ~mask;
  }
}

std::uint64_t Simulator::bus_value(const std::vector<NetId>& bus,
                                   int lane) const {
  BIBS_ASSERT(lane >= 0 && lane < 64 && bus.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if ((values_[static_cast<std::size_t>(bus[i])] >> lane) & 1u)
      v |= 1ull << i;
  return v;
}

}  // namespace bibs::gate
