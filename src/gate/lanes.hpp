#pragma once
// Lane-width-parameterized evaluation backends for the compiled kernel.
//
// gate::EvalProgram historically moved exactly one std::uint64_t — 64
// pattern lanes — per instruction. This header generalizes the datapath to
// W consecutive 64-bit words per net (W*64 lanes per sweep) behind a
// runtime-dispatched backend table:
//
//   scalar64   W=1, the original code path, kept as the golden reference;
//   avx2       W=4 (256-bit), compiled in a TU built with -mavx2;
//   avx512     W=8 (512-bit), compiled in a TU built with -mavx512f.
//
// The wide kernels are the same plain C++ loops over LaneWord<W> — GCC
// auto-vectorizes the fixed-W inner ops to the TU's ISA. Each width is
// instantiated in exactly one TU (lanes.cpp / lanes_avx2.cpp /
// lanes_avx512.cpp) so no other translation unit can emit a scalar copy of
// a wide kernel and win the ODR coin toss.
//
// Wide value arrays use a strided layout: net n owns words
// [n*W, n*W + W), lane l of pattern block p lives in word p/64 bit p%64.
// Lane 0..63 of word 0 are bit-identical to the scalar64 words, which is
// what the bit-identity gates (bench_kernel --check, tests/lanes_test.cpp)
// compare against.
//
// Backend selection: active_lane_backend() latches the widest backend the
// CPU supports, overridable with BIBS_LANES=scalar64|avx2|avx512 (or the
// --lanes flag of the bench/CLI tools, which calls set_lane_backend). The
// resolved name is surfaced in obs run reports under the "lanes" label.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gate/program.hpp"

namespace bibs::gate {

/// Pattern lanes carried by one 64-bit word (the scalar64 block size).
inline constexpr int kLanesPerWord = 64;

/// W consecutive 64-bit words treated as one W*64-lane value. Plain
/// fixed-size loops: the per-backend TU's ISA flags turn them into 256/512-
/// bit vector ops.
template <int W>
struct alignas(8 * W) LaneWord {
  static_assert(W >= 1 && W <= 8 && (W & (W - 1)) == 0,
                "lane words are power-of-two runs of uint64");
  std::uint64_t w[W];

  static LaneWord load(const std::uint64_t* p) {
    LaneWord r;
    for (int j = 0; j < W; ++j) r.w[j] = p[j];
    return r;
  }
  static LaneWord broadcast(std::uint64_t x) {
    LaneWord r;
    for (int j = 0; j < W; ++j) r.w[j] = x;
    return r;
  }
  static LaneWord zero() { return broadcast(0); }
  static LaneWord ones() { return broadcast(~0ull); }

  void store(std::uint64_t* p) const {
    for (int j = 0; j < W; ++j) p[j] = w[j];
  }

  friend LaneWord operator&(LaneWord a, LaneWord b) {
    for (int j = 0; j < W; ++j) a.w[j] &= b.w[j];
    return a;
  }
  friend LaneWord operator|(LaneWord a, LaneWord b) {
    for (int j = 0; j < W; ++j) a.w[j] |= b.w[j];
    return a;
  }
  friend LaneWord operator^(LaneWord a, LaneWord b) {
    for (int j = 0; j < W; ++j) a.w[j] ^= b.w[j];
    return a;
  }
  friend LaneWord operator~(LaneWord a) {
    for (int j = 0; j < W; ++j) a.w[j] = ~a.w[j];
    return a;
  }
  /// a & ~b — the mask blends of fault injection.
  LaneWord andnot(LaneWord b) const {
    LaneWord a = *this;
    for (int j = 0; j < W; ++j) a.w[j] &= ~b.w[j];
    return a;
  }
  friend bool operator==(const LaneWord& a, const LaneWord& b) {
    std::uint64_t d = 0;
    for (int j = 0; j < W; ++j) d |= a.w[j] ^ b.w[j];
    return d == 0;
  }
  bool any() const {
    std::uint64_t d = 0;
    for (int j = 0; j < W; ++j) d |= w[j];
    return d != 0;
  }
};

/// One stuck-at fault site handed to LaneBackend::propagate. `instr` is the
/// injection instruction for pin faults (EvalProgram::kNoInstr for stems).
struct LaneFaultSite {
  NetId net;
  int pin;  // < 0: output stem fault
  std::uint32_t instr;
  bool stuck;
};

/// Read-only context shared by every fault a worker propagates within one
/// pattern block. All value arrays are W-strided; `lane_mask` holds W words
/// masking the valid pattern lanes of the block.
struct LanePropagateCtx {
  ProgramView pv;
  std::size_t n_instr;
  const std::uint64_t* good;   // net_count * W words
  std::uint64_t* cur;          // worker scratch, == good between faults
  const char* observed;        // per net: is a PO
  std::uint64_t* dirty;        // one bit per instruction, zero between faults
  const std::uint64_t* lane_mask;  // W words
};

/// One evaluation backend: name, width, CPUID gate and the four kernels.
/// All value pointers are W-strided arrays (net n at words [n*W, n*W+W)).
struct LaneBackend {
  const char* name;
  int words;  // 64-bit words per lane block (W)
  int lanes;  // words * kLanesPerWord — patterns per block
  /// CPU supports this backend's ISA (checked at dispatch, not compile).
  bool (*supported)();
  /// Evaluates instructions [begin, end) into `values`.
  void (*run_range)(const ProgramView& pv, std::size_t begin, std::size_t end,
                    std::uint64_t* values);
  /// Evaluates instruction i into out[0..W) without writing its output net.
  void (*eval_one)(const ProgramView& pv, std::size_t i,
                   const std::uint64_t* values, std::uint64_t* out);
  /// Same, with fan-in `pin` forced to forced[0..W).
  void (*eval_one_forced)(const ProgramView& pv, std::size_t i,
                          const std::uint64_t* values, int pin,
                          const std::uint64_t* forced, std::uint64_t* out);
  /// Event-driven single-fault propagation over the fanout cone; ORs the
  /// per-lane detection words into detect[0..W) and restores ctx.cur to
  /// ctx.good. `changed` is scratch for at least net_count entries.
  void (*propagate)(const LanePropagateCtx& ctx, const LaneFaultSite& f,
                    NetId* changed, std::uint64_t* detect);
};

/// The W=1 golden backend (always compiled, always supported).
const LaneBackend& scalar_lane_backend();

/// Every backend compiled into this binary (scalar64 first, then ascending
/// width). Unsupported-on-this-CPU entries are included: callers gate on
/// supported() so tests can assert the fallback order.
const std::vector<const LaneBackend*>& all_lane_backends();

/// Backend by name ("scalar64", "avx2", "avx512"); nullptr if the name is
/// unknown or the backend was not compiled in.
const LaneBackend* find_lane_backend(const std::string& name);

/// Compiled-in, CPU-supported backend with exactly `lanes` pattern lanes
/// per block; nullptr if none matches.
const LaneBackend* lane_backend_for_lanes(int lanes);

/// The process-wide active backend. Resolved once on first use: the
/// BIBS_LANES environment override if set (throws DesignError on an
/// unknown or CPU-unsupported name), else the widest supported backend.
/// The resolved name is recorded as the "lanes" obs report label.
const LaneBackend& active_lane_backend();

/// Overrides the active backend (bench --lanes, tests). Throws DesignError
/// if `backend` is not supported on this CPU. Passing nullptr drops the
/// latch so the next active_lane_backend() re-resolves from BIBS_LANES /
/// CPUID.
void set_lane_backend(const LaneBackend* backend);

}  // namespace bibs::gate
