// The 512-bit (8x64-lane) backend. This TU is compiled with -mavx512f
// -mprefer-vector-width=512 (see src/gate/CMakeLists.txt), so the
// LaneWord<8> loops in lanes_impl.hpp vectorize to 512-bit ops; no other TU
// may instantiate the W=8 kernels. Whether the *running* CPU has AVX-512 is
// a separate, runtime question answered by supported().

#include "gate/lanes_impl.hpp"

namespace bibs::gate::detail {

namespace {
bool cpu_has_avx512() { return __builtin_cpu_supports("avx512f") > 0; }
}  // namespace

const LaneBackend* avx512_backend() {
  static const LaneBackend backend =
      lanes_detail::make_lane_backend<8>("avx512", &cpu_has_avx512);
  return &backend;
}

}  // namespace bibs::gate::detail
