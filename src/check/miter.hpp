#pragma once
// Miter-based combinational equivalence checking.
//
// Two netlists with matching interfaces are combined into one XOR miter:
// shared primary inputs, one XOR per output pair, one OR-reduced "miter"
// output that is 1 exactly when the implementations disagree. Sequential
// netlists are first cut at their registers (combinational_view): every DFF
// output becomes a pseudo primary input and every DFF D net an extra output,
// the standard reduction of sequential to combinational equivalence under
// matched state encodings.
//
// The proof engine is the compiled gate::EvalProgram, 64 patterns per sweep:
// each output cone is proved *exhaustively* over its input support when the
// support is small enough (<= EquivOptions::exhaustive_limit, default 24,
// i.e. at most 2^24 / 64 = 262144 sweeps per cone), and by seeded random
// vectors otherwise. Any disagreement is shrunk to a minimized counterexample
// (greedy bit-clearing, re-checked after every step) before it is reported.

#include <cstdint>
#include <string>
#include <vector>

#include "check/verdict.hpp"
#include "gate/netlist.hpp"

namespace bibs::check {

/// Cuts a netlist at its registers: DFF outputs become pseudo primary inputs
/// (appended after the real PIs, in dff order) and DFF D nets become extra
/// outputs (after the real POs). Net ids are preserved. A combinational
/// netlist passes through unchanged (modulo the copy).
gate::Netlist combinational_view(const gate::Netlist& nl);

/// The miter of two combinational netlists (equal input/output counts).
struct Miter {
  gate::Netlist netlist;
  /// Inputs shared by both halves, in netlist-a input order.
  std::vector<gate::NetId> inputs;
  /// Per-output XOR net, in output order.
  std::vector<gate::NetId> xors;
  /// OR of all xors: 1 iff the halves disagree on some output.
  gate::NetId out = gate::kNoNet;
};

/// Builds the XOR miter. Throws bibs::DesignError when the interfaces do not
/// match (input/output counts) or when either netlist is sequential.
Miter make_miter(const gate::Netlist& a, const gate::Netlist& b);

/// Primary-input support of `net`: the sorted list of kInput nets reachable
/// backwards through fan-ins.
std::vector<gate::NetId> input_support(const gate::Netlist& nl,
                                       gate::NetId net);

struct EquivOptions {
  /// Cones with support <= this many inputs are proved exhaustively.
  std::size_t exhaustive_limit = 24;
  /// Random vectors applied to the wider cones (rounded up to 64).
  std::int64_t random_vectors = 2048;
  std::uint64_t seed = 1;
  /// Attach the b-side netlist (.bench) to counterexamples.
  bool emit_netlist = true;
};

/// Per-output-cone proof record.
struct ConeReport {
  std::string output;          ///< name or #index
  std::size_t support = 0;     ///< PI support size
  bool exhaustive = false;     ///< proved over all 2^support vectors
  std::uint64_t vectors = 0;   ///< vectors actually applied
  bool equal = true;
};

struct EquivResult {
  bool equivalent = false;
  /// True when every cone was proved exhaustively (a real proof, not a test).
  bool proven = false;
  /// Interfaces did not match; no vectors were run.
  bool structural_mismatch = false;
  std::string detail;
  std::vector<ConeReport> cones;
  Counterexample cx;

  obs::Json to_json() const;
};

/// Checks a == b (combinational views thereof). Cones are proved exhaustively
/// where feasible, randomly otherwise; the first disagreement is minimized
/// into `cx` and the check stops.
EquivResult check_equivalence(const gate::Netlist& a, const gate::Netlist& b,
                              const EquivOptions& opt = {});

}  // namespace bibs::check
