#pragma once
// Shared result types of the differential-verification subsystem: every
// checker — miter equivalence, metamorphic oracles, mutation smoke — reports
// through a Verdict so failures are machine-readable and *replayable*. A
// failing check never returns a bare boolean: it carries a Counterexample
// with the minimized input vector, the seed that produced it and (when the
// caller asks) the offending netlist in .bench text, so any verdict in a
// bibs_check JSON report can be reproduced outside the harness.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace bibs::check {

/// A minimized, replayable witness of one oracle failure.
struct Counterexample {
  bool valid = false;
  /// Seed of the run that exposed the divergence (replay entry point).
  std::uint64_t seed = 0;
  /// Minimized primary-input vector (comb-view PI order; DFF pseudo-inputs
  /// follow the real PIs). Empty when the failure is structural.
  std::vector<bool> inputs;
  /// Diverging output (name or #index), when the failure is value-level.
  std::string output;
  /// Fault site (fault::to_string), for coverage-curve oracles.
  std::string fault;
  /// First diverging pattern index in the generator stream; -1 if n/a.
  std::int64_t pattern = -1;
  /// The implementation-side netlist in .bench text (replayable artifact);
  /// empty when the caller disabled netlist emission.
  std::string netlist_bench;

  obs::Json to_json() const;
};

/// Outcome of one oracle run.
struct Verdict {
  std::string oracle;
  bool pass = false;
  /// One-line human summary (what was compared, how much was covered).
  std::string detail;
  Counterexample cx;

  obs::Json to_json() const;
};

}  // namespace bibs::check
