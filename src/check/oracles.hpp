#pragma once
// Metamorphic oracles: executable identities between two implementations of
// the same circuit. Every oracle takes a (reference, implementation) netlist
// pair and checks a relation that must hold when the two are functionally
// equal — so the same predicate serves double duty:
//
//   * ref == impl: a self-check of the engine contracts (compiled kernel ==
//     interpreted reference, N threads == serial, checkpoint splice ==
//     straight run, miter self-equivalence);
//   * impl = mutant(ref): a sensitivity check — the oracle must FAIL, which
//     is how the mutation smoke harness (check/mutate.hpp) verifies that the
//     oracles themselves have teeth.
//
// Every failure carries a minimized, replayable Counterexample (seed, input
// vector, diverging output or fault site, and the impl netlist as .bench).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/miter.hpp"
#include "check/verdict.hpp"
#include "gate/netlist.hpp"

namespace bibs::check {

struct OracleContext {
  const gate::Netlist* ref = nullptr;
  const gate::Netlist* impl = nullptr;
  std::uint64_t seed = 1;
  /// Random patterns driven through the fault-curve oracles.
  std::int64_t patterns = 256;
  /// Worker threads of the threaded side of thread_curve_identity.
  int threads = 4;
  /// 64-pattern blocks driven through eval_identity.
  int blocks = 8;
  EquivOptions equiv;
  /// Attach the impl netlist (.bench) to counterexamples.
  bool emit_netlist = true;
};

using OracleFn = std::function<Verdict(const OracleContext&)>;

struct Oracle {
  std::string name;
  OracleFn fn;
};

/// Compiled gate::EvalProgram sweep of impl == interpreted
/// gate::reference_eval sweep of ref, on seeded random pattern blocks,
/// compared output by output.
Verdict eval_identity(const OracleContext& ctx);

/// Miter-based equivalence of ref and impl (exhaustive per cone where
/// feasible); wraps check_equivalence.
Verdict miter_equivalence(const OracleContext& ctx);

/// fault::FaultSimulator coverage curve of ref (serial) == curve of impl
/// (ctx.threads workers), same seed and pattern budget.
Verdict thread_curve_identity(const OracleContext& ctx);

/// Straight run on ref == run k patterns on impl, checkpoint, resume on a
/// fresh simulator (the splice identity of PR 2).
Verdict checkpoint_splice_identity(const OracleContext& ctx);

/// Compiled-backend curve of impl == interpreted-backend curve of ref.
Verdict backend_curve_identity(const OracleContext& ctx);

/// Active-lane-backend (possibly SIMD-wide) curve of impl == scalar64 curve
/// of ref. Compares detected_at only: patterns_run legitimately differs
/// across widths when every fault is detected (or the run stalls) inside a
/// wide block. A no-op self-check when the host resolves to scalar64.
Verdict lane_curve_identity(const OracleContext& ctx);

/// The standard suite, in the order above.
const std::vector<Oracle>& standard_oracles();

/// Replays the random-pattern generator stream of the fault-curve oracles
/// and returns the input vector of pattern `index` (PI order of `nl`'s
/// combinational view). This is how counterexample vectors for curve
/// divergences are reconstructed from (seed, pattern index) alone.
std::vector<bool> pattern_at(const gate::Netlist& nl, std::uint64_t seed,
                             std::int64_t index);

}  // namespace bibs::check
