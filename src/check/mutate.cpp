#include "check/mutate.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bibs::check {

using gate::GateType;
using gate::NetId;
using gate::Netlist;

namespace {

bool mutable_gate(GateType t) {
  return !gate::is_source(t) && t != GateType::kDff;
}

/// The gate types a mutation may swap within, by arity class.
const std::vector<GateType>& swap_class(GateType t) {
  static const std::vector<GateType> kUnary = {GateType::kBuf, GateType::kNot};
  static const std::vector<GateType> kNary = {
      GateType::kAnd, GateType::kOr,  GateType::kNand,
      GateType::kNor, GateType::kXor, GateType::kXnor};
  return (t == GateType::kBuf || t == GateType::kNot) ? kUnary : kNary;
}

std::string gate_label(const Netlist& nl, NetId id) {
  const gate::Gate& g = nl.gate(id);
  return g.name.empty()
             ? std::string(gate::to_string(g.type)) + "#" + std::to_string(id)
             : g.name;
}

}  // namespace

std::string to_string(const Netlist& nl, const Mutation& m) {
  if (m.kind == Mutation::Kind::kGateType)
    return gate_label(nl, m.net) + " -> " + gate::to_string(m.new_type);
  return gate_label(nl, m.net) + ".in" + std::to_string(m.pin) +
         " rewired to net " + std::to_string(m.new_src) + " (was " +
         std::to_string(nl.gate(m.net).fanin[static_cast<std::size_t>(m.pin)]) +
         ")";
}

std::optional<Mutation> random_mutation(const Netlist& nl, Xoshiro256& rng) {
  // Only *live* gates are mutation sites: a mutant outside every output (or
  // register D) cone is functionally equivalent by construction and would
  // just dilute the smoke run with ground-truth "equivalent" records.
  std::vector<char> live(nl.net_count(), 0);
  std::vector<NetId> work;
  auto mark = [&](NetId id) {
    if (!live[static_cast<std::size_t>(id)]) {
      live[static_cast<std::size_t>(id)] = 1;
      work.push_back(id);
    }
  };
  for (NetId po : nl.outputs()) mark(po);
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id)
    if (nl.gate(id).type == GateType::kDff && !nl.gate(id).fanin.empty())
      mark(nl.gate(id).fanin[0]);
  while (!work.empty()) {
    const NetId id = work.back();
    work.pop_back();
    if (nl.gate(id).type == GateType::kDff) continue;  // cut at registers
    for (NetId f : nl.gate(id).fanin) mark(f);
  }

  std::vector<NetId> sites;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id)
    if (live[static_cast<std::size_t>(id)] && mutable_gate(nl.gate(id).type))
      sites.push_back(id);
  if (sites.empty()) return std::nullopt;

  const NetId target = sites[rng.next_below(sites.size())];
  const gate::Gate& g = nl.gate(target);

  Mutation m;
  m.net = target;
  if (rng.next_below(2) == 0) {
    // Rewire one pin to a strictly lower net id. Netlist construction order
    // is topological (add_gate enforces fanin id < gate id), so the id guard
    // both rules out combinational cycles and keeps the rebuilt mutant
    // constructible.
    m.pin = static_cast<int>(rng.next_below(g.fanin.size()));
    const NetId cur = g.fanin[static_cast<std::size_t>(m.pin)];
    std::vector<NetId> cand;
    for (NetId id = 0; id < target; ++id)
      if (id != cur && nl.gate(id).type != GateType::kConst0 &&
          nl.gate(id).type != GateType::kConst1)
        cand.push_back(id);
    if (!cand.empty()) {
      m.kind = Mutation::Kind::kRewire;
      m.new_src = cand[rng.next_below(cand.size())];
      return m;
    }
    // No candidate (e.g. the very first gate, fed by its only PI): fall
    // through to a gate-type swap.
  }
  m.kind = Mutation::Kind::kGateType;
  const std::vector<GateType>& cls = swap_class(g.type);
  GateType t;
  do {
    t = cls[rng.next_below(cls.size())];
  } while (t == g.type);
  m.new_type = t;
  return m;
}

Netlist apply(const Netlist& nl, const Mutation& m) {
  if (m.net < 0 || static_cast<std::size_t>(m.net) >= nl.net_count() ||
      !mutable_gate(nl.gate(m.net).type))
    throw DesignError("mutation targets a non-gate net");
  if (m.kind == Mutation::Kind::kGateType) {
    const bool was_unary = nl.gate(m.net).fanin.size() == 1;
    const bool is_unary =
        m.new_type == GateType::kBuf || m.new_type == GateType::kNot;
    if (was_unary != is_unary)
      throw DesignError("gate-type mutation crosses arity classes");
  } else if (m.pin < 0 ||
             static_cast<std::size_t>(m.pin) >= nl.gate(m.net).fanin.size()) {
    throw DesignError("rewire mutation names a missing pin");
  }

  Netlist out;
  std::vector<NetId> dffs;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const gate::Gate& g = nl.gate(id);
    switch (g.type) {
      case GateType::kInput: out.add_input(g.name); break;
      case GateType::kConst0: out.add_const(false); break;
      case GateType::kConst1: out.add_const(true); break;
      case GateType::kDff:
        out.add_dff(gate::kNoNet, g.name);
        dffs.push_back(id);
        break;
      default: {
        GateType t = g.type;
        std::vector<NetId> fanin = g.fanin;
        if (id == m.net) {
          if (m.kind == Mutation::Kind::kGateType)
            t = m.new_type;
          else
            fanin[static_cast<std::size_t>(m.pin)] = m.new_src;
        }
        out.add_gate(t, std::move(fanin), g.name);
        break;
      }
    }
  }
  for (NetId d : dffs)
    if (!nl.gate(d).fanin.empty()) out.set_dff_d(d, nl.gate(d).fanin[0]);
  for (std::size_t k = 0; k < nl.outputs().size(); ++k)
    out.mark_output(nl.outputs()[k], nl.output_names()[k]);
  out.validate();
  return out;
}

obs::Json MutationReport::to_json(bool include_killed) const {
  obs::Json j = obs::Json::object();
  j["mutants"] = obs::Json(static_cast<std::uint64_t>(mutants));
  j["equivalents"] = obs::Json(static_cast<std::uint64_t>(equivalents));
  j["undecided"] = obs::Json(static_cast<std::uint64_t>(undecided));
  j["killed_by_all"] = obs::Json(static_cast<std::uint64_t>(killed_by_all));
  j["killed_by_any"] = obs::Json(static_cast<std::uint64_t>(killed_by_any));
  j["kill_rate"] = obs::Json(kill_rate());
  j["strong_kill_rate"] = obs::Json(strong_kill_rate());
  obs::Json rs = obs::Json::array();
  for (const MutantRecord& r : records) {
    const bool survivor = !r.equivalent && r.decided && !r.missed_by.empty();
    if (!include_killed && !survivor && r.decided && !r.equivalent) continue;
    obs::Json rj = obs::Json::object();
    rj["seed"] = obs::Json(r.seed);
    rj["site"] = obs::Json(r.site);
    if (r.equivalent) rj["equivalent"] = obs::Json(true);
    if (!r.decided) rj["undecided"] = obs::Json(true);
    if (!r.missed_by.empty()) {
      obs::Json ms = obs::Json::array();
      for (const std::string& o : r.missed_by) ms.push_back(obs::Json(o));
      rj["missed_by"] = std::move(ms);
    }
    if (include_killed && !r.killed_by.empty()) {
      obs::Json ks = obs::Json::array();
      for (const std::string& o : r.killed_by) ks.push_back(obs::Json(o));
      rj["killed_by"] = std::move(ks);
    }
    rs.push_back(std::move(rj));
  }
  j["records"] = std::move(rs);
  return j;
}

MutationReport mutation_smoke(const Netlist& nl,
                              const std::vector<Oracle>& oracles, int count,
                              std::uint64_t seed, const OracleContext& base) {
  MutationReport rep;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t mseed = seed + static_cast<std::uint64_t>(i);
    Xoshiro256 rng(mseed);
    const std::optional<Mutation> mo = random_mutation(nl, rng);
    if (!mo) break;  // nothing mutable in this netlist
    const Netlist mutant = apply(nl, *mo);

    MutantRecord rec;
    rec.seed = mseed;
    rec.site = to_string(nl, *mo);

    // Ground truth before the oracles are judged: an equivalent mutant is
    // not killable and must not count against the suite.
    EquivOptions eopt = base.equiv;
    eopt.seed = mseed;
    eopt.emit_netlist = false;
    const EquivResult eq = check_equivalence(nl, mutant, eopt);
    if (eq.equivalent) {
      rec.equivalent = eq.proven;
      rec.decided = eq.proven;
      (eq.proven ? rep.equivalents : rep.undecided) += 1;
      rep.records.push_back(std::move(rec));
      continue;
    }

    rep.mutants += 1;
    OracleContext ctx = base;
    ctx.ref = &nl;
    ctx.impl = &mutant;
    ctx.seed = mseed;
    bool all = true, any = false;
    for (const Oracle& o : oracles) {
      const Verdict v = o.fn(ctx);
      if (!v.pass) {
        rec.killed_by.push_back(o.name);
        any = true;
      } else {
        rec.missed_by.push_back(o.name);
        all = false;
      }
    }
    rep.killed_by_all += all ? 1 : 0;
    rep.killed_by_any += any ? 1 : 0;
    rep.records.push_back(std::move(rec));
  }
  return rep;
}

}  // namespace bibs::check
