#pragma once
// bibs::check — the differential verification subsystem.
//
// Three layers, each usable on its own:
//   * miter.hpp    — XOR-miter combinational equivalence (exhaustive per
//                    input cone where feasible, seeded-random otherwise,
//                    minimized counterexamples);
//   * oracles.hpp  — metamorphic oracles over (reference, implementation)
//                    netlist pairs: compiled-vs-interpreted eval identity,
//                    serial-vs-threaded and checkpoint-splice coverage-curve
//                    identities, backend curve identity;
//   * mutate.hpp   — single-site mutation engine plus the smoke harness
//                    that proves the oracles can actually fail.
//
// The bibs_check CLI (examples/bibs_check.cpp) drives all of it over the
// circuit zoo and seeded random netlists and emits a JSON verdict; ctest
// runs it as a tier-1 gate (`check_differential`). docs/testing.md explains
// how to add an oracle.

#include "check/miter.hpp"    // IWYU pragma: export
#include "check/mutate.hpp"   // IWYU pragma: export
#include "check/oracles.hpp"  // IWYU pragma: export
#include "check/verdict.hpp"  // IWYU pragma: export
