#include "check/verdict.hpp"

namespace bibs::check {

obs::Json Counterexample::to_json() const {
  obs::Json j = obs::Json::object();
  j["seed"] = obs::Json(seed);
  if (!inputs.empty()) {
    std::string bits;
    bits.reserve(inputs.size());
    for (bool b : inputs) bits.push_back(b ? '1' : '0');
    j["inputs"] = obs::Json(bits);
  }
  if (!output.empty()) j["output"] = obs::Json(output);
  if (!fault.empty()) j["fault"] = obs::Json(fault);
  if (pattern >= 0) j["pattern"] = obs::Json(pattern);
  if (!netlist_bench.empty()) j["netlist_bench"] = obs::Json(netlist_bench);
  return j;
}

obs::Json Verdict::to_json() const {
  obs::Json j = obs::Json::object();
  j["oracle"] = obs::Json(oracle);
  j["pass"] = obs::Json(pass);
  j["detail"] = obs::Json(detail);
  if (cx.valid) j["counterexample"] = cx.to_json();
  return j;
}

}  // namespace bibs::check
