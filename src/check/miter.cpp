#include "check/miter.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "gate/bench_format.hpp"
#include "gate/lanes.hpp"
#include "gate/program.hpp"

namespace bibs::check {

using gate::GateType;
using gate::NetId;
using gate::Netlist;

gate::Netlist combinational_view(const Netlist& nl) {
  Netlist out;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const gate::Gate& g = nl.gate(id);
    switch (g.type) {
      case GateType::kInput:
        out.add_input(g.name);
        break;
      case GateType::kConst0:
        out.add_const(false);
        break;
      case GateType::kConst1:
        out.add_const(true);
        break;
      case GateType::kDff:
        // The register cut: Q becomes a pseudo primary input. Ids are
        // preserved because every add_* appends exactly one net.
        out.add_input(g.name.empty() ? "dff" + std::to_string(id) : g.name);
        break;
      default:
        out.add_gate(g.type, g.fanin, g.name);
        break;
    }
  }
  for (std::size_t k = 0; k < nl.outputs().size(); ++k)
    out.mark_output(nl.outputs()[k], nl.output_names()[k]);
  for (NetId d : nl.dffs()) {
    const gate::Gate& g = nl.gate(d);
    if (g.fanin.empty()) continue;  // unconnected DFF: nothing to observe
    out.mark_output(g.fanin[0],
                    (g.name.empty() ? "dff" + std::to_string(d) : g.name) +
                        ".d");
  }
  return out;
}

Miter make_miter(const Netlist& a, const Netlist& b) {
  if (!a.dffs().empty() || !b.dffs().empty())
    throw DesignError("make_miter needs combinational netlists; cut with "
                      "combinational_view first");
  if (a.inputs().size() != b.inputs().size())
    throw DesignError("miter interface mismatch: " +
                      std::to_string(a.inputs().size()) + " vs " +
                      std::to_string(b.inputs().size()) + " inputs");
  if (a.outputs().size() != b.outputs().size())
    throw DesignError("miter interface mismatch: " +
                      std::to_string(a.outputs().size()) + " vs " +
                      std::to_string(b.outputs().size()) + " outputs");

  Miter m;
  // Half a: copied verbatim, so a's net ids survive unchanged.
  for (NetId id = 0; static_cast<std::size_t>(id) < a.net_count(); ++id) {
    const gate::Gate& g = a.gate(id);
    switch (g.type) {
      case GateType::kInput: m.netlist.add_input(g.name); break;
      case GateType::kConst0: m.netlist.add_const(false); break;
      case GateType::kConst1: m.netlist.add_const(true); break;
      default: m.netlist.add_gate(g.type, g.fanin, g.name); break;
    }
  }
  m.inputs = m.netlist.inputs();
  // Half b: appended with inputs folded onto a's (by input index). Fan-ins
  // of combinational gates always reference earlier ids, so a single
  // in-order remap pass suffices.
  std::vector<NetId> remap(b.net_count(), gate::kNoNet);
  for (std::size_t j = 0; j < b.inputs().size(); ++j)
    remap[static_cast<std::size_t>(b.inputs()[j])] = m.inputs[j];
  for (NetId id = 0; static_cast<std::size_t>(id) < b.net_count(); ++id) {
    const gate::Gate& g = b.gate(id);
    if (g.type == GateType::kInput) continue;  // folded above
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      remap[static_cast<std::size_t>(id)] =
          m.netlist.add_const(g.type == GateType::kConst1);
      continue;
    }
    std::vector<NetId> fanin;
    fanin.reserve(g.fanin.size());
    for (NetId f : g.fanin) fanin.push_back(remap[static_cast<std::size_t>(f)]);
    remap[static_cast<std::size_t>(id)] =
        m.netlist.add_gate(g.type, std::move(fanin), g.name);
  }
  // One XOR per output pair, then an OR reduction to the single miter net.
  for (std::size_t k = 0; k < a.outputs().size(); ++k) {
    const NetId ao = a.outputs()[k];
    const NetId bo = remap[static_cast<std::size_t>(b.outputs()[k])];
    m.xors.push_back(m.netlist.add_gate(GateType::kXor, {ao, bo},
                                        "xor_o" + std::to_string(k)));
  }
  std::vector<NetId> frontier = m.xors;
  while (frontier.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2)
      next.push_back(
          m.netlist.add_gate(GateType::kOr, {frontier[i], frontier[i + 1]}));
    if (frontier.size() % 2) next.push_back(frontier.back());
    frontier.swap(next);
  }
  m.out = frontier.empty() ? gate::kNoNet : frontier[0];
  if (m.out != gate::kNoNet) m.netlist.mark_output(m.out, "miter");
  return m;
}

std::vector<NetId> input_support(const Netlist& nl, NetId net) {
  std::vector<char> seen(nl.net_count(), 0);
  std::vector<NetId> stack{net}, support;
  seen[static_cast<std::size_t>(net)] = 1;
  while (!stack.empty()) {
    const NetId id = stack.back();
    stack.pop_back();
    const gate::Gate& g = nl.gate(id);
    if (g.type == GateType::kInput) {
      support.push_back(id);
      continue;
    }
    for (NetId f : g.fanin) {
      if (seen[static_cast<std::size_t>(f)]) continue;
      seen[static_cast<std::size_t>(f)] = 1;
      stack.push_back(f);
    }
  }
  std::sort(support.begin(), support.end());
  return support;
}

namespace {

std::string output_label(const Netlist& nl, std::size_t k) {
  const std::string& n = nl.output_names()[k];
  return n.empty() ? "#" + std::to_string(k) : n;
}

/// One compiled evaluation context over the miter netlist, running on the
/// active lane backend: values are W-strided (net n at words [n*W, n*W+W))
/// and each sweep evaluates W*64 input vectors, so exhaustive cone proofs
/// advance in W*64-pattern strides.
struct MiterEval {
  const Miter* m;
  const gate::LaneBackend* lane;
  std::size_t w;  // words per net (lane->words)
  gate::EvalProgram prog;
  std::vector<std::uint64_t> vals;

  explicit MiterEval(const Miter& mm)
      : m(&mm),
        lane(&gate::active_lane_backend()),
        w(static_cast<std::size_t>(lane->words)),
        prog(mm.netlist),
        vals(mm.netlist.net_count() * w, 0) {}

  std::uint64_t* words(NetId n) {
    return vals.data() + static_cast<std::size_t>(n) * w;
  }

  void sweep() {
    for (NetId c : prog.const1_nets()) {
      std::uint64_t* v = words(c);
      for (std::size_t j = 0; j < w; ++j) v[j] = ~0ull;
    }
    lane->run_range(prog.view(), 0, prog.size(), vals.data());
  }

  /// Single replicated vector; returns the xor-net bit.
  bool differs(std::size_t cone, const std::vector<bool>& v) {
    for (std::size_t i = 0; i < m->inputs.size(); ++i) {
      std::uint64_t* in = words(m->inputs[i]);
      for (std::size_t j = 0; j < w; ++j) in[j] = v[i] ? ~0ull : 0ull;
    }
    sweep();
    return *words(m->xors[cone]) & 1u;
  }
};

/// Greedy shrink: clear every 1-bit that is not needed to keep the cone
/// diverging. The result still diverges (re-checked after each step).
std::vector<bool> minimize_vector(MiterEval& ev, std::size_t cone,
                                  std::vector<bool> v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v[i]) continue;
    v[i] = false;
    if (!ev.differs(cone, v)) v[i] = true;
  }
  return v;
}

}  // namespace

obs::Json EquivResult::to_json() const {
  obs::Json j = obs::Json::object();
  j["equivalent"] = obs::Json(equivalent);
  j["proven"] = obs::Json(proven);
  if (structural_mismatch) j["structural_mismatch"] = obs::Json(true);
  j["detail"] = obs::Json(detail);
  obs::Json cs = obs::Json::array();
  for (const ConeReport& c : cones) {
    obs::Json cj = obs::Json::object();
    cj["output"] = obs::Json(c.output);
    cj["support"] = obs::Json(static_cast<std::uint64_t>(c.support));
    cj["exhaustive"] = obs::Json(c.exhaustive);
    cj["vectors"] = obs::Json(c.vectors);
    cj["equal"] = obs::Json(c.equal);
    cs.push_back(std::move(cj));
  }
  j["cones"] = std::move(cs);
  if (cx.valid) j["counterexample"] = cx.to_json();
  return j;
}

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              const EquivOptions& opt) {
  const Netlist av = combinational_view(a);
  const Netlist bv = combinational_view(b);

  EquivResult r;
  if (av.inputs().size() != bv.inputs().size() ||
      av.outputs().size() != bv.outputs().size()) {
    r.structural_mismatch = true;
    r.detail = "interface mismatch: " + std::to_string(av.inputs().size()) +
               "/" + std::to_string(av.outputs().size()) + " vs " +
               std::to_string(bv.inputs().size()) + "/" +
               std::to_string(bv.outputs().size()) + " inputs/outputs";
    r.cx.valid = true;
    r.cx.seed = opt.seed;
    if (opt.emit_netlist) r.cx.netlist_bench = gate::to_bench(bv);
    return r;
  }

  const Miter m = make_miter(av, bv);
  MiterEval ev(m);
  const std::size_t nin = m.inputs.size();

  auto report_failure = [&](std::size_t cone, std::vector<bool> vec) {
    r.equivalent = false;
    r.cx.valid = true;
    r.cx.seed = opt.seed;
    r.cx.output = output_label(av, cone);
    r.cx.inputs = minimize_vector(ev, cone, std::move(vec));
    if (opt.emit_netlist) r.cx.netlist_bench = gate::to_bench(bv);
    r.detail = "output " + r.cx.output + " diverges";
  };

  std::vector<std::size_t> wide;  // cones handled by the random phase
  for (std::size_t k = 0; k < m.xors.size(); ++k) {
    ConeReport cr;
    cr.output = output_label(av, k);
    const std::vector<NetId> support = input_support(m.netlist, m.xors[k]);
    cr.support = support.size();
    if (cr.support > opt.exhaustive_limit) {
      wide.push_back(k);
      r.cones.push_back(cr);
      continue;
    }
    cr.exhaustive = true;
    const std::uint64_t total = 1ull << cr.support;
    cr.vectors = total;
    for (NetId in : m.inputs) {
      std::uint64_t* v = ev.words(in);
      for (std::size_t j = 0; j < ev.w; ++j) v[j] = 0;
    }
    // W*64 vectors per sweep; the first diverging pattern index is found by
    // an ascending word-then-bit scan, so it is the globally smallest one
    // whatever the backend width.
    const std::uint64_t block = static_cast<std::uint64_t>(ev.lane->lanes);
    for (std::uint64_t base = 0; base < total; base += block) {
      const std::uint64_t lanes = std::min<std::uint64_t>(block, total - base);
      for (std::size_t i = 0; i < support.size(); ++i) {
        std::uint64_t* v = ev.words(support[i]);
        for (std::size_t j = 0; j < ev.w; ++j) {
          const std::uint64_t lo = static_cast<std::uint64_t>(j) * 64;
          const std::uint64_t n =
              lo < lanes ? std::min<std::uint64_t>(64, lanes - lo) : 0;
          std::uint64_t word = 0;
          for (std::uint64_t l = 0; l < n; ++l)
            word |= (((base + lo + l) >> i) & 1u) << l;
          v[j] = word;
        }
      }
      ev.sweep();
      const std::uint64_t* diffw = ev.words(m.xors[k]);
      std::uint64_t hit = total;  // pattern index of the first divergence
      for (std::size_t j = 0; j < ev.w && hit == total; ++j) {
        const std::uint64_t lo = static_cast<std::uint64_t>(j) * 64;
        if (lo >= lanes) break;
        const std::uint64_t n = std::min<std::uint64_t>(64, lanes - lo);
        const std::uint64_t mask = n == 64 ? ~0ull : ((1ull << n) - 1);
        if (const std::uint64_t diff = diffw[j] & mask; diff)
          hit = base + lo +
                static_cast<std::uint64_t>(std::countr_zero(diff));
      }
      if (hit != total) {
        std::vector<bool> vec(nin, false);
        for (std::size_t i = 0; i < support.size(); ++i) {
          // Map the support-local pattern index back to full PI positions.
          const std::size_t pos = static_cast<std::size_t>(
              std::find(m.inputs.begin(), m.inputs.end(), support[i]) -
              m.inputs.begin());
          vec[pos] = (hit >> i) & 1u;
        }
        cr.equal = false;
        r.cones.push_back(cr);
        report_failure(k, std::move(vec));
        return r;
      }
    }
    r.cones.push_back(cr);
  }

  if (!wide.empty()) {
    Xoshiro256 rng(opt.seed);
    const std::int64_t blocks = (opt.random_vectors + 63) / 64;
    for (std::int64_t blk = 0; blk < blocks; ++blk) {
      // One rng word per input, broadcast across the backend's W words, and
      // detection read from word 0 only: the PRNG stream, vector count and
      // any counterexample stay bit-identical to the scalar64 backend.
      for (NetId in : m.inputs) {
        const std::uint64_t rw = rng.next();
        std::uint64_t* v = ev.words(in);
        for (std::size_t j = 0; j < ev.w; ++j) v[j] = rw;
      }
      ev.sweep();
      for (std::size_t k : wide) {
        const std::uint64_t diff = *ev.words(m.xors[k]);
        if (!diff) continue;
        const unsigned lane = static_cast<unsigned>(std::countr_zero(diff));
        std::vector<bool> vec(nin, false);
        for (std::size_t i = 0; i < nin; ++i)
          vec[i] = (*ev.words(m.inputs[i]) >> lane) & 1u;
        for (ConeReport& cr : r.cones)
          if (cr.output == output_label(av, k)) {
            cr.equal = false;
            cr.vectors = static_cast<std::uint64_t>(blk + 1) * 64;
          }
        report_failure(k, std::move(vec));
        return r;
      }
    }
    for (ConeReport& cr : r.cones)
      if (!cr.exhaustive)
        cr.vectors = static_cast<std::uint64_t>(blocks) * 64;
  }

  r.equivalent = true;
  r.proven = wide.empty();
  r.detail = r.proven
                 ? "equivalent (all " + std::to_string(m.xors.size()) +
                       " cones exhaustive)"
                 : "equivalent on " + std::to_string(opt.random_vectors) +
                       " random vectors (" + std::to_string(wide.size()) +
                       " cone(s) too wide for exhaustion)";
  return r;
}

}  // namespace bibs::check
