#include "check/oracles.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "fault/fault.hpp"
#include "fault/simulator.hpp"
#include "gate/bench_format.hpp"
#include "gate/lanes.hpp"
#include "gate/program.hpp"
#include "rt/checkpoint.hpp"
#include "rt/control.hpp"

namespace bibs::check {

using fault::CoverageCurve;
using fault::EvalBackend;
using fault::FaultList;
using fault::FaultSimulator;
using gate::NetId;
using gate::Netlist;

namespace {

std::string output_label(const Netlist& nl, std::size_t k) {
  const std::string& n = nl.output_names()[k];
  return n.empty() ? "#" + std::to_string(k) : n;
}

void seed_consts(const Netlist& nl, std::vector<std::uint64_t>& vals) {
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    if (nl.gate(id).type == gate::GateType::kConst1)
      vals[static_cast<std::size_t>(id)] = ~0ull;
    else if (nl.gate(id).type == gate::GateType::kConst0)
      vals[static_cast<std::size_t>(id)] = 0;
  }
}

bool interface_mismatch(const Netlist& rv, const Netlist& iv, Verdict& v,
                        const OracleContext& ctx) {
  if (rv.inputs().size() == iv.inputs().size() &&
      rv.outputs().size() == iv.outputs().size())
    return false;
  v.pass = false;
  v.detail = "interface mismatch: " + std::to_string(rv.inputs().size()) +
             "/" + std::to_string(rv.outputs().size()) + " vs " +
             std::to_string(iv.inputs().size()) + "/" +
             std::to_string(iv.outputs().size()) + " inputs/outputs";
  v.cx.valid = true;
  v.cx.seed = ctx.seed;
  if (ctx.emit_netlist) v.cx.netlist_bench = gate::to_bench(iv);
  return true;
}

CoverageCurve run_curve(const Netlist& view, const FaultList& fl,
                        EvalBackend backend, int threads, std::uint64_t seed,
                        std::int64_t patterns,
                        const gate::LaneBackend* lanes = nullptr) {
  FaultSimulator sim(view, fl, backend);
  // Pinned to scalar64 unless an oracle asks for a wider backend:
  // patterns_run depends on the block width when a run ends mid-block, and
  // curve_verdict compares it, so both sides of an identity must run the
  // same width. lane_curve_identity is the oracle that crosses widths (and
  // skips the patterns_run comparison).
  sim.set_lane_backend(lanes ? lanes : &gate::scalar_lane_backend());
  sim.set_threads(threads);
  Xoshiro256 rng(seed);
  return sim.run_random(rng, patterns);
}

/// Shared tail of the three curve oracles: compares two coverage curves and
/// reconstructs a minimized (single-pattern) counterexample on divergence.
Verdict curve_verdict(const std::string& name, const OracleContext& ctx,
                      const Netlist& iv, const FaultList& flr,
                      const FaultList& fli, const CoverageCurve& cr,
                      const CoverageCurve& ci,
                      bool compare_patterns_run = true) {
  Verdict v;
  v.oracle = name;
  if (flr.size() != fli.size()) {
    v.pass = false;
    v.detail = "fault universe mismatch: " + std::to_string(flr.size()) +
               " vs " + std::to_string(fli.size()) + " faults";
    v.cx.valid = true;
    v.cx.seed = ctx.seed;
    if (ctx.emit_netlist) v.cx.netlist_bench = gate::to_bench(iv);
    return v;
  }
  const std::ptrdiff_t k = cr.first_difference(ci);
  if (k < 0 && (!compare_patterns_run || cr.patterns_run == ci.patterns_run)) {
    v.pass = true;
    v.detail = std::to_string(cr.patterns_run) + " patterns, " +
               std::to_string(flr.size()) + " faults, coverage " +
               std::to_string(cr.coverage()) + ": curves identical";
    return v;
  }
  v.pass = false;
  v.cx.valid = true;
  v.cx.seed = ctx.seed;
  if (ctx.emit_netlist) v.cx.netlist_bench = gate::to_bench(iv);
  if (k < 0) {
    v.detail = "pattern counts diverge: " + std::to_string(cr.patterns_run) +
               " vs " + std::to_string(ci.patterns_run);
    return v;
  }
  const std::size_t ku = static_cast<std::size_t>(k);
  v.cx.fault = to_string(iv, fli[ku]);
  const std::int64_t a = cr.detected_at[ku], b = ci.detected_at[ku];
  v.cx.pattern = (a < 0) ? b : (b < 0 ? a : std::min(a, b));
  v.cx.inputs = pattern_at(iv, ctx.seed, v.cx.pattern);
  v.detail = "fault " + v.cx.fault + " first detected at pattern " +
             std::to_string(a) + " vs " + std::to_string(b);
  return v;
}

}  // namespace

std::vector<bool> pattern_at(const Netlist& nl, std::uint64_t seed,
                             std::int64_t index) {
  if (index < 0) return {};
  const Netlist view = combinational_view(nl);
  const std::size_t nin = view.inputs().size();
  // Replays FaultSimulator::run_random's stream: one fresh word per input
  // per 64-pattern block, pattern p in lane p % 64.
  Xoshiro256 rng(seed);
  const std::int64_t block = index / 64;
  const int lane = static_cast<int>(index % 64);
  std::vector<std::uint64_t> words(nin, 0);
  for (std::int64_t b = 0; b <= block; ++b)
    for (std::size_t i = 0; i < nin; ++i) words[i] = rng.next();
  std::vector<bool> vec(nin, false);
  for (std::size_t i = 0; i < nin; ++i) vec[i] = (words[i] >> lane) & 1u;
  return vec;
}

Verdict eval_identity(const OracleContext& ctx) {
  Verdict v;
  v.oracle = "eval_identity";
  const Netlist rv = combinational_view(*ctx.ref);
  const Netlist iv = combinational_view(*ctx.impl);
  if (interface_mismatch(rv, iv, v, ctx)) return v;

  const std::vector<NetId> topo = rv.comb_topo_order();
  const gate::EvalProgram prog(iv);
  std::vector<std::uint64_t> vr(rv.net_count(), 0), vi(iv.net_count(), 0);
  seed_consts(rv, vr);
  seed_consts(iv, vi);

  // Single replicated vector driven through both sides; true iff output k
  // still diverges (the minimizer's probe).
  auto differs_on = [&](std::size_t k, const std::vector<bool>& vec) {
    for (std::size_t i = 0; i < vec.size(); ++i) {
      const std::uint64_t w = vec[i] ? ~0ull : 0ull;
      vr[static_cast<std::size_t>(rv.inputs()[i])] = w;
      vi[static_cast<std::size_t>(iv.inputs()[i])] = w;
    }
    gate::reference_eval(rv, topo, vr.data());
    prog.run(vi.data());
    return ((vr[static_cast<std::size_t>(rv.outputs()[k])] ^
             vi[static_cast<std::size_t>(iv.outputs()[k])]) &
            1u) != 0;
  };

  Xoshiro256 rng(ctx.seed);
  for (int blk = 0; blk < ctx.blocks; ++blk) {
    for (std::size_t i = 0; i < rv.inputs().size(); ++i) {
      const std::uint64_t w = rng.next();
      vr[static_cast<std::size_t>(rv.inputs()[i])] = w;
      vi[static_cast<std::size_t>(iv.inputs()[i])] = w;
    }
    gate::reference_eval(rv, topo, vr.data());
    prog.run(vi.data());
    for (std::size_t k = 0; k < rv.outputs().size(); ++k) {
      const std::uint64_t diff =
          vr[static_cast<std::size_t>(rv.outputs()[k])] ^
          vi[static_cast<std::size_t>(iv.outputs()[k])];
      if (!diff) continue;
      const unsigned lane = static_cast<unsigned>(std::countr_zero(diff));
      std::vector<bool> vec(rv.inputs().size(), false);
      for (std::size_t i = 0; i < vec.size(); ++i)
        vec[i] = (vr[static_cast<std::size_t>(rv.inputs()[i])] >> lane) & 1u;
      // Greedy shrink against the replicated single-vector probe.
      for (std::size_t i = 0; i < vec.size(); ++i) {
        if (!vec[i]) continue;
        vec[i] = false;
        if (!differs_on(k, vec)) vec[i] = true;
      }
      v.pass = false;
      v.cx.valid = true;
      v.cx.seed = ctx.seed;
      v.cx.output = output_label(rv, k);
      v.cx.inputs = std::move(vec);
      if (ctx.emit_netlist) v.cx.netlist_bench = gate::to_bench(iv);
      v.detail = "compiled vs interpreted sweep diverges at output " +
                 v.cx.output;
      return v;
    }
  }
  v.pass = true;
  v.detail = std::to_string(ctx.blocks) + " blocks x 64 patterns, " +
             std::to_string(rv.outputs().size()) + " outputs identical";
  return v;
}

Verdict miter_equivalence(const OracleContext& ctx) {
  EquivOptions opt = ctx.equiv;
  opt.seed = ctx.seed;
  opt.emit_netlist = ctx.emit_netlist;
  const EquivResult r = check_equivalence(*ctx.ref, *ctx.impl, opt);
  Verdict v;
  v.oracle = "miter_equivalence";
  v.pass = r.equivalent;
  v.detail = r.detail;
  v.cx = r.cx;
  return v;
}

Verdict thread_curve_identity(const OracleContext& ctx) {
  Verdict v;
  v.oracle = "thread_curve_identity";
  const Netlist rv = combinational_view(*ctx.ref);
  const Netlist iv = combinational_view(*ctx.impl);
  if (interface_mismatch(rv, iv, v, ctx)) return v;
  const FaultList flr = FaultList::full(rv);
  const FaultList fli = FaultList::full(iv);
  if (flr.size() != fli.size() || flr.size() == 0)
    return curve_verdict(v.oracle, ctx, iv, flr, fli, {}, {});
  const CoverageCurve cr =
      run_curve(rv, flr, EvalBackend::kCompiled, 1, ctx.seed, ctx.patterns);
  const CoverageCurve ci = run_curve(iv, fli, EvalBackend::kCompiled,
                                     ctx.threads, ctx.seed, ctx.patterns);
  return curve_verdict(v.oracle, ctx, iv, flr, fli, cr, ci);
}

Verdict checkpoint_splice_identity(const OracleContext& ctx) {
  Verdict v;
  v.oracle = "checkpoint_splice_identity";
  const Netlist rv = combinational_view(*ctx.ref);
  const Netlist iv = combinational_view(*ctx.impl);
  if (interface_mismatch(rv, iv, v, ctx)) return v;
  const FaultList flr = FaultList::full(rv);
  const FaultList fli = FaultList::full(iv);
  if (flr.size() != fli.size() || flr.size() == 0)
    return curve_verdict(v.oracle, ctx, iv, flr, fli, {}, {});

  const CoverageCurve straight =
      run_curve(rv, flr, EvalBackend::kCompiled, 1, ctx.seed, ctx.patterns);

  FaultSimulator first(iv, fli, EvalBackend::kCompiled);
  first.set_lane_backend(&gate::scalar_lane_backend());
  first.set_threads(1);
  Xoshiro256 rng(ctx.seed);
  rt::RunControl ctl;
  ctl.budget = std::max<std::int64_t>(64, ctx.patterns / 2);
  const CoverageCurve partial = first.run_random(
      rng, ctx.patterns, std::numeric_limits<std::int64_t>::max(), ctl);
  CoverageCurve spliced = partial;
  if (partial.status != rt::RunStatus::kFinished) {
    const rt::SimCheckpoint ckpt = first.make_checkpoint(partial, &rng);
    FaultSimulator second(iv, fli, EvalBackend::kCompiled);
    second.set_lane_backend(&gate::scalar_lane_backend());
    second.set_threads(1);
    Xoshiro256 rng2(ctx.seed + 1);  // overwritten from the checkpoint
    spliced = second.run_random(rng2, ctx.patterns,
                                std::numeric_limits<std::int64_t>::max(), {},
                                &ckpt);
  }
  return curve_verdict(v.oracle, ctx, iv, flr, fli, straight, spliced);
}

Verdict backend_curve_identity(const OracleContext& ctx) {
  Verdict v;
  v.oracle = "backend_curve_identity";
  const Netlist rv = combinational_view(*ctx.ref);
  const Netlist iv = combinational_view(*ctx.impl);
  if (interface_mismatch(rv, iv, v, ctx)) return v;
  const FaultList flr = FaultList::full(rv);
  const FaultList fli = FaultList::full(iv);
  if (flr.size() != fli.size() || flr.size() == 0)
    return curve_verdict(v.oracle, ctx, iv, flr, fli, {}, {});
  const CoverageCurve cr = run_curve(rv, flr, EvalBackend::kInterpreted, 1,
                                     ctx.seed, ctx.patterns);
  const CoverageCurve ci =
      run_curve(iv, fli, EvalBackend::kCompiled, 1, ctx.seed, ctx.patterns);
  return curve_verdict(v.oracle, ctx, iv, flr, fli, cr, ci);
}

Verdict lane_curve_identity(const OracleContext& ctx) {
  Verdict v;
  v.oracle = "lane_curve_identity";
  const Netlist rv = combinational_view(*ctx.ref);
  const Netlist iv = combinational_view(*ctx.impl);
  if (interface_mismatch(rv, iv, v, ctx)) return v;
  const FaultList flr = FaultList::full(rv);
  const FaultList fli = FaultList::full(iv);
  if (flr.size() != fli.size() || flr.size() == 0)
    return curve_verdict(v.oracle, ctx, iv, flr, fli, {}, {});
  const CoverageCurve cr =
      run_curve(rv, flr, EvalBackend::kCompiled, 1, ctx.seed, ctx.patterns);
  const gate::LaneBackend& wide = gate::active_lane_backend();
  const CoverageCurve ci = run_curve(iv, fli, EvalBackend::kCompiled, 1,
                                     ctx.seed, ctx.patterns, &wide);
  Verdict out = curve_verdict(v.oracle, ctx, iv, flr, fli, cr, ci,
                              /*compare_patterns_run=*/false);
  if (out.pass)
    out.detail += " (scalar64 vs " + std::string(wide.name) + ")";
  return out;
}

const std::vector<Oracle>& standard_oracles() {
  static const std::vector<Oracle> kOracles = {
      {"eval_identity", eval_identity},
      {"miter_equivalence", miter_equivalence},
      {"thread_curve_identity", thread_curve_identity},
      {"checkpoint_splice_identity", checkpoint_splice_identity},
      {"backend_curve_identity", backend_curve_identity},
      {"lane_curve_identity", lane_curve_identity},
  };
  return kOracles;
}

}  // namespace bibs::check
