#include "fault/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "gate/sim.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"

namespace bibs::fault {

using gate::Gate;
using gate::GateType;
using gate::NetId;

std::size_t CoverageCurve::detected_count() const {
  std::size_t n = 0;
  for (auto d : detected_at)
    if (d != kUndetected) ++n;
  return n;
}

double CoverageCurve::coverage() const {
  if (detected_at.empty()) return 1.0;
  return static_cast<double>(detected_count()) /
         static_cast<double>(detected_at.size());
}

std::int64_t CoverageCurve::patterns_for_fraction(double fraction) const {
  BIBS_ASSERT(fraction > 0.0 && fraction <= 1.0);
  std::vector<std::int64_t> hits;
  hits.reserve(detected_at.size());
  for (auto d : detected_at)
    if (d != kUndetected) hits.push_back(d);
  if (hits.empty()) return 0;  // nothing was ever detected
  // Clamp against float round-off so fraction == 1.0 always selects the
  // last detection and tiny fractions always select at least one fault.
  const auto need = std::min<std::size_t>(
      hits.size(),
      std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(fraction * static_cast<double>(hits.size())))));
  // Only the (need-1)-th order statistic matters; a full sort of every
  // detection time is O(n log n) per fraction per experiment row.
  std::nth_element(hits.begin(),
                   hits.begin() + static_cast<std::ptrdiff_t>(need - 1),
                   hits.end());
  return hits[need - 1] + 1;  // pattern indices are 0-based
}

std::ptrdiff_t CoverageCurve::first_difference(
    const CoverageCurve& other) const {
  const std::size_t n = std::min(detected_at.size(), other.detected_at.size());
  for (std::size_t i = 0; i < n; ++i)
    if (detected_at[i] != other.detected_at[i])
      return static_cast<std::ptrdiff_t>(i);
  if (detected_at.size() != other.detected_at.size())
    return static_cast<std::ptrdiff_t>(n);
  return -1;
}

double CoverageCurve::coverage_after(std::int64_t patterns) const {
  if (detected_at.empty()) return 1.0;
  std::size_t n = 0;
  for (auto d : detected_at)
    if (d != kUndetected && d < patterns) ++n;
  return static_cast<double>(n) / static_cast<double>(detected_at.size());
}

FaultSimulator::FaultSimulator(const gate::Netlist& nl, FaultList faults,
                               EvalBackend backend, FaultModel model)
    : nl_(&nl),
      faults_(std::move(faults)),
      backend_(backend),
      model_(model),
      // The interpreted golden path predates the wide datapath and stays
      // one word wide; the compiled path captures the dispatched backend.
      lane_(backend == EvalBackend::kInterpreted
                ? &gate::scalar_lane_backend()
                : &gate::active_lane_backend()),
      prog_(nl) {
  BIBS_ASSERT(nl.dffs().empty());  // combinational netlists only
  if (model_ == FaultModel::kTransition) {
    for (const Fault& f : faults_.faults())
      if (f.pin >= 0)
        throw DesignError(
            "transition faults are stem-only; fault list contains a pin "
            "fault on net " + std::to_string(f.net));
    site_prev_.assign(faults_.size(), 0);
  }
  topo_ = nl.comb_topo_order();
  const std::size_t n = nl.net_count();
  observed_.assign(n, 0);
  for (NetId o : nl.outputs()) observed_[static_cast<std::size_t>(o)] = 1;
  reset_good_values();
}

void FaultSimulator::set_lane_backend(const gate::LaneBackend* backend) {
  BIBS_ASSERT(backend != nullptr);
  if (!backend->supported())
    throw DesignError("lane backend " + std::string(backend->name) +
                      " is not supported by this CPU");
  if (backend_ == EvalBackend::kInterpreted && backend->words != 1)
    throw DesignError(
        "the interpreted reference backend is scalar-only; cannot widen it "
        "to " + std::string(backend->name));
  lane_ = backend;
  reset_good_values();
}

void FaultSimulator::reset_good_values() {
  const std::size_t w = static_cast<std::size_t>(lane_->words);
  good_.assign(nl_->net_count() * w, 0);
  // Constant nets never change: set every word of them once here instead of
  // rescanning the whole netlist per block (the interpreted reference still
  // rescans).
  for (NetId c : prog_.const1_nets())
    for (std::size_t j = 0; j < w; ++j)
      good_[static_cast<std::size_t>(c) * w + j] = ~0ull;
}

void FaultSimulator::good_eval(const std::uint64_t* in_words) {
  const std::size_t w = static_cast<std::size_t>(lane_->words);
  const auto& ins = nl_->inputs();
  for (std::size_t i = 0; i < ins.size(); ++i)
    for (std::size_t j = 0; j < w; ++j)
      good_[static_cast<std::size_t>(ins[i]) * w + j] = in_words[i * w + j];
  if (backend_ == EvalBackend::kInterpreted) {
    // Retained reference path: full-net constant rescan plus the generic
    // per-gate-vector sweep, byte-for-byte the pre-EvalProgram loop.
    for (NetId id = 0; static_cast<std::size_t>(id) < nl_->net_count(); ++id)
      if (nl_->gate(id).type == GateType::kConst1)
        good_[static_cast<std::size_t>(id)] = ~0ull;
    gate::reference_eval(*nl_, topo_, good_.data());
    return;
  }
  lane_->run_range(prog_.view(), 0, prog_.size(), good_.data());
}

std::uint64_t FaultSimulator::propagate(const Fault& f, int valid_lanes,
                                        Scratch& s) const {
  const std::uint64_t lane_mask =
      valid_lanes >= 64 ? ~0ull : ((1ull << valid_lanes) - 1);
  std::uint64_t detect = 0;

  std::uint64_t* cur = s.cur.data();
  const std::uint64_t* good = good_.data();
  const char* observed = observed_.data();

  // A net is written at most once per sweep (ascending topological event
  // order evaluates every instruction after all of its producers settled),
  // so set_net records each changed net exactly once and every recorded net
  // still differs from good when the sweep ends.
  auto set_net = [&](NetId net, std::uint64_t v) {
    std::uint64_t& slot = cur[static_cast<std::size_t>(net)];
    if (slot == v) return false;
    if (slot == good[static_cast<std::size_t>(net)]) s.changed.push_back(net);
    slot = v;
    return true;
  };

  const std::uint64_t stuck_word = f.stuck ? ~0ull : 0ull;
  const std::uint32_t inj_instr =
      f.pin >= 0 ? prog_.instr_of(f.net) : gate::EvalProgram::kNoInstr;

  s.changed.clear();
  // Interpreted: the retained pre-compilation event loop — per-level
  // buckets over the levelized netlist, fan-ins gathered through the
  // Netlist's per-gate vectors, generic eval_gate dispatch.
  char* queued = s.queued.data();
  auto schedule = [&](std::uint32_t ii) {
    if (queued[ii]) return;
    queued[ii] = 1;
    s.buckets[static_cast<std::size_t>(prog_.instr_level(ii))].push_back(ii);
  };

  const int max_level = prog_.max_level();
  int min_level = max_level + 1;

  const std::uint64_t injected =
      f.pin < 0 ? stuck_word
                : prog_.eval_one_forced(inj_instr, cur, f.pin, stuck_word);
  if (set_net(f.net, injected)) {
    for (const std::uint32_t* p = prog_.fanout_begin(f.net);
         p != prog_.fanout_end(f.net); ++p) {
      schedule(*p);
      min_level = std::min(min_level, prog_.instr_level(*p));
    }
    if (observed[static_cast<std::size_t>(f.net)])
      detect |=
          (injected ^ good[static_cast<std::size_t>(f.net)]) & lane_mask;
  }

  for (int lvl = min_level; lvl <= max_level; ++lvl) {
    auto& bucket = s.buckets[static_cast<std::size_t>(lvl)];
    for (std::size_t qi = 0; qi < bucket.size(); ++qi) {
      const std::uint32_t ii = bucket[qi];
      queued[ii] = 0;
      const NetId id = prog_.out(ii);
      if (f.pin < 0 && id == f.net) continue;
      const Gate& g = nl_->gate(id);
      std::uint64_t in[64];
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        in[i] = cur[static_cast<std::size_t>(g.fanin[i])];
      if (ii == inj_instr) in[static_cast<std::size_t>(f.pin)] = stuck_word;
      const std::uint64_t v =
          gate::Simulator::eval_gate(g.type, in, g.fanin.size());
      if (set_net(id, v)) {
        for (const std::uint32_t* p = prog_.fanout_begin(id);
             p != prog_.fanout_end(id); ++p)
          schedule(*p);
        if (observed[static_cast<std::size_t>(id)])
          detect |= (v ^ good[static_cast<std::size_t>(id)]) & lane_mask;
      }
    }
    bucket.clear();
  }

  for (NetId c : s.changed)
    cur[static_cast<std::size_t>(c)] = good[static_cast<std::size_t>(c)];
  return detect;
}

void FaultSimulator::set_progress(obs::ProgressFn fn,
                                  std::int64_t every_patterns) {
  BIBS_ASSERT(every_patterns > 0);
  progress_ = std::move(fn);
  progress_every_ = every_patterns;
}

void FaultSimulator::set_threads(int threads) {
  BIBS_ASSERT(threads >= 0);
  threads_ = threads;
}

CoverageCurve FaultSimulator::run(const PatternBlockFn& gen,
                                  std::int64_t max_patterns,
                                  std::int64_t stall_limit,
                                  const rt::RunControl& ctl,
                                  const rt::SimCheckpoint* resume) {
  BIBS_SPAN("fault_sim.run");
  BIBS_COUNTER(c_patterns, "fault_sim.patterns");
  BIBS_COUNTER(c_blocks, "fault_sim.blocks");
  BIBS_COUNTER(c_dropped, "fault_sim.faults_dropped");
  BIBS_GAUGE(g_coverage, "fault_sim.coverage");
  BIBS_GAUGE(g_threads, "par.threads");
  BIBS_HISTOGRAM(h_block_det, "fault_sim.block_detections",
                 (std::vector<double>{0, 1, 2, 4, 8, 16, 32, 64}));

  BIBS_GAUGE(g_faults_sim, "fault_sim.faults_simulated");
  BIBS_GAUGE(g_faults_full, "fault_sim.faults_full");
  BIBS_GAUGE_SET(g_faults_sim, faults_.size());
  BIBS_GAUGE_SET(g_faults_full, faults_.full_size() > 0 ? faults_.full_size()
                                                        : faults_.size());

  // Lane-backend geometry of this run: W words = W * 64 patterns per block.
  const std::size_t w = static_cast<std::size_t>(lane_->words);
  const int block_patterns = lane_->lanes;

  par::ThreadPool pool(threads_);
  BIBS_GAUGE_SET(g_threads, pool.threads());
  std::vector<Scratch> scratch(static_cast<std::size_t>(pool.threads()));
  for (Scratch& s : scratch) {
    s.cur.assign(nl_->net_count() * w, 0);
    // The compiled sweep writes changed nets through a raw cursor (each net
    // changes at most once per fault, so net_count bounds the count).
    s.changed.assign(nl_->net_count(), 0);
    s.dirty.assign((prog_.size() + 63) / 64, 0);
    s.queued.assign(prog_.size(), 0);
    s.buckets.assign(static_cast<std::size_t>(prog_.max_level()) + 1, {});
  }

  CoverageCurve curve;
  if (resume) {
    if (resume->detected_at.size() != faults_.size())
      throw DesignError("sim checkpoint fault count (" +
                        std::to_string(resume->detected_at.size()) +
                        ") does not match the fault list (" +
                        std::to_string(faults_.size()) + ")");
    if (resume->patterns_run < 0)
      throw DesignError("sim checkpoint has negative patterns_run");
    if (resume->fault_model != to_string(model_))
      throw DesignError("sim checkpoint fault model '" + resume->fault_model +
                        "' does not match this simulator's model '" +
                        to_string(model_) + "'");
    curve.detected_at = resume->detected_at;
    if (model_ == FaultModel::kTransition) {
      if (resume->patterns_run > 0 &&
          resume->site_prev.size() != faults_.size())
        throw DesignError(
            "sim checkpoint carries no usable site_prev launch state");
      site_prev_ = resume->site_prev;
      site_prev_.resize(faults_.size(), 0);
      have_prev_ = resume->patterns_run > 0;
    }
  } else {
    curve.detected_at.assign(faults_.size(), CoverageCurve::kUndetected);
    if (model_ == FaultModel::kTransition) {
      site_prev_.assign(faults_.size(), 0);
      have_prev_ = false;
    }
  }

  std::vector<std::size_t> live;
  live.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i)
    if (curve.detected_at[i] == CoverageCurve::kUndetected) live.push_back(i);

  const std::size_t nin = nl_->inputs().size();
  // One 64-lane generator sub-block, scattered into the W-strided in_words.
  std::vector<std::uint64_t> gen_words(std::max<std::size_t>(nin, 1));
  std::vector<std::uint64_t> in_words(std::max<std::size_t>(nin, 1) * w, 0);
  std::vector<std::uint64_t> lane_mask(w, 0);
  std::vector<std::uint64_t> block_det;  // W words per live fault, one block
  block_det.reserve(live.size() * w);
  std::int64_t base = resume ? resume->patterns_run : 0;
  std::int64_t last_new_detection = 0;
  for (std::int64_t d : curve.detected_at)
    if (d != CoverageCurve::kUndetected)
      last_new_detection = std::max(last_new_detection, d);
  std::int64_t next_progress = base + progress_every_;

  const auto emit_progress = [&] {
    obs::Progress p;
    p.phase = "fault_sim";
    p.done = base;
    p.total = max_patterns == std::numeric_limits<std::int64_t>::max()
                  ? -1
                  : max_patterns;
    p.faults_live = static_cast<std::int64_t>(live.size());
    p.faults_detected =
        static_cast<std::int64_t>(faults_.size() - live.size());
    p.coverage = faults_.size() == 0
                     ? 1.0
                     : static_cast<double>(p.faults_detected) /
                           static_cast<double>(faults_.size());
    progress_(p);
  };

  bool gen_done = false;
  while (!gen_done && base < max_patterns && !live.empty()) {
    if (const rt::RunStatus st = ctl.interruption(base);
        st != rt::RunStatus::kFinished) {
      curve.status = st;
      break;
    }
    // Gather up to W generator sub-blocks (64 lanes each, called in
    // ascending pattern order — the stream is identical at every width). A
    // short sub-block closes this block so lane indices keep the invariant
    // pattern == base + word * 64 + bit.
    const std::int64_t wanted =
        std::min<std::int64_t>(block_patterns, max_patterns - base);
    int lanes = 0;
    for (std::size_t j = 0; static_cast<std::int64_t>(j) * gate::kLanesPerWord
                            < wanted; ++j) {
      int sub = gen(gen_words.data());
      if (sub <= 0) {
        gen_done = true;
        break;
      }
      sub = static_cast<int>(std::min<std::int64_t>(sub, wanted - lanes));
      for (std::size_t i = 0; i < nin; ++i) in_words[i * w + j] = gen_words[i];
      lanes += sub;
      if (sub < gate::kLanesPerWord) break;
    }
    if (lanes <= 0) break;
    // Zero the ungathered tail words so short blocks stay deterministic
    // (their lanes are masked out of detection either way).
    for (std::size_t j = (static_cast<std::size_t>(lanes) +
                          gate::kLanesPerWord - 1) / gate::kLanesPerWord;
         j < w; ++j)
      for (std::size_t i = 0; i < nin; ++i) in_words[i * w + j] = 0;
    for (std::size_t j = 0; j < w; ++j) {
      const std::int64_t rem =
          lanes - static_cast<std::int64_t>(j) * gate::kLanesPerWord;
      lane_mask[j] = rem >= gate::kLanesPerWord ? ~0ull
                     : rem <= 0                 ? 0
                               : ((1ull << rem) - 1);
    }

    good_eval(in_words.data());

    // Fan the still-undetected faults out across the pool: chunk boundaries
    // depend only on live.size() and the thread count, each chunk writes its
    // per-fault detection words into disjoint block_det slots, and the merge
    // below walks them in fault-list order — so curve/stall state evolves
    // exactly as in a serial run whatever the thread count.
    block_det.resize(live.size() * w);
    pool.parallel_for_chunks(
        live.size(), [&](int chunk, std::size_t b, std::size_t e) {
          if (b == e) return;
          Scratch& s = scratch[static_cast<std::size_t>(chunk)];
          s.cur = good_;
          if (backend_ == EvalBackend::kCompiled) {
            const gate::LanePropagateCtx ctx{
                prog_.view(),     prog_.size(),   good_.data(),
                s.cur.data(),     observed_.data(), s.dirty.data(),
                lane_mask.data()};
            for (std::size_t li = b; li < e; ++li) {
              const Fault& f = faults_[live[li]];
              const gate::LaneFaultSite site{
                  f.net, f.pin,
                  f.pin >= 0 ? prog_.instr_of(f.net)
                             : gate::EvalProgram::kNoInstr,
                  f.stuck};
              lane_->propagate(ctx, site, s.changed.data(),
                               block_det.data() + li * w);
            }
          } else {
            for (std::size_t li = b; li < e; ++li)
              block_det[li] = propagate(faults_[live[li]], lanes, s);
          }
        });

    if (model_ == FaultModel::kTransition) {
      // Two-pattern gating: a transition fires on pattern p only if the
      // site's fault-free value on p-1 (the launch word: this block's good
      // word shifted up one bit, carrying the previous block's last value
      // in) equals the initialization value — 0 for slow-to-rise, 1 for
      // slow-to-fall. The very first pattern of a run has no launch side
      // and is masked off entirely.
      const std::int64_t last = lanes - 1;
      for (std::size_t li = 0; li < live.size(); ++li) {
        const std::size_t fi = live[li];
        const Fault& f = faults_[fi];
        const std::uint64_t* g =
            good_.data() + static_cast<std::size_t>(f.net) * w;
        std::uint64_t* det = block_det.data() + li * w;
        std::uint64_t carry = site_prev_[fi] ? 1ull : 0ull;
        for (std::size_t j = 0; j < w; ++j) {
          const std::uint64_t launch = (g[j] << 1) | carry;
          carry = g[j] >> 63;
          det[j] &= f.stuck ? launch : ~launch;
        }
        if (!have_prev_) det[0] &= ~1ull;
        site_prev_[fi] =
            static_cast<std::uint8_t>((g[static_cast<std::size_t>(last) /
                                         gate::kLanesPerWord] >>
                                       (last % gate::kLanesPerWord)) &
                                      1);
      }
      have_prev_ = true;
    }

    std::size_t keep = 0;
    const std::size_t live_before = live.size();
    for (std::size_t li = 0; li < live.size(); ++li) {
      const std::size_t fi = live[li];
      const std::uint64_t* det = block_det.data() + li * w;
      std::size_t jw = 0;
      while (jw < w && det[jw] == 0) ++jw;
      if (jw < w) {
        // Words ascending, bits ascending — the first detecting pattern,
        // which is the same index every lane width computes.
        curve.detected_at[fi] =
            base + static_cast<std::int64_t>(jw) * gate::kLanesPerWord +
            std::countr_zero(det[jw]);
        last_new_detection = curve.detected_at[fi];
      } else {
        live[keep++] = fi;
      }
    }
    live.resize(keep);
    base += lanes;

    BIBS_COUNTER_ADD(c_patterns, lanes);
    BIBS_COUNTER_ADD(c_blocks, 1);
    BIBS_COUNTER_ADD(c_dropped, live_before - keep);
    BIBS_HISTOGRAM_OBSERVE(h_block_det, live_before - keep);
    if (progress_ && base >= next_progress) {
      emit_progress();
      next_progress = base + progress_every_;
    }

    if (base - last_new_detection > stall_limit) break;
  }
  curve.patterns_run = base;
  BIBS_GAUGE_SET(g_coverage, curve.coverage());
  if (progress_) emit_progress();
  return curve;
}

CoverageCurve FaultSimulator::run_random(Xoshiro256& rng,
                                         std::int64_t max_patterns,
                                         std::int64_t stall_limit,
                                         const rt::RunControl& ctl,
                                         const rt::SimCheckpoint* resume) {
  if (resume && resume->has_rng) resume->restore_rng(rng);
  const std::size_t nin = nl_->inputs().size();
  return run(
      [&](std::uint64_t* words) {
        for (std::size_t i = 0; i < nin; ++i) words[i] = rng.next();
        return gate::kLanesPerWord;
      },
      max_patterns, stall_limit, ctl, resume);
}

CoverageCurve FaultSimulator::run_weighted(Xoshiro256& rng,
                                           double one_probability,
                                           std::int64_t max_patterns,
                                           std::int64_t stall_limit,
                                           const rt::RunControl& ctl,
                                           const rt::SimCheckpoint* resume) {
  BIBS_ASSERT(one_probability > 0.0 && one_probability < 1.0);
  if (resume && resume->has_rng) resume->restore_rng(rng);
  const std::size_t nin = nl_->inputs().size();
  return run(
      [&, one_probability](std::uint64_t* words) {
        for (std::size_t i = 0; i < nin; ++i) {
          std::uint64_t w = 0;
          for (int b = 0; b < gate::kLanesPerWord; ++b)
            if (rng.next_double() < one_probability) w |= 1ull << b;
          words[i] = w;
        }
        return gate::kLanesPerWord;
      },
      max_patterns, stall_limit, ctl, resume);
}

CoverageCurve FaultSimulator::run_exhaustive(const rt::RunControl& ctl,
                                             const rt::SimCheckpoint* resume) {
  const std::size_t nin = nl_->inputs().size();
  BIBS_ASSERT(nin <= 30);
  const std::int64_t total = 1ll << nin;
  std::int64_t next = resume ? resume->patterns_run : 0;
  return run(
      [&](std::uint64_t* words) {
        const int lanes = static_cast<int>(
            std::min<std::int64_t>(gate::kLanesPerWord, total - next));
        if (lanes <= 0) return 0;
        for (std::size_t i = 0; i < nin; ++i) {
          std::uint64_t w = 0;
          for (int b = 0; b < lanes; ++b)
            if (((next + b) >> i) & 1) w |= 1ull << b;
          words[i] = w;
        }
        next += lanes;
        return lanes;
      },
      total, std::numeric_limits<std::int64_t>::max(), ctl, resume);
}

rt::SimCheckpoint FaultSimulator::make_checkpoint(const CoverageCurve& curve,
                                                  const Xoshiro256* rng) const {
  BIBS_ASSERT(curve.detected_at.size() == faults_.size());
  rt::SimCheckpoint ck;
  ck.patterns_run = curve.patterns_run;
  ck.detected_at = curve.detected_at;
  if (rng) ck.capture_rng(*rng);
  ck.fault_model = to_string(model_);
  if (model_ == FaultModel::kTransition)
    ck.site_prev.assign(site_prev_.begin(), site_prev_.end());
  return ck;
}

bool FaultSimulator::detects_naive(const Fault& f,
                                   const std::vector<bool>& pattern) const {
  BIBS_ASSERT(pattern.size() == nl_->inputs().size());
  // Full serial resimulation of good and faulty circuits.
  auto simulate = [&](bool faulty) {
    std::vector<std::uint64_t> val(nl_->net_count(), 0);
    const auto& ins = nl_->inputs();
    for (std::size_t i = 0; i < ins.size(); ++i)
      val[static_cast<std::size_t>(ins[i])] = pattern[i] ? 1 : 0;
    for (NetId id = 0; static_cast<std::size_t>(id) < nl_->net_count(); ++id)
      if (nl_->gate(id).type == GateType::kConst1)
        val[static_cast<std::size_t>(id)] = 1;
    for (NetId id : topo_) {
      const Gate& g = nl_->gate(id);
      std::uint64_t in[64];
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        in[i] = val[static_cast<std::size_t>(g.fanin[i])];
      if (faulty && f.pin >= 0 && id == f.net)
        in[static_cast<std::size_t>(f.pin)] = f.stuck ? 1 : 0;
      val[static_cast<std::size_t>(id)] =
          gate::Simulator::eval_gate(g.type, in, g.fanin.size()) & 1;
    }
    if (faulty && f.pin < 0) {
      // Output stem fault: force and repropagate downstream levels.
      val[static_cast<std::size_t>(f.net)] = f.stuck ? 1 : 0;
      for (NetId id : topo_) {
        if (prog_.level(id) <= prog_.level(f.net)) continue;
        const Gate& g = nl_->gate(id);
        std::uint64_t in[64];
        for (std::size_t i = 0; i < g.fanin.size(); ++i)
          in[i] = val[static_cast<std::size_t>(g.fanin[i])];
        val[static_cast<std::size_t>(id)] =
            gate::Simulator::eval_gate(g.type, in, g.fanin.size()) & 1;
      }
    }
    return val;
  };
  const auto good = simulate(false);
  const auto bad = simulate(true);
  for (NetId o : nl_->outputs())
    if ((good[static_cast<std::size_t>(o)] ^
         bad[static_cast<std::size_t>(o)]) &
        1)
      return true;
  return false;
}

bool FaultSimulator::good_value_naive(NetId net,
                                      const std::vector<bool>& pattern) const {
  BIBS_ASSERT(pattern.size() == nl_->inputs().size());
  std::vector<std::uint64_t> val(nl_->net_count(), 0);
  const auto& ins = nl_->inputs();
  for (std::size_t i = 0; i < ins.size(); ++i)
    val[static_cast<std::size_t>(ins[i])] = pattern[i] ? 1 : 0;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl_->net_count(); ++id)
    if (nl_->gate(id).type == GateType::kConst1)
      val[static_cast<std::size_t>(id)] = 1;
  for (NetId id : topo_) {
    const Gate& g = nl_->gate(id);
    std::uint64_t in[64];
    for (std::size_t i = 0; i < g.fanin.size(); ++i)
      in[i] = val[static_cast<std::size_t>(g.fanin[i])];
    val[static_cast<std::size_t>(id)] =
        gate::Simulator::eval_gate(g.type, in, g.fanin.size()) & 1;
  }
  return (val[static_cast<std::size_t>(net)] & 1) != 0;
}

bool FaultSimulator::detects_naive_transition(
    const Fault& f, const std::vector<bool>& launch,
    const std::vector<bool>& capture) const {
  BIBS_ASSERT(f.pin < 0);  // transition faults are stem-only
  // Initialization: the launch pattern must set the site to the value the
  // slow edge departs from (0 for slow-to-rise, 1 for slow-to-fall)...
  if (good_value_naive(f.net, launch) != f.stuck) return false;
  // ...and the capture pattern must then detect the frozen value, which is
  // exactly the corresponding stuck-at detection condition.
  return detects_naive(f, capture);
}

}  // namespace bibs::fault
