#pragma once
// Parallel-pattern single-fault-propagation (PPSFP) stuck-at fault simulator.
//
// Good-circuit values for a block of W*64 patterns (W = the active
// gate::LaneBackend's word count; 64 patterns on scalar64) are computed with
// one levelized sweep; each still-undetected fault is then injected and
// propagated event-driven through its fanout cone only. Detected faults are
// dropped. This is the engine behind the paper's Table 2 coverage numbers.
//
// Lane widths: the compiled backend runs on the lane backend captured at
// construction (gate::active_lane_backend(); override per instance with
// set_lane_backend). detected_at curves are bit-identical across widths —
// a still-live fault's first detecting pattern inside a wider block is its
// globally first detecting pattern, and the pattern stream is
// width-invariant because the generator fills 64 lanes per call in scalar
// order. patterns_run MAY differ across widths when every fault is detected
// (or the stall limit fires) mid-block, because the loop only re-checks
// liveness at block boundaries; width-identity gates therefore compare
// curves on runs that exhaust their pattern budget.
//
// The simulator operates on purely combinational netlists — for sequential
// balanced kernels, pass gate::combinational_kernel() output (valid by the
// BALLAST single-pattern-testability result).
//
// Multi-threading (set_threads / BIBS_THREADS): the good-circuit sweep of
// each 64-pattern block stays a single shared pass; the still-undetected
// fault list is then partitioned into deterministic contiguous chunks and
// each worker propagates its chunk against private scratch state. Per-fault
// detection words are merged on the calling thread in fault-list order, so
// detected_at, the stall decision, checkpoints and resume are bit-identical
// for any thread count.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/prng.hpp"
#include "fault/fault.hpp"
#include "gate/lanes.hpp"
#include "gate/netlist.hpp"
#include "gate/program.hpp"
#include "obs/progress.hpp"
#include "rt/checkpoint.hpp"
#include "rt/control.hpp"

namespace bibs::fault {

/// Gate-evaluation backend of the fault simulator. kCompiled runs on the
/// flat gate::EvalProgram instruction stream (the default); kInterpreted is
/// the retained pre-compilation hot loop — per-gate fan-in vectors, generic
/// eval_gate switch, full-net kConst1 rescan per block — kept bit-identical
/// so tests and bench_kernel can gate the compiled path against it.
enum class EvalBackend { kCompiled, kInterpreted };

/// Per-fault first-detection record plus helpers to answer "how many patterns
/// to reach X% of detected faults" — the paper's rows 5-8 of Table 2.
struct CoverageCurve {
  static constexpr std::int64_t kUndetected = -1;

  /// First-detection pattern index (0-based) per fault; kUndetected if never.
  std::vector<std::int64_t> detected_at;
  /// Number of patterns that were simulated in total.
  std::int64_t patterns_run = 0;
  /// How the run ended; anything but kFinished marks a partial curve that
  /// can be checkpointed (make_checkpoint) and resumed later.
  rt::RunStatus status = rt::RunStatus::kFinished;

  std::size_t total_faults() const { return detected_at.size(); }
  std::size_t detected_count() const;
  /// Detected / total, in [0, 1].
  double coverage() const;
  /// Smallest pattern count that detects ceil(fraction * detected_count())
  /// of the faults that were ever detected. fraction must lie in (0, 1]
  /// (asserted): at exactly 1.0 this is the pattern count at which the
  /// *last* ever-detected fault fell, i.e. last detection index + 1. When
  /// no fault was ever detected there is nothing to cover and the result is
  /// 0 for every valid fraction.
  std::int64_t patterns_for_fraction(double fraction) const;
  /// Coverage (of total faults) after the first `patterns` patterns.
  double coverage_after(std::int64_t patterns) const;

  /// Index of the first fault whose first-detection record differs from
  /// `other`'s (differing lengths compare at the shorter length's end);
  /// -1 when the detection records are identical. The primitive the
  /// bibs::check curve-identity oracles localize divergences with.
  std::ptrdiff_t first_difference(const CoverageCurve& other) const;
};

class FaultSimulator {
 public:
  /// The netlist must be combinational (no DFFs) and validated. Under
  /// FaultModel::kTransition the fault list must be stem-only (e.g.
  /// FaultList::transition) and detection becomes two-pattern at-speed:
  /// pattern p detects a slow-to-rise (slow-to-fall) fault iff p detects the
  /// corresponding stuck-at-0 (stuck-at-1) fault AND the site's fault-free
  /// value on pattern p-1 — the launch word, i.e. the previous capture word —
  /// was 0 (1). The launch mask is computed from the shared good-circuit
  /// block by a one-bit shift with inter-block carry, so the SIMD propagate
  /// kernels are untouched and detected_at curves stay width- and
  /// thread-invariant; pattern 0 has no launch side and never detects.
  FaultSimulator(const gate::Netlist& nl, FaultList faults,
                 EvalBackend backend = EvalBackend::kCompiled,
                 FaultModel model = FaultModel::kStuckAt);

  const gate::Netlist& netlist() const { return *nl_; }
  const FaultList& faults() const { return faults_; }
  FaultModel fault_model() const { return model_; }

  /// Fills 64 pattern lanes: words[i] is the word for primary input i
  /// (nl.inputs()[i]); returns the number of valid lanes (1..64); returning
  /// 0 ends the run early. On a wide backend run() calls the generator up
  /// to W times per block — in ascending pattern order, exactly as the
  /// scalar64 backend would — and a short return (< 64 lanes) closes the
  /// block, so the stream a generator produces is width-invariant.
  using PatternBlockFn = std::function<int(std::uint64_t* words)>;

  /// Runs up to max_patterns from the generator. Stops early when all faults
  /// are detected or when `stall_limit` consecutive patterns bring no new
  /// detection. `ctl` is polled once per block (W*64 patterns): an
  /// interrupted run stops within one block and returns a partial curve
  /// whose `status` says why. `resume` (when non-null) continues a
  /// checkpointed run:
  /// detection state and pattern position are restored and, driven by the
  /// same generator stream, the final curve is bit-exactly the one an
  /// uninterrupted run would have produced.
  CoverageCurve run(const PatternBlockFn& gen, std::int64_t max_patterns,
                    std::int64_t stall_limit =
                        std::numeric_limits<std::int64_t>::max(),
                    const rt::RunControl& ctl = {},
                    const rt::SimCheckpoint* resume = nullptr);

  /// Uniform random patterns from `rng`. On resume, a PRNG state captured
  /// in the checkpoint is restored into `rng` first.
  CoverageCurve run_random(Xoshiro256& rng, std::int64_t max_patterns,
                           std::int64_t stall_limit =
                               std::numeric_limits<std::int64_t>::max(),
                           const rt::RunControl& ctl = {},
                           const rt::SimCheckpoint* resume = nullptr);

  /// Weighted random patterns: every input bit is 1 with probability
  /// `one_probability` (the classic countermeasure to random-pattern-
  /// resistant faults, e.g. long AND/carry chains that want mostly-1
  /// operands). one_probability in (0, 1). Resume as in run_random.
  CoverageCurve run_weighted(Xoshiro256& rng, double one_probability,
                             std::int64_t max_patterns,
                             std::int64_t stall_limit =
                                 std::numeric_limits<std::int64_t>::max(),
                             const rt::RunControl& ctl = {},
                             const rt::SimCheckpoint* resume = nullptr);

  /// All 2^n input patterns (n = number of PIs, n <= 30): the ground truth
  /// for which faults are detectable at all.
  CoverageCurve run_exhaustive(const rt::RunControl& ctl = {},
                               const rt::SimCheckpoint* resume = nullptr);

  /// Snapshot of a (partial) run for later resume; captures `rng` when the
  /// curve came from run_random / run_weighted.
  rt::SimCheckpoint make_checkpoint(const CoverageCurve& curve,
                                    const Xoshiro256* rng = nullptr) const;

  /// Reference implementation: serial single-pattern, full re-simulation.
  /// Used to cross-check the event-driven engine in tests.
  bool detects_naive(const Fault& f, const std::vector<bool>& pattern) const;

  /// Reference two-pattern transition detection: `capture` detects the
  /// transition fault `f` iff the site's fault-free value under `launch`
  /// equals the initialization value (0 for slow-to-rise, 1 for
  /// slow-to-fall) and `capture` detects the corresponding stuck-at fault.
  bool detects_naive_transition(const Fault& f,
                                const std::vector<bool>& launch,
                                const std::vector<bool>& capture) const;

  /// Installs a progress callback invoked from run() roughly every
  /// `every_patterns` simulated patterns and once more when the run ends.
  /// Pass an empty function to disable. The cadence is block-granular
  /// (W*64-pattern blocks), never the inner fault loop; callbacks always
  /// fire on the thread that called run(), regardless of set_threads.
  void set_progress(obs::ProgressFn fn, std::int64_t every_patterns = 8192);

  /// Overrides the lane backend captured at construction (bench matrices,
  /// width-identity tests). Throws DesignError when the backend is not
  /// CPU-supported, or when this simulator uses EvalBackend::kInterpreted
  /// (the retained golden path is scalar by definition) and `backend` is
  /// wider than one word. Resets good-value state; call before run().
  void set_lane_backend(const gate::LaneBackend* backend);
  const gate::LaneBackend& lane_backend() const { return *lane_; }
  /// Patterns per block under the current lane backend (W * 64).
  int block_lanes() const { return lane_->lanes; }

  /// Worker threads for the per-fault propagation loop. 0 (the default)
  /// resolves BIBS_THREADS and falls back to serial; results are
  /// bit-identical for every value (see the header comment).
  void set_threads(int threads);

 private:
  /// Per-worker mutable state for propagate(); one instance per pool chunk
  /// so workers never share write access.
  struct Scratch {
    std::vector<std::uint64_t> cur;
    std::vector<gate::NetId> changed;
    // Compiled backend: one dirty bit per instruction. Consumer instruction
    // indices always exceed producer indices (the stream is in topo order),
    // so an ascending bit scan IS a topological event order — no levels, no
    // queues. All bits are zero again when propagate() returns.
    std::vector<std::uint64_t> dirty;
    // Interpreted backend: the retained per-level bucket scheduler.
    std::vector<char> queued;  // per instruction
    std::vector<std::vector<std::uint32_t>> buckets;  // instr idx, per level
  };

  void good_eval(const std::uint64_t* in_words);
  /// Interpreted (scalar-only) propagation; the compiled path dispatches to
  /// lane_->propagate instead.
  std::uint64_t propagate(const Fault& f, int valid_lanes, Scratch& s) const;
  void reset_good_values();

  /// Fault-free value of net `net` under `pattern` (serial resimulation).
  bool good_value_naive(gate::NetId net,
                        const std::vector<bool>& pattern) const;

  const gate::Netlist* nl_;
  FaultList faults_;
  EvalBackend backend_;
  FaultModel model_ = FaultModel::kStuckAt;
  const gate::LaneBackend* lane_;
  // Transition model: per fault, the site's fault-free value on the last
  // pattern of the previous block (launch side of the next block's first
  // pattern). have_prev_ is false until the first block completes — pattern
  // 0 has no launch pattern.
  std::vector<std::uint8_t> site_prev_;
  bool have_prev_ = false;
  obs::ProgressFn progress_;
  std::int64_t progress_every_ = 8192;
  int threads_ = 0;  // 0 = BIBS_THREADS, else serial

  // Compiled instruction stream; also the single source of levels and
  // fanout (flat CSR) for the event-driven propagation, whatever the
  // backend. topo_ is retained for the interpreted sweeps.
  gate::EvalProgram prog_;
  std::vector<gate::NetId> topo_;
  std::vector<char> observed_;  // per net: is a PO

  // Good-circuit values of the current block (shared, read-only during the
  // parallel fault loop). W-strided: net n owns words [n*W, n*W + W).
  std::vector<std::uint64_t> good_;
};

}  // namespace bibs::fault
