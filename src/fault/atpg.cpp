#include "fault/atpg.hpp"

#include <algorithm>

namespace bibs::fault {

using gate::Gate;
using gate::GateType;
using gate::NetId;

Podem::Podem(const gate::Netlist& nl) : nl_(&nl), topo_(nl.comb_topo_order()) {
  BIBS_ASSERT(nl.dffs().empty());
  pi_index_.assign(nl.net_count(), -1);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    pi_index_[static_cast<std::size_t>(nl.inputs()[i])] = static_cast<int>(i);
  pi_assign_.assign(nl.inputs().size(), TV::kX);
  good_.assign(nl.net_count(), TV::kX);
  faulty_.assign(nl.net_count(), TV::kX);
  fanout_.assign(nl.net_count(), {});
  for (gate::NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id)
    for (gate::NetId f : nl.gate(id).fanin)
      fanout_[static_cast<std::size_t>(f)].push_back(id);
  is_po_.assign(nl.net_count(), 0);
  for (gate::NetId o : nl.outputs()) is_po_[static_cast<std::size_t>(o)] = 1;
}

bool Podem::x_path_exists(const Fault& f) const {
  // Optimistic check: can a D value still reach a primary output through
  // nets that are undecided in at least one machine? If not, this branch is
  // a dead end no matter how the remaining PIs are set.
  std::vector<char> mark(nl_->net_count(), 0);
  std::vector<NetId> queue;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl_->net_count(); ++id) {
    const TV g = good_[static_cast<std::size_t>(id)];
    const TV fv = faulty_[static_cast<std::size_t>(id)];
    if (g != TV::kX && fv != TV::kX && g != fv) {
      if (is_po_[static_cast<std::size_t>(id)]) return true;
      mark[static_cast<std::size_t>(id)] = 1;
      queue.push_back(id);
    }
  }
  // For a pin fault the D sits between the stem and the gate input; the
  // faulted gate's output is where it can first surface on a net.
  if (f.pin >= 0 && !mark[static_cast<std::size_t>(f.net)]) {
    const TV g = good_[static_cast<std::size_t>(f.net)];
    const TV fv = faulty_[static_cast<std::size_t>(f.net)];
    if (g == TV::kX || fv == TV::kX) {
      if (is_po_[static_cast<std::size_t>(f.net)]) return true;
      mark[static_cast<std::size_t>(f.net)] = 1;
      queue.push_back(f.net);
    }
  }
  while (!queue.empty()) {
    const NetId v = queue.back();
    queue.pop_back();
    for (NetId c : fanout_[static_cast<std::size_t>(v)]) {
      if (mark[static_cast<std::size_t>(c)]) continue;
      const TV g = good_[static_cast<std::size_t>(c)];
      const TV f = faulty_[static_cast<std::size_t>(c)];
      // A gate can still pass the effect only if its output is undecided in
      // some machine (a decided-equal output blocks it).
      if (g != TV::kX && f != TV::kX) continue;
      if (is_po_[static_cast<std::size_t>(c)]) return true;
      mark[static_cast<std::size_t>(c)] = 1;
      queue.push_back(c);
    }
  }
  return false;
}

Podem::TV Podem::eval_tv(GateType t, const TV* in, std::size_t n) {
  auto inv = [](TV v) {
    return v == TV::kX ? TV::kX : (v == TV::k0 ? TV::k1 : TV::k0);
  };
  switch (t) {
    case GateType::kBuf: return in[0];
    case GateType::kNot: return inv(in[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      bool any_x = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (in[i] == TV::k0) return t == GateType::kAnd ? TV::k0 : TV::k1;
        if (in[i] == TV::kX) any_x = true;
      }
      if (any_x) return TV::kX;
      return t == GateType::kAnd ? TV::k1 : TV::k0;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any_x = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (in[i] == TV::k1) return t == GateType::kOr ? TV::k1 : TV::k0;
        if (in[i] == TV::kX) any_x = true;
      }
      if (any_x) return TV::kX;
      return t == GateType::kOr ? TV::k0 : TV::k1;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = t == GateType::kXnor;
      for (std::size_t i = 0; i < n; ++i) {
        if (in[i] == TV::kX) return TV::kX;
        parity ^= in[i] == TV::k1;
      }
      return parity ? TV::k1 : TV::k0;
    }
    default: BIBS_ASSERT(false && "eval_tv on a non-combinational gate");
  }
  return TV::kX;
}

void Podem::imply(const Fault& f) {
  // Full three-valued forward simulation of both machines.
  for (NetId id = 0; static_cast<std::size_t>(id) < nl_->net_count(); ++id) {
    const Gate& g = nl_->gate(id);
    if (g.type == GateType::kInput) {
      const TV v = pi_assign_[static_cast<std::size_t>(
          pi_index_[static_cast<std::size_t>(id)])];
      good_[static_cast<std::size_t>(id)] = v;
      faulty_[static_cast<std::size_t>(id)] = v;
    } else if (g.type == GateType::kConst0) {
      good_[static_cast<std::size_t>(id)] = TV::k0;
      faulty_[static_cast<std::size_t>(id)] = TV::k0;
    } else if (g.type == GateType::kConst1) {
      good_[static_cast<std::size_t>(id)] = TV::k1;
      faulty_[static_cast<std::size_t>(id)] = TV::k1;
    }
  }
  // Stem fault forces the faulty value even on a PI/const site.
  if (f.pin < 0)
    faulty_[static_cast<std::size_t>(f.net)] = f.stuck ? TV::k1 : TV::k0;

  TV gin[64], fin[64];
  for (NetId id : topo_) {
    const Gate& g = nl_->gate(id);
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      gin[i] = good_[static_cast<std::size_t>(g.fanin[i])];
      fin[i] = faulty_[static_cast<std::size_t>(g.fanin[i])];
    }
    if (f.pin >= 0 && id == f.net)
      fin[static_cast<std::size_t>(f.pin)] = f.stuck ? TV::k1 : TV::k0;
    good_[static_cast<std::size_t>(id)] =
        eval_tv(g.type, gin, g.fanin.size());
    faulty_[static_cast<std::size_t>(id)] =
        (f.pin < 0 && id == f.net)
            ? (f.stuck ? TV::k1 : TV::k0)
            : eval_tv(g.type, fin, g.fanin.size());
  }
}

bool Podem::detected_at_po() const {
  for (NetId o : nl_->outputs()) {
    const TV g = good_[static_cast<std::size_t>(o)];
    const TV f = faulty_[static_cast<std::size_t>(o)];
    if (g != TV::kX && f != TV::kX && g != f) return true;
  }
  return false;
}

bool Podem::fault_excited(const Fault& f) const {
  // The composite value at the fault site is D/D'.
  const NetId site =
      f.pin < 0 ? f.net : nl_->gate(f.net).fanin[static_cast<std::size_t>(
                              f.pin)];
  const TV g = good_[static_cast<std::size_t>(site)];
  return g != TV::kX && (g == TV::k1) != f.stuck;
}

bool Podem::objective(const Fault& f, Objective* out) const {
  if (!fault_excited(f)) {
    // Try to set the fault site to the opposite of the stuck value.
    const NetId site =
        f.pin < 0 ? f.net : nl_->gate(f.net).fanin[static_cast<std::size_t>(
                                f.pin)];
    const TV g = good_[static_cast<std::size_t>(site)];
    if (g != TV::kX) return false;  // definitely equal to stuck: dead end
    out->net = site;
    out->value = !f.stuck;
    return true;
  }
  // D-frontier: a gate whose output is still X in some machine but has a
  // D/D' input; objective = non-controlling value on one X input. For a pin
  // fault the faulted gate itself is a frontier gate once excited (the D
  // lives on the pin, not on any net).
  for (NetId id : topo_) {
    const Gate& g = nl_->gate(id);
    const TV og = good_[static_cast<std::size_t>(id)];
    const TV of = faulty_[static_cast<std::size_t>(id)];
    if (og != TV::kX && of != TV::kX) continue;
    bool has_d = f.pin >= 0 && id == f.net;
    for (NetId in : g.fanin) {
      if (has_d) break;
      const TV a = good_[static_cast<std::size_t>(in)];
      const TV b = faulty_[static_cast<std::size_t>(in)];
      if (a != TV::kX && b != TV::kX && a != b) has_d = true;
    }
    if (!has_d) continue;
    // Pick a settable side input: one whose good-machine value is still X
    // (a net with a decided good value cannot be re-justified).
    for (NetId in : g.fanin) {
      if (good_[static_cast<std::size_t>(in)] != TV::kX) continue;
      out->net = in;
      switch (g.type) {
        case GateType::kAnd:
        case GateType::kNand: out->value = true; break;
        case GateType::kOr:
        case GateType::kNor: out->value = false; break;
        default: out->value = false; break;  // XOR-family: either works
      }
      return true;
    }
  }
  return false;  // empty D-frontier: backtrack
}

gate::NetId Podem::backtrace(Objective obj, bool* pi_value) const {
  NetId net = obj.net;
  bool v = obj.value;
  for (;;) {
    const Gate& g = nl_->gate(net);
    if (g.type == GateType::kInput) {
      *pi_value = v;
      return net;
    }
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1)
      return gate::kNoNet;  // cannot justify through a constant
    // Choose an X input and adjust the wanted value through the gate.
    NetId next = gate::kNoNet;
    for (NetId in : g.fanin)
      if (good_[static_cast<std::size_t>(in)] == TV::kX) {
        next = in;
        break;
      }
    if (next == gate::kNoNet) return gate::kNoNet;
    switch (g.type) {
      case GateType::kBuf: break;
      case GateType::kNot: v = !v; break;
      case GateType::kAnd: break;              // out v needs input v
      case GateType::kNand: v = !v; break;
      case GateType::kOr: break;
      case GateType::kNor: v = !v; break;
      case GateType::kXor:
      case GateType::kXnor: {
        // needed = v xor (parity of definite inputs) xor (inversion).
        bool needed = v ^ (g.type == GateType::kXnor);
        for (NetId in : g.fanin) {
          const TV a = good_[static_cast<std::size_t>(in)];
          if (a == TV::k1) needed = !needed;
        }
        v = needed;
        break;
      }
      default: return gate::kNoNet;
    }
    net = next;
  }
}

AtpgResult Podem::generate(const Fault& f, int max_backtracks) {
  std::fill(pi_assign_.begin(), pi_assign_.end(), TV::kX);

  struct Decision {
    NetId pi;
    bool value;
    bool flipped;
  };
  std::vector<Decision> stack;
  AtpgResult res;

  for (;;) {
    imply(f);
    if (detected_at_po()) {
      res.status = AtpgStatus::kDetected;
      res.pattern.assign(nl_->inputs().size(), false);
      for (std::size_t i = 0; i < nl_->inputs().size(); ++i)
        if (pi_assign_[i] == TV::k1) res.pattern[i] = true;
      return res;
    }

    // Hard dead ends: fault can no longer be excited, or the fault effect
    // can no longer reach any output.
    bool dead = false;
    if (!fault_excited(f)) {
      const NetId site =
          f.pin < 0 ? f.net
                    : nl_->gate(f.net).fanin[static_cast<std::size_t>(f.pin)];
      if (good_[static_cast<std::size_t>(site)] != TV::kX) dead = true;
    } else if (!x_path_exists(f)) {
      dead = true;
    }

    Objective obj;
    NetId pi = gate::kNoNet;
    bool v = false;
    if (!dead) {
      if (objective(f, &obj)) pi = backtrace(obj, &v);
      if (pi == gate::kNoNet) {
        // Guidance failed but the branch is still alive: fall back to the
        // first unassigned PI so the decision tree stays complete.
        for (std::size_t i = 0; i < pi_assign_.size(); ++i)
          if (pi_assign_[i] == TV::kX) {
            pi = nl_->inputs()[i];
            v = false;
            break;
          }
      }
    }

    if (pi != gate::kNoNet) {
      stack.push_back({pi, v, false});
      pi_assign_[static_cast<std::size_t>(
          pi_index_[static_cast<std::size_t>(pi)])] = v ? TV::k1 : TV::k0;
      continue;
    }

    // Dead end: backtrack.
    bool resumed = false;
    while (!stack.empty()) {
      Decision d = stack.back();
      stack.pop_back();
      if (!d.flipped) {
        ++res.backtracks;
        if (res.backtracks > max_backtracks) {
          res.status = AtpgStatus::kAborted;
          return res;
        }
        d.value = !d.value;
        d.flipped = true;
        stack.push_back(d);
        pi_assign_[static_cast<std::size_t>(
            pi_index_[static_cast<std::size_t>(d.pi)])] =
            d.value ? TV::k1 : TV::k0;
        resumed = true;
        break;
      }
      pi_assign_[static_cast<std::size_t>(
          pi_index_[static_cast<std::size_t>(d.pi)])] = TV::kX;
    }
    if (!resumed) {
      res.status = AtpgStatus::kUndetectable;
      return res;
    }
  }
}

AtpgSummary Podem::classify(const FaultList& faults, int max_backtracks) {
  AtpgSummary s;
  s.status.reserve(faults.size());
  for (const Fault& f : faults.faults()) {
    const AtpgResult r = generate(f, max_backtracks);
    s.status.push_back(r.status);
    switch (r.status) {
      case AtpgStatus::kDetected: ++s.detected; break;
      case AtpgStatus::kUndetectable: ++s.undetectable; break;
      case AtpgStatus::kAborted: ++s.aborted; break;
    }
  }
  return s;
}

}  // namespace bibs::fault
