#include "fault/fault.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bibs::fault {

using gate::Gate;
using gate::GateType;
using gate::NetId;
using gate::Netlist;

std::string to_string(FaultModel m) {
  return m == FaultModel::kTransition ? "transition" : "stuck_at";
}

FaultModel fault_model_from_string(const std::string& s) {
  if (s == "stuck_at") return FaultModel::kStuckAt;
  if (s == "transition") return FaultModel::kTransition;
  throw DesignError("unknown fault model '" + s + "'");
}

std::string to_string(const Netlist& nl, const Fault& f, FaultModel model) {
  const Gate& g = nl.gate(f.net);
  std::string site = g.name.empty()
                         ? std::string(gate::to_string(g.type)) + "#" +
                               std::to_string(f.net)
                         : g.name;
  if (f.pin >= 0) site += ".in" + std::to_string(f.pin);
  if (model == FaultModel::kTransition)
    return site + (f.stuck ? " slow-to-fall" : " slow-to-rise");
  return site + (f.stuck ? " s-a-1" : " s-a-0");
}

namespace {

}  // namespace

FaultList FaultList::from_faults(std::vector<Fault> faults,
                                 std::size_t full_size) {
  FaultList fl;
  fl.faults_ = std::move(faults);
  fl.full_size_ = full_size;
  return fl;
}

namespace {

std::vector<int> fanout_counts(const Netlist& nl) {
  std::vector<int> cnt(nl.net_count(), 0);
  for (const Gate& g : nl.gates())
    for (NetId f : g.fanin) ++cnt[static_cast<std::size_t>(f)];
  // Primary outputs also consume their nets.
  for (NetId o : nl.outputs()) ++cnt[static_cast<std::size_t>(o)];
  return cnt;
}

bool faultable_stem(GateType t) {
  return t != GateType::kConst0 && t != GateType::kConst1;
}

}  // namespace

FaultList FaultList::full(const Netlist& nl) {
  FaultList fl;
  const auto cnt = fanout_counts(nl);
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (faultable_stem(g.type) && cnt[static_cast<std::size_t>(id)] > 0) {
      fl.faults_.push_back({id, -1, false});
      fl.faults_.push_back({id, -1, true});
    }
    for (std::size_t k = 0; k < g.fanin.size(); ++k) {
      if (cnt[static_cast<std::size_t>(g.fanin[k])] <= 1)
        continue;  // single-consumer pin == driver stem
      fl.faults_.push_back({id, static_cast<int>(k), false});
      fl.faults_.push_back({id, static_cast<int>(k), true});
    }
  }
  fl.full_size_ = fl.faults_.size();
  return fl;
}

FaultList FaultList::transition(const Netlist& nl) {
  FaultList fl;
  const auto cnt = fanout_counts(nl);
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (!faultable_stem(g.type) || cnt[static_cast<std::size_t>(id)] == 0)
      continue;
    fl.faults_.push_back({id, -1, false});  // slow-to-rise
    fl.faults_.push_back({id, -1, true});   // slow-to-fall
  }
  fl.full_size_ = fl.faults_.size();
  return fl;
}

FaultList FaultList::collapsed(const Netlist& nl, bool dominance) {
  // Start from the full list and drop input faults that are equivalent to a
  // fault on the same gate's output:
  //   AND : in s-a-0 == out s-a-0      NAND: in s-a-0 == out s-a-1
  //   OR  : in s-a-1 == out s-a-1      NOR : in s-a-1 == out s-a-0
  //   BUF : in s-a-v == out s-a-v      NOT : in s-a-v == out s-a-!v
  // For single-consumer pins (already folded to the driver stem) the same
  // rule is applied to the driver's stem fault instead: when a driver's only
  // consumer absorbs the fault into its output, the stem fault is dropped.
  const auto cnt = fanout_counts(nl);

  // A pin fault (g, k, v) is absorbed if v is the controlling value of g.
  auto absorbed = [&](GateType t, bool v) {
    switch (t) {
      case GateType::kAnd:
      case GateType::kNand: return v == false;
      case GateType::kOr:
      case GateType::kNor: return v == true;
      case GateType::kBuf:
      case GateType::kNot: return true;  // both polarities map through
      default: return false;             // XOR/XNOR/DFF: nothing collapses
    }
  };

  // Dominance: every test for an input pin stuck at the non-controlling
  // value must set all other pins non-controlling and observe the output,
  // so it also detects the output stuck at the faulty response value
  // (AND: in s-a-1 -> out s-a-1; NAND: -> out s-a-0; OR/NOR dually). On a
  // fanout-free stem (exactly one consumer, so pin and stem share their
  // whole observation path) the dominated output fault may be dropped —
  // dominance chains bottom out at primary-input stems, which are kept.
  auto dominated = [&](GateType t, bool v) {
    switch (t) {
      case GateType::kAnd: return v == true;
      case GateType::kNand: return v == false;
      case GateType::kOr: return v == false;
      case GateType::kNor: return v == true;
      default: return false;  // BUF/NOT are equivalences; XOR has no
                              // controlling value, so nothing dominates
    }
  };

  FaultList fl;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    // Explicit branch faults on multi-fanout pins: keep unless absorbed.
    for (std::size_t k = 0; k < g.fanin.size(); ++k) {
      if (cnt[static_cast<std::size_t>(g.fanin[k])] <= 1) continue;
      for (bool v : {false, true})
        if (!absorbed(g.type, v))
          fl.faults_.push_back({id, static_cast<int>(k), v});
    }
  }
  // Unique gate consumer per net (when it exists), for the stem rule below.
  std::vector<NetId> sole_consumer(nl.net_count(), gate::kNoNet);
  for (NetId c = 0; static_cast<std::size_t>(c) < nl.net_count(); ++c)
    for (NetId f : nl.gate(c).fanin)
      if (cnt[static_cast<std::size_t>(f)] == 1)
        sole_consumer[static_cast<std::size_t>(f)] = c;

  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (!faultable_stem(g.type) || cnt[static_cast<std::size_t>(id)] == 0)
      continue;
    for (bool v : {false, true}) {
      // A stem with exactly one gate consumer is the same site as that
      // consumer's pin; drop it when the consumer absorbs this polarity.
      bool keep = true;
      const NetId c = sole_consumer[static_cast<std::size_t>(id)];
      if (c != gate::kNoNet && absorbed(nl.gate(c).type, v)) keep = false;
      // Dominance collapsing, fanout-free stems only: this gate's own input
      // faults dominate its output fault of polarity v.
      if (keep && dominance && cnt[static_cast<std::size_t>(id)] == 1 &&
          !g.fanin.empty() && dominated(g.type, v))
        keep = false;
      if (keep) fl.faults_.push_back({id, -1, v});
    }
  }
  fl.full_size_ = full(nl).size();
  return fl;
}

}  // namespace bibs::fault
