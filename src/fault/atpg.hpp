#pragma once
// PODEM automatic test pattern generation for combinational netlists.
//
// Role in the reproduction: the paper reports coverage "of detectable
// faults". Random-pattern saturation only *estimates* the detectable set;
// PODEM proves it — a fault is detectable iff generate() finds a pattern,
// undetectable iff the decision tree exhausts. classify() partitions a whole
// fault list, giving exact denominators for the Table 2 coverage rows and a
// redundancy-identification tool for the truncated-multiplier artifacts.

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "gate/netlist.hpp"

namespace bibs::fault {

enum class AtpgStatus : std::uint8_t {
  kDetected,      ///< a test pattern was found
  kUndetectable,  ///< proven redundant (decision tree exhausted)
  kAborted,       ///< backtrack limit hit
};

struct AtpgResult {
  AtpgStatus status = AtpgStatus::kAborted;
  /// PI assignment (X positions default to 0) when detected.
  std::vector<bool> pattern;
  int backtracks = 0;
};

struct AtpgSummary {
  std::size_t detected = 0;
  std::size_t undetectable = 0;
  std::size_t aborted = 0;
  std::vector<AtpgStatus> status;  ///< per fault

  double detectable_fraction() const {
    const std::size_t total = detected + undetectable + aborted;
    return total ? static_cast<double>(detected) / static_cast<double>(total)
                 : 1.0;
  }
};

class Podem {
 public:
  /// The netlist must be combinational and validated.
  explicit Podem(const gate::Netlist& nl);

  /// Generates a test for one fault.
  AtpgResult generate(const Fault& f, int max_backtracks = 20000);

  /// Classifies every fault in the list.
  AtpgSummary classify(const FaultList& faults, int max_backtracks = 20000);

 private:
  enum class TV : std::uint8_t { k0, k1, kX };

  struct Objective {
    gate::NetId net = gate::kNoNet;
    bool value = false;
  };

  void imply(const Fault& f);
  bool detected_at_po() const;
  /// Can the fault effect still reach a PO through undecided nets?
  bool x_path_exists(const Fault& f) const;
  bool fault_excited(const Fault& f) const;
  /// Next objective, or nullopt when the current assignment is a dead end.
  bool objective(const Fault& f, Objective* out) const;
  /// Maps an objective to a PI assignment; kNoBlock when blocked.
  gate::NetId backtrace(Objective obj, bool* pi_value) const;

  static TV eval_tv(gate::GateType t, const TV* in, std::size_t n);

  const gate::Netlist* nl_;
  std::vector<gate::NetId> topo_;
  std::vector<int> pi_index_;  // per net: index into inputs(), or -1
  std::vector<TV> pi_assign_;  // current PI decisions
  std::vector<TV> good_;
  std::vector<TV> faulty_;
  std::vector<std::vector<gate::NetId>> fanout_;
  std::vector<char> is_po_;
};

}  // namespace bibs::fault
