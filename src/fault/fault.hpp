#pragma once
// Single-stuck-at fault universe with structural equivalence and dominance
// collapsing.
//
// Fault sites follow the classic convention: a stem fault on every gate
// output net, and branch faults on gate input pins whose driving net fans
// out to more than one consumer (a single-consumer pin fault is equivalent
// to the driver's stem fault and is never generated). Equivalence collapsing
// then merges controlling-value input faults into output faults (AND: in
// s-a-0 == out s-a-0; NAND: in s-a-0 == out s-a-1; OR/NOR dually; BUF/NOT:
// both polarities map through). Dominance collapsing additionally drops, on
// fanout-free stems only, the output fault every input-pin fault dominates
// (AND: any test for in s-a-1 also detects out s-a-1; NAND/OR/NOR dually) —
// the dominated fault's detection is implied, so it need not be simulated.

#include <cstdint>
#include <string>
#include <vector>

#include "gate/netlist.hpp"

namespace bibs::fault {

struct Fault {
  gate::NetId net = gate::kNoNet;  ///< gate owning the faulted pin
  int pin = -1;                    ///< -1 = output stem, >= 0 = fan-in index
  bool stuck = false;              ///< stuck-at value

  bool operator==(const Fault&) const = default;
};

/// Which fault universe a Fault vector describes. Under kTransition the same
/// Fault record is reinterpreted as a gross (one-cycle) gate-delay fault on
/// the stem: stuck == false is slow-to-rise (the site behaves as stuck-at-0
/// on any cycle whose previous value was 0), stuck == true is slow-to-fall
/// (stuck-at-1 while the previous value was 1). Detection therefore needs a
/// two-pattern test: a launch pattern establishing the initial value followed
/// by a capture pattern that propagates the late edge — exactly the stuck-at
/// detection condition masked by the launch-side initialization.
enum class FaultModel { kStuckAt, kTransition };

/// Canonical serialization names ("stuck_at" / "transition") used by
/// checkpoints and corpus tables.
std::string to_string(FaultModel m);
FaultModel fault_model_from_string(const std::string& s);

std::string to_string(const gate::Netlist& nl, const Fault& f,
                      FaultModel model = FaultModel::kStuckAt);

class FaultList {
 public:
  /// Full (uncollapsed) fault list: stems on every logic gate and primary
  /// input, branches on multi-fanout pins. Constants are not faulted.
  static FaultList full(const gate::Netlist& nl);

  /// Collapsed list: equivalence collapsing (one representative per class)
  /// followed, when `dominance` is true (the default), by dominance
  /// collapsing on fanout-free stems. The collapsed list records the full
  /// universe size (full_size) so run reports can state both counts.
  static FaultList collapsed(const gate::Netlist& nl, bool dominance = true);

  /// Transition (gross gate-delay) fault list: slow-to-rise and slow-to-fall
  /// on every faultable stem with at least one consumer. Transition faults
  /// are stem-only — a late edge on a branch is dominated by the late edge
  /// on its stem under the one-cycle model — so the list is already its own
  /// collapse and full_size() equals size().
  static FaultList transition(const gate::Netlist& nl);

  /// Wraps an explicit fault vector (e.g. a filtered subset). `full_size`
  /// optionally records the size of the uncollapsed universe the vector was
  /// derived from; 0 means unknown.
  static FaultList from_faults(std::vector<Fault> faults,
                               std::size_t full_size = 0);

  std::size_t size() const { return faults_.size(); }
  const std::vector<Fault>& faults() const { return faults_; }
  const Fault& operator[](std::size_t i) const { return faults_[i]; }

  /// Size of the uncollapsed universe this list represents (0 = unknown).
  std::size_t full_size() const { return full_size_; }

 private:
  std::vector<Fault> faults_;
  std::size_t full_size_ = 0;
};

}  // namespace bibs::fault
