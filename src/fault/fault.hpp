#pragma once
// Single-stuck-at fault universe with structural equivalence collapsing.
//
// Fault sites follow the classic convention: a stem fault on every gate
// output net, and branch faults on gate input pins whose driving net fans
// out to more than one consumer (a single-consumer pin fault is equivalent
// to the driver's stem fault and is never generated). Equivalence collapsing
// then merges controlling-value input faults into output faults (AND: in
// s-a-0 == out s-a-0; NAND: in s-a-0 == out s-a-1; OR/NOR dually; BUF/NOT:
// both polarities map through).

#include <cstdint>
#include <string>
#include <vector>

#include "gate/netlist.hpp"

namespace bibs::fault {

struct Fault {
  gate::NetId net = gate::kNoNet;  ///< gate owning the faulted pin
  int pin = -1;                    ///< -1 = output stem, >= 0 = fan-in index
  bool stuck = false;              ///< stuck-at value

  bool operator==(const Fault&) const = default;
};

std::string to_string(const gate::Netlist& nl, const Fault& f);

class FaultList {
 public:
  /// Full (uncollapsed) fault list: stems on every logic gate and primary
  /// input, branches on multi-fanout pins. Constants are not faulted.
  static FaultList full(const gate::Netlist& nl);

  /// Equivalence-collapsed list (one representative per equivalence class).
  static FaultList collapsed(const gate::Netlist& nl);

  /// Wraps an explicit fault vector (e.g. a filtered subset).
  static FaultList from_faults(std::vector<Fault> faults);

  std::size_t size() const { return faults_.size(); }
  const std::vector<Fault>& faults() const { return faults_; }
  const Fault& operator[](std::size_t i) const { return faults_[i]; }

 private:
  std::vector<Fault> faults_;
};

}  // namespace bibs::fault
