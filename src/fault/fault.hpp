#pragma once
// Single-stuck-at fault universe with structural equivalence and dominance
// collapsing.
//
// Fault sites follow the classic convention: a stem fault on every gate
// output net, and branch faults on gate input pins whose driving net fans
// out to more than one consumer (a single-consumer pin fault is equivalent
// to the driver's stem fault and is never generated). Equivalence collapsing
// then merges controlling-value input faults into output faults (AND: in
// s-a-0 == out s-a-0; NAND: in s-a-0 == out s-a-1; OR/NOR dually; BUF/NOT:
// both polarities map through). Dominance collapsing additionally drops, on
// fanout-free stems only, the output fault every input-pin fault dominates
// (AND: any test for in s-a-1 also detects out s-a-1; NAND/OR/NOR dually) —
// the dominated fault's detection is implied, so it need not be simulated.

#include <cstdint>
#include <string>
#include <vector>

#include "gate/netlist.hpp"

namespace bibs::fault {

struct Fault {
  gate::NetId net = gate::kNoNet;  ///< gate owning the faulted pin
  int pin = -1;                    ///< -1 = output stem, >= 0 = fan-in index
  bool stuck = false;              ///< stuck-at value

  bool operator==(const Fault&) const = default;
};

std::string to_string(const gate::Netlist& nl, const Fault& f);

class FaultList {
 public:
  /// Full (uncollapsed) fault list: stems on every logic gate and primary
  /// input, branches on multi-fanout pins. Constants are not faulted.
  static FaultList full(const gate::Netlist& nl);

  /// Collapsed list: equivalence collapsing (one representative per class)
  /// followed, when `dominance` is true (the default), by dominance
  /// collapsing on fanout-free stems. The collapsed list records the full
  /// universe size (full_size) so run reports can state both counts.
  static FaultList collapsed(const gate::Netlist& nl, bool dominance = true);

  /// Wraps an explicit fault vector (e.g. a filtered subset). `full_size`
  /// optionally records the size of the uncollapsed universe the vector was
  /// derived from; 0 means unknown.
  static FaultList from_faults(std::vector<Fault> faults,
                               std::size_t full_size = 0);

  std::size_t size() const { return faults_.size(); }
  const std::vector<Fault>& faults() const { return faults_; }
  const Fault& operator[](std::size_t i) const { return faults_[i]; }

  /// Size of the uncollapsed universe this list represents (0 = unknown).
  std::size_t full_size() const { return full_size_; }

 private:
  std::vector<Fault> faults_;
  std::size_t full_size_ = 0;
};

}  // namespace bibs::fault
