#pragma once
// Minimal-TPG search — the open problem stated in the paper's conclusion:
// using the necessary-and-sufficient condition for a k-stage LFSR to
// functionally exhaustively test a kernel (our check_exhaustive_rank), find
// a TPG with fewer LFSR stages / flip-flops than Procedure MC_TPG produces.
//
// MC_TPG restricts register cells to appear in the given order with minimal
// displacements; the search here places each register's (contiguous) cell
// block at a *free* start label, which subsumes both register permutation
// (Section 4.3) and stage sharing, and accepts any placement the algebraic
// rank condition certifies. Randomized restarts with a fixed seed keep the
// procedure deterministic.

#include "tpg/design.hpp"

namespace bibs::tpg {

struct MinimizeOptions {
  /// Random placements tried per candidate LFSR degree.
  int attempts_per_degree = 4000;
  std::uint64_t seed = 0xB1B5;
};

struct MinimizeResult {
  TpgDesign design;
  /// LFSR stages of the plain mc_tpg design, for comparison.
  int mc_tpg_stages = 0;
  /// True when the 2^w lower bound (w = max cone width) was reached.
  bool optimal = false;
};

/// Searches LFSR degrees from the max-cone-width lower bound up to the
/// MC_TPG degree; returns the smallest certified design found (at worst the
/// MC_TPG design itself).
MinimizeResult minimize_tpg(const GeneralizedStructure& s,
                            const MinimizeOptions& opt = {});

/// Builds a TpgDesign from explicit register start labels (cell j of
/// register i gets label start[i] + j; labels are 1-based) and an LFSR
/// degree. Fills separator/top-up slots so every LFSR/shift label has a
/// physical flip-flop. Does not verify exhaustiveness.
TpgDesign design_from_placement(const GeneralizedStructure& s,
                                const std::vector<int>& start,
                                int lfsr_stages);

}  // namespace bibs::tpg
