#include "tpg/exhaustive.hpp"

#include <algorithm>

#include "common/bitvec.hpp"
#include "lfsr/lfsr.hpp"

namespace bibs::tpg {

namespace {

/// Cell offsets (into the first-stage bit sequence) for every cell a cone
/// reads, concatenated dep by dep, cells LSB first.
std::vector<int> cone_offsets(const TpgDesign& d, const Cone& cone) {
  std::vector<int> offsets;
  for (const ConeDep& dep : cone.deps) {
    const int w =
        d.structure.registers[static_cast<std::size_t>(dep.reg)].width;
    for (int j = 0; j < w; ++j)
      offsets.push_back(d.cell_offset(dep.reg, j, dep.d));
  }
  return offsets;
}

}  // namespace

ExhaustiveReport check_exhaustive_sim(const TpgDesign& d, bool complete_lfsr) {
  if (d.lfsr_stages > 22)
    throw DesignError("check_exhaustive_sim: LFSR degree " +
                      std::to_string(d.lfsr_stages) +
                      " too large to simulate; use check_exhaustive_rank");
  ExhaustiveReport rep;

  std::vector<std::vector<int>> offsets;
  int max_offset = 0;
  for (const Cone& c : d.structure.cones) {
    offsets.push_back(cone_offsets(d, c));
    for (int o : offsets.back()) {
      BIBS_ASSERT(o >= 0);
      max_offset = std::max(max_offset, o);
    }
  }

  // Pattern accumulators, one bit per possible cone pattern.
  std::vector<BitVec> seen;
  for (const Cone& c : d.structure.cones) {
    const int w = d.structure.cone_width(c);
    BIBS_ASSERT(w <= 28);
    seen.emplace_back(std::size_t{1} << w);
  }

  // History ring of the LFSR's first-stage sequence a(t); label L_k carries
  // a(t - (k - min_label)) by the type-1 shift property.
  const int hist_len = max_offset + 1;
  std::vector<std::uint8_t> hist(static_cast<std::size_t>(hist_len), 0);
  std::int64_t t = 0;
  auto a_at = [&](std::int64_t when) -> std::uint8_t {
    return hist[static_cast<std::size_t>(when % hist_len)];
  };

  lfsr::Type1Lfsr plain(d.poly);
  lfsr::CompleteLfsr complete(d.poly);

  const std::uint64_t period = complete_lfsr
                                   ? (1ull << d.lfsr_stages)
                                   : (1ull << d.lfsr_stages) - 1;
  const std::int64_t warmup = hist_len;
  const std::int64_t total = warmup + static_cast<std::int64_t>(period);
  for (; t < total; ++t) {
    bool bit;
    if (complete_lfsr) {
      complete.step();
      bit = complete.stage(1);
    } else {
      plain.step();
      bit = plain.stage(1);
    }
    hist[static_cast<std::size_t>(t % hist_len)] = bit ? 1 : 0;
    if (t < warmup) continue;
    for (std::size_t ci = 0; ci < offsets.size(); ++ci) {
      std::uint64_t pattern = 0;
      for (std::size_t b = 0; b < offsets[ci].size(); ++b)
        if (a_at(t - offsets[ci][b])) pattern |= 1ull << b;
      seen[ci].set(static_cast<std::size_t>(pattern), true);
    }
  }

  rep.all_exhaustive = true;
  for (std::size_t ci = 0; ci < offsets.size(); ++ci) {
    const Cone& c = d.structure.cones[ci];
    ConeCoverage cov;
    cov.cone = c.name;
    cov.width = d.structure.cone_width(c);
    cov.patterns = seen[ci].count();
    const std::uint64_t want = complete_lfsr
                                   ? (1ull << cov.width)
                                   : (1ull << cov.width) - 1;
    cov.exhaustive = cov.patterns >= want;
    rep.all_exhaustive = rep.all_exhaustive && cov.exhaustive;
    rep.cones.push_back(cov);
  }
  return rep;
}

int offset_rank(const std::vector<int>& offsets, const lfsr::Gf2Poly& p) {
  // Residues x^o mod p fit in 64 bits for deg(p) <= 64.
  std::vector<std::uint64_t> basis;
  int rank = 0;
  for (int o : offsets) {
    BIBS_ASSERT(o >= 0);
    std::uint64_t v =
        lfsr::powmod(lfsr::Gf2Poly(2), static_cast<std::uint64_t>(o), p)
            .mask();
    for (std::uint64_t b : basis) v = std::min(v, v ^ b);
    if (v) {
      basis.push_back(v);
      // Keep the basis reduced: fold the new vector into earlier ones.
      std::sort(basis.begin(), basis.end(), std::greater<>());
      ++rank;
    }
  }
  return rank;
}

ExhaustiveReport check_exhaustive_rank(const TpgDesign& d) {
  ExhaustiveReport rep;
  rep.all_exhaustive = true;
  for (const Cone& c : d.structure.cones) {
    const auto offsets = cone_offsets(d, c);
    const int rank = offset_rank(offsets, d.poly);
    ConeCoverage cov;
    cov.cone = c.name;
    cov.width = d.structure.cone_width(c);
    cov.patterns = (rank >= 64) ? ~0ull : (1ull << rank) - 1;
    cov.exhaustive = rank == cov.width;
    rep.all_exhaustive = rep.all_exhaustive && cov.exhaustive;
    rep.cones.push_back(cov);
  }
  return rep;
}

}  // namespace bibs::tpg
