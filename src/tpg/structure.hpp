#pragma once
// The "generalized structure" of Section 4 (Figure 11): an abstraction of a
// balanced BISTable kernel that keeps only what TPG design needs — the input
// registers, the output cones, and the sequential length d of the paths from
// each register to each cone it feeds.

#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bibs::tpg {

struct InputRegister {
  std::string name;
  int width = 0;
};

/// One dependence of a cone on an input register.
struct ConeDep {
  int reg = -1;  ///< index into GeneralizedStructure::registers
  int d = 0;     ///< sequential length from that register to the cone output
};

struct Cone {
  std::string name;
  std::vector<ConeDep> deps;  ///< ascending register index

  std::optional<int> depth_of(int reg) const {
    for (const ConeDep& dep : deps)
      if (dep.reg == reg) return dep.d;
    return std::nullopt;
  }
};

struct GeneralizedStructure {
  std::vector<InputRegister> registers;
  std::vector<Cone> cones;

  /// Convenience factory for single-cone kernels: registers in TPG order
  /// with their sequential lengths to the unique output.
  static GeneralizedStructure single_cone(std::vector<InputRegister> regs,
                                          const std::vector<int>& depths);

  /// Total input width M = sum of register widths.
  int total_width() const;
  /// Width of one cone: sum of the widths of the registers it depends on.
  int cone_width(const Cone& c) const;
  /// Largest cone width (the paper's w, the 2^w test-time lower bound).
  int max_cone_width() const;
  /// Sequential depth relevant to flushing: the largest d anywhere.
  int max_depth() const;

  /// Returns a copy with registers permuted: order[i] gives the original
  /// index of the register placed at position i. Cone deps are re-indexed.
  GeneralizedStructure permuted(const std::vector<int>& order) const;

  /// Arity/index sanity checks; throws bibs::DesignError.
  void validate() const;
};

}  // namespace bibs::tpg
