#include "tpg/synthesize.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"

namespace bibs::tpg {

using gate::GateType;
using gate::NetId;

std::size_t SynthesizedTpg::feedback_xors() const {
  std::size_t n = 0;
  for (const gate::Gate& g : netlist.gates())
    if (g.type == GateType::kXor) ++n;
  return n;
}

SynthesizedTpg synthesize_tpg(const TpgDesign& d,
                              const obs::ProgressFn& progress,
                              const rt::RunControl& ctl) {
  BIBS_SPAN("tpg.synthesize");
  BIBS_COUNTER(c_tpgs, "tpg.synthesized");
  BIBS_COUNTER(c_ffs, "tpg.synthesized_ffs");
  BIBS_ASSERT(!d.slots.empty());
  SynthesizedTpg out;
  out.min_label = d.min_label;

  int max_label = d.min_label;
  for (const TpgSlot& s : d.slots) max_label = std::max(max_label, s.label);
  const int nlabels = max_label - d.min_label + 1;

  const auto emit_progress = [&](std::int64_t done) {
    if (!progress) return;
    obs::Progress p;
    p.phase = "tpg_synth";
    p.done = done;
    p.total = static_cast<std::int64_t>(d.slots.size());
    progress(p);
  };

  // One DFF per physical slot; remember the driving (last) slot per label.
  std::vector<NetId> slot_q;
  std::vector<int> driver_slot(static_cast<std::size_t>(nlabels), -1);
  for (std::size_t si = 0; si < d.slots.size(); ++si) {
    const TpgSlot& s = d.slots[si];
    if (si % 64 == 0) {
      if (const rt::RunStatus st =
              ctl.interruption(static_cast<std::int64_t>(si));
          st != rt::RunStatus::kFinished) {
        out.status = st;
        return out;
      }
      if (progress) emit_progress(static_cast<std::int64_t>(si));
    }
    std::string name =
        s.reg >= 0 ? d.structure.registers[static_cast<std::size_t>(s.reg)]
                             .name +
                         "[" + std::to_string(s.cell) + "]"
                   : "ff_L" + std::to_string(s.label);
    slot_q.push_back(out.netlist.add_dff(gate::kNoNet, name));
    driver_slot[static_cast<std::size_t>(s.label - d.min_label)] =
        static_cast<int>(si);
  }
  out.stage_q.assign(static_cast<std::size_t>(nlabels), gate::kNoNet);
  for (int l = 0; l < nlabels; ++l) {
    BIBS_ASSERT(driver_slot[static_cast<std::size_t>(l)] >= 0);
    out.stage_q[static_cast<std::size_t>(l)] =
        slot_q[static_cast<std::size_t>(driver_slot[static_cast<std::size_t>(
            l)])];
  }

  // Feedback network: XOR of the tap stages (stage k taps when the
  // characteristic polynomial has coefficient x^(M-k)).
  const int m = d.lfsr_stages;
  std::vector<NetId> taps;
  for (int k = 1; k <= m; ++k)
    if (d.poly.coeff(m - k))
      taps.push_back(out.stage_q[static_cast<std::size_t>(k - 1)]);
  BIBS_ASSERT(!taps.empty());
  NetId feedback = taps[0];
  for (std::size_t i = 1; i < taps.size(); ++i)
    feedback = out.netlist.add_gate(GateType::kXor, {feedback, taps[i]},
                                    "fb" + std::to_string(i));

  // D connections: every slot of label L is fed by the driving stage of
  // label L-1; the first LFSR stage is fed by the feedback network.
  for (std::size_t si = 0; si < d.slots.size(); ++si) {
    const int l = d.slots[si].label - d.min_label;
    out.netlist.set_dff_d(slot_q[si],
                          l == 0 ? feedback
                                 : out.stage_q[static_cast<std::size_t>(l - 1)]);
  }

  // Register-cell views and outputs.
  out.cell_q.resize(d.structure.registers.size());
  for (const TpgSlot& s : d.slots) {
    if (s.reg < 0) continue;
    auto& cells = out.cell_q[static_cast<std::size_t>(s.reg)];
    if (cells.size() <= static_cast<std::size_t>(s.cell))
      cells.resize(static_cast<std::size_t>(s.cell) + 1, gate::kNoNet);
  }
  for (std::size_t si = 0; si < d.slots.size(); ++si) {
    const TpgSlot& s = d.slots[si];
    if (s.reg < 0) continue;
    out.cell_q[static_cast<std::size_t>(s.reg)]
              [static_cast<std::size_t>(s.cell)] = slot_q[si];
  }
  for (std::size_t i = 0; i < out.cell_q.size(); ++i)
    for (std::size_t j = 0; j < out.cell_q[i].size(); ++j) {
      BIBS_ASSERT(out.cell_q[i][j] != gate::kNoNet);
      out.netlist.mark_output(out.cell_q[i][j],
                              d.structure.registers[i].name + "[" +
                                  std::to_string(j) + "]");
    }
  out.netlist.validate();
  BIBS_COUNTER_ADD(c_tpgs, 1);
  BIBS_COUNTER_ADD(c_ffs, d.slots.size());
  emit_progress(static_cast<std::int64_t>(d.slots.size()));
  return out;
}

}  // namespace bibs::tpg
