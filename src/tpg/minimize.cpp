#include "tpg/minimize.hpp"

#include <algorithm>

#include "common/prng.hpp"
#include "tpg/exhaustive.hpp"

namespace bibs::tpg {

TpgDesign design_from_placement(const GeneralizedStructure& s,
                                const std::vector<int>& start,
                                int lfsr_stages) {
  BIBS_ASSERT(start.size() == s.registers.size());
  TpgDesign d;
  d.structure = s;
  d.min_label = 1;
  d.lfsr_stages = lfsr_stages;
  d.poly = lfsr::primitive_polynomial(lfsr_stages);
  d.cell_label.resize(s.registers.size());

  int max_label = lfsr_stages;
  for (std::size_t i = 0; i < s.registers.size(); ++i) {
    BIBS_ASSERT(start[i] >= 1);
    const int w = s.registers[i].width;
    for (int j = 0; j < w; ++j) {
      d.cell_label[i].push_back(start[i] + j);
      d.slots.push_back(TpgSlot{start[i] + j, static_cast<int>(i), j});
      max_label = std::max(max_label, start[i] + j);
    }
  }
  // Physical FFs for every label not occupied by a register cell.
  std::vector<char> present(static_cast<std::size_t>(max_label) + 1, 0);
  for (const TpgSlot& slot : d.slots)
    present[static_cast<std::size_t>(slot.label)] = 1;
  for (int l = 1; l <= max_label; ++l)
    if (!present[static_cast<std::size_t>(l)])
      d.slots.push_back(TpgSlot{l, -1, -1});
  return d;
}

MinimizeResult minimize_tpg(const GeneralizedStructure& s,
                            const MinimizeOptions& opt) {
  s.validate();
  MinimizeResult res;
  res.design = mc_tpg(s);
  res.mc_tpg_stages = res.design.lfsr_stages;

  const int lower = s.max_cone_width();
  res.optimal = res.design.lfsr_stages == lower;
  if (res.optimal) return res;

  Xoshiro256 rng(opt.seed);
  const int n = static_cast<int>(s.registers.size());

  // Try ascending degrees; accept the first degree with a certified
  // placement (smaller degree == exponentially smaller test time, so a
  // first-fit over degrees is the right order).
  for (int k = lower; k < res.mc_tpg_stages; ++k) {
    const lfsr::Gf2Poly poly = lfsr::primitive_polynomial(k);
    // Start labels range over [1, span]: beyond ~k + max depth nothing new
    // is reachable (labels only shift offsets further apart).
    const int span = k + s.max_depth() + 1;

    auto certify = [&](const std::vector<int>& start) {
      for (const Cone& cone : s.cones) {
        std::vector<int> offsets;
        for (const ConeDep& dep : cone.deps) {
          const int w = s.registers[static_cast<std::size_t>(dep.reg)].width;
          for (int j = 0; j < w; ++j)
            offsets.push_back(dep.d + start[static_cast<std::size_t>(dep.reg)] +
                              j - 1);
        }
        if (offset_rank(offsets, poly) !=
            s.cone_width(cone))
          return false;
      }
      return true;
    };

    std::vector<int> start(static_cast<std::size_t>(n));
    bool found = false;
    for (int attempt = 0; attempt < opt.attempts_per_degree && !found;
         ++attempt) {
      for (int i = 0; i < n; ++i) {
        const int w = s.registers[static_cast<std::size_t>(i)].width;
        const int hi = std::max(1, span - w + 1);
        start[static_cast<std::size_t>(i)] =
            1 + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(hi)));
      }
      found = certify(start);
    }
    if (found) {
      res.design = design_from_placement(s, start, k);
      res.optimal = k == lower;
      return res;
    }
  }
  return res;
}

}  // namespace bibs::tpg
