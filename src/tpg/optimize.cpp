#include "tpg/optimize.hpp"

#include <algorithm>
#include <numeric>

namespace bibs::tpg {

OrderResult optimize_register_order(const GeneralizedStructure& s) {
  s.validate();
  const int n = static_cast<int>(s.registers.size());
  if (n > 9)
    throw DesignError("optimize_register_order: " + std::to_string(n) +
                      " registers is beyond the exhaustive-search bound");
  const int lower_bound = s.max_cone_width();

  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);

  OrderResult best;
  bool have = false;
  do {
    const GeneralizedStructure p = s.permuted(perm);
    TpgDesign d = mc_tpg(p);
    const bool better =
        !have || d.lfsr_stages < best.design.lfsr_stages ||
        (d.lfsr_stages == best.design.lfsr_stages &&
         d.physical_ffs() < best.design.physical_ffs());
    if (better) {
      best.order = perm;
      best.design = std::move(d);
      have = true;
      if (best.design.lfsr_stages == lower_bound) {
        best.optimal = true;
        return best;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  best.optimal = best.design.lfsr_stages == lower_bound;
  return best;
}

namespace {

/// Backtracking k-colourability test over an adjacency matrix.
bool colorable(const std::vector<std::vector<char>>& adj, int k,
               std::vector<int>& color, std::size_t v) {
  const std::size_t n = adj.size();
  if (v == n) return true;
  for (int c = 0; c < k; ++c) {
    bool ok = true;
    for (std::size_t u = 0; u < v; ++u)
      if (adj[v][u] && color[u] == c) {
        ok = false;
        break;
      }
    if (!ok) continue;
    color[v] = c;
    if (colorable(adj, k, color, v + 1)) return true;
  }
  color[v] = -1;
  return false;
}

}  // namespace

TestSignalResult min_test_signals(const GeneralizedStructure& s) {
  s.validate();
  const std::size_t n = s.registers.size();
  if (n > 24)
    throw DesignError("min_test_signals: too many registers for exact search");

  // Conflict graph: registers sharing a cone cannot share a test signal.
  std::vector<std::vector<char>> adj(n, std::vector<char>(n, 0));
  for (const Cone& c : s.cones)
    for (std::size_t a = 0; a < c.deps.size(); ++a)
      for (std::size_t b = a + 1; b < c.deps.size(); ++b) {
        adj[static_cast<std::size_t>(c.deps[a].reg)]
           [static_cast<std::size_t>(c.deps[b].reg)] = 1;
        adj[static_cast<std::size_t>(c.deps[b].reg)]
           [static_cast<std::size_t>(c.deps[a].reg)] = 1;
      }

  TestSignalResult res;
  std::vector<int> color(n, -1);
  for (int k = 1; k <= static_cast<int>(n); ++k) {
    std::fill(color.begin(), color.end(), -1);
    if (colorable(adj, k, color, 0)) {
      res.signals = k;
      res.signal_of_reg = color;
      break;
    }
  }
  // Each signal group is as wide as its widest member.
  std::vector<int> group_width(static_cast<std::size_t>(res.signals), 0);
  for (std::size_t i = 0; i < n; ++i)
    group_width[static_cast<std::size_t>(res.signal_of_reg[i])] = std::max(
        group_width[static_cast<std::size_t>(res.signal_of_reg[i])],
        s.registers[i].width);
  res.lfsr_stages = std::accumulate(group_width.begin(), group_width.end(), 0);
  return res;
}

ReconfigurableTpg reconfigurable_tpg(const GeneralizedStructure& s) {
  s.validate();
  ReconfigurableTpg out;
  for (const Cone& c : s.cones) {
    GeneralizedStructure sub;
    Cone nc;
    nc.name = c.name;
    for (const ConeDep& d : c.deps) {
      nc.deps.push_back(
          {static_cast<int>(sub.registers.size()), d.d});
      sub.registers.push_back(s.registers[static_cast<std::size_t>(d.reg)]);
    }
    sub.cones.push_back(std::move(nc));
    out.sessions.push_back(mc_tpg(sub));
  }
  return out;
}

std::uint64_t ReconfigurableTpg::total_test_time() const {
  std::uint64_t t = 0;
  for (const TpgDesign& d : sessions)
    t += d.test_time(d.structure.max_depth());
  return t;
}

}  // namespace bibs::tpg
