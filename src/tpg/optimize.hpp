#pragma once
// Test-time optimization for multiple-cone kernels (Section 4.3):
// functionally pseudo-exhaustive testing.
//
//  * optimize_register_order: runs MC_TPG once per input-register
//    permutation and keeps the design with the smallest LFSR (the paper's
//    recommended approach; input-register counts are small in practice).
//    Terminates early when the 2^w lower bound (w = max cone width) is met.
//  * min_test_signals: the McCluskey [17] minimal-test-signal procedure
//    lifted to register-level signals (the paper's Example 8). Registers may
//    share a test signal iff no cone depends on both; the minimum signal
//    count is the chromatic number of the conflict graph.
//  * reconfigurable_tpg: one LFSR configuration per cone, tested in separate
//    sessions (Figure 20), trading control logic for test time.

#include <cstdint>
#include <vector>

#include "tpg/design.hpp"

namespace bibs::tpg {

struct OrderResult {
  /// order[i] = original index of the register placed at TPG position i.
  std::vector<int> order;
  TpgDesign design;
  /// True when the 2^w lower bound on test time was reached.
  bool optimal = false;
};

/// Exhaustive permutation search; throws bibs::DesignError for more than 9
/// input registers (the paper notes kernels usually have fewer than 5).
OrderResult optimize_register_order(const GeneralizedStructure& s);

struct TestSignalResult {
  int signals = 0;
  /// signal_of_reg[i]: test-signal group of register i.
  std::vector<int> signal_of_reg;
  /// LFSR stages implied: sum over groups of the widest register in each.
  int lfsr_stages = 0;
};

/// Exact minimum colouring of the register conflict graph (n <= 24).
TestSignalResult min_test_signals(const GeneralizedStructure& s);

struct ReconfigurableTpg {
  /// One TPG per cone, over the sub-structure restricted to that cone.
  std::vector<TpgDesign> sessions;

  /// Sum over sessions of (2^M_s - 1 + depth_s).
  std::uint64_t total_test_time() const;
};

ReconfigurableTpg reconfigurable_tpg(const GeneralizedStructure& s);

}  // namespace bibs::tpg
