#pragma once
// Hardware synthesis of a TpgDesign: emits the flip-flop string, the type-1
// LFSR feedback network and the shift extensions as a gate::Netlist, closing
// the loop between the paper's Figures 13-21 (which draw hardware) and the
// label-offset semantics the analysis uses.
//
// Layout emitted:
//   * one DFF per physical slot of the design;
//   * for each label, the *last* slot carrying it is the driving stage
//     (the paper's step 6); other slots with the same label are fed by the
//     same fanout stem (the driving stage of label-1);
//   * the first LFSR stage's D is the XOR of the tap stages;
//   * every non-first stage's D is the driving stage of label-1.
//
// Register cell (i, j) is exposed as a marked output "Ri[j]" so a simulator
// can watch exactly what the kernel's input registers would receive.

#include "gate/netlist.hpp"
#include "obs/progress.hpp"
#include "rt/control.hpp"
#include "tpg/design.hpp"

namespace bibs::tpg {

struct SynthesizedTpg {
  gate::Netlist netlist;
  /// DFF nets per register cell: cell_q[i][j] for register i cell j.
  std::vector<std::vector<gate::NetId>> cell_q;
  /// DFF net of the driving stage for each label (label -> net).
  std::vector<gate::NetId> stage_q;
  int min_label = 1;
  /// kFinished unless the synthesis was interrupted via RunControl; an
  /// interrupted result is partial (netlist incomplete, not validated) and
  /// must not be used beyond inspecting this status.
  rt::RunStatus status = rt::RunStatus::kFinished;

  /// Number of 2-input XOR gates in the feedback network.
  std::size_t feedback_xors() const;
};

/// Synthesizes the TPG. The netlist is autonomous (no PIs); seed it by
/// setting DFF states and clock it with gate::Simulator. `progress` (when
/// non-empty) is invoked per chunk of synthesized slots — TPGs are usually
/// small, but design-space sweeps synthesize thousands of them. `ctl` is
/// polled per 64-slot chunk (work units are slots); on interruption the
/// partial result only carries `status`.
SynthesizedTpg synthesize_tpg(const TpgDesign& d,
                              const obs::ProgressFn& progress = {},
                              const rt::RunControl& ctl = {});

}  // namespace bibs::tpg
