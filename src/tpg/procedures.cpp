// Procedures SC_TPG and MC_TPG from Sections 4.1 and 4.2.
//
// One deviation from the paper's literal text, deliberately: step 5 of
// SC_TPG tops the label string up to L_M, which leaves the LFSR incomplete
// when negative displacements have pushed labels below L_1 (the paper's own
// Example 4 then starts the LFSR "at L_0 instead of L_1"). We generalize:
// the LFSR always spans the M consecutive labels starting at the minimum
// assigned label, and step 5 tops up to (min_label + M - 1). For min_label
// == 1 this is exactly the paper's step 5.

#include <algorithm>
#include <limits>
#include <sstream>

#include "obs/obs.hpp"
#include "tpg/design.hpp"

namespace bibs::tpg {

namespace {

TpgDesign build(const GeneralizedStructure& s) {
  s.validate();
  const int n = static_cast<int>(s.registers.size());

  TpgDesign d;
  d.structure = s;
  d.cell_label.assign(static_cast<std::size_t>(n), {});

  // k[i]: label of the last cell of register i.
  std::vector<int> k(static_cast<std::size_t>(n), 0);

  auto place_register = [&](int i, int first_label) {
    const int w = s.registers[static_cast<std::size_t>(i)].width;
    auto& labels = d.cell_label[static_cast<std::size_t>(i)];
    labels.resize(static_cast<std::size_t>(w));
    for (int j = 0; j < w; ++j) {
      labels[static_cast<std::size_t>(j)] = first_label + j;
      d.slots.push_back(TpgSlot{first_label + j, i, j});
    }
    k[static_cast<std::size_t>(i)] = first_label + w - 1;
  };

  // Step 2: R_1 occupies labels 1..r_1.
  place_register(0, 1);

  // Step 3: displacement of each subsequent register against every
  // predecessor it shares a cone with.
  for (int i = 1; i < n; ++i) {
    int delta_i = std::numeric_limits<int>::min();
    for (int j = 0; j < i; ++j) {
      int delta_ij = std::numeric_limits<int>::min();
      for (const Cone& cone : s.cones) {
        const auto di = cone.depth_of(i);
        const auto dj = cone.depth_of(j);
        if (di && dj) delta_ij = std::max(delta_ij, *dj - *di);
      }
      if (delta_ij == std::numeric_limits<int>::min()) continue;
      delta_i = std::max(delta_i,
                         delta_ij + k[static_cast<std::size_t>(j)] -
                             k[static_cast<std::size_t>(i - 1)]);
    }
    // A register sharing no cone with any predecessor is unconstrained;
    // place it adjacent (displacement 0).
    if (delta_i == std::numeric_limits<int>::min()) delta_i = 0;

    int last = k[static_cast<std::size_t>(i - 1)];
    if (delta_i < 0) {
      last += delta_i;  // share |delta| signals with the predecessor
    } else {
      for (int l = 1; l <= delta_i; ++l)
        d.slots.push_back(TpgSlot{last + l, -1, -1});  // separator FFs
      last += delta_i;
    }
    place_register(i, last + 1);
  }

  // Step 4: LFSR degree M = max logical span over cones (Theorem 7).
  int m_stages = 0;
  for (const Cone& cone : s.cones) {
    const int first_reg = cone.deps.front().reg;
    const int last_reg = cone.deps.back().reg;
    const int l1 = d.cell_label[static_cast<std::size_t>(first_reg)].front();
    const int up = d.cell_label[static_cast<std::size_t>(last_reg)].back();
    const int span =
        up - l1 + 1 + cone.deps.back().d - cone.deps.front().d;
    m_stages = std::max(m_stages, span);
  }
  d.lfsr_stages = m_stages;

  // Step 5 (generalized): complete the LFSR label range.
  int min_label = std::numeric_limits<int>::max();
  int max_label = std::numeric_limits<int>::min();
  for (const TpgSlot& slot : d.slots) {
    min_label = std::min(min_label, slot.label);
    max_label = std::max(max_label, slot.label);
  }
  d.min_label = min_label;
  // Top up past the current maximum, and fill any interior holes a large
  // negative displacement may have left (|delta| > r_{i-1}, Example 4's
  // pathological cousin): every LFSR stage label needs a physical FF.
  std::vector<char> present(
      static_cast<std::size_t>(std::max(max_label, min_label + m_stages - 1) -
                               min_label + 1),
      0);
  for (const TpgSlot& slot : d.slots)
    present[static_cast<std::size_t>(slot.label - min_label)] = 1;
  for (int l = min_label; l <= min_label + m_stages - 1; ++l)
    if (!present[static_cast<std::size_t>(l - min_label)])
      d.slots.push_back(TpgSlot{l, -1, -1});

  d.poly = lfsr::primitive_polynomial(m_stages);
  return d;
}

}  // namespace

TpgDesign mc_tpg(const GeneralizedStructure& s) {
  BIBS_SPAN("tpg.mc_tpg");
  BIBS_COUNTER(c_designs, "tpg.designs");
  BIBS_COUNTER_ADD(c_designs, 1);
  return build(s);
}

TpgDesign sc_tpg(const GeneralizedStructure& s) {
  BIBS_SPAN("tpg.sc_tpg");
  BIBS_COUNTER(c_designs, "tpg.designs");
  BIBS_COUNTER_ADD(c_designs, 1);
  if (s.cones.size() != 1)
    throw DesignError("sc_tpg requires a single-cone structure (got " +
                      std::to_string(s.cones.size()) + " cones)");
  if (s.cones[0].deps.size() != s.registers.size())
    throw DesignError("sc_tpg: the cone must depend on every input register");
  TpgDesign d = build(s);
  // Single-cone invariant (Theorem 5): M equals the kernel input width.
  BIBS_ASSERT(d.lfsr_stages == s.total_width());
  return d;
}

std::string TpgDesign::describe() const {
  // Row 1: register/cell occupancy; row 2: labels, LFSR stages bracketed.
  std::ostringstream top, bot;
  const int lfsr_last = min_label + lfsr_stages - 1;
  for (const TpgSlot& s : slots) {
    std::string cell =
        s.reg >= 0
            ? structure.registers[static_cast<std::size_t>(s.reg)].name + "." +
                  std::to_string(s.cell + 1)
            : std::string("--");
    std::string lab = (s.label >= min_label && s.label <= lfsr_last)
                          ? "[L" + std::to_string(s.label) + "]"
                          : " L" + std::to_string(s.label) + " ";
    const std::size_t w = std::max(cell.size(), lab.size()) + 1;
    cell.resize(w, ' ');
    lab.resize(w, ' ');
    top << cell;
    bot << lab;
  }
  return top.str() + "\n" + bot.str() + "\nLFSR: degree " +
         std::to_string(lfsr_stages) + ", p(x) = " + poly.to_string() +
         ", FFs = " + std::to_string(physical_ffs()) + "\n";
}

}  // namespace bibs::tpg
