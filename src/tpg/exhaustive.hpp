#pragma once
// Functional-exhaustiveness verification for TPG designs — the executable
// form of Theorems 4, 5 and 7.
//
// Two independent checkers:
//  * check_exhaustive_sim: runs the TPG for its full period and counts the
//    distinct (time-shifted) patterns arriving at each cone. Ground truth,
//    feasible for LFSR degrees up to ~22.
//  * check_exhaustive_rank: the algebraic necessary-and-sufficient condition
//    the paper's conclusion announces as identified: the bits a cone sees are
//    a(t - o_1), ..., a(t - o_w) for cell offsets o_i; over one period of the
//    m-sequence they cover all 2^w - 1 nonzero combinations iff the residues
//    x^{o_i} mod p(x) are linearly independent over GF(2). Works for any
//    degree in O(w^2) after w modular exponentiations.

#include <cstdint>
#include <vector>

#include "tpg/design.hpp"

namespace bibs::tpg {

struct ConeCoverage {
  std::string cone;
  int width = 0;
  /// Number of distinct patterns observed (sim) or implied (rank) at the
  /// cone's inputs over one full period.
  std::uint64_t patterns = 0;
  /// True iff all 2^width - 1 nonzero patterns occur (all 2^width when the
  /// TPG uses a complete LFSR).
  bool exhaustive = false;
};

struct ExhaustiveReport {
  std::vector<ConeCoverage> cones;
  bool all_exhaustive = false;
};

/// Simulation-based check. `complete_lfsr` also exercises the all-0 state
/// (de Bruijn modification); the exhaustive criterion then becomes all 2^w
/// patterns. Throws bibs::DesignError if lfsr_stages > 22.
ExhaustiveReport check_exhaustive_sim(const TpgDesign& d,
                                      bool complete_lfsr = false);

/// Rank-based check; `patterns` is reported as 2^rank - 1.
ExhaustiveReport check_exhaustive_rank(const TpgDesign& d);

/// GF(2) rank of the residues x^{offset} mod p for the given offsets.
int offset_rank(const std::vector<int>& offsets, const lfsr::Gf2Poly& p);

}  // namespace bibs::tpg
