#include "tpg/structure.hpp"

#include <algorithm>

namespace bibs::tpg {

GeneralizedStructure GeneralizedStructure::single_cone(
    std::vector<InputRegister> regs, const std::vector<int>& depths) {
  BIBS_ASSERT(regs.size() == depths.size());
  GeneralizedStructure s;
  s.registers = std::move(regs);
  Cone c;
  c.name = "O";
  for (std::size_t i = 0; i < depths.size(); ++i)
    c.deps.push_back({static_cast<int>(i), depths[i]});
  s.cones.push_back(std::move(c));
  s.validate();
  return s;
}

int GeneralizedStructure::total_width() const {
  int w = 0;
  for (const InputRegister& r : registers) w += r.width;
  return w;
}

int GeneralizedStructure::cone_width(const Cone& c) const {
  int w = 0;
  for (const ConeDep& d : c.deps)
    w += registers[static_cast<std::size_t>(d.reg)].width;
  return w;
}

int GeneralizedStructure::max_cone_width() const {
  int w = 0;
  for (const Cone& c : cones) w = std::max(w, cone_width(c));
  return w;
}

int GeneralizedStructure::max_depth() const {
  int d = 0;
  for (const Cone& c : cones)
    for (const ConeDep& dep : c.deps) d = std::max(d, dep.d);
  return d;
}

GeneralizedStructure GeneralizedStructure::permuted(
    const std::vector<int>& order) const {
  BIBS_ASSERT(order.size() == registers.size());
  GeneralizedStructure out;
  std::vector<int> inv(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    out.registers.push_back(registers[static_cast<std::size_t>(order[i])]);
    inv[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (const Cone& c : cones) {
    Cone nc;
    nc.name = c.name;
    for (const ConeDep& d : c.deps)
      nc.deps.push_back({inv[static_cast<std::size_t>(d.reg)], d.d});
    std::sort(nc.deps.begin(), nc.deps.end(),
              [](const ConeDep& a, const ConeDep& b) { return a.reg < b.reg; });
    out.cones.push_back(std::move(nc));
  }
  out.validate();
  return out;
}

void GeneralizedStructure::validate() const {
  if (registers.empty()) throw DesignError("structure has no input registers");
  for (const InputRegister& r : registers)
    if (r.width <= 0)
      throw DesignError("register '" + r.name + "' has width <= 0");
  if (cones.empty()) throw DesignError("structure has no cones");
  for (const Cone& c : cones) {
    if (c.deps.empty())
      throw DesignError("cone '" + c.name + "' depends on no registers");
    int prev = -1;
    for (const ConeDep& d : c.deps) {
      if (d.reg < 0 || d.reg >= static_cast<int>(registers.size()))
        throw DesignError("cone '" + c.name + "' has a bad register index");
      if (d.reg <= prev)
        throw DesignError("cone '" + c.name +
                          "' deps must be in ascending register order");
      if (d.d < 0)
        throw DesignError("cone '" + c.name + "' has negative depth");
      prev = d.reg;
    }
  }
}

}  // namespace bibs::tpg
