#pragma once
// The TPG produced by the SC_TPG / MC_TPG procedures: a string of physical
// flip-flops with stage labels. Labels in [min_label, min_label + M - 1] form
// a type-1 maximal-length LFSR of degree M; larger labels are plain shift
// stages fed by label-1; duplicated labels share the same fanout stem.
//
// The defining signal identity (from the type-1 LFSR shift property) is
//     signal(L_k, t) = a(t - (k - min_label))
// where a() is the LFSR's first-stage bit sequence. All analysis — including
// the functional-exhaustiveness checks — reduces to reasoning about the label
// offsets that reach each cone.

#include <cstdint>
#include <string>
#include <vector>

#include "lfsr/polynomial.hpp"
#include "tpg/structure.hpp"

namespace bibs::tpg {

struct TpgSlot {
  int label = 0;
  int reg = -1;   ///< register index, or -1 for a separator / top-up FF
  int cell = -1;  ///< cell index within the register (0-based), or -1
};

struct TpgDesign {
  GeneralizedStructure structure;
  /// Physical FF string, in TPG order.
  std::vector<TpgSlot> slots;
  /// cell_label[i][j]: label of cell j of register i.
  std::vector<std::vector<int>> cell_label;
  /// Label of the first LFSR stage (1 except when negative displacements
  /// push register labels below 1, as in the paper's Example 4).
  int min_label = 1;
  /// LFSR degree M.
  int lfsr_stages = 0;
  /// Characteristic polynomial (degree == lfsr_stages).
  lfsr::Gf2Poly poly;

  int physical_ffs() const { return static_cast<int>(slots.size()); }
  /// Extra FFs beyond the kernel input width (the paper's d_1 - d_n for
  /// descending single-cone structures).
  int extra_ffs() const { return physical_ffs() - structure.total_width(); }
  /// Patterns per full LFSR period: 2^M - 1.
  std::uint64_t pattern_count() const {
    return (lfsr_stages >= 64) ? ~0ull : (1ull << lfsr_stages) - 1;
  }
  /// Test time 2^M - 1 + d (Corollary 1), d = kernel sequential depth.
  /// Saturates at 2^64 - 1 for 64-stage LFSRs.
  std::uint64_t test_time(int sequential_depth) const {
    const std::uint64_t p = pattern_count();
    const std::uint64_t d = static_cast<std::uint64_t>(sequential_depth);
    return (p > ~0ull - d) ? ~0ull : p + d;
  }

  /// Offset of a register cell into the LFSR's first-stage bit sequence,
  /// for cone x: offset = d(reg, x) + (label - min_label). Cells whose
  /// offsets are distinct and linearly independent see exhaustive patterns.
  int cell_offset(int reg, int cell, int depth_to_cone) const {
    return depth_to_cone + cell_label[static_cast<std::size_t>(reg)]
                                     [static_cast<std::size_t>(cell)] -
           min_label;
  }

  /// Two-line ASCII rendering of the FF string and label row, in the style
  /// of the paper's Figures 13/15/16(b)/17(b).
  std::string describe() const;
};

/// Procedure SC_TPG (Section 4.1): TPG for a single-cone balanced BISTable
/// kernel. Registers are taken in the given order; sequential lengths come
/// from the structure's unique cone. Throws bibs::DesignError if the
/// structure has more than one cone.
TpgDesign sc_tpg(const GeneralizedStructure& s);

/// Procedure MC_TPG (Section 4.2): TPG for a multiple-cone kernel; reduces
/// to SC_TPG behaviour on single-cone structures.
TpgDesign mc_tpg(const GeneralizedStructure& s);

}  // namespace bibs::tpg
