#pragma once
// Structural analyses on the circuit graph of Section 3.1: cycle detection
// and enumeration, balance checking (equal sequential length of all paths
// between every vertex pair), unbalanced-reconvergent-fanout detection, and
// sequential depth. These are the predicates the BIBS designer optimizes
// against.

#include <optional>
#include <unordered_set>
#include <vector>

#include "rtl/netlist.hpp"

namespace bibs::graph {

/// Set of connection ids treated as removed (e.g. BILBO edges) by the
/// subgraph analyses.
using EdgeSet = std::unordered_set<rtl::ConnId>;

/// True iff the graph (ignoring edges in `removed`) has no directed cycle.
bool is_acyclic(const rtl::Netlist& n, const EdgeSet& removed = {});

/// Enumerates up to `max_cycles` simple directed cycles as edge-id lists.
/// Every cycle in a valid netlist contains at least one register edge
/// (combinational cycles are rejected by Netlist::validate()).
std::vector<std::vector<rtl::ConnId>> find_cycles(const rtl::Netlist& n,
                                                  std::size_t max_cycles = 1024);

/// A witness that the graph contains an unbalanced reconvergent-fanout
/// structure: two vertices with two paths of different sequential length.
struct UrfsWitness {
  rtl::BlockId from = rtl::kNoBlock;
  rtl::BlockId to = rtl::kNoBlock;
  int length_a = 0;
  int length_b = 0;
};

/// Result of the balance check (requirements 1 and 2 of Definition 1: the
/// subgraph is acyclic and all directed paths between every ordered vertex
/// pair have equal sequential length — equivalently, acyclic and URFS-free).
///
/// Note this is deliberately *not* a global potential labeling: a kernel can
/// be balanced even though different cones see different sequential lengths
/// from the same register (the paper's Figure 17 kernel), which no single
/// labeling can express.
struct BalanceResult {
  bool balanced = false;
  bool acyclic = false;
  /// When unbalanced due to an URFS: one witness pair.
  std::optional<UrfsWitness> urfs;
};

BalanceResult check_balanced(const rtl::Netlist& n, const EdgeSet& removed = {});

/// Unique sequential length (register-edge count) of directed paths from
/// `from` to `to` in the subgraph without `removed` edges. Returns nullopt if
/// `to` is unreachable; throws bibs::DesignError if paths of differing
/// lengths exist (i.e. the pair witnesses an URFS).
std::optional<int> path_sequential_length(const rtl::Netlist& n,
                                          rtl::BlockId from, rtl::BlockId to,
                                          const EdgeSet& removed = {});

/// Finds one URFS witness in the subgraph without `removed` edges, or
/// nullopt if none. Only meaningful on acyclic subgraphs.
std::optional<UrfsWitness> find_urfs(const rtl::Netlist& n,
                                     const EdgeSet& removed = {});

/// Enumerates URFS witnesses, one per offending (from, to) pair, up to `max`.
std::vector<UrfsWitness> find_all_urfs(const rtl::Netlist& n,
                                       const EdgeSet& removed = {},
                                       std::size_t max = 1024);

/// Maximum number of register edges on any PI-to-PO path (the paper's d).
/// Requires an acyclic graph; throws bibs::DesignError otherwise.
int sequential_depth(const rtl::Netlist& n);

/// Maximum number of `marked` edges on any PI-to-PO path: the paper's
/// "maximal delay" metric when `marked` is the BILBO edge set (each BILBO
/// register is modelled as adding one time unit of delay).
/// Works on cyclic graphs too by bounding to simple paths.
int max_marked_edges_on_path(const rtl::Netlist& n, const EdgeSet& marked);

/// Topological order of all blocks ignoring `removed` edges; throws
/// bibs::DesignError when cyclic.
std::vector<rtl::BlockId> topological_order(const rtl::Netlist& n,
                                            const EdgeSet& removed = {});

}  // namespace bibs::graph
