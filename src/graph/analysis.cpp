#include "graph/analysis.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace bibs::graph {

namespace {

bool live(const EdgeSet& removed, rtl::ConnId id) { return !removed.count(id); }

}  // namespace

std::vector<rtl::BlockId> topological_order(const rtl::Netlist& n,
                                            const EdgeSet& removed) {
  const std::size_t nv = n.block_count();
  std::vector<int> indeg(nv, 0);
  for (const auto& c : n.connections())
    if (live(removed, c.id)) ++indeg[static_cast<std::size_t>(c.to)];
  std::deque<rtl::BlockId> q;
  for (std::size_t v = 0; v < nv; ++v)
    if (indeg[v] == 0) q.push_back(static_cast<rtl::BlockId>(v));
  std::vector<rtl::BlockId> order;
  order.reserve(nv);
  while (!q.empty()) {
    const rtl::BlockId v = q.front();
    q.pop_front();
    order.push_back(v);
    for (rtl::ConnId e : n.fanout(v)) {
      if (!live(removed, e)) continue;
      const rtl::BlockId t = n.connection(e).to;
      if (--indeg[static_cast<std::size_t>(t)] == 0) q.push_back(t);
    }
  }
  if (order.size() != nv)
    throw DesignError("topological_order: graph is cyclic");
  return order;
}

bool is_acyclic(const rtl::Netlist& n, const EdgeSet& removed) {
  try {
    topological_order(n, removed);
    return true;
  } catch (const DesignError&) {
    return false;
  }
}

std::vector<std::vector<rtl::ConnId>> find_cycles(const rtl::Netlist& n,
                                                  std::size_t max_cycles) {
  // DFS-based enumeration of simple cycles, rooted at each vertex in turn and
  // restricted to vertices >= root so each cycle is reported exactly once
  // (at its minimum vertex). Circuits handled by the TDM are small, so the
  // exponential worst case is acceptable and capped by max_cycles.
  std::vector<std::vector<rtl::ConnId>> cycles;
  const std::size_t nv = n.block_count();
  std::vector<char> on_path(nv, 0);
  std::vector<rtl::ConnId> path;

  for (std::size_t root = 0; root < nv && cycles.size() < max_cycles; ++root) {
    struct Frame {
      rtl::BlockId v;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({static_cast<rtl::BlockId>(root), 0});
    on_path[root] = 1;
    while (!stack.empty() && cycles.size() < max_cycles) {
      Frame& f = stack.back();
      const auto& outs = n.fanout(f.v);
      if (f.next >= outs.size()) {
        on_path[static_cast<std::size_t>(f.v)] = 0;
        if (!path.empty()) path.pop_back();
        stack.pop_back();
        continue;
      }
      const rtl::ConnId e = outs[f.next++];
      const rtl::BlockId t = n.connection(e).to;
      if (static_cast<std::size_t>(t) < root) continue;
      if (t == static_cast<rtl::BlockId>(root)) {
        auto cyc = path;
        cyc.push_back(e);
        cycles.push_back(std::move(cyc));
        continue;
      }
      if (on_path[static_cast<std::size_t>(t)]) continue;
      on_path[static_cast<std::size_t>(t)] = 1;
      path.push_back(e);
      stack.push_back({t, 0});
    }
    // Unwind bookkeeping for this root.
    for (const Frame& f : stack) on_path[static_cast<std::size_t>(f.v)] = 0;
    path.clear();
  }
  return cycles;
}

BalanceResult check_balanced(const rtl::Netlist& n, const EdgeSet& removed) {
  BalanceResult res;
  res.acyclic = is_acyclic(n, removed);
  if (!res.acyclic) return res;
  auto urfs = find_all_urfs(n, removed, 1);
  if (!urfs.empty()) {
    res.urfs = urfs.front();
    return res;
  }
  res.balanced = true;
  return res;
}

std::optional<int> path_sequential_length(const rtl::Netlist& n,
                                          rtl::BlockId from, rtl::BlockId to,
                                          const EdgeSet& removed) {
  // BFS over (vertex, length) states; uniqueness enforced on arrival at `to`.
  std::optional<int> found;
  const int max_len = static_cast<int>(n.register_edges().size());
  std::unordered_set<long long> visited;
  std::deque<std::pair<rtl::BlockId, int>> q;
  q.emplace_back(from, 0);
  visited.insert(static_cast<long long>(from) << 32);
  if (from == to) found = 0;
  while (!q.empty()) {
    auto [v, len] = q.front();
    q.pop_front();
    for (rtl::ConnId e : n.fanout(v)) {
      if (!live(removed, e)) continue;
      const rtl::Connection& c = n.connection(e);
      const int nlen = len + (c.is_register() ? 1 : 0);
      if (nlen > max_len) continue;
      const long long key =
          (static_cast<long long>(c.to) << 32) | static_cast<unsigned>(nlen);
      if (!visited.insert(key).second) continue;
      if (c.to == to) {
        if (found && *found != nlen)
          throw DesignError("path_sequential_length: paths of lengths " +
                            std::to_string(*found) + " and " +
                            std::to_string(nlen) + " (URFS)");
        found = nlen;
      }
      q.emplace_back(c.to, nlen);
    }
  }
  return found;
}

std::vector<UrfsWitness> find_all_urfs(const rtl::Netlist& n,
                                       const EdgeSet& removed,
                                       std::size_t max) {
  // For each source vertex, BFS over (vertex, sequential length) states.
  // A vertex reached with two distinct lengths from the same source is an
  // URFS witness. States are bounded by depth <= #register edges.
  std::vector<UrfsWitness> out;
  const std::size_t nv = n.block_count();
  // Sequential lengths of simple paths cannot exceed the register-edge count;
  // bounding the BFS guarantees termination even on (invalid) cyclic input.
  const int max_len = static_cast<int>(n.register_edges().size());
  for (std::size_t s = 0; s < nv && out.size() < max; ++s) {
    std::map<rtl::BlockId, int> first_len;
    std::unordered_set<long long> visited;
    std::deque<std::pair<rtl::BlockId, int>> q;
    std::unordered_set<rtl::BlockId> reported;
    q.emplace_back(static_cast<rtl::BlockId>(s), 0);
    visited.insert(static_cast<long long>(s) << 32);
    first_len[static_cast<rtl::BlockId>(s)] = 0;
    while (!q.empty() && out.size() < max) {
      auto [v, len] = q.front();
      q.pop_front();
      for (rtl::ConnId e : n.fanout(v)) {
        if (!live(removed, e)) continue;
        const rtl::Connection& c = n.connection(e);
        const int nlen = len + (c.is_register() ? 1 : 0);
        if (nlen > max_len) continue;
        const long long key =
            (static_cast<long long>(c.to) << 32) | static_cast<unsigned>(nlen);
        if (!visited.insert(key).second) continue;
        auto [it, inserted] = first_len.emplace(c.to, nlen);
        if (!inserted && it->second != nlen && !reported.count(c.to)) {
          reported.insert(c.to);
          out.push_back(UrfsWitness{static_cast<rtl::BlockId>(s), c.to,
                                    it->second, nlen});
          if (out.size() >= max) break;
        }
        q.emplace_back(c.to, nlen);
      }
    }
  }
  return out;
}

std::optional<UrfsWitness> find_urfs(const rtl::Netlist& n,
                                     const EdgeSet& removed) {
  auto all = find_all_urfs(n, removed, 1);
  if (all.empty()) return std::nullopt;
  return all.front();
}

int sequential_depth(const rtl::Netlist& n) {
  const auto order = topological_order(n);  // throws if cyclic
  std::vector<int> depth(n.block_count(), 0);
  int best = 0;
  for (rtl::BlockId v : order) {
    for (rtl::ConnId e : n.fanout(v)) {
      const rtl::Connection& c = n.connection(e);
      const int cand = depth[static_cast<std::size_t>(v)] +
                       (c.is_register() ? 1 : 0);
      auto& d = depth[static_cast<std::size_t>(c.to)];
      d = std::max(d, cand);
      best = std::max(best, d);
    }
  }
  return best;
}

namespace {

// Depth-first enumeration of simple paths for the cyclic fallback of
// max_marked_edges_on_path. Small circuits only.
int dfs_max_marked(const rtl::Netlist& n, const EdgeSet& marked,
                   rtl::BlockId v, std::vector<char>& on_path) {
  int best = 0;
  on_path[static_cast<std::size_t>(v)] = 1;
  for (rtl::ConnId e : n.fanout(v)) {
    const rtl::Connection& c = n.connection(e);
    if (on_path[static_cast<std::size_t>(c.to)]) continue;
    const int w = marked.count(e) ? 1 : 0;
    best = std::max(best, w + dfs_max_marked(n, marked, c.to, on_path));
  }
  on_path[static_cast<std::size_t>(v)] = 0;
  return best;
}

}  // namespace

int max_marked_edges_on_path(const rtl::Netlist& n, const EdgeSet& marked) {
  if (is_acyclic(n)) {
    const auto order = topological_order(n);
    std::vector<int> best(n.block_count(), 0);
    int global = 0;
    for (rtl::BlockId v : order) {
      for (rtl::ConnId e : n.fanout(v)) {
        const rtl::Connection& c = n.connection(e);
        const int cand = best[static_cast<std::size_t>(v)] +
                         (marked.count(e) ? 1 : 0);
        auto& b = best[static_cast<std::size_t>(c.to)];
        b = std::max(b, cand);
        global = std::max(global, b);
      }
    }
    return global;
  }
  // Cyclic circuit: bound to simple paths starting at primary inputs.
  int best = 0;
  std::vector<char> on_path(n.block_count(), 0);
  for (rtl::BlockId pi : n.inputs())
    best = std::max(best, dfs_max_marked(n, marked, pi, on_path));
  return best;
}

}  // namespace bibs::graph
