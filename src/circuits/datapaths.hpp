#pragma once
// The MABAL-synthesized digital-filter data paths of Table 1, reconstructed
// structurally: 8-bit operands, ripple-carry adders, 8x8 array multipliers
// with only the 8 least significant product lines fed forward (as stated in
// the paper), pipeline registers after every functional block, and delay
// (vacuous-block) register chains where needed to keep the data path
// balanced — which is what makes the whole circuit a single balanced
// BISTable kernel under BIBS.

#include "rtl/netlist.hpp"

namespace bibs::circuits {

/// c5a2m: o = (a+b)*(c+d) + (e+f)*(g+h). 5 adders, 2 multipliers,
/// 15 registers (8 PI, RA1..RA4, RM1, RM2, o).
rtl::Netlist make_c5a2m(int width = 8);

/// c3a2m: o = ((a+b)*c + d)*e + f. 3 adders, 2 multipliers, 21 registers
/// (6 PI, delay chains for c/d/e/f of lengths 1/2/3/4, RA1, RM1, RA2, RM2, o).
rtl::Netlist make_c3a2m(int width = 8);

/// c4a4m: o = a*(f+g) + e*(b+c), p = d*(b+c) + h*(f+g). 4 adders,
/// 4 multipliers, 20 registers (8 PI, delay regs for a/d/e/h, RA1, RA2,
/// RM1..RM4, o, p). The shared (f+g) and (b+c) adders fan out through
/// explicit fanout blocks after their pipeline registers.
rtl::Netlist make_c4a4m(int width = 8);

/// A parameterized FIR-like data-path generator used by the scaling benches:
/// `taps` multiply-accumulate stages, each x*k_i feeding an accumulating
/// adder chain, with balancing delay chains on the accumulator path.
rtl::Netlist make_fir_datapath(int taps, int width = 8);

}  // namespace bibs::circuits
