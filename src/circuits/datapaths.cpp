#include "circuits/datapaths.hpp"

namespace bibs::circuits {

using rtl::BlockId;
using rtl::Netlist;

namespace {

/// PI_<name> --[reg <name>]--> target. Returns the PI block.
BlockId pi_reg(Netlist& n, const std::string& name, int w, BlockId target) {
  const BlockId pi = n.add_input(name, w);
  n.connect_reg(pi, target, name + "_r", w);
  return pi;
}

/// A delay chain of `depth` registers carrying the PI `name` into `target`:
/// PI --[name_r]--> V1 --[name_d1]--> V2 ... --[name_d<depth>]--> target.
/// These are the data-alignment registers a MABAL schedule inserts so that
/// operands synthesized in different control steps meet correctly.
void pi_delayed(Netlist& n, const std::string& name, int w, BlockId target,
                int depth) {
  const BlockId pi = n.add_input(name, w);
  BlockId prev = pi;
  std::string reg = name + "_r";
  for (int i = 1; i <= depth; ++i) {
    const BlockId v = n.add_vacuous(name + "_v" + std::to_string(i), w);
    n.connect_reg(prev, v, reg, w);
    reg = name + "_d" + std::to_string(i);
    prev = v;
  }
  n.connect_reg(prev, target, reg, w);
}

}  // namespace

Netlist make_c5a2m(int w) {
  Netlist n("c5a2m");
  const BlockId a1 = n.add_comb("A1", "add", w);
  const BlockId a2 = n.add_comb("A2", "add", w);
  const BlockId a3 = n.add_comb("A3", "add", w);
  const BlockId a4 = n.add_comb("A4", "add", w);
  const BlockId m1 = n.add_comb("M1", "mul", w);
  const BlockId m2 = n.add_comb("M2", "mul", w);
  const BlockId a5 = n.add_comb("A5", "add", w);
  const BlockId po = n.add_output("o", w);

  pi_reg(n, "a", w, a1);
  pi_reg(n, "b", w, a1);
  pi_reg(n, "c", w, a2);
  pi_reg(n, "d", w, a2);
  pi_reg(n, "e", w, a3);
  pi_reg(n, "f", w, a3);
  pi_reg(n, "g", w, a4);
  pi_reg(n, "h", w, a4);

  n.connect_reg(a1, m1, "RA1", w);
  n.connect_reg(a2, m1, "RA2", w);
  n.connect_reg(a3, m2, "RA3", w);
  n.connect_reg(a4, m2, "RA4", w);
  n.connect_reg(m1, a5, "RM1", w);
  n.connect_reg(m2, a5, "RM2", w);
  n.connect_reg(a5, po, "o_r", w);
  n.validate();
  return n;
}

Netlist make_c3a2m(int w) {
  Netlist n("c3a2m");
  const BlockId a1 = n.add_comb("A1", "add", w);
  const BlockId m1 = n.add_comb("M1", "mul", w);
  const BlockId a2 = n.add_comb("A2", "add", w);
  const BlockId m2 = n.add_comb("M2", "mul", w);
  const BlockId a3 = n.add_comb("A3", "add", w);
  const BlockId po = n.add_output("o", w);

  pi_reg(n, "a", w, a1);
  pi_reg(n, "b", w, a1);
  n.connect_reg(a1, m1, "RA1", w);
  pi_delayed(n, "c", w, m1, 1);  // c meets (a+b) one stage later
  n.connect_reg(m1, a2, "RM1", w);
  pi_delayed(n, "d", w, a2, 2);
  n.connect_reg(a2, m2, "RA2", w);
  pi_delayed(n, "e", w, m2, 3);
  n.connect_reg(m2, a3, "RM2", w);
  pi_delayed(n, "f", w, a3, 4);
  n.connect_reg(a3, po, "o_r", w);
  n.validate();
  return n;
}

Netlist make_c4a4m(int w) {
  Netlist n("c4a4m");
  const BlockId a1 = n.add_comb("A1", "add", w);  // f + g
  const BlockId a2 = n.add_comb("A2", "add", w);  // b + c
  const BlockId fo1 = n.add_fanout("FO1", w);
  const BlockId fo2 = n.add_fanout("FO2", w);
  const BlockId m1 = n.add_comb("M1", "mul", w);  // a * (f+g)
  const BlockId m2 = n.add_comb("M2", "mul", w);  // e * (b+c)
  const BlockId m3 = n.add_comb("M3", "mul", w);  // d * (b+c)
  const BlockId m4 = n.add_comb("M4", "mul", w);  // h * (f+g)
  const BlockId a3 = n.add_comb("A3", "add", w);  // -> o
  const BlockId a4 = n.add_comb("A4", "add", w);  // -> p
  const BlockId po_o = n.add_output("o", w);
  const BlockId po_p = n.add_output("p", w);

  pi_delayed(n, "a", w, m1, 1);  // a meets (f+g) one stage later
  pi_reg(n, "b", w, a2);
  pi_reg(n, "c", w, a2);
  pi_delayed(n, "d", w, m3, 1);
  pi_delayed(n, "e", w, m2, 1);
  pi_reg(n, "f", w, a1);
  pi_reg(n, "g", w, a1);
  pi_delayed(n, "h", w, m4, 1);

  n.connect_reg(a1, fo1, "RA1", w);
  n.connect_reg(a2, fo2, "RA2", w);
  n.connect_wire(fo1, m1, w);
  n.connect_wire(fo1, m4, w);
  n.connect_wire(fo2, m2, w);
  n.connect_wire(fo2, m3, w);

  n.connect_reg(m1, a3, "RM1", w);
  n.connect_reg(m2, a3, "RM2", w);
  n.connect_reg(m3, a4, "RM3", w);
  n.connect_reg(m4, a4, "RM4", w);
  n.connect_reg(a3, po_o, "o_r", w);
  n.connect_reg(a4, po_p, "p_r", w);
  n.validate();
  return n;
}

Netlist make_fir_datapath(int taps, int w) {
  BIBS_ASSERT(taps >= 2);
  Netlist n("fir" + std::to_string(taps));

  // Multipliers M_i = x * k_i; x is shared through a fanout block, with
  // alignment delay chains so the accumulator chain stays balanced.
  const BlockId fox = n.add_fanout("FOx", w);
  pi_reg(n, "x", w, fox);

  std::vector<BlockId> mul(static_cast<std::size_t>(taps));
  for (int i = 1; i <= taps; ++i) {
    const BlockId m =
        n.add_comb("M" + std::to_string(i), "mul", w);
    mul[static_cast<std::size_t>(i - 1)] = m;
    pi_reg(n, "k" + std::to_string(i), w, m);
    const int delay = std::max(0, i - 2);
    if (delay == 0) {
      n.connect_wire(fox, m, w);
    } else {
      BlockId prev = fox;
      for (int d = 1; d <= delay; ++d) {
        const BlockId v =
            n.add_vacuous("xv" + std::to_string(i) + "_" + std::to_string(d),
                          w);
        if (d == 1)
          n.connect_wire(prev, v, w);
        else
          n.connect_reg(prev, v,
                        "xd" + std::to_string(i) + "_" + std::to_string(d - 1),
                        w);
        prev = v;
      }
      n.connect_reg(prev, m,
                    "xd" + std::to_string(i) + "_" + std::to_string(delay), w);
    }
  }

  // Accumulator chain S_1 = M_1 + M_2, S_j = S_{j-1} + M_{j+1}.
  BlockId acc = n.add_comb("S1", "add", w);
  n.connect_reg(mul[0], acc, "RM1", w);
  n.connect_reg(mul[1], acc, "RM2", w);
  for (int j = 2; j < taps; ++j) {
    const BlockId s = n.add_comb("S" + std::to_string(j), "add", w);
    n.connect_reg(acc, s, "RS" + std::to_string(j - 1), w);
    n.connect_reg(mul[static_cast<std::size_t>(j)], s,
                  "RM" + std::to_string(j + 1), w);
    acc = s;
  }
  const BlockId po = n.add_output("y", w);
  n.connect_reg(acc, po, "y_r", w);
  n.validate();
  return n;
}

}  // namespace bibs::circuits
