#include "circuits/figures.hpp"

namespace bibs::circuits {

using rtl::BlockId;
using rtl::Netlist;

Netlist make_fig1(int width) {
  Netlist n("fig1");
  const BlockId pi = n.add_input("PI", width);
  const BlockId f = n.add_fanout("F", width);
  const BlockId c = n.add_comb("C", "xor", width);
  const BlockId po = n.add_output("PO", width);
  n.connect_wire(pi, f, width);
  n.connect_wire(f, c, width);           // direct branch
  n.connect_reg(f, c, "R", width);       // delayed branch: the imbalance
  n.connect_reg(c, po, "RO", width);
  n.validate();
  return n;
}

Netlist make_fig2(int width) {
  Netlist n("fig2");
  const BlockId pi = n.add_input("PI", width);
  const BlockId c1 = n.add_comb("C1", "not", width);
  const BlockId c2 = n.add_comb("C2", "not", width);
  const BlockId po = n.add_output("PO", width);
  n.connect_reg(pi, c1, "R1", width);
  n.connect_reg(c1, c2, "R2", width);
  n.connect_reg(c2, po, "RO", width);
  n.validate();
  return n;
}

Netlist make_fig3(int width) {
  Netlist n("fig3");
  const BlockId pi = n.add_input("PI", width);
  const BlockId fo1 = n.add_fanout("FO1", width);
  const BlockId a = n.add_comb("A", "not", width);
  const BlockId b = n.add_comb("B", "not", width);
  const BlockId c = n.add_comb("C", "not", width);
  const BlockId d = n.add_comb("D", "add", width);
  const BlockId e = n.add_comb("E", "not", width);
  const BlockId f = n.add_comb("F", "not", width);
  const BlockId g = n.add_comb("G", "not", width);
  const BlockId h = n.add_comb("H", "add", width);
  const BlockId v1 = n.add_vacuous("V1", width);
  const BlockId po = n.add_output("PO", width);

  n.connect_reg(pi, fo1, "R1", width);
  n.connect_wire(fo1, a, width);
  n.connect_wire(fo1, b, width);
  n.connect_wire(fo1, c, width);
  // D has two input ports (the text calls this out explicitly).
  n.connect_reg(a, d, "R4", width);
  n.connect_reg(b, v1, "R2", width);   // V1: vacuous block between R2 and R3
  n.connect_reg(v1, d, "R3", width);
  n.connect_wire(d, h, width);
  // URFS branch: FO1 -> C -> E -> G -> H has two register edges while
  // FO1 -> A -> D -> H has one.
  n.connect_wire(c, e, width);
  n.connect_reg(e, g, "R8", width);
  n.connect_reg(g, h, "R9", width);
  // Cycle between F and H.
  n.connect_reg(h, f, "R6", width);
  n.connect_reg(f, h, "R5", width);
  n.connect_reg(h, po, "R7", width);
  n.validate();
  return n;
}

Netlist make_fig4(int width) {
  Netlist n("fig4");
  const BlockId pi = n.add_input("PI", width);
  const BlockId c1 = n.add_comb("C1", "not", width);
  const BlockId c2 = n.add_comb("C2", "not", width);
  const BlockId c3 = n.add_comb("C3", "not", width);
  const BlockId c4 = n.add_comb("C4", "not", width);
  const BlockId c5 = n.add_comb("C5", "not", width);
  const BlockId c6 = n.add_comb("C6", "add", width);
  const BlockId po = n.add_output("PO", width);

  n.connect_reg(pi, c1, "R1", width);
  n.connect_reg(c1, c2, "R2", width);   // internal to kernel 1
  // Kernel-1 outputs (the SAs of the first test session).
  n.connect_reg(c2, c3, "R3", width);
  n.connect_reg(c1, c4, "R7", width);
  n.connect_reg(c2, c5, "R8", width);
  n.connect_reg(c2, c6, "R9", width);
  // Kernel 2: C3/C4/C5 converge on C6 with matched-by-design imbalance in
  // the *unconverted* circuit (paths C1 -> C6 of sequential lengths 1..3).
  n.connect_reg(c3, c6, "R4", width);
  n.connect_wire(c4, c6, width);
  n.connect_reg(c5, c6, "R5", width);
  n.connect_reg(c6, po, "R6", width);
  n.validate();
  return n;
}

std::vector<std::string> fig4_example_bilbos() {
  return {"R1", "R3", "R6", "R7", "R8", "R9"};
}

Netlist make_fig9() {
  Netlist n("fig9");
  const BlockId pi1 = n.add_input("PI1", 6);
  const BlockId pi2 = n.add_input("PI2", 6);
  const BlockId pi3 = n.add_input("PI3", 4);
  const BlockId pi4 = n.add_input("PI4", 5);
  const BlockId b1 = n.add_comb("B1", "generic", 6);
  const BlockId b2 = n.add_comb("B2", "generic", 5);
  const BlockId v1 = n.add_vacuous("V1", 4);
  const BlockId v2 = n.add_vacuous("V2", 5);
  const BlockId po1 = n.add_output("PO1", 5);
  const BlockId po2 = n.add_output("PO2", 6);

  n.connect_reg(pi1, b1, "P1", 6);
  n.connect_reg(pi2, b1, "P2", 6);
  n.connect_reg(pi3, v1, "P3", 4);
  n.connect_reg(pi4, v2, "P4", 5);
  n.connect_reg(v2, b1, "M4", 5);  // balancing delay chain into B1
  n.connect_reg(b1, b2, "M1", 6);
  n.connect_reg(v1, b2, "M3", 4);  // balancing delay chain into B2
  n.connect_reg(b2, b1, "M2", 5);  // feedback: the cycle that forces 2 BILBOs
  n.connect_reg(b2, po1, "O1", 5);
  n.connect_reg(b1, po2, "O2", 6);
  n.validate();
  return n;
}

Netlist make_fig12a(int w) {
  Netlist n("fig12a");
  const BlockId pi1 = n.add_input("PI1", w);
  const BlockId pi2 = n.add_input("PI2", w);
  const BlockId pi3 = n.add_input("PI3", w);
  const BlockId c1 = n.add_comb("C1", "not", w);
  const BlockId c2 = n.add_comb("C2", "not", w);
  const BlockId c4 = n.add_comb("C4", "not", w);
  const BlockId c3 = n.add_comb("C3", "add", w);
  const BlockId c5 = n.add_comb("C5", "not", w);
  const BlockId po = n.add_output("PO", w);

  n.connect_reg(pi1, c1, "R1", w);
  n.connect_reg(c1, c2, "Ra", w);
  n.connect_reg(c2, c3, "Rb", w);  // d(R1 -> C3) = 2
  n.connect_reg(pi2, c4, "R2", w);
  n.connect_reg(c4, c3, "Rc", w);  // d(R2 -> C3) = 1
  n.connect_reg(pi3, c3, "R3", w);  // d(R3 -> C3) = 0
  n.connect_wire(c3, c5, w);        // C5: the single-input-port block
  n.connect_reg(c5, po, "RO", w);
  n.validate();
  return n;
}

}  // namespace bibs::circuits
