#include "circuits/random.hpp"

#include "common/prng.hpp"

namespace bibs::circuits {

using rtl::BlockId;
using rtl::Netlist;

Netlist make_random_circuit(const RandomCircuitOptions& opt) {
  BIBS_ASSERT(opt.comb_blocks >= 1 && opt.width >= 1);
  Xoshiro256 rng(opt.seed);
  Netlist n("random" + std::to_string(opt.seed));
  int reg_counter = 0;
  auto reg_name = [&] { return "r" + std::to_string(reg_counter++); };

  // Primary inputs (always registered: the BIBS boundary requirement).
  const int npi = 2 + static_cast<int>(rng.next_below(2));
  std::vector<BlockId> sources;
  std::vector<BlockId> pis;
  for (int i = 0; i < npi; ++i)
    pis.push_back(n.add_input("x" + std::to_string(i), opt.width));

  // Comb blocks in topological order; each consumes 1-3 earlier outputs.
  std::vector<BlockId> blocks;
  for (int b = 0; b < opt.comb_blocks; ++b) {
    int arity = 1;
    if (rng.next_double() < opt.extra_input_probability) ++arity;
    if (arity == 2 && rng.next_double() < opt.extra_input_probability) ++arity;
    const char* op = arity == 1 ? "not" : (rng.next_below(2) ? "add" : "xor");
    const BlockId blk =
        n.add_comb("b" + std::to_string(b), op, opt.width);
    for (int a = 0; a < arity; ++a) {
      // Source: a PI (first input of the first blocks) or an earlier block.
      BlockId src;
      bool from_pi = blocks.empty() || rng.next_below(4) == 0;
      if (from_pi) {
        src = pis[rng.next_below(pis.size())];
        // PI connections are always registered.
        n.connect_reg(src, blk, reg_name(), opt.width);
        continue;
      }
      src = blocks[rng.next_below(blocks.size())];
      if (rng.next_double() < opt.reg_probability)
        n.connect_reg(src, blk, reg_name(), opt.width);
      else
        n.connect_wire(src, blk, opt.width);
    }
    blocks.push_back(blk);
  }

  if (opt.add_cycle && blocks.size() >= 2) {
    // Registered feedback from a late block into an early n-ary block (the
    // extra port keeps "add"/"xor" elaboratable; "not" blocks are skipped).
    for (std::size_t to = 0; to < blocks.size() / 2; ++to) {
      if (n.block(blocks[to]).op == "not") continue;
      const std::size_t from =
          blocks.size() / 2 +
          rng.next_below(blocks.size() - blocks.size() / 2);
      n.connect_reg(blocks[from], blocks[to], reg_name(), opt.width);
      break;
    }
  }

  // Every sink (block with no fan-out) drives a registered PO.
  int po_counter = 0;
  for (BlockId b : blocks) {
    if (!n.fanout(b).empty()) continue;
    const BlockId po =
        n.add_output("y" + std::to_string(po_counter++), opt.width);
    n.connect_reg(b, po, reg_name(), opt.width);
  }
  // Unused PIs would fail validation; tie them to an extra sink block.
  for (BlockId pi : pis) {
    if (!n.fanout(pi).empty()) continue;
    const BlockId blk = n.add_comb("tie" + std::to_string(pi), "not",
                                   opt.width);
    n.connect_reg(pi, blk, reg_name(), opt.width);
    const BlockId po =
        n.add_output("y" + std::to_string(po_counter++), opt.width);
    n.connect_reg(blk, po, reg_name(), opt.width);
  }
  n.validate();
  return n;
}

}  // namespace bibs::circuits
