#include "circuits/random.hpp"

#include <algorithm>

#include "common/prng.hpp"

namespace bibs::circuits {

using rtl::BlockId;
using rtl::Netlist;

Netlist make_random_circuit(const RandomCircuitOptions& opt) {
  BIBS_ASSERT(opt.comb_blocks >= 1 && opt.width >= 1);
  Xoshiro256 rng(opt.seed);
  Netlist n("random" + std::to_string(opt.seed));
  int reg_counter = 0;
  auto reg_name = [&] { return "r" + std::to_string(reg_counter++); };

  // Primary inputs (always registered: the BIBS boundary requirement).
  const int npi = 2 + static_cast<int>(rng.next_below(2));
  std::vector<BlockId> sources;
  std::vector<BlockId> pis;
  for (int i = 0; i < npi; ++i)
    pis.push_back(n.add_input("x" + std::to_string(i), opt.width));

  // Comb blocks in topological order; each consumes 1-3 earlier outputs.
  std::vector<BlockId> blocks;
  for (int b = 0; b < opt.comb_blocks; ++b) {
    int arity = 1;
    if (rng.next_double() < opt.extra_input_probability) ++arity;
    if (arity == 2 && rng.next_double() < opt.extra_input_probability) ++arity;
    const char* op = arity == 1 ? "not" : (rng.next_below(2) ? "add" : "xor");
    const BlockId blk =
        n.add_comb("b" + std::to_string(b), op, opt.width);
    for (int a = 0; a < arity; ++a) {
      // Source: a PI (first input of the first blocks) or an earlier block.
      BlockId src;
      bool from_pi = blocks.empty() || rng.next_below(4) == 0;
      if (from_pi) {
        src = pis[rng.next_below(pis.size())];
        // PI connections are always registered.
        n.connect_reg(src, blk, reg_name(), opt.width);
        continue;
      }
      src = blocks[rng.next_below(blocks.size())];
      if (rng.next_double() < opt.reg_probability)
        n.connect_reg(src, blk, reg_name(), opt.width);
      else
        n.connect_wire(src, blk, opt.width);
    }
    blocks.push_back(blk);
  }

  if (opt.add_cycle && blocks.size() >= 2) {
    // Registered feedback from a late block into an early n-ary block (the
    // extra port keeps "add"/"xor" elaboratable; "not" blocks are skipped).
    for (std::size_t to = 0; to < blocks.size() / 2; ++to) {
      if (n.block(blocks[to]).op == "not") continue;
      const std::size_t from =
          blocks.size() / 2 +
          rng.next_below(blocks.size() - blocks.size() / 2);
      n.connect_reg(blocks[from], blocks[to], reg_name(), opt.width);
      break;
    }
  }

  // Every sink (block with no fan-out) drives a registered PO.
  int po_counter = 0;
  for (BlockId b : blocks) {
    if (!n.fanout(b).empty()) continue;
    const BlockId po =
        n.add_output("y" + std::to_string(po_counter++), opt.width);
    n.connect_reg(b, po, reg_name(), opt.width);
  }
  // Unused PIs would fail validation; tie them to an extra sink block.
  for (BlockId pi : pis) {
    if (!n.fanout(pi).empty()) continue;
    const BlockId blk = n.add_comb("tie" + std::to_string(pi), "not",
                                   opt.width);
    n.connect_reg(pi, blk, reg_name(), opt.width);
    const BlockId po =
        n.add_output("y" + std::to_string(po_counter++), opt.width);
    n.connect_reg(blk, po, reg_name(), opt.width);
  }
  n.validate();
  return n;
}

gate::Netlist make_random_gate_netlist(const RandomGateNetlistOptions& opt) {
  BIBS_ASSERT(opt.inputs >= 2 && opt.gates >= 1 && opt.outputs >= 1);
  Xoshiro256 rng(opt.seed);
  gate::Netlist nl;
  std::vector<gate::NetId> pool;
  for (int i = 0; i < opt.inputs; ++i)
    pool.push_back(nl.add_input("x" + std::to_string(i)));

  static constexpr gate::GateType kBinary[] = {
      gate::GateType::kAnd, gate::GateType::kOr,  gate::GateType::kNand,
      gate::GateType::kNor, gate::GateType::kXor, gate::GateType::kXnor};
  for (int i = 0; i < opt.gates; ++i) {
    if (rng.next_double() < opt.unary_probability) {
      const gate::GateType t =
          rng.next_below(2) ? gate::GateType::kNot : gate::GateType::kBuf;
      pool.push_back(nl.add_gate(t, {pool[rng.next_below(pool.size())]}));
      continue;
    }
    const gate::GateType t = kBinary[rng.next_below(6)];
    std::vector<gate::NetId> fanin = {pool[rng.next_below(pool.size())],
                                      pool[rng.next_below(pool.size())]};
    if (rng.next_double() < opt.wide_probability)
      fanin.push_back(pool[rng.next_below(pool.size())]);
    pool.push_back(nl.add_gate(t, std::move(fanin)));
  }

  const std::size_t npo =
      std::min<std::size_t>(static_cast<std::size_t>(opt.outputs),
                            pool.size());
  for (std::size_t i = pool.size() - npo; i < pool.size(); ++i)
    nl.mark_output(pool[i],
                   "y" + std::to_string(i - (pool.size() - npo)));
  nl.validate();
  return nl;
}

}  // namespace bibs::circuits
