#pragma once
// RTL reconstructions of the paper's illustrative figures. The paper prints
// the figures but not full netlists, so these builders reproduce every
// structural property the text states (path lengths, cycles, URFSs, port
// counts, register counts and widths); tests assert those properties.

#include "rtl/netlist.hpp"

namespace bibs::circuits {

/// Figure 1: an unbalanced circuit — PI feeds fanout block F, which feeds
/// combinational block C both directly and through register R. Every
/// detectable fault is 2-pattern detectable; the circuit is 2-step
/// functionally testable.
rtl::Netlist make_fig1(int width = 4);

/// Figure 2: a 1-step functionally testable pipeline
/// PI -> R1 -> C1 -> R2 -> C2 -> PO.
rtl::Netlist make_fig2(int width = 4);

/// Figure 3: the example circuit of Section 3.1 — blocks A..H, a fanout
/// vertex FO1 after R1, a vacuous vertex V1 between R2 and R3, a cycle
/// between F and H, and an URFS through {FO1, A, C, D, E, G, H}.
rtl::Netlist make_fig3(int width = 8);

/// Figure 4 (Example 1): an unbalanced circuit with nine registers where
/// converting {R1, R3, R6, R7, R8, R9} yields two balanced BISTable kernels:
/// kernel 1 tested with R1 as TPG and R3/R7/R8/R9 as SAs, kernel 2 with
/// R3/R7/R8/R9 as TPGs and R6 as SA. (Topology reconstructed from the
/// example's session description.)
rtl::Netlist make_fig4(int width = 8);

/// The BILBO set of Example 1 for make_fig4 (register names).
std::vector<std::string> fig4_example_bilbos();

/// Figure 9: the example circuit employed in [3] (reconstruction). The KA85
/// methodology converts 10 registers totalling 52 flip-flops; BIBS converts
/// 8 registers totalling 43 flip-flops; both partition the circuit into two
/// kernels.
rtl::Netlist make_fig9();

/// Figure 12(a): the single-cone balanced BISTable kernel of Example 2 —
/// three 4-bit input registers with sequential lengths 2, 1, 0 to the cone.
rtl::Netlist make_fig12a(int reg_width = 4);

}  // namespace bibs::circuits
