#pragma once
// Seeded random RTL circuit generator for property-based testing of the
// whole pipeline (parse -> analyze -> design -> TPG -> fault-simulate).

#include <cstdint>

#include "rtl/netlist.hpp"

namespace bibs::circuits {

struct RandomCircuitOptions {
  int comb_blocks = 8;
  int width = 4;
  /// Probability that an internal connection is a register edge. With 1.0
  /// every edge is registered and a BIBS design always exists.
  double reg_probability = 0.7;
  /// Probability that a block takes a second/third input port.
  double extra_input_probability = 0.5;
  /// Add one registered feedback edge, creating a sequential cycle.
  bool add_cycle = false;
  std::uint64_t seed = 1;
};

/// Generates a valid (Netlist::validate-clean) circuit: a topologically
/// ordered chain of comb blocks fed by 2-3 PIs through registers, random
/// wire/register internal edges, and registered PO(s) for every sink block.
rtl::Netlist make_random_circuit(const RandomCircuitOptions& opt);

}  // namespace bibs::circuits
