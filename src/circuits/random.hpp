#pragma once
// Seeded random RTL circuit generator for property-based testing of the
// whole pipeline (parse -> analyze -> design -> TPG -> fault-simulate).

#include <cstdint>

#include "gate/netlist.hpp"
#include "rtl/netlist.hpp"

namespace bibs::circuits {

struct RandomCircuitOptions {
  int comb_blocks = 8;
  int width = 4;
  /// Probability that an internal connection is a register edge. With 1.0
  /// every edge is registered and a BIBS design always exists.
  double reg_probability = 0.7;
  /// Probability that a block takes a second/third input port.
  double extra_input_probability = 0.5;
  /// Add one registered feedback edge, creating a sequential cycle.
  bool add_cycle = false;
  std::uint64_t seed = 1;
};

/// Generates a valid (Netlist::validate-clean) circuit: a topologically
/// ordered chain of comb blocks fed by 2-3 PIs through registers, random
/// wire/register internal edges, and registered PO(s) for every sink block.
rtl::Netlist make_random_circuit(const RandomCircuitOptions& opt);

struct RandomGateNetlistOptions {
  int inputs = 8;
  int gates = 40;
  int outputs = 4;
  /// Fraction of unary (BUF/NOT) gates among the `gates`.
  double unary_probability = 0.15;
  /// Fraction of 3-input gates among the non-unary gates (reconvergent
  /// fanout plus wide-gate opcodes for the generic kernel fallback).
  double wide_probability = 0.2;
  std::uint64_t seed = 1;
};

/// Seeded random *gate-level* combinational netlist: a validate-clean pool
/// of AND/OR/NAND/NOR/XOR/XNOR (plus occasional BUF/NOT and 3-input) gates
/// over earlier nets, with the last `outputs` pool nets marked as POs. The
/// workhorse input of the bibs::check differential suite: small enough that
/// every output cone is exhaustible, random enough to hit reconvergence.
gate::Netlist make_random_gate_netlist(const RandomGateNetlistOptions& opt);

}  // namespace bibs::circuits
