#include "corpus/corpus.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "check/check.hpp"
#include "circuits/datapaths.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "core/kernels.hpp"
#include "fault/fault.hpp"
#include "fault/simulator.hpp"
#include "gate/bench_format.hpp"
#include "gate/lanes.hpp"
#include "gate/synth.hpp"
#include "obs/obs.hpp"
#include "sim/session.hpp"

namespace bibs::corpus {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw ParseError("cannot read '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Coverage as a fixed 4-decimal percentage string: doubles never reach the
/// serializer, so the table is byte-stable across compilers and libcs.
std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", fraction * 100.0);
  return buf;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Per-unit circuit material: the combinational netlist every fault-sim run
/// uses, plus (data paths only) the session ingredients.
struct UnitCircuit {
  gate::Netlist comb;
  // Data-path kinds only; bench files have no RTL side.
  bool has_rtl = false;
  rtl::Netlist n;
  gate::Elaboration elab;
  core::DesignResult design;
  std::size_t kernel_index = 0;
};

rtl::Netlist make_rtl(const CircuitSpec& spec) {
  if (spec.kind == CircuitKind::kFirDatapath)
    return circuits::make_fir_datapath(spec.taps, spec.width);
  if (spec.file == "c5a2m") return circuits::make_c5a2m(spec.width);
  if (spec.file == "c3a2m") return circuits::make_c3a2m(spec.width);
  if (spec.file == "c4a4m") return circuits::make_c4a4m(spec.width);
  throw DesignError("unknown data-path generator '" + spec.file + "'");
}

UnitCircuit load_circuit(const CircuitSpec& spec, const SweepOptions& opt) {
  UnitCircuit u;
  if (spec.kind == CircuitKind::kBenchFile) {
    u.comb = gate::parse_bench(read_file(opt.data_dir + "/" + spec.file));
    return u;
  }
  u.has_rtl = true;
  u.n = make_rtl(spec);
  u.elab = gate::elaborate(u.n);
  u.design = core::design_bibs(u.n);
  if (!u.design.report.ok)
    throw DesignError("data path '" + spec.name + "' is not BIBS-testable");
  bool found = false;
  for (std::size_t ki = 0; ki < u.design.report.kernels.size(); ++ki) {
    if (u.design.report.kernels[ki].trivial) continue;
    u.kernel_index = ki;
    found = true;
    break;
  }
  if (!found)
    throw DesignError("data path '" + spec.name + "' has no test kernel");
  const core::Kernel& k = u.design.report.kernels[u.kernel_index];
  u.comb = gate::combinational_kernel(u.elab, u.n, k.input_regs,
                                      k.output_regs);
  return u;
}

fault::FaultModel parse_model(const std::string& name) {
  return fault::fault_model_from_string(name);  // throws on unknown
}

const gate::LaneBackend* resolve_lanes(int lanes) {
  if (lanes == 0) return &gate::active_lane_backend();
  const gate::LaneBackend* lb = gate::lane_backend_for_lanes(lanes);
  if (lb == nullptr)
    throw DesignError("no compiled-in, CPU-supported lane backend runs " +
                      std::to_string(lanes) + " pattern lanes per block");
  return lb;
}

/// token + deadline forwarded, unit budget NOT: inner work units are
/// patterns/cycles, the corpus budget counts circuits.
rt::RunControl inner_ctl(const rt::RunControl& ctl) {
  rt::RunControl c;
  c.token = ctl.token;
  c.deadline = ctl.deadline;
  return c;
}

/// One (circuit, model) fault-simulation row. Returns a null Json when the
/// run was interrupted (status is propagated through `status`).
obs::Json run_model(const UnitCircuit& u, fault::FaultModel model,
                    const SweepOptions& opt, const gate::LaneBackend* lb,
                    rt::RunStatus& status) {
  fault::FaultList fl = model == fault::FaultModel::kStuckAt
                            ? fault::FaultList::collapsed(u.comb)
                            : fault::FaultList::transition(u.comb);
  const std::size_t n_faults = fl.size();
  const std::size_t n_full = fl.full_size();
  fault::FaultSimulator sim(u.comb, std::move(fl),
                            fault::EvalBackend::kCompiled, model);
  sim.set_lane_backend(lb);
  sim.set_threads(opt.threads);
  Xoshiro256 rng(opt.seed);
  const fault::CoverageCurve curve =
      sim.run_random(rng, opt.max_patterns,
                     std::numeric_limits<std::int64_t>::max(),
                     inner_ctl(opt.ctl));
  if (curve.status != rt::RunStatus::kFinished) {
    status = curve.status;
    return obs::Json();
  }
  obs::Json j = obs::Json::object();
  j["faults"] = obs::Json(static_cast<std::uint64_t>(n_faults));
  j["faults_full"] = obs::Json(static_cast<std::uint64_t>(n_full));
  j["patterns_run"] = obs::Json(curve.patterns_run);
  j["detected"] =
      obs::Json(static_cast<std::uint64_t>(curve.detected_count()));
  j["coverage_pct"] = obs::Json(pct(curve.coverage()));
  obs::Json at = obs::Json::object();
  for (const std::int64_t b : opt.budgets)
    at[std::to_string(b)] = obs::Json(pct(curve.coverage_after(b)));
  j["coverage_at"] = std::move(at);
  j["patterns_to_99_5_pct"] = obs::Json(curve.patterns_for_fraction(0.995));
  j["patterns_to_100_pct"] = obs::Json(curve.patterns_for_fraction(1.0));
  return j;
}

/// BIST session rows for a data path (both models), or a null Json when
/// skipped (over the gate cap) / interrupted.
obs::Json run_sessions(const UnitCircuit& u, const SweepOptions& opt,
                       rt::RunStatus& status, std::string& skipped) {
  const core::Kernel& k = u.design.report.kernels[u.kernel_index];
  // TPG synthesis has hard structural limits (e.g. the primitive-polynomial
  // table tops out at degree 64); kernels beyond them skip the session
  // phase with the reason recorded instead of failing the sweep.
  std::unique_ptr<sim::BistSession> holder;
  try {
    holder = std::make_unique<sim::BistSession>(u.n, u.elab, u.design.bilbo,
                                                k);
  } catch (const DesignError& e) {
    skipped = e.what();
    return obs::Json();
  }
  sim::BistSession& sess = *holder;
  sess.set_threads(opt.threads);
  sess.set_batch_lanes(opt.lanes);
  obs::Json j = obs::Json::object();
  j["kernel"] = obs::Json("k" + std::to_string(u.kernel_index));
  j["cycles"] = obs::Json(opt.session_cycles);
  for (const std::string& mname : opt.models) {
    const fault::FaultModel model = parse_model(mname);
    sess.set_fault_model(model);
    const fault::FaultList faults = model == fault::FaultModel::kStuckAt
                                        ? sess.kernel_faults()
                                        : sess.kernel_transition_faults();
    const sim::SessionReport rep =
        sess.run(faults, opt.session_cycles, inner_ctl(opt.ctl));
    if (rep.status != rt::RunStatus::kFinished) {
      status = rep.status;
      return obs::Json();
    }
    obs::Json m = obs::Json::object();
    m["faults"] = obs::Json(static_cast<std::uint64_t>(rep.total_faults));
    m["detected_at_outputs"] =
        obs::Json(static_cast<std::uint64_t>(rep.detected_at_outputs));
    m["detected_by_signature"] =
        obs::Json(static_cast<std::uint64_t>(rep.detected_by_signature));
    m["aliased"] = obs::Json(static_cast<std::uint64_t>(rep.aliased));
    j[mname] = std::move(m);
  }
  return j;
}

/// The light oracle subset: engine self-identities that must hold on every
/// healthy tree. Full miter proofs stay in bibs_check; these three are the
/// cheap cross-checks worth running per corpus circuit.
obs::Json run_checks(const UnitCircuit& u, const SweepOptions& opt,
                     int& failed) {
  check::OracleContext ctx;
  ctx.ref = &u.comb;
  ctx.impl = &u.comb;
  ctx.seed = opt.seed;
  ctx.patterns = opt.check_patterns;
  ctx.threads = 4;
  ctx.emit_netlist = false;
  obs::Json j = obs::Json::object();
  const struct {
    const char* name;
    check::Verdict (*fn)(const check::OracleContext&);
  } oracles[] = {
      {"eval_identity", check::eval_identity},
      {"thread_curve_identity", check::thread_curve_identity},
      {"backend_curve_identity", check::backend_curve_identity},
  };
  for (const auto& o : oracles) {
    const bool pass = o.fn(ctx).pass;
    j[o.name] = obs::Json(pass);
    if (!pass) ++failed;
  }
  return j;
}

obs::Json run_unit(const CircuitSpec& spec, const SweepOptions& opt,
                   const gate::LaneBackend* lb, rt::RunStatus& status,
                   int& failed_checks) {
  const UnitCircuit u = load_circuit(spec, opt);
  obs::Json j = obs::Json::object();
  j["circuit"] = obs::Json(spec.name);
  j["kind"] = obs::Json(to_string(spec.kind));
  j["inputs"] =
      obs::Json(static_cast<std::uint64_t>(u.comb.inputs().size()));
  j["outputs"] =
      obs::Json(static_cast<std::uint64_t>(u.comb.outputs().size()));
  j["gates"] = obs::Json(static_cast<std::uint64_t>(u.comb.gate_count()));
  if (u.has_rtl) {
    j["elab_gates"] =
        obs::Json(static_cast<std::uint64_t>(u.elab.netlist.gate_count()));
    j["dffs"] =
        obs::Json(static_cast<std::uint64_t>(u.elab.netlist.dffs().size()));
  }
  obs::Json models = obs::Json::object();
  for (const std::string& mname : opt.models) {
    obs::Json m = run_model(u, parse_model(mname), opt, lb, status);
    if (status != rt::RunStatus::kFinished) return obs::Json();
    models[mname] = std::move(m);
  }
  j["models"] = std::move(models);
  if (u.has_rtl && opt.run_sessions &&
      u.elab.netlist.gate_count() <= opt.session_gate_limit) {
    std::string skipped;
    obs::Json s = run_sessions(u, opt, status, skipped);
    if (status != rt::RunStatus::kFinished) return obs::Json();
    if (skipped.empty())
      j["session"] = std::move(s);
    else
      j["session_skipped"] = obs::Json(skipped);
  }
  if (opt.run_checks) j["checks"] = run_checks(u, opt, failed_checks);
  return j;
}

void save_checkpoint(const std::string& path, const std::string& digest,
                     const obs::Json& circuits) {
  obs::Json ck = obs::Json::object();
  ck["tool"] = obs::Json("bibs_corpus_checkpoint");
  ck["digest"] = obs::Json(digest);
  ck["circuits"] = circuits;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out.good())
      throw ParseError("cannot write checkpoint '" + tmp + "'");
    out << ck.dump() << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw ParseError("cannot rename checkpoint '" + tmp + "' to '" + path +
                     "'");
}

/// Completed unit tables from a prior checkpoint, or an empty array when
/// the file is absent or carries a different options digest.
obs::Json load_checkpoint(const std::string& path, const std::string& digest) {
  std::ifstream in(path);
  if (!in.good()) return obs::Json::array();
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::Json ck = obs::Json::parse(ss.str());
  const obs::Json* d = ck.find("digest");
  const obs::Json* c = ck.find("circuits");
  if (d == nullptr || !d->is_string() || d->str() != digest ||
      c == nullptr || !c->is_array())
    return obs::Json::array();
  return *c;
}

void diff_walk(const std::string& path, const obs::Json& a, const obs::Json& b,
               std::size_t max_diffs, std::vector<std::string>& out) {
  if (out.size() >= max_diffs) return;
  if (a.type() != b.type() || a.is_null() || a.is_number() || a.is_string() ||
      a.type() == obs::Json::Type::kBool) {
    if (a.dump() != b.dump())
      out.push_back(path + ": " + a.dump() + " != " + b.dump());
    return;
  }
  if (a.is_array()) {
    if (a.size() != b.size()) {
      out.push_back(path + ": array length " + std::to_string(a.size()) +
                    " != " + std::to_string(b.size()));
      return;
    }
    for (std::size_t i = 0; i < a.size(); ++i)
      diff_walk(path + "[" + std::to_string(i) + "]", a.items()[i],
                b.items()[i], max_diffs, out);
    return;
  }
  // Objects: compare in golden key order, then surface keys only one has.
  for (const auto& [k, v] : a.members()) {
    const obs::Json* bv = b.find(k);
    if (bv == nullptr) {
      if (out.size() < max_diffs)
        out.push_back(path + "." + k + ": missing on the fresh side");
      continue;
    }
    diff_walk(path + "." + k, v, *bv, max_diffs, out);
  }
  for (const auto& [k, v] : b.members())
    if (a.find(k) == nullptr && out.size() < max_diffs)
      out.push_back(path + "." + k + ": missing on the golden side");
}

}  // namespace

const char* to_string(CircuitKind k) {
  switch (k) {
    case CircuitKind::kBenchFile: return "bench";
    case CircuitKind::kPaperDatapath: return "datapath";
    case CircuitKind::kFirDatapath: return "fir";
  }
  return "bench";
}

std::vector<CircuitSpec> standard_corpus(const std::string& subset) {
  const auto bench = [](const char* name) {
    CircuitSpec s;
    s.name = name;
    s.kind = CircuitKind::kBenchFile;
    s.file = std::string("iscas85/") + name + ".bench";
    return s;
  };
  const auto paper = [](const char* base, int width) {
    CircuitSpec s;
    s.name = std::string(base) + "_w" + std::to_string(width);
    s.kind = CircuitKind::kPaperDatapath;
    s.file = base;
    s.width = width;
    return s;
  };
  const auto fir = [](int taps, int width) {
    CircuitSpec s;
    s.name = "fir" + std::to_string(taps) + "_w" + std::to_string(width);
    s.kind = CircuitKind::kFirDatapath;
    s.taps = taps;
    s.width = width;
    return s;
  };
  if (subset == "tier1")
    return {bench("c17"), bench("c432"), paper("c5a2m", 2)};
  if (subset == "quick")
    return {bench("c17"),   bench("c432"), bench("c499"),  bench("c880"),
            bench("c1355"), bench("c1908"), bench("c2670"), bench("c3540"),
            paper("c5a2m", 4), fir(16, 4)};
  if (subset == "full")
    return {bench("c17"),   bench("c432"),  bench("c499"),  bench("c880"),
            bench("c1355"), bench("c1908"), bench("c2670"), bench("c3540"),
            bench("c5315"), bench("c6288"), bench("c7552"),
            paper("c5a2m", 8), paper("c3a2m", 8), paper("c4a4m", 8),
            fir(24, 8), fir(48, 8), fir(96, 8)};
  throw DesignError("unknown corpus subset '" + subset +
                    "' (tier1, quick, full)");
}

std::string options_digest(const std::vector<CircuitSpec>& specs,
                           const SweepOptions& opt) {
  std::stringstream ss;
  ss << "seed=" << opt.seed << ";max_patterns=" << opt.max_patterns
     << ";lanes=" << opt.lanes << ";sessions=" << opt.run_sessions
     << ";session_cycles=" << opt.session_cycles
     << ";session_gate_limit=" << opt.session_gate_limit
     << ";checks=" << opt.run_checks
     << ";check_patterns=" << opt.check_patterns << ";budgets=";
  for (const std::int64_t b : opt.budgets) ss << b << ",";
  ss << ";models=";
  for (const std::string& m : opt.models) ss << m << ",";
  ss << ";circuits=";
  for (const CircuitSpec& s : specs)
    ss << s.name << "/" << to_string(s.kind) << "/" << s.file << "/" << s.taps
       << "/" << s.width << ",";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(ss.str())));
  return buf;
}

CorpusResult run_corpus(const std::vector<CircuitSpec>& specs,
                        const SweepOptions& opt) {
  obs::Span span("corpus.run");
  const gate::LaneBackend* lb = resolve_lanes(opt.lanes);
  for (const std::string& m : opt.models) parse_model(m);  // validate early

  CorpusResult result;
  result.table = obs::Json::object();
  result.table["tool"] = obs::Json("bibs_corpus");
  result.table["seed"] = obs::Json(opt.seed);
  result.table["max_patterns"] = obs::Json(opt.max_patterns);
  result.table["lanes"] = obs::Json(opt.lanes);
  obs::Json models = obs::Json::array();
  for (const std::string& m : opt.models) models.push_back(obs::Json(m));
  result.table["models"] = std::move(models);
  obs::Json budgets = obs::Json::array();
  for (const std::int64_t b : opt.budgets) budgets.push_back(obs::Json(b));
  result.table["budgets"] = std::move(budgets);

  result.timing = obs::Json::object();
  result.timing["tool"] = obs::Json("bibs_corpus_timing");
  result.timing["lane_backend"] = obs::Json(std::string(lb->name));
  result.timing["threads"] = obs::Json(opt.threads);
  obs::Json times = obs::Json::array();

  const std::string digest = options_digest(specs, opt);
  obs::Json circuits = opt.checkpoint_path.empty()
                           ? obs::Json::array()
                           : load_checkpoint(opt.checkpoint_path, digest);
  const std::size_t resumed = circuits.size();

  using Clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i < resumed) {
      obs::Json t = obs::Json::object();
      t["circuit"] = obs::Json(specs[i].name);
      t["resumed"] = obs::Json(true);
      times.push_back(std::move(t));
      ++result.units_done;
      continue;
    }
    if (const rt::RunStatus st = opt.ctl.interruption(
            static_cast<std::int64_t>(result.units_done));
        st != rt::RunStatus::kFinished) {
      result.status = st;
      break;
    }
    const Clock::time_point t0 = Clock::now();
    rt::RunStatus status = rt::RunStatus::kFinished;
    obs::Json unit =
        run_unit(specs[i], opt, lb, status, result.failed_checks);
    if (status != rt::RunStatus::kFinished) {
      result.status = status;  // unfinished unit dropped whole
      break;
    }
    circuits.push_back(std::move(unit));
    ++result.units_done;
    obs::Json t = obs::Json::object();
    t["circuit"] = obs::Json(specs[i].name);
    t["ms"] = obs::Json(std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - t0)
                            .count());
    times.push_back(std::move(t));
    if (!opt.checkpoint_path.empty())
      save_checkpoint(opt.checkpoint_path, digest, circuits);
  }

  result.table["circuits"] = std::move(circuits);
  result.timing["circuits"] = std::move(times);
  return result;
}

std::vector<std::string> diff_tables(const obs::Json& golden,
                                     const obs::Json& fresh,
                                     std::size_t max_diffs) {
  std::vector<std::string> out;
  diff_walk("$", golden, fresh, max_diffs, out);
  return out;
}

}  // namespace bibs::corpus
