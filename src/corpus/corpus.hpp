#pragma once
// Corpus regression harness: one deterministic sweep over the committed
// ISCAS-85 .bench suite (data/iscas85/) plus the paper's generated data
// paths, through TPG synthesis, PPSFP fault simulation under both fault
// models (stuck-at and transition), BIST session emulation and a light
// bibs::check oracle subset — emitting one CI-diffable per-circuit table
// (CORPUS.json).
//
// Determinism contract: every field of the table is bit-identical across
// thread counts, across interrupted-and-resumed runs, and across repeated
// runs on the same tree. The levers that make this true:
//   * the lane backend is pinned per engine instance (SweepOptions::lanes,
//     default 64 = scalar64) instead of trusting the host's widest SIMD
//     latch, so patterns_run never shifts with block width;
//   * parallelism lives inside the engines (FaultSimulator / BistSession
//     worker chunks are bit-identical by construction) while the circuit
//     loop itself is serial, so --threads changes wall time only;
//   * coverage percentages are formatted to fixed 4-decimal strings, never
//     serialized as raw doubles;
//   * wall-clock timings go to a SEPARATE table (CorpusResult::timing,
//     CORPUS_TIMING.json) that is never diffed.
//
// Resumability: after every completed circuit the harness atomically
// rewrites its checkpoint file (write temp + rename) with the finished unit
// tables plus a digest of every result-affecting option. A rerun with the
// same options skips the finished prefix and reuses those tables verbatim;
// a digest mismatch discards the checkpoint. Interruption (rt::RunControl:
// cancel, deadline, or a unit-count budget) stops between units — or inside
// a unit via the engines' own polling, in which case the unfinished unit is
// dropped whole — so the final table is byte-identical to an uninterrupted
// run's.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "rt/control.hpp"

namespace bibs::corpus {

/// How a CircuitSpec materializes its netlist.
enum class CircuitKind {
  kBenchFile,      ///< combinational .bench file under SweepOptions::data_dir
  kPaperDatapath,  ///< circuits::make_c5a2m / c3a2m / c4a4m (base names)
  kFirDatapath,    ///< circuits::make_fir_datapath(taps, width)
};

const char* to_string(CircuitKind k);

struct CircuitSpec {
  std::string name;  ///< unique table key, e.g. "c432" or "c5a2m_w4"
  CircuitKind kind = CircuitKind::kBenchFile;
  /// kBenchFile: path relative to SweepOptions::data_dir
  /// (e.g. "iscas85/c432.bench"); kPaperDatapath: generator base name
  /// ("c5a2m", "c3a2m", "c4a4m").
  std::string file;
  int taps = 0;   ///< kFirDatapath: multiply-accumulate stages
  int width = 8;  ///< data-path operand width (datapath kinds only)
};

struct SweepOptions {
  /// Root of the committed data files (the repo's data/ directory).
  std::string data_dir;
  /// Checkpoint file path; empty disables checkpoint/resume.
  std::string checkpoint_path;
  std::uint64_t seed = 1;
  /// Random-pattern budget per (circuit, model) fault-simulation run.
  std::int64_t max_patterns = 4096;
  /// Pattern budgets the coverage_at columns report.
  std::vector<std::int64_t> budgets = {64, 256, 1024, 4096};
  /// Fault models to sweep, in table order.
  std::vector<std::string> models = {"stuck_at", "transition"};
  /// Engine worker threads (0 = BIBS_THREADS / serial). Never affects the
  /// table, only wall time.
  int threads = 0;
  /// Pattern lanes per block, pinned per engine instance. Must match a
  /// compiled-in, CPU-supported backend (64 = scalar64, the golden default).
  int lanes = 64;
  /// Emulate BIST sessions on data-path circuits (both models).
  bool run_sessions = true;
  /// Clock budget per BIST session.
  std::int64_t session_cycles = 2048;
  /// Skip sessions on elaborations above this many gates (TPG emulation of
  /// the biggest FIR sweeps would dominate the run).
  std::size_t session_gate_limit = 4000;
  /// Run the light bibs::check oracle subset per circuit and record the
  /// verdicts in the table.
  bool run_checks = true;
  /// Random-pattern budget of the oracle subset.
  std::int64_t check_patterns = 192;
  /// Interruption: token and deadline are forwarded into the engines; the
  /// budget counts *completed circuits* (not patterns), so a unit budget of
  /// N checkpoints exactly N finished units.
  rt::RunControl ctl;
};

struct CorpusResult {
  /// The CORPUS.json document (deterministic; diff this).
  obs::Json table;
  /// The CORPUS_TIMING.json document (wall-clock; never diff this).
  obs::Json timing;
  rt::RunStatus status = rt::RunStatus::kFinished;
  /// Units completed this run plus units reused from the checkpoint.
  std::size_t units_done = 0;
  /// bibs::check oracle failures across all units (0 on a healthy tree).
  int failed_checks = 0;
};

/// The named subsets the bibs_corpus CLI exposes:
///   "tier1" — c17 + c432 + one small data path; the tier-1 ctest gate.
///   "quick" — 8 ISCAS-85 circuits + two data paths, 4096 patterns.
///   "full"  — all 11 committed ISCAS-85 circuits + the paper data paths +
///             FIR sweeps 10-100x c5a2m (bibs-corpus ctest label).
/// Throws DesignError on an unknown name.
std::vector<CircuitSpec> standard_corpus(const std::string& subset);

/// Result-affecting-option digest (16 hex digits) recorded in checkpoints:
/// seed, pattern budgets, lanes, models, session/check switches and the
/// circuit list — but NOT threads, which never changes the table.
std::string options_digest(const std::vector<CircuitSpec>& specs,
                           const SweepOptions& opt);

/// Runs the sweep. Throws DesignError on an invalid option (unknown model
/// name, unsupported lane count) and ParseError on a malformed .bench or
/// checkpoint file; engine-level interruptions come back as `status`.
CorpusResult run_corpus(const std::vector<CircuitSpec>& specs,
                        const SweepOptions& opt);

/// Structural diff of two corpus tables (or any two obs::Json documents):
/// every diverging path is reported as "path: golden != fresh", capped at
/// `max_diffs` entries.
std::vector<std::string> diff_tables(const obs::Json& golden,
                                     const obs::Json& fresh,
                                     std::size_t max_diffs = 20);

}  // namespace bibs::corpus
