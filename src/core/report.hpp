#pragma once
// Cost metrics of a BISTable design: the rows 1-4 of the paper's Table 2
// plus flip-flop and area accounting (Figure 9's comparison).

#include <string>

#include "core/kernels.hpp"
#include "core/schedule.hpp"

namespace bibs::core {

struct DesignCost {
  std::size_t kernels = 0;       ///< non-trivial kernels
  int sessions = 0;              ///< test sessions (schedule colouring)
  std::size_t bilbo_registers = 0;
  int bilbo_ffs = 0;             ///< total flip-flops in BILBO registers
  int max_delay = 0;             ///< max BILBO registers on any PI-PO path
  double area_overhead_ge = 0;   ///< BILBO overhead, gate equivalents
};

/// Evaluates a (valid) design. Throws bibs::DesignError if the design fails
/// check_bibs_testable — cost numbers for broken designs are meaningless.
DesignCost evaluate_design(const rtl::Netlist& n, const BilboSet& b);

std::string to_string(const DesignCost& c);

}  // namespace bibs::core
