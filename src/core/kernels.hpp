#pragma once
// Kernel extraction and the balanced-BISTable predicate (Definition 1).
//
// Given a BILBO edge set B (register edges whose registers are converted to
// BILBOs), the kernels are the weakly-connected components of the circuit
// graph restricted to non-PI/PO vertices and non-BILBO edges. A kernel is
// *trivial* when it contains no combinational block (pure register/vacuous
// chains); trivial kernels are not counted as test kernels, matching the
// paper's Table 2 accounting.

#include <unordered_set>
#include <vector>

#include "graph/analysis.hpp"
#include "rtl/netlist.hpp"
#include "tpg/structure.hpp"

namespace bibs::core {

/// Register edges converted to BILBO registers.
using BilboSet = std::unordered_set<rtl::ConnId>;

/// A complete BIST register assignment: plain BILBOs plus (rarely) CBILBOs.
/// A CBILBO [7] generates patterns and compacts responses simultaneously, so
/// it is exempt from condition 3 of Definition 1 — the paper reserves them
/// for cycles containing a single register edge, where no two-BILBO solution
/// exists. Every CBILBO edge is also a kernel boundary.
struct BistRegisters {
  BilboSet bilbo;
  BilboSet cbilbo;

  /// All converted edges (bilbo + cbilbo).
  BilboSet all() const;
  bool is_cbilbo(rtl::ConnId e) const { return cbilbo.count(e) > 0; }
};

struct Kernel {
  std::vector<rtl::BlockId> blocks;       ///< member vertices
  std::vector<rtl::ConnId> input_regs;    ///< BILBO edges feeding the kernel
  std::vector<rtl::ConnId> output_regs;   ///< BILBO edges fed by the kernel
  bool trivial = false;                   ///< no combinational block inside

  bool contains(rtl::BlockId b) const;
};

/// Extracts all kernels under the given BILBO set. PI/PO vertices are not
/// kernel members; edge order determines input/output register order.
std::vector<Kernel> extract_kernels(const rtl::Netlist& n, const BilboSet& b);

/// One Definition-1 violation discovered by check_bibs_testable.
struct Violation {
  enum class Kind {
    kCycle,             ///< kernel contains a directed cycle
    kUnbalanced,        ///< kernel contains an URFS
    kSharedRegister,    ///< a BILBO edge starts and ends in the same kernel
    kUnregisteredBoundary,  ///< a kernel boundary crossed by a wire edge
  };
  Kind kind;
  int kernel = -1;                 ///< index into the kernel list
  rtl::ConnId edge = -1;           ///< offending edge where applicable
  std::string detail;
};

struct TestabilityReport {
  bool ok = false;
  std::vector<Kernel> kernels;     ///< all kernels, trivial included
  std::vector<Violation> violations;

  std::size_t nontrivial_kernel_count() const;
};

/// Full Definition-1 check of every kernel plus boundary-register checks
/// (every PI out-edge and PO in-edge must be a BILBO register edge so that
/// patterns can be applied and observed).
TestabilityReport check_bibs_testable(const rtl::Netlist& n,
                                      const BilboSet& b);

/// As above, with CBILBO exemptions: a CBILBO edge may start and end in the
/// same kernel (it plays TPG and SA simultaneously).
TestabilityReport check_bibs_testable(const rtl::Netlist& n,
                                      const BistRegisters& regs);

/// Builds the generalized structure (Section 4) of a kernel: input registers
/// in order, one cone per output register, and the unique sequential length
/// from each input register to each cone it reaches. The kernel must be
/// balanced. Throws bibs::DesignError otherwise.
tpg::GeneralizedStructure kernel_structure(const rtl::Netlist& n,
                                           const BilboSet& b,
                                           const Kernel& k);

/// Sequential depth of a kernel: the largest number of internal register
/// edges on any input-to-output path (the flush allowance d of Corollary 1).
int kernel_depth(const rtl::Netlist& n, const BilboSet& b, const Kernel& k);

}  // namespace bibs::core
