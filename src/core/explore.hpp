#pragma once
// Design-space exploration: the paper's BITS system "systematically explores
// the BISTable design space to provide a family of solutions" [13]. Starting
// from the minimum-hardware BIBS design, registers are converted one at a
// time — always keeping the circuit balanced BISTable — to shrink the
// largest kernel, trading BILBO hardware for (exponentially) shorter
// functionally exhaustive test time.

#include <vector>

#include "core/kernels.hpp"
#include "rt/control.hpp"

namespace bibs::core {

struct DesignPoint {
  BilboSet bilbo;
  int bilbo_ffs = 0;
  /// Largest kernel input width M: functionally exhaustive test time is
  /// 2^M - 1 + d for the dominating kernel.
  int max_kernel_width = 0;
  std::size_t kernels = 0;
  int sessions = 0;
};

/// Greedy Pareto sweep from the minimal BIBS design towards full conversion.
/// Every returned point is a valid balanced-BISTable design; consecutive
/// points add one register. Points that do not improve the maximal kernel
/// width are dropped, so the result is a hardware-vs-test-time frontier.
///
/// `ctl` is polled per testability evaluation (the expensive unit; that is
/// also the budget's work unit). On interruption the frontier built so far
/// is returned — every prefix is itself a valid frontier — and `status`
/// (when non-null) receives the reason; kFinished otherwise.
std::vector<DesignPoint> explore_design_space(
    const rtl::Netlist& n, const rt::RunControl& ctl = {},
    rt::RunStatus* status = nullptr);

}  // namespace bibs::core
