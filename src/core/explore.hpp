#pragma once
// Design-space exploration: the paper's BITS system "systematically explores
// the BISTable design space to provide a family of solutions" [13]. Starting
// from the minimum-hardware BIBS design, registers are converted one at a
// time — always keeping the circuit balanced BISTable — to shrink the
// largest kernel, trading BILBO hardware for (exponentially) shorter
// functionally exhaustive test time.

#include <vector>

#include "core/kernels.hpp"

namespace bibs::core {

struct DesignPoint {
  BilboSet bilbo;
  int bilbo_ffs = 0;
  /// Largest kernel input width M: functionally exhaustive test time is
  /// 2^M - 1 + d for the dominating kernel.
  int max_kernel_width = 0;
  std::size_t kernels = 0;
  int sessions = 0;
};

/// Greedy Pareto sweep from the minimal BIBS design towards full conversion.
/// Every returned point is a valid balanced-BISTable design; consecutive
/// points add one register. Points that do not improve the maximal kernel
/// width are dropped, so the result is a hardware-vs-test-time frontier.
std::vector<DesignPoint> explore_design_space(const rtl::Netlist& n);

}  // namespace bibs::core
