#include "core/kernels.hpp"

#include <algorithm>
#include <deque>

namespace bibs::core {

using rtl::BlockId;
using rtl::BlockKind;
using rtl::ConnId;
using rtl::Netlist;

bool Kernel::contains(BlockId b) const {
  return std::find(blocks.begin(), blocks.end(), b) != blocks.end();
}

std::vector<Kernel> extract_kernels(const Netlist& n, const BilboSet& b) {
  const std::size_t nv = n.block_count();
  std::vector<int> comp(nv, -1);
  int ncomp = 0;

  auto is_io = [&](BlockId v) {
    const BlockKind k = n.block(v).kind;
    return k == BlockKind::kInput || k == BlockKind::kOutput;
  };

  // Weakly-connected components over non-BILBO edges between non-IO blocks.
  for (std::size_t s = 0; s < nv; ++s) {
    if (comp[s] != -1 || is_io(static_cast<BlockId>(s))) continue;
    comp[s] = ncomp;
    std::deque<BlockId> q{static_cast<BlockId>(s)};
    while (!q.empty()) {
      const BlockId v = q.front();
      q.pop_front();
      auto visit = [&](ConnId e, BlockId other) {
        if (b.count(e) || is_io(other)) return;
        if (comp[static_cast<std::size_t>(other)] == -1) {
          comp[static_cast<std::size_t>(other)] = ncomp;
          q.push_back(other);
        }
      };
      for (ConnId e : n.fanout(v)) visit(e, n.connection(e).to);
      for (ConnId e : n.fanin(v)) visit(e, n.connection(e).from);
    }
    ++ncomp;
  }

  std::vector<Kernel> kernels(static_cast<std::size_t>(ncomp));
  for (std::size_t v = 0; v < nv; ++v)
    if (comp[v] != -1)
      kernels[static_cast<std::size_t>(comp[v])].blocks.push_back(
          static_cast<BlockId>(v));

  // Boundary registers, in connection order for determinism.
  for (const rtl::Connection& c : n.connections()) {
    if (!b.count(c.id)) continue;
    const int to_comp = is_io(c.to) ? -1 : comp[static_cast<std::size_t>(c.to)];
    const int from_comp =
        is_io(c.from) ? -1 : comp[static_cast<std::size_t>(c.from)];
    if (to_comp != -1)
      kernels[static_cast<std::size_t>(to_comp)].input_regs.push_back(c.id);
    if (from_comp != -1)
      kernels[static_cast<std::size_t>(from_comp)].output_regs.push_back(c.id);
  }

  for (Kernel& k : kernels) {
    k.trivial = std::none_of(k.blocks.begin(), k.blocks.end(), [&](BlockId v) {
      return n.block(v).kind == BlockKind::kComb;
    });
  }
  return kernels;
}

std::size_t TestabilityReport::nontrivial_kernel_count() const {
  std::size_t c = 0;
  for (const Kernel& k : kernels)
    if (!k.trivial) ++c;
  return c;
}

namespace {

/// Edge set restricting the graph to one kernel: everything except the
/// kernel's internal (non-BILBO) edges is removed.
graph::EdgeSet edges_outside_kernel(const Netlist& n, const BilboSet& b,
                                    const Kernel& k) {
  std::vector<char> member(n.block_count(), 0);
  for (rtl::BlockId v : k.blocks) member[static_cast<std::size_t>(v)] = 1;
  graph::EdgeSet removed;
  for (const rtl::Connection& c : n.connections()) {
    const bool internal = !b.count(c.id) &&
                          member[static_cast<std::size_t>(c.from)] &&
                          member[static_cast<std::size_t>(c.to)];
    if (!internal) removed.insert(c.id);
  }
  return removed;
}

}  // namespace

BilboSet BistRegisters::all() const {
  BilboSet out = bilbo;
  out.insert(cbilbo.begin(), cbilbo.end());
  return out;
}

TestabilityReport check_bibs_testable(const Netlist& n,
                                      const BistRegisters& regs) {
  TestabilityReport rep = check_bibs_testable(n, regs.all());
  if (regs.cbilbo.empty()) return rep;
  // Drop condition-3 violations whose edge is a CBILBO.
  std::vector<Violation> kept;
  for (Violation& v : rep.violations)
    if (!(v.kind == Violation::Kind::kSharedRegister &&
          regs.is_cbilbo(v.edge)))
      kept.push_back(std::move(v));
  rep.violations = std::move(kept);
  rep.ok = rep.violations.empty();
  return rep;
}

TestabilityReport check_bibs_testable(const Netlist& n, const BilboSet& b) {
  TestabilityReport rep;
  rep.kernels = extract_kernels(n, b);

  // Boundary conditions at the primary inputs/outputs.
  for (const rtl::Connection& c : n.connections()) {
    const bool from_pi = n.block(c.from).kind == BlockKind::kInput;
    const bool to_po = n.block(c.to).kind == BlockKind::kOutput;
    if ((from_pi || to_po) && !b.count(c.id))
      rep.violations.push_back(
          {Violation::Kind::kUnregisteredBoundary, -1, c.id,
           "PI/PO port connection lacks a BILBO register"});
  }

  // Condition 3: no BILBO edge may start and end in the same kernel (the
  // register would have to act as TPG and SA simultaneously).
  for (std::size_t ki = 0; ki < rep.kernels.size(); ++ki) {
    const Kernel& k = rep.kernels[ki];
    for (ConnId e : k.input_regs) {
      const rtl::Connection& c = n.connection(e);
      if (n.block(c.from).kind != BlockKind::kInput && k.contains(c.from))
        rep.violations.push_back(
            {Violation::Kind::kSharedRegister, static_cast<int>(ki), e,
             "register '" + c.reg->name +
                 "' feeds and is fed by kernel " + std::to_string(ki)});
    }
  }

  // Conditions 1 and 2 per kernel.
  for (std::size_t ki = 0; ki < rep.kernels.size(); ++ki) {
    const Kernel& k = rep.kernels[ki];
    if (k.trivial) continue;
    const graph::EdgeSet removed = edges_outside_kernel(n, b, k);
    const auto bal = graph::check_balanced(n, removed);
    if (!bal.acyclic) {
      rep.violations.push_back({Violation::Kind::kCycle, static_cast<int>(ki),
                                -1, "kernel contains a directed cycle"});
    } else if (!bal.balanced) {
      std::string detail = "kernel contains an URFS";
      if (bal.urfs)
        detail += " between '" + n.block(bal.urfs->from).name + "' and '" +
                  n.block(bal.urfs->to).name + "' (lengths " +
                  std::to_string(bal.urfs->length_a) + " vs " +
                  std::to_string(bal.urfs->length_b) + ")";
      rep.violations.push_back({Violation::Kind::kUnbalanced,
                                static_cast<int>(ki), -1, detail});
    }
  }

  rep.ok = rep.violations.empty();
  return rep;
}

tpg::GeneralizedStructure kernel_structure(const Netlist& n, const BilboSet& b,
                                           const Kernel& k) {
  tpg::GeneralizedStructure s;
  const graph::EdgeSet removed = edges_outside_kernel(n, b, k);

  for (ConnId e : k.input_regs) {
    const rtl::Connection& c = n.connection(e);
    s.registers.push_back({c.reg->name, c.reg->width});
  }
  for (ConnId oe : k.output_regs) {
    const rtl::Connection& oc = n.connection(oe);
    tpg::Cone cone;
    cone.name = oc.reg->name;
    for (std::size_t i = 0; i < k.input_regs.size(); ++i) {
      const rtl::Connection& ic = n.connection(k.input_regs[i]);
      // Sequential length from the block the input register feeds to the
      // block driving the output register, counting internal register edges.
      const auto d =
          graph::path_sequential_length(n, ic.to, oc.from, removed);
      if (d) cone.deps.push_back({static_cast<int>(i), *d});
    }
    if (cone.deps.empty())
      throw DesignError("kernel output register '" + oc.reg->name +
                        "' depends on no kernel input register");
    s.cones.push_back(std::move(cone));
  }
  s.validate();
  return s;
}

int kernel_depth(const Netlist& n, const BilboSet& b, const Kernel& k) {
  const tpg::GeneralizedStructure s = kernel_structure(n, b, k);
  return s.max_depth();
}

}  // namespace bibs::core
