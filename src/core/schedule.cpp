#include "core/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace bibs::core {

Schedule schedule_sessions(const rtl::Netlist& n,
                           const std::vector<Kernel>& kernels) {
  (void)n;
  const std::size_t k = kernels.size();
  std::vector<std::unordered_set<rtl::ConnId>> regs(k);
  for (std::size_t i = 0; i < k; ++i) {
    regs[i].insert(kernels[i].input_regs.begin(),
                   kernels[i].input_regs.end());
    regs[i].insert(kernels[i].output_regs.begin(),
                   kernels[i].output_regs.end());
  }
  auto conflict = [&](std::size_t a, std::size_t b) {
    const auto& small = regs[a].size() < regs[b].size() ? regs[a] : regs[b];
    const auto& large = regs[a].size() < regs[b].size() ? regs[b] : regs[a];
    return std::any_of(small.begin(), small.end(),
                       [&](rtl::ConnId e) { return large.count(e) > 0; });
  };

  // Welsh-Powell: colour vertices in order of decreasing degree.
  std::vector<int> degree(k, 0);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = a + 1; b < k; ++b)
      if (conflict(a, b)) {
        ++degree[a];
        ++degree[b];
      }
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return degree[a] > degree[b]; });

  Schedule s;
  s.session_of.assign(k, -1);
  for (std::size_t v : order) {
    std::unordered_set<int> used;
    for (std::size_t u = 0; u < k; ++u)
      if (s.session_of[u] >= 0 && conflict(v, u)) used.insert(s.session_of[u]);
    int c = 0;
    while (used.count(c)) ++c;
    s.session_of[v] = c;
    s.sessions = std::max(s.sessions, c + 1);
  }
  return s;
}

namespace {

bool color_kernels(const std::vector<std::vector<char>>& adj, int k,
                   std::vector<int>& color, std::size_t v) {
  if (v == adj.size()) return true;
  for (int c = 0; c < k; ++c) {
    bool ok = true;
    for (std::size_t u = 0; u < v; ++u)
      if (adj[v][u] && color[u] == c) {
        ok = false;
        break;
      }
    if (!ok) continue;
    color[v] = c;
    if (color_kernels(adj, k, color, v + 1)) return true;
  }
  color[v] = -1;
  return false;
}

}  // namespace

Schedule schedule_sessions_optimal(const rtl::Netlist& n,
                                   const std::vector<Kernel>& kernels) {
  (void)n;
  const std::size_t k = kernels.size();
  BIBS_ASSERT(k <= 24);
  std::vector<std::unordered_set<rtl::ConnId>> regs(k);
  for (std::size_t i = 0; i < k; ++i) {
    regs[i].insert(kernels[i].input_regs.begin(), kernels[i].input_regs.end());
    regs[i].insert(kernels[i].output_regs.begin(),
                   kernels[i].output_regs.end());
  }
  std::vector<std::vector<char>> adj(k, std::vector<char>(k, 0));
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = a + 1; b < k; ++b)
      for (rtl::ConnId e : regs[a])
        if (regs[b].count(e)) {
          adj[a][b] = adj[b][a] = 1;
          break;
        }

  Schedule s;
  s.session_of.assign(k, -1);
  if (k == 0) return s;
  for (int colors = 1; colors <= static_cast<int>(k); ++colors) {
    std::vector<int> color(k, -1);
    if (color_kernels(adj, colors, color, 0)) {
      s.session_of = std::move(color);
      s.sessions = colors;
      return s;
    }
  }
  BIBS_ASSERT(false && "colouring with k colours always succeeds");
  return s;
}

std::int64_t schedule_test_time(const Schedule& s,
                                const std::vector<std::int64_t>& patterns) {
  BIBS_ASSERT(patterns.size() == s.session_of.size());
  std::vector<std::int64_t> longest(static_cast<std::size_t>(s.sessions), 0);
  for (std::size_t i = 0; i < patterns.size(); ++i)
    longest[static_cast<std::size_t>(s.session_of[i])] =
        std::max(longest[static_cast<std::size_t>(s.session_of[i])],
                 patterns[i]);
  return std::accumulate(longest.begin(), longest.end(), std::int64_t{0});
}

}  // namespace bibs::core
