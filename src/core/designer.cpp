#include "core/designer.hpp"

#include <algorithm>
#include <limits>

namespace bibs::core {

using rtl::BlockId;
using rtl::BlockKind;
using rtl::ConnId;
using rtl::Netlist;

namespace {

/// PI out-edges and PO in-edges; all must be register edges.
std::vector<ConnId> boundary_edges(const Netlist& n) {
  std::vector<ConnId> out;
  for (const rtl::Connection& c : n.connections()) {
    const bool boundary = n.block(c.from).kind == BlockKind::kInput ||
                          n.block(c.to).kind == BlockKind::kOutput;
    if (!boundary) continue;
    if (!c.is_register())
      throw DesignError(
          "PI/PO port connection without a register (run "
          "ensure_boundary_registers first)");
    out.push_back(c.id);
  }
  return out;
}

std::vector<ConnId> internal_register_edges(const Netlist& n) {
  std::vector<ConnId> out;
  for (const rtl::Connection& c : n.connections()) {
    if (!c.is_register()) continue;
    if (n.block(c.from).kind == BlockKind::kInput ||
        n.block(c.to).kind == BlockKind::kOutput)
      continue;
    out.push_back(c.id);
  }
  return out;
}

int set_cost(const Netlist& n, const BilboSet& b) {
  int bits = 0;
  for (ConnId e : b) bits += n.connection(e).reg->width;
  return bits;
}

/// Exhaustive minimum-cost subset search over the internal candidates.
BilboSet exact_search(const Netlist& n, const BilboSet& mandatory,
                      const std::vector<ConnId>& candidates,
                      const BilboSet& cbilbo = {}) {
  const std::size_t k = candidates.size();
  BIBS_ASSERT(k <= 24);
  BilboSet best;
  int best_cost = std::numeric_limits<int>::max();
  for (std::uint64_t mask = 0; mask < (1ull << k); ++mask) {
    BilboSet b = mandatory;
    for (std::size_t i = 0; i < k; ++i)
      if ((mask >> i) & 1u) b.insert(candidates[i]);
    const int cost = set_cost(n, b);
    if (cost >= best_cost) continue;
    if (check_bibs_testable(n, BistRegisters{b, cbilbo}).ok) {
      best = std::move(b);
      best_cost = cost;
    }
  }
  if (best_cost == std::numeric_limits<int>::max())
    throw DesignError(
        "no BILBO assignment makes this circuit balanced BISTable; a cycle "
        "with one register edge needs an inserted register or a CBILBO");
  return best;
}

/// Greedy repair: while violations remain, convert the cheapest candidate
/// register that reduces the violation count the most.
BilboSet greedy_search(const Netlist& n, const BilboSet& mandatory,
                       const std::vector<ConnId>& candidates,
                       const BilboSet& cbilbo = {}) {
  BilboSet b = mandatory;
  auto violations = [&](const BilboSet& s) {
    return check_bibs_testable(n, BistRegisters{s, cbilbo}).violations.size();
  };
  std::size_t cur = violations(b);
  std::vector<ConnId> remaining = candidates;
  while (cur > 0) {
    std::size_t best_v = cur;
    double best_score = -1;
    std::size_t best_i = remaining.size();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      BilboSet t = b;
      t.insert(remaining[i]);
      const std::size_t v = violations(t);
      if (v >= cur) continue;
      const double score =
          static_cast<double>(cur - v) /
          static_cast<double>(n.connection(remaining[i]).reg->width);
      if (score > best_score) {
        best_score = score;
        best_v = v;
        best_i = i;
      }
    }
    if (best_i == remaining.size()) {
      // No single addition helps; add the cheapest remaining and continue
      // (violation counts are not matroidal, pairs may be needed).
      if (remaining.empty())
        throw DesignError("greedy BIBS search failed to converge");
      best_i = 0;
      for (std::size_t i = 1; i < remaining.size(); ++i)
        if (n.connection(remaining[i]).reg->width <
            n.connection(remaining[best_i]).reg->width)
          best_i = i;
      BilboSet t = b;
      t.insert(remaining[best_i]);
      best_v = violations(t);
    }
    b.insert(remaining[best_i]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_i));
    cur = best_v;
  }
  // Reverse pass: drop converted registers that are not actually needed.
  std::vector<ConnId> added;
  for (ConnId e : b)
    if (!mandatory.count(e)) added.push_back(e);
  std::sort(added.begin(), added.end(), [&](ConnId a, ConnId c) {
    return n.connection(a).reg->width > n.connection(c).reg->width;
  });
  for (ConnId e : added) {
    BilboSet t = b;
    t.erase(e);
    if (check_bibs_testable(n, BistRegisters{t, cbilbo}).ok) b = std::move(t);
  }
  return b;
}

}  // namespace

DesignResult design_bibs(const Netlist& n, const BibsOptions& opt) {
  n.validate();
  BilboSet mandatory;
  for (ConnId e : boundary_edges(n)) mandatory.insert(e);

  DesignResult res;
  {
    // Fast path: boundary conversion alone (the common case for balanced
    // data paths, and the reason BIBS is cheap).
    auto rep = check_bibs_testable(n, mandatory);
    if (rep.ok) {
      res.bilbo = std::move(mandatory);
      res.report = std::move(rep);
      return res;
    }
  }

  const auto candidates = internal_register_edges(n);
  res.bilbo = (static_cast<int>(candidates.size()) <= opt.exact_search_limit)
                  ? exact_search(n, mandatory, candidates)
                  : greedy_search(n, mandatory, candidates);
  res.report = check_bibs_testable(n, res.bilbo);
  BIBS_ASSERT(res.report.ok);
  return res;
}

namespace {

/// Traces an input-port connection backwards through fanout/vacuous blocks
/// to the register edge driving it; kNoNet-style -1 when a PI or comb block
/// is reached first.
ConnId trace_driving_register(const Netlist& n, ConnId e) {
  for (;;) {
    const rtl::Connection& c = n.connection(e);
    if (c.is_register()) return c.id;
    const rtl::Block& src = n.block(c.from);
    if (src.kind == BlockKind::kFanout || src.kind == BlockKind::kVacuous) {
      e = n.fanin(c.from).at(0);
      continue;
    }
    return -1;
  }
}

}  // namespace

DesignResult design_ka85(const Netlist& n) {
  n.validate();
  BilboSet b;
  // Criterion 2: PI/PO port registers.
  for (ConnId e : boundary_edges(n)) b.insert(e);

  // Criterion 1: a BILBO for every input port of a block with more than one
  // input port.
  for (const rtl::Block& blk : n.blocks()) {
    if (blk.kind != BlockKind::kComb) continue;
    const auto& in = n.fanin(blk.id);
    if (in.size() < 2) continue;
    for (ConnId e : in) {
      const ConnId reg = trace_driving_register(n, e);
      if (reg == -1)
        throw DesignError("block '" + blk.name +
                          "' has a multi-port input with no driving register "
                          "(KA85 requires one)");
      b.insert(reg);
    }
  }

  // Criterion 3: at least two BILBO registers in every cycle.
  for (const auto& cycle : graph::find_cycles(n)) {
    int have = 0;
    for (ConnId e : cycle)
      if (b.count(e)) ++have;
    if (have >= 2) continue;
    // Convert the cheapest register edges of the cycle until two are BILBO.
    std::vector<ConnId> regs;
    for (ConnId e : cycle)
      if (n.connection(e).is_register() && !b.count(e)) regs.push_back(e);
    std::sort(regs.begin(), regs.end(), [&](ConnId x, ConnId y) {
      return n.connection(x).reg->width < n.connection(y).reg->width;
    });
    for (ConnId e : regs) {
      if (have >= 2) break;
      b.insert(e);
      ++have;
    }
    if (have < 2)
      throw DesignError(
          "cycle with fewer than two register edges: insert a register or "
          "use a CBILBO");
  }

  DesignResult res;
  res.bilbo = std::move(b);
  res.report = check_bibs_testable(n, res.bilbo);
  return res;
}

BilboSet design_partial_scan(const Netlist& n, const BibsOptions& opt) {
  n.validate();
  const std::vector<ConnId> candidates = [&] {
    std::vector<ConnId> all;
    for (const rtl::Connection& c : n.connections())
      if (c.is_register()) all.push_back(c.id);
    return all;
  }();

  auto balanced_without = [&](const BilboSet& scan) {
    graph::EdgeSet removed(scan.begin(), scan.end());
    return graph::check_balanced(n, removed).balanced;
  };
  if (balanced_without({})) return {};

  if (static_cast<int>(candidates.size()) <= opt.exact_search_limit) {
    BilboSet best;
    int best_cost = std::numeric_limits<int>::max();
    const std::size_t k = candidates.size();
    for (std::uint64_t mask = 1; mask < (1ull << k); ++mask) {
      BilboSet scan;
      for (std::size_t i = 0; i < k; ++i)
        if ((mask >> i) & 1u) scan.insert(candidates[i]);
      const int cost = set_cost(n, scan);
      if (cost >= best_cost) continue;
      if (balanced_without(scan)) {
        best = std::move(scan);
        best_cost = cost;
      }
    }
    if (best_cost == std::numeric_limits<int>::max())
      throw DesignError("no scan assignment balances this circuit");
    return best;
  }

  // Greedy: add the cheapest register that reduces URFS witnesses + cycles.
  BilboSet scan;
  auto badness = [&](const BilboSet& s) {
    graph::EdgeSet removed(s.begin(), s.end());
    std::size_t bad = graph::find_all_urfs(n, removed, 64).size();
    bad += graph::find_cycles(n, 64).size() -
           [&] {  // cycles already broken by the scan set
             std::size_t broken = 0;
             for (const auto& cyc : graph::find_cycles(n, 64))
               for (ConnId e : cyc)
                 if (s.count(e)) {
                   ++broken;
                   break;
                 }
             return broken;
           }();
    return bad;
  };
  std::size_t cur = badness(scan);
  std::vector<ConnId> remaining = candidates;
  while (cur > 0 && !remaining.empty()) {
    std::size_t best_i = 0;
    std::size_t best_v = cur;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      BilboSet t = scan;
      t.insert(remaining[i]);
      const std::size_t v = badness(t);
      if (v < best_v) {
        best_v = v;
        best_i = i;
      }
    }
    scan.insert(remaining[best_i]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_i));
    cur = badness(scan);
  }
  if (!balanced_without(scan))
    throw DesignError("greedy partial-scan search failed to converge");
  return scan;
}

CbilboDesignResult design_bibs_cbilbo(const Netlist& n,
                                      const BibsOptions& opt) {
  n.validate();
  CbilboDesignResult res;
  for (const auto& cycle : cycles_needing_cbilbo(n))
    for (ConnId e : cycle)
      if (n.connection(e).is_register()) res.regs.cbilbo.insert(e);

  BilboSet mandatory;
  for (ConnId e : boundary_edges(n)) mandatory.insert(e);

  {
    auto rep = check_bibs_testable(n, BistRegisters{mandatory, res.regs.cbilbo});
    if (rep.ok) {
      res.regs.bilbo = std::move(mandatory);
      res.report = std::move(rep);
      return res;
    }
  }
  std::vector<ConnId> candidates;
  for (ConnId e : internal_register_edges(n))
    if (!res.regs.cbilbo.count(e)) candidates.push_back(e);
  res.regs.bilbo =
      (static_cast<int>(candidates.size()) <= opt.exact_search_limit)
          ? exact_search(n, mandatory, candidates, res.regs.cbilbo)
          : greedy_search(n, mandatory, candidates, res.regs.cbilbo);
  res.report = check_bibs_testable(n, res.regs);
  BIBS_ASSERT(res.report.ok);
  return res;
}

std::vector<ConnId> ensure_boundary_registers(Netlist& n) {
  std::vector<ConnId> inserted;
  for (const rtl::Connection& c : n.connections()) {
    const bool from_pi = n.block(c.from).kind == BlockKind::kInput;
    const bool to_po = n.block(c.to).kind == BlockKind::kOutput;
    if (!(from_pi || to_po) || c.is_register()) continue;
    const std::string base =
        from_pi ? n.block(c.from).name : n.block(c.to).name;
    n.insert_register_on_wire(c.id, base + "_br");
    inserted.push_back(c.id);
  }
  return inserted;
}

std::vector<std::vector<ConnId>> cycles_needing_cbilbo(const Netlist& n) {
  std::vector<std::vector<ConnId>> out;
  for (const auto& cycle : graph::find_cycles(n)) {
    int regs = 0;
    for (ConnId e : cycle)
      if (n.connection(e).is_register()) ++regs;
    if (regs == 1) out.push_back(cycle);
  }
  return out;
}

}  // namespace bibs::core
