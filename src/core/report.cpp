#include "core/report.hpp"

#include <sstream>

#include "lfsr/bilbo.hpp"

namespace bibs::core {

DesignCost evaluate_design(const rtl::Netlist& n, const BilboSet& b) {
  const TestabilityReport rep = check_bibs_testable(n, b);
  if (!rep.ok)
    throw DesignError("evaluate_design called on an invalid design (" +
                      std::to_string(rep.violations.size()) + " violations)");
  DesignCost cost;
  cost.kernels = rep.nontrivial_kernel_count();

  std::vector<Kernel> nontrivial;
  for (const Kernel& k : rep.kernels)
    if (!k.trivial) nontrivial.push_back(k);
  cost.sessions = schedule_sessions(n, nontrivial).sessions;

  cost.bilbo_registers = b.size();
  for (rtl::ConnId e : b) {
    const int w = n.connection(e).reg->width;
    cost.bilbo_ffs += w;
    cost.area_overhead_ge += lfsr::Bilbo::area_overhead_gate_equivalents(w);
  }
  graph::EdgeSet marked(b.begin(), b.end());
  cost.max_delay = graph::max_marked_edges_on_path(n, marked);
  return cost;
}

std::string to_string(const DesignCost& c) {
  std::ostringstream os;
  os << "kernels=" << c.kernels << " sessions=" << c.sessions
     << " bilbo_registers=" << c.bilbo_registers << " bilbo_ffs=" << c.bilbo_ffs
     << " max_delay=" << c.max_delay << " area_overhead_ge="
     << c.area_overhead_ge;
  return os.str();
}

}  // namespace bibs::core
