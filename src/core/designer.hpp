#pragma once
// The two testable-design methodologies compared in the paper:
//
//  * design_bibs: the paper's contribution. Converts the PI/PO boundary
//    registers plus a minimum-cost set of internal registers so that every
//    kernel is balanced BISTable (exact branch-and-bound for small circuits,
//    greedy repair beyond that).
//  * design_ka85: Krasniewski & Albicki [3]. Converts the register feeding
//    every input port of each multi-input-port block, every PI/PO port
//    register, and enough registers for two BILBOs per cycle. Theorem 3:
//    every design produced this way is also balanced BISTable; the converse
//    fails, which is where BIBS saves hardware.

#include "core/kernels.hpp"

namespace bibs::core {

struct DesignResult {
  BilboSet bilbo;
  TestabilityReport report;  ///< the final (passing) check
};

struct BibsOptions {
  /// Exhaustive subset search up to this many internal candidate registers;
  /// greedy repair above.
  int exact_search_limit = 16;
};

/// BIBS design. Throws bibs::DesignError if a PI or PO port is connected by
/// a wire edge (insert a register first — see ensure_boundary_registers) or
/// if even converting every register fails (e.g. a cycle with a single
/// register edge, which needs an added register or a CBILBO; see
/// needs_cbilbo()).
DesignResult design_bibs(const rtl::Netlist& n, const BibsOptions& = {});

/// Krasniewski-Albicki [3] design. Input ports are traced backwards through
/// fanout and vacuous blocks to the nearest register edge; throws
/// bibs::DesignError if a multi-port block input has no register behind it.
DesignResult design_ka85(const rtl::Netlist& n);

/// Inserts a register on every PI out-edge and PO in-edge that is currently
/// a wire, naming them <pi>_br / <po>_br. Returns the inserted edges.
std::vector<rtl::ConnId> ensure_boundary_registers(rtl::Netlist& n);

/// Cycles that contain exactly one register edge: Theorem 2's corner case —
/// they require either an inserted transparent register or a CBILBO.
std::vector<std::vector<rtl::ConnId>> cycles_needing_cbilbo(
    const rtl::Netlist& n);

/// BALLAST-style [8, 11] partial scan for comparison with BIBS: the minimum
/// cost set of registers to convert to *scan* registers so that the
/// remaining circuit is balanced. A scan register acts as pseudo-PI and
/// pseudo-PO simultaneously, so only conditions 1-2 of Definition 1 apply —
/// which is exactly why a minimal scan solution can be smaller than the
/// minimal BIBS solution (Example 1's point).
BilboSet design_partial_scan(const rtl::Netlist& n, const BibsOptions& = {});

struct CbilboDesignResult {
  BistRegisters regs;
  TestabilityReport report;
};

/// BIBS design that falls back to CBILBO registers where unavoidable: the
/// register of every single-register-edge cycle becomes a CBILBO (exempt
/// from condition 3), and the usual minimum-cost BILBO search runs on top.
/// This is the paper's "CBILBO registers are only used when necessary"
/// policy made executable.
CbilboDesignResult design_bibs_cbilbo(const rtl::Netlist& n,
                                      const BibsOptions& = {});

}  // namespace bibs::core
