#pragma once
// Test-session scheduling in the style of [13]: two kernels can be tested in
// the same session iff they share no BILBO register (a shared register would
// have to play TPG for one kernel and SA for the other, or generate two
// different streams, in the same session). The schedule is a colouring of
// the kernel conflict graph; Welsh-Powell greedy is exact on the paper's
// circuits (interval-like conflicts) and never worse than Δ+1.

#include <vector>

#include "core/kernels.hpp"

namespace bibs::core {

struct Schedule {
  /// session_of[i]: session index of non-trivial kernel i (indexing the
  /// filtered kernel list passed to schedule_sessions).
  std::vector<int> session_of;
  int sessions = 0;
};

/// Colours the conflict graph of the given kernels (Welsh-Powell greedy).
Schedule schedule_sessions(const rtl::Netlist& n,
                           const std::vector<Kernel>& kernels);

/// Provably minimum number of sessions (exact graph colouring by iterative
/// deepening; kernels <= 24). The paper's [13] computes optimal schedules;
/// on all paper circuits this matches the greedy result, which tests verify.
Schedule schedule_sessions_optimal(const rtl::Netlist& n,
                                   const std::vector<Kernel>& kernels);

/// Total test time of a schedule: sum over sessions of the longest kernel
/// test length inside that session (kernels in one session run concurrently).
/// `patterns[i]` is the pattern count for kernel i.
std::int64_t schedule_test_time(const Schedule& s,
                                const std::vector<std::int64_t>& patterns);

}  // namespace bibs::core
