#include "core/explore.hpp"

#include <algorithm>

#include "core/designer.hpp"
#include "core/schedule.hpp"

namespace bibs::core {

namespace {

DesignPoint evaluate_point(const rtl::Netlist& n, const BilboSet& b,
                           const TestabilityReport& rep) {
  DesignPoint p;
  p.bilbo = b;
  for (rtl::ConnId e : b) p.bilbo_ffs += n.connection(e).reg->width;
  std::vector<Kernel> kernels;
  for (const Kernel& k : rep.kernels)
    if (!k.trivial) kernels.push_back(k);
  p.kernels = kernels.size();
  p.sessions = schedule_sessions(n, kernels).sessions;
  for (const Kernel& k : kernels) {
    int width = 0;
    for (rtl::ConnId e : k.input_regs) width += n.connection(e).reg->width;
    p.max_kernel_width = std::max(p.max_kernel_width, width);
  }
  return p;
}

}  // namespace

std::vector<DesignPoint> explore_design_space(const rtl::Netlist& n,
                                              const rt::RunControl& ctl,
                                              rt::RunStatus* status) {
  if (status) *status = rt::RunStatus::kFinished;
  const DesignResult base = design_bibs(n);
  std::vector<DesignPoint> frontier;
  frontier.push_back(evaluate_point(n, base.bilbo, base.report));

  // Work units for RunControl: testability evaluations, the sweep's
  // expensive inner step. Polled before each one; on interruption the
  // frontier found so far is returned.
  std::int64_t evals = 0;
  const auto interrupted = [&] {
    const rt::RunStatus st = ctl.interruption(evals);
    if (st != rt::RunStatus::kFinished && status) *status = st;
    return st != rt::RunStatus::kFinished;
  };

  BilboSet current = base.bilbo;
  std::vector<rtl::ConnId> candidates;
  for (const rtl::Connection& c : n.connections())
    if (c.is_register() && !current.count(c.id)) candidates.push_back(c.id);

  while (!candidates.empty()) {
    // Convert the candidate that most reduces the maximal kernel width
    // while keeping the design valid.
    int best_width = frontier.back().max_kernel_width;
    std::size_t best_i = candidates.size();
    DesignPoint best_point;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (interrupted()) return frontier;
      BilboSet t = current;
      t.insert(candidates[i]);
      ++evals;
      const TestabilityReport rep = check_bibs_testable(n, t);
      if (!rep.ok) continue;
      const DesignPoint p = evaluate_point(n, t, rep);
      if (p.max_kernel_width < best_width ||
          (best_i == candidates.size() && p.max_kernel_width <= best_width)) {
        best_width = p.max_kernel_width;
        best_i = i;
        best_point = p;
      }
    }
    if (best_i == candidates.size()) {
      // No single register can be converted alone (condition 3 demands some
      // conversions come in pairs, e.g. the two inputs of a reconverging
      // block). Try pairs before giving up.
      std::size_t pa = candidates.size(), pb = candidates.size();
      DesignPoint pair_point;
      int pair_width = frontier.back().max_kernel_width + 1;
      for (std::size_t i = 0; i < candidates.size(); ++i)
        for (std::size_t j = i + 1; j < candidates.size(); ++j) {
          if (interrupted()) return frontier;
          BilboSet t = current;
          t.insert(candidates[i]);
          t.insert(candidates[j]);
          ++evals;
          const TestabilityReport rep = check_bibs_testable(n, t);
          if (!rep.ok) continue;
          const DesignPoint p = evaluate_point(n, t, rep);
          if (p.max_kernel_width < pair_width) {
            pair_width = p.max_kernel_width;
            pa = i;
            pb = j;
            pair_point = p;
          }
        }
      if (pa == candidates.size()) break;  // genuinely stuck
      current.insert(candidates[pa]);
      current.insert(candidates[pb]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pb));
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pa));
      if (pair_point.max_kernel_width < frontier.back().max_kernel_width)
        frontier.push_back(std::move(pair_point));
      continue;
    }
    current.insert(candidates[best_i]);
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(best_i));
    // Keep only frontier-improving points.
    if (best_point.max_kernel_width < frontier.back().max_kernel_width)
      frontier.push_back(std::move(best_point));
  }
  return frontier;
}

}  // namespace bibs::core
