// Design-space exploration on parameterized FIR data paths: how BIBS and the
// Krasniewski-Albicki [3] methodology scale with filter size. This is the
// workload class the paper's introduction motivates (digital filters from a
// high-level synthesis system), swept from 2 to 12 taps.

#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"
#include "gate/synth.hpp"

namespace {

int run() {
  using namespace bibs;

  Table t("BIBS vs KA85 across FIR data paths (8-bit)");
  t.header({"taps", "gates", "registers", "BILBOs (BIBS)", "BILBOs (KA85)",
            "FFs (BIBS)", "FFs (KA85)", "max delay (BIBS)",
            "max delay (KA85)", "kernels (KA85)"});

  for (int taps : {2, 3, 4, 6, 8, 10, 12}) {
    const rtl::Netlist n = circuits::make_fir_datapath(taps);
    const auto gates = gate::elaborate(n).netlist.gate_count();

    const core::DesignCost bibs =
        core::evaluate_design(n, core::design_bibs(n).bilbo);
    const core::DesignCost ka =
        core::evaluate_design(n, core::design_ka85(n).bilbo);

    t.row({Table::num(taps), Table::num(static_cast<long long>(gates)),
           Table::num(static_cast<long long>(n.register_edges().size())),
           Table::num(static_cast<long long>(bibs.bilbo_registers)),
           Table::num(static_cast<long long>(ka.bilbo_registers)),
           Table::num(bibs.bilbo_ffs), Table::num(ka.bilbo_ffs),
           Table::num(bibs.max_delay), Table::num(ka.max_delay),
           Table::num(static_cast<long long>(ka.kernels))});
  }
  t.print(std::cout);

  std::cout <<
      "\nBIBS converts only the PI/PO boundary (taps+2 registers) regardless\n"
      "of filter depth, while [3] must convert every pipeline register that\n"
      "feeds a multiplier or adder port — the gap grows linearly with taps,\n"
      "and so does the maximal delay penalty of [3].\n";
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const bibs::Error& e) {
    std::cerr << "filter_explorer: " << e.what() << "\n";
    return 1;
  }
}
