// bibs_check: the differential-verification CLI. Runs the bibs::check suite
// over the circuit zoo and a fleet of seeded random gate netlists, exercises
// the TPG exhaustiveness recheck after register-order optimization, and
// smoke-tests the oracles themselves by mutation, emitting one machine-
// readable JSON verdict (obs::Json). Exit status 0 iff every check passed.
//
//   bibs_check [--netlists N] [--mutants M] [--patterns P] [--threads T]
//              [--seed S] [--zoo-width W] [--json PATH] [--verbose]
//
// Phases:
//   zoo      every zoo circuit elaborated to gates, all metamorphic oracles
//            on the (circuit, circuit) pair + the exhaustive miter self-proof
//   tpg      per zoo kernel: optimize_register_order, then the rank-based
//            exhaustiveness certificate re-checked (and cross-checked against
//            the simulation-based certificate when the LFSR is small)
//   random   N seeded random netlists through every oracle; the miter proof
//            is exhaustive for every cone within the support limit
//   mutation M single-site mutants injected over a rotation of base
//            netlists; survivors are reported by seed
//   session  BistSession serial report == 2-thread report on two zoo kernels

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "circuits/random.hpp"
#include "core/designer.hpp"
#include "core/kernels.hpp"
#include "gate/synth.hpp"
#include "obs/obs.hpp"
#include "sim/session.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/optimize.hpp"

namespace {

using namespace bibs;

struct Options {
  int netlists = 200;
  int mutants = 60;
  std::int64_t patterns = 192;
  int threads = 2;
  std::uint64_t seed = 1;
  int zoo_width = 3;
  std::string json_path;
  bool verbose = false;
};

struct ZooCase {
  std::string name;
  rtl::Netlist n;
};

std::vector<ZooCase> zoo(int width) {
  std::vector<ZooCase> out;
  out.push_back({"fig2", circuits::make_fig2(width)});
  out.push_back({"fig3", circuits::make_fig3(width)});
  out.push_back({"fig4", circuits::make_fig4(width)});
  out.push_back({"fig12a", circuits::make_fig12a(width)});
  out.push_back({"c5a2m", circuits::make_c5a2m(width)});
  out.push_back({"c3a2m", circuits::make_c3a2m(width)});
  out.push_back({"c4a4m", circuits::make_c4a4m(width)});
  out.push_back({"fir3", circuits::make_fir_datapath(3, width)});
  out.push_back({"fir6", circuits::make_fir_datapath(6, width)});
  return out;
}

/// Shared tallies across phases; `fail` strings become the JSON "failures"
/// array and drive the exit status.
struct Tally {
  int checks = 0;
  std::vector<std::string> failures;
  std::vector<obs::Json> failure_details;

  void pass() { ++checks; }
  void fail(std::string what, obs::Json detail) {
    ++checks;
    failures.push_back(std::move(what));
    failure_details.push_back(std::move(detail));
  }
};

/// Runs every standard oracle except the miter (run separately so its cone
/// reports land in the JSON) on the (nl, nl) pair.
void run_self_oracles(const gate::Netlist& nl, const std::string& label,
                      const Options& opt, Tally& tally, obs::Json& out) {
  check::OracleContext ctx;
  ctx.ref = &nl;
  ctx.impl = &nl;
  ctx.seed = opt.seed;
  ctx.patterns = opt.patterns;
  ctx.threads = opt.threads;
  obs::Json oracles = obs::Json::object();
  for (const check::Oracle& o : check::standard_oracles()) {
    if (o.name == "miter_equivalence") continue;
    const check::Verdict v = o.fn(ctx);
    oracles[o.name] = obs::Json(v.pass);
    if (v.pass)
      tally.pass();
    else
      tally.fail(label + ":" + o.name, v.to_json());
  }
  out["oracles"] = std::move(oracles);

  check::EquivOptions eopt;
  eopt.seed = opt.seed;
  const check::EquivResult eq = check::check_equivalence(nl, nl, eopt);
  std::size_t exhaustive = 0;
  for (const check::ConeReport& c : eq.cones) exhaustive += c.exhaustive;
  out["cones"] = obs::Json(static_cast<std::uint64_t>(eq.cones.size()));
  out["cones_exhaustive"] = obs::Json(static_cast<std::uint64_t>(exhaustive));
  out["miter"] = obs::Json(eq.equivalent);
  if (eq.equivalent)
    tally.pass();
  else
    tally.fail(label + ":miter_equivalence", eq.to_json());
}

obs::Json phase_zoo(const Options& opt, Tally& tally) {
  obs::Span span("check.zoo");
  obs::Json arr = obs::Json::array();
  for (const ZooCase& z : zoo(opt.zoo_width)) {
    obs::Json j = obs::Json::object();
    j["circuit"] = obs::Json(z.name);
    const gate::Elaboration elab = gate::elaborate(z.n);
    j["gates"] = obs::Json(static_cast<std::uint64_t>(
        elab.netlist.gate_count()));
    run_self_oracles(elab.netlist, "zoo/" + z.name, opt, tally, j);
    arr.push_back(std::move(j));
  }
  return arr;
}

obs::Json phase_tpg(const Options& opt, Tally& tally) {
  obs::Span span("check.tpg");
  obs::Json arr = obs::Json::array();
  for (const ZooCase& z : zoo(opt.zoo_width)) {
    const core::DesignResult design = core::design_bibs(z.n);
    if (!design.report.ok) {
      tally.fail("tpg/" + z.name + ":design", obs::Json(z.name));
      continue;
    }
    for (std::size_t ki = 0; ki < design.report.kernels.size(); ++ki) {
      const core::Kernel& k = design.report.kernels[ki];
      if (k.trivial) continue;
      const std::string kname = "k" + std::to_string(ki);
      const tpg::GeneralizedStructure s =
          core::kernel_structure(z.n, design.bilbo, k);
      // Permutation search is factorial in the register count; the zoo
      // kernels all fit, but guard anyway.
      if (s.registers.size() > 7) continue;
      obs::Json j = obs::Json::object();
      j["circuit"] = obs::Json(z.name);
      j["kernel"] = obs::Json(kname);
      const tpg::OrderResult opt_order = tpg::optimize_register_order(s);
      const tpg::ExhaustiveReport rank =
          tpg::check_exhaustive_rank(opt_order.design);
      j["lfsr_stages"] = obs::Json(opt_order.design.lfsr_stages);
      j["rank_exhaustive"] = obs::Json(rank.all_exhaustive);
      if (rank.all_exhaustive)
        tally.pass();
      else
        tally.fail("tpg/" + z.name + "/" + kname + ":rank", j);
      // Cross-check the algebraic certificate against brute-force TPG
      // simulation where the period makes that affordable.
      if (rank.all_exhaustive && opt_order.design.lfsr_stages <= 16) {
        const tpg::ExhaustiveReport sim_rep =
            tpg::check_exhaustive_sim(opt_order.design);
        j["sim_exhaustive"] = obs::Json(sim_rep.all_exhaustive);
        if (sim_rep.all_exhaustive)
          tally.pass();
        else
          tally.fail("tpg/" + z.name + "/" + kname + ":sim", j);
      }
      arr.push_back(std::move(j));
    }
  }
  return arr;
}

obs::Json phase_random(const Options& opt, Tally& tally) {
  obs::Span span("check.random");
  obs::Json j = obs::Json::object();
  std::uint64_t cones = 0, exhaustive = 0;
  int failed = 0;
  for (int i = 0; i < opt.netlists; ++i) {
    circuits::RandomGateNetlistOptions ro;
    ro.inputs = 4 + i % 7;
    ro.gates = 12 + (i * 7) % 48;
    ro.outputs = 1 + i % 4;
    ro.seed = opt.seed * 1000 + static_cast<std::uint64_t>(i);
    const gate::Netlist nl = circuits::make_random_gate_netlist(ro);

    obs::Json rj = obs::Json::object();
    rj["seed"] = obs::Json(ro.seed);
    Tally local;
    run_self_oracles(nl, "random/" + std::to_string(ro.seed), opt, local, rj);
    cones += rj.find("cones")->number();
    exhaustive += rj.find("cones_exhaustive")->number();
    tally.checks += local.checks;
    failed += static_cast<int>(local.failures.size());
    for (std::size_t f = 0; f < local.failures.size(); ++f) {
      tally.failures.push_back(local.failures[f]);
      tally.failure_details.push_back(std::move(local.failure_details[f]));
    }
  }
  j["netlists"] = obs::Json(opt.netlists);
  j["cones"] = obs::Json(cones);
  j["cones_exhaustive"] = obs::Json(exhaustive);
  j["failed_checks"] = obs::Json(failed);
  return j;
}

obs::Json phase_mutation(const Options& opt, Tally& tally) {
  obs::Span span("check.mutation");
  // Small bases: every cone is exhaustible, so mutant ground truth is a
  // proof and the per-oracle random budgets see most of the input space.
  std::vector<gate::Netlist> bases;
  for (int b = 0; b < 4; ++b) {
    circuits::RandomGateNetlistOptions ro;
    ro.inputs = 5 + b;
    ro.gates = 16 + 6 * b;
    ro.outputs = 2 + b % 2;
    ro.seed = opt.seed * 77 + static_cast<std::uint64_t>(b);
    bases.push_back(circuits::make_random_gate_netlist(ro));
  }
  check::OracleContext base;
  base.patterns = opt.patterns;
  base.threads = opt.threads;
  base.emit_netlist = false;

  check::MutationReport total;
  obs::Json per_base = obs::Json::array();
  const int per = (opt.mutants + 3) / 4;
  for (std::size_t b = 0; b < bases.size(); ++b) {
    const check::MutationReport rep = check::mutation_smoke(
        bases[b], check::standard_oracles(), per,
        opt.seed * 77 + 1000 * (b + 1), base);
    total.mutants += rep.mutants;
    total.equivalents += rep.equivalents;
    total.undecided += rep.undecided;
    total.killed_by_all += rep.killed_by_all;
    total.killed_by_any += rep.killed_by_any;
    per_base.push_back(rep.to_json());
  }
  obs::Json j = obs::Json::object();
  j["mutants"] = obs::Json(static_cast<std::uint64_t>(total.mutants));
  j["equivalents"] = obs::Json(static_cast<std::uint64_t>(total.equivalents));
  j["undecided"] = obs::Json(static_cast<std::uint64_t>(total.undecided));
  j["killed_by_any"] =
      obs::Json(static_cast<std::uint64_t>(total.killed_by_any));
  j["killed_by_all"] =
      obs::Json(static_cast<std::uint64_t>(total.killed_by_all));
  j["kill_rate"] = obs::Json(total.kill_rate());
  j["strong_kill_rate"] = obs::Json(total.strong_kill_rate());
  j["bases"] = std::move(per_base);
  if (total.kill_rate() >= 0.95)
    tally.pass();
  else
    tally.fail("mutation:kill_rate", obs::Json(total.kill_rate()));
  return j;
}

obs::Json phase_session(const Options&, Tally& tally) {
  obs::Span span("check.session");
  obs::Json arr = obs::Json::array();
  for (const char* name : {"fig2", "c5a2m"}) {
    const rtl::Netlist n = std::string(name) == "fig2"
                               ? circuits::make_fig2(2)
                               : circuits::make_c5a2m(2);
    const core::DesignResult design = core::design_bibs(n);
    const gate::Elaboration elab = gate::elaborate(n);
    for (std::size_t ki = 0; ki < design.report.kernels.size(); ++ki) {
      const core::Kernel& k = design.report.kernels[ki];
      if (k.trivial) continue;
      const std::string kname = "k" + std::to_string(ki);
      sim::BistSession serial(n, elab, design.bilbo, k);
      sim::BistSession threaded(n, elab, design.bilbo, k);
      threaded.set_threads(2);
      const fault::FaultList faults = serial.kernel_faults();
      const std::int64_t cycles = 512;
      const sim::SessionReport a = serial.run(faults, cycles);
      const sim::SessionReport b = threaded.run(faults, cycles);
      obs::Json j = obs::Json::object();
      j["circuit"] = obs::Json(std::string(name));
      j["kernel"] = obs::Json(kname);
      j["identical"] = obs::Json(a == b);
      if (a == b)
        tally.pass();
      else
        tally.fail("session/" + std::string(name) + "/" + kname,
                   obs::Json("serial vs 2-thread report mismatch"));
      arr.push_back(std::move(j));
      break;  // one kernel per circuit keeps the phase cheap
    }
  }
  return arr;
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--netlists" && i + 1 < argc) opt.netlists = std::atoi(argv[++i]);
    else if (arg == "--mutants" && i + 1 < argc) opt.mutants = std::atoi(argv[++i]);
    else if (arg == "--patterns" && i + 1 < argc) opt.patterns = std::atoll(argv[++i]);
    else if (arg == "--threads" && i + 1 < argc) opt.threads = std::atoi(argv[++i]);
    else if (arg == "--seed" && i + 1 < argc) opt.seed = std::stoull(argv[++i]);
    else if (arg == "--zoo-width" && i + 1 < argc) opt.zoo_width = std::atoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) opt.json_path = argv[++i];
    else if (arg == "--verbose") opt.verbose = true;
    else {
      std::cerr << "unknown argument '" << arg << "'\n"
                << "usage: bibs_check [--netlists N] [--mutants M]"
                   " [--patterns P] [--threads T] [--seed S]"
                   " [--zoo-width W] [--json PATH] [--verbose]\n";
      return 2;
    }
  }

  Tally tally;
  obs::Json verdict = obs::Json::object();
  verdict["tool"] = obs::Json("bibs_check");
  verdict["seed"] = obs::Json(opt.seed);

  try {
    verdict["zoo"] = phase_zoo(opt, tally);
    std::cout << "zoo:      9 circuits (width " << opt.zoo_width
              << "), all oracles + exhaustive miter self-proof\n";
    verdict["tpg"] = phase_tpg(opt, tally);
    std::cout << "tpg:      register-order optimization certificates"
                 " re-checked\n";
    verdict["random"] = phase_random(opt, tally);
    {
      const obs::Json& r = verdict["random"];
      std::cout << "random:   " << opt.netlists << " netlists, "
                << static_cast<std::uint64_t>(r.find("cones")->number())
                << " cones ("
                << static_cast<std::uint64_t>(
                       r.find("cones_exhaustive")->number())
                << " proved exhaustively)\n";
    }
    verdict["mutation"] = phase_mutation(opt, tally);
    {
      const obs::Json& m = verdict["mutation"];
      std::cout << "mutation: "
                << static_cast<std::uint64_t>(m.find("mutants")->number())
                << " mutants, kill rate " << m.find("kill_rate")->number()
                << " (strong " << m.find("strong_kill_rate")->number() << ")\n";
    }
    verdict["session"] = phase_session(opt, tally);
    std::cout << "session:  serial == 2-thread BIST session reports\n";
  } catch (const Error& e) {
    tally.fail("exception", obs::Json(std::string(e.what())));
    std::cerr << "error: " << e.what() << "\n";
  }

  verdict["checks"] = obs::Json(tally.checks);
  obs::Json fails = obs::Json::array();
  for (std::size_t i = 0; i < tally.failures.size(); ++i) {
    obs::Json f = obs::Json::object();
    f["check"] = obs::Json(tally.failures[i]);
    f["detail"] = std::move(tally.failure_details[i]);
    fails.push_back(std::move(f));
  }
  verdict["failures"] = std::move(fails);
  const bool pass = tally.failures.empty();
  verdict["pass"] = obs::Json(pass);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << verdict.dump() << "\n";
  } else if (opt.verbose) {
    std::cout << verdict.dump() << "\n";
  }
  std::cout << (pass ? "PASS" : "FAIL") << " (" << tally.checks
            << " checks, " << tally.failures.size() << " failures)\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 2;
  }
}
