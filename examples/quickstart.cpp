// Quickstart: parse an RTL netlist from text, make it BIBS-testable, design
// the TPG for each kernel, and print the resulting BIST plan.
//
//   $ ./quickstart
//
// This walks the full public API surface in ~80 lines: rtl::parse_netlist ->
// core::design_bibs -> core::kernel_structure -> tpg::mc_tpg ->
// tpg::check_exhaustive_rank.

#include <iostream>

#include "core/designer.hpp"
#include "core/report.hpp"
#include "rtl/netlist.hpp"
#include "tpg/design.hpp"
#include "tpg/exhaustive.hpp"

namespace {

int run() {
  using namespace bibs;

  // A small pipelined design in the bibs netlist format: two operand
  // streams, one delayed, feeding a multiply-accumulate.
  const std::string text = R"(
circuit quickstart
input  x 4
input  k 4
input  c 4
comb   MUL mul 4
comb   ACC add 4
output y 4
reg    x MUL x_r 4
reg    k MUL k_r 4
reg    MUL ACC m_r 4
vacuous CV 4
reg    c CV c_r 4
reg    CV ACC c_d 4
reg    ACC y y_r 4
)";

  rtl::Netlist n = rtl::parse_netlist(text);
  std::cout << "parsed '" << n.name() << "': " << n.block_count()
            << " blocks, " << n.register_edges().size() << " registers ("
            << n.total_register_bits() << " flip-flops)\n\n";

  // 1. Make the circuit BIBS-testable: convert a minimum-cost register set
  //    so every kernel is balanced BISTable (Definition 1).
  const core::DesignResult design = core::design_bibs(n);
  const core::DesignCost cost = core::evaluate_design(n, design.bilbo);
  std::cout << "BIBS design: " << core::to_string(cost) << "\n";
  std::cout << "BILBO registers:";
  for (rtl::ConnId e : design.bilbo)
    std::cout << ' ' << n.connection(e).reg->name;
  std::cout << "\n\n";

  // 2. For each kernel, extract the generalized structure and build the TPG.
  for (const core::Kernel& k : design.report.kernels) {
    if (k.trivial) continue;
    const tpg::GeneralizedStructure s =
        core::kernel_structure(n, design.bilbo, k);
    const tpg::TpgDesign d = tpg::mc_tpg(s);
    std::cout << "kernel with " << k.blocks.size() << " blocks, input width "
              << s.total_width() << ":\n";
    std::cout << d.describe();

    // 3. Verify functional exhaustiveness with the algebraic check (the
    //    executable form of Theorems 4/5/7).
    const tpg::ExhaustiveReport rep = tpg::check_exhaustive_rank(d);
    for (const tpg::ConeCoverage& c : rep.cones)
      std::cout << "  cone " << c.cone << " (width " << c.width << "): "
                << (c.exhaustive ? "functionally exhaustive" : "NOT exhaustive")
                << "\n";
    const int depth = core::kernel_depth(n, design.bilbo, k);
    std::cout << "  test time: 2^" << d.lfsr_stages << " - 1 + " << depth
              << " = " << d.test_time(depth) << " clock cycles\n\n";
  }
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const bibs::Error& e) {
    std::cerr << "quickstart: " << e.what() << "\n";
    return 1;
  }
}
