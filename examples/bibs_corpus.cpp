// bibs_corpus: the corpus regression CLI. Sweeps the committed ISCAS-85
// .bench suite (data/iscas85/) and the paper's generated data paths through
// fault simulation under both fault models, BIST session emulation and the
// light bibs::check oracle subset, emitting one CI-diffable per-circuit
// table (CORPUS.json). Wall-clock timings go to a separate, never-diffed
// file. The table is bit-identical across thread counts and across
// interrupted-and-resumed runs (see src/corpus/corpus.hpp).
//
//   bibs_corpus [--tier1|--quick|--full] [--circuits a,b,c]
//               [--models stuck_at,transition] [--max-patterns N]
//               [--budgets n1,n2,...] [--seed S] [--threads T] [--lanes L]
//               [--data DIR] [--out PATH] [--timing PATH]
//               [--checkpoint PATH] [--diff GOLDEN] [--deadline-ms N]
//               [--unit-budget N] [--no-sessions] [--no-checks]
//
// Exit status: 0 table written (and matching the golden when --diff was
// given); 1 a --diff mismatch or an oracle failure; 2 usage error;
// 3 the run was interrupted (deadline / unit budget) before completing.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "corpus/corpus.hpp"
#include "obs/obs.hpp"

namespace {

using namespace bibs;

struct Options {
  std::string subset = "quick";
  std::vector<std::string> circuits;  // empty = all of the subset
  corpus::SweepOptions sweep;
  std::string out_path = "CORPUS.json";
  std::string timing_path;
  std::string diff_path;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int usage() {
  std::cerr
      << "usage: bibs_corpus [--tier1|--quick|--full] [--circuits a,b,c]\n"
         "                   [--models stuck_at,transition]"
         " [--max-patterns N]\n"
         "                   [--budgets n1,n2,...] [--seed S] [--threads T]"
         " [--lanes L]\n"
         "                   [--data DIR] [--out PATH] [--timing PATH]\n"
         "                   [--checkpoint PATH] [--diff GOLDEN]"
         " [--deadline-ms N]\n"
         "                   [--unit-budget N] [--no-sessions]"
         " [--no-checks]\n";
  return 2;
}

int run(int argc, char** argv) {
  Options opt;
  opt.sweep.data_dir = std::string(BIBS_SOURCE_DIR) + "/data";
  bool budgets_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--tier1" || arg == "--quick" || arg == "--full") {
      opt.subset = arg.substr(2);
    } else if (arg == "--circuits" && has_value) {
      opt.circuits = split_csv(argv[++i]);
    } else if (arg == "--models" && has_value) {
      opt.sweep.models = split_csv(argv[++i]);
    } else if (arg == "--max-patterns" && has_value) {
      opt.sweep.max_patterns = std::atoll(argv[++i]);
    } else if (arg == "--budgets" && has_value) {
      opt.sweep.budgets.clear();
      for (const std::string& b : split_csv(argv[++i]))
        opt.sweep.budgets.push_back(std::atoll(b.c_str()));
      budgets_set = true;
    } else if (arg == "--seed" && has_value) {
      opt.sweep.seed = std::stoull(argv[++i]);
    } else if (arg == "--threads" && has_value) {
      opt.sweep.threads = std::atoi(argv[++i]);
    } else if (arg == "--lanes" && has_value) {
      opt.sweep.lanes = std::atoi(argv[++i]);
    } else if (arg == "--data" && has_value) {
      opt.sweep.data_dir = argv[++i];
    } else if (arg == "--out" && has_value) {
      opt.out_path = argv[++i];
    } else if (arg == "--timing" && has_value) {
      opt.timing_path = argv[++i];
    } else if (arg == "--checkpoint" && has_value) {
      opt.sweep.checkpoint_path = argv[++i];
    } else if (arg == "--diff" && has_value) {
      opt.diff_path = argv[++i];
    } else if (arg == "--deadline-ms" && has_value) {
      opt.sweep.ctl.deadline =
          rt::Deadline::in(std::chrono::milliseconds(std::atoll(argv[++i])));
    } else if (arg == "--unit-budget" && has_value) {
      opt.sweep.ctl.budget = std::atoll(argv[++i]);
    } else if (arg == "--no-sessions") {
      opt.sweep.run_sessions = false;
    } else if (arg == "--no-checks") {
      opt.sweep.run_checks = false;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage();
    }
  }

  // Subsets with a smaller pattern budget keep the tier-1 gate fast; an
  // explicit --max-patterns / --budgets always wins.
  bool patterns_set = opt.sweep.max_patterns != 4096;
  if (opt.subset == "tier1" && !patterns_set) opt.sweep.max_patterns = 1024;
  if (opt.subset == "full" && !patterns_set) opt.sweep.max_patterns = 16384;
  if (!budgets_set) {
    opt.sweep.budgets = {64, 256, 1024};
    if (opt.sweep.max_patterns >= 4096) opt.sweep.budgets.push_back(4096);
    if (opt.sweep.max_patterns >= 16384) opt.sweep.budgets.push_back(16384);
  }

  std::vector<corpus::CircuitSpec> specs = corpus::standard_corpus(opt.subset);
  if (!opt.circuits.empty()) {
    std::vector<corpus::CircuitSpec> kept;
    for (const corpus::CircuitSpec& s : specs)
      for (const std::string& want : opt.circuits)
        if (s.name == want) {
          kept.push_back(s);
          break;
        }
    if (kept.empty()) {
      std::cerr << "--circuits matched nothing in subset '" << opt.subset
                << "'\n";
      return 2;
    }
    specs = std::move(kept);
  }

  const corpus::CorpusResult result = corpus::run_corpus(specs, opt.sweep);

  if (result.status != rt::RunStatus::kFinished) {
    std::cerr << "interrupted (" << rt::to_string(result.status) << ") after "
              << result.units_done << "/" << specs.size() << " circuits";
    if (!opt.sweep.checkpoint_path.empty())
      std::cerr << "; checkpoint saved, rerun to resume";
    std::cerr << "\n";
    return 3;
  }

  const std::string table = result.table.dump();
  if (opt.out_path == "-") {
    std::cout << table << "\n";
  } else {
    std::ofstream out(opt.out_path);
    if (!out.good()) {
      std::cerr << "cannot write '" << opt.out_path << "'\n";
      return 2;
    }
    out << table << "\n";
  }
  if (!opt.timing_path.empty()) {
    std::ofstream out(opt.timing_path);
    if (!out.good()) {
      std::cerr << "cannot write '" << opt.timing_path << "'\n";
      return 2;
    }
    out << result.timing.dump() << "\n";
  }

  std::cout << result.units_done << " circuits, "
            << opt.sweep.models.size() << " fault models, "
            << result.failed_checks << " oracle failures\n";

  int status = 0;
  if (result.failed_checks > 0) {
    std::cerr << "FAIL: " << result.failed_checks
              << " bibs::check oracle failures (see the per-circuit"
                 " \"checks\" fields)\n";
    status = 1;
  }
  if (!opt.diff_path.empty()) {
    std::ifstream in(opt.diff_path);
    if (!in.good()) {
      std::cerr << "cannot read golden '" << opt.diff_path << "'\n";
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const obs::Json golden = obs::Json::parse(ss.str());
    const std::vector<std::string> diffs =
        corpus::diff_tables(golden, result.table);
    if (diffs.empty()) {
      std::cout << "golden match: " << opt.diff_path << "\n";
    } else {
      std::cerr << "FAIL: table diverges from golden " << opt.diff_path
                << ":\n";
      for (const std::string& d : diffs) std::cerr << "  " << d << "\n";
      status = 1;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 2;
  }
}
