// BIST planner: the end of the BITS flow the paper sketches — read a
// circuit, choose a TDM, and emit the complete test program (per-session
// BILBO configurations, LFSR polynomials, clock counts, golden signatures)
// plus a controller FSM sketch, ready for tester/controller handoff.

#include <iostream>

#include "circuits/datapaths.hpp"
#include "core/designer.hpp"
#include "gate/synth.hpp"
#include "sim/testplan.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace bibs;

  const std::string which = argc > 1 ? argv[1] : "c3a2m";
  rtl::Netlist n;
  if (which == "c5a2m") n = circuits::make_c5a2m();
  else if (which == "c4a4m") n = circuits::make_c4a4m();
  else if (which == "fir4") n = circuits::make_fir_datapath(4);
  else n = circuits::make_c3a2m();

  const gate::Elaboration elab = gate::elaborate(n);

  std::cout << "=== BIBS plan ===\n";
  const auto bibs_plan =
      sim::make_test_plan(n, elab, core::design_bibs(n), 8192);
  std::cout << bibs_plan.to_string(n) << "\n"
            << bibs_plan.controller_rtl() << "\n";

  std::cout << "=== KA85 [3] plan ===\n";
  const auto ka_plan = sim::make_test_plan(n, elab, core::design_ka85(n), 8192);
  std::cout << ka_plan.to_string(n) << "\n" << ka_plan.controller_rtl();

  std::cout << "\nBIBS: " << bibs_plan.bilbo.size() << " BILBOs, "
            << bibs_plan.total_test_time() << " clocks total; KA85: "
            << ka_plan.bilbo.size() << " BILBOs, " << ka_plan.total_test_time()
            << " clocks total — the paper's hardware/test-time trade-off.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const bibs::Error& e) {
    std::cerr << "bist_planner: " << e.what() << "\n";
    return 1;
  }
}
