// End-to-end BIST of the paper's c5a2m digital-filter data path:
//
//   1. build the RTL data path and lower it to gates,
//   2. apply the BIBS TDM (PI/PO registers become BILBOs; the whole data
//      path is one balanced BISTable kernel),
//   3. emulate the silicon test session cycle by cycle: the MC_TPG LFSR
//      drives the input registers, MISRs compact the output register data,
//   4. report fault coverage (ideal observer vs signature) and the golden
//      signature a production tester would compare against.
//
// The full functionally exhaustive session would take 2^64 cycles; like any
// real BIST schedule we run a truncated pseudo-random session and measure
// the coverage it buys.

#include <cstdlib>
#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"
#include "gate/synth.hpp"
#include "obs/obs.hpp"
#include "rt/control.hpp"
#include "sim/session.hpp"
#include "tpg/synthesize.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace bibs;

  // --deadline-ms N bounds every simulated session by wall-clock time; a
  // session that runs out prints its (partial) coverage and the reason.
  // --threads N runs the 63-fault session batches on N workers (results are
  // bit-identical for any count; 0/default resolves BIBS_THREADS).
  rt::RunControl ctl;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--deadline-ms" && i + 1 < argc)
      ctl.deadline =
          rt::Deadline::in(std::chrono::milliseconds(std::atoll(argv[++i])));
    else if (std::string(argv[i]) == "--threads" && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }

  const rtl::Netlist n = circuits::make_c5a2m();
  std::cout << "c5a2m: o = (a+b)*(c+d) + (e+f)*(g+h), 8-bit operands\n";

  // gate::elaborate carries its own "gate.elaborate" span; this outer one
  // names the example's phase for the trace timeline.
  const gate::Elaboration elab = [&] {
    obs::Span span("elaborate");
    return gate::elaborate(n);
  }();
  std::cout << "elaborated to " << elab.netlist.gate_count()
            << " logic gates and " << elab.netlist.dffs().size()
            << " flip-flops\n\n";

  const core::DesignResult design = core::design_bibs(n);
  const core::DesignCost cost = core::evaluate_design(n, design.bilbo);
  std::cout << "BIBS design: " << core::to_string(cost) << "\n\n";

  for (const core::Kernel& k : design.report.kernels) {
    if (k.trivial) continue;
    sim::BistSession session = [&] {
      obs::Span span("tpg_synthesis");
      return sim::BistSession(n, elab, design.bilbo, k);
    }();
    session.set_threads(threads);
    session.set_progress(obs::progress_from_env());
    std::cout << "TPG: " << session.tpg().lfsr_stages << "-stage LFSR, "
              << session.tpg().physical_ffs() << " flip-flops, p(x) = "
              << session.tpg().poly.to_string() << "\n";
    const auto hw = tpg::synthesize_tpg(session.tpg());
    std::cout << "TPG hardware: " << hw.netlist.dffs().size()
              << " flip-flops, " << hw.feedback_xors()
              << " feedback XORs\n";

    obs::Span fault_sim_span("fault_sim");
    const fault::FaultList faults = session.kernel_faults();
    Table t("BIST session coverage vs length (collapsed stuck-at faults: " +
            std::to_string(faults.size()) + ")");
    t.header({"cycles", "detected @ outputs", "detected by signature",
              "aliased"});
    bool out_of_time = false;
    for (std::int64_t cycles : {256, 1024, 4096, 16384}) {
      const sim::SessionReport rep = session.run(faults, cycles, ctl);
      t.row({Table::num(static_cast<long long>(cycles)),
             Table::num(static_cast<long long>(rep.detected_at_outputs)),
             Table::num(static_cast<long long>(rep.detected_by_signature)),
             Table::num(static_cast<long long>(rep.aliased))});
      if (rep.status != rt::RunStatus::kFinished) {
        std::cout << "  (session stopped early: " << rt::to_string(rep.status)
                  << "; rows below reflect completed fault batches only)\n";
        out_of_time = true;
        break;
      }
    }
    t.print(std::cout);
    if (out_of_time) break;

    const sim::SessionReport rep = session.run(faults, 4096, ctl);
    std::cout << "\ngolden signatures after 4,096 cycles:";
    for (std::size_t i = 0; i < rep.golden_signatures.size(); ++i)
      std::cout << " 0x" << std::hex << rep.golden_signatures[i] << std::dec;
    std::cout << "\nsignature coverage at 4,096 cycles: "
              << 100.0 * static_cast<double>(rep.detected_by_signature) /
                     static_cast<double>(rep.total_faults)
              << "%\n";
  }

  if (obs::write_report_from_env())
    std::cerr << "wrote obs report to " << std::getenv("BIBS_METRICS") << "\n";
  if (obs::TraceWriter::instance().enabled())
    std::cerr << "tracing to " << obs::TraceWriter::instance().path()
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const bibs::Error& e) {
    std::cerr << "datapath_bist: " << e.what() << "\n";
    return 1;
  }
}
