// TPG design gallery: reruns the paper's Examples 2-7 through SC_TPG and
// MC_TPG, prints the flip-flop string and label assignment for each (the
// content of Figures 13, 15, 16(b), 17(b), 19(b) and 21(b)/(c)), and
// verifies functional exhaustiveness with both the brute-force and the
// algebraic checker.

#include <iostream>

#include "tpg/design.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/optimize.hpp"

namespace {

using namespace bibs::tpg;

void show(const std::string& title, const TpgDesign& d) {
  std::cout << "== " << title << " ==\n" << d.describe();
  const ExhaustiveReport rank = check_exhaustive_rank(d);
  for (const ConeCoverage& c : rank.cones)
    std::cout << "  cone " << c.cone << " width " << c.width << ": "
              << (c.exhaustive ? "exhaustive" : "NOT exhaustive") << "\n";
  if (d.lfsr_stages <= 20) {
    const ExhaustiveReport sim = check_exhaustive_sim(d);
    std::cout << "  simulated one full period: "
              << (sim.all_exhaustive ? "all cones exhaustive"
                                     : "NOT exhaustive")
              << "\n";
  }
  std::cout << "\n";
}

GeneralizedStructure single(const std::vector<int>& widths,
                            const std::vector<int>& depths) {
  std::vector<InputRegister> regs;
  for (std::size_t i = 0; i < widths.size(); ++i)
    regs.push_back({"R" + std::to_string(i + 1), widths[i]});
  return GeneralizedStructure::single_cone(std::move(regs), depths);
}

}  // namespace

namespace {

int run() {
  show("Example 2 / Figure 13: d = (2,1,0)", sc_tpg(single({4, 4, 4}, {2, 1, 0})));
  show("Example 3 / Figure 15: d = (1,2,0), shared stage L4",
       sc_tpg(single({4, 4, 4}, {1, 2, 0})));
  show("Example 4 / Figure 16: displacement -5, LFSR starts at L0",
       sc_tpg(single({4, 4}, {0, 5})));

  GeneralizedStructure ex5;
  ex5.registers = {{"R1", 4}, {"R2", 4}};
  ex5.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 1}, {1, 0}}}};
  show("Example 5 / Figure 17: two cones, 9-stage LFSR", mc_tpg(ex5));

  GeneralizedStructure ex6;
  ex6.registers = {{"R1", 4}, {"R2", 4}};
  ex6.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 0}, {1, 1}}}};
  const TpgDesign d6 = mc_tpg(ex6);
  show("Example 6 / Figure 19: 11-stage LFSR", d6);
  const ReconfigurableTpg r6 = reconfigurable_tpg(ex6);
  std::cout << "Figure 20 alternative (reconfigurable TPG): sessions of ";
  for (const TpgDesign& s : r6.sessions)
    std::cout << "2^" << s.lfsr_stages << " ";
  std::cout << "=> total test time " << r6.total_test_time() << " vs "
            << d6.test_time(2) << " single-session\n\n";

  GeneralizedStructure ex7;
  ex7.registers = {{"R1", 4}, {"R2", 4}, {"R3", 4}};
  ex7.cones = {{"O1", {{0, 2}, {1, 0}}},
               {"O2", {{0, 0}, {2, 1}}},
               {"O3", {{1, 1}, {2, 0}}}};
  show("Example 7 / Figure 21(b): order (R1,R2,R3)", mc_tpg(ex7));
  const OrderResult best = optimize_register_order(ex7);
  std::cout << "best register order found:";
  for (int i : best.order) std::cout << " R" << (i + 1);
  std::cout << (best.optimal ? " (meets the 2^w lower bound)" : "") << "\n\n";
  show("Example 7 / Figure 21(c): optimized order", best.design);

  const TestSignalResult sig = min_test_signals(ex7);
  std::cout << "Example 8: McCluskey minimal test signals = " << sig.signals
            << " (LFSR of " << sig.lfsr_stages
            << " stages) — worse than the " << best.design.lfsr_stages
            << "-stage MC_TPG design because the register-level procedure "
               "cannot use sequential-length information\n";
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const bibs::Error& e) {
    std::cerr << "tpg_designer: " << e.what() << "\n";
    return 1;
  }
}
