// bibs_cli: the BITS-style command-line flow — read a circuit file, make it
// BIBS-testable, and print the analysis, costs and the full test plan.
//
//   bibs_cli <file> [--tdm bibs|ka85|scan] [--cap <cycles>]
//
// The file format is chosen by extension: .edif / .sexp (S-expression form),
// anything else the line format. Without arguments it runs on a built-in
// sample (the c3a2m filter data path).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuits/datapaths.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"
#include "gate/synth.hpp"
#include "obs/obs.hpp"
#include "rtl/edif.hpp"
#include "sim/testplan.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace bibs;
  std::string path;
  std::string tdm = "bibs";
  std::uint64_t cap = 8192;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tdm" && i + 1 < argc) tdm = argv[++i];
    else if (arg == "--cap" && i + 1 < argc) cap = std::stoull(argv[++i]);
    else path = arg;
  }

  rtl::Netlist n;
  try {
    obs::Span span("cli.parse");
    if (path.empty()) {
      n = circuits::make_c3a2m();
      std::cout << "(no input file given; using the built-in c3a2m)\n\n";
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open '" << path << "'\n";
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      const bool sexp = path.ends_with(".edif") || path.ends_with(".sexp");
      n = sexp ? rtl::parse_edif(ss.str()) : rtl::parse_netlist(ss.str());
    }
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  std::cout << "circuit '" << n.name() << "': " << n.block_count()
            << " blocks, " << n.register_edges().size() << " registers, "
            << n.total_register_bits() << " flip-flops\n";

  try {
    if (tdm == "scan") {
      const auto scan = core::design_partial_scan(n);
      std::cout << "partial scan converts " << scan.size() << " register(s):";
      for (auto e : scan) std::cout << ' ' << n.connection(e).reg->name;
      std::cout << "\n";
      return 0;
    }
    const core::DesignResult design = [&] {
      obs::Span span("cli.design");
      return tdm == "ka85" ? core::design_ka85(n) : core::design_bibs(n);
    }();
    std::cout << "TDM '" << tdm
              << "': " << core::to_string(core::evaluate_design(n, design.bilbo))
              << "\n\n";
    const gate::Elaboration elab = gate::elaborate(n);
    std::cout << "gate-level: " << elab.netlist.gate_count() << " gates, "
              << elab.netlist.dffs().size() << " flip-flops\n\n";
    obs::Span plan_span("cli.test_plan");
    const auto plan = sim::make_test_plan(n, elab, design, cap);
    std::cout << plan.to_string(n) << "\n" << plan.controller_rtl();
  } catch (const Error& e) {
    std::cerr << "flow failed: " << e.what() << "\n";
    return 1;
  }

  // Machine-readable run report (and trace flush) for scripted consumers;
  // both also happen automatically at exit, this just orders them before
  // stdout closes and surfaces the destination.
  if (obs::write_report_from_env())
    std::cerr << "wrote obs report to " << std::getenv("BIBS_METRICS") << "\n";
  if (obs::TraceWriter::instance().enabled())
    std::cerr << "tracing to " << obs::TraceWriter::instance().path()
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The phases above catch and annotate their own errors; this is the last
  // line of defense so no bibs::Error ever escapes as std::terminate.
  try {
    return run(argc, argv);
  } catch (const bibs::Error& e) {
    std::cerr << "bibs_cli: " << e.what() << "\n";
    return 1;
  }
}
