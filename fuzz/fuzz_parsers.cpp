// libFuzzer entry point for the three text front-ends. The contract under
// fuzzing: arbitrary bytes may produce ParseError (and, past the syntactic
// layer, DesignError from netlist validation) but never any other escape —
// no crashes, hangs, unbounded recursion or non-bibs exceptions. The first
// input byte selects the parser so one corpus exercises all of them.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "gate/bench_format.hpp"
#include "rtl/edif.hpp"
#include "rtl/netlist.hpp"
#include "rtl/sexpr.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);
  try {
    switch (data[0] & 3) {
      case 0:
        (void)bibs::rtl::parse_sexpr(text);
        break;
      case 1:
        (void)bibs::rtl::parse_edif(text);
        break;
      case 2:
        (void)bibs::gate::parse_bench(text);
        break;
      default:
        (void)bibs::rtl::parse_netlist(text);
        break;
    }
  } catch (const bibs::Error&) {
    // Rejecting malformed input is the expected outcome.
  }
  return 0;
}
