// Tests for the design-space explorer (the BITS "family of solutions").

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "core/designer.hpp"
#include "core/explore.hpp"

namespace bibs::core {
namespace {

TEST(Explore, FrontierStartsAtTheMinimalBibsDesign) {
  const auto n = circuits::make_c5a2m();
  const auto frontier = explore_design_space(n);
  ASSERT_FALSE(frontier.empty());
  const auto base = design_bibs(n);
  EXPECT_EQ(frontier.front().bilbo, base.bilbo);
  EXPECT_EQ(frontier.front().max_kernel_width, 64);
  EXPECT_EQ(frontier.front().kernels, 1u);
}

TEST(Explore, FrontierIsMonotone) {
  for (int which = 0; which < 3; ++which) {
    const auto n = which == 0   ? circuits::make_c5a2m()
                   : which == 1 ? circuits::make_c3a2m()
                                : circuits::make_c4a4m();
    const auto frontier = explore_design_space(n);
    ASSERT_GE(frontier.size(), 3u) << which;
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      // Strictly shrinking dominating kernel, non-decreasing hardware.
      EXPECT_LT(frontier[i].max_kernel_width,
                frontier[i - 1].max_kernel_width);
      EXPECT_GT(frontier[i].bilbo_ffs, frontier[i - 1].bilbo_ffs);
    }
  }
}

TEST(Explore, EveryPointIsValid) {
  const auto n = circuits::make_c3a2m();
  for (const auto& p : explore_design_space(n))
    EXPECT_TRUE(check_bibs_testable(n, p.bilbo).ok);
}

TEST(Explore, ReachesThePerBlockRegime) {
  // The sweep must reach kernels no wider than two operands (16 bits),
  // i.e. the granularity of the KA85 per-block kernels.
  const auto n = circuits::make_c5a2m();
  const auto frontier = explore_design_space(n);
  EXPECT_EQ(frontier.back().max_kernel_width, 16);
  // c4a4m needs pair conversions (the reconverging multipliers) to get to
  // its 24-bit {Mi,Mj} kernels.
  const auto f4 = explore_design_space(circuits::make_c4a4m());
  EXPECT_LE(f4.back().max_kernel_width, 24);
}

TEST(Explore, BalancedPipelineWithoutChoicesHasShortFrontier) {
  const auto n = circuits::make_fig2();
  const auto frontier = explore_design_space(n);
  ASSERT_GE(frontier.size(), 1u);
  // Only R2 can be added; it splits the two inverters into two kernels.
  EXPECT_LE(frontier.size(), 2u);
}

}  // namespace
}  // namespace bibs::core
