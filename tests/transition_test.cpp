// Tests for the transition (gross gate-delay) fault model: the stem-only
// fault universe, two-pattern launch/capture detection in the PPSFP
// simulator (cross-checked against naive resimulation), undetectable edge
// cases (constant nodes, single-pattern runs), width/thread invariance
// mirroring tests/lanes_test.cpp, checkpoint/resume bit-exactness, and the
// at-speed BIST session / CSTP paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "circuits/datapaths.hpp"
#include "circuits/random.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "fault/fault.hpp"
#include "fault/simulator.hpp"
#include "gate/lanes.hpp"
#include "gate/synth.hpp"
#include "rt/checkpoint.hpp"
#include "sim/cstp.hpp"
#include "sim/session.hpp"

namespace bibs {
namespace {

constexpr std::int64_t kNoStall = std::numeric_limits<std::int64_t>::max();

using fault::CoverageCurve;
using fault::Fault;
using fault::FaultList;
using fault::FaultModel;
using fault::FaultSimulator;
using gate::Bus;
using gate::GateType;
using gate::NetId;
using gate::Netlist;

Netlist adder(int width) {
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < width; ++i)
    a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(nl.add_input("b" + std::to_string(i)));
  for (NetId o : gate::ripple_adder(nl, a, b, true)) nl.mark_output(o);
  return nl;
}

/// adder(width) plus an AND chain over all inputs: the chain head's
/// slow-to-fall fault needs an all-ones launch pattern (probability
/// 2^-2*width), so random runs keep at least one live fault and budget /
/// deadline stops fire instead of natural completion.
Netlist adder_with_resistant_and(int width) {
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < width; ++i)
    a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(nl.add_input("b" + std::to_string(i)));
  for (NetId o : gate::ripple_adder(nl, a, b, true)) nl.mark_output(o);
  NetId all = a[0];
  for (int i = 1; i < width; ++i)
    all = nl.add_gate(GateType::kAnd, {all, a[static_cast<std::size_t>(i)]},
                      "alla" + std::to_string(i));
  for (int i = 0; i < width; ++i)
    all = nl.add_gate(GateType::kAnd, {all, b[static_cast<std::size_t>(i)]},
                      "allb" + std::to_string(i));
  nl.mark_output(all, "all_ones");
  return nl;
}

/// A generator replaying an explicit pattern list, one bit per input, in
/// 64-lane blocks — the stimulus side of the naive cross-checks.
FaultSimulator::PatternBlockFn replay(
    const Netlist& nl, const std::vector<std::vector<bool>>& patterns) {
  auto next = std::make_shared<std::size_t>(0);
  const std::size_t n_inputs = nl.inputs().size();
  return [&patterns, next, n_inputs](std::uint64_t* words) {
    const std::size_t base = *next;
    if (base >= patterns.size()) return 0;
    const int lanes =
        static_cast<int>(std::min<std::size_t>(64, patterns.size() - base));
    for (std::size_t i = 0; i < n_inputs; ++i) {
      std::uint64_t w = 0;
      for (int l = 0; l < lanes; ++l)
        if (patterns[base + l][i]) w |= 1ull << l;
      words[i] = w;
    }
    *next += static_cast<std::size_t>(lanes);
    return lanes;
  };
}

std::vector<std::vector<bool>> seeded_patterns(const Netlist& nl,
                                               std::size_t count,
                                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<bool>> out(count);
  for (auto& p : out) {
    p.resize(nl.inputs().size());
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = rng.next() & 1u;
  }
  return out;
}

// ------------------------------------------------------- fault universe --

TEST(TransitionList, StemOnlyBothPolaritiesConstantsExcluded) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId one = nl.add_const(true);
  const NetId y = nl.add_gate(GateType::kAnd, {a, one}, "y");
  nl.mark_output(y, "y");
  const FaultList fl = FaultList::transition(nl);
  // Sites: a and y; the constant is excluded. Two polarities each.
  EXPECT_EQ(fl.size(), 4u);
  EXPECT_EQ(fl.full_size(), fl.size());
  for (const Fault& f : fl.faults()) {
    EXPECT_EQ(f.pin, -1);
    EXPECT_NE(f.net, one);
  }
  EXPECT_EQ(fault::to_string(nl, fl[0], FaultModel::kTransition),
            "a slow-to-rise");
  EXPECT_EQ(fault::to_string(nl, fl[1], FaultModel::kTransition),
            "a slow-to-fall");
}

TEST(TransitionList, ModelNamesRoundTrip) {
  EXPECT_EQ(fault::to_string(FaultModel::kStuckAt), "stuck_at");
  EXPECT_EQ(fault::to_string(FaultModel::kTransition), "transition");
  EXPECT_EQ(fault::fault_model_from_string("transition"),
            FaultModel::kTransition);
  EXPECT_EQ(fault::fault_model_from_string("stuck_at"), FaultModel::kStuckAt);
  EXPECT_THROW(fault::fault_model_from_string("delay"), DesignError);
}

TEST(TransitionSim, RejectsPinFaults) {
  const Netlist nl = adder(4);
  // The collapsed stuck-at list carries branch (pin) faults.
  const FaultList stuck = FaultList::full(nl);
  ASSERT_TRUE(std::any_of(stuck.faults().begin(), stuck.faults().end(),
                          [](const Fault& f) { return f.pin >= 0; }));
  EXPECT_THROW(FaultSimulator(nl, stuck, fault::EvalBackend::kCompiled,
                              FaultModel::kTransition),
               DesignError);
}

// ------------------------------------------------- launch/capture pairing --

TEST(TransitionSim, BufferLaunchCapturePairing) {
  // y = BUF(a): a slow-to-rise fault is detected exactly on the first 0->1
  // step of the input stream, slow-to-fall on the first 1->0 step.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_gate(GateType::kBuf, {a}, "y");
  nl.mark_output(y, "y");

  std::vector<std::vector<bool>> patterns;
  for (const bool bit : {false, true, true, false, true})
    patterns.push_back({bit});

  FaultSimulator sim(nl, FaultList::transition(nl),
                     fault::EvalBackend::kCompiled, FaultModel::kTransition);
  const CoverageCurve curve =
      sim.run(replay(nl, patterns), static_cast<std::int64_t>(patterns.size()));
  ASSERT_EQ(curve.detected_at.size(), 4u);  // {a, y} x {STR, STF}
  for (std::size_t fi = 0; fi < 4; ++fi) {
    const bool stf = sim.faults()[fi].stuck;
    EXPECT_EQ(curve.detected_at[fi], stf ? 3 : 1)
        << fault::to_string(nl, sim.faults()[fi], FaultModel::kTransition);
  }
}

TEST(TransitionSim, Pattern0NeverDetects) {
  const Netlist nl = adder(4);
  FaultSimulator sim(nl, FaultList::transition(nl),
                     fault::EvalBackend::kCompiled, FaultModel::kTransition);
  // A single pattern has no launch side: nothing can be detected.
  const auto patterns = seeded_patterns(nl, 1, 3);
  const CoverageCurve curve = sim.run(replay(nl, patterns), 1);
  EXPECT_EQ(curve.patterns_run, 1);
  EXPECT_EQ(curve.detected_count(), 0u);
}

TEST(TransitionSim, ConstantNodeIsUndetectable) {
  // z = AND(a, NOT a) is structurally constant 0: its slow-to-rise fault
  // has no stuck-at-0 difference to propagate and its slow-to-fall fault
  // never sees a launch value of 1.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId na = nl.add_gate(GateType::kNot, {a}, "na");
  const NetId z = nl.add_gate(GateType::kAnd, {a, na}, "z");
  const NetId y = nl.add_gate(GateType::kOr, {z, b}, "y");
  nl.mark_output(y, "y");

  FaultSimulator sim(nl, FaultList::transition(nl),
                     fault::EvalBackend::kCompiled, FaultModel::kTransition);
  Xoshiro256 rng(11);
  const CoverageCurve curve = sim.run_random(rng, 512);
  for (std::size_t fi = 0; fi < sim.faults().size(); ++fi)
    if (sim.faults()[fi].net == z)
      EXPECT_EQ(curve.detected_at[fi], CoverageCurve::kUndetected);
  // The circuit is otherwise alive: something else is detected.
  EXPECT_GT(curve.detected_count(), 0u);
}

// ---------------------------------------------------- naive cross-check --

TEST(TransitionSim, MatchesNaiveTwoPatternResimulation) {
  std::vector<Netlist> zoo;
  zoo.push_back(adder(4));
  for (int i = 0; i < 3; ++i) {
    circuits::RandomGateNetlistOptions ro;
    ro.inputs = 5 + i;
    ro.gates = 18 + 9 * i;
    ro.outputs = 2 + i;
    ro.seed = 900 + static_cast<std::uint64_t>(i);
    zoo.push_back(circuits::make_random_gate_netlist(ro));
  }
  for (const Netlist& nl : zoo) {
    const auto patterns = seeded_patterns(nl, 160, 77);
    FaultSimulator sim(nl, FaultList::transition(nl),
                       fault::EvalBackend::kCompiled, FaultModel::kTransition);
    const CoverageCurve curve =
        sim.run(replay(nl, patterns),
                static_cast<std::int64_t>(patterns.size()));
    ASSERT_EQ(curve.patterns_run,
              static_cast<std::int64_t>(patterns.size()));
    for (std::size_t fi = 0; fi < sim.faults().size(); ++fi) {
      const Fault& f = sim.faults()[fi];
      std::int64_t expect = CoverageCurve::kUndetected;
      for (std::size_t p = 1; p < patterns.size(); ++p) {
        if (sim.detects_naive_transition(f, patterns[p - 1], patterns[p])) {
          expect = static_cast<std::int64_t>(p);
          break;
        }
      }
      EXPECT_EQ(curve.detected_at[fi], expect)
          << fault::to_string(nl, f, FaultModel::kTransition);
    }
  }
}

// --------------------------------------------- width / thread invariance --

TEST(TransitionSim, CurvesAreWidthInvariant) {
  for (int width : {4, 8}) {
    const Netlist nl = adder(width);
    const FaultList faults = FaultList::transition(nl);

    FaultSimulator scalar_sim(nl, faults, fault::EvalBackend::kCompiled,
                              FaultModel::kTransition);
    scalar_sim.set_lane_backend(&gate::scalar_lane_backend());
    Xoshiro256 rng_s(42);
    const CoverageCurve base = scalar_sim.run_random(rng_s, 2048);

    for (const gate::LaneBackend* lb : gate::all_lane_backends()) {
      if (!lb->supported() || lb == &gate::scalar_lane_backend()) continue;
      FaultSimulator sim(nl, faults, fault::EvalBackend::kCompiled,
                         FaultModel::kTransition);
      sim.set_lane_backend(lb);
      Xoshiro256 rng(42);
      const CoverageCurve curve = sim.run_random(rng, 2048);
      EXPECT_EQ(curve.detected_at, base.detected_at) << lb->name;
      EXPECT_EQ(curve.patterns_run % lb->lanes, 0) << lb->name;
    }
  }
}

TEST(TransitionSim, CurvesAreThreadInvariant) {
  const Netlist nl = adder(8);
  const FaultList faults = FaultList::transition(nl);
  FaultSimulator serial(nl, faults, fault::EvalBackend::kCompiled,
                        FaultModel::kTransition);
  serial.set_threads(1);
  Xoshiro256 rng_a(5);
  const CoverageCurve a = serial.run_random(rng_a, 1024);

  FaultSimulator threaded(nl, faults, fault::EvalBackend::kCompiled,
                          FaultModel::kTransition);
  threaded.set_threads(4);
  Xoshiro256 rng_b(5);
  const CoverageCurve b = threaded.run_random(rng_b, 1024);
  EXPECT_EQ(a.detected_at, b.detected_at);
  EXPECT_EQ(a.patterns_run, b.patterns_run);
}

// ------------------------------------------------------ checkpoint/resume --

TEST(TransitionSim, CheckpointResumeIsBitExact) {
  const Netlist nl = adder_with_resistant_and(8);
  const FaultList faults = FaultList::transition(nl);

  // Scalar64 keeps the poll granularity at 64 patterns, so the budget stop
  // fires while faults are still live (a wide block would already have
  // detected everything and finished naturally before the first poll).
  FaultSimulator straight(nl, faults, fault::EvalBackend::kCompiled,
                          FaultModel::kTransition);
  straight.set_lane_backend(&gate::scalar_lane_backend());
  Xoshiro256 rng_a(21);
  const CoverageCurve whole = straight.run_random(rng_a, 1024);

  FaultSimulator first(nl, faults, fault::EvalBackend::kCompiled,
                       FaultModel::kTransition);
  first.set_lane_backend(&gate::scalar_lane_backend());
  Xoshiro256 rng_b(21);
  rt::RunControl ctl;
  ctl.budget = 64;
  const CoverageCurve part = first.run_random(rng_b, 1024, kNoStall, ctl);
  ASSERT_EQ(part.status, rt::RunStatus::kBudgetExhausted);
  ASSERT_LT(part.patterns_run, whole.patterns_run);
  rt::SimCheckpoint ck = first.make_checkpoint(part, &rng_b);
  EXPECT_EQ(ck.fault_model, "transition");
  EXPECT_EQ(ck.site_prev.size(), faults.size());

  // Round-trip through JSON, as a process restart would.
  const rt::SimCheckpoint thawed =
      rt::SimCheckpoint::from_json(ck.to_json());
  EXPECT_EQ(thawed.fault_model, "transition");
  ASSERT_EQ(thawed.site_prev, ck.site_prev);

  FaultSimulator second(nl, faults, fault::EvalBackend::kCompiled,
                        FaultModel::kTransition);
  second.set_lane_backend(&gate::scalar_lane_backend());
  Xoshiro256 rng_c(999);  // overwritten by the checkpointed PRNG state
  const CoverageCurve rest =
      second.run_random(rng_c, 1024, kNoStall, {}, &thawed);
  EXPECT_EQ(rest.detected_at, whole.detected_at);
  EXPECT_EQ(rest.patterns_run, whole.patterns_run);
}

TEST(TransitionSim, ResumeRejectsModelMismatchAndMissingLaunchState) {
  const Netlist nl = adder_with_resistant_and(8);

  // A stuck-at checkpoint cannot seed a transition run (and vice versa).
  // Scalar64 again so the budget stop beats natural completion.
  FaultSimulator stuck(nl, FaultList::collapsed(nl));
  stuck.set_lane_backend(&gate::scalar_lane_backend());
  Xoshiro256 rng(3);
  rt::RunControl ctl;
  ctl.budget = 64;
  const CoverageCurve part = stuck.run_random(rng, 1024, kNoStall, ctl);
  ASSERT_NE(part.status, rt::RunStatus::kFinished);
  const rt::SimCheckpoint sa_ck = stuck.make_checkpoint(part, &rng);
  EXPECT_EQ(sa_ck.fault_model, "stuck_at");

  const FaultList tfaults = FaultList::transition(nl);
  FaultSimulator trans(nl, tfaults, fault::EvalBackend::kCompiled,
                       FaultModel::kTransition);
  Xoshiro256 rng2(3);
  EXPECT_THROW(trans.run_random(rng2, 1024, kNoStall, {}, &sa_ck),
               DesignError);

  // A transition checkpoint stripped of its site_prev launch state is
  // unusable once patterns were simulated.
  FaultSimulator trans2(nl, tfaults, fault::EvalBackend::kCompiled,
                        FaultModel::kTransition);
  trans2.set_lane_backend(&gate::scalar_lane_backend());
  Xoshiro256 rng3(3);
  const CoverageCurve tpart = trans2.run_random(rng3, 1024, kNoStall, ctl);
  ASSERT_NE(tpart.status, rt::RunStatus::kFinished);
  rt::SimCheckpoint t_ck = trans2.make_checkpoint(tpart, &rng3);
  t_ck.site_prev.clear();
  FaultSimulator trans3(nl, tfaults, fault::EvalBackend::kCompiled,
                        FaultModel::kTransition);
  Xoshiro256 rng4(3);
  EXPECT_THROW(trans3.run_random(rng4, 1024, kNoStall, {}, &t_ck),
               DesignError);
}

// ------------------------------------------------------- session / CSTP --

struct Rig {
  rtl::Netlist n;
  gate::Elaboration elab;
  core::DesignResult design;
  std::vector<core::Kernel> kernels;
};

Rig make_rig() {
  Rig s;
  s.n = circuits::make_c3a2m();
  s.elab = gate::elaborate(s.n);
  s.design = core::design_bibs(s.n);
  for (const core::Kernel& k : s.design.report.kernels)
    if (!k.trivial) s.kernels.push_back(k);
  return s;
}

TEST(TransitionSession, SerialThreadedAndWideReportsAgree) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  session.set_fault_model(FaultModel::kTransition);
  EXPECT_EQ(session.fault_model(), FaultModel::kTransition);
  const FaultList faults = session.kernel_transition_faults();
  ASSERT_GT(faults.size(), 63u);
  for (const Fault& f : faults.faults()) EXPECT_EQ(f.pin, -1);

  session.set_batch_lanes(64);
  const sim::SessionReport serial = session.run(faults, 256);
  EXPECT_GT(serial.detected_by_signature, 0u);
  EXPECT_LE(serial.detected_by_signature, serial.detected_at_outputs);

  session.set_threads(3);
  EXPECT_EQ(session.run(faults, 256), serial);
  session.set_threads(1);

  for (const gate::LaneBackend* lb : gate::all_lane_backends()) {
    if (!lb->supported() || lb->words == 1) continue;
    session.set_batch_lanes(lb->lanes);
    EXPECT_EQ(session.run(faults, 256), serial) << lb->name;
  }
}

TEST(TransitionSession, CheckpointRecordsModelAndRejectsMismatch) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  session.set_batch_lanes(64);
  session.set_fault_model(FaultModel::kTransition);
  const FaultList faults = session.kernel_transition_faults();

  rt::SessionCheckpoint ck;
  const sim::SessionReport rep = session.run(faults, 128, {}, nullptr, &ck);
  ASSERT_EQ(rep.status, rt::RunStatus::kFinished);
  EXPECT_EQ(ck.fault_model, "transition");
  const rt::SessionCheckpoint thawed =
      rt::SessionCheckpoint::from_json(ck.to_json());
  EXPECT_EQ(thawed.fault_model, "transition");

  session.set_fault_model(FaultModel::kStuckAt);
  EXPECT_THROW(session.run(faults, 128, {}, &thawed), DesignError);
  // Back under the right model the checkpoint replays bit-exactly.
  session.set_fault_model(FaultModel::kTransition);
  EXPECT_EQ(session.run(faults, 128, {}, &thawed), rep);
}

TEST(TransitionCstp, ReportIsDeterministicAcrossWidthsAndDetects) {
  const Rig s = make_rig();
  sim::CstpSession cstp(s.elab.netlist);
  cstp.set_fault_model(FaultModel::kTransition);
  EXPECT_EQ(cstp.fault_model(), FaultModel::kTransition);
  const FaultList faults = FaultList::transition(s.elab.netlist);
  ASSERT_GT(faults.size(), 63u);

  cstp.set_batch_lanes(64);
  const sim::CstpReport narrow = cstp.run(faults, 128);
  EXPECT_GT(narrow.detected_ideal, 0u);
  EXPECT_GE(narrow.detected_ideal, narrow.detected_by_signature);

  for (const gate::LaneBackend* lb : gate::all_lane_backends()) {
    if (!lb->supported() || lb->words == 1) continue;
    cstp.set_batch_lanes(lb->lanes);
    const sim::CstpReport wide = cstp.run(faults, 128);
    EXPECT_EQ(wide.detected_ideal, narrow.detected_ideal) << lb->name;
    EXPECT_EQ(wide.detected_by_signature, narrow.detected_by_signature)
        << lb->name;
  }
}

}  // namespace
}  // namespace bibs
