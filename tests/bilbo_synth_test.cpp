// Gate-level BILBO vs the behavioural model: every mode, cycle-accurate,
// including live mode switches mid-test (the way a real session reconfigures
// registers between TPG and SA roles).

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "gate/sim.hpp"
#include "lfsr/bilbo.hpp"
#include "lfsr/bilbo_synth.hpp"

namespace bibs::lfsr {
namespace {

struct Rig {
  SynthesizedBilbo hw;
  gate::Simulator sim;
  Bilbo model;

  explicit Rig(int width)
      : hw(synthesize_bilbo(width)), sim(hw.netlist), model(width) {
    sim.reset();
  }

  void set_mode(BilboMode m) {
    model.set_mode(m);
    const int code = static_cast<int>(m);  // kNormal=0 kScan=1 kTpg=2 kSa=3
    sim.set_input(hw.m0, (code & 1) ? ~0ull : 0);
    sim.set_input(hw.m1, (code & 2) ? ~0ull : 0);
  }

  void step(std::uint64_t data, bool scan_in) {
    BitVec in(static_cast<std::size_t>(model.width()));
    in.deposit(0, static_cast<std::size_t>(model.width()), data);
    for (std::size_t i = 0; i < hw.d.size(); ++i)
      sim.set_input(hw.d[i], ((data >> i) & 1) ? ~0ull : 0);
    sim.set_input(hw.scan_in, scan_in ? ~0ull : 0);
    sim.eval();
    sim.clock();
    model.step(in, scan_in);
  }

  std::uint64_t hw_state() {
    sim.eval();
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < hw.q.size(); ++i)
      if (sim.value(hw.q[i]) & 1) v |= 1ull << i;
    return v;
  }

  std::uint64_t model_state() const {
    return model.state().extract(
        0, static_cast<std::size_t>(model.width()));
  }
};

class BilboSynth : public ::testing::TestWithParam<int> {};

TEST_P(BilboSynth, AllModesMatchBehaviouralModel) {
  const int w = GetParam();
  Rig rig(w);
  Xoshiro256 rng(static_cast<std::uint64_t>(w) * 31);
  const BilboMode modes[] = {BilboMode::kNormal, BilboMode::kScan,
                             BilboMode::kTpg, BilboMode::kSa};
  for (const BilboMode m : modes) {
    rig.set_mode(m);
    for (int t = 0; t < 40; ++t) {
      rig.step(rng.next() & ((1ull << w) - 1), rng.next() & 1);
      ASSERT_EQ(rig.hw_state(), rig.model_state())
          << "mode " << static_cast<int>(m) << " t=" << t;
    }
  }
}

TEST_P(BilboSynth, RandomModeSwitching) {
  const int w = GetParam();
  Rig rig(w);
  Xoshiro256 rng(static_cast<std::uint64_t>(w) * 77 + 5);
  for (int t = 0; t < 200; ++t) {
    rig.set_mode(static_cast<BilboMode>(rng.next_below(4)));
    rig.step(rng.next() & ((1ull << w) - 1), rng.next() & 1);
    ASSERT_EQ(rig.hw_state(), rig.model_state()) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BilboSynth, ::testing::Values(2, 4, 8, 12));

TEST(BilboSynthCost, GateOverheadTracksTheAreaModel) {
  // The gate-equivalent area model (6w + 4) should be in the ballpark of
  // the synthesized cell (muxes decoded once, XOR per stage).
  for (int w : {4, 8, 16}) {
    const SynthesizedBilbo hw = synthesize_bilbo(w);
    const double model = Bilbo::area_overhead_gate_equivalents(w);
    const double actual = static_cast<double>(hw.netlist.gate_count());
    EXPECT_GT(actual, model * 0.4) << w;
    EXPECT_LT(actual, model * 2.0) << w;
  }
}

TEST(BilboSynthCost, TpgModeIsMaximalLength) {
  // In TPG mode the synthesized register must cycle through 2^w - 1 states.
  Rig rig(8);
  rig.set_mode(BilboMode::kNormal);
  rig.step(1, false);  // load a nonzero seed
  rig.set_mode(BilboMode::kTpg);
  const std::uint64_t start = rig.hw_state();
  int period = 0;
  for (int t = 1; t <= 300; ++t) {
    rig.step(0, false);
    if (rig.hw_state() == start) {
      period = t;
      break;
    }
  }
  EXPECT_EQ(period, 255);
}

}  // namespace
}  // namespace bibs::lfsr
