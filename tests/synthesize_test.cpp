// Hardware-vs-model equivalence for synthesized TPGs: the gate-level DFF
// string clocked by gate::Simulator must produce, cell for cell and cycle
// for cycle, the streams the label-offset semantics predict — for every
// paper example, including the shared-stage and negative-displacement ones.

#include <gtest/gtest.h>

#include <deque>

#include "gate/sim.hpp"
#include "lfsr/lfsr.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/synthesize.hpp"

namespace bibs::tpg {
namespace {

GeneralizedStructure single(const std::vector<int>& widths,
                            const std::vector<int>& depths) {
  std::vector<InputRegister> regs;
  for (std::size_t i = 0; i < widths.size(); ++i)
    regs.push_back({"R" + std::to_string(i + 1), widths[i]});
  return GeneralizedStructure::single_cone(std::move(regs), depths);
}

/// Clocks the synthesized TPG and checks every register cell against the
/// reference m-sequence history a(t - (label - min_label)).
void check_hardware_matches_model(const TpgDesign& d) {
  const SynthesizedTpg hw = synthesize_tpg(d);
  gate::Simulator sim(hw.netlist);
  sim.reset();
  // Seed the LFSR driving stages with the Type1Lfsr initial state
  // (00...01): stage M = 1.
  sim.set_state(hw.stage_q[static_cast<std::size_t>(d.lfsr_stages - 1)],
                ~0ull & 1u);

  lfsr::Type1Lfsr ref(d.poly);
  std::deque<bool> hist;  // hist[k] = a(t - k)

  int max_shift = 0;
  for (const auto& labels : d.cell_label)
    for (int l : labels) max_shift = std::max(max_shift, l - d.min_label);

  const int warmup = max_shift + d.lfsr_stages + 2;
  for (int t = 0; t < warmup + 200; ++t) {
    sim.eval();
    // Reference stream: a(t) = stage 1 of the model LFSR *after* its step,
    // matching the DFF capture of the feedback value.
    if (t >= warmup) {
      for (std::size_t i = 0; i < d.cell_label.size(); ++i)
        for (std::size_t j = 0; j < d.cell_label[i].size(); ++j) {
          const int shift = d.cell_label[i][j] - d.min_label;
          const bool want = hist[static_cast<std::size_t>(shift)];
          const bool got = sim.value(hw.cell_q[i][j]) & 1u;
          ASSERT_EQ(got, want) << "t=" << t << " reg " << i << " cell " << j;
        }
    }
    sim.clock();
    ref.step();
    hist.push_front(ref.stage(1));
    if (static_cast<int>(hist.size()) > max_shift + 2) hist.pop_back();
  }
}

TEST(SynthesizeTpg, Example2HardwareMatches) {
  check_hardware_matches_model(sc_tpg(single({4, 4, 4}, {2, 1, 0})));
}

TEST(SynthesizeTpg, Example3SharedStageHardwareMatches) {
  check_hardware_matches_model(sc_tpg(single({4, 4, 4}, {1, 2, 0})));
}

TEST(SynthesizeTpg, Example4NegativeDisplacementHardwareMatches) {
  check_hardware_matches_model(sc_tpg(single({4, 4}, {0, 5})));
}

TEST(SynthesizeTpg, Example5MultiConeHardwareMatches) {
  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 1}, {1, 0}}}};
  check_hardware_matches_model(mc_tpg(s));
}

TEST(SynthesizeTpg, PhysicalFfCountMatchesDesign) {
  const TpgDesign d = sc_tpg(single({4, 4, 4}, {2, 1, 0}));
  const SynthesizedTpg hw = synthesize_tpg(d);
  EXPECT_EQ(hw.netlist.dffs().size(),
            static_cast<std::size_t>(d.physical_ffs()));
  // Feedback taps of x^12+x^7+x^4+x^3+1: stages 12, 5, 8, 9 -> 3 XORs.
  EXPECT_EQ(hw.feedback_xors(), 3u);
}

TEST(SynthesizeTpg, HardwarePeriodIsMaximal) {
  // Clock the synthesized Example 4 TPG (8-stage LFSR) and confirm the LFSR
  // stages cycle with period 255.
  const TpgDesign d = sc_tpg(single({4, 4}, {0, 5}));
  const SynthesizedTpg hw = synthesize_tpg(d);
  gate::Simulator sim(hw.netlist);
  sim.reset();
  sim.set_state(hw.stage_q[static_cast<std::size_t>(d.lfsr_stages - 1)], 1u);

  auto lfsr_state = [&] {
    std::uint64_t v = 0;
    for (int k = 0; k < d.lfsr_stages; ++k)
      if (sim.value(hw.stage_q[static_cast<std::size_t>(k)]) & 1u)
        v |= 1ull << k;
    return v;
  };
  sim.eval();
  const std::uint64_t start = lfsr_state();
  int period = 0;
  for (int t = 1; t <= 300; ++t) {
    sim.clock();
    sim.eval();
    if (lfsr_state() == start) {
      period = t;
      break;
    }
  }
  EXPECT_EQ(period, 255);
}

}  // namespace
}  // namespace bibs::tpg
