// Tests for GF(2) polynomials, type-1 LFSRs, complete LFSRs, MISRs and the
// BILBO register model.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "lfsr/bilbo.hpp"
#include "lfsr/lfsr.hpp"
#include "lfsr/misr.hpp"
#include "lfsr/polynomial.hpp"

namespace bibs::lfsr {
namespace {

TEST(Gf2Poly, DegreeAndCoeffs) {
  const Gf2Poly p = Gf2Poly::from_exponents({12, 7, 4, 3, 0});
  EXPECT_EQ(p.degree(), 12);
  EXPECT_TRUE(p.coeff(12));
  EXPECT_TRUE(p.coeff(7));
  EXPECT_TRUE(p.coeff(0));
  EXPECT_FALSE(p.coeff(5));
  EXPECT_EQ(p.to_string(), "x^12 + x^7 + x^4 + x^3 + 1");
}

TEST(Gf2Poly, ZeroPoly) {
  Gf2Poly z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(z.to_string(), "0");
}

TEST(Gf2Poly, MulmodBasics) {
  // Mod x^3 + x + 1 (GF(8)): x * x^2 = x^3 = x + 1.
  const Gf2Poly p = Gf2Poly::from_exponents({3, 1, 0});
  const Gf2Poly r = mulmod(Gf2Poly(0b010), Gf2Poly(0b100), p);
  EXPECT_EQ(r.mask(), 0b011u);
}

TEST(Gf2Poly, PowmodMatchesRepeatedMul) {
  const Gf2Poly p = primitive_polynomial(8);
  Gf2Poly acc(1);
  const Gf2Poly x(2);
  for (int e = 0; e <= 40; ++e) {
    EXPECT_EQ(powmod(x, static_cast<std::uint64_t>(e), p).mask(), acc.mask())
        << "e=" << e;
    acc = mulmod(acc, x, p);
  }
}

TEST(Gf2Poly, PowmodOrderOfPrimitive) {
  const Gf2Poly p = primitive_polynomial(10);
  // x^(2^10-1) == 1 and x^k != 1 for proper divisors of 1023 = 3*11*31.
  EXPECT_EQ(powmod(Gf2Poly(2), 1023, p).mask(), 1u);
  for (std::uint64_t d : {341u, 93u, 33u})
    EXPECT_NE(powmod(Gf2Poly(2), d, p).mask(), 1u) << d;
}

TEST(PrimitiveTable, EveryEntryIsPrimitive) {
  // Brute force for small degrees...
  for (int deg = 1; deg <= 18; ++deg)
    EXPECT_TRUE(is_primitive_bruteforce(primitive_polynomial(deg)))
        << "degree " << deg;
}

TEST(PrimitiveTable, LargerDegreesByPeriodSampling) {
  // ...and order-divisor checks for the rest (x^(2^n-1) = 1, and != 1 at
  // the (2^n-1)/q points for each small prime factor we can test quickly).
  struct Case {
    int deg;
    std::vector<std::uint64_t> proper_divisors;
  };
  const std::vector<Case> cases = {
      {19, {524287 / 524287}},  // 2^19-1 is prime; only check full order
      {20, {1048575 / 3, 1048575 / 5, 1048575 / 11, 1048575 / 31,
            1048575 / 41}},
      {24, {16777215 / 3, 16777215 / 5, 16777215 / 7, 16777215 / 13,
            16777215 / 17, 16777215 / 241}},
      {31, {1}},  // 2^31-1 prime
      {32, {4294967295ull / 3, 4294967295ull / 5, 4294967295ull / 17,
            4294967295ull / 257, 4294967295ull / 65537}},
  };
  for (const Case& c : cases) {
    const Gf2Poly p = primitive_polynomial(c.deg);
    const std::uint64_t full = (1ull << c.deg) - 1;
    EXPECT_EQ(powmod(Gf2Poly(2), full, p).mask(), 1u) << c.deg;
    for (std::uint64_t d : c.proper_divisors) {
      if (d > 1 && d < full) {
        EXPECT_NE(powmod(Gf2Poly(2), d, p).mask(), 1u)
            << "deg " << c.deg << " divisor " << d;
      }
    }
  }
}

TEST(PrimitiveTable, RejectsUnsupportedDegrees) {
  EXPECT_THROW(primitive_polynomial(0), DesignError);
  EXPECT_THROW(primitive_polynomial(-3), DesignError);
  EXPECT_THROW(primitive_polynomial(max_supported_degree() + 1), DesignError);
}

class LfsrPeriod : public ::testing::TestWithParam<int> {};

TEST_P(LfsrPeriod, MaximalLength) {
  const int deg = GetParam();
  Type1Lfsr l(primitive_polynomial(deg));
  EXPECT_EQ(l.measure_period(1ull << (deg + 1)), (1ull << deg) - 1);
}

INSTANTIATE_TEST_SUITE_P(Degrees, LfsrPeriod,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(Type1Lfsr, ShiftProperty) {
  // Stage i at time t equals stage i-1 at time t-1 — the property every TPG
  // construction in the paper rests on.
  Type1Lfsr l(primitive_polynomial(8));
  for (int t = 0; t < 300; ++t) {
    const BitVec before = l.state();
    l.step();
    const BitVec after = l.state();
    for (int i = 2; i <= 8; ++i)
      EXPECT_EQ(after.get(static_cast<std::size_t>(i - 1)),
                before.get(static_cast<std::size_t>(i - 2)))
          << "t=" << t << " i=" << i;
  }
}

TEST(Type1Lfsr, NonzeroStatesOnly) {
  Type1Lfsr l(primitive_polynomial(6));
  for (int t = 0; t < 63; ++t) {
    EXPECT_TRUE(l.state().any());
    l.step();
  }
}

TEST(Type1Lfsr, EveryStateVisitedOnce) {
  Type1Lfsr l(primitive_polynomial(10));
  std::set<std::string> seen;
  for (int t = 0; t < 1023; ++t) {
    EXPECT_TRUE(seen.insert(l.state().to_string()).second);
    l.step();
  }
  EXPECT_EQ(seen.size(), 1023u);
}

TEST(Type1Lfsr, SetStateRejectsWrongWidth) {
  Type1Lfsr l(primitive_polynomial(8));
  EXPECT_THROW(l.set_state(BitVec(7)), InternalError);
}

class CompletePeriod : public ::testing::TestWithParam<int> {};

TEST_P(CompletePeriod, DeBruijnPeriodIsPowerOfTwo) {
  const int deg = GetParam();
  CompleteLfsr l(primitive_polynomial(deg));
  EXPECT_EQ(l.measure_period(1ull << (deg + 1)), 1ull << deg);
}

INSTANTIATE_TEST_SUITE_P(Degrees, CompletePeriod,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12));

TEST(CompleteLfsr, VisitsAllZeroState) {
  CompleteLfsr l(primitive_polynomial(5));
  bool saw_zero = false;
  for (int t = 0; t < 32; ++t) {
    if (l.state().none()) saw_zero = true;
    l.step();
  }
  EXPECT_TRUE(saw_zero);
}

TEST(ShiftRegister, DelaysByExactlyN) {
  ShiftRegister sr(4);
  std::vector<bool> in = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0};
  std::vector<bool> out;
  for (bool b : in) out.push_back(sr.step(b));
  // First 4 outputs are the initial zero state, then the input delayed by 4.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(out[static_cast<std::size_t>(i)]);
  for (std::size_t i = 4; i < in.size(); ++i)
    EXPECT_EQ(out[i], in[i - 4]) << i;
}

TEST(Misr, DistinctStreamsGiveDistinctSignaturesUsually) {
  Misr a(primitive_polynomial(8)), b(primitive_polynomial(8));
  bibs::Xoshiro256 rng(5);
  for (int t = 0; t < 100; ++t) {
    BitVec w(8);
    w.deposit(0, 8, rng.next() & 0xFF);
    a.step(w);
    BitVec w2 = w;
    if (t == 50) w2.set(3, !w2.get(3));  // single corrupted response
    b.step(w2);
  }
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, LinearityOverGf2) {
  // MISR compaction is linear: sig(x ^ y) == sig(x) ^ sig(y) from zero state.
  bibs::Xoshiro256 rng(11);
  std::vector<BitVec> xs, ys;
  for (int t = 0; t < 40; ++t) {
    BitVec x(8), y(8);
    x.deposit(0, 8, rng.next() & 0xFF);
    y.deposit(0, 8, rng.next() & 0xFF);
    xs.push_back(x);
    ys.push_back(y);
  }
  Misr mx(primitive_polynomial(8)), my(primitive_polynomial(8)),
      mxy(primitive_polynomial(8));
  for (int t = 0; t < 40; ++t) {
    mx.step(xs[static_cast<std::size_t>(t)]);
    my.step(ys[static_cast<std::size_t>(t)]);
    BitVec z(8);
    for (std::size_t i = 0; i < 8; ++i)
      z.set(i, xs[static_cast<std::size_t>(t)].get(i) ^
                   ys[static_cast<std::size_t>(t)].get(i));
    mxy.step(z);
  }
  EXPECT_EQ(mxy.signature(), mx.signature() ^ my.signature());
}

TEST(Misr, AliasingRateNearTwoToMinusN) {
  // Random error streams alias with probability ~2^-n; with n = 8 and 2000
  // trials expect roughly 8 aliases. Bound loosely.
  bibs::Xoshiro256 rng(23);
  int aliased = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    Misr good(primitive_polynomial(8)), bad(primitive_polynomial(8));
    for (int t = 0; t < 30; ++t) {
      BitVec w(8), e(8);
      w.deposit(0, 8, rng.next() & 0xFF);
      e.deposit(0, 8, rng.next() & 0xFF);  // random error every cycle
      good.step(w);
      BitVec we(8);
      for (std::size_t i = 0; i < 8; ++i) we.set(i, w.get(i) ^ e.get(i));
      bad.step(we);
    }
    if (good.signature() == bad.signature()) ++aliased;
  }
  EXPECT_LT(aliased, 30);  // ~2000/256 = 7.8 expected
}

TEST(Bilbo, NormalModeLoadsParallel) {
  Bilbo b(8);
  b.set_mode(BilboMode::kNormal);
  BitVec in(8);
  in.deposit(0, 8, 0xA5);
  b.step(in);
  EXPECT_EQ(b.state().extract(0, 8), 0xA5u);
}

TEST(Bilbo, ScanModeShifts) {
  Bilbo b(4);
  b.set_mode(BilboMode::kScan);
  BitVec dummy(4);
  b.step(dummy, true);
  b.step(dummy, false);
  b.step(dummy, true);
  b.step(dummy, true);
  // Shifted in: 1,0,1,1 -> stage1 = last shifted (1), stage4 = first (1).
  EXPECT_EQ(b.state().to_string(), "1101");
}

TEST(Bilbo, TpgModeMatchesType1Lfsr) {
  Bilbo b(8);
  BitVec seed(8);
  seed.set(7, true);
  b.set_state(seed);
  b.set_mode(BilboMode::kTpg);
  Type1Lfsr ref(primitive_polynomial(8));
  BitVec dummy(8);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(b.state(), ref.state()) << t;
    b.step(dummy);
    ref.step();
  }
}

TEST(Bilbo, SaModeMatchesMisr) {
  Bilbo b(8);
  b.set_mode(BilboMode::kSa);
  Misr ref(primitive_polynomial(8));
  bibs::Xoshiro256 rng(9);
  for (int t = 0; t < 50; ++t) {
    BitVec w(8);
    w.deposit(0, 8, rng.next() & 0xFF);
    b.step(w);
    ref.step(w);
  }
  EXPECT_EQ(b.state(), ref.state());
}

TEST(Bilbo, ScanChainRoundTrip) {
  // Load a value, then shift it out through scan and verify the bitstream.
  Bilbo b(6);
  b.set_mode(BilboMode::kNormal);
  BitVec in(6);
  in.deposit(0, 6, 0b110100);
  b.step(in);
  b.set_mode(BilboMode::kScan);
  BitVec dummy(6);
  std::uint64_t shifted = 0;
  for (int i = 0; i < 6; ++i) {
    const bool out = b.step(dummy, false);
    shifted |= static_cast<std::uint64_t>(out) << i;
  }
  // The last stage (MSB) leaves first, so the collected LSB-first stream is
  // the bit-reversal of the loaded value.
  EXPECT_EQ(shifted, 0b001011u);
}

TEST(Cbilbo, GeneratesAndCompactsConcurrently) {
  Cbilbo c(8);
  Type1Lfsr ref_tpg(primitive_polynomial(8));
  Misr ref_sa(primitive_polynomial(8));
  bibs::Xoshiro256 rng(15);
  for (int t = 0; t < 60; ++t) {
    BitVec resp(8);
    resp.deposit(0, 8, rng.next() & 0xFF);
    c.step(resp);
    ref_tpg.step();
    ref_sa.step(resp);
    EXPECT_EQ(c.tpg_state(), ref_tpg.state());
    EXPECT_EQ(c.sa_state(), ref_sa.state());
  }
}

TEST(AreaModel, CbilboCostsMoreThanBilbo) {
  for (int w : {4, 8, 16})
    EXPECT_GT(Cbilbo::area_overhead_gate_equivalents(w),
              Bilbo::area_overhead_gate_equivalents(w));
}

}  // namespace
}  // namespace bibs::lfsr
