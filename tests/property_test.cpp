// Cross-module property tests: randomized circuits swept through the whole
// flow, plus invariants that tie the subsystems together (Theorem 3 as a
// cost inequality, reconfigurable-TPG exhaustiveness, format agreement).

#include <gtest/gtest.h>

#include "circuits/figures.hpp"
#include "circuits/random.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"
#include "gate/bench_format.hpp"
#include "gate/synth.hpp"
#include "rtl/edif.hpp"
#include "sim/testplan.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/optimize.hpp"

namespace bibs {
namespace {

class RandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomProperty, Theorem3CostInequality) {
  // Corollary of Theorem 3: since every KA85 design is balanced BISTable
  // and design_bibs minimizes over all balanced-BISTable sets (on circuits
  // small enough for the exact search), cost(BIBS) <= cost(KA85).
  circuits::RandomCircuitOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) * 48611;
  opt.reg_probability = 1.0;
  opt.comb_blocks = 5 + GetParam() % 4;
  const rtl::Netlist n = circuits::make_random_circuit(opt);

  const auto bibs = core::design_bibs(n);
  core::DesignResult ka;
  try {
    ka = core::design_ka85(n);
  } catch (const DesignError&) {
    return;  // KA85 infeasible (unregistered multi-port input): vacuous
  }
  EXPECT_TRUE(core::check_bibs_testable(n, ka.bilbo).ok);
  int bibs_ffs = 0, ka_ffs = 0;
  for (auto e : bibs.bilbo) bibs_ffs += n.connection(e).reg->width;
  for (auto e : ka.bilbo) ka_ffs += n.connection(e).reg->width;
  EXPECT_LE(bibs_ffs, ka_ffs) << n.name();
}

TEST_P(RandomProperty, EdifAndLineFormatsAgree) {
  circuits::RandomCircuitOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) * 15485863;
  opt.reg_probability = 0.7;
  const rtl::Netlist n = circuits::make_random_circuit(opt);
  EXPECT_EQ(rtl::to_text(rtl::parse_edif(rtl::to_edif(n))),
            rtl::to_text(rtl::parse_netlist(rtl::to_text(n))));
}

TEST_P(RandomProperty, ElaboratedNetlistSurvivesBenchRoundTrip) {
  circuits::RandomCircuitOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) * 32452843;
  opt.reg_probability = 1.0;
  const rtl::Netlist n = circuits::make_random_circuit(opt);
  const auto elab = gate::elaborate(n);
  const gate::Netlist back = gate::parse_bench(gate::to_bench(elab.netlist));
  EXPECT_EQ(back.gate_count(), elab.netlist.gate_count());
  EXPECT_EQ(back.dffs().size(), elab.netlist.dffs().size());
}

TEST_P(RandomProperty, TestPlanSignaturesAreDeterministic) {
  circuits::RandomCircuitOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) * 2750159;
  opt.reg_probability = 1.0;
  opt.comb_blocks = 4;
  const rtl::Netlist n = circuits::make_random_circuit(opt);
  const auto elab = gate::elaborate(n);
  const auto design = core::design_bibs(n);
  const auto a = sim::make_test_plan(n, elab, design, 512);
  const auto b = sim::make_test_plan(n, elab, design, 512);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t i = 0; i < a.kernels.size(); ++i)
    EXPECT_EQ(a.kernels[i].golden_signatures, b.kernels[i].golden_signatures);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProperty, ::testing::Range(1, 9));

TEST(ReconfigurableTpg, EverySessionIsExhaustiveForItsCone) {
  tpg::GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}, {"R3", 3}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}},
             {"O2", {{1, 1}, {2, 0}}},
             {"O3", {{0, 0}, {2, 2}}}};
  const tpg::ReconfigurableTpg r = tpg::reconfigurable_tpg(s);
  ASSERT_EQ(r.sessions.size(), 3u);
  for (const tpg::TpgDesign& d : r.sessions) {
    const auto rep = tpg::check_exhaustive_sim(d);
    EXPECT_TRUE(rep.all_exhaustive);
  }
  // Total reconfigurable time beats the monolithic TPG when cone widths are
  // small relative to the union.
  const tpg::TpgDesign mono = tpg::mc_tpg(s);
  EXPECT_LT(r.total_test_time(), mono.test_time(2));
}

TEST(MinTestSignals, ColouringIsAlwaysConflictFree) {
  Xoshiro256 rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    tpg::GeneralizedStructure s;
    const int nregs = 3 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < nregs; ++i)
      s.registers.push_back(
          tpg::InputRegister{"R" + std::to_string(i), 2});
    const int ncones = 1 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < ncones; ++c) {
      tpg::Cone cone;
      cone.name = "O" + std::to_string(c);
      for (int i = 0; i < nregs; ++i)
        if (rng.next_below(2)) cone.deps.push_back(tpg::ConeDep{i, 0});
      if (cone.deps.empty()) cone.deps.push_back(tpg::ConeDep{0, 0});
      s.cones.push_back(cone);
    }
    const auto r = tpg::min_test_signals(s);
    EXPECT_GE(r.signals, 1);
    EXPECT_LE(r.signals, nregs);
    // No cone may depend on two registers sharing a signal.
    for (const tpg::Cone& c : s.cones)
      for (std::size_t a = 0; a < c.deps.size(); ++a)
        for (std::size_t b = a + 1; b < c.deps.size(); ++b)
          EXPECT_NE(r.signal_of_reg[static_cast<std::size_t>(c.deps[a].reg)],
                    r.signal_of_reg[static_cast<std::size_t>(c.deps[b].reg)])
              << "trial " << trial;
  }
}

TEST(Describe, Example4ShowsStageL0) {
  auto s = tpg::GeneralizedStructure::single_cone({{"R1", 4}, {"R2", 4}},
                                                  {0, 5});
  const std::string pic = tpg::sc_tpg(s).describe();
  EXPECT_NE(pic.find("[L0]"), std::string::npos);
  EXPECT_NE(pic.find("R2.1"), std::string::npos);
}

TEST(KernelStructure, ThrowsWhenOutputHasNoInputDependence) {
  // Two disconnected pipelines converted as one "kernel" cannot happen via
  // extract_kernels (components are connected), so drive the error path
  // directly with a hand-made kernel.
  const auto n = circuits::make_fig2();
  const auto res = core::design_bibs(n);
  core::Kernel bogus;
  bogus.blocks = {};  // no blocks: output register unreachable
  bogus.input_regs = {n.find_register("R1")};
  bogus.output_regs = {n.find_register("R1")};  // same edge both roles
  // path from R1's head to R1's tail does not exist in the kernel subgraph.
  EXPECT_THROW(core::kernel_structure(n, res.bilbo, bogus), Error);
}

TEST(Graph, MultipleCyclesEnumerated) {
  rtl::Netlist n("twocycles");
  const auto pi = n.add_input("x", 2);
  const auto a = n.add_comb("A", "xor", 2);
  const auto b = n.add_comb("B", "not", 2);
  const auto c = n.add_comb("C", "not", 2);
  const auto po = n.add_output("y", 2);
  n.connect_reg(pi, a, "R1", 2);
  n.connect_reg(a, b, "Rab", 2);
  n.connect_reg(b, a, "Rba", 2);  // cycle 1: A-B
  n.connect_reg(a, c, "Rac", 2);
  n.connect_reg(c, a, "Rca", 2);  // cycle 2: A-C
  n.connect_reg(a, po, "RO", 2);
  n.validate();
  EXPECT_EQ(graph::find_cycles(n).size(), 2u);
  EXPECT_FALSE(graph::is_acyclic(n));
}

TEST(Schedule, TestTimeValidatesVectorLength) {
  core::Schedule s;
  s.session_of = {0, 1};
  s.sessions = 2;
  EXPECT_THROW(core::schedule_test_time(s, {1}), InternalError);
  EXPECT_EQ(core::schedule_test_time(s, {5, 7}), 12);
}

TEST(Evaluate, KaDesignOnFig12aConvertsInternalRegisters) {
  const auto n = circuits::make_fig12a();
  const auto ka = core::design_ka85(n);
  // C3 has three input ports: Rb, Rc and R3 must all be BILBOs.
  EXPECT_TRUE(ka.bilbo.count(n.find_register("Rb")));
  EXPECT_TRUE(ka.bilbo.count(n.find_register("Rc")));
  EXPECT_TRUE(ka.bilbo.count(n.find_register("R3")));
  const auto bibs = core::design_bibs(n);
  EXPECT_LT(bibs.bilbo.size(), ka.bilbo.size());
}

}  // namespace
}  // namespace bibs
