// Tests for the lane-width-parameterized evaluation backends (gate/lanes):
// registry and CPUID-gated dispatch, the BIBS_LANES override, and
// width-invariance of the consumers (FaultSimulator curves, LaneEngine
// lanes, BIST session / CSTP reports, checkpoint width validation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "circuits/datapaths.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "fault/fault.hpp"
#include "fault/simulator.hpp"
#include "gate/lanes.hpp"
#include "gate/synth.hpp"
#include "obs/report.hpp"
#include "rt/checkpoint.hpp"
#include "sim/cstp.hpp"
#include "sim/lane_engine.hpp"
#include "sim/session.hpp"

namespace bibs {
namespace {

using fault::CoverageCurve;
using fault::Fault;
using fault::FaultList;
using fault::FaultSimulator;
using gate::Bus;
using gate::LaneBackend;
using gate::NetId;
using gate::Netlist;

/// Restores the process-wide backend latch (and BIBS_LANES) on scope exit so
/// tests that override dispatch cannot leak into later tests.
struct BackendGuard {
  ~BackendGuard() {
    unsetenv("BIBS_LANES");
    gate::set_lane_backend(nullptr);
  }
};

// ------------------------------------------------------------- registry --

TEST(LaneRegistry, ScalarFirstThenAscendingWidths) {
  const auto& all = gate::all_lane_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front(), &gate::scalar_lane_backend());
  EXPECT_STREQ(all.front()->name, "scalar64");
  EXPECT_EQ(all.front()->words, 1);
  EXPECT_TRUE(all.front()->supported());
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1]->words, all[i]->words) << all[i]->name;
  for (const LaneBackend* lb : all) {
    EXPECT_EQ(lb->lanes, lb->words * gate::kLanesPerWord);
    EXPECT_EQ(gate::find_lane_backend(lb->name), lb);
  }
  EXPECT_EQ(gate::find_lane_backend("sse9"), nullptr);
}

TEST(LaneRegistry, LookupByLanesRespectsCpuSupport) {
  EXPECT_EQ(gate::lane_backend_for_lanes(64), &gate::scalar_lane_backend());
  EXPECT_EQ(gate::lane_backend_for_lanes(65), nullptr);
  for (const LaneBackend* lb : gate::all_lane_backends()) {
    const LaneBackend* hit = gate::lane_backend_for_lanes(lb->lanes);
    if (lb->supported())
      EXPECT_EQ(hit, lb) << lb->name;
    else
      EXPECT_EQ(hit, nullptr) << lb->name;
  }
}

TEST(LaneRegistry, ActiveDefaultsToWidestSupported) {
  BackendGuard guard;
  unsetenv("BIBS_LANES");
  gate::set_lane_backend(nullptr);  // drop any earlier latch
  const LaneBackend& active = gate::active_lane_backend();
  EXPECT_TRUE(active.supported());
  for (const LaneBackend* lb : gate::all_lane_backends()) {
    if (lb->supported()) {
      EXPECT_LE(lb->words, active.words) << lb->name;
    }
  }
  // The resolution is surfaced in obs reports.
  EXPECT_EQ(obs::Report::collect().labels.at("lanes"),
            std::string(active.name));
}

TEST(LaneRegistry, EnvOverridePinsTheBackend) {
  BackendGuard guard;
  setenv("BIBS_LANES", "scalar64", 1);
  gate::set_lane_backend(nullptr);  // re-resolve from the environment
  EXPECT_EQ(&gate::active_lane_backend(), &gate::scalar_lane_backend());

  setenv("BIBS_LANES", "not-a-backend", 1);
  gate::set_lane_backend(nullptr);
  EXPECT_THROW(gate::active_lane_backend(), DesignError);
}

TEST(LaneRegistry, SetLaneBackendRejectsUnsupported) {
  BackendGuard guard;
  for (const LaneBackend* lb : gate::all_lane_backends()) {
    if (lb->supported()) {
      gate::set_lane_backend(lb);
      EXPECT_EQ(&gate::active_lane_backend(), lb);
    } else {
      EXPECT_THROW(gate::set_lane_backend(lb), DesignError) << lb->name;
    }
  }
}

// ------------------------------------------------------------- LaneWord --

TEST(LaneWord, OpsActPerWord) {
  using W4 = gate::LaneWord<4>;
  const W4 a = W4::broadcast(0xF0F0F0F0F0F0F0F0ull);
  W4 b = W4::zero();
  b.w[2] = ~0ull;
  EXPECT_TRUE((a & b).w[2] == a.w[2] && (a & b).w[0] == 0);
  EXPECT_TRUE((a | b).w[2] == ~0ull && (a | b).w[1] == a.w[1]);
  EXPECT_TRUE((a ^ a) == W4::zero());
  EXPECT_TRUE(~W4::zero() == W4::ones());
  EXPECT_TRUE(a.andnot(a) == W4::zero());
  EXPECT_FALSE(W4::zero().any());
  EXPECT_TRUE(b.any());
  std::uint64_t out[4];
  a.store(out);
  EXPECT_TRUE(W4::load(out) == a);
}

// -------------------------------------------------- fault-sim invariance --

/// Combinational circuits for the fault-curve width gates: ripple adders
/// exercise long propagation chains across every lane word.
std::vector<Netlist> comb_zoo() {
  std::vector<Netlist> out;
  for (int width : {4, 8}) {
    Netlist nl;
    Bus a, b;
    for (int i = 0; i < width; ++i)
      a.push_back(nl.add_input("a" + std::to_string(i)));
    for (int i = 0; i < width; ++i)
      b.push_back(nl.add_input("b" + std::to_string(i)));
    for (NetId o : gate::ripple_adder(nl, a, b, true)) nl.mark_output(o);
    out.push_back(std::move(nl));
  }
  return out;
}

/// detected_at curves must be bit-identical across widths (the header
/// contract of fault/simulator.hpp); patterns_run may only grow to the
/// wider block boundary.
TEST(LaneBackends, FaultCurvesAreWidthInvariant) {
  for (const Netlist& nl : comb_zoo()) {
    const FaultList faults = FaultList::collapsed(nl);

    FaultSimulator scalar_sim(nl, faults);
    scalar_sim.set_lane_backend(&gate::scalar_lane_backend());
    Xoshiro256 rng_s(42);
    const CoverageCurve base = scalar_sim.run_random(rng_s, 2048);

    for (const LaneBackend* lb : gate::all_lane_backends()) {
      if (!lb->supported() || lb == &gate::scalar_lane_backend()) continue;
      FaultSimulator sim(nl, faults);
      sim.set_lane_backend(lb);
      EXPECT_EQ(&sim.lane_backend(), lb);
      EXPECT_EQ(sim.block_lanes(), lb->lanes);
      Xoshiro256 rng(42);
      const CoverageCurve curve = sim.run_random(rng, 2048);
      EXPECT_EQ(curve.detected_at, base.detected_at) << lb->name;
      EXPECT_EQ(curve.patterns_run % lb->lanes, 0) << lb->name;
      EXPECT_GE(curve.patterns_run, base.patterns_run) << lb->name;
    }
  }
}

TEST(LaneBackends, InterpretedSimulatorRejectsWideBackends) {
  const Netlist nl = comb_zoo().front();
  FaultSimulator sim(nl, FaultList::collapsed(nl),
                     fault::EvalBackend::kInterpreted);
  // The retained golden path is scalar by definition.
  sim.set_lane_backend(&gate::scalar_lane_backend());
  for (const LaneBackend* lb : gate::all_lane_backends()) {
    if (lb->words > 1 && lb->supported()) {
      EXPECT_THROW(sim.set_lane_backend(lb), DesignError) << lb->name;
    }
  }
}

// ------------------------------------------------- LaneEngine invariance --

/// A wide engine's lanes must equal the lanes of scalar64 engines running
/// the same faults in 63-fault sub-batches under the same stimulus.
TEST(LaneBackends, WideLaneEngineMatchesScalarSubBatches) {
  const LaneBackend& active = gate::active_lane_backend();
  if (active.words == 1)
    GTEST_SKIP() << "host resolves to scalar64; no wide backend to compare";

  const Netlist nl = gate::elaborate(circuits::make_c3a2m()).netlist;
  const FaultList all = FaultList::full(nl);
  const std::size_t want = std::min<std::size_t>(
      all.size(), static_cast<std::size_t>(active.lanes) - 1);
  const std::vector<Fault> batch(all.faults().begin(),
                                 all.faults().begin() + want);
  ASSERT_GT(batch.size(), 63u);  // actually exercises lanes beyond word 0

  sim::LaneEngine wide(nl, batch, &active);
  std::vector<sim::LaneEngine> narrow;
  narrow.reserve((batch.size() + 62) / 63);
  for (std::size_t base = 0; base < batch.size(); base += 63)
    narrow.emplace_back(
        nl,
        std::span<const Fault>(batch).subspan(
            base, std::min<std::size_t>(63, batch.size() - base)),
        &gate::scalar_lane_backend());

  Xoshiro256 rng(7);
  const std::vector<NetId>& dffs = nl.dffs();
  ASSERT_FALSE(dffs.empty());
  for (int t = 0; t < 8; ++t) {
    for (NetId d : dffs) {
      // Lane-uniform drive: lane l and lane l % 64 must see the same bit
      // for the wide and narrow engines to be comparable lane by lane.
      const std::uint64_t bcast = (rng.next() & 1u) ? ~0ull : 0ull;
      wide.set_dff_state(d, bcast);
      for (sim::LaneEngine& e : narrow) e.set_dff_state(d, bcast);
    }
    wide.eval();
    for (sim::LaneEngine& e : narrow) e.eval();
    for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
      const std::uint64_t* vw = wide.value_words(id);
      // Lane 0 (fault-free) agrees with every sub-batch engine's lane 0.
      ASSERT_EQ(vw[0] & 1u, narrow[0].value(id) & 1u) << "net " << id;
      // Fault k rides lane k+1 of the wide engine and lane (k%63)+1 of
      // sub-batch engine k/63.
      for (std::size_t k = 0; k < batch.size(); ++k) {
        const std::size_t lane = k + 1;
        const std::uint64_t wide_bit = (vw[lane >> 6] >> (lane & 63)) & 1u;
        const std::uint64_t narrow_bit =
            (narrow[k / 63].value(id) >> (k % 63 + 1)) & 1u;
        ASSERT_EQ(wide_bit, narrow_bit)
            << "net " << id << " fault " << k << " cycle " << t;
      }
    }
    wide.clock();
    for (sim::LaneEngine& e : narrow) e.clock();
  }
}

// ------------------------------------------- session / CSTP invariance --

struct Rig {
  rtl::Netlist n;
  gate::Elaboration elab;
  core::DesignResult design;
  std::vector<core::Kernel> kernels;
};

Rig make_rig() {
  Rig s;
  s.n = circuits::make_c3a2m();
  s.elab = gate::elaborate(s.n);
  s.design = core::design_bibs(s.n);
  for (const core::Kernel& k : s.design.report.kernels)
    if (!k.trivial) s.kernels.push_back(k);
  return s;
}

TEST(LaneBackends, SessionReportIsWidthInvariant) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const FaultList faults = session.kernel_faults();
  ASSERT_GT(faults.size(), 63u);  // wide batches actually fold sub-batches

  session.set_batch_lanes(64);
  const sim::SessionReport narrow = session.run(faults, 256);
  ASSERT_GT(narrow.detected_by_signature, 0u);

  for (const LaneBackend* lb : gate::all_lane_backends()) {
    if (!lb->supported() || lb->words == 1) continue;
    session.set_batch_lanes(lb->lanes);
    EXPECT_EQ(session.run(faults, 256), narrow) << lb->name;
  }
  EXPECT_THROW(session.set_batch_lanes(63), DesignError);
}

TEST(LaneBackends, SessionCheckpointRejectsWidthMismatch) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  session.set_batch_lanes(64);
  const FaultList faults = session.kernel_faults();
  rt::SessionCheckpoint ck;
  const sim::SessionReport rep = session.run(faults, 64, {}, nullptr, &ck);
  ASSERT_EQ(rep.status, rt::RunStatus::kFinished);
  EXPECT_EQ(ck.batch_faults, 63u);
  // A checkpoint written at another width cannot seed this run's batches.
  ck.batch_faults = 511;
  EXPECT_THROW(session.run(faults, 64, {}, &ck), DesignError);
}

TEST(LaneBackends, CstpReportIsWidthInvariant) {
  const Rig s = make_rig();
  sim::CstpSession cstp(s.elab.netlist);
  const FaultList faults = FaultList::collapsed(s.elab.netlist);
  ASSERT_GT(faults.size(), 63u);

  cstp.set_batch_lanes(64);
  const sim::CstpReport narrow = cstp.run(faults, 128);

  for (const LaneBackend* lb : gate::all_lane_backends()) {
    if (!lb->supported() || lb->words == 1) continue;
    cstp.set_batch_lanes(lb->lanes);
    const sim::CstpReport wide = cstp.run(faults, 128);
    EXPECT_EQ(wide.detected_ideal, narrow.detected_ideal) << lb->name;
    EXPECT_EQ(wide.detected_by_signature, narrow.detected_by_signature)
        << lb->name;
  }
  EXPECT_THROW(cstp.set_batch_lanes(1), DesignError);
}

}  // namespace
}  // namespace bibs
