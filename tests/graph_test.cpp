// Tests for the circuit-graph analyses: cycles, balance, URFS, depth, and
// the maximal-delay metric, exercised on the paper's figure circuits.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "graph/analysis.hpp"

namespace bibs::graph {
namespace {

using circuits::make_c3a2m;
using circuits::make_c4a4m;
using circuits::make_c5a2m;
using circuits::make_fig1;
using circuits::make_fig2;
using circuits::make_fig3;
using circuits::make_fig4;
using circuits::make_fig9;

TEST(Acyclic, PipelinesAreAcyclic) {
  EXPECT_TRUE(is_acyclic(make_fig1()));
  EXPECT_TRUE(is_acyclic(make_fig2()));
  EXPECT_TRUE(is_acyclic(make_fig4()));
  EXPECT_TRUE(is_acyclic(make_c5a2m()));
  EXPECT_TRUE(is_acyclic(make_c3a2m()));
  EXPECT_TRUE(is_acyclic(make_c4a4m()));
}

TEST(Acyclic, Fig3HasTheFHCycle) {
  const auto n = make_fig3();
  EXPECT_FALSE(is_acyclic(n));
  const auto cycles = find_cycles(n);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 2u);  // F -> H and H -> F
  for (rtl::ConnId e : cycles[0]) EXPECT_TRUE(n.connection(e).is_register());
}

TEST(Acyclic, Fig9HasTheFeedbackCycle) {
  const auto n = make_fig9();
  EXPECT_FALSE(is_acyclic(n));
  EXPECT_EQ(find_cycles(n).size(), 1u);
}

TEST(Acyclic, RemovingCycleEdgeRestoresAcyclicity) {
  const auto n = make_fig9();
  EdgeSet removed{n.find_register("M2")};
  EXPECT_TRUE(is_acyclic(n, removed));
}

TEST(Balance, Fig1IsUnbalanced) {
  const auto n = make_fig1();
  const auto res = check_balanced(n);
  EXPECT_TRUE(res.acyclic);
  EXPECT_FALSE(res.balanced);
  ASSERT_TRUE(res.urfs.has_value());
  // The witness is the F -> C pair with path lengths 0 and 1.
  EXPECT_EQ(std::min(res.urfs->length_a, res.urfs->length_b), 0);
  EXPECT_EQ(std::max(res.urfs->length_a, res.urfs->length_b), 1);
}

TEST(Balance, Fig2IsBalanced) {
  EXPECT_TRUE(check_balanced(make_fig2()).balanced);
}

TEST(Balance, DatapathsAreBalanced) {
  EXPECT_TRUE(check_balanced(make_c5a2m()).balanced);
  EXPECT_TRUE(check_balanced(make_c3a2m()).balanced);
  EXPECT_TRUE(check_balanced(make_c4a4m()).balanced);
}

TEST(Balance, Fig4IsUnbalanced) {
  EXPECT_FALSE(check_balanced(make_fig4()).balanced);
}

TEST(Balance, PerConeDepthDifferencesAreStillBalanced) {
  // The Figure 17 situation: one register reaches two cones with different
  // sequential lengths. That is balanced (no URFS, acyclic) even though no
  // global level assignment exists.
  rtl::Netlist n("fig17ish");
  const auto pi1 = n.add_input("x1", 4);
  const auto pi2 = n.add_input("x2", 4);
  const auto c1 = n.add_comb("C1", "not", 4);
  const auto f = n.add_fanout("F", 4);
  const auto c3 = n.add_comb("C3", "xor", 4);  // cone O1: sees R1 at d=1
  const auto c4 = n.add_comb("C4", "xor", 4);  // cone O2: sees R1 at d=0
  const auto po1 = n.add_output("O1", 4);
  const auto po2 = n.add_output("O2", 4);
  n.connect_reg(pi1, c1, "R1", 4);
  n.connect_wire(c1, f, 4);
  n.connect_reg(f, c3, "Ra", 4);  // delayed branch into O1's cone
  n.connect_wire(f, c4, 4);       // direct branch into O2's cone
  const auto f2 = n.add_fanout("F2", 4);
  n.connect_reg(pi2, f2, "R2", 4);
  n.connect_wire(f2, c3, 4);
  n.connect_wire(f2, c4, 4);
  n.connect_reg(c3, po1, "RO1", 4);
  n.connect_reg(c4, po2, "RO2", 4);
  n.validate();
  const auto res = check_balanced(n);
  EXPECT_TRUE(res.balanced) << (res.urfs ? "URFS found" : "cycle found");
}

TEST(Urfs, Fig3Witness) {
  const auto n = make_fig3();
  // Restrict to the acyclic part: drop the F/H cycle edges first.
  EdgeSet removed{n.find_register("R5"), n.find_register("R6")};
  const auto w = find_urfs(n, removed);
  ASSERT_TRUE(w.has_value());
  // FO1 reaches H via A-D (R4: one register) and via C-E-G (R8, R9: two).
  EXPECT_EQ(std::abs(w->length_a - w->length_b), 1);
}

TEST(Urfs, NoneInBalancedDatapath) {
  EXPECT_TRUE(find_all_urfs(make_c5a2m()).empty());
  EXPECT_TRUE(find_all_urfs(make_c3a2m()).empty());
  EXPECT_TRUE(find_all_urfs(make_c4a4m()).empty());
}

TEST(PathLength, UniqueLengths) {
  const auto n = make_c3a2m();
  const auto a1 = n.find_block("A1");
  const auto a3 = n.find_block("A3");
  const auto got = path_sequential_length(n, a1, a3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 4);  // RA1, RM1, RA2, RM2
}

TEST(PathLength, UnreachableIsNullopt) {
  const auto n = make_c5a2m();
  const auto a5 = n.find_block("A5");
  const auto a1 = n.find_block("A1");
  EXPECT_FALSE(path_sequential_length(n, a5, a1).has_value());
}

TEST(PathLength, ThrowsOnUrfsPair) {
  const auto n = make_fig1();
  const auto f = n.find_block("F");
  const auto c = n.find_block("C");
  EXPECT_THROW((void)path_sequential_length(n, f, c), DesignError);
}

TEST(Depth, SequentialDepths) {
  EXPECT_EQ(sequential_depth(make_fig2()), 3);
  EXPECT_EQ(sequential_depth(make_c5a2m()), 4);   // PI reg, RA, RM, o
  EXPECT_EQ(sequential_depth(make_c3a2m()), 6);
  EXPECT_EQ(sequential_depth(make_c4a4m()), 4);
}

TEST(Depth, ThrowsOnCycles) {
  EXPECT_THROW(sequential_depth(make_fig3()), DesignError);
}

TEST(MaxDelay, CountsOnlyMarkedEdges) {
  const auto n = make_c5a2m();
  EdgeSet none;
  EXPECT_EQ(max_marked_edges_on_path(n, none), 0);
  // Boundary registers only: every PI-PO path crosses exactly 2.
  EdgeSet boundary;
  for (const auto& c : n.connections()) {
    if (!c.is_register()) continue;
    if (n.block(c.from).kind == rtl::BlockKind::kInput ||
        n.block(c.to).kind == rtl::BlockKind::kOutput)
      boundary.insert(c.id);
  }
  EXPECT_EQ(max_marked_edges_on_path(n, boundary), 2);
  // All registers marked: equals the sequential depth.
  EdgeSet all;
  for (rtl::ConnId e : n.register_edges()) all.insert(e);
  EXPECT_EQ(max_marked_edges_on_path(n, all), 4);
}

TEST(MaxDelay, WorksOnCyclicGraphs) {
  const auto n = make_fig9();
  EdgeSet all;
  for (rtl::ConnId e : n.register_edges()) all.insert(e);
  // Longest simple PI-PO path: P4, M4, M1, M2?, ... bounded by simple paths.
  EXPECT_GE(max_marked_edges_on_path(n, all), 3);
}

TEST(Topo, OrderRespectsEdges) {
  const auto n = make_c4a4m();
  const auto order = topological_order(n);
  std::vector<int> pos(n.block_count());
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (const auto& c : n.connections())
    EXPECT_LT(pos[static_cast<std::size_t>(c.from)],
              pos[static_cast<std::size_t>(c.to)]);
}

TEST(Topo, ThrowsOnCycle) {
  EXPECT_THROW(topological_order(make_fig3()), DesignError);
}

}  // namespace
}  // namespace bibs::graph
