// Tests for the stuck-at fault model, collapsing, and the PPSFP fault
// simulator — including cross-validation of the event-driven engine against
// naive full resimulation.

#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "common/prng.hpp"
#include "fault/fault.hpp"
#include "fault/simulator.hpp"
#include "gate/sim.hpp"
#include "gate/synth.hpp"

namespace bibs::fault {
namespace {

using gate::Bus;
using gate::GateType;
using gate::NetId;
using gate::Netlist;

/// y = (a & b) | ~c — a tiny circuit whose fault behaviour is easy to
/// reason about by hand.
Netlist tiny() {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId ab = nl.add_gate(GateType::kAnd, {a, b}, "ab");
  const NetId nc = nl.add_gate(GateType::kNot, {c}, "nc");
  const NetId y = nl.add_gate(GateType::kOr, {ab, nc}, "y");
  nl.mark_output(y, "y");
  return nl;
}

Netlist adder4() {
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  Bus s = gate::ripple_adder(nl, a, b, true);
  for (NetId o : s) nl.mark_output(o);
  return nl;
}

TEST(FaultList, FullListSkipsSingleConsumerPins) {
  const Netlist nl = tiny();
  const FaultList fl = FaultList::full(nl);
  // Nets: a,b,c (fanout 1 each), ab, nc, y. No net has fanout > 1, so only
  // stem faults exist: 6 sites x 2 polarities.
  EXPECT_EQ(fl.size(), 12u);
}

TEST(FaultList, BranchFaultsOnFanoutStems) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_gate(GateType::kXor, {a, b});
  const NetId y = nl.add_gate(GateType::kAnd, {a, x});  // a fans out twice
  nl.mark_output(y);
  const FaultList fl = FaultList::full(nl);
  int branch = 0;
  for (const Fault& f : fl.faults())
    if (f.pin >= 0) ++branch;
  EXPECT_EQ(branch, 4);  // two pins read the stem 'a', 2 polarities each
}

TEST(FaultList, CollapsedIsSmallerAndConsistent) {
  const Netlist nl = adder4();
  const FaultList full = FaultList::full(nl);
  const FaultList eq = FaultList::collapsed(nl, /*dominance=*/false);
  const FaultList col = FaultList::collapsed(nl);
  // Dominance strictly tightens equivalence-only collapsing on this circuit
  // (the adder's fanout-free AND/OR stems), and both record the size of the
  // uncollapsed universe they were derived from.
  EXPECT_LT(eq.size(), full.size());
  EXPECT_LT(col.size(), eq.size());
  EXPECT_GT(col.size(), full.size() / 4);
  EXPECT_EQ(full.full_size(), full.size());
  EXPECT_EQ(eq.full_size(), full.size());
  EXPECT_EQ(col.full_size(), full.size());
}

TEST(FaultList, DominanceDropsOnlyDominatedStems) {
  // Every fault dropped by dominance must be a stem fault of the dominated
  // polarity on a fanout-free AND/NAND/OR/NOR output — nothing else may go.
  const Netlist nl = adder4();
  const FaultList eq = FaultList::collapsed(nl, /*dominance=*/false);
  const FaultList col = FaultList::collapsed(nl);
  std::vector<Fault> dropped;
  for (const Fault& f : eq.faults())
    if (std::find(col.faults().begin(), col.faults().end(), f) ==
        col.faults().end())
      dropped.push_back(f);
  EXPECT_EQ(eq.size() - col.size(), dropped.size());
  EXPECT_FALSE(dropped.empty());
  for (const Fault& f : dropped) {
    EXPECT_EQ(f.pin, -1) << to_string(nl, f);
    const GateType t = nl.gate(f.net).type;
    const bool rule = (t == GateType::kAnd && f.stuck) ||
                      (t == GateType::kNand && !f.stuck) ||
                      (t == GateType::kOr && !f.stuck) ||
                      (t == GateType::kNor && f.stuck);
    EXPECT_TRUE(rule) << to_string(nl, f);
  }
}

TEST(FaultList, CollapsedCoverageEqualsFullCoverage) {
  // Exhaustive detection fractions must agree: equivalence collapsing keeps
  // one representative per class, and a dominance-dropped fault is detected
  // by every test for the faults that dominate it, so an exhaustive sweep
  // that detects the full list detects the collapsed one too.
  const Netlist nl = adder4();
  FaultSimulator fs_full(nl, FaultList::full(nl));
  FaultSimulator fs_col(nl, FaultList::collapsed(nl));
  const auto full = fs_full.run_exhaustive();
  const auto col = fs_col.run_exhaustive();
  EXPECT_DOUBLE_EQ(full.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(col.coverage(), 1.0);
}

TEST(FaultList, DominanceChainsThroughDeepFanoutFreeStems) {
  // g1 = AND(x, y); g2 = AND(g1, z); g3 = AND(g2, w) — a fanout-free AND
  // chain three gates deep. Dominance must telescope: every interior stem
  // fault is either absorbed into its consumer (s-a-0, controlling value)
  // or dominated by that consumer's pin faults (s-a-1), so the collapsed
  // list bottoms out at the input stems plus the primary output's s-a-0.
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId y = nl.add_input("y");
  const NetId z = nl.add_input("z");
  const NetId w = nl.add_input("w");
  const NetId g1 = nl.add_gate(GateType::kAnd, {x, y}, "g1");
  const NetId g2 = nl.add_gate(GateType::kAnd, {g1, z}, "g2");
  const NetId g3 = nl.add_gate(GateType::kAnd, {g2, w}, "g3");
  nl.mark_output(g3, "out");
  nl.validate();

  const FaultList full = FaultList::full(nl);
  EXPECT_EQ(full.size(), 14u);  // 7 fanout-free stems, both polarities

  const FaultList col = FaultList::collapsed(nl);
  // x/y/z/w s-a-1 (non-controlling, kept at the PI stems) + g3 s-a-0.
  ASSERT_EQ(col.size(), 5u);
  for (NetId pi : {x, y, z, w})
    EXPECT_NE(std::find(col.faults().begin(), col.faults().end(),
                        Fault{pi, -1, true}),
              col.faults().end());
  EXPECT_NE(std::find(col.faults().begin(), col.faults().end(),
                      Fault{g3, -1, false}),
            col.faults().end());
  // No interior stem fault survives on g1/g2.
  for (const Fault& f : col.faults()) {
    EXPECT_NE(f.net, g1) << to_string(nl, f);
    EXPECT_NE(f.net, g2) << to_string(nl, f);
  }

  // The theorem behind the drop: exhaustive detection stays complete.
  FaultSimulator fs_full(nl, full);
  FaultSimulator fs_col(nl, col);
  EXPECT_DOUBLE_EQ(fs_full.run_exhaustive().coverage(), 1.0);
  EXPECT_DOUBLE_EQ(fs_col.run_exhaustive().coverage(), 1.0);
}

TEST(FaultList, CollapsingMapsThroughBufAndNotChains) {
  // x -> NOT n1 -> AND g(n1, y) -> BUF b -> out. BUF/NOT absorb both
  // polarities (equivalence, not dominance), so faults map through the
  // inverter chain: x's stems collapse into n1, g's stems into b.
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId y = nl.add_input("y");
  const NetId n1 = nl.add_gate(GateType::kNot, {x}, "n1");
  const NetId g = nl.add_gate(GateType::kAnd, {n1, y}, "g");
  const NetId b = nl.add_gate(GateType::kBuf, {g}, "b");
  nl.mark_output(b, "out");
  nl.validate();

  const FaultList col = FaultList::collapsed(nl);
  // n1 s-a-1 (AND pin non-controlling), y s-a-1, b s-a-0, b s-a-1 (BUF is
  // not a dominance site, so the buffered output keeps both polarities).
  ASSERT_EQ(col.size(), 4u);
  const std::vector<Fault> expect = {
      {n1, -1, true}, {y, -1, true}, {b, -1, false}, {b, -1, true}};
  for (const Fault& f : expect)
    EXPECT_NE(std::find(col.faults().begin(), col.faults().end(), f),
              col.faults().end())
        << to_string(nl, f);
  // x's stem faults were absorbed through the NOT, both polarities.
  for (const Fault& f : col.faults()) EXPECT_NE(f.net, x) << to_string(nl, f);

  FaultSimulator fs(nl, col);
  EXPECT_DOUBLE_EQ(fs.run_exhaustive().coverage(), 1.0);
}

TEST(FaultList, FullSizeIsConsistentOnEveryZooCircuit) {
  // full_size() must always report the uncollapsed universe, whatever the
  // collapsing mode, on every elaborated zoo circuit.
  std::vector<gate::Netlist> nls;
  nls.push_back(gate::elaborate(circuits::make_fig2(2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_fig3(2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_fig4(2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_fig12a(2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_c5a2m(2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_c3a2m(2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_c4a4m(2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_fir_datapath(3, 2)).netlist);
  nls.push_back(gate::elaborate(circuits::make_fir_datapath(6, 2)).netlist);
  for (std::size_t i = 0; i < nls.size(); ++i) {
    SCOPED_TRACE(i);
    const FaultList full = FaultList::full(nls[i]);
    const FaultList eq = FaultList::collapsed(nls[i], /*dominance=*/false);
    const FaultList col = FaultList::collapsed(nls[i]);
    EXPECT_EQ(full.full_size(), full.size());
    EXPECT_EQ(eq.full_size(), full.size());
    EXPECT_EQ(col.full_size(), full.size());
    // Collapsing only ever shrinks, and dominance shrinks further (or ties).
    EXPECT_LT(col.size(), full.size());
    EXPECT_LE(col.size(), eq.size());
    EXPECT_LE(eq.size(), full.size());
    EXPECT_GT(col.size(), 0u);
  }
}

TEST(Simulator, HandDetectsKnownFault) {
  const Netlist nl = tiny();
  // y s-a-1 is detected by any pattern with y = 0: a&b = 0 and c = 1.
  FaultSimulator sim(nl, FaultList::full(nl));
  const Fault y_sa1{5, -1, true};
  EXPECT_TRUE(sim.detects_naive(y_sa1, {false, false, true}));
  EXPECT_FALSE(sim.detects_naive(y_sa1, {true, true, true}));
  // a s-a-0: need a=b=1 (propagate through AND) and c=1 (OR side quiet).
  const Fault a_sa0{0, -1, false};
  EXPECT_TRUE(sim.detects_naive(a_sa0, {true, true, true}));
  EXPECT_FALSE(sim.detects_naive(a_sa0, {true, true, false}));
  EXPECT_FALSE(sim.detects_naive(a_sa0, {true, false, true}));
}

TEST(Simulator, EventDrivenMatchesNaiveOnRandomCircuits) {
  // Property test: random 2-level-to-N-level circuits, random patterns; the
  // PPSFP engine and naive resimulation must agree fault by fault.
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 12; ++trial) {
    Netlist nl;
    std::vector<NetId> pool;
    const int nin = 4 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < nin; ++i) pool.push_back(nl.add_input());
    const int ngates = 12 + static_cast<int>(rng.next_below(20));
    for (int g = 0; g < ngates; ++g) {
      const GateType types[] = {GateType::kAnd, GateType::kOr, GateType::kXor,
                                GateType::kNand, GateType::kNor,
                                GateType::kNot, GateType::kXnor};
      const GateType t = types[rng.next_below(7)];
      if (t == GateType::kNot) {
        pool.push_back(nl.add_gate(t, {pool[rng.next_below(pool.size())]}));
      } else {
        const NetId x = pool[rng.next_below(pool.size())];
        const NetId y = pool[rng.next_below(pool.size())];
        pool.push_back(nl.add_gate(t, {x, y}));
      }
    }
    // Observe the last few gates.
    for (int k = 0; k < 3; ++k)
      nl.mark_output(pool[pool.size() - 1 - static_cast<std::size_t>(k)]);

    const FaultList fl = FaultList::full(nl);
    FaultSimulator sim(nl, fl);

    // One 64-pattern block, fixed patterns.
    std::vector<std::uint64_t> words(static_cast<std::size_t>(nin));
    for (auto& w : words) w = rng.next();
    int calls = 0;
    auto curve = sim.run(
        [&](std::uint64_t* out) {
          if (calls++) return 0;
          for (std::size_t i = 0; i < words.size(); ++i) out[i] = words[i];
          return 64;
        },
        64);

    for (std::size_t fi = 0; fi < fl.size(); ++fi) {
      // Check agreement on pattern 0 and on the recorded detection pattern.
      for (int lane : {0, 17, 63}) {
        std::vector<bool> pattern;
        for (int i = 0; i < nin; ++i)
          pattern.push_back((words[static_cast<std::size_t>(i)] >> lane) & 1);
        const bool naive = sim.detects_naive(fl[fi], pattern);
        const bool fast = curve.detected_at[fi] != CoverageCurve::kUndetected &&
                          curve.detected_at[fi] <= lane;
        // fast detection at pattern <= lane implies some pattern detected it;
        // exact per-lane agreement needs the first-detection semantics:
        if (curve.detected_at[fi] == lane) {
          EXPECT_TRUE(naive) << "fault " << fi << " lane " << lane;
        }
        if (naive) {
          EXPECT_TRUE(curve.detected_at[fi] != CoverageCurve::kUndetected &&
                      curve.detected_at[fi] <= lane)
              << "fault " << fi << " lane " << lane;
        }
        (void)fast;
      }
    }
  }
}

TEST(Simulator, ExhaustiveAdderCoverageIsFull) {
  const Netlist nl = adder4();
  FaultSimulator sim(nl, FaultList::collapsed(nl));
  const auto curve = sim.run_exhaustive();
  EXPECT_DOUBLE_EQ(curve.coverage(), 1.0);
  // The run may stop as soon as the last fault drops.
  EXPECT_LE(curve.patterns_run, 256);
  EXPECT_GT(curve.patterns_run, 0);
}

TEST(Simulator, RandomReachesFullCoverageOnAdder) {
  const Netlist nl = adder4();
  FaultSimulator sim(nl, FaultList::collapsed(nl));
  Xoshiro256 rng(7);
  const auto curve = sim.run_random(rng, 100000, 20000);
  EXPECT_DOUBLE_EQ(curve.coverage(), 1.0);
  EXPECT_LT(curve.patterns_for_fraction(1.0), 2000);
}

TEST(Simulator, TruncatedMultiplierHasFewRedundantFaults) {
  // Even with truncation done at synthesis time (no structurally dead
  // logic), a truncated multiplier contains a handful of *functionally*
  // redundant stuck-at faults — the reason the paper reports coverage of
  // "detectable" faults. Exhaustive simulation is the ground truth here.
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input());
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input());
  Bus p = gate::array_multiplier(nl, a, b, 4);
  for (NetId o : p) nl.mark_output(o);
  FaultSimulator sim(nl, FaultList::collapsed(nl));
  const auto curve = sim.run_exhaustive();
  EXPECT_GE(curve.coverage(), 0.97);
  EXPECT_LE(curve.coverage(), 1.0);
  // A full (untruncated) multiplier is almost redundancy-free; only the top
  // column retains a fault masked by the never-asserted final carry
  // (max product 225 < 256).
  Netlist nl2;
  Bus a2, b2;
  for (int i = 0; i < 4; ++i) a2.push_back(nl2.add_input());
  for (int i = 0; i < 4; ++i) b2.push_back(nl2.add_input());
  Bus p2 = gate::array_multiplier(nl2, a2, b2, 8);
  for (NetId o : p2) nl2.mark_output(o);
  FaultSimulator sim2(nl2, FaultList::collapsed(nl2));
  const auto full_curve = sim2.run_exhaustive();
  EXPECT_GE(full_curve.coverage(), 0.99);
  EXPECT_LE(full_curve.total_faults() - full_curve.detected_count(), 2u);
}

TEST(CoverageCurve, PatternsForFraction) {
  CoverageCurve c;
  c.detected_at = {0, 5, 3, CoverageCurve::kUndetected, 100};
  c.patterns_run = 200;
  EXPECT_EQ(c.total_faults(), 5u);
  EXPECT_EQ(c.detected_count(), 4u);
  EXPECT_DOUBLE_EQ(c.coverage(), 0.8);
  EXPECT_EQ(c.patterns_for_fraction(1.0), 101);  // all 4 detected by 101
  EXPECT_EQ(c.patterns_for_fraction(0.75), 6);   // 3 of 4 by pattern 6
  EXPECT_EQ(c.patterns_for_fraction(0.5), 4);
  EXPECT_DOUBLE_EQ(c.coverage_after(6), 0.6);
  EXPECT_DOUBLE_EQ(c.coverage_after(101), 0.8);
}

TEST(CoverageCurve, EmptyCurve) {
  CoverageCurve c;
  EXPECT_DOUBLE_EQ(c.coverage(), 1.0);
  EXPECT_EQ(c.detected_count(), 0u);
}

TEST(CoverageCurve, PatternsForFractionEdges) {
  // fraction == 1.0 exactly: the pattern count at which the last
  // ever-detected fault fell, never one past it (float round-off guard).
  CoverageCurve c;
  c.detected_at = {7, CoverageCurve::kUndetected, 0};
  c.patterns_run = 64;
  EXPECT_EQ(c.patterns_for_fraction(1.0), 8);
  // A fraction tiny enough that ceil() would select zero faults still
  // selects the first one.
  EXPECT_EQ(c.patterns_for_fraction(1e-12), 1);

  // Zero detected faults: nothing to cover, 0 for every valid fraction.
  CoverageCurve none;
  none.detected_at = {CoverageCurve::kUndetected, CoverageCurve::kUndetected};
  none.patterns_run = 64;
  EXPECT_EQ(none.patterns_for_fraction(0.5), 0);
  EXPECT_EQ(none.patterns_for_fraction(1.0), 0);

  // The documented domain is (0, 1]; outside it is an invariant violation.
  EXPECT_THROW(c.patterns_for_fraction(0.0), bibs::InternalError);
  EXPECT_THROW(c.patterns_for_fraction(1.5), bibs::InternalError);
}

TEST(CoverageCurve, PatternsForFractionTieHandling) {
  // Many faults falling at the SAME pattern index must not push the answer
  // past that index: the order statistic lands inside the tie run.
  CoverageCurve c;
  c.detected_at.assign(200, 9);  // 200-way tie at pattern 9
  c.detected_at.push_back(50);   // one straggler
  c.patterns_run = 64;
  // ceil(0.995 * 201) = 200 -> the 200th detection is still inside the tie.
  EXPECT_EQ(c.patterns_for_fraction(0.995), 10);
  // Exactly 1.0 selects the straggler.
  EXPECT_EQ(c.patterns_for_fraction(1.0), 51);
  // Any mid fraction resolves to the tie value too.
  EXPECT_EQ(c.patterns_for_fraction(0.5), 10);

  // An all-tie curve answers the tie value for every fraction.
  CoverageCurve tie;
  tie.detected_at = {4, 4, 4, 4};
  tie.patterns_run = 64;
  EXPECT_EQ(tie.patterns_for_fraction(1e-9), 5);
  EXPECT_EQ(tie.patterns_for_fraction(0.995), 5);
  EXPECT_EQ(tie.patterns_for_fraction(1.0), 5);

  // Distinct indices 0..999: 0.995 selects the 995th (index 994), exercising
  // the ceil() boundary right below 1.0 on a large curve.
  CoverageCurve big;
  for (int i = 999; i >= 0; --i) big.detected_at.push_back(i);
  big.patterns_run = 1000;
  EXPECT_EQ(big.patterns_for_fraction(0.995), 995);
  EXPECT_EQ(big.patterns_for_fraction(1.0), 1000);
}

TEST(Simulator, StallLimitStopsEarly) {
  const Netlist nl = adder4();
  // s-a faults on the carry-out are hard for constant-0 patterns; an all-0
  // generator never detects anything and must hit the stall limit.
  FaultSimulator sim(nl, FaultList::collapsed(nl));
  auto curve = sim.run(
      [&](std::uint64_t* out) {
        for (int i = 0; i < 8; ++i) out[i] = 0;
        return 64;
      },
      1 << 20, 256);
  EXPECT_LT(curve.patterns_run, 1 << 20);
}

TEST(Simulator, WeightedPatternsReachFullCoverage) {
  const Netlist nl = adder4();
  FaultSimulator sim(nl, FaultList::collapsed(nl));
  Xoshiro256 rng(9);
  const auto curve = sim.run_weighted(rng, 0.8, 100000, 20000);
  EXPECT_DOUBLE_EQ(curve.coverage(), 1.0);
}

TEST(Simulator, WeightedBiasIsActuallyApplied) {
  // With p ~ 1, patterns are nearly all-ones: an AND-chain fault that wants
  // all-ones operands drops almost immediately.
  Netlist nl;
  std::vector<NetId> in;
  for (int i = 0; i < 12; ++i) in.push_back(nl.add_input());
  NetId acc = in[0];
  for (int i = 1; i < 12; ++i)
    acc = nl.add_gate(GateType::kAnd, {acc, in[static_cast<std::size_t>(i)]});
  nl.mark_output(acc, "y");
  const FaultList fl =
      FaultList::from_faults({Fault{acc, -1, false}});  // y s-a-0: needs all 1s
  {
    FaultSimulator sim(nl, fl);
    Xoshiro256 rng(4);
    const auto biased = sim.run_weighted(rng, 0.95, 4096, 1 << 20);
    EXPECT_EQ(biased.detected_count(), 1u);
    EXPECT_LT(biased.patterns_for_fraction(1.0), 64);
  }
  {
    // Uniform random needs ~2^12 patterns on average.
    FaultSimulator sim(nl, fl);
    Xoshiro256 rng(4);
    const auto uniform = sim.run_random(rng, 256, 1 << 20);
    EXPECT_EQ(uniform.detected_count(), 0u);
  }
}

TEST(Simulator, WeightedRejectsDegenerateProbabilities) {
  const Netlist nl = adder4();
  FaultSimulator sim(nl, FaultList::collapsed(nl));
  Xoshiro256 rng(1);
  EXPECT_THROW((void)sim.run_weighted(rng, 0.0, 10, 10), InternalError);
  EXPECT_THROW((void)sim.run_weighted(rng, 1.0, 10, 10), InternalError);
}

TEST(Simulator, RejectsSequentialNetlists) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId d = nl.add_dff(a);
  nl.mark_output(d);
  EXPECT_THROW(FaultSimulator(nl, FaultList::full(nl)), InternalError);
}

TEST(FaultToString, Readable) {
  const Netlist nl = tiny();
  EXPECT_EQ(to_string(nl, Fault{3, -1, false}), "ab s-a-0");
  EXPECT_EQ(to_string(nl, Fault{5, 1, true}), "y.in1 s-a-1");
}

}  // namespace
}  // namespace bibs::fault
