// Tests for bibs::rt — cooperative cancellation, deadlines, work budgets,
// checkpoint/resume bit-exactness across the fault-sim / session stack —
// plus the hardened parser front-ends (positioned ParseErrors, nesting and
// resolve-depth limits, malformed-input corpus under tests/data/bad/).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <regex>
#include <sstream>
#include <thread>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "core/explore.hpp"
#include "fault/simulator.hpp"
#include "gate/bench_format.hpp"
#include "obs/json.hpp"
#include "rt/checkpoint.hpp"
#include "rt/control.hpp"
#include "rtl/edif.hpp"
#include "rtl/sexpr.hpp"
#include "sim/cstp.hpp"
#include "sim/lane_engine.hpp"
#include "sim/session.hpp"
#include "tpg/design.hpp"
#include "tpg/synthesize.hpp"

namespace bibs {
namespace {

constexpr std::int64_t kNoStall = std::numeric_limits<std::int64_t>::max();

// ---------------------------------------------------------------- control --

TEST(CancelToken, CopiesShareStateAndCancellationIsIdempotent) {
  rt::CancelToken a;
  rt::CancelToken b = a;
  EXPECT_FALSE(a.cancelled());
  b.request_cancel();
  b.request_cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(CancelToken, ChildObservesAncestorButNotViceVersa) {
  rt::CancelToken root;
  rt::CancelToken leaf = root.child().child();
  EXPECT_FALSE(leaf.cancelled());
  root.request_cancel();
  EXPECT_TRUE(leaf.cancelled());

  rt::CancelToken parent2;
  rt::CancelToken child2 = parent2.child();
  child2.request_cancel();
  EXPECT_TRUE(child2.cancelled());
  EXPECT_FALSE(parent2.cancelled());
}

TEST(CancelToken, CancellationCrossesThreads) {
  rt::CancelToken t;
  std::thread other([copy = t]() mutable { copy.request_cancel(); });
  other.join();
  EXPECT_TRUE(t.cancelled());
}

TEST(Deadline, DefaultNeverExpires) {
  const rt::Deadline d;
  EXPECT_TRUE(d.unbounded());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::nanoseconds::max());
}

TEST(Deadline, PastDeadlineIsExpired) {
  const rt::Deadline d =
      rt::Deadline::at(rt::Deadline::Clock::now() - std::chrono::seconds(1));
  EXPECT_FALSE(d.unbounded());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::nanoseconds(0));
}

TEST(Deadline, FutureDeadlineHasRemainingTime) {
  const rt::Deadline d = rt::Deadline::in(std::chrono::hours(1));
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), std::chrono::minutes(59));
}

TEST(RunControl, DefaultNeverInterrupts) {
  const rt::RunControl ctl;
  EXPECT_EQ(ctl.interruption(0), rt::RunStatus::kFinished);
  EXPECT_EQ(ctl.interruption(1'000'000'000), rt::RunStatus::kFinished);
}

TEST(RunControl, StopConditionPriorityIsCancelDeadlineBudget) {
  rt::RunControl ctl;
  ctl.deadline =
      rt::Deadline::at(rt::Deadline::Clock::now() - std::chrono::seconds(1));
  ctl.budget = 10;
  EXPECT_EQ(ctl.interruption(100), rt::RunStatus::kDeadlineExceeded);
  ctl.token.request_cancel();
  EXPECT_EQ(ctl.interruption(100), rt::RunStatus::kCancelled);

  rt::RunControl budget_only;
  budget_only.budget = 10;
  EXPECT_EQ(budget_only.interruption(9), rt::RunStatus::kFinished);
  EXPECT_EQ(budget_only.interruption(10), rt::RunStatus::kBudgetExhausted);
}

TEST(RunStatus, ToStringCoversAllValues) {
  EXPECT_STREQ(rt::to_string(rt::RunStatus::kFinished), "finished");
  EXPECT_STREQ(rt::to_string(rt::RunStatus::kCancelled), "cancelled");
  EXPECT_STREQ(rt::to_string(rt::RunStatus::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(rt::to_string(rt::RunStatus::kBudgetExhausted),
               "budget_exhausted");
}

// -------------------------------------------------------------- fault sim --

// 16-wide AND cone: its input stuck-at faults are random-pattern resistant
// (one specific pattern in 2^16 detects each), so random runs keep live
// faults for thousands of patterns instead of saturating in one block.
gate::Netlist resistant() {
  gate::Netlist nl;
  gate::Bus ins;
  for (int i = 0; i < 16; ++i)
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  const gate::NetId all = nl.add_gate(gate::GateType::kAnd, ins, "all");
  const gate::NetId any =
      nl.add_gate(gate::GateType::kOr, {ins[0], ins[1]}, "any");
  nl.mark_output(all, "y_all");
  nl.mark_output(any, "y_any");
  return nl;
}

TEST(FaultSimRt, CancelFromAnotherThreadStopsWithinOneBlock) {
  const gate::Netlist nl = resistant();
  fault::FaultSimulator sim(nl, fault::FaultList::full(nl));
  // Pin the block shape: the cadence assertions below count generator calls
  // and 64-pattern blocks, which a wider lane backend would coalesce.
  sim.set_lane_backend(&gate::scalar_lane_backend());

  rt::RunControl ctl;
  std::atomic<int> blocks{0};
  // Constant patterns keep every resistant fault alive forever; without the
  // cancel this run would only stop at the (absurd) max_patterns.
  const auto gen = [&](std::uint64_t* words) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      words[i] = 0xAAAA5555AAAA5555ull;
    if (++blocks == 4) {
      std::thread canceller([&ctl] { ctl.token.request_cancel(); });
      canceller.join();  // join = the cancel happens-before the next poll
    }
    return 64;
  };

  const fault::CoverageCurve curve =
      sim.run(gen, std::int64_t{1} << 40, kNoStall, ctl);
  EXPECT_EQ(curve.status, rt::RunStatus::kCancelled);
  // The in-flight 64-pattern block finishes; the next poll stops the run.
  EXPECT_EQ(curve.patterns_run, 4 * 64);
  EXPECT_EQ(blocks.load(), 4);
  EXPECT_EQ(curve.detected_at.size(), sim.faults().size());
}

TEST(FaultSimRt, ExpiredDeadlineStopsBeforeAnyPattern) {
  const gate::Netlist nl = resistant();
  fault::FaultSimulator sim(nl, fault::FaultList::full(nl));
  rt::RunControl ctl;
  ctl.deadline = rt::Deadline::in(std::chrono::nanoseconds(0));
  Xoshiro256 rng(1);
  const fault::CoverageCurve curve = sim.run_random(rng, 4096, kNoStall, ctl);
  EXPECT_EQ(curve.status, rt::RunStatus::kDeadlineExceeded);
  EXPECT_EQ(curve.patterns_run, 0);
  EXPECT_EQ(curve.detected_count(), 0u);
}

TEST(FaultSimRt, BudgetStopsWithinOneBlock) {
  const gate::Netlist nl = resistant();
  fault::FaultSimulator sim(nl, fault::FaultList::full(nl));
  rt::RunControl ctl;
  ctl.budget = 1000;
  Xoshiro256 rng(7);
  const fault::CoverageCurve curve =
      sim.run_random(rng, 1 << 20, kNoStall, ctl);
  EXPECT_EQ(curve.status, rt::RunStatus::kBudgetExhausted);
  EXPECT_GE(curve.patterns_run, 1000);
  EXPECT_LT(curve.patterns_run, 1000 + 64);
}

TEST(FaultSimRt, CheckpointResumeIsBitExact) {
  const gate::Netlist nl = resistant();
  const fault::FaultList fl = fault::FaultList::full(nl);

  // Reference: one uninterrupted 4096-pattern random run.
  fault::FaultSimulator ref_sim(nl, fl);
  Xoshiro256 ref_rng(42);
  const fault::CoverageCurve ref = ref_sim.run_random(ref_rng, 4096);
  ASSERT_EQ(ref.status, rt::RunStatus::kFinished);
  ASSERT_GT(ref.detected_count(), 0u);
  ASSERT_LT(ref.detected_count(), fl.size());  // resistant faults survive

  // Same run interrupted at 1024 patterns by budget, checkpointed through a
  // JSON round trip, resumed into a *wrong-seeded* generator: the restored
  // PRNG state must make the result identical anyway.
  fault::FaultSimulator sim(nl, fl);
  Xoshiro256 rng(42);
  rt::RunControl ctl;
  ctl.budget = 1024;
  const fault::CoverageCurve part =
      sim.run_random(rng, 4096, kNoStall, ctl);
  ASSERT_EQ(part.status, rt::RunStatus::kBudgetExhausted);
  ASSERT_EQ(part.patterns_run, 1024);

  const rt::SimCheckpoint saved = sim.make_checkpoint(part, &rng);
  const rt::SimCheckpoint loaded =
      rt::SimCheckpoint::from_json(obs::Json::parse(saved.to_json().dump()));
  EXPECT_EQ(loaded.patterns_run, 1024);
  EXPECT_TRUE(loaded.has_rng);

  fault::FaultSimulator resumed_sim(nl, fl);
  Xoshiro256 wrong_rng(999);
  const fault::CoverageCurve resumed =
      resumed_sim.run_random(wrong_rng, 4096, kNoStall, {}, &loaded);
  EXPECT_EQ(resumed.status, rt::RunStatus::kFinished);
  EXPECT_EQ(resumed.patterns_run, ref.patterns_run);
  EXPECT_EQ(resumed.detected_at, ref.detected_at);
}

TEST(FaultSimRt, CheckpointFileRoundTrip) {
  rt::SimCheckpoint ck;
  ck.patterns_run = 192;
  ck.detected_at = {-1, 5, 130, -1};
  ck.has_rng = true;
  ck.rng_state = {0xDEADBEEFCAFEBABEull, 1, 0xFFFFFFFFFFFFFFFFull, 42};

  const std::string path = testing::TempDir() + "/bibs_sim_ck.json";
  ck.save(path);
  const rt::SimCheckpoint back = rt::SimCheckpoint::load(path);
  EXPECT_EQ(back.patterns_run, ck.patterns_run);
  EXPECT_EQ(back.detected_at, ck.detected_at);
  EXPECT_EQ(back.rng_state, ck.rng_state);
  std::filesystem::remove(path);
}

TEST(FaultSimRt, CheckpointRejectsWrongFaultCount) {
  const gate::Netlist nl = resistant();
  fault::FaultSimulator sim(nl, fault::FaultList::full(nl));
  rt::SimCheckpoint ck;
  ck.detected_at.assign(3, -1);  // wrong size
  Xoshiro256 rng(1);
  EXPECT_THROW(sim.run_random(rng, 64, kNoStall, {}, &ck), DesignError);
}

TEST(FaultSimRt, MalformedCheckpointJsonIsRejected) {
  EXPECT_THROW(rt::SimCheckpoint::from_json(obs::Json::parse("{}")),
               ParseError);
  EXPECT_THROW(rt::SessionCheckpoint::from_json(obs::Json::parse(
                   R"({"kind":"bibs.sim_checkpoint","version":1})")),
               ParseError);
  rt::SimCheckpoint no_rng;
  no_rng.detected_at = {-1};
  Xoshiro256 rng(1);
  EXPECT_THROW(no_rng.restore_rng(rng), DesignError);
}

// ---------------------------------------------------------------- session --

struct Rig {
  rtl::Netlist n;
  gate::Elaboration elab;
  core::DesignResult design;
  std::vector<core::Kernel> kernels;
};

Rig make_rig() {
  Rig s;
  s.n = circuits::make_c3a2m();
  s.elab = gate::elaborate(s.n);
  s.design = core::design_bibs(s.n);
  for (const core::Kernel& k : s.design.report.kernels)
    if (!k.trivial) s.kernels.push_back(k);
  return s;
}

TEST(SessionRt, ExpiredDeadlineReturnsPartialReport) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  const sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const fault::FaultList faults = session.kernel_faults();

  rt::RunControl ctl;
  ctl.deadline = rt::Deadline::in(std::chrono::nanoseconds(0));
  const sim::SessionReport rep = session.run(faults, 256, ctl);
  EXPECT_EQ(rep.status, rt::RunStatus::kDeadlineExceeded);
  EXPECT_EQ(rep.detected_at_outputs, 0u);
  EXPECT_EQ(rep.detected_by_signature, 0u);
  EXPECT_EQ(rep.total_faults, faults.size());
}

TEST(SessionRt, CheckpointResumeMatchesUninterruptedRun) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  // Pin 64-lane (63-fault) batches so "budget for exactly one batch" below
  // stops mid-run whatever lane backend the host resolves.
  session.set_batch_lanes(64);
  const fault::FaultList faults = session.kernel_faults();
  ASSERT_GT(faults.size(), 63u);  // at least two 63-fault batches

  const std::int64_t cycles = 256;
  const sim::SessionReport full = session.run(faults, cycles);
  ASSERT_EQ(full.status, rt::RunStatus::kFinished);

  // Budget for exactly one batch: the run completes batch 0, then stops.
  rt::RunControl ctl;
  ctl.budget = cycles;
  rt::SessionCheckpoint ck;
  const sim::SessionReport part =
      session.run(faults, cycles, ctl, nullptr, &ck);
  EXPECT_EQ(part.status, rt::RunStatus::kBudgetExhausted);
  EXPECT_EQ(ck.batches_done, 1u);
  EXPECT_LT(part.detected_by_signature, full.detected_by_signature);
  // Batch 0 produced the golden signatures already.
  EXPECT_EQ(part.golden_signatures, full.golden_signatures);

  const rt::SessionCheckpoint loaded = rt::SessionCheckpoint::from_json(
      obs::Json::parse(ck.to_json().dump()));
  const sim::SessionReport resumed =
      session.run(faults, cycles, {}, &loaded);
  EXPECT_EQ(resumed.status, rt::RunStatus::kFinished);
  EXPECT_EQ(resumed.detected_at_outputs, full.detected_at_outputs);
  EXPECT_EQ(resumed.detected_by_signature, full.detected_by_signature);
  EXPECT_EQ(resumed.aliased, full.aliased);
  EXPECT_EQ(resumed.golden_signatures, full.golden_signatures);
}

TEST(SessionRt, ResumeRejectsMismatchedCheckpoint) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  const sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const fault::FaultList faults = session.kernel_faults();
  rt::SessionCheckpoint ck;
  ck.cycles = 999;  // run below asks for 256
  ck.total_faults = faults.size();
  ck.detected_at_outputs.assign(faults.size(), 0);
  ck.detected_by_signature.assign(faults.size(), 0);
  EXPECT_THROW(session.run(faults, 256, {}, &ck), DesignError);
}

TEST(SessionRt, SessionCheckpointFileRoundTrip) {
  rt::SessionCheckpoint ck;
  ck.cycles = 256;
  ck.total_faults = 2;
  ck.batches_done = 1;
  ck.batch_faults = 511;  // avx512-wide batches
  ck.detected_at_outputs = {1, 0};
  ck.detected_by_signature = {0, 1};
  ck.golden_signatures = {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};

  const std::string path = testing::TempDir() + "/bibs_session_ck.json";
  ck.save(path);
  const rt::SessionCheckpoint back = rt::SessionCheckpoint::load(path);
  EXPECT_EQ(back.cycles, ck.cycles);
  EXPECT_EQ(back.batches_done, ck.batches_done);
  EXPECT_EQ(back.batch_faults, ck.batch_faults);
  EXPECT_EQ(back.detected_at_outputs, ck.detected_at_outputs);
  EXPECT_EQ(back.detected_by_signature, ck.detected_by_signature);
  EXPECT_EQ(back.golden_signatures, ck.golden_signatures);
  std::filesystem::remove(path);

  // Files written before the batch_faults field always meant 63-fault
  // (scalar64) batches; loading one must default accordingly.
  obs::Json legacy = obs::Json::object();
  legacy["kind"] = obs::Json("bibs.session_checkpoint");
  legacy["version"] = obs::Json(1);
  legacy["cycles"] = obs::Json(256);
  legacy["total_faults"] = obs::Json(1);
  legacy["batches_done"] = obs::Json(0);
  obs::Json det = obs::Json::array();
  det.push_back(obs::Json(true));
  legacy["detected_at_outputs"] = det;
  obs::Json sig = obs::Json::array();
  sig.push_back(obs::Json(false));
  legacy["detected_by_signature"] = sig;
  legacy["golden_signatures"] = obs::Json::array();
  EXPECT_EQ(rt::SessionCheckpoint::from_json(legacy).batch_faults, 63u);
}

// ----------------------------------------------- other interruptible loops --

TEST(CstpRt, CancelledRunReturnsEmptyPartialReport) {
  const Rig s = make_rig();
  sim::CstpSession cstp(s.elab.netlist);
  const fault::FaultList faults = fault::FaultList::collapsed(s.elab.netlist);
  rt::RunControl ctl;
  ctl.token.request_cancel();
  const sim::CstpReport rep = cstp.run(faults, 64, ctl);
  EXPECT_EQ(rep.status, rt::RunStatus::kCancelled);
  EXPECT_EQ(rep.detected_ideal, 0u);
  EXPECT_EQ(rep.detected_by_signature, 0u);
  const std::vector<gate::NetId> watch{s.elab.netlist.dffs().front()};
  EXPECT_EQ(cstp.cycles_to_cover(watch, 1, 1024, ctl), -1);
}

TEST(SynthesizeRt, CancelledSynthesisReturnsPartial) {
  const tpg::TpgDesign d = tpg::sc_tpg(tpg::GeneralizedStructure::single_cone(
      {{"R1", 4}, {"R2", 4}}, {1, 0}));
  rt::RunControl ctl;
  ctl.token.request_cancel();
  const tpg::SynthesizedTpg out = tpg::synthesize_tpg(d, {}, ctl);
  EXPECT_EQ(out.status, rt::RunStatus::kCancelled);
  EXPECT_EQ(tpg::synthesize_tpg(d).status, rt::RunStatus::kFinished);
}

TEST(ExploreRt, CancelledExplorationReturnsBaselinePoint) {
  const rtl::Netlist n = circuits::make_c3a2m();
  rt::RunControl ctl;
  ctl.token.request_cancel();
  rt::RunStatus status = rt::RunStatus::kFinished;
  const auto frontier = core::explore_design_space(n, ctl, &status);
  EXPECT_EQ(status, rt::RunStatus::kCancelled);
  ASSERT_FALSE(frontier.empty());  // the unexplored baseline is always there
}

TEST(LaneEngine, RejectsOutOfRangeFaults) {
  const Rig s = make_rig();
  const fault::Fault bogus_net{
      static_cast<gate::NetId>(s.elab.netlist.net_count()), -1, true};
  EXPECT_THROW(
      sim::LaneEngine(s.elab.netlist,
                      std::span<const fault::Fault>(&bogus_net, 1)),
      DesignError);
  const fault::Fault bogus_pin{s.elab.netlist.dffs().front(), 99, false};
  EXPECT_THROW(
      sim::LaneEngine(s.elab.netlist,
                      std::span<const fault::Fault>(&bogus_pin, 1)),
      DesignError);
}

// ---------------------------------------------------------------- parsers --

TEST(SexprHardening, ErrorsCarryLineAndColumn) {
  try {
    rtl::parse_sexpr("(a\n (b\n");
    FAIL() << "unterminated list parsed";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("opened at 2:2"), std::string::npos)
        << e.what();
  }
  try {
    rtl::parse_sexpr("  )");
    FAIL() << "stray ')' parsed";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("1:3"), std::string::npos)
        << e.what();
  }
}

TEST(SexprHardening, NodesRememberTheirPositions) {
  const rtl::Sexpr s = rtl::parse_sexpr("(foo\n  bar)");
  EXPECT_EQ(s.line, 1);
  EXPECT_EQ(s.col, 1);
  EXPECT_EQ(s.at(1).line, 2);
  EXPECT_EQ(s.at(1).col, 3);
}

TEST(SexprHardening, DepthLimitIsEnforced) {
  rtl::ParseLimits limits;
  limits.max_depth = 2;
  EXPECT_NO_THROW(rtl::parse_sexpr("((a))", limits));
  EXPECT_THROW(rtl::parse_sexpr("(((a)))", limits), ParseError);
  // The default limit guards the corpus' 10k-deep input too (tested below
  // through parse_edif).
}

TEST(SexprHardening, TokenLimitIsEnforced) {
  rtl::ParseLimits limits;
  limits.max_tokens = 3;
  EXPECT_NO_THROW(rtl::parse_sexpr("(a b)", limits));
  EXPECT_THROW(rtl::parse_sexpr("(a b c)", limits), ParseError);
}

TEST(BenchHardening, ErrorsCarryLineAndColumn) {
  try {
    gate::parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    FAIL() << "unknown gate type parsed";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("3:1"), std::string::npos)
        << e.what();
  }
}

TEST(BenchHardening, ResolveDepthLimitIsEnforced) {
  std::ostringstream os;
  os << "INPUT(a)\nOUTPUT(n5000)\n";
  // Deepest gate first: every operand is a forward reference, so resolving
  // n5000 recurses through the entire not-yet-memoized chain.
  for (int i = 5000; i >= 0; --i)
    os << "n" << i << " = BUF(" << (i == 0 ? std::string("a")
                                           : "n" + std::to_string(i - 1))
       << ")\n";
  try {
    gate::parse_bench(os.str());
    FAIL() << "5000-deep chain parsed";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper"), std::string::npos)
        << e.what();
  }
}

TEST(MalformedCorpus, EveryFileRaisesPositionedParseError) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(BIBS_SOURCE_DIR) / "tests" / "data" / "bad";
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  const std::regex position(R"([0-9]+:[0-9]+)");
  std::size_t files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    ++files;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << entry.path();
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    try {
      if (entry.path().extension() == ".bench")
        (void)gate::parse_bench(text);
      else
        (void)rtl::parse_edif(text);
      FAIL() << entry.path() << " parsed without error";
    } catch (const ParseError& e) {
      EXPECT_TRUE(std::regex_search(std::string(e.what()), position))
          << entry.path() << " error lacks line:column — " << e.what();
    }
  }
  EXPECT_GE(files, 5u);
}

}  // namespace
}  // namespace bibs
