// Tests for the S-expression substrate and the EDIF-style circuit format.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "rtl/edif.hpp"
#include "rtl/sexpr.hpp"

namespace bibs::rtl {
namespace {

TEST(Sexpr, ParsesAtomsAndLists) {
  const Sexpr s = parse_sexpr("(a (b 12) c)");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.head(), "a");
  EXPECT_EQ(s.at(1).head(), "b");
  EXPECT_EQ(s.at(1).int_at(1), 12);
  EXPECT_EQ(s.atom_at(2), "c");
}

TEST(Sexpr, CommentsAndWhitespace) {
  const Sexpr s = parse_sexpr("; leading comment\n( x ; inline\n  y )");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.atom_at(0), "x");
  EXPECT_EQ(s.atom_at(1), "y");
}

TEST(Sexpr, NestedRoundTrip) {
  const std::string text = "(a (b (c d) e) (f))";
  EXPECT_EQ(parse_sexpr(text).to_string(), text);
}

TEST(Sexpr, Errors) {
  EXPECT_THROW(parse_sexpr("(a"), ParseError);
  EXPECT_THROW(parse_sexpr(")"), ParseError);
  EXPECT_THROW(parse_sexpr("(a) extra"), ParseError);
  EXPECT_THROW(parse_sexpr("  ; only a comment"), ParseError);
  EXPECT_THROW(parse_sexpr("(a (b 1)) ; ok\n(second)"), ParseError);
}

TEST(Sexpr, IntValidation) {
  const Sexpr s = parse_sexpr("(w 8x)");
  EXPECT_THROW((void)s.int_at(1), ParseError);
}

TEST(Edif, ParsesMinimalCircuit) {
  const Netlist n = parse_edif(R"(
; a pipelined inverter pair
(circuit demo
  (input x 4)
  (comb C1 not 4)
  (comb C2 not 4)
  (output y 4)
  (reg x C1 R1 4)
  (reg C1 C2 R2 4)
  (reg C2 y RO 4))
)");
  EXPECT_EQ(n.name(), "demo");
  EXPECT_EQ(n.block_count(), 4u);
  EXPECT_EQ(n.register_edges().size(), 3u);
}

TEST(Edif, Errors) {
  EXPECT_THROW(parse_edif("(network x)"), ParseError);
  EXPECT_THROW(parse_edif("(circuit)"), ParseError);
  EXPECT_THROW(parse_edif("(circuit t (frob a 4))"), ParseError);
  EXPECT_THROW(parse_edif("(circuit t (input x 4) (wire x nosuch 4))"),
               ParseError);
  EXPECT_THROW(parse_edif("(circuit t (input x zero))"), ParseError);
}

class EdifRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EdifRoundTrip, StableAcrossTheZoo) {
  Netlist orig;
  switch (GetParam()) {
    case 0: orig = circuits::make_fig1(); break;
    case 1: orig = circuits::make_fig3(); break;
    case 2: orig = circuits::make_fig4(); break;
    case 3: orig = circuits::make_fig9(); break;
    case 4: orig = circuits::make_c5a2m(); break;
    case 5: orig = circuits::make_c3a2m(); break;
    case 6: orig = circuits::make_c4a4m(); break;
    default: orig = circuits::make_fir_datapath(4); break;
  }
  const std::string text = to_edif(orig);
  const Netlist back = parse_edif(text);
  EXPECT_EQ(to_edif(back), text);
  EXPECT_EQ(back.block_count(), orig.block_count());
  EXPECT_EQ(back.connection_count(), orig.connection_count());
  EXPECT_EQ(back.total_register_bits(), orig.total_register_bits());
  // Port order (and therefore semantics) survives.
  for (const Block& b : orig.blocks()) {
    const BlockId nb = back.find_block(b.name);
    ASSERT_NE(nb, kNoBlock);
    EXPECT_EQ(back.fanin(nb).size(), orig.fanin(b.id).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, EdifRoundTrip, ::testing::Range(0, 8));

TEST(Edif, AgreesWithLineFormat) {
  // The same circuit through both wire formats is structurally identical.
  const Netlist a = circuits::make_c4a4m();
  const Netlist via_edif = parse_edif(to_edif(a));
  const Netlist via_text = parse_netlist(to_text(a));
  EXPECT_EQ(to_text(via_edif), to_text(via_text));
}

}  // namespace
}  // namespace bibs::rtl
