// Tests for the gate-level netlist, parallel simulator, structural synthesis
// (adders / truncated multipliers) and RTL elaboration.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "common/prng.hpp"
#include "gate/netlist.hpp"
#include "gate/sim.hpp"
#include "gate/synth.hpp"

namespace bibs::gate {
namespace {

Bus make_inputs(Netlist& nl, int w, const std::string& prefix) {
  Bus b;
  for (int i = 0; i < w; ++i)
    b.push_back(nl.add_input(prefix + std::to_string(i)));
  return b;
}

TEST(Netlist, GateCountExcludesSourcesAndDffs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_gate(GateType::kAnd, {a, b});
  const NetId d = nl.add_dff(x);
  nl.mark_output(d);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, ValidateCatchesUnconnectedDff) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  (void)a;
  nl.add_dff();
  EXPECT_THROW(nl.validate(), DesignError);
}

TEST(Netlist, ValidateCatchesCombCycle) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_gate(GateType::kAnd, {a, a});
  const NetId g2 = nl.add_gate(GateType::kOr, {g1, a});
  // Force a cycle by hand (bypassing add_gate's ordering guarantee).
  const_cast<Gate&>(nl.gate(g1)).fanin[1] = g2;
  EXPECT_THROW(nl.validate(), DesignError);
}

TEST(Netlist, PruneDropsDeadLogic) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId live = nl.add_gate(GateType::kXor, {a, b});
  nl.add_gate(GateType::kAnd, {a, b});  // dead
  nl.mark_output(live, "y");
  const Netlist p = nl.pruned();
  EXPECT_EQ(p.gate_count(), 1u);
  EXPECT_EQ(p.inputs().size(), 2u);  // PI interface is preserved
  EXPECT_EQ(p.outputs().size(), 1u);
}

TEST(Netlist, PruneKeepsLogicThroughDffs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.add_gate(GateType::kNot, {a});
  const NetId d = nl.add_dff(g);
  const NetId h = nl.add_gate(GateType::kNot, {d});
  nl.mark_output(h, "y");
  const Netlist p = nl.pruned();
  EXPECT_EQ(p.gate_count(), 2u);
  EXPECT_EQ(p.dffs().size(), 1u);
  EXPECT_NO_THROW(p.validate());
}

TEST(Simulator, TruthTables) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  struct Row {
    GateType t;
    std::uint64_t expect;  // for a=0011, b=0101 bit patterns
  };
  const std::uint64_t av = 0b0011, bv = 0b0101;
  const std::vector<Row> rows = {
      {GateType::kAnd, 0b0001},  {GateType::kOr, 0b0111},
      {GateType::kNand, ~0b0001ull}, {GateType::kNor, ~0b0111ull},
      {GateType::kXor, 0b0110}, {GateType::kXnor, ~0b0110ull},
  };
  std::vector<NetId> outs;
  for (const Row& r : rows) outs.push_back(nl.add_gate(r.t, {a, b}));
  const NetId nt = nl.add_gate(GateType::kNot, {a});
  const NetId bf = nl.add_gate(GateType::kBuf, {b});
  for (NetId o : outs) nl.mark_output(o);
  nl.mark_output(nt);
  nl.mark_output(bf);

  Simulator sim(nl);
  sim.set_input(a, av);
  sim.set_input(b, bv);
  sim.eval();
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(sim.value(outs[i]), rows[i].expect) << to_string(rows[i].t);
  EXPECT_EQ(sim.value(nt), ~av);
  EXPECT_EQ(sim.value(bf), bv);
}

TEST(Simulator, DffPipelineDelaysData) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId d1 = nl.add_dff(a);
  const NetId d2 = nl.add_dff(d1);
  nl.mark_output(d2, "y");
  Simulator sim(nl);
  sim.reset();
  std::vector<std::uint64_t> seen;
  const std::vector<std::uint64_t> stream = {1, 0, 1, 1, 0, 1, 0, 0};
  for (std::uint64_t v : stream) {
    sim.set_input(a, v);
    sim.eval();
    seen.push_back(sim.value(d2) & 1);
    sim.clock();
  }
  // Output at cycle t is the input at cycle t-2 (zero before that).
  for (std::size_t t = 0; t < stream.size(); ++t)
    EXPECT_EQ(seen[t], t >= 2 ? stream[t - 2] : 0u) << t;
}

TEST(Simulator, NaryGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId x = nl.add_gate(GateType::kXor, {a, b, c});
  nl.mark_output(x);
  Simulator sim(nl);
  for (int pat = 0; pat < 8; ++pat) {
    sim.set_input(a, (pat & 1) ? ~0ull : 0);
    sim.set_input(b, (pat & 2) ? ~0ull : 0);
    sim.set_input(c, (pat & 4) ? ~0ull : 0);
    sim.eval();
    const int want = ((pat & 1) ^ ((pat >> 1) & 1) ^ ((pat >> 2) & 1));
    EXPECT_EQ(sim.value(x) & 1, static_cast<std::uint64_t>(want)) << pat;
  }
}

class AdderExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(AdderExhaustive, MatchesIntegerAddition) {
  const int w = GetParam();
  Netlist nl;
  Bus a = make_inputs(nl, w, "a");
  Bus b = make_inputs(nl, w, "b");
  Bus s = ripple_adder(nl, a, b, /*keep_carry=*/true);
  for (NetId o : s) nl.mark_output(o);
  Simulator sim(nl);
  for (std::uint64_t x = 0; x < (1u << w); ++x)
    for (std::uint64_t y = 0; y < (1u << w); ++y) {
      sim.set_bus(a, x);
      sim.set_bus(b, y);
      sim.eval();
      EXPECT_EQ(sim.bus_value(s, 0), x + y) << x << "+" << y;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderExhaustive, ::testing::Values(1, 2, 3, 4, 5));

TEST(Adder, EightBitRandomNoCarry) {
  Netlist nl;
  Bus a = make_inputs(nl, 8, "a");
  Bus b = make_inputs(nl, 8, "b");
  Bus s = ripple_adder(nl, a, b);
  for (NetId o : s) nl.mark_output(o);
  Simulator sim(nl);
  Xoshiro256 rng(77);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t x = rng.next() & 0xFF, y = rng.next() & 0xFF;
    sim.set_bus(a, x);
    sim.set_bus(b, y);
    sim.eval();
    EXPECT_EQ(sim.bus_value(s, 0), (x + y) & 0xFF);
  }
}

TEST(Subtractor, MatchesTwosComplement) {
  Netlist nl;
  Bus a = make_inputs(nl, 6, "a");
  Bus b = make_inputs(nl, 6, "b");
  Bus s = ripple_subtractor(nl, a, b);
  for (NetId o : s) nl.mark_output(o);
  Simulator sim(nl);
  for (std::uint64_t x = 0; x < 64; ++x)
    for (std::uint64_t y = 0; y < 64; ++y) {
      sim.set_bus(a, x);
      sim.set_bus(b, y);
      sim.eval();
      EXPECT_EQ(sim.bus_value(s, 0), (x - y) & 63u);
    }
}

class MultiplierCase
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MultiplierCase, MatchesIntegerMultiply) {
  const auto [wa, wb, wo] = GetParam();
  Netlist nl;
  Bus a = make_inputs(nl, wa, "a");
  Bus b = make_inputs(nl, wb, "b");
  Bus p = array_multiplier(nl, a, b, static_cast<std::size_t>(wo));
  for (NetId o : p) nl.mark_output(o);
  Simulator sim(nl);
  const std::uint64_t mask = (wo >= 64) ? ~0ull : (1ull << wo) - 1;
  for (std::uint64_t x = 0; x < (1u << wa); ++x)
    for (std::uint64_t y = 0; y < (1u << wb); ++y) {
      sim.set_bus(a, x);
      sim.set_bus(b, y);
      sim.eval();
      EXPECT_EQ(sim.bus_value(p, 0), (x * y) & mask)
          << x << "*" << y << " w=" << wo;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiplierCase,
    ::testing::Values(std::tuple{2, 2, 4}, std::tuple{3, 3, 6},
                      std::tuple{4, 4, 8}, std::tuple{4, 4, 4},
                      std::tuple{5, 5, 5}, std::tuple{6, 6, 6},
                      std::tuple{5, 3, 8}, std::tuple{3, 5, 4}));

TEST(Multiplier, EightByEightTruncatedRandom) {
  Netlist nl;
  Bus a = make_inputs(nl, 8, "a");
  Bus b = make_inputs(nl, 8, "b");
  Bus p = array_multiplier(nl, a, b, 8);
  for (NetId o : p) nl.mark_output(o);
  Simulator sim(nl);
  Xoshiro256 rng(99);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t x = rng.next() & 0xFF, y = rng.next() & 0xFF;
    sim.set_bus(a, x);
    sim.set_bus(b, y);
    sim.eval();
    EXPECT_EQ(sim.bus_value(p, 0), (x * y) & 0xFF);
  }
}

TEST(Multiplier, TruncationCreatesNoDeadLogic) {
  Netlist nl;
  Bus a = make_inputs(nl, 8, "a");
  Bus b = make_inputs(nl, 8, "b");
  Bus p = array_multiplier(nl, a, b, 8);
  for (NetId o : p) nl.mark_output(o);
  const std::size_t before = nl.gate_count();
  EXPECT_EQ(nl.pruned().gate_count(), before);
}

TEST(Simulator, LaneOperations) {
  Netlist nl;
  Bus a = make_inputs(nl, 4, "a");
  Bus b = make_inputs(nl, 4, "b");
  Bus s = ripple_adder(nl, a, b);
  for (NetId o : s) nl.mark_output(o);
  Simulator sim(nl);
  // Different operands in different lanes, evaluated simultaneously.
  for (int lane = 0; lane < 16; ++lane) {
    sim.set_bus_lane(a, lane, static_cast<std::uint64_t>(lane));
    sim.set_bus_lane(b, lane, static_cast<std::uint64_t>(15 - lane));
  }
  sim.eval();
  for (int lane = 0; lane < 16; ++lane)
    EXPECT_EQ(sim.bus_value(s, lane), 15u) << lane;
}

TEST(Elaborate, C5a2mComputesItsFunction) {
  const auto n = circuits::make_c5a2m();
  Elaboration e = elaborate(n);
  Simulator sim(e.netlist);
  sim.reset();
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t in[8];
    for (auto& v : in) v = rng.next() & 0xFF;
    const char* names[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
    for (int i = 0; i < 8; ++i)
      sim.set_bus(e.block_out.at(n.find_block(names[i])), in[i]);
    // Flush the pipeline with constant inputs.
    for (int t = 0; t < 8; ++t) {
      sim.eval();
      sim.clock();
    }
    sim.eval();
    const std::uint64_t want =
        (((in[0] + in[1]) & 0xFF) * ((in[2] + in[3]) & 0xFF) +
         ((in[4] + in[5]) & 0xFF) * ((in[6] + in[7]) & 0xFF)) &
        0xFF;
    const auto& out_bus = e.block_out.at(n.find_block("o"));
    EXPECT_EQ(sim.bus_value(out_bus, 0), want);
  }
}

TEST(Elaborate, C3a2mComputesItsFunction) {
  const auto n = circuits::make_c3a2m();
  Elaboration e = elaborate(n);
  Simulator sim(e.netlist);
  sim.reset();
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t in[6];
    for (auto& v : in) v = rng.next() & 0xFF;
    const char* names[] = {"a", "b", "c", "d", "e", "f"};
    for (int i = 0; i < 6; ++i)
      sim.set_bus(e.block_out.at(n.find_block(names[i])), in[i]);
    for (int t = 0; t < 10; ++t) {
      sim.eval();
      sim.clock();
    }
    sim.eval();
    const std::uint64_t ab = (in[0] + in[1]) & 0xFF;
    const std::uint64_t want =
        (((((ab * in[2]) & 0xFF) + in[3]) & 0xFF) * in[4] + in[5]) & 0xFF;
    EXPECT_EQ(sim.bus_value(e.block_out.at(n.find_block("o")), 0), want);
  }
}

TEST(Elaborate, C4a4mComputesBothOutputs) {
  const auto n = circuits::make_c4a4m();
  Elaboration e = elaborate(n);
  Simulator sim(e.netlist);
  sim.reset();
  Xoshiro256 rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t v[8];
    for (auto& x : v) x = rng.next() & 0xFF;
    const char* names[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
    for (int i = 0; i < 8; ++i)
      sim.set_bus(e.block_out.at(n.find_block(names[i])), v[i]);
    for (int t = 0; t < 8; ++t) {
      sim.eval();
      sim.clock();
    }
    sim.eval();
    const std::uint64_t fg = (v[5] + v[6]) & 0xFF, bc = (v[1] + v[2]) & 0xFF;
    const std::uint64_t o = (v[0] * fg + v[4] * bc) & 0xFF;
    const std::uint64_t p = (v[3] * bc + v[7] * fg) & 0xFF;
    EXPECT_EQ(sim.bus_value(e.block_out.at(n.find_block("o")), 0), o);
    EXPECT_EQ(sim.bus_value(e.block_out.at(n.find_block("p")), 0), p);
  }
}

TEST(Elaborate, PipelineLatencyMatchesDelayChains) {
  // Feed a time-varying stream into c3a2m and check that operands from the
  // correct cycles are combined: o(t) depends on a,b from 5 cycles ago but f
  // from 2 cycles ago (PI reg + alignment chain + output reg).
  const auto n = circuits::make_c3a2m();
  Elaboration e = elaborate(n);
  Simulator sim(e.netlist);
  sim.reset();
  // Streams: a(t) = t+1, others constant.
  std::vector<std::uint64_t> a_hist, o_hist;
  for (int t = 0; t < 16; ++t) {
    const std::uint64_t at = static_cast<std::uint64_t>(t + 1);
    a_hist.push_back(at);
    sim.set_bus(e.block_out.at(n.find_block("a")), at);
    sim.set_bus(e.block_out.at(n.find_block("b")), 1);
    sim.set_bus(e.block_out.at(n.find_block("c")), 2);
    sim.set_bus(e.block_out.at(n.find_block("d")), 3);
    sim.set_bus(e.block_out.at(n.find_block("e")), 1);
    sim.set_bus(e.block_out.at(n.find_block("f")), 5);
    sim.eval();
    o_hist.push_back(sim.bus_value(e.block_out.at(n.find_block("o")), 0));
    sim.clock();
  }
  // The probed net is the Q of the output register, 6 register stages from
  // the PI pad: o(t) = (((a(t-6)+1)*2)+3)*1+5 once the pipe fills — the
  // sequential depth of 6 the paper's maximal-delay row is built on.
  for (int t = 10; t < 16; ++t) {
    const std::uint64_t a5 = a_hist[static_cast<std::size_t>(t - 6)];
    const std::uint64_t want = ((((a5 + 1) * 2) & 0xFF) + 3 + 5) & 0xFF;
    EXPECT_EQ(o_hist[static_cast<std::size_t>(t)], want) << t;
  }
}

TEST(Elaborate, UnknownOpThrows) {
  rtl::Netlist n;
  const auto pi = n.add_input("x", 4);
  const auto c = n.add_comb("C", "frobnicate", 4);
  const auto po = n.add_output("y", 4);
  n.connect_reg(pi, c, "R", 4);
  n.connect_reg(c, po, "RO", 4);
  EXPECT_THROW(elaborate(n), DesignError);
}

TEST(Elaborate, ArityMismatchThrows) {
  rtl::Netlist n;
  const auto pi = n.add_input("x", 4);
  const auto c = n.add_comb("C", "add", 4);  // add wants 2 ports
  const auto po = n.add_output("y", 4);
  n.connect_reg(pi, c, "R", 4);
  n.connect_reg(c, po, "RO", 4);
  EXPECT_THROW(elaborate(n), DesignError);
}

TEST(CombKernel, WholeDatapathAsOneKernel) {
  const auto n = circuits::make_c5a2m();
  Elaboration e = elaborate(n);
  // Input registers: the eight PI registers; output: the PO register.
  std::vector<rtl::ConnId> in_regs, out_regs;
  for (const auto& c : n.connections()) {
    if (!c.is_register()) continue;
    if (n.block(c.from).kind == rtl::BlockKind::kInput) in_regs.push_back(c.id);
    if (n.block(c.to).kind == rtl::BlockKind::kOutput) out_regs.push_back(c.id);
  }
  const Netlist k = combinational_kernel(e, n, in_regs, out_regs);
  EXPECT_EQ(k.inputs().size(), 64u);
  EXPECT_EQ(k.outputs().size(), 8u);
  EXPECT_TRUE(k.dffs().empty());

  // The combinational equivalent computes the same function, instantly.
  Simulator sim(k);
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint64_t in[8];
    std::vector<Bus> buses;
    for (int i = 0; i < 8; ++i) {
      Bus b(k.inputs().begin() + i * 8, k.inputs().begin() + (i + 1) * 8);
      buses.push_back(b);
      in[i] = rng.next() & 0xFF;
      sim.set_bus(b, in[i]);
    }
    sim.eval();
    Bus out(k.outputs().begin(), k.outputs().end());
    const std::uint64_t want =
        (((in[0] + in[1]) & 0xFF) * ((in[2] + in[3]) & 0xFF) +
         ((in[4] + in[5]) & 0xFF) * ((in[6] + in[7]) & 0xFF)) &
        0xFF;
    EXPECT_EQ(sim.bus_value(out, 0), want);
  }
}

TEST(GateCounts, Table1Regime) {
  // Table 1 reports 2,542 / 2,218 / 4,096 gates. Our synthesis recipe will
  // not match the authors' library exactly; assert the same ordering and a
  // plausible magnitude (within 3x).
  const std::size_t g5 = elaborate(circuits::make_c5a2m()).netlist.gate_count();
  const std::size_t g3 = elaborate(circuits::make_c3a2m()).netlist.gate_count();
  const std::size_t g4 = elaborate(circuits::make_c4a4m()).netlist.gate_count();
  EXPECT_GT(g4, g5);
  EXPECT_GT(g4, g3);
  EXPECT_GT(g5, 400u);
  EXPECT_LT(g4, 12000u);
}

}  // namespace
}  // namespace bibs::gate
