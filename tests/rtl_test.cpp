// Tests for the RTL netlist model, validation rules, and the text parser.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "rtl/netlist.hpp"

namespace bibs::rtl {
namespace {

Netlist tiny() {
  Netlist n("tiny");
  const BlockId pi = n.add_input("x", 4);
  const BlockId c = n.add_comb("C", "not", 4);
  const BlockId po = n.add_output("y", 4);
  n.connect_reg(pi, c, "R1", 4);
  n.connect_reg(c, po, "R2", 4);
  return n;
}

TEST(Netlist, BasicConstruction) {
  Netlist n = tiny();
  EXPECT_EQ(n.block_count(), 3u);
  EXPECT_EQ(n.connection_count(), 2u);
  EXPECT_EQ(n.register_edges().size(), 2u);
  EXPECT_EQ(n.total_register_bits(), 8);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, FindByName) {
  Netlist n = tiny();
  EXPECT_NE(n.find_block("C"), kNoBlock);
  EXPECT_EQ(n.find_block("missing"), kNoBlock);
  EXPECT_NE(n.find_register("R1"), -1);
  EXPECT_EQ(n.find_register("R9"), -1);
}

TEST(Netlist, DuplicateBlockNameRejected) {
  Netlist n;
  n.add_input("x", 4);
  EXPECT_THROW(n.add_comb("x", "not", 4), ParseError);
}

TEST(Netlist, DuplicateRegisterNameRejected) {
  Netlist n;
  const BlockId pi = n.add_input("x", 4);
  const BlockId c = n.add_comb("C", "not", 4);
  const BlockId po = n.add_output("y", 4);
  n.connect_reg(pi, c, "R", 4);
  EXPECT_THROW(n.connect_reg(c, po, "R", 4), ParseError);
}

TEST(Netlist, ZeroWidthRejected) {
  Netlist n;
  EXPECT_THROW(n.add_input("x", 0), ParseError);
}

TEST(Netlist, ValidateRejectsInputWithFanin) {
  Netlist n;
  const BlockId pi = n.add_input("x", 4);
  const BlockId pi2 = n.add_input("z", 4);
  n.connect_wire(pi2, pi, 4);
  EXPECT_THROW(n.validate(), ParseError);
}

TEST(Netlist, ValidateRejectsDanglingOutput) {
  Netlist n;
  n.add_input("x", 4);
  n.add_output("y", 4);
  EXPECT_THROW(n.validate(), ParseError);
}

TEST(Netlist, ValidateRejectsFanoutWithOneOutput) {
  Netlist n;
  const BlockId pi = n.add_input("x", 4);
  const BlockId f = n.add_fanout("F", 4);
  const BlockId po = n.add_output("y", 4);
  n.connect_wire(pi, f, 4);
  n.connect_reg(f, po, "R", 4);
  EXPECT_THROW(n.validate(), ParseError);
}

TEST(Netlist, ValidateRejectsCombinationalCycle) {
  Netlist n;
  const BlockId pi = n.add_input("x", 4);
  const BlockId a = n.add_comb("A", "xor", 4);
  const BlockId b = n.add_comb("B", "not", 4);
  const BlockId po = n.add_output("y", 4);
  n.connect_reg(pi, a, "R", 4);
  n.connect_wire(a, b, 4);
  n.connect_wire(b, a, 4);  // combinational loop
  n.connect_reg(a, po, "RO", 4);
  EXPECT_THROW(n.validate(), ParseError);
}

TEST(Netlist, RegisterCycleIsAllowedByValidate) {
  Netlist n;
  const BlockId pi = n.add_input("x", 4);
  const BlockId a = n.add_comb("A", "xor", 4);
  const BlockId b = n.add_comb("B", "not", 4);
  const BlockId po = n.add_output("y", 4);
  n.connect_reg(pi, a, "R", 4);
  n.connect_wire(a, b, 4);
  n.connect_reg(b, a, "RF", 4);  // sequential feedback: fine
  n.connect_reg(a, po, "RO", 4);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, InsertRegisterOnWire) {
  Netlist n;
  const BlockId pi = n.add_input("x", 4);
  const BlockId c = n.add_comb("C", "not", 4);
  const BlockId po = n.add_output("y", 4);
  const ConnId w = n.connect_wire(pi, c, 4);
  n.connect_reg(c, po, "RO", 4);
  EXPECT_FALSE(n.connection(w).is_register());
  n.insert_register_on_wire(w, "x_br");
  EXPECT_TRUE(n.connection(w).is_register());
  EXPECT_NE(n.find_register("x_br"), -1);
}

TEST(Netlist, FaninOrderIsPortOrder) {
  Netlist n;
  const BlockId p1 = n.add_input("p", 4);
  const BlockId q1 = n.add_input("q", 4);
  const BlockId c = n.add_comb("C", "sub", 4);
  const BlockId po = n.add_output("y", 4);
  n.connect_reg(p1, c, "Rp", 4);
  n.connect_reg(q1, c, "Rq", 4);
  n.connect_reg(c, po, "RO", 4);
  const auto& in = n.fanin(c);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(n.connection(in[0]).reg->name, "Rp");
  EXPECT_EQ(n.connection(in[1]).reg->name, "Rq");
}

TEST(Parser, ParsesMinimalCircuit) {
  const std::string text = R"(
# comment line
circuit demo
input x 4
comb C not 4
output y 4
reg x C R1 4
reg C y R2 4
)";
  Netlist n = parse_netlist(text);
  EXPECT_EQ(n.name(), "demo");
  EXPECT_EQ(n.block_count(), 3u);
  EXPECT_EQ(n.register_edges().size(), 2u);
}

TEST(Parser, AllBlockKinds) {
  const std::string text = R"(circuit kinds
input x 8
fanout F 8
comb A not 8
vacuous V 8
comb B add 8
output y 8
wire x F 8
wire F A 8
wire F B 8
reg A V RA 8
reg V B RV 8
reg B y RO 8
)";
  Netlist n = parse_netlist(text);
  EXPECT_EQ(n.block(n.find_block("F")).kind, BlockKind::kFanout);
  EXPECT_EQ(n.block(n.find_block("V")).kind, BlockKind::kVacuous);
  EXPECT_EQ(n.block(n.find_block("B")).op, "add");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("circuit t\ninput x 4\nbogus y 4\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownBlockReference) {
  EXPECT_THROW(parse_netlist("circuit t\ninput x 4\nwire x nosuch 4\n"),
               ParseError);
}

TEST(Parser, RejectsBadWidth) {
  EXPECT_THROW(parse_netlist("circuit t\ninput x nope\n"), ParseError);
  EXPECT_THROW(parse_netlist("circuit t\ninput x -2\n"), ParseError);
}

TEST(Parser, RejectsWrongArity) {
  EXPECT_THROW(parse_netlist("circuit t\ninput x\n"), ParseError);
}

TEST(Parser, RejectsDuplicateCircuitStatement) {
  EXPECT_THROW(parse_netlist("circuit a\ncircuit b\n"), ParseError);
}

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, TextSerializationIsStable) {
  Netlist orig;
  switch (GetParam()) {
    case 0: orig = circuits::make_fig1(); break;
    case 1: orig = circuits::make_fig2(); break;
    case 2: orig = circuits::make_fig3(); break;
    case 3: orig = circuits::make_fig4(); break;
    case 4: orig = circuits::make_fig9(); break;
    case 5: orig = circuits::make_c5a2m(); break;
    case 6: orig = circuits::make_c3a2m(); break;
    case 7: orig = circuits::make_c4a4m(); break;
    default: orig = circuits::make_fir_datapath(5); break;
  }
  const std::string text = to_text(orig);
  Netlist back = parse_netlist(text);
  EXPECT_EQ(to_text(back), text);
  EXPECT_EQ(back.block_count(), orig.block_count());
  EXPECT_EQ(back.connection_count(), orig.connection_count());
  EXPECT_EQ(back.total_register_bits(), orig.total_register_bits());
}

INSTANTIATE_TEST_SUITE_P(Zoo, RoundTrip, ::testing::Range(0, 9));

}  // namespace
}  // namespace bibs::rtl
