// Tests for the BIBS TDM core: the balanced-BISTable predicate, kernel
// extraction, the BIBS and Krasniewski-Albicki designers, scheduling, and
// the Table 2 structural rows (kernels / sessions / BILBOs / maximal delay).

#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"
#include "core/schedule.hpp"

namespace bibs::core {
namespace {

BilboSet by_names(const rtl::Netlist& n, const std::vector<std::string>& regs) {
  BilboSet b;
  for (const std::string& r : regs) {
    const rtl::ConnId e = n.find_register(r);
    EXPECT_NE(e, -1) << r;
    b.insert(e);
  }
  return b;
}

// ------------------------------------------------------------ Definition 1

TEST(Check, Fig2BoundaryOnlyIsValid) {
  const auto n = circuits::make_fig2();
  const auto rep = check_bibs_testable(n, by_names(n, {"R1", "RO"}));
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.nontrivial_kernel_count(), 1u);
}

TEST(Check, MissingBoundaryRegisterIsViolation) {
  const auto n = circuits::make_fig2();
  const auto rep = check_bibs_testable(n, by_names(n, {"R1"}));
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].kind, Violation::Kind::kUnregisteredBoundary);
}

TEST(Check, SharedRegisterViolation) {
  // Converting only R2 in the middle of fig2 leaves a kernel that both
  // feeds and is fed by R2 (condition 3).
  const auto n = circuits::make_fig2();
  const auto rep = check_bibs_testable(n, by_names(n, {"R1", "RO", "R2"}));
  EXPECT_TRUE(rep.ok);  // C1 and C2 are separate kernels: fine
  // Now a self-loop-ish case: a register from a kernel back into itself.
  auto n2 = circuits::make_fig9();
  // Convert boundary + M1 only: the cycle edge M2 has both endpoints in the
  // merged kernel {B1, B2,...}.
  const auto rep2 = check_bibs_testable(
      n2, by_names(n2, {"P1", "P2", "P3", "P4", "O1", "O2", "M1"}));
  EXPECT_FALSE(rep2.ok);
  bool saw_shared_or_cycle = false;
  for (const auto& v : rep2.violations)
    if (v.kind == Violation::Kind::kSharedRegister ||
        v.kind == Violation::Kind::kCycle)
      saw_shared_or_cycle = true;
  EXPECT_TRUE(saw_shared_or_cycle);
}

TEST(Check, UnbalancedKernelViolation) {
  const auto n = circuits::make_fig1();
  // Insert boundary registers, then check: the F->C URFS is inside the
  // kernel.
  auto m = n;
  ensure_boundary_registers(m);
  BilboSet b;
  for (const auto& c : m.connections())
    if (c.is_register() &&
        (m.block(c.from).kind == rtl::BlockKind::kInput ||
         m.block(c.to).kind == rtl::BlockKind::kOutput))
      b.insert(c.id);
  const auto rep = check_bibs_testable(m, b);
  EXPECT_FALSE(rep.ok);
  bool unbalanced = false;
  for (const auto& v : rep.violations)
    if (v.kind == Violation::Kind::kUnbalanced) unbalanced = true;
  EXPECT_TRUE(unbalanced);
}

// ------------------------------------------------------------- Example 1

TEST(Fig4, PaperSolutionIsValidWithTwoKernels) {
  const auto n = circuits::make_fig4();
  const auto rep =
      check_bibs_testable(n, by_names(n, circuits::fig4_example_bilbos()));
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.nontrivial_kernel_count(), 2u);
}

TEST(Fig4, PartialScanAnalogueViolatesCondition3) {
  // Converting just {R1, R3, R9, R6} — the balance-only analogue of partial
  // scan — leaves registers used as TPG and SA simultaneously (the paper's
  // point in Example 1).
  const auto n = circuits::make_fig4();
  const auto rep = check_bibs_testable(n, by_names(n, {"R1", "R3", "R9", "R6"}));
  EXPECT_FALSE(rep.ok);
}

TEST(Fig4, SessionsMatchExample1) {
  const auto n = circuits::make_fig4();
  const auto rep =
      check_bibs_testable(n, by_names(n, circuits::fig4_example_bilbos()));
  std::vector<Kernel> kernels;
  for (const Kernel& k : rep.kernels)
    if (!k.trivial) kernels.push_back(k);
  ASSERT_EQ(kernels.size(), 2u);
  // Kernel 1: fed by R1, feeds R3/R7/R8/R9. Kernel 2: fed by those, feeds R6.
  auto reg_names = [&](const std::vector<rtl::ConnId>& v) {
    std::vector<std::string> s;
    for (auto e : v) s.push_back(n.connection(e).reg->name);
    std::sort(s.begin(), s.end());
    return s;
  };
  const Kernel& k1 = kernels[0].input_regs.size() == 1 ? kernels[0] : kernels[1];
  const Kernel& k2 = kernels[0].input_regs.size() == 1 ? kernels[1] : kernels[0];
  EXPECT_EQ(reg_names(k1.input_regs), (std::vector<std::string>{"R1"}));
  EXPECT_EQ(reg_names(k1.output_regs),
            (std::vector<std::string>{"R3", "R7", "R8", "R9"}));
  EXPECT_EQ(reg_names(k2.input_regs),
            (std::vector<std::string>{"R3", "R7", "R8", "R9"}));
  EXPECT_EQ(reg_names(k2.output_regs), (std::vector<std::string>{"R6"}));
  // Shared registers force two sessions.
  EXPECT_EQ(schedule_sessions(n, kernels).sessions, 2);
}

TEST(Fig4, DesignerFindsAValidMinimalSet) {
  const auto n = circuits::make_fig4();
  const auto res = design_bibs(n);
  EXPECT_TRUE(res.report.ok);
  // Must include the boundary and be no larger than the paper's 6.
  EXPECT_LE(res.bilbo.size(), 6u);
  EXPECT_GE(res.bilbo.size(), 4u);
  EXPECT_TRUE(res.bilbo.count(n.find_register("R1")));
  EXPECT_TRUE(res.bilbo.count(n.find_register("R6")));
}

// ---------------------------------------------------------------- Figure 9

TEST(Fig9, BibsConverts8Registers43Ffs) {
  const auto n = circuits::make_fig9();
  const auto res = design_bibs(n);
  EXPECT_TRUE(res.report.ok);
  const auto cost = evaluate_design(n, res.bilbo);
  EXPECT_EQ(cost.bilbo_registers, 8u);
  EXPECT_EQ(cost.bilbo_ffs, 43);
  EXPECT_EQ(cost.kernels, 2u);
}

TEST(Fig9, Ka85Converts10Registers52Ffs) {
  const auto n = circuits::make_fig9();
  const auto res = design_ka85(n);
  EXPECT_TRUE(res.report.ok);
  const auto cost = evaluate_design(n, res.bilbo);
  EXPECT_EQ(cost.bilbo_registers, 10u);
  EXPECT_EQ(cost.bilbo_ffs, 52);
  EXPECT_EQ(cost.kernels, 2u);
}

TEST(Fig9, BibsIsASubsetOfKa85Here) {
  const auto n = circuits::make_fig9();
  const auto bibs = design_bibs(n).bilbo;
  const auto ka = design_ka85(n).bilbo;
  for (rtl::ConnId e : bibs) EXPECT_TRUE(ka.count(e));
}

TEST(Theorem3, Ka85DesignsAreAlwaysBalancedBistable) {
  // Theorem 3: every KA85 design is balanced BISTable. Check across the zoo.
  for (int i = 0; i < 5; ++i) {
    rtl::Netlist n;
    switch (i) {
      case 0: n = circuits::make_fig2(); break;
      case 1: n = circuits::make_fig9(); break;
      case 2: n = circuits::make_c5a2m(); break;
      case 3: n = circuits::make_c3a2m(); break;
      default: n = circuits::make_c4a4m(); break;
    }
    const auto res = design_ka85(n);
    EXPECT_TRUE(res.report.ok) << "circuit " << n.name();
  }
}

// ------------------------------------------------------------ Table 2 rows

struct Table2Row {
  const char* circuit;
  int bibs_kernels, ka_kernels;
  int bibs_sessions, ka_sessions;
  int bibs_bilbos, ka_bilbos;
  int bibs_delay, ka_delay;
};

class Table2Structure : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Structure, MatchesPaper) {
  const Table2Row& row = GetParam();
  rtl::Netlist n;
  if (std::string(row.circuit) == "c5a2m") n = circuits::make_c5a2m();
  else if (std::string(row.circuit) == "c3a2m") n = circuits::make_c3a2m();
  else n = circuits::make_c4a4m();

  const auto bibs = design_bibs(n);
  const auto bibs_cost = evaluate_design(n, bibs.bilbo);
  EXPECT_EQ(static_cast<int>(bibs_cost.kernels), row.bibs_kernels);
  EXPECT_EQ(bibs_cost.sessions, row.bibs_sessions);
  EXPECT_EQ(static_cast<int>(bibs_cost.bilbo_registers), row.bibs_bilbos);
  EXPECT_EQ(bibs_cost.max_delay, row.bibs_delay);

  const auto ka = design_ka85(n);
  const auto ka_cost = evaluate_design(n, ka.bilbo);
  EXPECT_EQ(static_cast<int>(ka_cost.kernels), row.ka_kernels);
  EXPECT_EQ(ka_cost.sessions, row.ka_sessions);
  EXPECT_EQ(static_cast<int>(ka_cost.bilbo_registers), row.ka_bilbos);
  EXPECT_EQ(ka_cost.max_delay, row.ka_delay);
}

// Paper values (Table 2 rows 1-4). Note: the paper lists 7 kernels for
// c4a4m/[3]; with shared pipeline registers fanning out to two multipliers,
// component-based extraction yields 6 ({M1,M4} and {M2,M3} merge). See
// EXPERIMENTS.md.
INSTANTIATE_TEST_SUITE_P(
    Paper, Table2Structure,
    ::testing::Values(Table2Row{"c5a2m", 1, 7, 1, 2, 9, 15, 2, 4},
                      Table2Row{"c3a2m", 1, 5, 1, 2, 7, 15, 2, 6},
                      Table2Row{"c4a4m", 1, 6, 1, 2, 10, 20, 2, 4}));

// ------------------------------------------------------------- scheduling

TEST(Schedule, IndependentKernelsShareASession) {
  const auto n = circuits::make_c5a2m();
  const auto ka = design_ka85(n);
  std::vector<Kernel> kernels;
  for (const Kernel& k : ka.report.kernels)
    if (!k.trivial) kernels.push_back(k);
  const Schedule s = schedule_sessions(n, kernels);
  EXPECT_EQ(s.sessions, 2);
  // Adders A1..A4 never share a session with the multiplier they feed.
  // Test time: all kernels 100 patterns each -> 200 total.
  std::vector<std::int64_t> pat(kernels.size(), 100);
  EXPECT_EQ(schedule_test_time(s, pat), 200);
}

TEST(Schedule, SingleKernelSingleSession) {
  const auto n = circuits::make_c5a2m();
  const auto res = design_bibs(n);
  std::vector<Kernel> kernels;
  for (const Kernel& k : res.report.kernels)
    if (!k.trivial) kernels.push_back(k);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(schedule_sessions(n, kernels).sessions, 1);
}

// -------------------------------------------------------- kernel structure

TEST(KernelStructure, C5a2mSingleKernel) {
  const auto n = circuits::make_c5a2m();
  const auto res = design_bibs(n);
  std::vector<Kernel> kernels;
  for (const Kernel& k : res.report.kernels)
    if (!k.trivial) kernels.push_back(k);
  ASSERT_EQ(kernels.size(), 1u);
  const auto s = kernel_structure(n, res.bilbo, kernels[0]);
  EXPECT_EQ(s.registers.size(), 8u);  // the eight PI registers
  ASSERT_EQ(s.cones.size(), 1u);
  EXPECT_EQ(s.cones[0].deps.size(), 8u);
  // Every input is 2 internal register stages from the cone block.
  for (const auto& dep : s.cones[0].deps) EXPECT_EQ(dep.d, 2);
  EXPECT_EQ(s.total_width(), 64);
  EXPECT_EQ(kernel_depth(n, res.bilbo, kernels[0]), 2);
}

TEST(KernelStructure, C3a2mDelayChainsAlignDepths) {
  const auto n = circuits::make_c3a2m();
  const auto res = design_bibs(n);
  std::vector<Kernel> kernels;
  for (const Kernel& k : res.report.kernels)
    if (!k.trivial) kernels.push_back(k);
  ASSERT_EQ(kernels.size(), 1u);
  const auto s = kernel_structure(n, res.bilbo, kernels[0]);
  // All six operands arrive with equal sequential length (4): that is what
  // the MABAL alignment registers are for, and why the TPG needs no extra
  // flip-flops here.
  for (const auto& dep : s.cones[0].deps) EXPECT_EQ(dep.d, 4);
}

TEST(KernelStructure, Fig12aMatchesExample2) {
  const auto n = circuits::make_fig12a();
  const auto res = design_bibs(n);
  std::vector<Kernel> kernels;
  for (const Kernel& k : res.report.kernels)
    if (!k.trivial) kernels.push_back(k);
  ASSERT_EQ(kernels.size(), 1u);
  const auto s = kernel_structure(n, res.bilbo, kernels[0]);
  ASSERT_EQ(s.cones.size(), 1u);
  std::vector<int> depths;
  for (const auto& dep : s.cones[0].deps) depths.push_back(dep.d);
  EXPECT_EQ(depths, (std::vector<int>{2, 1, 0}));
}

TEST(KernelStructure, Fig4Kernel2IsMultiDepth) {
  const auto n = circuits::make_fig4();
  const auto b = by_names(n, circuits::fig4_example_bilbos());
  const auto rep = check_bibs_testable(n, b);
  for (const Kernel& k : rep.kernels) {
    if (k.trivial || k.input_regs.size() != 4) continue;
    const auto s = kernel_structure(n, b, k);
    ASSERT_EQ(s.cones.size(), 1u);
    std::vector<int> depths;
    for (const auto& dep : s.cones[0].deps) depths.push_back(dep.d);
    std::sort(depths.begin(), depths.end());
    EXPECT_EQ(depths, (std::vector<int>{0, 0, 1, 1}));
  }
}

// ---------------------------------------------------------------- designer

TEST(Designer, BoundaryRegistersRequired) {
  const auto n = circuits::make_fig1();  // PI drives F by wire
  EXPECT_THROW(design_bibs(n), DesignError);
}

TEST(Designer, Fig1NeedsAnInsertedRegisterInTheUrfs) {
  // Theorem 2: the URFS needs two BILBO edges, but fig1's URFS contains only
  // one register edge (the delayed branch). Exactly as in the
  // one-register-cycle case, the circuit cannot be made balanced BISTable
  // without inserting a register (or using a CBILBO): design_bibs reports
  // that even converting everything fails.
  auto m = circuits::make_fig1();
  ensure_boundary_registers(m);
  EXPECT_THROW(design_bibs(m), DesignError);

  // Insert a transparent register on the direct F -> C wire (the Figure
  // 10(b) approach): both branches now have sequential length 1, the URFS
  // disappears, and boundary-only conversion suffices — no internal BILBO
  // at all.
  rtl::ConnId direct_wire = -1;
  for (const auto& c : m.connections())
    if (!c.is_register() && m.block(c.from).name == "F" &&
        m.block(c.to).name == "C")
      direct_wire = c.id;
  ASSERT_NE(direct_wire, -1);
  m.insert_register_on_wire(direct_wire, "Rw");
  EXPECT_TRUE(graph::check_balanced(m).balanced);
  const auto res = design_bibs(m);
  EXPECT_TRUE(res.report.ok);
  EXPECT_EQ(res.bilbo.size(), 2u);  // boundary registers only
  EXPECT_FALSE(res.bilbo.count(m.find_register("R")));
}

TEST(Designer, CyclesNeedingCbilbo) {
  // A cycle with a single register edge cannot be made balanced BISTable
  // without inserting hardware.
  rtl::Netlist n;
  const auto pi = n.add_input("x", 4);
  const auto c1 = n.add_comb("C1", "xor", 4);
  const auto c2 = n.add_comb("C2", "not", 4);
  const auto po = n.add_output("y", 4);
  n.connect_reg(pi, c1, "R1", 4);
  n.connect_wire(c1, c2, 4);
  n.connect_reg(c2, c1, "RF", 4);  // single-register cycle
  n.connect_reg(c1, po, "RO", 4);
  n.validate();
  const auto cycles = cycles_needing_cbilbo(n);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_THROW(design_bibs(n), DesignError);
}

TEST(Designer, GreedyMatchesExactOnSmallCircuits) {
  for (int i = 0; i < 3; ++i) {
    rtl::Netlist n = i == 0   ? circuits::make_fig4()
                     : i == 1 ? circuits::make_fig9()
                              : circuits::make_fir_datapath(4);
    BibsOptions exact, greedy;
    greedy.exact_search_limit = 0;  // force the greedy path
    const auto re = design_bibs(n, exact);
    const auto rg = design_bibs(n, greedy);
    EXPECT_TRUE(rg.report.ok);
    // Greedy may be suboptimal but never invalid, and not absurdly larger.
    EXPECT_LE(rg.bilbo.size(), re.bilbo.size() + 2);
    EXPECT_GE(rg.bilbo.size(), re.bilbo.size());
  }
}

TEST(Designer, FirDatapathIsBalancedByConstruction) {
  for (int taps : {2, 3, 4, 6, 8}) {
    const auto n = circuits::make_fir_datapath(taps);
    const auto res = design_bibs(n);
    EXPECT_TRUE(res.report.ok);
    // Boundary only: x, k1..kt, y.
    EXPECT_EQ(res.bilbo.size(), static_cast<std::size_t>(taps) + 2) << taps;
    EXPECT_EQ(res.report.nontrivial_kernel_count(), 1u);
  }
}

TEST(Report, EvaluateRejectsBrokenDesigns) {
  const auto n = circuits::make_fig4();
  EXPECT_THROW(evaluate_design(n, by_names(n, {"R1", "R6"})), DesignError);
}

TEST(Report, AreaOverheadScalesWithFfCount) {
  const auto n = circuits::make_c5a2m();
  const auto bibs = evaluate_design(n, design_bibs(n).bilbo);
  const auto ka = evaluate_design(n, design_ka85(n).bilbo);
  EXPECT_LT(bibs.area_overhead_ge, ka.area_overhead_ge);
  EXPECT_EQ(bibs.bilbo_ffs, 72);   // 9 x 8
  EXPECT_EQ(ka.bilbo_ffs, 120);    // 15 x 8
}

}  // namespace
}  // namespace bibs::core
