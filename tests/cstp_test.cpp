// Tests for the circular self-test path baseline and the optimal scheduler.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "core/designer.hpp"
#include "core/schedule.hpp"
#include "gate/synth.hpp"
#include "sim/cstp.hpp"
#include "sim/session.hpp"

namespace bibs {
namespace {

TEST(Cstp, DetectsFaultsOnASimpleKernel) {
  const auto n = circuits::make_fig2(4);
  const auto elab = gate::elaborate(n);
  sim::CstpSession cstp(elab.netlist);
  const auto faults = fault::FaultList::collapsed(elab.netlist);
  const auto rep = cstp.run(faults, 2000);
  EXPECT_EQ(rep.total_faults, faults.size());
  // The ring is generator and compactor at once and catches the bulk of the
  // faults; the remainder sit in the primary-input pads, which a pure CSTP
  // run leaves undriven (a real collar would include them in the ring) —
  // one more structural disadvantage versus the BIBS boundary BILBOs.
  EXPECT_GT(rep.detected_ideal * 10, faults.size() * 6);
  EXPECT_LE(rep.detected_by_signature, rep.detected_ideal);
}

TEST(Cstp, LongerRunsDetectAtLeastAsMuch) {
  const auto n = circuits::make_fig12a(4);
  const auto elab = gate::elaborate(n);
  sim::CstpSession cstp(elab.netlist);
  const auto faults = fault::FaultList::collapsed(elab.netlist);
  const auto brief = cstp.run(faults, 64);
  const auto longer = cstp.run(faults, 4096);
  EXPECT_GE(longer.detected_ideal, brief.detected_ideal);
}

TEST(Cstp, PatternCoverageNeedsACouponCollectorMultiple) {
  // The paper's CSTP contrast: exhausting the kernel input space costs a
  // multiple of 2^M cycles (T in [4,8]) where the BIBS TPG needs 2^M - 1.
  const auto n = circuits::make_fig12a(3);  // M = 9: fast to simulate
  const auto elab = gate::elaborate(n);
  const auto design = core::design_bibs(n);
  std::vector<gate::NetId> watch;
  for (const core::Kernel& k : design.report.kernels) {
    if (k.trivial) continue;
    for (rtl::ConnId e : k.input_regs)
      for (gate::NetId q : elab.reg_q.at(e)) watch.push_back(q);
  }
  ASSERT_EQ(watch.size(), 9u);
  sim::CstpSession cstp(elab.netlist);
  const std::int64_t full =
      cstp.cycles_to_cover(watch, 1ull << 9, 64ll << 9);
  ASSERT_GT(full, 0);
  EXPECT_GT(full, 2 * 512);   // well beyond one period...
  EXPECT_LT(full, 24 * 512);  // ...but a bounded multiple of it
  // Half coverage comes much sooner than the tail.
  const std::int64_t half = cstp.cycles_to_cover(watch, 256, 64ll << 9);
  EXPECT_LT(half * 3, full);
}

TEST(ScheduleOptimal, MatchesGreedyOnPaperCircuits) {
  for (int which = 0; which < 3; ++which) {
    const auto n = which == 0   ? circuits::make_c5a2m()
                   : which == 1 ? circuits::make_c3a2m()
                                : circuits::make_c4a4m();
    const auto ka = core::design_ka85(n);
    std::vector<core::Kernel> kernels;
    for (const core::Kernel& k : ka.report.kernels)
      if (!k.trivial) kernels.push_back(k);
    const auto greedy = core::schedule_sessions(n, kernels);
    const auto optimal = core::schedule_sessions_optimal(n, kernels);
    EXPECT_EQ(optimal.sessions, 2) << which;
    EXPECT_EQ(greedy.sessions, optimal.sessions) << which;
    // The optimal colouring is a valid schedule: conflicting kernels (those
    // sharing a register) never share a session.
    for (std::size_t a = 0; a < kernels.size(); ++a)
      for (std::size_t b = a + 1; b < kernels.size(); ++b) {
        bool share = false;
        for (rtl::ConnId e : kernels[a].input_regs)
          for (rtl::ConnId e2 : kernels[b].input_regs)
            if (e == e2) share = true;
        for (rtl::ConnId e : kernels[a].output_regs)
          for (rtl::ConnId e2 : kernels[b].input_regs)
            if (e == e2) share = true;
        for (rtl::ConnId e : kernels[a].input_regs)
          for (rtl::ConnId e2 : kernels[b].output_regs)
            if (e == e2) share = true;
        for (rtl::ConnId e : kernels[a].output_regs)
          for (rtl::ConnId e2 : kernels[b].output_regs)
            if (e == e2) share = true;
        if (share) {
          EXPECT_NE(optimal.session_of[a], optimal.session_of[b])
              << which << " kernels " << a << "," << b;
        }
      }
  }
}

TEST(ScheduleOptimal, EmptyAndSingleton) {
  const auto n = circuits::make_fig2();
  const auto res = core::design_bibs(n);
  std::vector<core::Kernel> kernels;
  for (const core::Kernel& k : res.report.kernels)
    if (!k.trivial) kernels.push_back(k);
  const auto s = core::schedule_sessions_optimal(n, kernels);
  EXPECT_EQ(s.sessions, 1);
  const auto empty = core::schedule_sessions_optimal(n, {});
  EXPECT_EQ(empty.sessions, 0);
}

}  // namespace
}  // namespace bibs
