// Tests for the SC_TPG / MC_TPG procedures, the functional-exhaustiveness
// checkers, register-order optimization, minimal test signals, and the
// reconfigurable TPG — each of the paper's Examples 2-8 appears here as an
// executable assertion.

#include <gtest/gtest.h>

#include <numeric>

#include "common/prng.hpp"
#include "tpg/design.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/optimize.hpp"

namespace bibs::tpg {
namespace {

GeneralizedStructure regs_with_depths(const std::vector<int>& widths,
                                      const std::vector<int>& depths) {
  std::vector<InputRegister> regs;
  for (std::size_t i = 0; i < widths.size(); ++i)
    regs.push_back({"R" + std::to_string(i + 1), widths[i]});
  return GeneralizedStructure::single_cone(std::move(regs), depths);
}

// ---------------------------------------------------------------- Example 2

TEST(ScTpg, Example2_DescendingDepths) {
  // Figure 13: three 4-bit registers, d = (2, 1, 0): a 12-stage LFSR with
  // 2 extra flip-flops; test time 2^12 - 1 + 2.
  const auto s = regs_with_depths({4, 4, 4}, {2, 1, 0});
  const TpgDesign d = sc_tpg(s);
  EXPECT_EQ(d.lfsr_stages, 12);
  EXPECT_EQ(d.min_label, 1);
  EXPECT_EQ(d.extra_ffs(), 2);
  EXPECT_EQ(d.physical_ffs(), 14);
  EXPECT_EQ(d.pattern_count(), 4095u);
  EXPECT_EQ(d.test_time(2), 4097u);
  // The paper's degree-12 polynomial.
  EXPECT_EQ(d.poly, lfsr::Gf2Poly::from_exponents({12, 7, 4, 3, 0}));
  // Register labels: R1 = 1..4, separator 5, R2 = 6..9, separator 10,
  // R3 = 11..14.
  EXPECT_EQ(d.cell_label[0], (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(d.cell_label[1], (std::vector<int>{6, 7, 8, 9}));
  EXPECT_EQ(d.cell_label[2], (std::vector<int>{11, 12, 13, 14}));
}

// ---------------------------------------------------------------- Example 3

TEST(ScTpg, Example3_NonDescendingDepths) {
  // Figure 15: d = (1, 2, 0). R2 shares stage L4 with R1's last cell; R2 and
  // R3 are separated by two flip-flops.
  const auto s = regs_with_depths({4, 4, 4}, {1, 2, 0});
  const TpgDesign d = sc_tpg(s);
  EXPECT_EQ(d.lfsr_stages, 12);
  EXPECT_EQ(d.cell_label[0], (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(d.cell_label[1], (std::vector<int>{4, 5, 6, 7}));  // shares L4
  EXPECT_EQ(d.cell_label[2], (std::vector<int>{10, 11, 12, 13}));
  // Physical FFs: 12 register cells + 2 separators = 14; the shared signal
  // L4 still uses two physical flip-flops (both carry live data in normal
  // mode, as the paper notes).
  EXPECT_EQ(d.physical_ffs(), 14);
}

// ---------------------------------------------------------------- Example 4

TEST(ScTpg, Example4_LargeNegativeDisplacement) {
  // Figure 16: two 4-bit registers with a displacement of -5; the LFSR's
  // first stage becomes L0 and the registers share only 3 stages.
  const auto s = regs_with_depths({4, 4}, {0, 5});
  const TpgDesign d = sc_tpg(s);
  EXPECT_EQ(d.lfsr_stages, 8);
  EXPECT_EQ(d.min_label, 0);
  EXPECT_EQ(d.cell_label[0], (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(d.cell_label[1], (std::vector<int>{0, 1, 2, 3}));
  // Shared LFSR stages: L1, L2, L3.
  int shared = 0;
  for (int l : d.cell_label[0])
    for (int l2 : d.cell_label[1])
      if (l == l2) ++shared;
  EXPECT_EQ(shared, 3);
}

// ---------------------------------------------------------------- Example 5

TEST(McTpg, Example5_TwoConeDisplacement) {
  // Figure 17: R1, R2 (4 bits each); cone O1 sees d = (2, 0), cone O2 sees
  // d = (1, 0). Displacement +2, and a 9-stage LFSR is needed even though
  // the maximal cone width is 8.
  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 1}, {1, 0}}}};
  const TpgDesign d = mc_tpg(s);
  EXPECT_EQ(d.cell_label[0], (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(d.cell_label[1], (std::vector<int>{7, 8, 9, 10}));  // +2 gap
  EXPECT_EQ(d.lfsr_stages, 9);
  EXPECT_EQ(s.max_cone_width(), 8);
}

// ---------------------------------------------------------------- Example 6

TEST(McTpg, Example6_ElevenStageLfsr) {
  // Figure 19: O1 sees (R1 d=2, R2 d=0); O2 sees (R1 d=0, R2 d=1).
  // Physical span of O2 is 10, logical span 11.
  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 0}, {1, 1}}}};
  const TpgDesign d = mc_tpg(s);
  EXPECT_EQ(d.lfsr_stages, 11);
  // Testing the two cones separately is much cheaper: ~2 * 2^8 << 2^11.
  const ReconfigurableTpg r = reconfigurable_tpg(s);
  ASSERT_EQ(r.sessions.size(), 2u);
  EXPECT_EQ(r.sessions[0].lfsr_stages, 8);
  EXPECT_EQ(r.sessions[1].lfsr_stages, 8);
  EXPECT_LT(r.total_test_time(), d.test_time(2));
}

// ---------------------------------------------------------------- Example 7

GeneralizedStructure example7() {
  // Figure 21: three 4-bit registers, three cones:
  //   O1 = {R1 d=2, R2 d=0}, O2 = {R1 d=0, R3 d=1}, O3 = {R2 d=1, R3 d=0}.
  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}, {"R3", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}},
             {"O2", {{0, 0}, {2, 1}}},
             {"O3", {{1, 1}, {2, 0}}}};
  return s;
}

TEST(McTpg, Example7_OriginalOrderNeeds16) {
  const TpgDesign d = mc_tpg(example7());
  EXPECT_EQ(d.lfsr_stages, 16);
}

TEST(McTpg, Example7_PermutedOrderNeeds8) {
  // Order (R1, R3, R2) reduces the LFSR to 8 stages, the 2^w lower bound.
  const GeneralizedStructure p = example7().permuted({0, 2, 1});
  const TpgDesign d = mc_tpg(p);
  EXPECT_EQ(d.lfsr_stages, 8);
}

TEST(Optimize, Example7_SearchFindsTheLowerBound) {
  const OrderResult r = optimize_register_order(example7());
  EXPECT_EQ(r.design.lfsr_stages, 8);
  EXPECT_TRUE(r.optimal);
  // Test time drops from ~2^16 to ~2^8.
  EXPECT_EQ(r.design.pattern_count(), 255u);
}

// ---------------------------------------------------------------- Example 8

TEST(MinTestSignals, Example8_NeedsThreeSignals) {
  // The dependency matrix of Figure 21 is a triangle: every pair of
  // registers shares a cone, so 3 test signals (12 LFSR stages) are needed —
  // strictly worse than the 8 stages MC_TPG + permutation achieves, because
  // the signal procedure cannot exploit sequential-length information.
  const TestSignalResult r = min_test_signals(example7());
  EXPECT_EQ(r.signals, 3);
  EXPECT_EQ(r.lfsr_stages, 12);
  const OrderResult best = optimize_register_order(example7());
  EXPECT_LT(best.design.lfsr_stages, r.lfsr_stages);
}

TEST(MinTestSignals, DisjointConesShareSignals) {
  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}, {"R3", 4}, {"R4", 4}};
  s.cones = {{"O1", {{0, 0}, {1, 0}}}, {"O2", {{2, 0}, {3, 0}}}};
  const TestSignalResult r = min_test_signals(s);
  EXPECT_EQ(r.signals, 2);
  EXPECT_EQ(r.lfsr_stages, 8);
  // R1/R3 may share, R1/R2 may not.
  EXPECT_NE(r.signal_of_reg[0], r.signal_of_reg[1]);
  EXPECT_NE(r.signal_of_reg[2], r.signal_of_reg[3]);
}

// --------------------------------------------------- exhaustiveness checks

TEST(Exhaustive, SimConfirmsTheorem4OnExample2) {
  const auto s = regs_with_depths({4, 4, 4}, {2, 1, 0});
  const auto rep = check_exhaustive_sim(sc_tpg(s));
  ASSERT_EQ(rep.cones.size(), 1u);
  EXPECT_TRUE(rep.all_exhaustive);
  EXPECT_EQ(rep.cones[0].patterns, (1u << 12) - 1);
}

TEST(Exhaustive, SimConfirmsExample3) {
  EXPECT_TRUE(
      check_exhaustive_sim(sc_tpg(regs_with_depths({4, 4, 4}, {1, 2, 0})))
          .all_exhaustive);
}

TEST(Exhaustive, SimConfirmsExample4) {
  EXPECT_TRUE(check_exhaustive_sim(sc_tpg(regs_with_depths({4, 4}, {0, 5})))
                  .all_exhaustive);
}

TEST(Exhaustive, SimConfirmsExample5BothCones) {
  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 1}, {1, 0}}}};
  const auto rep = check_exhaustive_sim(mc_tpg(s));
  ASSERT_EQ(rep.cones.size(), 2u);
  EXPECT_TRUE(rep.cones[0].exhaustive);
  EXPECT_TRUE(rep.cones[1].exhaustive);
}

TEST(Exhaustive, SimConfirmsExample7PermutedDesign) {
  const GeneralizedStructure p = example7().permuted({0, 2, 1});
  const auto rep = check_exhaustive_sim(mc_tpg(p));
  EXPECT_TRUE(rep.all_exhaustive);
  for (const auto& c : rep.cones) EXPECT_EQ(c.patterns, 255u);
}

TEST(Exhaustive, NaiveConcatenationFailsWhereTpgSucceeds) {
  // The motivating example of Section 4: concatenating the registers into
  // one LFSR *without* displacement compensation does not exhaust the cone
  // inputs when sequential lengths differ. Model it as a TPG whose labels
  // ignore the depths.
  const auto s = regs_with_depths({4, 4, 4}, {2, 1, 0});
  TpgDesign naive;
  naive.structure = s;
  naive.min_label = 1;
  naive.lfsr_stages = 12;
  naive.poly = lfsr::primitive_polynomial(12);
  naive.cell_label = {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}};
  for (int i = 0; i < 12; ++i) naive.slots.push_back({i + 1, i / 4, i % 4});
  EXPECT_FALSE(check_exhaustive_sim(naive).all_exhaustive);
  EXPECT_FALSE(check_exhaustive_rank(naive).all_exhaustive);
}

TEST(Exhaustive, RankAgreesWithSimOnPaperExamples) {
  std::vector<TpgDesign> designs;
  designs.push_back(sc_tpg(regs_with_depths({4, 4, 4}, {2, 1, 0})));
  designs.push_back(sc_tpg(regs_with_depths({4, 4, 4}, {1, 2, 0})));
  designs.push_back(sc_tpg(regs_with_depths({4, 4}, {0, 5})));
  designs.push_back(mc_tpg(example7()));
  designs.push_back(mc_tpg(example7().permuted({0, 2, 1})));
  for (const TpgDesign& d : designs) {
    if (d.lfsr_stages > 20) continue;
    const auto sim_rep = check_exhaustive_sim(d);
    const auto rank_rep = check_exhaustive_rank(d);
    ASSERT_EQ(sim_rep.cones.size(), rank_rep.cones.size());
    for (std::size_t i = 0; i < sim_rep.cones.size(); ++i)
      EXPECT_EQ(sim_rep.cones[i].exhaustive, rank_rep.cones[i].exhaustive)
          << "cone " << i;
  }
}

TEST(Exhaustive, RankMatchesSimOnRandomStructures) {
  // Property sweep: random widths/depths, single and double cone. The
  // algebraic check must agree with brute-force simulation everywhere.
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const int nregs = 2 + static_cast<int>(rng.next_below(2));
    GeneralizedStructure s;
    for (int i = 0; i < nregs; ++i)
      s.registers.push_back(
          {"R" + std::to_string(i),
           2 + static_cast<int>(rng.next_below(3))});
    const int ncones = 1 + static_cast<int>(rng.next_below(2));
    for (int c = 0; c < ncones; ++c) {
      Cone cone;
      cone.name = "O" + std::to_string(c);
      for (int i = 0; i < nregs; ++i)
        if (c == 0 || rng.next_below(2))
          cone.deps.push_back(
              {i, static_cast<int>(rng.next_below(4))});
      if (cone.deps.empty()) cone.deps.push_back({0, 0});
      s.cones.push_back(cone);
    }
    TpgDesign d = mc_tpg(s);
    if (d.lfsr_stages > 18) continue;
    const auto sim_rep = check_exhaustive_sim(d);
    const auto rank_rep = check_exhaustive_rank(d);
    EXPECT_TRUE(sim_rep.all_exhaustive) << "trial " << trial;
    for (std::size_t i = 0; i < sim_rep.cones.size(); ++i)
      EXPECT_EQ(sim_rep.cones[i].exhaustive, rank_rep.cones[i].exhaustive)
          << "trial " << trial << " cone " << i;
  }
}

TEST(Exhaustive, CompleteLfsrCoversAllZero) {
  const auto s = regs_with_depths({3, 3}, {1, 0});
  const TpgDesign d = sc_tpg(s);
  const auto rep = check_exhaustive_sim(d, /*complete_lfsr=*/true);
  ASSERT_EQ(rep.cones.size(), 1u);
  EXPECT_EQ(rep.cones[0].patterns, 1u << 6);  // includes the all-0 pattern
  EXPECT_TRUE(rep.all_exhaustive);
}

TEST(Exhaustive, SimRejectsHugeLfsrs) {
  const auto s = regs_with_depths({16, 16}, {1, 0});
  EXPECT_THROW((void)check_exhaustive_sim(sc_tpg(s)), DesignError);
  // The rank check handles the same design fine.
  EXPECT_TRUE(check_exhaustive_rank(sc_tpg(s)).all_exhaustive);
}

TEST(Exhaustive, RankHandlesDegree32Designs) {
  const auto s = regs_with_depths({8, 8, 8, 8}, {3, 2, 1, 0});
  const TpgDesign d = sc_tpg(s);
  EXPECT_EQ(d.lfsr_stages, 32);
  EXPECT_TRUE(check_exhaustive_rank(d).all_exhaustive);
}

// ------------------------------------------------------------- procedures

TEST(ScTpg, RejectsMultiConeStructures) {
  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}};
  s.cones = {{"O1", {{0, 0}}}, {"O2", {{1, 0}}}};
  EXPECT_THROW(sc_tpg(s), DesignError);
}

TEST(ScTpg, EqualDepthsNeedNoExtraFfs) {
  // The balanced-filter case: all registers at the same depth concatenate
  // directly into one LFSR.
  const auto s = regs_with_depths({8, 8, 8}, {4, 4, 4});
  const TpgDesign d = sc_tpg(s);
  EXPECT_EQ(d.extra_ffs(), 0);
  EXPECT_EQ(d.lfsr_stages, 24);
}

TEST(ScTpg, SingleRegisterDegenerate) {
  const auto s = regs_with_depths({6}, {3});
  const TpgDesign d = sc_tpg(s);
  EXPECT_EQ(d.lfsr_stages, 6);
  EXPECT_EQ(d.extra_ffs(), 0);
  EXPECT_TRUE(check_exhaustive_sim(d).all_exhaustive);
}

TEST(ScTpg, ExtraFfsEqualDepthSpreadForDescendingOrder) {
  // For descending d, extra FFs = d_1 - d_n (the paper's formula).
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(3));
    std::vector<int> widths, depths;
    for (int i = 0; i < n; ++i)
      widths.push_back(1 + static_cast<int>(rng.next_below(4)));
    depths.resize(static_cast<std::size_t>(n));
    int cur = static_cast<int>(rng.next_below(3));
    for (int i = n - 1; i >= 0; --i) {
      depths[static_cast<std::size_t>(i)] = cur;
      cur += static_cast<int>(rng.next_below(3));
    }
    const auto s = regs_with_depths(widths, depths);
    const TpgDesign d = sc_tpg(s);
    EXPECT_EQ(d.extra_ffs(), depths.front() - depths.back()) << trial;
    EXPECT_EQ(d.lfsr_stages, std::accumulate(widths.begin(), widths.end(), 0));
  }
}

TEST(McTpg, TheoremSevenSpanIsSufficientEverywhere) {
  // Property: for every random structure, every cone's offsets fit within
  // the chosen LFSR degree (u_p - l_1 + 1 + d-span <= M).
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int nregs = 2 + static_cast<int>(rng.next_below(3));
    GeneralizedStructure s;
    for (int i = 0; i < nregs; ++i)
      s.registers.push_back(
          {"R" + std::to_string(i), 1 + static_cast<int>(rng.next_below(4))});
    const int ncones = 1 + static_cast<int>(rng.next_below(3));
    for (int c = 0; c < ncones; ++c) {
      Cone cone;
      cone.name = "O" + std::to_string(c);
      for (int i = 0; i < nregs; ++i)
        if (rng.next_below(2))
          cone.deps.push_back({i, static_cast<int>(rng.next_below(5))});
      if (cone.deps.empty())
        cone.deps.push_back({static_cast<int>(rng.next_below(
                                 static_cast<std::uint64_t>(nregs))),
                             0});
      s.cones.push_back(cone);
    }
    const TpgDesign d = mc_tpg(s);
    EXPECT_TRUE(check_exhaustive_rank(d).all_exhaustive) << "trial " << trial;
  }
}

TEST(Optimize, RejectsTooManyRegisters) {
  GeneralizedStructure s;
  Cone cone{"O", {}};
  for (int i = 0; i < 10; ++i) {
    s.registers.push_back({"R" + std::to_string(i), 2});
    cone.deps.push_back({i, 0});
  }
  s.cones.push_back(cone);
  EXPECT_THROW(optimize_register_order(s), DesignError);
}

TEST(Structure, PermutedPreservesSemantics) {
  const GeneralizedStructure s = example7();
  const GeneralizedStructure p = s.permuted({2, 0, 1});
  EXPECT_EQ(p.registers[0].name, "R3");
  EXPECT_EQ(p.registers[1].name, "R1");
  // O2 = {R1 d=0, R3 d=1} must become {new0(R3) d=1, new1(R1) d=0}.
  const Cone& o2 = p.cones[1];
  ASSERT_EQ(o2.deps.size(), 2u);
  EXPECT_EQ(o2.deps[0].reg, 0);
  EXPECT_EQ(o2.deps[0].d, 1);
  EXPECT_EQ(o2.deps[1].reg, 1);
  EXPECT_EQ(o2.deps[1].d, 0);
}

TEST(Structure, ValidationCatchesBadDeps) {
  GeneralizedStructure s;
  s.registers = {{"R1", 4}};
  s.cones = {{"O", {{2, 0}}}};
  EXPECT_THROW(s.validate(), DesignError);
  s.cones = {{"O", {{0, -1}}}};
  EXPECT_THROW(s.validate(), DesignError);
  s.cones = {{"O", {}}};
  EXPECT_THROW(s.validate(), DesignError);
}

TEST(Design, DescribeRendersLabels) {
  const TpgDesign d = sc_tpg(regs_with_depths({4, 4, 4}, {1, 2, 0}));
  const std::string pic = d.describe();
  EXPECT_NE(pic.find("R1.1"), std::string::npos);
  EXPECT_NE(pic.find("[L4]"), std::string::npos);
  EXPECT_NE(pic.find("degree 12"), std::string::npos);
}

}  // namespace
}  // namespace bibs::tpg
