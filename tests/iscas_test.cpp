// Type-2 LFSR properties plus the full flow on the committed ISCAS-85 suite
// (data/iscas85/): every benchmark loads and validates with its canonical
// structure, and c17/c432 run through fault simulation, PODEM, and the
// transition model.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fault/atpg.hpp"
#include "fault/simulator.hpp"
#include "gate/bench_format.hpp"
#include "lfsr/lfsr.hpp"

namespace bibs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

gate::Netlist load_iscas(const std::string& name) {
  return gate::parse_bench(read_file(std::string(BIBS_SOURCE_DIR) +
                                     "/data/iscas85/" + name + ".bench"));
}

class Type2Period : public ::testing::TestWithParam<int> {};

TEST_P(Type2Period, MaximalLength) {
  const int deg = GetParam();
  lfsr::Type2Lfsr l(lfsr::primitive_polynomial(deg));
  EXPECT_EQ(l.measure_period(1ull << (deg + 1)), (1ull << deg) - 1);
}

INSTANTIATE_TEST_SUITE_P(Degrees, Type2Period,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12, 16));

TEST(Type2Lfsr, VisitsEveryNonzeroState) {
  lfsr::Type2Lfsr l(lfsr::primitive_polynomial(8));
  std::set<std::string> seen;
  for (int t = 0; t < 255; ++t) {
    EXPECT_TRUE(seen.insert(l.state().to_string()).second);
    EXPECT_TRUE(l.state().any());
    l.step();
  }
  EXPECT_EQ(seen.size(), 255u);
}

TEST(Type2Lfsr, OutputSequenceHasMseqBalance) {
  // One period of any maximal LFSR emits 2^(n-1) ones and 2^(n-1)-1 zeros.
  lfsr::Type2Lfsr l(lfsr::primitive_polynomial(10));
  int ones = 0;
  for (int t = 0; t < 1023; ++t) ones += l.step();
  EXPECT_EQ(ones, 512);
}

TEST(Iscas, SuiteLoadsWithCanonicalStructure) {
  // name, primary inputs, primary outputs, gates — as committed under
  // data/iscas85/ (see data/iscas85/README.md for provenance).
  struct Row {
    const char* name;
    std::size_t inputs, outputs, gates;
  };
  const Row suite[] = {
      {"c17", 5, 2, 6},        {"c432", 36, 7, 136},
      {"c499", 41, 32, 364},   {"c880", 60, 26, 225},
      {"c1355", 41, 32, 664},  {"c1908", 33, 25, 404},
      {"c2670", 233, 140, 760}, {"c3540", 50, 22, 367},
      {"c5315", 178, 123, 752}, {"c6288", 32, 32, 2832},
      {"c7552", 207, 108, 1260},
  };
  for (const Row& row : suite) {
    const gate::Netlist nl = load_iscas(row.name);
    EXPECT_EQ(nl.inputs().size(), row.inputs) << row.name;
    EXPECT_EQ(nl.outputs().size(), row.outputs) << row.name;
    EXPECT_EQ(nl.gate_count(), row.gates) << row.name;
  }
}

TEST(Iscas, C17IsFullyTestable) {
  // The canonical result: c17 has no redundant faults.
  const gate::Netlist nl = load_iscas("c17");
  fault::FaultSimulator sim(nl, fault::FaultList::collapsed(nl));
  EXPECT_DOUBLE_EQ(sim.run_exhaustive().coverage(), 1.0);
}

TEST(Iscas, C17PodemMatchesExhaustive) {
  const gate::Netlist nl = load_iscas("c17");
  const fault::FaultList faults = fault::FaultList::full(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto truth = sim.run_exhaustive();
  fault::Podem atpg(nl);
  const auto summary = atpg.classify(faults);
  EXPECT_EQ(summary.aborted, 0u);
  EXPECT_EQ(summary.detected, truth.detected_count());
}

TEST(Iscas, C17RandomPatternsSaturateFast) {
  const gate::Netlist nl = load_iscas("c17");
  fault::FaultSimulator sim(nl, fault::FaultList::collapsed(nl));
  Xoshiro256 rng(5);
  const auto curve = sim.run_random(rng, 10000, 2000);
  EXPECT_DOUBLE_EQ(curve.coverage(), 1.0);
  EXPECT_LT(curve.patterns_for_fraction(1.0), 64);
}

TEST(Iscas, C432CoverageUnderBothFaultModels) {
  // c432 is the first real benchmark of the corpus sweep: random patterns
  // reach high (but not complete) stuck-at coverage, and the transition
  // model tracks it from below-or-nearby since every detection additionally
  // needs a launch edge.
  const gate::Netlist nl = load_iscas("c432");
  fault::FaultSimulator sa(nl, fault::FaultList::collapsed(nl));
  Xoshiro256 rng_a(7);
  const auto sa_curve = sa.run_random(rng_a, 2048);
  EXPECT_GT(sa_curve.coverage(), 0.85);

  fault::FaultSimulator tr(nl, fault::FaultList::transition(nl),
                           fault::EvalBackend::kCompiled,
                           fault::FaultModel::kTransition);
  Xoshiro256 rng_b(7);
  const auto tr_curve = tr.run_random(rng_b, 2048);
  EXPECT_GT(tr_curve.coverage(), 0.85);
  EXPECT_LT(tr_curve.coverage(), 1.0);
}

}  // namespace
}  // namespace bibs
