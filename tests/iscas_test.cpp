// Type-2 LFSR properties plus the full flow on a real ISCAS-85 benchmark
// (c17) loaded from data/c17.bench: fault simulation, PODEM, and agreement
// between the two.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fault/atpg.hpp"
#include "fault/simulator.hpp"
#include "gate/bench_format.hpp"
#include "lfsr/lfsr.hpp"

namespace bibs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class Type2Period : public ::testing::TestWithParam<int> {};

TEST_P(Type2Period, MaximalLength) {
  const int deg = GetParam();
  lfsr::Type2Lfsr l(lfsr::primitive_polynomial(deg));
  EXPECT_EQ(l.measure_period(1ull << (deg + 1)), (1ull << deg) - 1);
}

INSTANTIATE_TEST_SUITE_P(Degrees, Type2Period,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12, 16));

TEST(Type2Lfsr, VisitsEveryNonzeroState) {
  lfsr::Type2Lfsr l(lfsr::primitive_polynomial(8));
  std::set<std::string> seen;
  for (int t = 0; t < 255; ++t) {
    EXPECT_TRUE(seen.insert(l.state().to_string()).second);
    EXPECT_TRUE(l.state().any());
    l.step();
  }
  EXPECT_EQ(seen.size(), 255u);
}

TEST(Type2Lfsr, OutputSequenceHasMseqBalance) {
  // One period of any maximal LFSR emits 2^(n-1) ones and 2^(n-1)-1 zeros.
  lfsr::Type2Lfsr l(lfsr::primitive_polynomial(10));
  int ones = 0;
  for (int t = 0; t < 1023; ++t) ones += l.step();
  EXPECT_EQ(ones, 512);
}

TEST(Iscas, C17LoadsAndValidates) {
  const gate::Netlist nl = gate::parse_bench(read_file(std::string(BIBS_SOURCE_DIR) + "/data/c17.bench"));
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 6u);
}

TEST(Iscas, C17IsFullyTestable) {
  // The canonical result: c17 has no redundant faults.
  const gate::Netlist nl = gate::parse_bench(read_file(std::string(BIBS_SOURCE_DIR) + "/data/c17.bench"));
  fault::FaultSimulator sim(nl, fault::FaultList::collapsed(nl));
  EXPECT_DOUBLE_EQ(sim.run_exhaustive().coverage(), 1.0);
}

TEST(Iscas, C17PodemMatchesExhaustive) {
  const gate::Netlist nl = gate::parse_bench(read_file(std::string(BIBS_SOURCE_DIR) + "/data/c17.bench"));
  const fault::FaultList faults = fault::FaultList::full(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto truth = sim.run_exhaustive();
  fault::Podem atpg(nl);
  const auto summary = atpg.classify(faults);
  EXPECT_EQ(summary.aborted, 0u);
  EXPECT_EQ(summary.detected, truth.detected_count());
}

TEST(Iscas, C17RandomPatternsSaturateFast) {
  const gate::Netlist nl = gate::parse_bench(read_file(std::string(BIBS_SOURCE_DIR) + "/data/c17.bench"));
  fault::FaultSimulator sim(nl, fault::FaultList::collapsed(nl));
  Xoshiro256 rng(5);
  const auto curve = sim.run_random(rng, 10000, 2000);
  EXPECT_DOUBLE_EQ(curve.coverage(), 1.0);
  EXPECT_LT(curve.patterns_for_fraction(1.0), 64);
}

}  // namespace
}  // namespace bibs
