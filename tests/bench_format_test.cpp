// Tests for the ISCAS-89 .bench reader/writer.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "fault/simulator.hpp"
#include "gate/bench_format.hpp"
#include "gate/sim.hpp"
#include "gate/synth.hpp"

namespace bibs::gate {
namespace {

const char* kS27ish = R"(
# a small sequential example in ISCAS-89 style
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NAND(G0, G5)
G11 = OR(G1, G6)
G16 = XOR(G10, G11)
G17 = NOT(G16)
)";

TEST(BenchFormat, ParsesSequentialNetlist) {
  const Netlist nl = parse_bench(kS27ish);
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 4u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(BenchFormat, ForwardReferencesResolve) {
  // G10 is referenced by the DFF before its defining line: must still work.
  const Netlist nl = parse_bench(kS27ish);
  // DFF G5's D must be the NAND gate.
  for (NetId d : nl.dffs()) {
    const Gate& g = nl.gate(d);
    ASSERT_EQ(g.fanin.size(), 1u);
    const GateType t = nl.gate(g.fanin[0]).type;
    EXPECT_TRUE(t == GateType::kNand || t == GateType::kOr);
  }
}

TEST(BenchFormat, RoundTripSmall) {
  const Netlist a = parse_bench(kS27ish);
  const Netlist b = parse_bench(to_bench(a));
  EXPECT_EQ(a.net_count(), b.net_count());
  EXPECT_EQ(a.gate_count(), b.gate_count());
  EXPECT_EQ(a.dffs().size(), b.dffs().size());
  EXPECT_EQ(to_bench(a), to_bench(b));
}

TEST(BenchFormat, RoundTripPreservesFunction) {
  // Export an adder, re-import, and check both netlists compute identically.
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  Bus s = ripple_adder(nl, a, b, true);
  for (NetId o : s) nl.mark_output(o);

  const Netlist back = parse_bench(to_bench(nl));
  Simulator sim(back);
  Bus a2(back.inputs().begin(), back.inputs().begin() + 4);
  Bus b2(back.inputs().begin() + 4, back.inputs().end());
  Bus s2(back.outputs().begin(), back.outputs().end());
  for (std::uint64_t x = 0; x < 16; ++x)
    for (std::uint64_t y = 0; y < 16; ++y) {
      sim.set_bus(a2, x);
      sim.set_bus(b2, y);
      sim.eval();
      EXPECT_EQ(sim.bus_value(s2, 0), x + y);
    }
}

TEST(BenchFormat, RoundTripElaboratedDatapath) {
  const auto n = circuits::make_c3a2m();
  const auto elab = elaborate(n);
  const std::string text = to_bench(elab.netlist);
  const Netlist back = parse_bench(text);
  EXPECT_EQ(back.gate_count(), elab.netlist.gate_count());
  EXPECT_EQ(back.dffs().size(), elab.netlist.dffs().size());
  EXPECT_EQ(back.inputs().size(), elab.netlist.inputs().size());
}

TEST(BenchFormat, ImportedCircuitFaultSimulates) {
  // The full flow a downstream user wants: read .bench, fault-simulate.
  const char* comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
u = AND(a, b)
v = NOT(c)
y = OR(u, v)
)";
  const Netlist nl = parse_bench(comb);
  fault::FaultSimulator sim(nl, fault::FaultList::collapsed(nl));
  EXPECT_DOUBLE_EQ(sim.run_exhaustive().coverage(), 1.0);
}

TEST(BenchFormat, Errors) {
  EXPECT_THROW(parse_bench("WIBBLE(a)\n"), ParseError);
  EXPECT_THROW(parse_bench("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n"), ParseError);
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(z)\n"), ParseError);
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(q)\n"), ParseError);
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)\n"),
               ParseError);
  // Combinational loop.
  EXPECT_THROW(
      parse_bench("INPUT(a)\nOUTPUT(y)\nu = AND(a, y)\ny = NOT(u)\n"),
      ParseError);
}

TEST(BenchFormat, CaseInsensitiveKeywords) {
  const Netlist nl = parse_bench(
      "input(a)\noutput(y)\ny = nand(a, a)\n");
  EXPECT_EQ(nl.gate_count(), 1u);
}

}  // namespace
}  // namespace bibs::gate
