// Tests for the observability layer: metrics registry (including concurrent
// counter updates and histogram bucket boundaries), the JSON value type, the
// Chrome trace writer (the emitted file is parsed back), run reports, and
// the FaultSimulator progress-callback hook.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "fault/fault.hpp"
#include "fault/simulator.hpp"
#include "gate/netlist.hpp"
#include "obs/obs.hpp"

namespace bibs::obs {
namespace {

std::string temp_path(const std::string& stem) {
  return std::string(::testing::TempDir()) + stem;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Counter, ConcurrentIncrementsDoNotLoseUpdates) {
  Counter& c = Registry::global().counter("test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, HandlesAreStableAndNamed) {
  Counter& a = Registry::global().counter("test.stable");
  Counter& b = Registry::global().counter("test.stable");
  EXPECT_EQ(&a, &b);  // same name, same handle
  a.reset();
  a.add(3);
  const auto snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& [name, v] : snap.counters)
    if (name == "test.stable") {
      found = true;
      EXPECT_EQ(v, 3u);
    }
  EXPECT_TRUE(found);
}

TEST(Histogram, BucketBoundariesAreUpperInclusive) {
  Histogram h(std::vector<double>{1, 2, 4});
  // Bucket layout: (-inf,1] (1,2] (2,4] (4,inf).
  h.observe(0.5);
  h.observe(1.0);  // exactly on a bound -> that bucket
  h.observe(1.5);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(5.0);
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(s.counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(s.counts[2], 1u);  // 4.0
  EXPECT_EQ(s.counts[3], 1u);  // 5.0 overflow
  EXPECT_EQ(s.total, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0);
}

TEST(Histogram, ExponentialBoundsAndValidation) {
  const auto b = Histogram::exponential_bounds(1, 2, 4);
  EXPECT_EQ(b, (std::vector<double>{1, 2, 4, 8}));
  EXPECT_THROW(Histogram(std::vector<double>{}), InternalError);
  EXPECT_THROW(Histogram(std::vector<double>{2, 1}), InternalError);
}

TEST(Json, RoundTripsValues) {
  Json root = Json::object();
  root["int"] = Json(42);
  root["neg"] = Json(-7.5);
  root["str"] = Json("he said \"hi\"\n");
  root["flag"] = Json(true);
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json(nullptr));
  root["arr"] = std::move(arr);

  const Json back = Json::parse(root.dump());
  EXPECT_DOUBLE_EQ(back.find("int")->number(), 42.0);
  EXPECT_DOUBLE_EQ(back.find("neg")->number(), -7.5);
  EXPECT_EQ(back.find("str")->str(), "he said \"hi\"\n");
  EXPECT_TRUE(back.find("flag")->boolean());
  ASSERT_EQ(back.find("arr")->size(), 2u);
  EXPECT_TRUE(back.find("arr")->items()[1].is_null());
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1, 2,]123"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\": tru}"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
}

TEST(Trace, EmittedFileIsWellFormedChromeTrace) {
  const std::string path = temp_path("bibs_trace_test.json");
  TraceWriter& w = TraceWriter::instance();
  w.enable(path);
  {
    Span outer("outer_phase");
    Span inner("inner_phase");
  }
  w.instant_event("marker", "test");
  ASSERT_TRUE(w.flush());
  w.disable();

  const Json doc = Json::parse(slurp(path));
  ASSERT_TRUE(doc.is_object());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->size(), 3u);

  bool saw_outer = false, saw_marker = false;
  for (const Json& e : events->items()) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    const std::string& ph = e.find("ph")->str();
    if (ph == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->number(), 0.0);
    }
    if (e.find("name")->str() == "outer_phase") saw_outer = true;
    if (e.find("name")->str() == "marker") saw_marker = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_marker);
  std::remove(path.c_str());
}

TEST(Trace, SpansFeedPhaseWallTimeMetrics) {
  { Span s("test.timed_phase"); }
  { Span s("test.timed_phase"); }
  PhaseStat& p = Registry::global().phase("test.timed_phase");
  EXPECT_GE(p.calls(), 2u);
}

TEST(Report, SerializesAndParsesBack) {
  Registry::global().counter("test.report_counter").add(5);
  Registry::global().gauge("test.report_gauge").set(0.75);

  const std::string path = temp_path("bibs_report_test.json");
  ASSERT_TRUE(write_report(path));
  const Json doc = Json::parse(slurp(path));
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("bibs_report_version")->number(), 1.0);
  ASSERT_NE(doc.find("git_describe"), nullptr);
  EXPECT_FALSE(doc.find("git_describe")->str().empty());
  EXPECT_GE(doc.find("wall_time_ms")->number(), 0.0);
  ASSERT_NE(doc.find("counters"), nullptr);
  const Json* c = doc.find("counters")->find("test.report_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number(), 5.0);
  const Json* g = doc.find("gauges")->find("test.report_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->number(), 0.75);
  ASSERT_NE(doc.find("phases"), nullptr);
  ASSERT_NE(doc.find("histograms"), nullptr);
  std::remove(path.c_str());
}

/// y = (a & b) | ~c: three inputs, easy to cover with random patterns.
gate::Netlist tiny() {
  gate::Netlist nl;
  const gate::NetId a = nl.add_input("a");
  const gate::NetId b = nl.add_input("b");
  const gate::NetId c = nl.add_input("c");
  const gate::NetId ab = nl.add_gate(gate::GateType::kAnd, {a, b}, "ab");
  const gate::NetId nc = nl.add_gate(gate::GateType::kNot, {c}, "nc");
  const gate::NetId y = nl.add_gate(gate::GateType::kOr, {ab, nc}, "y");
  nl.mark_output(y, "y");
  return nl;
}

TEST(ProgressHook, FaultSimulatorReportsMonotonicProgress) {
  const gate::Netlist nl = tiny();
  fault::FaultSimulator sim(nl, fault::FaultList::collapsed(nl));

  std::vector<Progress> seen;
  sim.set_progress([&](const Progress& p) { seen.push_back(p); },
                   /*every_patterns=*/64);
  Xoshiro256 rng(42);
  const auto curve = sim.run_random(rng, 64 * 8);

  ASSERT_FALSE(seen.empty());  // at least the end-of-run event
  std::int64_t prev_done = 0;
  for (const Progress& p : seen) {
    EXPECT_STREQ(p.phase, "fault_sim");
    EXPECT_GE(p.done, prev_done);
    prev_done = p.done;
    EXPECT_GE(p.coverage, 0.0);
    EXPECT_LE(p.coverage, 1.0);
    EXPECT_GE(p.faults_detected, 0);
    EXPECT_EQ(p.faults_live + p.faults_detected,
              static_cast<std::int64_t>(curve.total_faults()));
  }
  const Progress& last = seen.back();
  EXPECT_EQ(last.done, curve.patterns_run);
  EXPECT_DOUBLE_EQ(last.coverage, curve.coverage());
}

TEST(ProgressHook, StderrRendererAndEnvGateDoNotCrash) {
  const ProgressFn fn = stderr_progress();
  Progress p;
  p.phase = "test";
  p.done = 10;
  p.total = 100;
  p.coverage = 0.5;
  fn(p);  // smoke: renders to stderr without crashing
  std::fprintf(stderr, "\n");
}

}  // namespace
}  // namespace bibs::obs
