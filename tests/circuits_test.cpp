// Tests pinning down the structural properties the paper states for each
// reconstructed figure and data path (register counts, widths, functions).

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "graph/analysis.hpp"

namespace bibs::circuits {
namespace {

TEST(Fig1, TwoBranchesOfDifferentLength) {
  const auto n = make_fig1();
  EXPECT_EQ(n.register_edges().size(), 2u);  // R and the PO register
  EXPECT_FALSE(graph::check_balanced(n).balanced);
}

TEST(Fig3, StructureMatchesSection31) {
  const auto n = make_fig3();
  // One fanout vertex, one vacuous vertex, blocks A..H.
  int fanouts = 0, vacuous = 0, combs = 0;
  for (const auto& b : n.blocks()) {
    fanouts += b.kind == rtl::BlockKind::kFanout;
    vacuous += b.kind == rtl::BlockKind::kVacuous;
    combs += b.kind == rtl::BlockKind::kComb;
  }
  EXPECT_EQ(fanouts, 1);
  EXPECT_EQ(vacuous, 1);
  EXPECT_EQ(combs, 8);  // A..H
  // D has two input ports (called out in the text).
  EXPECT_EQ(n.fanin(n.find_block("D")).size(), 2u);
  // The URFS from the text: FO1 to H via A-D (1 reg) and via C-E-G (2 regs).
  graph::EdgeSet cycle{n.find_register("R5"), n.find_register("R6")};
  const auto urfs = graph::find_all_urfs(n, cycle);
  EXPECT_FALSE(urfs.empty());
}

TEST(Fig4, NineRegisters) {
  const auto n = make_fig4();
  EXPECT_EQ(n.register_edges().size(), 9u);
  for (int i = 1; i <= 9; ++i)
    EXPECT_NE(n.find_register("R" + std::to_string(i)), -1) << i;
}

TEST(Fig9, RegisterWidthTotalsMatchThePaper) {
  const auto n = make_fig9();
  EXPECT_EQ(n.register_edges().size(), 10u);
  EXPECT_EQ(n.total_register_bits(), 52);
}

TEST(Datapaths, RegisterCountsMatchTable2Derivation) {
  EXPECT_EQ(make_c5a2m().register_edges().size(), 15u);
  EXPECT_EQ(make_c3a2m().register_edges().size(), 21u);
  EXPECT_EQ(make_c4a4m().register_edges().size(), 20u);
}

TEST(Datapaths, BlockInventoryMatchesTable1) {
  auto count_op = [](const rtl::Netlist& n, const std::string& op) {
    int c = 0;
    for (const auto& b : n.blocks())
      if (b.kind == rtl::BlockKind::kComb && b.op == op) ++c;
    return c;
  };
  const auto c5 = make_c5a2m();
  EXPECT_EQ(count_op(c5, "add"), 5);
  EXPECT_EQ(count_op(c5, "mul"), 2);
  const auto c3 = make_c3a2m();
  EXPECT_EQ(count_op(c3, "add"), 3);
  EXPECT_EQ(count_op(c3, "mul"), 2);
  const auto c4 = make_c4a4m();
  EXPECT_EQ(count_op(c4, "add"), 4);
  EXPECT_EQ(count_op(c4, "mul"), 4);
}

TEST(Datapaths, EightBitWide) {
  for (const auto& n : {make_c5a2m(), make_c3a2m(), make_c4a4m()}) {
    for (const auto& b : n.blocks()) EXPECT_EQ(b.width, 8) << b.name;
  }
}

TEST(Datapaths, ParameterizedWidthsWork) {
  for (int w : {2, 4, 16}) {
    EXPECT_NO_THROW(make_c5a2m(w).validate());
    EXPECT_NO_THROW(make_c3a2m(w).validate());
    EXPECT_NO_THROW(make_c4a4m(w).validate());
  }
}

TEST(Fir, ScalesWithTaps) {
  for (int taps : {2, 4, 8, 12}) {
    const auto n = make_fir_datapath(taps);
    EXPECT_NO_THROW(n.validate());
    EXPECT_TRUE(graph::check_balanced(n).balanced) << taps;
    int muls = 0, adds = 0;
    for (const auto& b : n.blocks()) {
      muls += b.kind == rtl::BlockKind::kComb && b.op == "mul";
      adds += b.kind == rtl::BlockKind::kComb && b.op == "add";
    }
    EXPECT_EQ(muls, taps);
    EXPECT_EQ(adds, taps - 1);
  }
}

TEST(Fir, RejectsDegenerateTapCount) {
  EXPECT_THROW(make_fir_datapath(1), Error);
}

}  // namespace
}  // namespace bibs::circuits
