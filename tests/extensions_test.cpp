// Tests for the extension features: CBILBO fallback designs, BALLAST-style
// partial scan, the minimal-TPG search (the paper's open problem), the test
// plan generator, and randomized whole-pipeline property tests.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "circuits/random.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"
#include "sim/testplan.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/minimize.hpp"

namespace bibs {
namespace {

rtl::Netlist single_register_cycle() {
  rtl::Netlist n("loop1");
  const auto pi = n.add_input("x", 4);
  const auto c1 = n.add_comb("C1", "xor", 4);
  const auto c2 = n.add_comb("C2", "not", 4);
  const auto po = n.add_output("y", 4);
  n.connect_reg(pi, c1, "R1", 4);
  n.connect_wire(c1, c2, 4);
  n.connect_reg(c2, c1, "RF", 4);  // the cycle's only register
  n.connect_reg(c1, po, "RO", 4);
  n.validate();
  return n;
}

// ------------------------------------------------------------------ CBILBO

TEST(Cbilbo, SingleRegisterCycleNeedsCbilbo) {
  const auto n = single_register_cycle();
  EXPECT_THROW(core::design_bibs(n), DesignError);
  const auto res = core::design_bibs_cbilbo(n);
  EXPECT_TRUE(res.report.ok);
  EXPECT_EQ(res.regs.cbilbo.size(), 1u);
  EXPECT_TRUE(res.regs.cbilbo.count(n.find_register("RF")));
  // Boundary registers are plain BILBOs.
  EXPECT_TRUE(res.regs.bilbo.count(n.find_register("R1")));
  EXPECT_TRUE(res.regs.bilbo.count(n.find_register("RO")));
}

TEST(Cbilbo, NotUsedWhenUnnecessary) {
  const auto n = circuits::make_c5a2m();
  const auto res = core::design_bibs_cbilbo(n);
  EXPECT_TRUE(res.regs.cbilbo.empty());
  EXPECT_EQ(res.regs.bilbo.size(), 9u);
}

TEST(Cbilbo, Fig9CycleHasTwoRegistersSoNoCbilbo) {
  const auto n = circuits::make_fig9();
  EXPECT_TRUE(core::cycles_needing_cbilbo(n).empty());
  const auto res = core::design_bibs_cbilbo(n);
  EXPECT_TRUE(res.regs.cbilbo.empty());
  EXPECT_EQ(res.regs.bilbo.size(), 8u);
}

TEST(Cbilbo, CheckExemptsSharedCbilboEdges) {
  const auto n = single_register_cycle();
  core::BistRegisters regs;
  regs.bilbo = {n.find_register("R1"), n.find_register("RO")};
  regs.cbilbo = {n.find_register("RF")};
  const auto rep = core::check_bibs_testable(n, regs);
  EXPECT_TRUE(rep.ok);
  // Without the CBILBO exemption the same edge set fails.
  const auto plain = core::check_bibs_testable(n, regs.all());
  EXPECT_FALSE(plain.ok);
}

// ------------------------------------------------------------ partial scan

TEST(PartialScan, BalancedCircuitNeedsNoScan) {
  EXPECT_TRUE(core::design_partial_scan(circuits::make_c5a2m()).empty());
  EXPECT_TRUE(core::design_partial_scan(circuits::make_fig2()).empty());
}

TEST(PartialScan, Fig1OneScanRegisterSuffices) {
  // The URFS with one register: scanning R removes the delayed branch from
  // the functional graph, leaving a balanced circuit. BIBS cannot do this
  // (a BILBO is TPG xor SA) — the paper's core contrast with partial scan.
  const auto n = circuits::make_fig1();
  const auto scan = core::design_partial_scan(n);
  EXPECT_EQ(scan.size(), 1u);
  EXPECT_TRUE(scan.count(n.find_register("R")));
}

TEST(PartialScan, CheaperThanBibsOnFig4) {
  const auto n = circuits::make_fig4();
  const auto scan = core::design_partial_scan(n);
  const auto bibs = core::design_bibs(n);
  // Scan only needs to balance; BIBS additionally needs boundary BILBOs and
  // condition 3, so it always converts at least as many flip-flops.
  int scan_ffs = 0, bibs_ffs = 0;
  for (auto e : scan) scan_ffs += n.connection(e).reg->width;
  for (auto e : bibs.bilbo) bibs_ffs += n.connection(e).reg->width;
  EXPECT_LT(scan_ffs, bibs_ffs);
  // And the scanned circuit really is balanced.
  graph::EdgeSet removed(scan.begin(), scan.end());
  EXPECT_TRUE(graph::check_balanced(n, removed).balanced);
}

TEST(PartialScan, BreaksFig9Cycle) {
  const auto n = circuits::make_fig9();
  const auto scan = core::design_partial_scan(n);
  EXPECT_GE(scan.size(), 1u);
  graph::EdgeSet removed(scan.begin(), scan.end());
  EXPECT_TRUE(graph::check_balanced(n, removed).balanced);
  // Strictly cheaper than the BIBS internal conversions (M1+M2 = 11 FFs).
  int scan_ffs = 0;
  for (auto e : scan) scan_ffs += n.connection(e).reg->width;
  EXPECT_LT(scan_ffs, 11);
}

// ------------------------------------------------------------ minimal TPG

TEST(MinimizeTpg, BeatsMcTpgOnExample7WithoutPermutation) {
  tpg::GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}, {"R3", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}},
             {"O2", {{0, 0}, {2, 1}}},
             {"O3", {{1, 1}, {2, 0}}}};
  const auto res = tpg::minimize_tpg(s);
  EXPECT_EQ(res.mc_tpg_stages, 16);
  EXPECT_LE(res.design.lfsr_stages, 8);
  EXPECT_TRUE(res.optimal);
  // The found design is certified by the rank check and by brute force.
  EXPECT_TRUE(tpg::check_exhaustive_rank(res.design).all_exhaustive);
  EXPECT_TRUE(tpg::check_exhaustive_sim(res.design).all_exhaustive);
}

TEST(MinimizeTpg, ImprovesOnThePapersExample5) {
  // MC_TPG needs 9 stages for Figure 17's two-cone kernel; free placement
  // finds an 8-stage certified design — the 2^w lower bound, halving the
  // test time. A concrete instance of the paper's open problem solved.
  tpg::GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 1}, {1, 0}}}};
  EXPECT_EQ(tpg::mc_tpg(s).lfsr_stages, 9);
  const auto res = tpg::minimize_tpg(s);
  EXPECT_EQ(res.design.lfsr_stages, 8);
  EXPECT_TRUE(res.optimal);
  EXPECT_TRUE(tpg::check_exhaustive_sim(res.design).all_exhaustive);
}

TEST(MinimizeTpg, SingleConeIsAlreadyOptimal) {
  // For one cone over all registers, M = total width is the lower bound.
  auto s = tpg::GeneralizedStructure::single_cone(
      {{"R1", 4}, {"R2", 4}}, {1, 0});
  const auto res = tpg::minimize_tpg(s);
  EXPECT_EQ(res.design.lfsr_stages, 8);
  EXPECT_TRUE(res.optimal);
}

TEST(MinimizeTpg, NeverWorseThanMcTpgOnRandomStructures) {
  bibs::Xoshiro256 rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    tpg::GeneralizedStructure s;
    const int nregs = 2 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < nregs; ++i)
      s.registers.push_back(tpg::InputRegister{
          "R" + std::to_string(i), 2 + static_cast<int>(rng.next_below(3))});
    for (int c = 0; c < 2; ++c) {
      tpg::Cone cone;
      cone.name = "O" + std::to_string(c);
      for (int i = 0; i < nregs; ++i)
        if (c == 0 || rng.next_below(2))
          cone.deps.push_back(
              tpg::ConeDep{i, static_cast<int>(rng.next_below(3))});
      if (cone.deps.empty()) cone.deps.push_back(tpg::ConeDep{0, 0});
      s.cones.push_back(cone);
    }
    const auto res = tpg::minimize_tpg(s);
    EXPECT_LE(res.design.lfsr_stages, res.mc_tpg_stages) << trial;
    EXPECT_TRUE(tpg::check_exhaustive_rank(res.design).all_exhaustive)
        << trial;
  }
}

TEST(MinimizeTpg, PlacementBuilderFillsAllLabels) {
  auto s = tpg::GeneralizedStructure::single_cone({{"R1", 3}, {"R2", 3}},
                                                  {0, 0});
  const auto d = tpg::design_from_placement(s, {1, 4}, 6);
  EXPECT_EQ(d.physical_ffs(), 6);
  EXPECT_EQ(d.cell_label[1], (std::vector<int>{4, 5, 6}));
  // Overlapping placement shares stages and tops up the rest.
  const auto d2 = tpg::design_from_placement(s, {1, 1}, 6);
  EXPECT_EQ(d2.physical_ffs(), 9);  // 6 register cells + 3 top-up FFs
}

// --------------------------------------------------------------- test plan

TEST(TestPlan, C5a2mSingleSessionPlan) {
  const auto n = circuits::make_c5a2m();
  const auto elab = gate::elaborate(n);
  const auto plan = sim::make_test_plan(n, elab, core::design_bibs(n), 4096);
  EXPECT_EQ(plan.sessions, 1);
  ASSERT_EQ(plan.kernels.size(), 1u);
  EXPECT_EQ(plan.kernels[0].tpg_registers.size(), 8u);
  EXPECT_EQ(plan.kernels[0].sa_registers.size(), 1u);
  EXPECT_EQ(plan.kernels[0].cycles, 4096u);  // capped
  EXPECT_EQ(plan.total_test_time(), 4096u);
  ASSERT_EQ(plan.kernels[0].golden_signatures.size(), 1u);
  EXPECT_NE(plan.kernels[0].golden_signatures[0], 0u);
  const std::string text = plan.to_string(n);
  EXPECT_NE(text.find("session 1"), std::string::npos);
  EXPECT_NE(text.find("64-stage LFSR"), std::string::npos);
}

TEST(TestPlan, PlanIsDeterministic) {
  const auto n = circuits::make_c3a2m();
  const auto elab = gate::elaborate(n);
  const auto a = sim::make_test_plan(n, elab, core::design_bibs(n), 2048);
  const auto b = sim::make_test_plan(n, elab, core::design_bibs(n), 2048);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  EXPECT_EQ(a.kernels[0].golden_signatures, b.kernels[0].golden_signatures);
}

TEST(TestPlan, Ka85PlanHasTwoSessions) {
  const auto n = circuits::make_c5a2m();
  const auto elab = gate::elaborate(n);
  const auto plan = sim::make_test_plan(n, elab, core::design_ka85(n), 1024);
  EXPECT_EQ(plan.sessions, 2);
  EXPECT_EQ(plan.kernels.size(), 7u);
  // Sessions run concurrently: total = 2 x 1024 (all kernels capped).
  EXPECT_EQ(plan.total_test_time(), 2048u);
  const std::string fsm = plan.controller_rtl();
  EXPECT_NE(fsm.find("S2"), std::string::npos);
  EXPECT_NE(fsm.find("DONE"), std::string::npos);
}

TEST(TestPlan, FullExhaustiveWhenUnderCap) {
  const auto n = circuits::make_fig2(4);
  const auto elab = gate::elaborate(n);
  const auto plan = sim::make_test_plan(n, elab, core::design_bibs(n), 65536);
  ASSERT_EQ(plan.kernels.size(), 1u);
  // One 4-bit input register, depth 1: 2^4 - 1 + 1 = 16 clocks.
  EXPECT_EQ(plan.kernels[0].cycles, 16u);
}

TEST(TestPlan, RejectsBrokenDesigns) {
  const auto n = circuits::make_fig4();
  const auto elab = gate::elaborate(n);
  core::DesignResult broken;
  broken.bilbo = {n.find_register("R1")};
  broken.report = core::check_bibs_testable(n, broken.bilbo);
  EXPECT_THROW(sim::make_test_plan(n, elab, broken), DesignError);
}

// -------------------------------------------------- random-circuit pipeline

class RandomPipeline : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipeline, FullyRegisteredCircuitsAlwaysDesignable) {
  circuits::RandomCircuitOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  opt.reg_probability = 1.0;
  opt.comb_blocks = 6 + GetParam() % 5;
  const rtl::Netlist n = circuits::make_random_circuit(opt);

  const auto design = core::design_bibs(n);
  EXPECT_TRUE(design.report.ok);
  // Every kernel round-trips through structure extraction, MC_TPG and the
  // exhaustiveness certificate.
  for (const core::Kernel& k : design.report.kernels) {
    if (k.trivial) continue;
    const auto s = core::kernel_structure(n, design.bilbo, k);
    if (s.total_width() + s.max_depth() + 2 > 60) continue;
    const auto d = tpg::mc_tpg(s);
    EXPECT_TRUE(tpg::check_exhaustive_rank(d).all_exhaustive) << n.name();
  }
  // And the circuit elaborates.
  EXPECT_NO_THROW(gate::elaborate(n));
}

TEST_P(RandomPipeline, MixedCircuitsNeverProduceInvalidDesigns) {
  circuits::RandomCircuitOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) * 7919;
  opt.reg_probability = 0.6;
  const rtl::Netlist n = circuits::make_random_circuit(opt);
  try {
    const auto design = core::design_bibs(n);
    EXPECT_TRUE(design.report.ok);  // if it returns, it must be valid
    const auto cost = core::evaluate_design(n, design.bilbo);
    EXPECT_GE(cost.bilbo_registers, 3u);  // at least the PI/PO boundary
  } catch (const DesignError&) {
    // Legitimate: wire-parallel URFSs can make a circuit un-BISTable
    // without register insertion (the fig1 situation).
  }
}

TEST_P(RandomPipeline, CyclicCircuitsHandled) {
  circuits::RandomCircuitOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) * 104729;
  opt.reg_probability = 1.0;
  opt.add_cycle = true;
  const rtl::Netlist n = circuits::make_random_circuit(opt);
  const auto design = core::design_bibs_cbilbo(n);
  EXPECT_TRUE(design.report.ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline, ::testing::Range(1, 13));

}  // namespace
}  // namespace bibs
