// Unit tests for the common utilities: BitVec, PRNG, Table.

#include <gtest/gtest.h>

#include <set>

#include "common/bitvec.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"

namespace bibs {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
}

TEST(BitVec, ConstructAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_FALSE(v.any());
}

TEST(BitVec, ConstructAllOne) {
  BitVec v(130, true);
  EXPECT_EQ(v.count(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVec, SetGetAcrossWordBoundary) {
  BitVec v(100);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(62));
  EXPECT_EQ(v.count(), 3u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, ExtractDeposit) {
  BitVec v(128);
  v.deposit(60, 10, 0x2ABu);
  EXPECT_EQ(v.extract(60, 10), 0x2ABu);
  EXPECT_EQ(v.extract(0, 60), 0u);
  v.deposit(0, 64, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(v.extract(0, 64), 0xDEADBEEFCAFEF00Dull);
}

TEST(BitVec, ExtractZeroWidth) {
  BitVec v(8, true);
  EXPECT_EQ(v.extract(3, 0), 0u);
}

TEST(BitVec, RoundTripString) {
  const std::string s = "0110100111010001";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count(), 8u);
}

TEST(BitVec, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVec::from_string("01x"), ParseError);
}

TEST(BitVec, EqualityIgnoresNothing) {
  BitVec a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(3, true);
  EXPECT_NE(a, b);
  b.set(3, true);
  EXPECT_EQ(a, b);
}

TEST(BitVec, ResizeClearsTailBits) {
  BitVec v(10, true);
  v.resize(70);
  EXPECT_EQ(v.count(), 10u);
  for (std::size_t i = 10; i < 70; ++i) EXPECT_FALSE(v.get(i));
}

TEST(Prng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Prng, NextBelowInRangeAndCoversValues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Prng, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Table, ThousandsSeparators) {
  EXPECT_EQ(Table::num(0ll), "0");
  EXPECT_EQ(Table::num(999ll), "999");
  EXPECT_EQ(Table::num(1000ll), "1,000");
  EXPECT_EQ(Table::num(2542ll), "2,542");
  EXPECT_EQ(Table::num(1234567ll), "1,234,567");
  EXPECT_EQ(Table::num(-1234ll), "-1,234");
}

TEST(Table, PrintsAlignedGrid) {
  Table t("demo");
  t.header({"a", "bb"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| 333 |"), std::string::npos);
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(BIBS_ASSERT(1 == 2), InternalError);
  EXPECT_NO_THROW(BIBS_ASSERT(1 == 1));
}

}  // namespace
}  // namespace bibs
