// End-to-end BIST session tests: TPG stream -> elaborated kernel -> MISR,
// with parallel-fault injection and signature-based detection (aliasing
// modelled, not assumed away).

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "core/designer.hpp"
#include "sim/session.hpp"

namespace bibs::sim {
namespace {

struct Rig {
  rtl::Netlist n;
  gate::Elaboration elab;
  core::DesignResult design;
  std::vector<core::Kernel> kernels;
};

Rig make(const rtl::Netlist& netlist) {
  Rig s;
  s.n = netlist;
  s.elab = gate::elaborate(s.n);
  s.design = core::design_bibs(s.n);
  for (const core::Kernel& k : s.design.report.kernels)
    if (!k.trivial) s.kernels.push_back(k);
  return s;
}

TEST(BistSession, Fig2FullPeriodDetectsEverything) {
  // fig2 at width 4: one kernel, 8-bit TPG, full period 255 patterns.
  Rig s = make(circuits::make_fig2(4));
  ASSERT_EQ(s.kernels.size(), 1u);
  BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const auto faults = session.kernel_faults();
  ASSERT_GT(faults.size(), 0u);
  const auto rep = session.run(faults);
  EXPECT_EQ(rep.total_faults, faults.size());
  // Two cascaded inverter banks: everything is detectable and the full
  // functionally exhaustive run must find it all at the output D pins.
  EXPECT_EQ(rep.detected_at_outputs, rep.total_faults);
  // MISR aliasing can in principle eat a fault, but not many.
  EXPECT_GE(rep.detected_by_signature, rep.total_faults - 1);
  EXPECT_EQ(rep.aliased,
            rep.detected_at_outputs - rep.detected_by_signature);
}

TEST(BistSession, GoldenSignatureIsDeterministic) {
  Rig s = make(circuits::make_fig2(4));
  BistSession a(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  BistSession b(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const auto ra = a.run(fault::FaultList::from_faults({}));
  const auto rb = b.run(fault::FaultList::from_faults({}));
  ASSERT_EQ(ra.golden_signatures.size(), rb.golden_signatures.size());
  EXPECT_EQ(ra.golden_signatures, rb.golden_signatures);
  EXPECT_NE(ra.golden_signatures[0], 0u);  // a real signature accumulated
}

TEST(BistSession, TpgMatchesKernelStructure) {
  Rig s = make(circuits::make_fig12a(2));
  ASSERT_EQ(s.kernels.size(), 1u);
  BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  // Three 2-bit registers with depths 2,1,0: 6-stage LFSR, 2 extra FFs.
  EXPECT_EQ(session.tpg().lfsr_stages, 6);
  EXPECT_EQ(session.tpg().extra_ffs(), 2);
}

TEST(BistSession, Fig12aFunctionallyExhaustiveDetectsAllAtOutputs) {
  // Width-4 version: 12-stage LFSR, full functionally exhaustive session of
  // 2^12-1(+d) clocks. The ideal observer at the output-register D pins sees
  // every fault (Theorem 4 made executable at gate level).
  Rig s = make(circuits::make_fig12a(4));
  BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const auto faults = session.kernel_faults();
  const auto rep = session.run(faults);
  EXPECT_EQ(rep.detected_at_outputs, rep.total_faults);
}

TEST(BistSession, NonResonantLengthKeepsAliasingLow) {
  // At a session length that is not a multiple of the MISR order, 4-bit
  // MISRs alias only a few percent.
  Rig s = make(circuits::make_fig12a(4));
  BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const auto faults = session.kernel_faults();
  const auto rep = session.run(faults, 1024);
  EXPECT_GE(static_cast<double>(rep.detected_by_signature) /
                static_cast<double>(rep.total_faults),
            0.9);
}

TEST(BistSession, FullPeriodResonanceInflatesAliasing) {
  // A measured artifact worth pinning down: when the MISR's state-transition
  // order (2^4-1 = 15) divides the exhaustive session length (2^12-1), the
  // periodic error polynomials cancel class-wise and aliasing spikes well
  // above the 2^-w folklore rate.
  Rig s = make(circuits::make_fig12a(4));
  BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const auto faults = session.kernel_faults();
  const auto resonant = session.run(faults, 4095);
  const auto offset = session.run(faults, 1024);
  EXPECT_GT(resonant.aliased * 2, offset.aliased * 3);  // at least 1.5x worse
}

TEST(BistSession, TruncatedSessionDetectsFewerFaults) {
  Rig s = make(circuits::make_fig12a(4));
  BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const auto faults = session.kernel_faults();
  const auto longer = session.run(faults, 1024);
  const auto brief = session.run(faults, 4);  // only four clocks
  EXPECT_LT(brief.detected_at_outputs, longer.detected_at_outputs);
}

TEST(BistSession, NarrowMisrsAliasBadly) {
  // Width-2 registers mean 2-bit MISRs and a period-3 TPG: signature-based
  // detection collapses even though the ideal observer still sees every
  // fault. This is why realistic BIST uses wide signature registers.
  Rig s = make(circuits::make_fig12a(2));
  BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  const auto faults = session.kernel_faults();
  const auto rep = session.run(faults);
  EXPECT_EQ(rep.detected_at_outputs, rep.total_faults);
  EXPECT_LT(rep.detected_by_signature, rep.total_faults);
  EXPECT_GT(rep.aliased, 0u);
}

TEST(BistSession, Fig4KernelsBothRunnable) {
  // Width-4 fig4: two kernels; both sessions run, the ideal observer sees
  // every detectable fault, and signatures catch nearly all of them at a
  // non-resonant session length.
  Rig s;
  s.n = circuits::make_fig4(4);
  s.elab = gate::elaborate(s.n);
  core::BilboSet b;
  for (const std::string& r : circuits::fig4_example_bilbos())
    b.insert(s.n.find_register(r));
  const auto rep = core::check_bibs_testable(s.n, b);
  ASSERT_TRUE(rep.ok);
  for (const core::Kernel& k : rep.kernels) {
    if (k.trivial) continue;
    BistSession session(s.n, s.elab, b, k);
    const auto faults = session.kernel_faults();
    const auto r = session.run(faults, 1000);
    EXPECT_GE(r.detected_by_signature * 10, faults.size() * 9)
        << "kernel with " << k.blocks.size() << " blocks";
  }
}

TEST(BistSession, AliasingIsRareAcrossSeeds) {
  // Aggregate aliasing across both fig4 kernels stays modest.
  Rig s;
  s.n = circuits::make_fig4(4);
  s.elab = gate::elaborate(s.n);
  core::BilboSet b;
  for (const std::string& r : circuits::fig4_example_bilbos())
    b.insert(s.n.find_register(r));
  const auto rep = core::check_bibs_testable(s.n, b);
  std::size_t total = 0, aliased = 0;
  for (const core::Kernel& k : rep.kernels) {
    if (k.trivial) continue;
    BistSession session(s.n, s.elab, b, k);
    const auto faults = session.kernel_faults();
    const auto r = session.run(faults, 1000);
    total += r.detected_at_outputs;
    aliased += r.aliased;
  }
  EXPECT_GT(total, 0u);
  EXPECT_LE(aliased * 8, total);  // < 12.5% with 4-bit MISRs
}

}  // namespace
}  // namespace bibs::sim
