// Whole-zoo sweep: every circuit in the zoo, at several widths, through the
// complete flow — design, kernel extraction, TPG construction, algebraic
// exhaustiveness certificate, elaboration, and test-plan synthesis. These
// are the integration tests a release would gate on.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"
#include "gate/synth.hpp"
#include "sim/testplan.hpp"
#include "tpg/exhaustive.hpp"

namespace bibs {
namespace {

struct ZooCase {
  std::string name;
  rtl::Netlist n;
  bool elaboratable;
};

std::vector<ZooCase> zoo(int width) {
  std::vector<ZooCase> out;
  out.push_back({"fig2", circuits::make_fig2(width), true});
  out.push_back({"fig3", circuits::make_fig3(width), true});
  out.push_back({"fig4", circuits::make_fig4(width), true});
  out.push_back({"fig12a", circuits::make_fig12a(width), true});
  out.push_back({"c5a2m", circuits::make_c5a2m(width), true});
  out.push_back({"c3a2m", circuits::make_c3a2m(width), true});
  out.push_back({"c4a4m", circuits::make_c4a4m(width), true});
  out.push_back({"fir3", circuits::make_fir_datapath(3, width), true});
  out.push_back({"fir6", circuits::make_fir_datapath(6, width), true});
  return out;
}

class ZooSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZooSweep, FullFlowOnEveryAcyclicCircuit) {
  const int width = GetParam();
  for (ZooCase& z : zoo(width)) {
    if (!graph::is_acyclic(z.n)) continue;  // fig3 has the F/H cycle
    SCOPED_TRACE(z.name + " w=" + std::to_string(width));

    const core::DesignResult design = core::design_bibs(z.n);
    ASSERT_TRUE(design.report.ok);
    const core::DesignCost cost = core::evaluate_design(z.n, design.bilbo);
    EXPECT_GE(cost.kernels, 1u);
    EXPECT_GE(cost.sessions, 1);

    for (const core::Kernel& k : design.report.kernels) {
      if (k.trivial) continue;
      const auto s = core::kernel_structure(z.n, design.bilbo, k);
      if (s.total_width() + s.max_depth() > 60) continue;
      const auto d = tpg::mc_tpg(s);
      EXPECT_TRUE(tpg::check_exhaustive_rank(d).all_exhaustive);
      // Corollary to Theorem 5: M never exceeds width + depth span.
      EXPECT_GE(d.lfsr_stages, s.max_cone_width());
    }

    if (z.elaboratable && width <= 8) {
      const gate::Elaboration elab = gate::elaborate(z.n);
      EXPECT_GT(elab.netlist.gate_count(), 0u);
      const auto plan = sim::make_test_plan(z.n, elab, design, 64);
      EXPECT_EQ(plan.sessions, cost.sessions);
      EXPECT_GT(plan.total_test_time(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ZooSweep, ::testing::Values(2, 3, 4, 8));

TEST(ZooSweep, CyclicCircuitsGoThroughTheCbilboPath) {
  for (int width : {2, 4, 8}) {
    const auto n = circuits::make_fig3(width);
    SCOPED_TRACE(width);
    // fig3's F/H cycle has two register edges: plain BIBS suffices.
    const auto res = core::design_bibs(n);
    EXPECT_TRUE(res.report.ok);
    EXPECT_TRUE(res.bilbo.count(n.find_register("R5")) ||
                res.bilbo.count(n.find_register("R6")));
  }
}

TEST(ZooSweep, Ka85VsBibsAcrossWidths) {
  for (int width : {2, 4, 8, 16}) {
    for (int which = 0; which < 3; ++which) {
      const auto n = which == 0   ? circuits::make_c5a2m(width)
                     : which == 1 ? circuits::make_c3a2m(width)
                                  : circuits::make_c4a4m(width);
      SCOPED_TRACE(n.name() + " w=" + std::to_string(width));
      const auto bibs = core::evaluate_design(n, core::design_bibs(n).bilbo);
      const auto ka = core::evaluate_design(n, core::design_ka85(n).bilbo);
      // Structural rows are width-independent.
      EXPECT_EQ(bibs.kernels, 1u);
      EXPECT_EQ(bibs.max_delay, 2);
      EXPECT_LT(bibs.bilbo_registers, ka.bilbo_registers);
      EXPECT_LT(bibs.max_delay, ka.max_delay);
    }
  }
}

}  // namespace
}  // namespace bibs
