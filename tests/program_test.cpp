// Golden-equivalence tests for the compiled gate-evaluation kernel: the
// gate::EvalProgram instruction stream and everything built on it (the logic
// simulator, the PPSFP fault simulator, the parallel-fault LaneEngine) must
// match the retained interpreted reference bit for bit — on the paper's
// built-in circuits and on seeded random netlists, including lane-fault
// injection and DFF clocking.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "circuits/random.hpp"
#include "common/prng.hpp"
#include "fault/fault.hpp"
#include "fault/simulator.hpp"
#include "gate/lanes.hpp"
#include "gate/program.hpp"
#include "gate/sim.hpp"
#include "gate/synth.hpp"
#include "rt/checkpoint.hpp"
#include "rt/control.hpp"
#include "sim/lane_engine.hpp"

namespace bibs {
namespace {

using fault::CoverageCurve;
using fault::EvalBackend;
using fault::Fault;
using fault::FaultList;
using fault::FaultSimulator;
using gate::EvalProgram;
using gate::GateType;
using gate::NetId;
using gate::Netlist;

/// The netlists the equivalence suite sweeps: the paper's data paths and
/// figures (elaborated to gates) plus seeded random circuits.
std::vector<Netlist> equivalence_netlists() {
  std::vector<Netlist> out;
  for (const rtl::Netlist& n :
       {circuits::make_c5a2m(4), circuits::make_c3a2m(4),
        circuits::make_c4a4m(4), circuits::make_fig2(), circuits::make_fig4(),
        circuits::make_fig12a()})
    out.push_back(gate::elaborate(n).netlist);
  for (std::uint64_t seed : {7u, 19u, 83u}) {
    circuits::RandomCircuitOptions opt;
    opt.seed = seed;
    opt.comb_blocks = 10;
    out.push_back(gate::elaborate(circuits::make_random_circuit(opt)).netlist);
  }
  return out;
}

/// Seeds every source net (inputs, constants, DFF outputs) of `values`.
void seed_sources(const Netlist& nl, Xoshiro256& rng,
                  std::vector<std::uint64_t>& values) {
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id) {
    switch (nl.gate(id).type) {
      case GateType::kInput:
      case GateType::kDff:
        values[static_cast<std::size_t>(id)] = rng.next();
        break;
      case GateType::kConst0:
        values[static_cast<std::size_t>(id)] = 0;
        break;
      case GateType::kConst1:
        values[static_cast<std::size_t>(id)] = ~0ull;
        break;
      default:
        values[static_cast<std::size_t>(id)] = 0;
    }
  }
}

TEST(EvalProgram, RunMatchesReferenceEval) {
  Xoshiro256 rng(2026);
  for (const Netlist& nl : equivalence_netlists()) {
    const EvalProgram prog(nl);
    const std::vector<NetId> topo = nl.comb_topo_order();
    ASSERT_EQ(prog.size(), topo.size());
    std::vector<std::uint64_t> a(nl.net_count()), b;
    for (int block = 0; block < 4; ++block) {
      seed_sources(nl, rng, a);
      b = a;
      prog.run(a.data());
      gate::reference_eval(nl, topo, b.data());
      for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "net " << i;
    }
  }
}

/// Every compiled-in, CPU-supported lane backend must evaluate each of its
/// W lane words exactly as the interpreted reference evaluates that word's
/// scalar slice — the golden-equivalence gate behind the SIMD datapath.
TEST(EvalProgram, LaneBackendsMatchReferenceEvalPerWord) {
  Xoshiro256 rng(2027);
  for (const gate::LaneBackend* lb : gate::all_lane_backends()) {
    if (!lb->supported()) continue;
    const std::size_t w = static_cast<std::size_t>(lb->words);
    for (const Netlist& nl : equivalence_netlists()) {
      const EvalProgram prog(nl);
      const std::vector<NetId> topo = nl.comb_topo_order();
      // Seed each lane word's sources independently, interleave into the
      // W-strided layout, and evaluate all W words in one backend sweep.
      std::vector<std::vector<std::uint64_t>> slices(w);
      for (auto& s : slices) {
        s.resize(nl.net_count());
        seed_sources(nl, rng, s);
      }
      std::vector<std::uint64_t> wide(nl.net_count() * w);
      for (std::size_t n = 0; n < nl.net_count(); ++n)
        for (std::size_t j = 0; j < w; ++j) wide[n * w + j] = slices[j][n];
      lb->run_range(prog.view(), 0, prog.size(), wide.data());
      for (std::size_t j = 0; j < w; ++j) {
        gate::reference_eval(nl, topo, slices[j].data());
        for (std::size_t n = 0; n < nl.net_count(); ++n)
          ASSERT_EQ(wide[n * w + j], slices[j][n])
              << lb->name << " net " << n << " word " << j;
      }
    }
  }
}

TEST(EvalProgram, StructureIsConsistent) {
  for (const Netlist& nl : equivalence_netlists()) {
    const EvalProgram prog(nl);
    // Levels: sources at 0, every instruction above all its fan-ins, and
    // instructions emitted in non-decreasing level order (topo order).
    int prev_level = 0;
    for (std::size_t i = 0; i < prog.size(); ++i) {
      const int lv = prog.level(prog.out(i));
      EXPECT_LE(prev_level, lv);
      prev_level = lv;
      EXPECT_LE(lv, prog.max_level());
      EXPECT_EQ(prog.instr_of(prog.out(i)), i);
      for (std::uint32_t k = 0; k < prog.fanin_count(i); ++k) {
        const NetId f = prog.fanin(i)[k];
        EXPECT_LT(prog.level(f), lv);
        EXPECT_EQ(prog.fanin(i)[k], nl.gate(prog.out(i)).fanin[k]);
        // The fanout CSR of f must list instruction i exactly once.
        int hits = 0;
        for (const std::uint32_t* p = prog.fanout_begin(f);
             p != prog.fanout_end(f); ++p)
          if (*p == i) ++hits;
        EXPECT_EQ(hits, 1);
      }
    }
    std::size_t const1 = 0;
    for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id)
      if (nl.gate(id).type == GateType::kConst1) ++const1;
    EXPECT_EQ(prog.const1_nets().size(), const1);
  }
}

/// Compiled and interpreted FaultSimulator backends must produce identical
/// coverage curves — same detected_at, same pattern counts — from the same
/// generator stream, across thread counts and through checkpoint/resume.
TEST(FaultSimulator, CompiledMatchesInterpreted) {
  // The fault simulator is combinational-only, so sweep the c5a2m kernel
  // plus a random-seeded logic cloud with reconvergent fanout.
  std::vector<Netlist> kernels;
  {
    const auto n = circuits::make_c5a2m(4);
    const auto elab = gate::elaborate(n);
    std::vector<rtl::ConnId> in_regs, out_regs;
    for (const auto& c : n.connections()) {
      if (!c.is_register()) continue;
      if (n.block(c.from).kind == rtl::BlockKind::kInput)
        in_regs.push_back(c.id);
      if (n.block(c.to).kind == rtl::BlockKind::kOutput)
        out_regs.push_back(c.id);
    }
    kernels.push_back(gate::combinational_kernel(elab, n, in_regs, out_regs));
  }
  {
    Xoshiro256 rng(99);
    Netlist nl;
    std::vector<NetId> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(nl.add_input());
    for (int i = 0; i < 40; ++i) {
      const GateType t = static_cast<GateType>(
          static_cast<int>(GateType::kAnd) +
          static_cast<int>(rng.next_below(6)));
      const NetId a = pool[rng.next_below(pool.size())];
      const NetId b = pool[rng.next_below(pool.size())];
      pool.push_back(nl.add_gate(t, {a, b}));
    }
    for (std::size_t i = pool.size() - 4; i < pool.size(); ++i)
      nl.mark_output(pool[i]);
    kernels.push_back(std::move(nl));
  }

  for (const Netlist& nl : kernels) {
    const FaultList faults = FaultList::collapsed(nl);
    FaultSimulator compiled(nl, faults, EvalBackend::kCompiled);
    FaultSimulator interp(nl, faults, EvalBackend::kInterpreted);

    Xoshiro256 rng_c(42), rng_i(42);
    const CoverageCurve c = compiled.run_random(rng_c, 1024);
    const CoverageCurve i = interp.run_random(rng_i, 1024);
    ASSERT_EQ(c.patterns_run, i.patterns_run);
    ASSERT_EQ(c.detected_at, i.detected_at);

    // Threaded compiled run stays identical to the serial interpreted one.
    FaultSimulator threaded(nl, faults, EvalBackend::kCompiled);
    threaded.set_threads(4);
    Xoshiro256 rng_t(42);
    const CoverageCurve t = threaded.run_random(rng_t, 1024);
    ASSERT_EQ(t.detected_at, i.detected_at);

    // Checkpoint mid-run on the compiled backend, resume on the interpreted
    // one: the spliced curve must equal the uninterrupted reference.
    rt::RunControl ctl;
    ctl.budget = 256;
    FaultSimulator first(nl, faults, EvalBackend::kCompiled);
    Xoshiro256 rng_f(42);
    const CoverageCurve partial = first.run_random(rng_f, 1024, /*stall=*/
                                                   std::numeric_limits<
                                                       std::int64_t>::max(),
                                                   ctl);
    ASSERT_EQ(partial.status, rt::RunStatus::kBudgetExhausted);
    const rt::SimCheckpoint ckpt = first.make_checkpoint(partial, &rng_f);
    FaultSimulator second(nl, faults, EvalBackend::kInterpreted);
    Xoshiro256 rng_r(1);  // overwritten from the checkpoint
    const CoverageCurve resumed =
        second.run_random(rng_r, 1024,
                          std::numeric_limits<std::int64_t>::max(), {}, &ckpt);
    ASSERT_EQ(resumed.detected_at, i.detected_at);
  }
}

/// Both backends must agree with naive single-fault full resimulation.
TEST(FaultSimulator, CompiledMatchesNaiveResimulation) {
  Xoshiro256 rng(7);
  Netlist nl;
  std::vector<NetId> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(nl.add_input());
  for (int i = 0; i < 24; ++i) {
    const GateType t = static_cast<GateType>(
        static_cast<int>(GateType::kAnd) + static_cast<int>(rng.next_below(6)));
    const NetId a = pool[rng.next_below(pool.size())];
    const NetId b = pool[rng.next_below(pool.size())];
    pool.push_back(nl.add_gate(t, {a, b}));
  }
  nl.mark_output(pool.back());
  nl.mark_output(pool[pool.size() - 2]);

  const FaultList faults = FaultList::full(nl);
  FaultSimulator sim(nl, faults, EvalBackend::kCompiled);
  const std::size_t nin = nl.inputs().size();
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> pattern(nin);
    for (std::size_t i = 0; i < nin; ++i) pattern[i] = rng.next() & 1;
    // Lane 0 carries the pattern; a single-pattern block.
    FaultSimulator one(nl, faults, EvalBackend::kCompiled);
    const CoverageCurve curve = one.run(
        [&](std::uint64_t* w) {
          for (std::size_t i = 0; i < nin; ++i) w[i] = pattern[i] ? 1u : 0u;
          return 1;
        },
        1);
    for (std::size_t k = 0; k < faults.size(); ++k) {
      const bool ppsfp = curve.detected_at[k] == 0;
      const bool naive = sim.detects_naive(faults[k], pattern);
      ASSERT_EQ(ppsfp, naive) << to_string(nl, faults[k]);
    }
  }
}

/// Scalar single-lane faulty-machine simulator: the interpreted reference
/// the LaneEngine's compiled, segmented evaluation is checked against.
struct ScalarFaultyMachine {
  const Netlist* nl;
  Fault f;       // the single fault of this lane (net = kNoNet: fault-free)
  std::vector<std::uint64_t> val, state;

  explicit ScalarFaultyMachine(const Netlist& n, Fault fault)
      : nl(&n), f(fault), val(n.net_count(), 0), state(n.net_count(), 0) {}

  std::uint64_t stem(NetId id, std::uint64_t v) const {
    if (f.net == id && f.pin < 0) return f.stuck ? 1 : 0;
    return v;
  }
  void eval() {
    for (NetId id = 0; static_cast<std::size_t>(id) < nl->net_count(); ++id) {
      const gate::Gate& g = nl->gate(id);
      if (g.type == GateType::kDff)
        val[static_cast<std::size_t>(id)] =
            stem(id, state[static_cast<std::size_t>(id)]);
      else if (g.type == GateType::kConst1)
        val[static_cast<std::size_t>(id)] = stem(id, 1);
      else if (g.type == GateType::kConst0 || g.type == GateType::kInput)
        val[static_cast<std::size_t>(id)] = stem(id, 0);
    }
    std::uint64_t in[64];
    for (NetId id : nl->comb_topo_order()) {
      const gate::Gate& g = nl->gate(id);
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        in[i] = val[static_cast<std::size_t>(g.fanin[i])];
      if (f.net == id && f.pin >= 0 && g.type != GateType::kDff)
        in[static_cast<std::size_t>(f.pin)] = f.stuck ? ~0ull : 0ull;
      val[static_cast<std::size_t>(id)] = stem(
          id, gate::Simulator::eval_gate(g.type, in, g.fanin.size()) & 1u);
    }
  }
  std::uint64_t next(NetId d, std::uint64_t v) const {
    if (f.net == d && f.pin == 0 && nl->gate(d).type == GateType::kDff)
      return f.stuck ? 1 : 0;
    return v;
  }
  void clock() {
    for (NetId d : nl->dffs())
      state[static_cast<std::size_t>(d)] =
          next(d, val[static_cast<std::size_t>(nl->gate(d).fanin[0])]);
  }
};

TEST(LaneEngine, MatchesScalarFaultyMachines) {
  Xoshiro256 rng(314);
  for (const Netlist& nl : equivalence_netlists()) {
    if (nl.dffs().empty()) continue;
    // Batch: up to 63 faults spread over the whole universe, stem and pin.
    const FaultList all = FaultList::full(nl);
    std::vector<Fault> batch;
    const std::size_t stride = std::max<std::size_t>(1, all.size() / 63);
    for (std::size_t i = 0; i < all.size() && batch.size() < 63; i += stride)
      batch.push_back(all[i]);

    sim::LaneEngine eng(nl, batch);
    std::vector<ScalarFaultyMachine> ref;
    ref.emplace_back(nl, Fault{});  // lane 0: fault-free
    for (const Fault& f : batch) ref.emplace_back(nl, f);

    const std::vector<NetId> dffs = nl.dffs();
    for (int t = 0; t < 6; ++t) {
      // Drive the first half of the DFFs with fresh random words (the way
      // sessions inject TPG stimulus), let the rest clock naturally.
      for (std::size_t i = 0; i < dffs.size() / 2 + 1; ++i) {
        const std::uint64_t w = rng.next();
        eng.set_dff_state(dffs[i], w);
        for (std::size_t lane = 0; lane < ref.size(); ++lane)
          ref[lane].state[static_cast<std::size_t>(dffs[i])] =
              (w >> lane) & 1u;
      }
      eng.eval();
      for (std::size_t lane = 0; lane < ref.size(); ++lane) {
        ref[lane].eval();
        for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count();
             ++id)
          ASSERT_EQ((eng.value(id) >> lane) & 1u,
                    ref[lane].val[static_cast<std::size_t>(id)])
              << "net " << id << " lane " << lane << " cycle " << t;
      }
      if (t % 3 == 2) {
        // Exercise clock_override the way the CSTP ring does.
        const NetId d = dffs[rng.next_below(dffs.size())];
        const std::uint64_t w = rng.next();
        eng.clock();
        eng.clock_override(d, w);
        for (std::size_t lane = 0; lane < ref.size(); ++lane) {
          ref[lane].clock();
          ref[lane].state[static_cast<std::size_t>(d)] =
              ref[lane].next(d, (w >> lane) & 1u);
        }
      } else {
        eng.clock();
        for (auto& m : ref) m.clock();
      }
      for (std::size_t lane = 0; lane < ref.size(); ++lane)
        for (NetId d : dffs)
          ASSERT_EQ((eng.state(d) >> lane) & 1u,
                    ref[lane].state[static_cast<std::size_t>(d)])
              << "dff " << d << " lane " << lane << " cycle " << t;
    }
  }
}

TEST(CoverageCurve, PatternsForFractionSelectsWithoutFullSort) {
  CoverageCurve c;
  c.detected_at = {9, CoverageCurve::kUndetected, 3, 0, 7,
                   CoverageCurve::kUndetected, 1};
  c.patterns_run = 16;
  // 5 detected faults at patterns {0, 1, 3, 7, 9}.
  EXPECT_EQ(c.patterns_for_fraction(1.0), 10);   // last detection + 1
  EXPECT_EQ(c.patterns_for_fraction(0.8), 8);    // ceil(4) -> 4th at 7
  EXPECT_EQ(c.patterns_for_fraction(0.6), 4);    // ceil(3) -> 3rd at 3
  EXPECT_EQ(c.patterns_for_fraction(0.2), 1);    // ceil(1) -> 1st at 0
  EXPECT_EQ(c.patterns_for_fraction(0.01), 1);   // ceil rounds up to 1
  CoverageCurve none;
  none.detected_at = {CoverageCurve::kUndetected};
  EXPECT_EQ(none.patterns_for_fraction(0.5), 0);
}

}  // namespace
}  // namespace bibs
