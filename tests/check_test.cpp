// bibs::check unit tests: miter construction and the per-cone equivalence
// proof, counterexample minimality and replay, the metamorphic oracles on
// identical and deliberately-broken pairs, the mutation harness, and the
// exhaustiveness recheck's sensitivity to a corrupted TPG design.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/check.hpp"
#include "circuits/figures.hpp"
#include "circuits/random.hpp"
#include "common/prng.hpp"
#include "fault/simulator.hpp"
#include "gate/program.hpp"
#include "gate/synth.hpp"
#include "sim/session.hpp"
#include "tpg/design.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/optimize.hpp"

namespace bibs {
namespace {

using check::Counterexample;
using check::EquivResult;
using check::Mutation;
using check::OracleContext;
using check::Verdict;
using gate::GateType;
using gate::NetId;
using gate::Netlist;

Netlist small_random(std::uint64_t seed, int inputs = 6, int gates = 20,
                     int outputs = 3) {
  circuits::RandomGateNetlistOptions ro;
  ro.inputs = inputs;
  ro.gates = gates;
  ro.outputs = outputs;
  ro.seed = seed;
  return circuits::make_random_gate_netlist(ro);
}

/// Single-vector evaluation of a combinational netlist's outputs.
std::vector<bool> eval_outputs(const Netlist& nl,
                               const std::vector<bool>& inputs) {
  const std::vector<NetId> topo = nl.comb_topo_order();
  std::vector<std::uint64_t> vals(nl.net_count(), 0);
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.net_count(); ++id)
    if (nl.gate(id).type == GateType::kConst1)
      vals[static_cast<std::size_t>(id)] = ~0ull;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    vals[static_cast<std::size_t>(nl.inputs()[i])] = inputs[i] ? ~0ull : 0;
  gate::reference_eval(nl, topo, vals.data());
  std::vector<bool> out;
  for (NetId po : nl.outputs())
    out.push_back(vals[static_cast<std::size_t>(po)] & 1u);
  return out;
}

/// A mutant guaranteed inequivalent: flips the type of the first live output
/// gate between its inverting/non-inverting partner (AND<->NAND etc.), which
/// inverts that output on every input vector.
Netlist inverted_output_mutant(const Netlist& nl, Mutation* out_m = nullptr) {
  const NetId po = nl.outputs()[0];
  const GateType t = nl.gate(po).type;
  Mutation m;
  m.kind = Mutation::Kind::kGateType;
  m.net = po;
  switch (t) {
    case GateType::kAnd: m.new_type = GateType::kNand; break;
    case GateType::kNand: m.new_type = GateType::kAnd; break;
    case GateType::kOr: m.new_type = GateType::kNor; break;
    case GateType::kNor: m.new_type = GateType::kOr; break;
    case GateType::kXor: m.new_type = GateType::kXnor; break;
    case GateType::kXnor: m.new_type = GateType::kXor; break;
    case GateType::kBuf: m.new_type = GateType::kNot; break;
    case GateType::kNot: m.new_type = GateType::kBuf; break;
    default: ADD_FAILURE() << "output is not a mutable gate"; break;
  }
  if (out_m) *out_m = m;
  return check::apply(nl, m);
}

// ---------------------------------------------------------------------------
// combinational_view / make_miter / input_support

TEST(CombinationalView, CutsRegistersIntoPseudoInputsAndOutputs) {
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId q = nl.add_dff(gate::kNoNet, "r");
  const NetId g = nl.add_gate(GateType::kXor, {x, q}, "g");
  nl.set_dff_d(q, g);
  nl.mark_output(g, "y");
  nl.validate();

  const Netlist view = check::combinational_view(nl);
  ASSERT_EQ(view.inputs().size(), 2u);   // x + pseudo-input for r
  ASSERT_EQ(view.outputs().size(), 2u);  // y + r's D net
  EXPECT_EQ(view.net_count(), nl.net_count());  // ids preserved
  EXPECT_EQ(view.gate(q).type, GateType::kInput);
  EXPECT_EQ(view.gate(g).type, GateType::kXor);

  // XOR semantics survive the cut: y = x ^ r.
  EXPECT_EQ(eval_outputs(view, {true, false})[0], true);
  EXPECT_EQ(eval_outputs(view, {true, true})[0], false);
}

TEST(Miter, SelfMiterNeverFires) {
  const Netlist nl = small_random(5);
  const check::Miter m = check::make_miter(nl, nl);
  ASSERT_EQ(m.inputs.size(), nl.inputs().size());
  ASSERT_EQ(m.xors.size(), nl.outputs().size());

  Xoshiro256 rng(7);
  std::vector<std::uint64_t> vals(m.netlist.net_count(), 0);
  const std::vector<NetId> topo = m.netlist.comb_topo_order();
  for (int block = 0; block < 8; ++block) {
    for (NetId in : m.inputs)
      vals[static_cast<std::size_t>(in)] = rng.next();
    gate::reference_eval(m.netlist, topo, vals.data());
    EXPECT_EQ(vals[static_cast<std::size_t>(m.out)], 0u);
  }
}

TEST(Miter, FiresOnAnInvertedOutput) {
  const Netlist nl = small_random(6);
  const Netlist mut = inverted_output_mutant(nl);
  const check::Miter m = check::make_miter(nl, mut);
  std::vector<std::uint64_t> vals(m.netlist.net_count(), 0);
  const std::vector<NetId> topo = m.netlist.comb_topo_order();
  gate::reference_eval(m.netlist, topo, vals.data());
  // Output 0 is inverted on every vector, so the miter fires on all lanes.
  EXPECT_EQ(vals[static_cast<std::size_t>(m.out)], ~0ull);
}

TEST(Miter, RejectsMismatchedInterfaces) {
  const Netlist a = small_random(8, /*inputs=*/6);
  const Netlist b = small_random(8, /*inputs=*/7);
  EXPECT_THROW(check::make_miter(a, b), DesignError);
  const EquivResult r = check::check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_TRUE(r.structural_mismatch);
}

TEST(Miter, InputSupportIsTheBackwardClosure) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId g = nl.add_gate(GateType::kAnd, {a, b});
  const NetId h = nl.add_gate(GateType::kOr, {g, a});
  nl.mark_output(h, "y");
  nl.validate();
  EXPECT_EQ(check::input_support(nl, h), (std::vector<NetId>{a, b}));
  EXPECT_EQ(check::input_support(nl, c), (std::vector<NetId>{c}));
}

// ---------------------------------------------------------------------------
// check_equivalence: proof, counterexample minimality, replay

TEST(CheckEquivalence, ProvesIdenticalNetlistsExhaustively) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Netlist nl = small_random(seed);
    const EquivResult r = check::check_equivalence(nl, nl);
    EXPECT_TRUE(r.equivalent);
    EXPECT_TRUE(r.proven);
    for (const check::ConeReport& c : r.cones) {
      EXPECT_TRUE(c.exhaustive);
      EXPECT_TRUE(c.equal);
      EXPECT_EQ(c.vectors, 1ull << c.support);
    }
  }
}

TEST(CheckEquivalence, CounterexampleReplaysAndIsMinimal) {
  const Netlist nl = small_random(11);
  const Netlist mut = inverted_output_mutant(nl);
  const EquivResult r = check::check_equivalence(nl, mut);
  ASSERT_FALSE(r.equivalent);
  ASSERT_TRUE(r.cx.valid);
  ASSERT_EQ(r.cx.inputs.size(), nl.inputs().size());
  EXPECT_FALSE(r.cx.netlist_bench.empty());

  // Replay: the recorded vector separates the two netlists.
  EXPECT_NE(eval_outputs(nl, r.cx.inputs), eval_outputs(mut, r.cx.inputs));

  // 1-minimality: clearing any set bit must make the vector stop separating
  // them (otherwise the greedy minimizer would have cleared it).
  for (std::size_t i = 0; i < r.cx.inputs.size(); ++i) {
    if (!r.cx.inputs[i]) continue;
    std::vector<bool> v = r.cx.inputs;
    v[i] = false;
    EXPECT_EQ(eval_outputs(nl, v), eval_outputs(mut, v))
        << "bit " << i << " was not needed";
  }
}

TEST(CheckEquivalence, SequentialNetlistsGoThroughTheRegisterCut) {
  const gate::Elaboration elab = gate::elaborate(circuits::make_fig2(2));
  const EquivResult r =
      check::check_equivalence(elab.netlist, elab.netlist);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
}

// ---------------------------------------------------------------------------
// pattern_at: counterexample vectors replay the run_random stream

TEST(PatternAt, ReconstructsTheDetectingVector) {
  const Netlist nl = small_random(21);
  const fault::FaultList fl = fault::FaultList::full(nl);
  fault::FaultSimulator sim(nl, fl);
  Xoshiro256 rng(42);
  const fault::CoverageCurve curve = sim.run_random(rng, 256);

  int checked = 0;
  for (std::size_t k = 0; k < fl.size() && checked < 10; ++k) {
    const std::int64_t p = curve.detected_at[k];
    if (p < 0) continue;
    const std::vector<bool> vec = check::pattern_at(nl, 42, p);
    EXPECT_TRUE(sim.detects_naive(fl[k], vec))
        << "fault " << fault::to_string(nl, fl[k]) << " at pattern " << p;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// ---------------------------------------------------------------------------
// Oracles: pass on identical pairs, fail (with replayable cx) on mutants

TEST(Oracles, AllPassOnIdenticalPairs) {
  const Netlist nl = small_random(31);
  const gate::Elaboration elab = gate::elaborate(circuits::make_fig2(2));
  for (const Netlist* n : {&nl, &elab.netlist}) {
    OracleContext ctx;
    ctx.ref = n;
    ctx.impl = n;
    for (const check::Oracle& o : check::standard_oracles()) {
      const Verdict v = o.fn(ctx);
      EXPECT_TRUE(v.pass) << o.name << ": " << v.detail;
    }
  }
}

TEST(Oracles, EveryOracleKillsAnInvertedOutput) {
  const Netlist nl = small_random(33);
  const Netlist mut = inverted_output_mutant(nl);
  OracleContext ctx;
  ctx.ref = &nl;
  ctx.impl = &mut;
  ctx.seed = 9;
  for (const check::Oracle& o : check::standard_oracles()) {
    const Verdict v = o.fn(ctx);
    EXPECT_FALSE(v.pass) << o.name << " missed an inverted output";
    EXPECT_TRUE(v.cx.valid) << o.name;
    EXPECT_EQ(v.cx.seed, 9u) << o.name;
    EXPECT_FALSE(v.cx.netlist_bench.empty()) << o.name;
    if (o.name == "eval_identity" || o.name == "miter_equivalence") {
      // Value-level oracles carry a diverging input vector; replay it.
      EXPECT_NE(eval_outputs(nl, v.cx.inputs), eval_outputs(mut, v.cx.inputs))
          << o.name;
    } else {
      // Curve oracles name the diverging fault and pattern index.
      EXPECT_FALSE(v.cx.fault.empty()) << o.name;
      EXPECT_GE(v.cx.pattern, 0) << o.name;
      EXPECT_EQ(v.cx.inputs.size(), nl.inputs().size()) << o.name;
    }
  }
}

TEST(Oracles, VerdictJsonCarriesTheCounterexample) {
  const Netlist nl = small_random(34);
  const Netlist mut = inverted_output_mutant(nl);
  OracleContext ctx;
  ctx.ref = &nl;
  ctx.impl = &mut;
  const Verdict v = check::eval_identity(ctx);
  ASSERT_FALSE(v.pass);
  const obs::Json j = v.to_json();
  EXPECT_EQ(j.find("oracle")->str(), "eval_identity");
  ASSERT_NE(j.find("counterexample"), nullptr);
  const obs::Json* cx = j.find("counterexample");
  EXPECT_NE(cx->find("inputs"), nullptr);
  EXPECT_NE(cx->find("netlist_bench"), nullptr);
}

// ---------------------------------------------------------------------------
// Mutation harness

TEST(Mutate, ApplyPreservesNetIdsAndInterface) {
  const Netlist nl = small_random(41);
  Xoshiro256 rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto m = check::random_mutation(nl, rng);
    ASSERT_TRUE(m.has_value());
    const Netlist mut = check::apply(nl, *m);
    EXPECT_EQ(mut.net_count(), nl.net_count());
    EXPECT_EQ(mut.inputs(), nl.inputs());
    EXPECT_EQ(mut.outputs(), nl.outputs());
    // Topology-only fault universes stay aligned for gate-type mutants,
    // which is what keeps the curve oracles' fault lists comparable.
    if (m->kind == Mutation::Kind::kGateType)
      EXPECT_EQ(fault::FaultList::full(mut).size(),
                fault::FaultList::full(nl).size());
  }
}

TEST(Mutate, RejectsInapplicableMutations) {
  const Netlist nl = small_random(42);
  Mutation m;
  m.kind = Mutation::Kind::kGateType;
  m.net = nl.inputs()[0];  // inputs are not mutable sites
  EXPECT_THROW(check::apply(nl, m), DesignError);
}

TEST(MutationSmoke, KillsEveryDecidedMutantAndRecordsSeeds) {
  const Netlist nl = small_random(51);
  const check::MutationReport rep =
      check::mutation_smoke(nl, check::standard_oracles(), 20, 900);
  EXPECT_GT(rep.mutants, 0u);
  EXPECT_DOUBLE_EQ(rep.kill_rate(), 1.0);
  EXPECT_GE(rep.strong_kill_rate(), 0.95);

  for (const check::MutantRecord& rec : rep.records) {
    // Every record's seed regenerates the exact mutant.
    Xoshiro256 rng(rec.seed);
    const auto m = check::random_mutation(nl, rng);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(check::to_string(nl, *m), rec.site);
    if (!rec.equivalent && rec.decided)
      EXPECT_FALSE(rec.killed_by.empty()) << rec.site;
  }

  const obs::Json j = rep.to_json();
  EXPECT_NE(j.find("kill_rate"), nullptr);
  EXPECT_NE(j.find("records"), nullptr);
}

TEST(MutationSmoke, EquivalentMutantsAreExcludedFromTheRate) {
  // y = AND(x0, x0) degrades gracefully: rewiring pin 1 from x1 to x0 gives
  // AND(x0, x0) vs OR-swap etc. Build a netlist where a known mutation is
  // equivalent: BUF(BUF(x)) -> rewiring the outer BUF from the inner BUF to
  // x changes structure but not function.
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId b1 = nl.add_gate(GateType::kBuf, {x});
  const NetId b2 = nl.add_gate(GateType::kBuf, {b1});
  nl.mark_output(b2, "y");
  nl.validate();
  Mutation m;
  m.kind = Mutation::Kind::kRewire;
  m.net = b2;
  m.pin = 0;
  m.new_src = x;
  const Netlist mut = check::apply(nl, m);
  const EquivResult r = check::check_equivalence(nl, mut);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
}

// ---------------------------------------------------------------------------
// TPG: the rank certificate notices a corrupted design

TEST(TpgRecheck, RankCertificateSurvivesOptimizationAndCatchesCorruption) {
  const auto s = tpg::GeneralizedStructure::single_cone(
      {{"A", 2}, {"B", 2}}, {1, 2});
  const tpg::OrderResult opt = tpg::optimize_register_order(s);
  const tpg::ExhaustiveReport rank = tpg::check_exhaustive_rank(opt.design);
  ASSERT_TRUE(rank.all_exhaustive);
  // Cross-check against full-period TPG simulation.
  if (opt.design.lfsr_stages <= 16) {
    EXPECT_TRUE(tpg::check_exhaustive_sim(opt.design).all_exhaustive);
  }

  // Corrupt the design: two cells of one register share a label, so their
  // first-stage offsets collide and the cone's GF(2) rank drops.
  tpg::TpgDesign bad = opt.design;
  ASSERT_GE(bad.cell_label[0].size(), 2u);
  bad.cell_label[0][1] = bad.cell_label[0][0];
  EXPECT_FALSE(tpg::check_exhaustive_rank(bad).all_exhaustive);
}

// ---------------------------------------------------------------------------
// Supporting comparison primitives

TEST(FirstDifference, LocalizesCurveDivergence) {
  fault::CoverageCurve a, b;
  a.detected_at = {3, -1, 7};
  b.detected_at = {3, -1, 7};
  EXPECT_EQ(a.first_difference(b), -1);
  b.detected_at[1] = 5;
  EXPECT_EQ(a.first_difference(b), 1);
  b.detected_at = {3, -1};
  EXPECT_EQ(a.first_difference(b), 2);  // length mismatch -> shorter end
}

TEST(SessionReport, EqualityIsFieldwise) {
  sim::SessionReport a;
  a.cycles = 100;
  a.golden_signatures = {1, 2};
  sim::SessionReport b = a;
  EXPECT_TRUE(a == b);
  b.detected_by_signature = 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace bibs
