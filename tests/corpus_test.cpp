// Tests for the corpus regression harness (src/corpus): subset definitions,
// byte-identity of the table across thread counts and across
// interrupted-and-resumed runs, checkpoint digest hygiene, and the
// diff_tables gate that the CI golden comparison rests on.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "corpus/corpus.hpp"
#include "obs/json.hpp"

namespace bibs {
namespace {

using corpus::CircuitKind;
using corpus::CircuitSpec;
using corpus::CorpusResult;
using corpus::SweepOptions;

/// Removes a scratch file on scope exit (and on construction, in case a
/// previous crashed run left one behind).
struct ScratchFile {
  explicit ScratchFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScratchFile() { std::remove(path.c_str()); }
  std::string path;
};

/// A three-unit mini corpus (two .bench circuits + one data path) with a
/// pattern budget small enough for tier 1.
std::vector<CircuitSpec> mini_specs() {
  std::vector<CircuitSpec> specs;
  specs.push_back({"c17", CircuitKind::kBenchFile, "iscas85/c17.bench", 0, 0});
  specs.push_back(
      {"c432", CircuitKind::kBenchFile, "iscas85/c432.bench", 0, 0});
  specs.push_back({"c5a2m_w2", CircuitKind::kPaperDatapath, "c5a2m", 0, 2});
  return specs;
}

SweepOptions mini_options() {
  SweepOptions opt;
  opt.data_dir = std::string(BIBS_SOURCE_DIR) + "/data";
  opt.max_patterns = 256;
  opt.budgets = {64, 256};
  opt.session_cycles = 256;
  opt.run_checks = false;  // the oracle subset has its own tier-1 coverage
  return opt;
}

TEST(CorpusSubsets, NamedSubsetsAreWellFormed) {
  for (const char* name : {"tier1", "quick", "full"}) {
    const std::vector<CircuitSpec> specs = corpus::standard_corpus(name);
    ASSERT_FALSE(specs.empty()) << name;
    std::set<std::string> names;
    for (const CircuitSpec& s : specs) {
      EXPECT_TRUE(names.insert(s.name).second)
          << "duplicate " << s.name << " in " << name;
    }
  }
  EXPECT_LT(corpus::standard_corpus("tier1").size(),
            corpus::standard_corpus("quick").size());
  EXPECT_LT(corpus::standard_corpus("quick").size(),
            corpus::standard_corpus("full").size());
  // The full subset carries the whole committed ISCAS-85 suite.
  EXPECT_GE(corpus::standard_corpus("full").size(), 11u);
  EXPECT_THROW(corpus::standard_corpus("nope"), DesignError);
}

TEST(CorpusSweep, TableCoversCircuitsAndModels) {
  const CorpusResult r = corpus::run_corpus(mini_specs(), mini_options());
  ASSERT_EQ(r.status, rt::RunStatus::kFinished);
  EXPECT_EQ(r.units_done, 3u);
  const obs::Json* units = r.table.find("circuits");
  ASSERT_NE(units, nullptr);
  ASSERT_EQ(units->size(), 3u);
  for (const obs::Json& u : units->items()) {
    const obs::Json* models = u.find("models");
    ASSERT_NE(models, nullptr);
    for (const char* m : {"stuck_at", "transition"}) {
      const obs::Json* model = models->find(m);
      ASSERT_NE(model, nullptr) << u.dump();
      EXPECT_GT(model->find("faults")->number(), 0.0);
    }
  }
  // The data path ran a BIST session; .bench circuits have no registers.
  EXPECT_NE(units->items()[2].find("session"), nullptr);
  EXPECT_EQ(units->items()[0].find("session"), nullptr);
}

TEST(CorpusSweep, TableIsThreadCountInvariant) {
  SweepOptions opt = mini_options();
  const CorpusResult serial = corpus::run_corpus(mini_specs(), opt);
  ASSERT_EQ(serial.status, rt::RunStatus::kFinished);
  opt.threads = 4;
  const CorpusResult threaded = corpus::run_corpus(mini_specs(), opt);
  ASSERT_EQ(threaded.status, rt::RunStatus::kFinished);
  EXPECT_EQ(serial.table.dump(), threaded.table.dump());
}

TEST(CorpusSweep, InterruptedRunResumesByteIdentical) {
  const ScratchFile ck("corpus_test_resume_ck.json");
  const std::vector<CircuitSpec> specs = mini_specs();

  SweepOptions straight_opt = mini_options();
  const CorpusResult straight = corpus::run_corpus(specs, straight_opt);
  ASSERT_EQ(straight.status, rt::RunStatus::kFinished);

  // First run: a unit budget of 1 stops after one completed circuit.
  SweepOptions opt = mini_options();
  opt.checkpoint_path = ck.path;
  opt.ctl.budget = 1;
  const CorpusResult part = corpus::run_corpus(specs, opt);
  EXPECT_EQ(part.status, rt::RunStatus::kBudgetExhausted);
  EXPECT_EQ(part.units_done, 1u);

  // Second run resumes from the checkpoint and completes; the final table
  // is byte-identical to the uninterrupted run's.
  opt.ctl = {};
  const CorpusResult resumed = corpus::run_corpus(specs, opt);
  ASSERT_EQ(resumed.status, rt::RunStatus::kFinished);
  EXPECT_EQ(resumed.units_done, 3u);
  EXPECT_EQ(resumed.table.dump(), straight.table.dump());
  // The reused prefix is visible in the timing table, not the diffed one.
  const obs::Json* timing_units = resumed.timing.find("circuits");
  ASSERT_NE(timing_units, nullptr);
  EXPECT_NE(timing_units->items()[0].find("resumed"), nullptr);
}

TEST(CorpusSweep, DigestMismatchDiscardsCheckpoint) {
  const ScratchFile ck("corpus_test_digest_ck.json");
  const std::vector<CircuitSpec> specs = mini_specs();

  SweepOptions opt = mini_options();
  opt.checkpoint_path = ck.path;
  opt.ctl.budget = 1;
  ASSERT_EQ(corpus::run_corpus(specs, opt).status,
            rt::RunStatus::kBudgetExhausted);

  // A result-affecting option changed: the checkpoint must be ignored, not
  // spliced into a table it no longer matches.
  opt.ctl = {};
  opt.seed = 99;
  const CorpusResult fresh = corpus::run_corpus(specs, opt);
  ASSERT_EQ(fresh.status, rt::RunStatus::kFinished);

  SweepOptions clean = mini_options();
  clean.seed = 99;
  const CorpusResult reference = corpus::run_corpus(specs, clean);
  EXPECT_EQ(fresh.table.dump(), reference.table.dump());
}

TEST(CorpusDigest, TracksResultAffectingOptionsOnly) {
  const std::vector<CircuitSpec> specs = mini_specs();
  SweepOptions opt = mini_options();
  const std::string base = corpus::options_digest(specs, opt);
  EXPECT_EQ(base.size(), 16u);

  SweepOptions threaded = opt;
  threaded.threads = 8;
  EXPECT_EQ(corpus::options_digest(specs, threaded), base);

  SweepOptions reseeded = opt;
  reseeded.seed = 2;
  EXPECT_NE(corpus::options_digest(specs, reseeded), base);

  std::vector<CircuitSpec> fewer = specs;
  fewer.pop_back();
  EXPECT_NE(corpus::options_digest(fewer, opt), base);
}

TEST(CorpusDiff, CatchesInjectedCoverageChange) {
  std::vector<CircuitSpec> specs = mini_specs();
  specs.resize(1);  // c17 alone keeps this instant
  const CorpusResult r = corpus::run_corpus(specs, mini_options());
  ASSERT_EQ(r.status, rt::RunStatus::kFinished);

  EXPECT_TRUE(corpus::diff_tables(r.table, r.table).empty());

  // Tamper with one coverage percentage in the serialized table — the kind
  // of silent curve shift the CI golden gate exists to catch.
  std::string doc = r.table.dump();
  const std::string::size_type at = doc.find("\"coverage_pct\":\"");
  ASSERT_NE(at, std::string::npos);
  const std::string::size_type digit = at + std::string("\"coverage_pct\":\"")
                                                .size();
  doc[digit] = doc[digit] == '9' ? '8' : '9';
  const obs::Json tampered = obs::Json::parse(doc);
  const std::vector<std::string> diffs = corpus::diff_tables(r.table, tampered);
  ASSERT_FALSE(diffs.empty());
  EXPECT_NE(diffs[0].find("coverage_pct"), std::string::npos);

  // Missing units are reported too, not silently accepted.
  EXPECT_FALSE(corpus::diff_tables(r.table, obs::Json::parse("{}")).empty());
}

}  // namespace
}  // namespace bibs
