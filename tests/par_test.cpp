// Tests for bibs::par — the deterministic fixed-chunk fork/join pool — and
// for the contract the engines build on it: fault-simulation coverage
// curves, BIST-session MISR signatures and CSTP reports are bit-identical
// for any thread count, including through a mid-run cancel + resume.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "fault/simulator.hpp"
#include "gate/synth.hpp"
#include "obs/json.hpp"
#include "par/pool.hpp"
#include "rt/checkpoint.hpp"
#include "rt/control.hpp"
#include "sim/cstp.hpp"
#include "sim/session.hpp"

namespace bibs {
namespace {

constexpr std::int64_t kNoStall = std::numeric_limits<std::int64_t>::max();

// ------------------------------------------------------------- ThreadPool --

TEST(ThreadPool, ChunkRangesPartitionTheIndexSpace) {
  for (std::size_t n : {0u, 1u, 5u, 63u, 64u, 101u, 1000u}) {
    for (int k : {1, 2, 3, 4, 8}) {
      std::size_t expected_begin = 0;
      for (int c = 0; c < k; ++c) {
        const auto [b, e] = par::ThreadPool::chunk_range(n, k, c);
        EXPECT_EQ(b, expected_begin) << "n=" << n << " k=" << k << " c=" << c;
        EXPECT_LE(e - b, n / static_cast<std::size_t>(k) + 1);
        expected_begin = e;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  par::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_chunks(hits.size(), [&](int, std::size_t b,
                                            std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkZeroRunsOnTheCallingThread) {
  par::ThreadPool pool(3);
  std::thread::id chunk0_id;
  pool.parallel_for_chunks(3, [&](int chunk, std::size_t, std::size_t) {
    if (chunk == 0) chunk0_id = std::this_thread::get_id();
  });
  EXPECT_EQ(chunk0_id, std::this_thread::get_id());
}

TEST(ThreadPool, SerialPoolRunsInlineAsOneChunk) {
  par::ThreadPool pool(1);
  int calls = 0;
  std::size_t seen_begin = 99, seen_end = 0;
  pool.parallel_for_chunks(17, [&](int chunk, std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(chunk, 0);
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 17u);
}

TEST(ThreadPool, PoolIsReusableAcrossJobs) {
  par::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for_chunks(100, [&](int, std::size_t b, std::size_t e) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(ThreadPool, LowestChunkExceptionWinsDeterministically) {
  par::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.parallel_for_chunks(4, [&](int chunk, std::size_t, std::size_t) {
        if (chunk == 1) throw std::runtime_error("chunk one");
        if (chunk == 3) throw std::runtime_error("chunk three");
      });
      FAIL() << "exceptions were swallowed";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk one");
    }
  }
}

TEST(ThreadPool, ResolveThreadsHonoursRequestThenEnvThenSerialDefault) {
  const char* saved = std::getenv("BIBS_THREADS");
  const std::string saved_value = saved ? saved : "";

  unsetenv("BIBS_THREADS");
  EXPECT_EQ(par::resolve_threads(3), 3);
  EXPECT_EQ(par::resolve_threads(0), 1);
  EXPECT_EQ(par::env_threads(), 0);

  setenv("BIBS_THREADS", "2", 1);
  EXPECT_EQ(par::env_threads(), 2);
  EXPECT_EQ(par::resolve_threads(0), 2);
  EXPECT_EQ(par::resolve_threads(3), 3);  // explicit request wins

  setenv("BIBS_THREADS", "not-a-number", 1);
  EXPECT_EQ(par::env_threads(), 0);
  EXPECT_EQ(par::resolve_threads(0), 1);

  setenv("BIBS_THREADS", "-4", 1);
  EXPECT_EQ(par::env_threads(), 0);

  if (saved)
    setenv("BIBS_THREADS", saved_value.c_str(), 1);
  else
    unsetenv("BIBS_THREADS");
}

TEST(ThreadPool, ThreadCountIsClampedAgainstOversubscription) {
  EXPECT_EQ(par::resolve_threads(1 << 20), 4 * par::hardware_threads());
  EXPECT_GE(par::hardware_threads(), 1);
}

// -------------------------------------------------- fault-sim invariance --

// The c3a2m whole-data-path combinational kernel: a realistic netlist
// (thousands of gates / collapsed faults) so the parallel fault loop does
// real work in every block.
gate::Netlist datapath_kernel() {
  const rtl::Netlist n = circuits::make_c3a2m();
  const gate::Elaboration elab = gate::elaborate(n);
  std::vector<rtl::ConnId> in_regs, out_regs;
  for (const auto& c : n.connections()) {
    if (!c.is_register()) continue;
    if (n.block(c.from).kind == rtl::BlockKind::kInput) in_regs.push_back(c.id);
    if (n.block(c.to).kind == rtl::BlockKind::kOutput) out_regs.push_back(c.id);
  }
  return gate::combinational_kernel(elab, n, in_regs, out_regs);
}

fault::CoverageCurve random_curve(const gate::Netlist& nl, int threads,
                                  std::int64_t patterns) {
  fault::FaultSimulator sim(nl, fault::FaultList::collapsed(nl));
  sim.set_threads(threads);
  Xoshiro256 rng(1994);
  return sim.run_random(rng, patterns, kNoStall);
}

TEST(FaultSimPar, CoverageCurveIsBitIdenticalAcrossThreadCounts) {
  const gate::Netlist nl = datapath_kernel();
  const fault::CoverageCurve one = random_curve(nl, 1, 1024);
  ASSERT_GT(one.detected_count(), 0u);

  for (int threads : {2, par::hardware_threads(), 4}) {
    const fault::CoverageCurve many = random_curve(nl, threads, 1024);
    EXPECT_EQ(many.patterns_run, one.patterns_run) << threads << " threads";
    EXPECT_EQ(many.detected_at, one.detected_at) << threads << " threads";
    EXPECT_EQ(many.status, one.status);
  }
}

TEST(FaultSimPar, WeightedAndExhaustiveRunsMatchAcrossThreadCounts) {
  // A 16-input AND cone is random-pattern resistant, so weighted patterns
  // and the exhaustive sweep exercise detection at very different indices.
  gate::Netlist nl;
  gate::Bus ins;
  for (int i = 0; i < 16; ++i)
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.mark_output(nl.add_gate(gate::GateType::kAnd, ins, "all"), "y");

  fault::FaultSimulator serial(nl, fault::FaultList::full(nl));
  fault::FaultSimulator parallel(nl, fault::FaultList::full(nl));
  parallel.set_threads(4);

  Xoshiro256 rng_a(7), rng_b(7);
  const auto wa = serial.run_weighted(rng_a, 0.9, 4096, kNoStall);
  const auto wb = parallel.run_weighted(rng_b, 0.9, 4096, kNoStall);
  EXPECT_EQ(wa.detected_at, wb.detected_at);
  EXPECT_EQ(wa.patterns_run, wb.patterns_run);

  const auto ea = serial.run_exhaustive();
  const auto eb = parallel.run_exhaustive();
  EXPECT_EQ(ea.detected_at, eb.detected_at);
  EXPECT_EQ(ea.patterns_run, eb.patterns_run);
}

TEST(FaultSimPar, StallLimitDecisionIsThreadCountInvariant) {
  const gate::Netlist nl = datapath_kernel();
  // A tight stall limit makes the stop decision depend on the merged
  // last-detection bookkeeping — the part a racy merge would corrupt.
  const std::int64_t stall = 128;
  fault::FaultSimulator a(nl, fault::FaultList::collapsed(nl));
  fault::FaultSimulator b(nl, fault::FaultList::collapsed(nl));
  b.set_threads(4);
  Xoshiro256 rng_a(3), rng_b(3);
  const auto ca = a.run_random(rng_a, 1 << 16, stall);
  const auto cb = b.run_random(rng_b, 1 << 16, stall);
  EXPECT_EQ(ca.patterns_run, cb.patterns_run);
  EXPECT_EQ(ca.detected_at, cb.detected_at);
}

TEST(FaultSimPar, CancelAndResumeUnderFourThreadsIsBitExact) {
  const gate::Netlist nl = datapath_kernel();
  const fault::FaultList fl = fault::FaultList::collapsed(nl);
  const std::int64_t patterns = 8192;

  // Reference: uninterrupted serial run.
  fault::FaultSimulator ref(nl, fl);
  Xoshiro256 ref_rng(42);
  const fault::CoverageCurve full = ref.run_random(ref_rng, patterns, kNoStall);
  ASSERT_EQ(full.status, rt::RunStatus::kFinished);

  // Same run under 4 threads, cancelled from the progress callback once a
  // quarter of the patterns are through, checkpointed through a JSON round
  // trip, resumed under 4 threads with a wrong-seeded generator.
  fault::FaultSimulator sim(nl, fl);
  sim.set_threads(4);
  rt::RunControl ctl;
  sim.set_progress(
      [&](const obs::Progress& p) {
        if (p.done >= patterns / 4) ctl.token.request_cancel();
      },
      512);
  Xoshiro256 rng(42);
  const fault::CoverageCurve part =
      sim.run_random(rng, patterns, kNoStall, ctl);
  ASSERT_EQ(part.status, rt::RunStatus::kCancelled);
  ASSERT_GT(part.patterns_run, 0);
  ASSERT_LT(part.patterns_run, patterns);

  const rt::SimCheckpoint loaded = rt::SimCheckpoint::from_json(
      obs::Json::parse(sim.make_checkpoint(part, &rng).to_json().dump()));

  fault::FaultSimulator resumed_sim(nl, fl);
  resumed_sim.set_threads(4);
  Xoshiro256 wrong_rng(999);
  const fault::CoverageCurve resumed =
      resumed_sim.run_random(wrong_rng, patterns, kNoStall, {}, &loaded);
  EXPECT_EQ(resumed.status, rt::RunStatus::kFinished);
  EXPECT_EQ(resumed.patterns_run, full.patterns_run);
  EXPECT_EQ(resumed.detected_at, full.detected_at);
}

// ---------------------------------------------------- session invariance --

struct Rig {
  rtl::Netlist n;
  gate::Elaboration elab;
  core::DesignResult design;
  std::vector<core::Kernel> kernels;
};

Rig make_rig() {
  Rig s;
  s.n = circuits::make_c3a2m();
  s.elab = gate::elaborate(s.n);
  s.design = core::design_bibs(s.n);
  for (const core::Kernel& k : s.design.report.kernels)
    if (!k.trivial) s.kernels.push_back(k);
  return s;
}

TEST(SessionPar, SignaturesAndDetectionsAreBitIdenticalAcrossThreadCounts) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  // Pin 63-fault batches: a wide lane backend would fold this fault list
  // into one batch and the thread sweep would have nothing to chunk.
  session.set_batch_lanes(64);
  const fault::FaultList faults = session.kernel_faults();
  ASSERT_GT(faults.size(), 2u * 63u);  // at least three 63-fault batches

  const std::int64_t cycles = 256;
  rt::SessionCheckpoint ref_ck;
  session.set_threads(1);
  const sim::SessionReport ref =
      session.run(faults, cycles, {}, nullptr, &ref_ck);
  ASSERT_EQ(ref.status, rt::RunStatus::kFinished);
  ASSERT_GT(ref.detected_by_signature, 0u);

  for (int threads : {2, par::hardware_threads(), 4}) {
    session.set_threads(threads);
    rt::SessionCheckpoint ck;
    const sim::SessionReport rep =
        session.run(faults, cycles, {}, nullptr, &ck);
    EXPECT_EQ(rep.status, rt::RunStatus::kFinished);
    EXPECT_EQ(rep.golden_signatures, ref.golden_signatures)
        << threads << " threads";
    EXPECT_EQ(rep.detected_at_outputs, ref.detected_at_outputs);
    EXPECT_EQ(rep.detected_by_signature, ref.detected_by_signature);
    EXPECT_EQ(rep.aliased, ref.aliased);
    EXPECT_EQ(ck.detected_at_outputs, ref_ck.detected_at_outputs)
        << threads << " threads";
    EXPECT_EQ(ck.detected_by_signature, ref_ck.detected_by_signature);
    EXPECT_EQ(ck.golden_signatures, ref_ck.golden_signatures);
    EXPECT_EQ(ck.batches_done, ref_ck.batches_done);
  }
}

TEST(SessionPar, CancelAndResumeUnderFourThreadsMatchesUninterruptedRun) {
  const Rig s = make_rig();
  ASSERT_FALSE(s.kernels.empty());
  sim::BistSession session(s.n, s.elab, s.design.bilbo, s.kernels[0]);
  session.set_batch_lanes(64);  // several batches, so the cancel can land
                                // between completed ones
  const fault::FaultList faults = session.kernel_faults();

  const std::int64_t cycles = 256;
  session.set_threads(1);
  const sim::SessionReport full = session.run(faults, cycles);
  ASSERT_EQ(full.status, rt::RunStatus::kFinished);

  // Cancel from another thread mid-run under 4 threads. Wherever the cancel
  // lands, the checkpointed prefix must resume to the uninterrupted result.
  session.set_threads(4);
  rt::RunControl ctl;
  std::thread canceller([&ctl] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ctl.token.request_cancel();
  });
  rt::SessionCheckpoint ck;
  const sim::SessionReport part =
      session.run(faults, cycles, ctl, nullptr, &ck);
  canceller.join();
  ASSERT_LE(ck.batches_done, (faults.size() + 62) / 63);

  const rt::SessionCheckpoint loaded = rt::SessionCheckpoint::from_json(
      obs::Json::parse(ck.to_json().dump()));
  const sim::SessionReport resumed =
      session.run(faults, cycles, {}, &loaded);
  EXPECT_EQ(resumed.status, rt::RunStatus::kFinished);
  EXPECT_EQ(resumed.detected_at_outputs, full.detected_at_outputs);
  EXPECT_EQ(resumed.detected_by_signature, full.detected_by_signature);
  EXPECT_EQ(resumed.aliased, full.aliased);
  EXPECT_EQ(resumed.golden_signatures, full.golden_signatures);
}

TEST(CstpPar, ReportIsBitIdenticalAcrossThreadCounts) {
  const Rig s = make_rig();
  sim::CstpSession cstp(s.elab.netlist);
  cstp.set_batch_lanes(64);  // several 63-fault batches to chunk
  const fault::FaultList faults = fault::FaultList::collapsed(s.elab.netlist);
  ASSERT_GT(faults.size(), 63u);

  cstp.set_threads(1);
  const sim::CstpReport ref = cstp.run(faults, 128);
  ASSERT_EQ(ref.status, rt::RunStatus::kFinished);

  for (int threads : {2, 4}) {
    cstp.set_threads(threads);
    const sim::CstpReport rep = cstp.run(faults, 128);
    EXPECT_EQ(rep.status, rt::RunStatus::kFinished);
    EXPECT_EQ(rep.detected_ideal, ref.detected_ideal) << threads;
    EXPECT_EQ(rep.detected_by_signature, ref.detected_by_signature);
  }
}

}  // namespace
}  // namespace bibs
