// Tests for the PODEM ATPG engine, including the decisive cross-check:
// PODEM's detectable/undetectable classification must agree exactly with
// exhaustive fault simulation on every circuit small enough to enumerate.

#include <gtest/gtest.h>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "fault/atpg.hpp"
#include "fault/simulator.hpp"
#include "gate/synth.hpp"

namespace bibs::fault {
namespace {

using gate::Bus;
using gate::GateType;
using gate::NetId;
using gate::Netlist;

Netlist tiny() {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId ab = nl.add_gate(GateType::kAnd, {a, b}, "ab");
  const NetId nc = nl.add_gate(GateType::kNot, {c}, "nc");
  const NetId y = nl.add_gate(GateType::kOr, {ab, nc}, "y");
  nl.mark_output(y, "y");
  return nl;
}

TEST(Podem, FindsKnownTest) {
  const Netlist nl = tiny();
  Podem atpg(nl);
  // a s-a-0 needs a=b=1 and c=1.
  const AtpgResult r = atpg.generate(Fault{0, -1, false});
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  FaultSimulator sim(nl, FaultList::full(nl));
  EXPECT_TRUE(sim.detects_naive(Fault{0, -1, false}, r.pattern));
}

TEST(Podem, GeneratedPatternsAlwaysVerify) {
  // Every pattern PODEM emits must actually detect its fault (checked with
  // the independent naive simulator).
  const Netlist nl = [] {
    Netlist n;
    Bus a, b;
    for (int i = 0; i < 4; ++i) a.push_back(n.add_input());
    for (int i = 0; i < 4; ++i) b.push_back(n.add_input());
    Bus p = gate::array_multiplier(n, a, b, 4);
    for (NetId o : p) n.mark_output(o);
    return n;
  }();
  const FaultList faults = FaultList::collapsed(nl);
  Podem atpg(nl);
  FaultSimulator sim(nl, faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const AtpgResult r = atpg.generate(faults[i]);
    if (r.status == AtpgStatus::kDetected) {
      EXPECT_TRUE(sim.detects_naive(faults[i], r.pattern))
          << to_string(nl, faults[i]);
    }
  }
}

TEST(Podem, ProvesRedundancy) {
  // y = a | (a & b): the AND gate is functionally redundant, so faults that
  // only change (a & b) when a=1 are undetectable.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ab = nl.add_gate(GateType::kAnd, {a, b}, "ab");
  const NetId y = nl.add_gate(GateType::kOr, {a, ab}, "y");
  nl.mark_output(y, "y");
  Podem atpg(nl);
  // ab s-a-0 is undetectable: ab=1 requires a=1, which already forces y=1.
  EXPECT_EQ(atpg.generate(Fault{ab, -1, false}).status,
            AtpgStatus::kUndetectable);
  // ab s-a-1 is detectable with a=0, b=0? y would become 1 instead of 0.
  EXPECT_EQ(atpg.generate(Fault{ab, -1, true}).status, AtpgStatus::kDetected);
}

class PodemVsExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(PodemVsExhaustive, ClassificationMatchesGroundTruth) {
  // Random small circuits: PODEM must agree with exhaustive simulation on
  // every single fault.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 1299709);
  Netlist nl;
  std::vector<NetId> pool;
  const int nin = 4 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < nin; ++i) pool.push_back(nl.add_input());
  const int ngates = 10 + static_cast<int>(rng.next_below(25));
  for (int g = 0; g < ngates; ++g) {
    const GateType types[] = {GateType::kAnd,  GateType::kOr,
                              GateType::kXor,  GateType::kNand,
                              GateType::kNor,  GateType::kNot,
                              GateType::kXnor, GateType::kBuf};
    const GateType t = types[rng.next_below(8)];
    if (t == GateType::kNot || t == GateType::kBuf) {
      pool.push_back(nl.add_gate(t, {pool[rng.next_below(pool.size())]}));
    } else {
      pool.push_back(nl.add_gate(t, {pool[rng.next_below(pool.size())],
                                     pool[rng.next_below(pool.size())]}));
    }
  }
  for (int k = 0; k < 3; ++k)
    nl.mark_output(pool[pool.size() - 1 - static_cast<std::size_t>(k)]);

  const FaultList faults = FaultList::full(nl);
  FaultSimulator sim(nl, faults);
  const CoverageCurve truth = sim.run_exhaustive();

  Podem atpg(nl);
  const AtpgSummary summary = atpg.classify(faults, 100000);
  EXPECT_EQ(summary.aborted, 0u);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool truly_detectable =
        truth.detected_at[i] != CoverageCurve::kUndetected;
    const bool podem_detectable = summary.status[i] == AtpgStatus::kDetected;
    EXPECT_EQ(podem_detectable, truly_detectable)
        << to_string(nl, faults[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemVsExhaustive, ::testing::Range(1, 11));

TEST(Podem, TruncatedMultiplierRedundancyCount) {
  // The exact redundancy the exhaustive test measured: PODEM proves it.
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input());
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input());
  Bus p = gate::array_multiplier(nl, a, b, 4);
  for (NetId o : p) nl.mark_output(o);
  const FaultList faults = FaultList::collapsed(nl);

  FaultSimulator sim(nl, faults);
  const CoverageCurve truth = sim.run_exhaustive();
  Podem atpg(nl);
  const AtpgSummary summary = atpg.classify(faults, 100000);
  EXPECT_EQ(summary.aborted, 0u);
  EXPECT_EQ(summary.detected, truth.detected_count());
  EXPECT_EQ(summary.undetectable, faults.size() - truth.detected_count());
}

TEST(Podem, ScalesToTheDatapathKernel) {
  // An adder kernel of c5a2m (~16 inputs): classify everything, no aborts.
  const auto n = circuits::make_c5a2m();
  const auto elab = gate::elaborate(n);
  std::vector<rtl::ConnId> in_regs, out_regs;
  for (const auto& c : n.connections()) {
    if (!c.is_register()) continue;
    if (n.block(c.from).kind == rtl::BlockKind::kInput) in_regs.push_back(c.id);
    if (n.block(c.to).kind == rtl::BlockKind::kOutput) out_regs.push_back(c.id);
  }
  const Netlist comb = gate::combinational_kernel(elab, n, in_regs, out_regs);
  const FaultList faults = FaultList::collapsed(comb);
  Podem atpg(comb);
  const AtpgSummary summary = atpg.classify(faults, 10000);
  // Nearly everything classifies quickly; only the handful of genuinely
  // redundant faults (whose proofs need deep search over 64 PIs) may abort.
  // The dominance-collapsed universe is 1793 faults (2364 uncollapsed).
  EXPECT_LE(summary.aborted, 6u);
  EXPECT_GE(summary.detected, 1780u);
  EXPECT_EQ(summary.detected + summary.undetectable + summary.aborted,
            faults.size());
}

}  // namespace
}  // namespace bibs::fault
