// Section 2, quantified: why unbalanced kernels and conventional LFSRs do
// not mix. An unbalanced reconvergence (the Figure 1 shape) compares a value
// with its one-cycle-delayed self; detecting some of its faults requires a
// specific *sequence* of two vectors. An LFSR can never produce the
// sequence (u, u) — consecutive LFSR states are always distinct — so those
// faults stay undetected forever, while per-cycle random patterns catch
// them with probability 2^-w per cycle. This is exactly the paper's
// "conventional LFSRs usually cannot efficiently and effectively generate
// test sequences" argument, and the reason BIBS insists on balanced
// (1-step functionally testable) kernels.

#include <iostream>

#include "common/prng.hpp"
#include "common/table.hpp"
#include "fault/fault.hpp"
#include "gate/netlist.hpp"
#include "lfsr/lfsr.hpp"
#include "sim/lane_engine.hpp"

namespace {

using namespace bibs;
using gate::GateType;
using gate::NetId;

constexpr int kWidth = 8;

struct Circuit {
  gate::Netlist nl;
  std::vector<NetId> q;      // the TPG-driven register
  std::vector<NetId> delay;  // the delayed branch register
};

/// Q feeds block C both directly and through a 1-cycle delay register;
/// C = bitwise XNOR plus an AND-reduce "match" output (asserted iff
/// Q(t-1) == Q(t)).
Circuit make_unbalanced() {
  Circuit c;
  for (int i = 0; i < kWidth; ++i)
    c.q.push_back(c.nl.add_dff(gate::kNoNet, "q" + std::to_string(i)));
  // The TPG register is driven externally every cycle; give each cell a
  // hold-style D (its own Q) so the netlist validates.
  for (int i = 0; i < kWidth; ++i)
    c.nl.set_dff_d(c.q[static_cast<std::size_t>(i)],
                   c.q[static_cast<std::size_t>(i)]);
  for (int i = 0; i < kWidth; ++i)
    c.delay.push_back(
        c.nl.add_dff(c.q[static_cast<std::size_t>(i)],
                     "r" + std::to_string(i)));
  std::vector<NetId> eq;
  for (int i = 0; i < kWidth; ++i) {
    eq.push_back(c.nl.add_gate(GateType::kXnor,
                               {c.q[static_cast<std::size_t>(i)],
                                c.delay[static_cast<std::size_t>(i)]},
                               "eq" + std::to_string(i)));
    c.nl.mark_output(eq.back(), "eq" + std::to_string(i));
  }
  NetId match = eq[0];
  for (int i = 1; i < kWidth; ++i)
    match = c.nl.add_gate(GateType::kAnd, {match, eq[static_cast<std::size_t>(i)]},
                          "m" + std::to_string(i));
  c.nl.mark_output(match, "match");
  // A bus gated by the match condition: every gate in this cone needs the
  // (u, u) sequence for excitation, so the whole cone is LFSR-untestable.
  for (int i = 0; i < kWidth; ++i) {
    const NetId gated =
        c.nl.add_gate(GateType::kAnd,
                      {match, c.delay[static_cast<std::size_t>(i)]},
                      "gated" + std::to_string(i));
    c.nl.mark_output(gated, "y" + std::to_string(i));
  }
  c.nl.validate();
  return c;
}

std::size_t run(const Circuit& c, const fault::FaultList& faults,
                bool use_lfsr, int cycles) {
  std::vector<char> det(faults.size(), 0);
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t batch = std::min<std::size_t>(63, faults.size() - base);
    sim::LaneEngine eng(c.nl, std::span<const fault::Fault>(faults.faults())
                                  .subspan(base, batch));
    lfsr::Type1Lfsr gen(lfsr::primitive_polynomial(kWidth));
    Xoshiro256 rng(42);
    std::uint64_t diff = 0;
    for (int t = 0; t < cycles; ++t) {
      const std::uint64_t pattern =
          use_lfsr ? [&] {
            std::uint64_t v = 0;
            for (int i = 1; i <= kWidth; ++i)
              if (gen.stage(i)) v |= 1ull << (i - 1);
            gen.step();
            return v;
          }()
                   : (rng.next() & ((1ull << kWidth) - 1));
      for (int i = 0; i < kWidth; ++i)
        eng.set_dff_state(c.q[static_cast<std::size_t>(i)],
                          ((pattern >> i) & 1) ? ~0ull : 0ull);
      eng.eval();
      for (NetId o : c.nl.outputs()) {
        const std::uint64_t v = eng.value(o);
        diff |= v ^ ((v & 1u) ? ~0ull : 0ull);
      }
      eng.clock();
    }
    for (std::size_t k = 0; k < batch; ++k)
      if ((diff >> (k + 1)) & 1u) det[base + k] = 1;
  }
  std::size_t n = 0;
  for (char d : det) n += d;
  return n;
}

}  // namespace

int main() {
  const Circuit c = make_unbalanced();
  const fault::FaultList faults = fault::FaultList::collapsed(c.nl);

  Table t("Unbalanced (2-step) kernel: coverage under LFSR vs per-cycle "
          "random stimulus (" + std::to_string(faults.size()) + " faults)");
  t.header({"cycles", "LFSR detected", "random detected"});
  for (int cycles : {255, 1020, 4080, 16320}) {
    t.row({Table::num(cycles),
           Table::num(run(c, faults, true, cycles)),
           Table::num(run(c, faults, false, cycles))});
  }
  t.print(std::cout);
  std::cout <<
      "\nThe gap is structural, not statistical: faults on the AND-reduce\n"
      "'match' cone need the vector pair (u, u), and consecutive states of a\n"
      "maximal-length LFSR are never equal — no amount of extra cycles\n"
      "closes it. Random per-cycle patterns produce (u, u) with probability\n"
      "2^-8 per cycle and saturate. BIBS avoids the problem at the root by\n"
      "keeping every kernel balanced (1-step functionally testable), where\n"
      "single patterns — which LFSRs generate exhaustively — suffice.\n";
  return 0;
}
