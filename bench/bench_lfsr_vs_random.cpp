// The paper's Section 3.4 caveat, quantified: "the actual number of test
// patterns required may vary slightly if LFSRs are employed" (Table 2 used
// true random patterns). We fault-simulate the [3] kernels of c5a2m with
// both pattern sources — a seeded PRNG and the concatenated maximal-length
// LFSR a BILBO TPG actually produces — and compare patterns-to-100%.

#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "fault/simulator.hpp"
#include "gate/synth.hpp"
#include "lfsr/lfsr.hpp"

namespace {

using namespace bibs;

/// Pattern source stepping a type-1 LFSR whose stages drive the kernel PIs.
fault::FaultSimulator::PatternBlockFn lfsr_source(lfsr::Type1Lfsr& gen,
                                                  std::size_t nin) {
  return [&gen, nin](std::uint64_t* words) {
    for (std::size_t i = 0; i < nin; ++i) words[i] = 0;
    for (int lane = 0; lane < 64; ++lane) {
      gen.step();
      for (std::size_t i = 0; i < nin; ++i)
        if (gen.stage(static_cast<int>(i) + 1)) words[i] |= 1ull << lane;
    }
    return 64;
  };
}

}  // namespace

int main() {
  const auto n = circuits::make_c5a2m();
  const auto elab = gate::elaborate(n);
  const auto design = core::design_ka85(n);

  Table t("Random vs LFSR pattern sources: patterns to 100% of detectable "
          "faults ([3] kernels of c5a2m)");
  t.header({"kernel", "inputs", "faults", "random (seed 1)", "random (seed 2)",
            "LFSR", "weighted p=0.75"});
  for (const core::Kernel& k : design.report.kernels) {
    if (k.trivial) continue;
    const auto comb =
        gate::combinational_kernel(elab, n, k.input_regs, k.output_regs);
    const auto faults = fault::FaultList::collapsed(comb);
    std::string name;
    for (rtl::BlockId b : k.blocks)
      if (n.block(b).kind == rtl::BlockKind::kComb) name += n.block(b).name;

    std::vector<std::string> cells = {
        name, Table::num(comb.inputs().size()), Table::num(faults.size())};
    for (std::uint64_t seed : {11ull, 22ull}) {
      fault::FaultSimulator sim(comb, faults);
      Xoshiro256 rng(seed);
      const auto curve = sim.run_random(rng, 1 << 20, 40000);
      cells.push_back(Table::num(curve.patterns_for_fraction(1.0)));
    }
    {
      fault::FaultSimulator sim(comb, faults);
      lfsr::Type1Lfsr gen(lfsr::primitive_polynomial(
          static_cast<int>(comb.inputs().size())));
      const auto curve =
          sim.run(lfsr_source(gen, comb.inputs().size()), 1 << 20, 40000);
      cells.push_back(Table::num(curve.patterns_for_fraction(1.0)));
    }
    {
      // Weighted patterns help carry-chain faults (which want mostly-1
      // operands) and are the standard fix when uniform-random counts blow
      // up — the regime the paper's Table 2 numbers lived in.
      fault::FaultSimulator sim(comb, faults);
      Xoshiro256 rng(33);
      const auto curve = sim.run_weighted(rng, 0.75, 1 << 20, 40000);
      cells.push_back(Table::num(curve.patterns_for_fraction(1.0)));
    }
    t.row(cells);
  }
  t.print(std::cout);
  std::cout << "\nLFSR-generated patterns track the uniform-random counts "
               "within the same order\nof magnitude, confirming the paper's "
               "\"may vary slightly\" remark (the LFSR\nnever emits all-0, "
               "fixable with a complete LFSR [15]). The weighted column\n"
               "shows why weighting is a targeted tool, not a default: biasing"
               " towards 1s\nspeeds up mostly-1 fault classes but starves the"
               " s-a-1 faults that need 0s,\nand costs more patterns overall "
               "on these balanced adder/multiplier kernels.\n";
  return 0;
}
