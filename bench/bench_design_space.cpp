// The "family of testable designs" the BITS system offers [13]: a Pareto
// sweep on each data path from the minimum-hardware BIBS point towards full
// conversion, trading BILBO flip-flops against the width of the largest
// kernel (the exponent of the functionally exhaustive test time).

#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/table.hpp"
#include "core/explore.hpp"

int main() {
  using namespace bibs;
  for (const char* which : {"c5a2m", "c3a2m", "c4a4m"}) {
    rtl::Netlist n;
    if (std::string(which) == "c5a2m") n = circuits::make_c5a2m();
    else if (std::string(which) == "c3a2m") n = circuits::make_c3a2m();
    else n = circuits::make_c4a4m();

    const auto frontier = core::explore_design_space(n);
    Table t(std::string(which) +
            ": hardware vs test-time frontier (each row adds BILBOs to "
            "shrink the dominating kernel)");
    t.header({"BILBO registers", "BILBO FFs", "kernels", "sessions",
              "max kernel width M", "exhaustive test ~2^M"});
    for (const auto& p : frontier) {
      std::string time = p.max_kernel_width < 63
                             ? Table::num(1ll << p.max_kernel_width)
                             : "2^" + std::to_string(p.max_kernel_width);
      t.row({Table::num(p.bilbo.size()), Table::num(p.bilbo_ffs),
             Table::num(p.kernels), Table::num(p.sessions),
             Table::num(p.max_kernel_width), time});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout <<
      "The first row is the paper's BIBS design (min hardware, one big\n"
      "kernel); the last approaches the per-block kernels of [3]. A designer\n"
      "picks the row matching the area/test-time budget — exactly the family\n"
      "of solutions the BITS system offers.\n";
  return 0;
}
