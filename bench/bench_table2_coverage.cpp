// Reproduces Table 2 rows 5-8: random patterns and test time to reach 99.5%
// and 100% coverage of detectable stuck-at faults, for BIBS (the whole data
// path as one balanced kernel) vs [3] (every adder/multiplier a kernel,
// scheduled into two sessions).
//
// Methodology mirrors the paper: true random patterns (not LFSR streams)
// through a fault simulator; "detectable" is the saturation set of a long
// random run; per-kernel pattern counts are summed for the "# of patterns"
// rows and scheduled (concurrent kernels take the max) for "test time".

#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "core/schedule.hpp"
#include "fault/simulator.hpp"
#include "gate/synth.hpp"

namespace {

using namespace bibs;

struct KernelResult {
  std::size_t faults = 0;
  std::size_t detectable = 0;
  std::int64_t p995 = 0;
  std::int64_t p100 = 0;
};

KernelResult run_kernel(const gate::Elaboration& elab, const rtl::Netlist& n,
                        const std::vector<rtl::ConnId>& in_regs,
                        const std::vector<rtl::ConnId>& out_regs,
                        std::uint64_t seed) {
  const gate::Netlist comb =
      gate::combinational_kernel(elab, n, in_regs, out_regs);
  fault::FaultSimulator sim(comb, fault::FaultList::collapsed(comb));
  Xoshiro256 rng(seed);
  const auto curve = sim.run_random(rng, 2'000'000, /*stall_limit=*/60'000);
  KernelResult r;
  r.faults = curve.total_faults();
  r.detectable = curve.detected_count();
  r.p995 = curve.patterns_for_fraction(0.995);
  r.p100 = curve.patterns_for_fraction(1.0);
  return r;
}

struct TdmResult {
  std::int64_t p995 = 0, t995 = 0, p100 = 0, t100 = 0;
  std::size_t faults = 0, detectable = 0;
};

TdmResult run_tdm(const rtl::Netlist& n, const core::DesignResult& design,
                  std::uint64_t seed, Table* per_kernel = nullptr,
                  const char* circuit = "") {
  const gate::Elaboration elab = gate::elaborate(n);
  std::vector<core::Kernel> kernels;
  for (const core::Kernel& k : design.report.kernels)
    if (!k.trivial) kernels.push_back(k);

  TdmResult out;
  std::vector<std::int64_t> p995s, p100s;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelResult r = run_kernel(elab, n, kernels[i].input_regs,
                                      kernels[i].output_regs, seed + i);
    out.faults += r.faults;
    out.detectable += r.detectable;
    out.p995 += r.p995;
    out.p100 += r.p100;
    p995s.push_back(r.p995);
    p100s.push_back(r.p100);
    if (per_kernel) {
      std::string ops;
      for (rtl::BlockId b : kernels[i].blocks)
        if (n.block(b).kind == rtl::BlockKind::kComb)
          ops += n.block(b).name + " ";
      per_kernel->row({circuit, ops, Table::num(r.faults),
                       Table::num(r.detectable), Table::num(r.p100)});
    }
  }
  const core::Schedule sched = core::schedule_sessions(n, kernels);
  out.t995 = core::schedule_test_time(sched, p995s);
  out.t100 = core::schedule_test_time(sched, p100s);
  return out;
}

}  // namespace

int main() {
  struct Paper {
    long long p995, t995, p100, t100;
  };
  struct Circuit {
    const char* name;
    rtl::Netlist n;
    Paper bibs, ka;
  };
  std::vector<Circuit> circuits;
  circuits.push_back({"c5a2m", circuits::make_c5a2m(),
                      {1440, 1440, 7300, 7300}, {1660, 782, 4440, 2172}});
  circuits.push_back({"c3a2m", circuits::make_c3a2m(),
                      {2060, 2060, 9240, 9240}, {1596, 782, 4376, 2172}});
  circuits.push_back({"c4a4m", circuits::make_c4a4m(),
                      {1900, 1900, 19120, 19120}, {4128, 1037, 8688, 2172}});

  Table t("Table 2 (rows 5-8): random patterns / test time to 99.5% and 100%"
          " coverage of detectable faults");
  t.header({"circuit", "TDM", "faults", "detectable", "pat 99.5%", "(paper)",
            "time 99.5%", "(paper)", "pat 100%", "(paper)", "time 100%",
            "(paper)"});
  Table per_kernel("Per-kernel breakdown for [3] (paper in-text: ~2,140 "
                   "patterns per multiplier kernel, ~32 per adder kernel)");
  per_kernel.header({"circuit", "kernel blocks", "faults", "detectable",
                     "patterns to 100%"});
  // Pattern counts are tail statistics of the random stream; averaging a few
  // seeds separates the methodology effect from single-seed noise.
  const std::vector<std::uint64_t> seeds = {1994, 2024, 31, 777, 424242};
  for (auto& c : circuits) {
    TdmResult bibs{}, ka{};
    for (std::size_t si = 0; si < seeds.size(); ++si) {
      const TdmResult b = run_tdm(c.n, core::design_bibs(c.n), seeds[si]);
      const TdmResult a =
          run_tdm(c.n, core::design_ka85(c.n), seeds[si],
                  si == 0 ? &per_kernel : nullptr, c.name);
      bibs.p995 += b.p995; bibs.t995 += b.t995;
      bibs.p100 += b.p100; bibs.t100 += b.t100;
      ka.p995 += a.p995; ka.t995 += a.t995;
      ka.p100 += a.p100; ka.t100 += a.t100;
      bibs.faults = b.faults; bibs.detectable = b.detectable;
      ka.faults = a.faults; ka.detectable = a.detectable;
    }
    const auto k = static_cast<std::int64_t>(seeds.size());
    for (auto* r : {&bibs, &ka}) {
      r->p995 /= k; r->t995 /= k; r->p100 /= k; r->t100 /= k;
    }
    t.row({c.name, "BIBS", Table::num(bibs.faults),
           Table::num(bibs.detectable), Table::num(bibs.p995),
           Table::num(c.bibs.p995), Table::num(bibs.t995),
           Table::num(c.bibs.t995), Table::num(bibs.p100),
           Table::num(c.bibs.p100), Table::num(bibs.t100),
           Table::num(c.bibs.t100)});
    t.row({c.name, "[3]", Table::num(ka.faults), Table::num(ka.detectable),
           Table::num(ka.p995), Table::num(c.ka.p995), Table::num(ka.t995),
           Table::num(c.ka.t995), Table::num(ka.p100), Table::num(c.ka.p100),
           Table::num(ka.t100), Table::num(c.ka.t100)});
  }
  t.print(std::cout);
  std::cout << '\n';
  per_kernel.print(std::cout);
  std::cout <<
      "\nShape checks (the paper's qualitative claims; measured columns are\n"
      "5-seed means):\n"
      "  * both TDMs reach 100% coverage of detectable stuck-at faults;\n"
      "  * multiplier kernels need an order of magnitude more patterns than\n"
      "    adder kernels (paper: 2,140 vs 32);\n"
      "  * scheduling [3]'s kernels into 2 sessions cuts its test time well\n"
      "    below the summed pattern count (paper: 4,440 -> 2,172);\n"
      "  * the BIBS kernel exposes slightly fewer *detectable* faults: some\n"
      "    adder faults become unobservable through the truncated multiplier\n"
      "    that follows them, which is part of why the paper needed more\n"
      "    patterns for BIBS.\n"
      "Absolute counts are ~10-30x below the paper's: our synthesized adders\n"
      "and multipliers saturate random-pattern coverage much faster than the\n"
      "authors' library netlists, so the BIBS-vs-[3] pattern-count ordering\n"
      "sits inside seed noise here. See EXPERIMENTS.md for the full "
      "discussion.\n";
  return 0;
}
