// Reproduces Table 2 rows 1-4: kernels, test sessions, BILBO registers and
// maximal delay, for the BIBS TDM vs the Krasniewski-Albicki [3] TDM on the
// three data-path circuits. Paper values are printed alongside.

#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"

int main() {
  using namespace bibs;

  struct PaperRow {
    int kernels, sessions, bilbos, delay;
  };
  struct Circuit {
    const char* name;
    rtl::Netlist n;
    PaperRow bibs, ka;
  };
  std::vector<Circuit> circuits;
  circuits.push_back(
      {"c5a2m", circuits::make_c5a2m(), {1, 1, 9, 2}, {7, 2, 15, 4}});
  circuits.push_back(
      {"c3a2m", circuits::make_c3a2m(), {1, 1, 7, 2}, {5, 2, 15, 6}});
  circuits.push_back(
      {"c4a4m", circuits::make_c4a4m(), {1, 1, 10, 2}, {7, 2, 20, 4}});

  Table t("Table 2 (rows 1-4): BIBS vs [3]");
  t.header({"circuit", "TDM", "# kernels", "(paper)", "# sessions", "(paper)",
            "# BILBOs", "(paper)", "max delay", "(paper)"});
  for (auto& c : circuits) {
    const auto bibs = core::evaluate_design(c.n, core::design_bibs(c.n).bilbo);
    const auto ka = core::evaluate_design(c.n, core::design_ka85(c.n).bilbo);
    t.row({c.name, "BIBS", Table::num(bibs.kernels), Table::num(c.bibs.kernels),
           Table::num(bibs.sessions), Table::num(c.bibs.sessions),
           Table::num(bibs.bilbo_registers), Table::num(c.bibs.bilbos),
           Table::num(bibs.max_delay), Table::num(c.bibs.delay)});
    t.row({c.name, "[3]", Table::num(ka.kernels), Table::num(c.ka.kernels),
           Table::num(ka.sessions), Table::num(c.ka.sessions),
           Table::num(ka.bilbo_registers), Table::num(c.ka.bilbos),
           Table::num(ka.max_delay), Table::num(c.ka.delay)});
  }
  t.print(std::cout);
  std::cout <<
      "\nNote: the paper lists 7 kernels for c4a4m/[3]; with the shared "
      "(f+g)/(b+c)\npipeline registers fanning out to two multipliers each, "
      "component-based kernel\nextraction merges {M1,M4} and {M2,M3}, giving "
      "6. Every other cell matches.\n";
  return 0;
}
