// Aggregating benchmark driver behind scripts/run_benches.sh. Two jobs:
//
//  1. Thread-scaling measurements run in-process: the PPSFP fault simulator
//     on the c5a2m whole-data-path kernel (the engine behind Table 2), the
//     63-fault-batch BIST session, and the CSTP ring, each at every thread
//     count in --threads-list. Each configuration repeats --repeat times and
//     keeps the minimum wall time; results are checked bit-identical to the
//     1-thread reference before any speedup is reported.
//
//  2. Optionally (--suite-dir) every sibling bench_* binary is executed once
//     with BIBS_METRICS pointed at BENCH_<name>.json, so the whole table
//     suite leaves machine-readable run reports behind.
//
// Everything lands in one JSON document (--out, default BENCH_parallel.json);
// docs/performance.md describes the schema.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "fault/simulator.hpp"
#include "gate/synth.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "par/pool.hpp"
#include "sim/cstp.hpp"
#include "sim/session.hpp"

namespace {

using namespace bibs;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Options {
  std::vector<int> threads_list{1, 2, 4, 8};
  int repeat = 3;
  std::string out = "BENCH_parallel.json";
  std::string suite_dir;     // empty = skip the suite pass
  std::string metrics_dir = ".";
  std::int64_t patterns = 4096;  // fault-sim patterns per measurement
  std::int64_t cycles = 1024;    // session / cstp emulated cycles
};

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(std::stoi(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// One thread-scaling benchmark: run() executes the workload at the given
// thread count and returns {work done, fingerprint of the full result}.
struct ParallelBench {
  std::string name;
  std::string work_unit;
  std::function<std::pair<std::int64_t, std::string>(int threads)> run;
};

// The c5a2m BIBS kernel: every fixture below derives from the same netlist
// the acceptance criterion names.
struct Fixture {
  rtl::Netlist n = circuits::make_c5a2m();
  gate::Elaboration elab = gate::elaborate(n);
  core::DesignResult design = core::design_bibs(n);
  gate::Netlist kernel;
  const core::Kernel* first_kernel = nullptr;

  Fixture() {
    std::vector<rtl::ConnId> in_regs, out_regs;
    for (const auto& c : n.connections()) {
      if (!c.is_register()) continue;
      if (n.block(c.from).kind == rtl::BlockKind::kInput)
        in_regs.push_back(c.id);
      if (n.block(c.to).kind == rtl::BlockKind::kOutput)
        out_regs.push_back(c.id);
    }
    kernel = gate::combinational_kernel(elab, n, in_regs, out_regs);
    for (const core::Kernel& k : design.report.kernels)
      if (!k.trivial && !first_kernel) first_kernel = &k;
  }
};

std::string fingerprint(const std::vector<std::int64_t>& v) {
  // FNV-1a over the detection indices: cheap, order-sensitive, and any
  // single divergent element changes it.
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t x : v) {
    h ^= static_cast<std::uint64_t>(x);
    h *= 1099511628211ull;
  }
  return std::to_string(h);
}

std::vector<ParallelBench> make_benches(const Fixture& fx, const Options& o) {
  std::vector<ParallelBench> benches;

  benches.push_back(
      {"coverage_curve", "patterns", [&fx, &o](int threads) {
         fault::FaultSimulator sim(fx.kernel,
                                   fault::FaultList::collapsed(fx.kernel));
         sim.set_threads(threads);
         Xoshiro256 rng(1994);
         const fault::CoverageCurve c = sim.run_random(
             rng, o.patterns, std::numeric_limits<std::int64_t>::max());
         return std::pair<std::int64_t, std::string>(c.patterns_run,
                                                     fingerprint(c.detected_at));
       }});

  if (fx.first_kernel) {
    benches.push_back(
        {"session", "cycles", [&fx, &o](int threads) {
           sim::BistSession session(fx.n, fx.elab, fx.design.bilbo,
                                    *fx.first_kernel);
           session.set_threads(threads);
           const fault::FaultList faults = session.kernel_faults();
           const sim::SessionReport rep = session.run(faults, o.cycles);
           const std::int64_t batches =
               static_cast<std::int64_t>((faults.size() + 62) / 63);
           std::vector<std::int64_t> fp;
           for (std::uint64_t s : rep.golden_signatures)
             fp.push_back(static_cast<std::int64_t>(s));
           fp.push_back(static_cast<std::int64_t>(rep.detected_at_outputs));
           fp.push_back(static_cast<std::int64_t>(rep.detected_by_signature));
           return std::pair<std::int64_t, std::string>(o.cycles * batches,
                                                       fingerprint(fp));
         }});
  }

  benches.push_back(
      {"cstp", "cycles", [&fx, &o](int threads) {
         sim::CstpSession cstp(fx.elab.netlist);
         cstp.set_threads(threads);
         const fault::FaultList faults =
             fault::FaultList::collapsed(fx.elab.netlist);
         const sim::CstpReport rep = cstp.run(faults, o.cycles);
         const std::int64_t batches =
             static_cast<std::int64_t>((faults.size() + 62) / 63);
         return std::pair<std::int64_t, std::string>(
             o.cycles * batches,
             fingerprint({static_cast<std::int64_t>(rep.detected_ideal),
                          static_cast<std::int64_t>(rep.detected_by_signature)}));
       }});

  return benches;
}

obs::Json run_parallel_section(const Options& o) {
  const Fixture fx;
  obs::Json section = obs::Json::array();

  for (const ParallelBench& bench : make_benches(fx, o)) {
    double wall_1t = 0.0;
    std::string ref_fp;
    for (int threads : o.threads_list) {
      double best = -1.0;
      std::int64_t work = 0;
      std::string fp;
      for (int r = 0; r < o.repeat; ++r) {
        const Clock::time_point t0 = Clock::now();
        const auto [w, f] = bench.run(threads);
        const double wall = ms_since(t0);
        if (best < 0 || wall < best) best = wall;
        work = w;
        fp = f;
      }
      if (threads == o.threads_list.front() && ref_fp.empty()) {
        // The first (lowest) thread count is the identity reference.
        ref_fp = fp;
        wall_1t = best;
      }

      obs::Json row = obs::Json::object();
      row["bench"] = bench.name;
      row["threads"] = threads;
      row["wall_ms"] = best;
      row["work"] = work;
      row["work_unit"] = bench.work_unit;
      row["work_per_s"] =
          best > 0 ? static_cast<double>(work) / (best / 1000.0) : 0.0;
      row["speedup_vs_1t"] = best > 0 ? wall_1t / best : 0.0;
      row["identical_to_1t"] = fp == ref_fp;
      section.push_back(std::move(row));

      std::cerr << "  " << bench.name << " threads=" << threads
                << " wall_ms=" << best << " (" << bench.work_unit << "="
                << work << ")\n";
      if (fp != ref_fp) {
        std::cerr << "FATAL: " << bench.name << " at " << threads
                  << " threads diverged from the 1-thread result\n";
        std::exit(2);
      }
    }
  }
  return section;
}

obs::Json run_suite_section(const Options& o) {
  obs::Json section = obs::Json::array();
  std::vector<fs::path> binaries;
  for (const fs::directory_entry& e : fs::directory_iterator(o.suite_dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("bench_", 0) != 0) continue;
    if (name == "bench_runner") continue;     // that's us
    if (name == "bench_throughput") continue; // google-benchmark, minutes-long
    if (name == "bench_kernel") continue;     // run_benches.sh invokes it
                                              // explicitly (own JSON schema)
    if (!fs::is_regular_file(e.path())) continue;
    binaries.push_back(e.path());
  }
  std::sort(binaries.begin(), binaries.end());

  for (const fs::path& bin : binaries) {
    const std::string name = bin.filename().string();
    const std::string metrics =
        (fs::path(o.metrics_dir) / ("BENCH_" + name + ".json")).string();
    const std::string cmd = "BIBS_METRICS='" + metrics + "' '" + bin.string() +
                            "' > /dev/null 2>&1";
    const Clock::time_point t0 = Clock::now();
    const int rc = std::system(cmd.c_str());
    const double wall = ms_since(t0);

    obs::Json row = obs::Json::object();
    row["bench"] = name;
    row["wall_ms"] = wall;
    row["exit"] = rc;
    row["metrics"] = metrics;
    section.push_back(std::move(row));
    std::cerr << "  " << name << " wall_ms=" << wall << " exit=" << rc
              << "\n";
  }
  return section;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--threads-list") o.threads_list = parse_int_list(value());
    else if (arg == "--repeat") o.repeat = std::stoi(value());
    else if (arg == "--out") o.out = value();
    else if (arg == "--suite-dir") o.suite_dir = value();
    else if (arg == "--metrics-dir") o.metrics_dir = value();
    else if (arg == "--patterns") o.patterns = std::stoll(value());
    else if (arg == "--cycles") o.cycles = std::stoll(value());
    else {
      std::cerr << "usage: bench_runner [--threads-list 1,2,4,8] [--repeat N]"
                   " [--out FILE] [--suite-dir DIR] [--metrics-dir DIR]"
                   " [--patterns N] [--cycles N]\n";
      return arg == "--help" || arg == "-h" ? 0 : 64;
    }
  }
  if (o.threads_list.empty() || o.repeat < 1) {
    std::cerr << "invalid --threads-list / --repeat\n";
    return 64;
  }

  obs::Json doc = obs::Json::object();
  doc["kind"] = "bibs.bench_report";
  doc["version"] = 1;
  obs::Json host = obs::Json::object();
  host["hardware_threads"] = par::hardware_threads();
  host["git"] = obs::Report::collect().git_describe;
  doc["host"] = std::move(host);

  std::cerr << "thread scaling (repeat=" << o.repeat << ", min wall kept):\n";
  doc["parallel"] = run_parallel_section(o);
  if (!o.suite_dir.empty()) {
    std::cerr << "bench suite (" << o.suite_dir << "):\n";
    doc["suite"] = run_suite_section(o);
  }

  std::ofstream out(o.out);
  if (!out) {
    std::cerr << "cannot write " << o.out << "\n";
    return 1;
  }
  out << doc.dump() << "\n";
  std::cerr << "wrote " << o.out << "\n";
  return 0;
}
