// Differential-verification throughput: how fast the bibs::check layer
// proves things. For a range of random-netlist sizes this reports the
// exhaustive miter proof rate (vectors/s across all cones), the wall time of
// the full metamorphic-oracle suite on the (nl, nl) pair, and the mutation
// smoke rate (mutants/s including their exhaustive ground-truth proofs).

#include <chrono>
#include <iostream>

#include "check/check.hpp"
#include "circuits/random.hpp"
#include "common/table.hpp"

int main() {
  using namespace bibs;
  using Clock = std::chrono::steady_clock;
  const auto secs = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  struct Case {
    int inputs;
    int gates;
    int outputs;
  };
  const Case cases[] = {
      {8, 40, 4}, {12, 120, 6}, {16, 300, 8}, {20, 600, 8}, {24, 1200, 8}};

  Table t("bibs::check throughput (seeded random netlists)");
  t.header({"PIs", "gates", "cones", "exh. vectors", "proof s", "Mvec/s",
            "oracles s", "mutants/s"});
  for (const Case& c : cases) {
    circuits::RandomGateNetlistOptions ro;
    ro.inputs = c.inputs;
    ro.gates = c.gates;
    ro.outputs = c.outputs;
    ro.seed = 7;
    const gate::Netlist nl = circuits::make_random_gate_netlist(ro);

    const auto t0 = Clock::now();
    const check::EquivResult eq = check::check_equivalence(nl, nl);
    const auto t1 = Clock::now();
    std::uint64_t vectors = 0;
    for (const check::ConeReport& cr : eq.cones) vectors += cr.vectors;

    check::OracleContext ctx;
    ctx.ref = &nl;
    ctx.impl = &nl;
    const auto t2 = Clock::now();
    for (const check::Oracle& o : check::standard_oracles()) o.fn(ctx);
    const auto t3 = Clock::now();

    const int mutants = 10;
    const auto t4 = Clock::now();
    const check::MutationReport rep =
        check::mutation_smoke(nl, check::standard_oracles(), mutants, 1);
    const auto t5 = Clock::now();

    const double proof_s = secs(t0, t1);
    t.row({Table::num(c.inputs), Table::num(c.gates),
           Table::num(static_cast<long long>(eq.cones.size())), Table::num(static_cast<long long>(vectors)),
           Table::num(proof_s, 3),
           Table::num(static_cast<double>(vectors) / proof_s / 1e6, 2),
           Table::num(secs(t2, t3), 3),
           Table::num(static_cast<double>(rep.records.size()) /
                          secs(t4, t5),
                      1)});
  }
  t.print(std::cout);
  return 0;
}
