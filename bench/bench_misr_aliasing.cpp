// A finding from building the gate-level session emulator: when the MISR's
// state-transition order (2^w - 1 for a w-bit primitive MISR) divides the
// exhaustive session length (2^M - 1, which happens whenever w divides M),
// the periodic error polynomials cancel class-wise and signature aliasing
// spikes far above the 2^-w folklore rate. This bench sweeps session length
// around the resonance and prints the measured aliasing.

#include <iostream>

#include "circuits/figures.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "gate/synth.hpp"
#include "sim/session.hpp"

int main() {
  using namespace bibs;

  const rtl::Netlist n = circuits::make_fig12a(4);  // M = 12, 4-bit MISR
  const gate::Elaboration elab = gate::elaborate(n);
  const core::DesignResult design = core::design_bibs(n);
  const core::Kernel* kernel = nullptr;
  for (const core::Kernel& k : design.report.kernels)
    if (!k.trivial) kernel = &k;
  sim::BistSession session(n, elab, design.bilbo, *kernel);
  const auto faults = session.kernel_faults();

  Table t("MISR aliasing vs session length (M=12 LFSR, 4-bit MISR; "
          "ord(MISR)=15 divides 2^12-1=4095)");
  t.header({"cycles", "detected @ outputs", "by signature", "aliased",
            "aliasing %"});
  for (std::int64_t cycles :
       {64, 256, 1023, 1024, 2048, 4094, 4095, 4096, 4097, 8190}) {
    const auto rep = session.run(faults, cycles);
    const double pct = rep.detected_at_outputs
                           ? 100.0 * static_cast<double>(rep.aliased) /
                                 static_cast<double>(rep.detected_at_outputs)
                           : 0.0;
    t.row({Table::num(static_cast<long long>(cycles)),
           Table::num(rep.detected_at_outputs),
           Table::num(rep.detected_by_signature), Table::num(rep.aliased),
           Table::num(pct, 1)});
  }
  t.print(std::cout);
  std::cout <<
      "\nAt multiples of the full LFSR period the aliasing rate jumps an "
      "order of\nmagnitude: the error stream of each fault is periodic with "
      "the pattern\nsequence, and summing a full period through a MISR whose "
      "order divides it\ncollapses the signature difference class-wise. "
      "Practical consequence: size\nthe SA so 2^w - 1 does not divide the "
      "session length, or stop the session\noff the period boundary.\n";
  return 0;
}
