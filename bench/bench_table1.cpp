// Reproduces Table 1: the three MABAL data-path circuits — function,
// operator inventory, register count and synthesized size. The paper's
// "# of gates" row counted the authors' library cells; we print both our
// combinational gate count and a flip-flop-inclusive gate-equivalent figure
// (FF = 6 gate equivalents) for comparison.

#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/table.hpp"
#include "gate/synth.hpp"

int main() {
  using namespace bibs;
  struct Row {
    const char* name;
    const char* function;
    long long paper_gates;
    rtl::Netlist n;
  };
  std::vector<Row> rows;
  rows.push_back({"c5a2m", "o=(a+b)*(c+d)+(e+f)*(g+h)", 2542,
                  circuits::make_c5a2m()});
  rows.push_back({"c3a2m", "o=((a+b)*c+d)*e+f", 2218, circuits::make_c3a2m()});
  rows.push_back({"c4a4m", "o=a*(f+g)+e*(b+c), p=d*(b+c)+h*(f+g)", 4096,
                  circuits::make_c4a4m()});

  Table t("Table 1: summary of the data path circuits");
  t.header({"circuit", "function", "adders", "muls", "registers", "FFs",
            "comb gates", "gate equiv (FF=6)", "paper gates"});
  for (const Row& r : rows) {
    int adders = 0, muls = 0;
    for (const auto& b : r.n.blocks()) {
      adders += b.kind == rtl::BlockKind::kComb && b.op == "add";
      muls += b.kind == rtl::BlockKind::kComb && b.op == "mul";
    }
    const auto elab = gate::elaborate(r.n);
    const long long gates = static_cast<long long>(elab.netlist.gate_count());
    const long long ffs = static_cast<long long>(elab.netlist.dffs().size());
    t.row({r.name, r.function, Table::num(adders), Table::num(muls),
           Table::num(static_cast<long long>(r.n.register_edges().size())),
           Table::num(ffs), Table::num(gates), Table::num(gates + 6 * ffs),
           Table::num(r.paper_gates)});
  }
  t.print(std::cout);
  std::cout << "\nAll data paths are 8 bits wide; multipliers feed only their"
               " 8 least significant\nproduct lines forward, exactly as the"
               " paper states.\n";
  return 0;
}
