// Corollary 1 and the CSTP contrast: the test time to functionally
// exhaustively test a single-cone balanced BISTable kernel is exactly
// 2^M - 1 + d, whereas the circular self-test path approach [4] needs an
// estimated T * 2^M with T in [4, 8].
//
// We verify Corollary 1 *empirically*: run the gate-level BIST session and
// record the cycle at which the last detectable fault is caught, confirming
// it never exceeds 2^M - 1 + d; then tabulate the CSTP estimate next to it.

#include <iostream>

#include "circuits/figures.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "gate/synth.hpp"
#include "sim/session.hpp"

int main() {
  using namespace bibs;

  Table t("Corollary 1: functionally exhaustive test time 2^M - 1 + d");
  t.header({"kernel", "M", "d", "2^M-1+d", "session detects all @ outputs",
            "CSTP estimate 4*2^M", "8*2^M"});

  struct Case {
    std::string name;
    rtl::Netlist n;
  };
  std::vector<Case> cases;
  cases.push_back({"fig2 (w=4)", circuits::make_fig2(4)});
  cases.push_back({"fig12a (w=4)", circuits::make_fig12a(4)});
  cases.push_back({"fig12a (w=5)", circuits::make_fig12a(5)});

  for (Case& c : cases) {
    const gate::Elaboration elab = gate::elaborate(c.n);
    const core::DesignResult design = core::design_bibs(c.n);
    for (const core::Kernel& k : design.report.kernels) {
      if (k.trivial) continue;
      sim::BistSession session(c.n, elab, design.bilbo, k);
      const int m = session.tpg().lfsr_stages;
      const int d = core::kernel_depth(c.n, design.bilbo, k);
      const auto faults = session.kernel_faults();
      const std::uint64_t bound = session.tpg().test_time(d);
      const auto rep =
          session.run(faults, static_cast<std::int64_t>(bound));
      const bool all = rep.detected_at_outputs == rep.total_faults;
      // Some faults can be functionally redundant (all-0 pattern only, or
      // truncation artifacts); report the detected fraction.
      const double frac = static_cast<double>(rep.detected_at_outputs) /
                          static_cast<double>(rep.total_faults);
      t.row({c.name, Table::num(m), Table::num(d),
             Table::num(static_cast<long long>(bound)),
             all ? "yes (100%)" : Table::num(100.0 * frac, 1) + "%",
             Table::num(static_cast<long long>(4) << m),
             Table::num(static_cast<long long>(8) << m)});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe extra flip-flops the SC_TPG/MC_TPG constructions add "
               "never increase the\ntest time (they only realign streams); "
               "CSTP pays a 4-8x longer test for its\nsimpler hardware and "
               "loses the functional-exhaustiveness guarantee.\n";
  return 0;
}
