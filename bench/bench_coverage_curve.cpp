// Coverage-vs-patterns series (the figure the paper's Table 2 rows 5-8
// sample at two points): fault coverage of the BIBS whole-data-path kernel
// and of the [3] per-block kernels as the random pattern count grows.

#include <cstdlib>
#include <iostream>
#include <string>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "fault/simulator.hpp"
#include "gate/synth.hpp"

namespace {

using namespace bibs;

// --threads N (or BIBS_THREADS) parallelizes the per-fault propagation loop;
// the curves are bit-identical for any thread count.
int g_threads = 0;

fault::CoverageCurve bibs_curve(const rtl::Netlist& n) {
  const auto elab = gate::elaborate(n);
  std::vector<rtl::ConnId> in_regs, out_regs;
  for (const auto& c : n.connections()) {
    if (!c.is_register()) continue;
    if (n.block(c.from).kind == rtl::BlockKind::kInput) in_regs.push_back(c.id);
    if (n.block(c.to).kind == rtl::BlockKind::kOutput) out_regs.push_back(c.id);
  }
  const auto comb = gate::combinational_kernel(elab, n, in_regs, out_regs);
  fault::FaultSimulator sim(comb, fault::FaultList::collapsed(comb));
  sim.set_threads(g_threads);
  Xoshiro256 rng(1994);
  return sim.run_random(rng, 1 << 20, 60000);
}

std::vector<fault::CoverageCurve> ka_curves(const rtl::Netlist& n) {
  const auto elab = gate::elaborate(n);
  const auto design = core::design_ka85(n);
  std::vector<fault::CoverageCurve> out;
  std::uint64_t seed = 1994;
  for (const core::Kernel& k : design.report.kernels) {
    if (k.trivial) continue;
    const auto comb =
        gate::combinational_kernel(elab, n, k.input_regs, k.output_regs);
    fault::FaultSimulator sim(comb, fault::FaultList::collapsed(comb));
    sim.set_threads(g_threads);
    Xoshiro256 rng(seed++);
    out.push_back(sim.run_random(rng, 1 << 20, 60000));
  }
  return out;
}

double aggregate_after(const std::vector<fault::CoverageCurve>& curves,
                       std::int64_t patterns) {
  std::size_t detected = 0, total = 0;
  for (const auto& c : curves) {
    total += c.total_faults();
    for (auto d : c.detected_at)
      if (d != fault::CoverageCurve::kUndetected && d < patterns) ++detected;
  }
  return total ? 100.0 * static_cast<double>(detected) /
                     static_cast<double>(total)
               : 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--threads" && i + 1 < argc)
      g_threads = std::atoi(argv[++i]);

  for (const char* which : {"c5a2m", "c4a4m"}) {
    rtl::Netlist n;
    if (std::string(which) == "c5a2m") n = circuits::make_c5a2m();
    else n = circuits::make_c4a4m();

    const auto bibs = bibs_curve(n);
    const auto ka = ka_curves(n);

    Table t(std::string(which) +
            ": fault coverage (%) vs random patterns applied per kernel");
    t.header({"patterns", "BIBS (one kernel)", "[3] (per-block kernels)"});
    for (std::int64_t p : {8, 16, 32, 64, 128, 256, 512, 1024}) {
      t.row({Table::num(p), Table::num(100.0 * bibs.coverage_after(p), 2),
             Table::num(aggregate_after(ka, p), 2)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout <<
      "The small [3] kernels ramp slightly faster at the start (direct\n"
      "controllability) while the BIBS kernel catches up within tens of\n"
      "patterns — the practical content of the paper's remark that adequate\n"
      "pseudo-random patterns give good coverage for balanced kernels.\n";
  return 0;
}
