// The CSTP contrast, measured instead of cited: the paper notes that the
// circular self-test path [4] needs an estimated T * 2^M cycles (T in 4..8)
// to match what the BIBS TPG achieves in 2^M - 1 + d. We run both on the
// same elaborated kernel with the same fault list and report the coverage
// each reaches as cycles grow.

#include <cstdlib>
#include <iostream>
#include <string>

#include "circuits/figures.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "gate/synth.hpp"
#include "sim/cstp.hpp"
#include "sim/session.hpp"

int main(int argc, char** argv) {
  using namespace bibs;

  // --threads N (or BIBS_THREADS) parallelizes the 63-fault batches of both
  // schemes; the tables are bit-identical for any thread count.
  int threads = 0;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--threads" && i + 1 < argc)
      threads = std::atoi(argv[++i]);

  const rtl::Netlist n = circuits::make_fig12a(4);  // M = 12 kernel
  const gate::Elaboration elab = gate::elaborate(n);
  const core::DesignResult design = core::design_bibs(n);
  const core::Kernel* kernel = nullptr;
  for (const core::Kernel& k : design.report.kernels)
    if (!k.trivial) kernel = &k;

  sim::BistSession bibs(n, elab, design.bilbo, *kernel);
  bibs.set_threads(threads);
  const fault::FaultList faults = bibs.kernel_faults();
  const int m = bibs.tpg().lfsr_stages;
  const std::int64_t bibs_time =
      static_cast<std::int64_t>(bibs.tpg().test_time(2));
  const auto bibs_rep = bibs.run(faults, bibs_time);

  sim::CstpSession cstp(elab.netlist);
  cstp.set_threads(threads);

  Table t("BIBS TPG vs circular self-test path on the same kernel (M = " +
          std::to_string(m) + ", " + std::to_string(faults.size()) +
          " faults)");
  t.header({"scheme", "cycles", "detected (ideal observer)", "coverage %"});
  t.row({"BIBS TPG (2^M-1+d)", Table::num(bibs_time),
         Table::num(bibs_rep.detected_at_outputs),
         Table::num(100.0 * static_cast<double>(bibs_rep.detected_at_outputs) /
                        static_cast<double>(faults.size()),
                    1)});
  for (std::int64_t factor : {1, 2, 4, 8}) {
    const std::int64_t cycles = factor * (1ll << m);
    const auto rep = cstp.run(faults, cycles);
    t.row({"CSTP " + std::to_string(factor) + "*2^M", Table::num(cycles),
           Table::num(rep.detected_ideal),
           Table::num(100.0 * static_cast<double>(rep.detected_ideal) /
                          static_cast<double>(faults.size()),
                      1)});
  }
  t.print(std::cout);
  std::cout << "\n(On this small kernel both schemes catch every stuck-at"
               " fault quickly; the\nstructural difference shows in pattern"
               " coverage below.)\n\n";

  // The quantity the paper's T*2^M estimate is about: how long until the
  // kernel's input registers have seen every one of the 2^M patterns. The
  // maximal-length BIBS TPG does it in exactly 2^M - 1 cycles by
  // construction; the unstructured ring needs a coupon-collector multiple.
  std::vector<gate::NetId> watch;
  for (const core::Kernel& k : design.report.kernels) {
    if (k.trivial) continue;
    for (rtl::ConnId e : k.input_regs)
      for (gate::NetId q : elab.reg_q.at(e)) watch.push_back(q);
  }
  Table t2("Cycles until the kernel input registers exhaust all 2^M "
           "patterns (M = " + std::to_string(watch.size()) + ")");
  t2.header({"scheme", "fraction of 2^M", "cycles", "cycles / 2^M"});
  t2.row({"BIBS TPG", "100% (guaranteed)", Table::num(bibs_time),
          Table::num(1.0, 2)});
  const std::uint64_t space = 1ull << watch.size();
  for (double frac : {0.5, 0.9, 0.99, 1.0}) {
    const auto target =
        static_cast<std::uint64_t>(frac * static_cast<double>(space));
    const std::int64_t cycles =
        cstp.cycles_to_cover(watch, target, 64ll << watch.size());
    t2.row({"CSTP", Table::num(100.0 * frac, 0) + "%",
            cycles < 0 ? "> 64*2^M" : Table::num(cycles),
            cycles < 0 ? "-"
                       : Table::num(static_cast<double>(cycles) /
                                        static_cast<double>(space),
                                    2)});
  }
  t2.print(std::cout);
  std::cout <<
      "\nThe ring behaves like a random sampler: covering the last patterns"
      "\ncosts a coupon-collector multiple of 2^M — squarely in the paper's"
      "\nT in [4, 8] estimate — while the BIBS TPG is exhaustive in one"
      "\nperiod by construction.\n";
  return 0;
}
