// Exact detectability via PODEM for every kernel of every Table 2 circuit:
// upgrades the "coverage of detectable faults" denominators from a random-
// saturation estimate to proven numbers, and quantifies the redundancy the
// truncated multipliers introduce (the paper's "detectable faults" caveat).

#include <iostream>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "fault/atpg.hpp"
#include "fault/simulator.hpp"
#include "gate/synth.hpp"

int main() {
  using namespace bibs;

  Table t("Exact fault classification (PODEM) vs random-saturation estimate");
  t.header({"circuit", "kernel", "faults", "PODEM detected",
            "proven redundant", "aborted", "saturation estimate"});

  for (const char* which : {"c5a2m", "c3a2m", "c4a4m"}) {
    rtl::Netlist n;
    if (std::string(which) == "c5a2m") n = circuits::make_c5a2m();
    else if (std::string(which) == "c3a2m") n = circuits::make_c3a2m();
    else n = circuits::make_c4a4m();
    const auto elab = gate::elaborate(n);

    // BIBS: the whole data path as one kernel.
    std::vector<rtl::ConnId> in_regs, out_regs;
    for (const auto& c : n.connections()) {
      if (!c.is_register()) continue;
      if (n.block(c.from).kind == rtl::BlockKind::kInput)
        in_regs.push_back(c.id);
      if (n.block(c.to).kind == rtl::BlockKind::kOutput)
        out_regs.push_back(c.id);
    }
    const auto comb = gate::combinational_kernel(elab, n, in_regs, out_regs);
    const auto faults = fault::FaultList::collapsed(comb);

    fault::Podem atpg(comb);
    const auto summary = atpg.classify(faults, 5000);

    fault::FaultSimulator sim(comb, faults);
    Xoshiro256 rng(1994);
    const auto curve = sim.run_random(rng, 1 << 20, 50000);

    t.row({which, "whole datapath (BIBS)", Table::num(faults.size()),
           Table::num(summary.detected), Table::num(summary.undetectable),
           Table::num(summary.aborted), Table::num(curve.detected_count())});
  }
  t.print(std::cout);
  std::cout <<
      "\nPODEM's proven-detectable counts confirm the saturation estimates "
      "used by\nbench_table2_coverage; the handful of proven-redundant faults"
      " sit in the\ntruncated multipliers' top columns and in adder carries "
      "masked by the\ntruncation that follows them.\n";
  return 0;
}
