// Reproduces Figure 21 / Examples 7-8: functionally pseudo-exhaustive
// testing of a three-cone kernel. Sweeps every register ordering through
// MC_TPG (the paper's recommended optimization), and compares against the
// register-level McCluskey minimal-test-signal procedure, which cannot use
// sequential-length information and lands at 12 stages.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "common/table.hpp"
#include "tpg/design.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/optimize.hpp"

int main() {
  using namespace bibs;
  using namespace bibs::tpg;

  GeneralizedStructure s;
  s.registers = {{"R1", 4}, {"R2", 4}, {"R3", 4}};
  s.cones = {{"O1", {{0, 2}, {1, 0}}},
             {"O2", {{0, 0}, {2, 1}}},
             {"O3", {{1, 1}, {2, 0}}}};

  Table t("Figure 21: LFSR degree vs input-register order (paper: order "
          "(R1,R2,R3) needs 16, (R1,R3,R2) needs 8)");
  t.header({"order", "LFSR stages", "physical FFs", "test time",
            "all cones exhaustive"});
  std::vector<int> perm = {0, 1, 2};
  do {
    const TpgDesign d = mc_tpg(s.permuted(perm));
    std::string name;
    for (int i : perm) name += "R" + std::to_string(i + 1) + " ";
    const auto rank = check_exhaustive_rank(d);
    t.row({name, Table::num(d.lfsr_stages), Table::num(d.physical_ffs()),
           Table::num(static_cast<long long>(d.test_time(2))),
           rank.all_exhaustive ? "yes" : "NO"});
  } while (std::next_permutation(perm.begin(), perm.end()));
  t.print(std::cout);

  const OrderResult best = optimize_register_order(s);
  std::cout << "\noptimize_register_order picks:";
  for (int i : best.order) std::cout << " R" << (i + 1);
  std::cout << " -> " << best.design.lfsr_stages << "-stage LFSR"
            << (best.optimal ? " (2^w lower bound reached)" : "") << "\n";

  const TestSignalResult sig = min_test_signals(s);
  std::cout << "\nExample 8 (extended McCluskey minimal test signals): "
            << sig.signals << " signals -> " << sig.lfsr_stages
            << "-stage LFSR, test time ~2^" << sig.lfsr_stages
            << " (paper: 3 signals, 12 stages)\n"
            << "MC_TPG + permutation wins because the test-signal procedure "
               "cannot exploit\nsequential-length information (the paper's "
               "point in Example 8).\n";
  return 0;
}
