// Ablation across testable-design methodologies: partial scan (BALLAST,
// balance only), BIBS, BIBS+CBILBO and KA85 [3] over the whole circuit zoo —
// converted registers / flip-flops and the maximal-delay penalty. This is
// the design-space the paper positions BIBS within (Sections 1-3).

#include <iostream>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"

int main() {
  using namespace bibs;

  struct Case {
    std::string name;
    rtl::Netlist n;
  };
  std::vector<Case> cases;
  cases.push_back({"fig2", circuits::make_fig2()});
  cases.push_back({"fig4", circuits::make_fig4()});
  cases.push_back({"fig9", circuits::make_fig9()});
  cases.push_back({"c5a2m", circuits::make_c5a2m()});
  cases.push_back({"c3a2m", circuits::make_c3a2m()});
  cases.push_back({"c4a4m", circuits::make_c4a4m()});
  cases.push_back({"fir8", circuits::make_fir_datapath(8)});

  auto ffs = [](const rtl::Netlist& n, const core::BilboSet& b) {
    int total = 0;
    for (auto e : b) total += n.connection(e).reg->width;
    return total;
  };

  Table t("TDM ablation: converted registers (flip-flops)");
  t.header({"circuit", "scan regs (FFs)", "BIBS regs (FFs)",
            "BIBS max delay", "KA85 regs (FFs)", "KA85 max delay",
            "BIBS kernels", "KA85 kernels"});
  for (Case& c : cases) {
    std::string scan_s = "-";
    try {
      const auto scan = core::design_partial_scan(c.n);
      scan_s = Table::num(scan.size()) + " (" +
               Table::num(ffs(c.n, scan)) + ")";
    } catch (const DesignError&) {
      scan_s = "infeasible";
    }
    std::string bibs_s = "-", bibs_d = "-", bibs_k = "-";
    try {
      const auto r = core::design_bibs_cbilbo(c.n);
      const auto all = r.regs.all();
      const auto cost = core::evaluate_design(c.n, all);
      bibs_s = Table::num(all.size()) + " (" + Table::num(ffs(c.n, all)) +
               (r.regs.cbilbo.empty()
                    ? ")"
                    : ", " + Table::num(r.regs.cbilbo.size()) + " CBILBO)");
      bibs_d = Table::num(cost.max_delay);
      bibs_k = Table::num(cost.kernels);
    } catch (const DesignError& e) {
      bibs_s = "infeasible";
    }
    std::string ka_s = "-", ka_d = "-", ka_k = "-";
    try {
      const auto ka = core::design_ka85(c.n);
      const auto cost = core::evaluate_design(c.n, ka.bilbo);
      ka_s = Table::num(ka.bilbo.size()) + " (" + Table::num(ffs(c.n, ka.bilbo)) +
             ")";
      ka_d = Table::num(cost.max_delay);
      ka_k = Table::num(cost.kernels);
    } catch (const DesignError&) {
      ka_s = "infeasible";
    }
    t.row({c.name, scan_s, bibs_s, bibs_d, ka_s, ka_d, bibs_k, ka_k});
  }
  t.print(std::cout);
  std::cout <<
      "\nPartial scan <= BIBS <= KA85 in converted hardware, as the theory\n"
      "predicts: scan registers may serve as pseudo-PI and pseudo-PO at\n"
      "once (conditions 1-2 only), BILBOs may not (condition 3), and KA85\n"
      "additionally registers every multi-port block input (Theorem 3 makes\n"
      "it a special case of BIBS).\n";
  return 0;
}
