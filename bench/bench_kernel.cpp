// Compiled-kernel benchmark and bit-identity gate (docs/performance.md).
//
// Measures the gate::EvalProgram instruction stream against the retained
// interpreted reference on the c5a2m data path, at two levels:
//
//   raw        gate-evals/s of a pure levelized sweep — EvalProgram::run vs
//              gate::reference_eval on identical random source words.
//   fault_sim  single-thread PPSFP throughput — FaultSimulator with
//              EvalBackend::kCompiled vs kInterpreted on the same pattern
//              stream. The acceptance criterion lives here: >= 1.5x.
//
// Every measurement doubles as an identity gate: detected_at curves, MISR
// signatures, checkpoints, and 1-vs-4-thread session results must be
// bit-identical between backends and thread counts, or the process exits
// nonzero. `--check` runs only the (fast) identity gates — that mode backs
// the check_kernel_identity ctest. `--out FILE` writes BENCH_kernel.json.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "fault/simulator.hpp"
#include "gate/program.hpp"
#include "gate/synth.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "rt/checkpoint.hpp"
#include "sim/session.hpp"

namespace {

using namespace bibs;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int g_failures = 0;

void gate_check(bool ok, const std::string& what) {
  std::cerr << "  [" << (ok ? "ok" : "FAIL") << "] " << what << "\n";
  if (!ok) ++g_failures;
}

/// The c5a2m data path of the acceptance criterion: whole-path kernel for
/// the fault simulator, BIBS design for the session.
struct Fixture {
  rtl::Netlist n = circuits::make_c5a2m();
  gate::Elaboration elab = gate::elaborate(n);
  core::DesignResult design = core::design_bibs(n);
  gate::Netlist kernel;
  const core::Kernel* first_kernel = nullptr;

  Fixture() {
    std::vector<rtl::ConnId> in_regs, out_regs;
    for (const auto& c : n.connections()) {
      if (!c.is_register()) continue;
      if (n.block(c.from).kind == rtl::BlockKind::kInput)
        in_regs.push_back(c.id);
      if (n.block(c.to).kind == rtl::BlockKind::kOutput)
        out_regs.push_back(c.id);
    }
    kernel = gate::combinational_kernel(elab, n, in_regs, out_regs);
    for (const core::Kernel& k : design.report.kernels)
      if (!k.trivial && !first_kernel) first_kernel = &k;
  }
};

void seed_sources(const gate::Netlist& nl, Xoshiro256& rng,
                  std::vector<std::uint64_t>& values) {
  for (gate::NetId id = 0; static_cast<std::size_t>(id) < nl.net_count();
       ++id) {
    switch (nl.gate(id).type) {
      case gate::GateType::kInput:
      case gate::GateType::kDff:
        values[static_cast<std::size_t>(id)] = rng.next();
        break;
      case gate::GateType::kConst1:
        values[static_cast<std::size_t>(id)] = ~0ull;
        break;
      default:
        values[static_cast<std::size_t>(id)] = 0;
    }
  }
}

/// Raw levelized-sweep throughput: interpreted vs compiled over identical
/// random blocks. Returns the JSON row; checks the sweeps stay identical.
obs::Json bench_raw(const Fixture& fx, int blocks) {
  const gate::Netlist& nl = fx.kernel;
  const gate::EvalProgram prog(nl);
  const std::vector<gate::NetId> topo = nl.comb_topo_order();
  const std::int64_t evals =
      static_cast<std::int64_t>(topo.size()) * blocks;

  std::vector<std::uint64_t> vals(nl.net_count());
  std::uint64_t sink_i = 0, sink_c = 0;

  // Min of 3 repeats per side — same noise suppression as the fault-sim
  // measurement (1-core CI boxes). The checksum accumulates across repeats
  // on both sides, so identity still covers every evaluated block.
  double interp_ms = -1, compiled_ms = -1;
  for (int r = 0; r < 3; ++r) {
    Xoshiro256 rng_i(77);
    const Clock::time_point t_i = Clock::now();
    for (int b = 0; b < blocks; ++b) {
      seed_sources(nl, rng_i, vals);
      gate::reference_eval(nl, topo, vals.data());
      for (gate::NetId o : nl.outputs())
        sink_i ^= vals[static_cast<std::size_t>(o)];
    }
    const double ms = ms_since(t_i);
    if (interp_ms < 0 || ms < interp_ms) interp_ms = ms;

    Xoshiro256 rng_c(77);
    const Clock::time_point t_c = Clock::now();
    for (int b = 0; b < blocks; ++b) {
      seed_sources(nl, rng_c, vals);
      prog.run(vals.data());
      for (gate::NetId o : nl.outputs())
        sink_c ^= vals[static_cast<std::size_t>(o)];
    }
    const double ms_c = ms_since(t_c);
    if (compiled_ms < 0 || ms_c < compiled_ms) compiled_ms = ms_c;
  }

  gate_check(sink_i == sink_c, "raw sweep output checksums identical");

  obs::Json row = obs::Json::object();
  row["gates"] = static_cast<std::int64_t>(topo.size());
  row["blocks"] = blocks;
  row["interpreted_ms"] = interp_ms;
  row["compiled_ms"] = compiled_ms;
  // Each block evaluates every gate once for 64 pattern lanes.
  row["interpreted_gate_evals_per_s"] =
      interp_ms > 0 ? 64.0 * static_cast<double>(evals) / (interp_ms / 1e3)
                    : 0.0;
  row["compiled_gate_evals_per_s"] =
      compiled_ms > 0 ? 64.0 * static_cast<double>(evals) / (compiled_ms / 1e3)
                      : 0.0;
  row["speedup"] = compiled_ms > 0 ? interp_ms / compiled_ms : 0.0;
  std::cerr << "  raw: interpreted " << interp_ms << " ms, compiled "
            << compiled_ms << " ms ("
            << (compiled_ms > 0 ? interp_ms / compiled_ms : 0.0) << "x)\n";
  return row;
}

bool same_curve(const fault::CoverageCurve& a, const fault::CoverageCurve& b) {
  return a.patterns_run == b.patterns_run && a.detected_at == b.detected_at;
}

/// Single-thread PPSFP throughput, compiled vs interpreted backend, plus the
/// full identity gate set: curves, checkpoints, 1-vs-4-thread runs.
obs::Json bench_fault_sim(const Fixture& fx, std::int64_t patterns,
                          bool measure) {
  const fault::FaultList faults = fault::FaultList::collapsed(fx.kernel);

  const auto run = [&](fault::EvalBackend backend, int threads,
                       double* wall_ms) {
    fault::FaultSimulator sim(fx.kernel, faults, backend);
    sim.set_threads(threads);
    Xoshiro256 rng(1994);
    const Clock::time_point t0 = Clock::now();
    fault::CoverageCurve c = sim.run_random(
        rng, patterns, std::numeric_limits<std::int64_t>::max());
    if (wall_ms) *wall_ms = ms_since(t0);
    return c;
  };

  double interp_ms = 0, compiled_ms = 0;
  fault::CoverageCurve interp = run(fault::EvalBackend::kInterpreted, 1,
                                    &interp_ms);
  fault::CoverageCurve compiled = run(fault::EvalBackend::kCompiled, 1,
                                      &compiled_ms);
  if (measure) {
    // Keep the faster of a few repeats per side (timer noise, 1-core CI).
    for (int r = 1; r < 3; ++r) {
      double ms = 0;
      run(fault::EvalBackend::kInterpreted, 1, &ms);
      interp_ms = std::min(interp_ms, ms);
      run(fault::EvalBackend::kCompiled, 1, &ms);
      compiled_ms = std::min(compiled_ms, ms);
    }
  }
  gate_check(same_curve(interp, compiled),
             "fault-sim curves identical (compiled vs interpreted)");

  const fault::CoverageCurve threaded =
      run(fault::EvalBackend::kCompiled, 4, nullptr);
  gate_check(same_curve(interp, threaded),
             "fault-sim curves identical (1 vs 4 threads)");

  // Checkpoints taken from either backend must be byte-identical.
  fault::FaultSimulator a(fx.kernel, faults, fault::EvalBackend::kCompiled);
  fault::FaultSimulator b(fx.kernel, faults,
                          fault::EvalBackend::kInterpreted);
  const rt::SimCheckpoint ca = a.make_checkpoint(compiled);
  const rt::SimCheckpoint cb = b.make_checkpoint(interp);
  gate_check(ca.to_json().dump() == cb.to_json().dump(),
             "fault-sim checkpoints identical");

  const double speedup = compiled_ms > 0 ? interp_ms / compiled_ms : 0.0;
  obs::Json row = obs::Json::object();
  row["faults"] = static_cast<std::int64_t>(faults.size());
  row["faults_full"] = static_cast<std::int64_t>(faults.full_size());
  row["patterns"] = patterns;
  row["coverage"] = compiled.coverage();
  row["interpreted_ms"] = interp_ms;
  row["compiled_ms"] = compiled_ms;
  row["speedup"] = speedup;
  if (measure) {
    std::cerr << "  fault_sim: interpreted " << interp_ms << " ms, compiled "
              << compiled_ms << " ms (" << speedup << "x)\n";
    gate_check(speedup >= 1.5,
               "fault-sim single-thread speedup >= 1.5x on c5a2m");
  }
  return row;
}

/// BIST session identity: signatures, detection flags and checkpoints must
/// be bit-identical at 1 and 4 threads.
obs::Json bench_session(const Fixture& fx, std::int64_t cycles) {
  obs::Json row = obs::Json::object();
  if (!fx.first_kernel) {
    row["skipped"] = true;
    return row;
  }
  const auto run = [&](int threads, rt::SessionCheckpoint* ckpt) {
    sim::BistSession session(fx.n, fx.elab, fx.design.bilbo,
                             *fx.first_kernel);
    session.set_threads(threads);
    const fault::FaultList faults = session.kernel_faults();
    return session.run(faults, cycles, {}, nullptr, ckpt);
  };
  rt::SessionCheckpoint ck1, ck4;
  const sim::SessionReport r1 = run(1, &ck1);
  const sim::SessionReport r4 = run(4, &ck4);
  gate_check(r1.golden_signatures == r4.golden_signatures,
             "session MISR signatures identical (1 vs 4 threads)");
  gate_check(r1.detected_at_outputs == r4.detected_at_outputs &&
                 r1.detected_by_signature == r4.detected_by_signature &&
                 r1.aliased == r4.aliased,
             "session detection counts identical (1 vs 4 threads)");
  gate_check(ck1.to_json().dump() == ck4.to_json().dump(),
             "session checkpoints identical (1 vs 4 threads)");
  row["cycles"] = cycles;
  row["signatures"] = static_cast<std::int64_t>(r1.golden_signatures.size());
  row["detected_by_signature"] =
      static_cast<std::int64_t>(r1.detected_by_signature);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check_only = false;
  // Table 2 of the paper applies 2^16 patterns to these kernels; 8192 keeps
  // the bench fast while staying in the regime where the random-resistant
  // tail (small live fault set, good-eval-heavy blocks) shows up.
  std::int64_t patterns = 8192;
  std::int64_t cycles = 512;
  int blocks = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--out") out_path = value();
    else if (arg == "--check") check_only = true;
    else if (arg == "--patterns") patterns = std::stoll(value());
    else if (arg == "--cycles") cycles = std::stoll(value());
    else if (arg == "--blocks") blocks = std::stoi(value());
    else {
      std::cerr << "usage: bench_kernel [--out FILE] [--check]"
                   " [--patterns N] [--cycles N] [--blocks N]\n";
      return arg == "--help" || arg == "-h" ? 0 : 64;
    }
  }
  if (check_only) {
    // Identity gates only: smaller workloads, no timing thresholds.
    patterns = std::min<std::int64_t>(patterns, 512);
    cycles = std::min<std::int64_t>(cycles, 128);
  }

  const Fixture fx;
  std::cerr << (check_only ? "kernel identity check:" : "kernel bench:")
            << "\n";

  obs::Json doc = obs::Json::object();
  doc["kind"] = "bibs.kernel_bench";
  doc["version"] = 1;
#ifdef BIBS_NATIVE_ENABLED
  doc["native"] = true;
#else
  doc["native"] = false;
#endif
  doc["git"] = obs::Report::collect().git_describe;
  doc["circuit"] = "c5a2m";

  if (!check_only) doc["raw"] = bench_raw(fx, blocks);
  doc["fault_sim"] = bench_fault_sim(fx, patterns, !check_only);
  doc["session"] = bench_session(fx, cycles);

  if (g_failures > 0) {
    std::cerr << g_failures << " identity/threshold gate(s) FAILED\n";
    return 1;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.dump() << "\n";
    std::cerr << "wrote " << out_path << "\n";
  }
  return 0;
}
