// Compiled-kernel benchmark and bit-identity gate (docs/performance.md).
//
// Measures the gate::EvalProgram instruction stream on the c5a2m data path
// at three levels:
//
//   raw        gate-evals/s of a pure levelized sweep — EvalProgram::run vs
//              gate::reference_eval on identical random source words.
//   backends   the lane-width matrix: every compiled-in, CPU-supported
//              gate::LaneBackend (scalar64/avx2/avx512) sweeping W*64
//              pattern lanes per block — raw Mpatterns/s plus single-thread
//              PPSFP fault simulation, each gated on bit-identity with the
//              scalar64 golden backend. The SIMD acceptance criterion lives
//              here: the widest supported backend must sweep >= 2x the raw
//              scalar64 throughput.
//   fault_sim  single-thread PPSFP throughput — FaultSimulator with
//              EvalBackend::kCompiled vs kInterpreted on the same pattern
//              stream, both pinned to scalar64 (the interpreted reference
//              has no wide path). The compiled-vs-interpreted acceptance
//              criterion lives here: >= 1.5x.
//
// Every measurement doubles as an identity gate: detected_at curves, MISR
// signatures, checkpoints, 1-vs-4-thread and wide-vs-64-lane session
// results must be bit-identical, or the process exits nonzero. `--check`
// runs only the (fast) identity gates — that mode backs the
// check_kernel_identity ctests. `--lanes NAME` restricts the backend matrix
// to scalar64 + NAME and exits 77 when the CPU lacks NAME's ISA (ctest
// SKIP_RETURN_CODE). `--out FILE` writes BENCH_kernel.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "circuits/datapaths.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "fault/simulator.hpp"
#include "gate/lanes.hpp"
#include "gate/program.hpp"
#include "gate/synth.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "rt/checkpoint.hpp"
#include "sim/session.hpp"

namespace {

using namespace bibs;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int g_failures = 0;

/// Benchmark-loop checksums land here so sweeps cannot be optimized away.
volatile std::uint64_t g_sink = 0;

void gate_check(bool ok, const std::string& what) {
  std::cerr << "  [" << (ok ? "ok" : "FAIL") << "] " << what << "\n";
  if (!ok) ++g_failures;
}

/// The c5a2m data path of the acceptance criterion: whole-path kernel for
/// the fault simulator, BIBS design for the session.
struct Fixture {
  rtl::Netlist n = circuits::make_c5a2m();
  gate::Elaboration elab = gate::elaborate(n);
  core::DesignResult design = core::design_bibs(n);
  gate::Netlist kernel;
  const core::Kernel* first_kernel = nullptr;

  Fixture() {
    std::vector<rtl::ConnId> in_regs, out_regs;
    for (const auto& c : n.connections()) {
      if (!c.is_register()) continue;
      if (n.block(c.from).kind == rtl::BlockKind::kInput)
        in_regs.push_back(c.id);
      if (n.block(c.to).kind == rtl::BlockKind::kOutput)
        out_regs.push_back(c.id);
    }
    kernel = gate::combinational_kernel(elab, n, in_regs, out_regs);
    for (const core::Kernel& k : design.report.kernels)
      if (!k.trivial && !first_kernel) first_kernel = &k;
  }
};

/// Seeds word j (of `words` per net) of every source net; scalar callers
/// pass words == 1, j == 0.
void seed_sources(const gate::Netlist& nl, Xoshiro256& rng,
                  std::vector<std::uint64_t>& values, std::size_t words = 1,
                  std::size_t j = 0) {
  for (gate::NetId id = 0; static_cast<std::size_t>(id) < nl.net_count();
       ++id) {
    const std::size_t at = static_cast<std::size_t>(id) * words + j;
    switch (nl.gate(id).type) {
      case gate::GateType::kInput:
      case gate::GateType::kDff:
        values[at] = rng.next();
        break;
      case gate::GateType::kConst1:
        values[at] = ~0ull;
        break;
      default:
        values[at] = 0;
    }
  }
}

/// Raw levelized-sweep throughput: interpreted vs compiled over identical
/// random blocks. Returns the JSON row; checks the sweeps stay identical.
obs::Json bench_raw(const Fixture& fx, int blocks) {
  const gate::Netlist& nl = fx.kernel;
  const gate::EvalProgram prog(nl);
  const std::vector<gate::NetId> topo = nl.comb_topo_order();
  const std::int64_t evals =
      static_cast<std::int64_t>(topo.size()) * blocks;

  std::vector<std::uint64_t> vals(nl.net_count());
  std::uint64_t sink_i = 0, sink_c = 0;

  // Min of 3 repeats per side — same noise suppression as the fault-sim
  // measurement (1-core CI boxes). The checksum accumulates across repeats
  // on both sides, so identity still covers every evaluated block.
  double interp_ms = -1, compiled_ms = -1;
  for (int r = 0; r < 3; ++r) {
    Xoshiro256 rng_i(77);
    const Clock::time_point t_i = Clock::now();
    for (int b = 0; b < blocks; ++b) {
      seed_sources(nl, rng_i, vals);
      gate::reference_eval(nl, topo, vals.data());
      for (gate::NetId o : nl.outputs())
        sink_i ^= vals[static_cast<std::size_t>(o)];
    }
    const double ms = ms_since(t_i);
    if (interp_ms < 0 || ms < interp_ms) interp_ms = ms;

    Xoshiro256 rng_c(77);
    const Clock::time_point t_c = Clock::now();
    for (int b = 0; b < blocks; ++b) {
      seed_sources(nl, rng_c, vals);
      prog.run(vals.data());
      for (gate::NetId o : nl.outputs())
        sink_c ^= vals[static_cast<std::size_t>(o)];
    }
    const double ms_c = ms_since(t_c);
    if (compiled_ms < 0 || ms_c < compiled_ms) compiled_ms = ms_c;
  }

  gate_check(sink_i == sink_c, "raw sweep output checksums identical");

  obs::Json row = obs::Json::object();
  row["gates"] = static_cast<std::int64_t>(topo.size());
  row["blocks"] = blocks;
  row["interpreted_ms"] = interp_ms;
  row["compiled_ms"] = compiled_ms;
  // Each block evaluates every gate once for 64 pattern lanes.
  row["interpreted_gate_evals_per_s"] =
      interp_ms > 0 ? 64.0 * static_cast<double>(evals) / (interp_ms / 1e3)
                    : 0.0;
  row["compiled_gate_evals_per_s"] =
      compiled_ms > 0 ? 64.0 * static_cast<double>(evals) / (compiled_ms / 1e3)
                      : 0.0;
  row["speedup"] = compiled_ms > 0 ? interp_ms / compiled_ms : 0.0;
  std::cerr << "  raw: interpreted " << interp_ms << " ms, compiled "
            << compiled_ms << " ms ("
            << (compiled_ms > 0 ? interp_ms / compiled_ms : 0.0) << "x)\n";
  return row;
}

bool same_curve(const fault::CoverageCurve& a, const fault::CoverageCurve& b) {
  return a.patterns_run == b.patterns_run && a.detected_at == b.detected_at;
}

/// One lane backend's wide sweep must reproduce, word slice by word slice,
/// the scalar64 sweep of the same source words.
bool raw_slice_identity(const gate::Netlist& nl, const gate::EvalProgram& prog,
                        const gate::LaneBackend* lb) {
  const std::size_t w = static_cast<std::size_t>(lb->words);
  Xoshiro256 rng(123);
  std::vector<std::vector<std::uint64_t>> slices(w);
  std::vector<std::uint64_t> wide(nl.net_count() * w);
  for (std::size_t j = 0; j < w; ++j) {
    slices[j].resize(nl.net_count());
    seed_sources(nl, rng, slices[j]);
    for (std::size_t n = 0; n < nl.net_count(); ++n)
      wide[n * w + j] = slices[j][n];
  }
  lb->run_range(prog.view(), 0, prog.size(), wide.data());
  const gate::LaneBackend* scalar = &gate::scalar_lane_backend();
  for (std::size_t j = 0; j < w; ++j) {
    scalar->run_range(prog.view(), 0, prog.size(), slices[j].data());
    for (std::size_t n = 0; n < nl.net_count(); ++n)
      if (wide[n * w + j] != slices[j][n]) return false;
  }
  return true;
}

/// The lane-width matrix: per-backend raw sweep throughput and single-thread
/// fault-sim wall time, each gated on bit-identity with scalar64. `only`
/// (when non-null) restricts the matrix to scalar64 + that backend.
obs::Json bench_backends(const Fixture& fx, std::int64_t patterns, int blocks,
                         bool measure, const gate::LaneBackend* only) {
  const gate::Netlist& nl = fx.kernel;
  const gate::EvalProgram prog(nl);
  const fault::FaultList faults = fault::FaultList::collapsed(nl);
  const gate::LaneBackend* scalar = &gate::scalar_lane_backend();

  // Raw W*64-lane sweep wall time (min of 3 repeats). Sources are seeded
  // once and one input word is flipped per block (O(1)): reseeding every
  // source per block would drown the wide sweeps in scalar PRNG work and
  // measure the generator, not the datapath. The sink checksum only keeps
  // the loop alive; cross-width identity is raw_slice_identity.
  const auto raw_ms_for = [&](const gate::LaneBackend* lb) {
    const std::size_t w = static_cast<std::size_t>(lb->words);
    std::vector<std::uint64_t> vals(nl.net_count() * w);
    Xoshiro256 rng(77);
    for (std::size_t j = 0; j < w; ++j) seed_sources(nl, rng, vals, w, j);
    const std::vector<gate::NetId>& ins = nl.inputs();
    std::uint64_t sink = 0;
    double best = -1;
    for (int r = 0; r < 3; ++r) {
      const Clock::time_point t0 = Clock::now();
      for (int b = 0; b < blocks; ++b) {
        if (!ins.empty())
          vals[static_cast<std::size_t>(ins[b % ins.size()]) * w +
               (static_cast<std::size_t>(b) % w)] ^= 0x9e3779b97f4a7c15ull;
        lb->run_range(prog.view(), 0, prog.size(), vals.data());
        for (gate::NetId o : nl.outputs())
          sink ^= vals[static_cast<std::size_t>(o) * w];
      }
      const double ms = ms_since(t0);
      if (best < 0 || ms < best) best = ms;
    }
    g_sink = sink;
    return best;
  };

  const auto fault_run = [&](const gate::LaneBackend* lb, double* wall_ms) {
    fault::FaultSimulator sim(nl, faults);
    sim.set_lane_backend(lb);
    Xoshiro256 rng(1994);
    const Clock::time_point t0 = Clock::now();
    fault::CoverageCurve c = sim.run_random(
        rng, patterns, std::numeric_limits<std::int64_t>::max());
    if (wall_ms) *wall_ms = ms_since(t0);
    return c;
  };

  double scalar_raw_ms = raw_ms_for(scalar);
  double scalar_fs_ms = 0;
  const fault::CoverageCurve base = fault_run(scalar, &scalar_fs_ms);
  if (measure) {
    for (int r = 1; r < 3; ++r) {
      double ms = 0;
      fault_run(scalar, &ms);
      scalar_fs_ms = std::min(scalar_fs_ms, ms);
    }
  }

  obs::Json rows = obs::Json::array();
  const gate::LaneBackend* widest = scalar;
  double widest_raw_speedup = 1.0;
  for (const gate::LaneBackend* lb : gate::all_lane_backends()) {
    if (only && lb != scalar && lb != only) continue;
    obs::Json row = obs::Json::object();
    row["backend"] = lb->name;
    row["words"] = lb->words;
    row["lanes"] = lb->lanes;
    row["supported"] = lb->supported();
    if (!lb->supported()) {
      rows.push_back(std::move(row));
      std::cerr << "  backend " << lb->name << ": not supported on this CPU\n";
      continue;
    }

    const bool slice_ok = raw_slice_identity(nl, prog, lb);
    gate_check(slice_ok, std::string("raw sweep word slices identical (") +
                             lb->name + " vs scalar64)");

    double raw_ms = lb == scalar ? scalar_raw_ms : raw_ms_for(lb);
    const double mpat_s =
        raw_ms > 0 ? static_cast<double>(blocks) * lb->lanes / (raw_ms / 1e3) /
                         1e6
                   : 0.0;
    // Throughput-relative: (lanes/ms) / (64/ms_scalar64).
    const double raw_tp_speedup =
        scalar_raw_ms > 0 && raw_ms > 0
            ? (lb->lanes / raw_ms) / (64.0 / scalar_raw_ms)
            : 0.0;

    double fs_ms = lb == scalar ? scalar_fs_ms : 0;
    fault::CoverageCurve curve = base;
    if (lb != scalar) {
      curve = fault_run(lb, &fs_ms);
      if (measure) {
        for (int r = 1; r < 3; ++r) {
          double ms = 0;
          fault_run(lb, &ms);
          fs_ms = std::min(fs_ms, ms);
        }
      }
      gate_check(curve.detected_at == base.detected_at,
                 std::string("fault-sim detected_at identical (") + lb->name +
                     " vs scalar64)");
    }

    row["raw_ms"] = raw_ms;
    row["raw_mpatterns_per_s"] = mpat_s;
    row["raw_speedup_vs_scalar64"] = raw_tp_speedup;
    row["fault_sim_ms"] = fs_ms;
    row["fault_sim_speedup_vs_scalar64"] =
        fs_ms > 0 ? scalar_fs_ms / fs_ms : 0.0;
    row["coverage"] = curve.coverage();
    rows.push_back(std::move(row));
    std::cerr << "  backend " << lb->name << ": raw " << raw_ms << " ms ("
              << mpat_s << " Mpat/s, " << raw_tp_speedup
              << "x scalar64), fault_sim " << fs_ms << " ms\n";
    if (lb->words > widest->words) {
      widest = lb;
      widest_raw_speedup = raw_tp_speedup;
    }
  }

  // The SIMD acceptance criterion: only meaningful when the matrix includes
  // a wide backend and we actually timed it.
  if (measure && widest != scalar)
    gate_check(widest_raw_speedup >= 2.0,
               std::string("widest backend (") + widest->name +
                   ") raw sweep >= 2x scalar64 throughput");

  return rows;
}

/// Single-thread PPSFP throughput, compiled vs interpreted backend, plus the
/// full identity gate set: curves, checkpoints, 1-vs-4-thread runs. Both
/// sides are pinned to the scalar64 lane backend: the interpreted reference
/// has no wide path, and the compiled-vs-interpreted speedup criterion
/// predates the SIMD matrix (which has its own gates in bench_backends).
obs::Json bench_fault_sim(const Fixture& fx, std::int64_t patterns,
                          bool measure) {
  const fault::FaultList faults = fault::FaultList::collapsed(fx.kernel);

  const auto run = [&](fault::EvalBackend backend, int threads,
                       double* wall_ms) {
    fault::FaultSimulator sim(fx.kernel, faults, backend);
    sim.set_lane_backend(&gate::scalar_lane_backend());
    sim.set_threads(threads);
    Xoshiro256 rng(1994);
    const Clock::time_point t0 = Clock::now();
    fault::CoverageCurve c = sim.run_random(
        rng, patterns, std::numeric_limits<std::int64_t>::max());
    if (wall_ms) *wall_ms = ms_since(t0);
    return c;
  };

  double interp_ms = 0, compiled_ms = 0;
  fault::CoverageCurve interp = run(fault::EvalBackend::kInterpreted, 1,
                                    &interp_ms);
  fault::CoverageCurve compiled = run(fault::EvalBackend::kCompiled, 1,
                                      &compiled_ms);
  if (measure) {
    // Keep the faster of a few repeats per side (timer noise, 1-core CI).
    for (int r = 1; r < 3; ++r) {
      double ms = 0;
      run(fault::EvalBackend::kInterpreted, 1, &ms);
      interp_ms = std::min(interp_ms, ms);
      run(fault::EvalBackend::kCompiled, 1, &ms);
      compiled_ms = std::min(compiled_ms, ms);
    }
  }
  gate_check(same_curve(interp, compiled),
             "fault-sim curves identical (compiled vs interpreted)");

  const fault::CoverageCurve threaded =
      run(fault::EvalBackend::kCompiled, 4, nullptr);
  gate_check(same_curve(interp, threaded),
             "fault-sim curves identical (1 vs 4 threads)");

  // Checkpoints taken from either backend must be byte-identical.
  fault::FaultSimulator a(fx.kernel, faults, fault::EvalBackend::kCompiled);
  fault::FaultSimulator b(fx.kernel, faults,
                          fault::EvalBackend::kInterpreted);
  const rt::SimCheckpoint ca = a.make_checkpoint(compiled);
  const rt::SimCheckpoint cb = b.make_checkpoint(interp);
  gate_check(ca.to_json().dump() == cb.to_json().dump(),
             "fault-sim checkpoints identical");

  const double speedup = compiled_ms > 0 ? interp_ms / compiled_ms : 0.0;
  obs::Json row = obs::Json::object();
  row["faults"] = static_cast<std::int64_t>(faults.size());
  row["faults_full"] = static_cast<std::int64_t>(faults.full_size());
  row["patterns"] = patterns;
  row["coverage"] = compiled.coverage();
  row["interpreted_ms"] = interp_ms;
  row["compiled_ms"] = compiled_ms;
  row["speedup"] = speedup;
  if (measure) {
    std::cerr << "  fault_sim: interpreted " << interp_ms << " ms, compiled "
              << compiled_ms << " ms (" << speedup << "x)\n";
    gate_check(speedup >= 1.5,
               "fault-sim single-thread speedup >= 1.5x on c5a2m");
  }
  return row;
}

/// BIST session identity: signatures, detection flags and checkpoints must
/// be bit-identical at 1 and 4 threads, and across batch lane widths.
obs::Json bench_session(const Fixture& fx, std::int64_t cycles) {
  obs::Json row = obs::Json::object();
  if (!fx.first_kernel) {
    row["skipped"] = true;
    return row;
  }
  const auto run = [&](int threads, int batch_lanes,
                       rt::SessionCheckpoint* ckpt) {
    sim::BistSession session(fx.n, fx.elab, fx.design.bilbo,
                             *fx.first_kernel);
    session.set_threads(threads);
    session.set_batch_lanes(batch_lanes);
    const fault::FaultList faults = session.kernel_faults();
    return session.run(faults, cycles, {}, nullptr, ckpt);
  };
  rt::SessionCheckpoint ck1, ck4;
  const sim::SessionReport r1 = run(1, 64, &ck1);
  const sim::SessionReport r4 = run(4, 64, &ck4);
  gate_check(r1.golden_signatures == r4.golden_signatures,
             "session MISR signatures identical (1 vs 4 threads)");
  gate_check(r1.detected_at_outputs == r4.detected_at_outputs &&
                 r1.detected_by_signature == r4.detected_by_signature &&
                 r1.aliased == r4.aliased,
             "session detection counts identical (1 vs 4 threads)");
  gate_check(ck1.to_json().dump() == ck4.to_json().dump(),
             "session checkpoints identical (1 vs 4 threads)");
  const gate::LaneBackend& active = gate::active_lane_backend();
  if (active.words > 1) {
    const sim::SessionReport rw = run(1, active.lanes, nullptr);
    gate_check(rw == r1, std::string("session reports identical (") +
                             active.name + " vs 64-lane batches)");
  }
  row["cycles"] = cycles;
  row["signatures"] = static_cast<std::int64_t>(r1.golden_signatures.size());
  row["detected_by_signature"] =
      static_cast<std::int64_t>(r1.detected_by_signature);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, lanes_name;
  bool check_only = false;
  // Table 2 of the paper applies 2^16 patterns to these kernels; 8192 keeps
  // the bench fast while staying in the regime where the random-resistant
  // tail (small live fault set, good-eval-heavy blocks) shows up.
  std::int64_t patterns = 8192;
  std::int64_t cycles = 512;
  int blocks = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--out") out_path = value();
    else if (arg == "--check") check_only = true;
    else if (arg == "--lanes") lanes_name = value();
    else if (arg == "--patterns") patterns = std::stoll(value());
    else if (arg == "--cycles") cycles = std::stoll(value());
    else if (arg == "--blocks") blocks = std::stoi(value());
    else {
      std::cerr << "usage: bench_kernel [--out FILE] [--check]"
                   " [--lanes scalar64|avx2|avx512]"
                   " [--patterns N] [--cycles N] [--blocks N]\n";
      return arg == "--help" || arg == "-h" ? 0 : 64;
    }
  }
  const gate::LaneBackend* only = nullptr;
  if (!lanes_name.empty()) {
    only = gate::find_lane_backend(lanes_name);
    if (!only) {
      std::cerr << "unknown lane backend '" << lanes_name
                << "' (compiled in:";
      for (const gate::LaneBackend* lb : gate::all_lane_backends())
        std::cerr << " " << lb->name;
      std::cerr << ")\n";
      return 64;
    }
    if (!only->supported()) {
      // ctest SKIP_RETURN_CODE: the backend is compiled in but this CPU
      // cannot run it — a skip, not a failure.
      std::cerr << "lane backend '" << lanes_name
                << "' is not supported on this CPU; skipping\n";
      return 77;
    }
    gate::set_lane_backend(only);
  }
  if (check_only) {
    // Identity gates only: smaller workloads, no timing thresholds.
    patterns = std::min<std::int64_t>(patterns, 512);
    cycles = std::min<std::int64_t>(cycles, 128);
    blocks = std::min(blocks, 16);
  }

  const Fixture fx;
  std::cerr << (check_only ? "kernel identity check:" : "kernel bench:")
            << "\n";

  obs::Json doc = obs::Json::object();
  doc["kind"] = "bibs.kernel_bench";
  doc["version"] = 2;
#ifdef BIBS_NATIVE_ENABLED
  doc["native"] = true;
#else
  doc["native"] = false;
#endif
  doc["git"] = obs::Report::collect().git_describe;
  doc["circuit"] = "c5a2m";
  doc["active_lanes"] = gate::active_lane_backend().name;

  if (!check_only) doc["raw"] = bench_raw(fx, blocks);
  doc["backends"] = bench_backends(fx, patterns, blocks, !check_only, only);
  doc["fault_sim"] = bench_fault_sim(fx, patterns, !check_only);
  doc["session"] = bench_session(fx, cycles);

  if (g_failures > 0) {
    std::cerr << g_failures << " identity/threshold gate(s) FAILED\n";
    return 1;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.dump() << "\n";
    std::cerr << "wrote " << out_path << "\n";
  }
  return 0;
}
