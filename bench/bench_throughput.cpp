// Engine microbenchmarks (google-benchmark): logic-simulation throughput,
// PPSFP fault-simulation throughput, TPG construction cost (MC_TPG is
// O(m n^2)), and the BIBS/KA85 designers on the paper's circuits.

#include <benchmark/benchmark.h>

#include "circuits/datapaths.hpp"
#include "circuits/figures.hpp"
#include "common/prng.hpp"
#include "core/designer.hpp"
#include "fault/simulator.hpp"
#include "gate/sim.hpp"
#include "gate/synth.hpp"
#include "tpg/design.hpp"
#include "tpg/exhaustive.hpp"

namespace {

using namespace bibs;

void BM_LogicSimC5a2m(benchmark::State& state) {
  const auto n = circuits::make_c5a2m();
  const auto elab = gate::elaborate(n);
  gate::Simulator sim(elab.netlist);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    for (gate::NetId in : elab.netlist.inputs())
      sim.set_input(in, rng.next());
    sim.eval();
    sim.clock();
    benchmark::DoNotOptimize(sim.value(elab.netlist.outputs()[0]));
  }
  // 64 patterns per eval.
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LogicSimC5a2m);

void BM_FaultSimAdderKernel(benchmark::State& state) {
  // One 16-input adder kernel, 64-pattern block against the live fault list.
  const auto n = circuits::make_c5a2m();
  const auto elab = gate::elaborate(n);
  const auto design = core::design_ka85(n);
  const core::Kernel* small = nullptr;
  for (const auto& k : design.report.kernels)
    if (!k.trivial && k.input_regs.size() == 2) small = &k;
  const auto comb =
      gate::combinational_kernel(elab, n, small->input_regs,
                                 small->output_regs);
  const auto faults = fault::FaultList::collapsed(comb);
  for (auto _ : state) {
    fault::FaultSimulator sim(comb, faults);
    Xoshiro256 rng(7);
    auto curve = sim.run_random(rng, 64 * 16);
    benchmark::DoNotOptimize(curve.detected_count());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 16);
}
BENCHMARK(BM_FaultSimAdderKernel);

void BM_FaultSimWholeDatapath(benchmark::State& state) {
  const auto n = circuits::make_c5a2m();
  const auto elab = gate::elaborate(n);
  std::vector<rtl::ConnId> in_regs, out_regs;
  for (const auto& c : n.connections()) {
    if (!c.is_register()) continue;
    if (n.block(c.from).kind == rtl::BlockKind::kInput) in_regs.push_back(c.id);
    if (n.block(c.to).kind == rtl::BlockKind::kOutput) out_regs.push_back(c.id);
  }
  const auto comb = gate::combinational_kernel(elab, n, in_regs, out_regs);
  const auto faults = fault::FaultList::collapsed(comb);
  for (auto _ : state) {
    fault::FaultSimulator sim(comb, faults);
    Xoshiro256 rng(7);
    auto curve = sim.run_random(rng, 64 * 8);
    benchmark::DoNotOptimize(curve.detected_count());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 8);
}
BENCHMARK(BM_FaultSimWholeDatapath);

void BM_McTpgScaling(benchmark::State& state) {
  // O(m n^2): n registers, m = n cones each depending on all registers.
  const int n = static_cast<int>(state.range(0));
  tpg::GeneralizedStructure s;
  for (int i = 0; i < n; ++i)
    s.registers.push_back({"R" + std::to_string(i), 2});
  for (int c = 0; c < n; ++c) {
    tpg::Cone cone;
    cone.name = "O" + std::to_string(c);
    for (int i = 0; i < n; ++i) cone.deps.push_back({i, (i + c) % 2});
    s.cones.push_back(cone);
  }
  for (auto _ : state) {
    // Construction only; skip the polynomial lookup cost dominating tiny n.
    auto d = tpg::mc_tpg(s);
    benchmark::DoNotOptimize(d.lfsr_stages);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_McTpgScaling)->RangeMultiplier(2)->Range(2, 16)->Complexity();

void BM_RankCheck(benchmark::State& state) {
  const auto n = circuits::make_c3a2m();
  const auto design = core::design_bibs(n);
  const core::Kernel* kernel = nullptr;
  for (const auto& k : design.report.kernels)
    if (!k.trivial) kernel = &k;
  const auto s = core::kernel_structure(n, design.bilbo, *kernel);
  const auto d = tpg::mc_tpg(s);
  for (auto _ : state) {
    auto rep = tpg::check_exhaustive_rank(d);
    benchmark::DoNotOptimize(rep.all_exhaustive);
  }
}
BENCHMARK(BM_RankCheck);

void BM_DesignBibs(benchmark::State& state) {
  const auto n = circuits::make_c4a4m();
  for (auto _ : state) {
    auto r = core::design_bibs(n);
    benchmark::DoNotOptimize(r.bilbo.size());
  }
}
BENCHMARK(BM_DesignBibs);

void BM_DesignBibsFig9ExactSearch(benchmark::State& state) {
  const auto n = circuits::make_fig9();
  for (auto _ : state) {
    auto r = core::design_bibs(n);
    benchmark::DoNotOptimize(r.bilbo.size());
  }
}
BENCHMARK(BM_DesignBibsFig9ExactSearch);

void BM_Elaborate(benchmark::State& state) {
  const auto n = circuits::make_c4a4m();
  for (auto _ : state) {
    auto e = gate::elaborate(n);
    benchmark::DoNotOptimize(e.netlist.net_count());
  }
}
BENCHMARK(BM_Elaborate);

}  // namespace

BENCHMARK_MAIN();
