// The open problem of the paper's conclusion, exercised: minimal-FF/LFSR
// TPG design via the necessary-and-sufficient rank condition. Compares
// Procedure MC_TPG, MC_TPG + register permutation (Section 4.3), and the
// free-placement search (minimize_tpg) on multi-cone structures.

#include <iostream>

#include "common/prng.hpp"
#include "common/table.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/minimize.hpp"
#include "tpg/optimize.hpp"

int main() {
  using namespace bibs;
  using namespace bibs::tpg;

  std::vector<std::pair<std::string, GeneralizedStructure>> cases;
  {
    GeneralizedStructure ex7;
    ex7.registers = {{"R1", 4}, {"R2", 4}, {"R3", 4}};
    ex7.cones = {{"O1", {{0, 2}, {1, 0}}},
                 {"O2", {{0, 0}, {2, 1}}},
                 {"O3", {{1, 1}, {2, 0}}}};
    cases.emplace_back("Fig 21 (Ex 7)", ex7);
  }
  {
    GeneralizedStructure ex5;
    ex5.registers = {{"R1", 4}, {"R2", 4}};
    ex5.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 1}, {1, 0}}}};
    cases.emplace_back("Fig 17 (Ex 5)", ex5);
  }
  // Randomized multi-cone structures.
  Xoshiro256 rng(777);
  for (int t = 0; t < 4; ++t) {
    GeneralizedStructure s;
    const int nregs = 3 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < nregs; ++i)
      s.registers.push_back(
          {"R" + std::to_string(i + 1),
           3 + static_cast<int>(rng.next_below(2))});
    for (int c = 0; c < 3; ++c) {
      Cone cone;
      cone.name = "O" + std::to_string(c + 1);
      for (int i = 0; i < nregs; ++i)
        if (rng.next_below(2))
          cone.deps.push_back({i, static_cast<int>(rng.next_below(3))});
      if (cone.deps.size() < 2) {
        cone.deps.clear();
        cone.deps.push_back({0, 0});
        cone.deps.push_back({1, 1});
      }
      s.cones.push_back(cone);
    }
    cases.emplace_back("random-" + std::to_string(t + 1), s);
  }

  Table t("Minimal TPG search vs MC_TPG vs permutation (LFSR stages; smaller"
          " = exponentially shorter test)");
  t.header({"structure", "lower bound 2^w", "MC_TPG", "best permutation",
            "free placement", "certified"});
  for (auto& [name, s] : cases) {
    const TpgDesign mc = mc_tpg(s);
    const OrderResult perm = optimize_register_order(s);
    const MinimizeResult mini = minimize_tpg(s);
    const bool cert = check_exhaustive_rank(mini.design).all_exhaustive;
    t.row({name, Table::num(s.max_cone_width()), Table::num(mc.lfsr_stages),
           Table::num(perm.design.lfsr_stages),
           Table::num(mini.design.lfsr_stages), cert ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout <<
      "\nFree placement subsumes register permutation (it can also overlap\n"
      "registers on shared stages) and never does worse than MC_TPG; every\n"
      "result is certified by the algebraic exhaustiveness condition.\n";
  return 0;
}
