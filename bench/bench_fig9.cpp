// Reproduces the Figure 9 comparison on the example circuit of [3]:
// the KA85 methodology needs 10 BILBO registers totalling 52 flip-flops,
// BIBS needs 8 totalling 43, and both partition the circuit into 2 kernels.

#include <iostream>

#include "circuits/figures.hpp"
#include "common/table.hpp"
#include "core/designer.hpp"
#include "core/report.hpp"

int main() {
  using namespace bibs;
  const rtl::Netlist n = circuits::make_fig9();

  const auto bibs = core::evaluate_design(n, core::design_bibs(n).bilbo);
  const auto ka = core::evaluate_design(n, core::design_ka85(n).bilbo);

  Table t("Figure 9: BISTable designs of the example circuit in [3]");
  t.header({"TDM", "BILBO registers", "(paper)", "flip-flops", "(paper)",
            "kernels", "(paper)", "area overhead (GE)"});
  t.row({"[3]", Table::num(ka.bilbo_registers), "10", Table::num(ka.bilbo_ffs),
         "52", Table::num(ka.kernels), "2", Table::num(ka.area_overhead_ge, 0)});
  t.row({"BIBS", Table::num(bibs.bilbo_registers), "8",
         Table::num(bibs.bilbo_ffs), "43", Table::num(bibs.kernels), "2",
         Table::num(bibs.area_overhead_ge, 0)});
  t.print(std::cout);

  const auto bibs_set = core::design_bibs(n).bilbo;
  std::cout << "\nBIBS converts:";
  for (rtl::ConnId e : bibs_set)
    std::cout << ' ' << n.connection(e).reg->name;
  std::cout << "\n(PI/PO boundary plus the two feedback-cycle registers M1 "
               "and M2; the balancing\ndelay registers M3 and M4 that [3] "
               "must also convert stay plain registers.)\n";
  return 0;
}
