// Reproduces the TPG design data of Figures 13, 15, 16, 17 and 19
// (Examples 2-6): LFSR degree, extra flip-flops, label layout, test time,
// and functional exhaustiveness verified by both the full-period simulation
// and the algebraic rank condition.

#include <iostream>

#include "common/table.hpp"
#include "tpg/design.hpp"
#include "tpg/exhaustive.hpp"
#include "tpg/optimize.hpp"

int main() {
  using namespace bibs;
  using namespace bibs::tpg;

  auto single = [](const std::vector<int>& widths,
                   const std::vector<int>& depths) {
    std::vector<InputRegister> regs;
    for (std::size_t i = 0; i < widths.size(); ++i)
      regs.push_back({"R" + std::to_string(i + 1), widths[i]});
    return GeneralizedStructure::single_cone(std::move(regs), depths);
  };

  struct Case {
    std::string name;
    GeneralizedStructure s;
    int paper_stages;
    int paper_extra_ffs;  // -1 when the figure does not state it
    int depth;
  };
  std::vector<Case> cases;
  cases.push_back({"Fig 13 (Ex 2): d=(2,1,0)", single({4, 4, 4}, {2, 1, 0}),
                   12, 2, 2});
  cases.push_back({"Fig 15 (Ex 3): d=(1,2,0)", single({4, 4, 4}, {1, 2, 0}),
                   12, 2, 2});
  cases.push_back({"Fig 16 (Ex 4): delta=-5", single({4, 4}, {0, 5}), 8, -1,
                   5});
  GeneralizedStructure ex5;
  ex5.registers = {{"R1", 4}, {"R2", 4}};
  ex5.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 1}, {1, 0}}}};
  cases.push_back({"Fig 17 (Ex 5): 2 cones", ex5, 9, -1, 2});
  GeneralizedStructure ex6;
  ex6.registers = {{"R1", 4}, {"R2", 4}};
  ex6.cones = {{"O1", {{0, 2}, {1, 0}}}, {"O2", {{0, 0}, {1, 1}}}};
  cases.push_back({"Fig 19 (Ex 6): 2 cones", ex6, 11, -1, 2});

  Table t("TPG designs for the paper's examples");
  t.header({"example", "LFSR stages", "(paper)", "extra FFs", "(paper)",
            "physical FFs", "test time", "exhaustive (sim)",
            "exhaustive (rank)"});
  for (Case& c : cases) {
    const TpgDesign d = mc_tpg(c.s);
    const auto sim = check_exhaustive_sim(d);
    const auto rank = check_exhaustive_rank(d);
    t.row({c.name, Table::num(d.lfsr_stages), Table::num(c.paper_stages),
           Table::num(d.extra_ffs()),
           c.paper_extra_ffs >= 0 ? Table::num(c.paper_extra_ffs)
                                  : std::string("-"),
           Table::num(d.physical_ffs()),
           Table::num(static_cast<long long>(d.test_time(c.depth))),
           sim.all_exhaustive ? "yes" : "NO",
           rank.all_exhaustive ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nExample 2's 12-bit TPG uses the paper's polynomial "
            << lfsr::primitive_polynomial(12).to_string()
            << ";\ntest time 2^12 - 1 + 2 = 4,097 clock cycles "
               "(Corollary 1).\n\nFigure 20 (reconfigurable TPG for Ex 6): ";
  const ReconfigurableTpg r = reconfigurable_tpg(ex6);
  std::cout << r.sessions.size() << " sessions, total test time "
            << r.total_test_time() << " vs "
            << mc_tpg(ex6).test_time(2) << " for the single 11-stage LFSR.\n";
  return 0;
}
