#!/usr/bin/env sh
# Keeps the test inventory honest: every test source and every check script
# in the tree must actually be wired into ctest, so nothing silently falls
# out of all tiers (tier 1 = unlabeled tests run by a plain `ctest`;
# tier 2 = the "bibs-report" label).
#
#   - every tests/*_test.cpp has a bibs_test(<name> ...) registration
#   - every scripts/check_*.sh is referenced by an add_test(... COMMAND sh ...)
#   - every bibs_test / add_test names a source / script that exists
#     (no dead registrations pointing at deleted files)
#
# Usage: check_test_labels.sh [source-dir]
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
CML="$SRC/tests/CMakeLists.txt"
FAIL=0

# --- tests/*_test.cpp <-> bibs_test(<name>) -------------------------------
for f in "$SRC"/tests/*_test.cpp; do
  name=$(basename "$f" .cpp)
  if ! grep -Eq "^[[:space:]]*bibs_test\($name([[:space:]]|\))" "$CML"; then
    echo "FAIL: tests/$name.cpp has no bibs_test($name) in tests/CMakeLists.txt" >&2
    FAIL=1
  fi
done

# Registration names contain no whitespace, so word-splitting the grep
# output is safe (and keeps FAIL in this shell, not a pipeline subshell).
for name in $(grep -Eo '^[[:space:]]*bibs_test\([a-z_0-9]+' "$CML" |
              sed 's/.*(//'); do
  if [ ! -f "$SRC/tests/$name.cpp" ]; then
    echo "FAIL: bibs_test($name) registered but tests/$name.cpp does not exist" >&2
    FAIL=1
  fi
done

# --- scripts/check_*.sh <-> add_test(... COMMAND sh ...) ------------------
for f in "$SRC"/scripts/check_*.sh; do
  script=$(basename "$f")
  if ! grep -q "scripts/$script" "$CML"; then
    echo "FAIL: scripts/$script is not registered as a ctest in tests/CMakeLists.txt" >&2
    FAIL=1
  fi
done

for script in $(grep -Eo 'scripts/check_[a-z_0-9]+\.sh' "$CML" | sort -u); do
  if [ ! -f "$SRC/$script" ]; then
    echo "FAIL: tests/CMakeLists.txt runs $script but it does not exist" >&2
    FAIL=1
  fi
done

if [ "$FAIL" -ne 0 ]; then
  echo "FAIL: test inventory and ctest registrations disagree" >&2
  exit 1
fi

echo "OK: every test source and check script is registered with ctest"
