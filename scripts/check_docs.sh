#!/bin/sh
# Documentation consistency check, run as a ctest (label bibs-report):
#
#   1. every docs/*.md must be linked from README.md;
#   2. every relative markdown link in README.md and docs/*.md must point at
#      an existing file or directory;
#   3. every inline-code repo path (`src/...`, `docs/...`, `scripts/...`,
#      `tests/...`, `bench/...`, `examples/...`, `fuzz/...`) mentioned in
#      docs/ must exist, so the prose can't drift from the tree.
#
# usage: check_docs.sh <source-dir>
set -u

src=${1:-.}
status=0

if [ ! -f "$src/README.md" ] || [ ! -d "$src/docs" ]; then
    echo "FAIL: $src does not look like the repo root" >&2
    exit 1
fi

# --- 1. README.md links every docs page ------------------------------------
for f in "$src"/docs/*.md; do
    base=$(basename "$f")
    if ! grep -q "docs/$base" "$src/README.md"; then
        echo "FAIL: docs/$base is not linked from README.md"
        status=1
    fi
done

# --- 2. relative markdown links resolve ------------------------------------
# Extract the (target) part of [text](target) links, one per line.
link_targets() {
    grep -o '](\([^)]*\))' "$1" 2>/dev/null | sed 's/^](//; s/)$//'
}

for f in "$src/README.md" "$src"/docs/*.md; do
    dir=$(dirname "$f")
    rel=${f#"$src"/}
    for t in $(link_targets "$f"); do
        case "$t" in
            http://*|https://*|mailto:*|"#"*) continue ;;
        esac
        t=${t%%#*}          # drop anchors
        [ -z "$t" ] && continue
        if [ ! -e "$dir/$t" ]; then
            echo "FAIL: $rel links to missing file: $t"
            status=1
        fi
    done
done

# --- 3. inline-code repo paths in docs/ exist ------------------------------
for f in "$src"/docs/*.md; do
    rel=${f#"$src"/}
    for p in $(grep -o '`[A-Za-z0-9_./-]*`' "$f" | tr -d '\140'); do
        p=${p#./}
        case "$p" in
            src/*|docs/*|scripts/*|tests/*|bench/*|examples/*|fuzz/*) ;;
            *) continue ;;
        esac
        # A bare binary name (bench/bench_foo) counts when its source exists.
        if [ ! -e "$src/$p" ] && [ ! -e "$src/$p.cpp" ]; then
            echo "FAIL: $rel mentions nonexistent path: $p"
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "OK: README links every docs page; all doc links and paths resolve."
fi
exit "$status"
