#!/bin/sh
# Corpus regression gate, run as a ctest.
#
#   tier1 mode (tier-1, the default): runs the bibs_corpus CLI over the quick
#   tier-1 subset (c17 + c432 + one generated data path, both fault models)
#   at --threads 1 and --threads 4, byte-compares the two tables, and diffs
#   the result against the committed golden data/golden/CORPUS.tier1.json.
#
#   full mode (label bibs-corpus, not tier-1): sweeps the full corpus — all
#   11 committed ISCAS-85 circuits plus the paper data paths and the FIR
#   scaling sweeps — and diffs against data/golden/CORPUS.full.json.
#
# To bless an intentional coverage change, regenerate the goldens (see
# docs/testing.md, "Corpus regression").
#
# usage: check_corpus.sh <source-dir> <bibs_corpus-binary> [tier1|full]
set -u

src=${1:?usage: check_corpus.sh <source-dir> <bibs_corpus-binary> [tier1|full]}
bin=${2:?usage: check_corpus.sh <source-dir> <bibs_corpus-binary> [tier1|full]}
mode=${3:-tier1}

if [ ! -x "$bin" ]; then
    echo "FAIL: bibs_corpus binary not found: $bin" >&2
    exit 1
fi

tmp=$(mktemp -d "${TMPDIR:-/tmp}/bibs_corpus.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

case "$mode" in
tier1)
    golden="$src/data/golden/CORPUS.tier1.json"
    "$bin" --tier1 --threads 1 --out "$tmp/t1.json" --diff "$golden" || {
        echo "FAIL: tier1 sweep (serial) diverged or failed" >&2
        exit 1
    }
    "$bin" --tier1 --threads 4 --out "$tmp/t4.json" || {
        echo "FAIL: tier1 sweep (4 threads) failed" >&2
        exit 1
    }
    if ! cmp -s "$tmp/t1.json" "$tmp/t4.json"; then
        echo "FAIL: tier1 table differs between --threads 1 and 4" >&2
        exit 1
    fi
    echo "OK: tier1 corpus table is thread-invariant and matches the golden."
    ;;
full)
    golden="$src/data/golden/CORPUS.full.json"
    "$bin" --full --threads 4 --out "$tmp/full.json" --diff "$golden" || {
        echo "FAIL: full sweep diverged or failed" >&2
        exit 1
    }
    echo "OK: full corpus table matches the golden."
    ;;
*)
    echo "FAIL: unknown mode '$mode' (tier1|full)" >&2
    exit 1
    ;;
esac
