#!/usr/bin/env sh
# Verifies the BIBS_OBS CMake option in both configurations: the library
# targets must build with instrumentation compiled in (ON, the default) and
# with the macros compiled to nothing (OFF). Only the static libraries are
# built — no tests, benches or examples — to keep this cheap enough to run
# as a ctest (label: bibs-report).
#
# Usage: check_obs_offon.sh [source-dir]
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/bibs_obs_offon.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

LIBS="bibs_common bibs_obs bibs_lfsr bibs_rtl bibs_graph bibs_gate \
bibs_fault bibs_tpg bibs_circuits bibs_core bibs_sim"

for mode in ON OFF; do
  echo "== BIBS_OBS=$mode =="
  cmake -S "$SRC" -B "$TMP/$mode" -DBIBS_OBS="$mode" \
    > "$TMP/$mode-configure.log" 2>&1 || {
    cat "$TMP/$mode-configure.log"
    echo "FAIL: configure with BIBS_OBS=$mode" >&2
    exit 1
  }
  # shellcheck disable=SC2086  # LIBS is a deliberate word list
  cmake --build "$TMP/$mode" -j --target $LIBS \
    > "$TMP/$mode-build.log" 2>&1 || {
    tail -50 "$TMP/$mode-build.log"
    echo "FAIL: build with BIBS_OBS=$mode" >&2
    exit 1
  }
done

echo "OK: library builds with BIBS_OBS=ON and BIBS_OBS=OFF"
