#!/usr/bin/env sh
# Builds the parser/runtime-facing test binaries under AddressSanitizer +
# UndefinedBehaviorSanitizer (the BIBS_SANITIZE CMake option) and runs them.
# Any sanitizer finding aborts the binary and fails this check. Scoped to
# the tests that chew on untrusted input and the rt control plane — a full
# sanitized suite would be too slow for a ctest (label: bibs-report).
#
# Usage: check_sanitizers.sh [source-dir]
set -eu

SRC=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/bibs_sanitize.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

TESTS="rt_test rtl_test bench_format_test edif_test"

echo "== configure with BIBS_SANITIZE=address;undefined =="
cmake -S "$SRC" -B "$TMP/build" -DBIBS_SANITIZE="address;undefined" \
  > "$TMP/configure.log" 2>&1 || {
  cat "$TMP/configure.log"
  echo "FAIL: configure with BIBS_SANITIZE" >&2
  exit 1
}

# shellcheck disable=SC2086  # TESTS is a deliberate word list
cmake --build "$TMP/build" -j --target $TESTS \
  > "$TMP/build.log" 2>&1 || {
  tail -50 "$TMP/build.log"
  echo "FAIL: sanitized build" >&2
  exit 1
}

for t in $TESTS; do
  echo "== $t (ASan+UBSan) =="
  "$TMP/build/tests/$t" > "$TMP/$t.log" 2>&1 || {
    tail -80 "$TMP/$t.log"
    echo "FAIL: $t under sanitizers" >&2
    exit 1
  }
done

echo "OK: $TESTS clean under address+undefined sanitizers"
